// Package baseline implements the comparison systems of Figures 1, 3, and
// 11: a PMEP-style delay-injection emulator (NVRAM as a uniformly slower
// DRAM with throttled bandwidth) and slower-DRAM simulator models in the
// style of DRAMSim2-DDR3, Ramulator-DDR4, and Ramulator-PCM — DRAM-
// architecture timing with substituted device parameters, which is exactly
// the modeling shortcut the paper shows fails to match real Optane DIMMs.
package baseline

import (
	"repro/internal/dram"
	"repro/internal/mem"
	"repro/internal/sim"
)

// PMEPParams configures the PMEP-style emulator: flat injected latencies and
// throttled bandwidth, independent of access history (so its pointer-chasing
// curve is flat — the discrepancy in Figure 1b).
type PMEPParams struct {
	LoadNs    float64
	StoreNs   float64
	StoreNTNs float64
	// Occupancies in ns/64B: bandwidth throttling.
	OccLoad    float64
	OccStore   float64
	OccStoreNT float64
	NoisePct   float64
}

// DefaultPMEP models the paper's PMEP setup (6-DIMM equivalent): load and
// store bandwidth high, non-temporal stores *lower* — the inversion relative
// to real Optane that Figure 1a highlights.
func DefaultPMEP() PMEPParams {
	return PMEPParams{
		LoadNs: 165, StoreNs: 95, StoreNTNs: 210,
		OccLoad: 9.2, OccStore: 9.8, OccStoreNT: 20.5,
		NoisePct: 1.5,
	}
}

// PMEP is the delay-injection emulator; it implements mem.System.
type PMEP struct {
	eng      *sim.Engine
	p        PMEPParams
	rng      *sim.RNG
	pipeFree sim.Cycle
	inflight int
}

// NewPMEP builds the emulator.
func NewPMEP(p PMEPParams, seed uint64) *PMEP {
	if p.LoadNs == 0 {
		p = DefaultPMEP()
	}
	return &PMEP{eng: sim.NewEngine(), p: p, rng: sim.NewRNG(seed)}
}

// Engine implements mem.System.
func (p *PMEP) Engine() *sim.Engine { return p.eng }

// CyclesPerNano implements mem.System.
func (p *PMEP) CyclesPerNano() float64 { return dram.CyclesPerNano }

// Drained implements mem.System.
func (p *PMEP) Drained() bool { return p.inflight == 0 }

// Submit implements mem.System.
func (p *PMEP) Submit(r *mem.Request) bool {
	var latNs, occNs float64
	switch r.Op {
	case mem.OpRead:
		latNs, occNs = p.p.LoadNs, p.p.OccLoad
	case mem.OpWrite, mem.OpClwb:
		latNs, occNs = p.p.StoreNs, p.p.OccStore
	case mem.OpWriteNT:
		latNs, occNs = p.p.StoreNTNs, p.p.OccStoreNT
	case mem.OpFence:
		latNs, occNs = 120, 0
	default:
		return false
	}
	if p.p.NoisePct > 0 {
		latNs *= 1 + (p.rng.Float64()*2-1)*p.p.NoisePct/100
	}
	now := p.eng.Now()
	r.Issued = now
	start := now
	if p.pipeFree > start {
		start = p.pipeFree
	}
	p.pipeFree = start + dram.NsToCycles(occNs)
	done := start + dram.NsToCycles(latNs)
	if done <= now {
		done = now + 1
	}
	p.inflight++
	p.eng.Schedule(done, func() {
		p.inflight--
		r.Complete(p.eng.Now())
	})
	return true
}

// SimKind selects a slower-DRAM simulator flavor for SlowDRAM.
type SimKind uint8

const (
	// DRAMSim2DDR3 mimics DRAMSim2 with DDR3 timing.
	DRAMSim2DDR3 SimKind = iota
	// RamulatorDDR4 mimics Ramulator's DDR4 model.
	RamulatorDDR4
	// RamulatorPCM mimics Ramulator's PCM model: DRAM architecture with
	// slower, asymmetric device timing — flat pointer-chasing latency
	// around 250ns (Figure 3b).
	RamulatorPCM
)

// String names the simulator flavor.
func (k SimKind) String() string {
	switch k {
	case DRAMSim2DDR3:
		return "DRAMSim2-DDR3"
	case RamulatorDDR4:
		return "Ramulator-DDR4"
	case RamulatorPCM:
		return "Ramulator-PCM"
	default:
		return "unknown"
	}
}

// Timing returns the device timing used by the flavor.
func (k SimKind) Timing() dram.Timing {
	switch k {
	case DRAMSim2DDR3:
		return dram.DDR31600()
	case RamulatorPCM:
		// PCM read ~ array-activation dominated; closing a clean row is
		// nearly free (no restore needed), while write recovery is long.
		t := dram.DDR42666()
		t.TRCD = 200 // ~150ns array read into the row buffer
		t.TCL = 60
		t.TRP = 40
		t.TRAS = 264
		t.TWR = 500
		return t
	default:
		return dram.DDR42666()
	}
}

// SlowDRAM is a conventional DRAM-architecture simulator with substituted
// timing; it implements mem.System. Stores are posted through a small write
// queue (conventional memory-controller behavior), so its store latency has
// none of the Optane structure.
type SlowDRAM struct {
	kind SimKind
	ctrl *dram.Controller
	eng  *sim.Engine

	wq       int
	wqMax    int
	inflight int
}

// NewSlowDRAM builds the flavor with a fresh engine.
func NewSlowDRAM(kind SimKind) *SlowDRAM {
	eng := sim.NewEngine()
	cfg := dram.DefaultConfig()
	cfg.Timing = kind.Timing()
	cfg.Policy = dram.FRFCFS
	cfg.RefreshEnabled = kind != RamulatorPCM // PCM needs no refresh
	// The PCM model keeps no row buffer open (closed-page), giving the flat
	// latency curve of Figure 3b.
	cfg.ClosedPage = kind == RamulatorPCM
	return &SlowDRAM{kind: kind, ctrl: dram.NewController(eng, cfg), eng: eng, wqMax: 16}
}

// Kind returns the simulator flavor.
func (s *SlowDRAM) Kind() SimKind { return s.kind }

// Engine implements mem.System.
func (s *SlowDRAM) Engine() *sim.Engine { return s.eng }

// CyclesPerNano implements mem.System.
func (s *SlowDRAM) CyclesPerNano() float64 { return dram.CyclesPerNano }

// Drained implements mem.System.
func (s *SlowDRAM) Drained() bool { return s.inflight == 0 && s.wq == 0 && s.ctrl.Drained() }

// Submit implements mem.System.
func (s *SlowDRAM) Submit(r *mem.Request) bool {
	now := s.eng.Now()
	switch r.Op {
	case mem.OpRead:
		r2 := &mem.Request{Op: mem.OpRead, Addr: r.Addr, Size: 64}
		r2.OnDone = func(*mem.Request) {
			s.inflight--
			r.Complete(s.eng.Now())
		}
		if !s.ctrl.Submit(r2) {
			return false
		}
		s.inflight++
		r.Issued = now
		return true
	case mem.OpWrite, mem.OpWriteNT, mem.OpClwb:
		if s.wq >= s.wqMax {
			return false
		}
		s.wq++
		r.Issued = now
		// Posted: complete quickly; drain through the controller behind
		// the scenes.
		s.eng.After(dram.NsToCycles(25), func() { r.Complete(s.eng.Now()) })
		w := &mem.Request{Op: mem.OpWrite, Addr: r.Addr, Size: 64}
		w.OnDone = func(*mem.Request) { s.wq-- }
		var push func()
		push = func() {
			if !s.ctrl.Submit(w) {
				s.eng.After(16, push)
			}
		}
		push()
		return true
	case mem.OpFence:
		r.Issued = now
		var poll func()
		poll = func() {
			if s.wq == 0 && s.ctrl.Drained() {
				r.Complete(s.eng.Now())
				return
			}
			s.eng.After(16, poll)
		}
		s.eng.After(1, poll)
		return true
	default:
		return false
	}
}
