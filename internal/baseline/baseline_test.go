package baseline

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/sim"
)

func chaseNs(t *testing.T, s mem.System, region uint64) float64 {
	t.Helper()
	d := mem.NewDriver(s)
	blocks := int(region / 64)
	perm := sim.NewRNG(5).PermCycle(blocks)
	var accs []mem.Access
	at := 0
	for i := 0; i < 2*blocks; i++ {
		accs = append(accs, mem.Access{Op: mem.OpRead, Addr: uint64(at) * 64, Size: 64})
		at = perm[at]
	}
	lats := d.RunChain(accs)
	half := len(lats) / 2
	var sum float64
	for _, l := range lats[half:] {
		sum += mem.ToNs(s, l)
	}
	return sum / float64(len(lats)-half)
}

func TestPMEPFlatAcrossRegions(t *testing.T) {
	// PMEP's defining failure: latency does not depend on the region size.
	small := chaseNs(t, NewPMEP(DefaultPMEP(), 1), 4<<10)
	large := chaseNs(t, NewPMEP(DefaultPMEP(), 1), 1<<20)
	ratio := large / small
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("PMEP latency not flat: small=%.0f large=%.0f", small, large)
	}
}

func TestPMEPBandwidthInversion(t *testing.T) {
	// PMEP: load ~ store >> store-nt (the inversion of Figure 1a).
	bw := func(op mem.Op) float64 {
		s := NewPMEP(DefaultPMEP(), 1)
		d := mem.NewDriver(s)
		n := 4096
		accs := make([]mem.Access, n)
		for i := range accs {
			accs[i] = mem.Access{Op: op, Addr: uint64(i) * 64, Size: 64}
		}
		elapsed := d.RunWindow(accs, 10)
		return mem.BandwidthGBs(s, uint64(n)*64, elapsed)
	}
	load, st, nt := bw(mem.OpRead), bw(mem.OpWrite), bw(mem.OpWriteNT)
	if !(load > nt && st > nt) {
		t.Fatalf("PMEP ordering wrong: load=%.1f st=%.1f nt=%.1f", load, st, nt)
	}
}

func TestPMEPFence(t *testing.T) {
	s := NewPMEP(DefaultPMEP(), 1)
	d := mem.NewDriver(s)
	d.RunChain([]mem.Access{{Op: mem.OpWriteNT, Addr: 0, Size: 64}})
	if lat := d.Fence(); lat == 0 {
		t.Fatal("fence latency zero")
	}
	if !s.Drained() {
		t.Fatal("not drained")
	}
}

func TestSlowDRAMKinds(t *testing.T) {
	for _, k := range []SimKind{DRAMSim2DDR3, RamulatorDDR4, RamulatorPCM} {
		s := NewSlowDRAM(k)
		if s.Kind() != k {
			t.Fatalf("kind mismatch")
		}
		lat := chaseNs(t, s, 64<<10)
		if lat <= 0 {
			t.Fatalf("%v: zero latency", k)
		}
	}
	if SimKind(99).String() != "unknown" {
		t.Fatal("unknown kind name")
	}
}

func TestRamulatorPCMSlowerThanDDR4(t *testing.T) {
	pcm := chaseNs(t, NewSlowDRAM(RamulatorPCM), 64<<10)
	ddr4 := chaseNs(t, NewSlowDRAM(RamulatorDDR4), 64<<10)
	if pcm <= ddr4*1.5 {
		t.Fatalf("PCM (%.0f) not clearly slower than DDR4 (%.0f)", pcm, ddr4)
	}
}

func TestRamulatorPCMFlatAcrossRegions(t *testing.T) {
	// The defining mismatch of Figure 3b: the simulated curve is flat while
	// real Optane rises with region size.
	small := chaseNs(t, NewSlowDRAM(RamulatorPCM), 4<<10)
	large := chaseNs(t, NewSlowDRAM(RamulatorPCM), 512<<10)
	ratio := large / small
	if ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("PCM latency not flat: small=%.0f large=%.0f", small, large)
	}
}

func TestSlowDRAMPostedWrites(t *testing.T) {
	s := NewSlowDRAM(RamulatorDDR4)
	d := mem.NewDriver(s)
	st := d.RunChain([]mem.Access{{Op: mem.OpWrite, Addr: 0, Size: 64}})[0]
	ld := d.RunChain([]mem.Access{{Op: mem.OpRead, Addr: 1 << 20, Size: 64}})[0]
	if st >= ld {
		t.Fatalf("posted store (%d) not faster than load (%d)", st, ld)
	}
	d.Fence()
	if !s.Drained() {
		t.Fatal("not drained after fence")
	}
}

func TestSlowDRAMWriteQueueBackpressure(t *testing.T) {
	s := NewSlowDRAM(RamulatorPCM)
	accepted := 0
	for i := 0; i < 200; i++ {
		r := &mem.Request{Op: mem.OpWrite, Addr: uint64(i) * 8192 * 16, Size: 64}
		if s.Submit(r) {
			accepted++
		} else {
			break
		}
	}
	if accepted >= 200 {
		t.Fatal("write queue never exerted backpressure")
	}
	s.Engine().Run()
}
