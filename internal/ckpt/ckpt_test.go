package ckpt

import (
	"bytes"
	"errors"
	"hash/crc32"
	"testing"
)

// samplePayload exercises every primitive once in a fixed order.
func samplePayload() []byte {
	var e Enc
	e.U64(0xdeadbeefcafef00d)
	e.U32(42)
	e.U16(7)
	e.Bool(true)
	e.Bool(false)
	e.F64(3.25)
	e.BytesField([]byte{1, 2, 3})
	e.String("nvm")
	e.U64s([]uint64{10, 20, 30})
	return e.Bytes()
}

func TestRoundTrip(t *testing.T) {
	sealed := Seal(samplePayload())
	payload, err := Open(sealed)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	d := NewDec(payload)
	if v := d.U64(); v != 0xdeadbeefcafef00d {
		t.Errorf("U64 = %#x", v)
	}
	if v := d.U32(); v != 42 {
		t.Errorf("U32 = %d", v)
	}
	if v := d.U16(); v != 7 {
		t.Errorf("U16 = %d", v)
	}
	if !d.Bool() || d.Bool() {
		t.Error("Bool sequence wrong")
	}
	if v := d.F64(); v != 3.25 {
		t.Errorf("F64 = %v", v)
	}
	if b := d.BytesField(); !bytes.Equal(b, []byte{1, 2, 3}) {
		t.Errorf("BytesField = %v", b)
	}
	if s := d.String(); s != "nvm" {
		t.Errorf("String = %q", s)
	}
	vs := d.U64s()
	if len(vs) != 3 || vs[0] != 10 || vs[2] != 30 {
		t.Errorf("U64s = %v", vs)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestOpenTruncated(t *testing.T) {
	sealed := Seal(samplePayload())
	for _, n := range []int{0, 1, 7, 11, len(sealed) - 1} {
		if n > len(sealed) {
			continue
		}
		_, err := Open(sealed[:n])
		if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrChecksum) {
			t.Errorf("Open(%d bytes) = %v, want truncated or checksum", n, err)
		}
	}
}

func TestOpenBitFlip(t *testing.T) {
	sealed := Seal(samplePayload())
	for _, pos := range []int{0, 6, 7, 9, len(sealed) - 2} {
		mut := bytes.Clone(sealed)
		mut[pos] ^= 0x40
		_, err := Open(mut)
		if err == nil {
			t.Errorf("Open with bit flip at %d succeeded", pos)
			continue
		}
		if !errors.Is(err, ErrChecksum) && !errors.Is(err, ErrCorrupt) {
			t.Errorf("Open with bit flip at %d = %v, want checksum or corrupt", pos, err)
		}
	}
}

func TestOpenVersionBump(t *testing.T) {
	// A snapshot legitimately written by a future format: bump the version
	// field and re-checksum so the envelope is otherwise valid.
	sealed := Seal(samplePayload())
	mut := bytes.Clone(sealed[:len(sealed)-4])
	mut[6]++
	mut = sealCRC(mut)
	_, err := Open(mut)
	if !errors.Is(err, ErrVersion) {
		t.Fatalf("Open(version-bumped) = %v, want ErrVersion", err)
	}
}

// sealCRC re-appends a valid CRC32 over body.
func sealCRC(body []byte) []byte {
	out := append([]byte(nil), body...)
	sum := crc32.ChecksumIEEE(out)
	out = append(out, byte(sum), byte(sum>>8), byte(sum>>16), byte(sum>>24))
	return out
}

func TestDecSticky(t *testing.T) {
	d := NewDec([]byte{1, 2})
	_ = d.U64() // truncated
	if d.Err() == nil {
		t.Fatal("expected sticky error")
	}
	// Every later read returns zero values without panicking.
	if d.U64() != 0 || d.U32() != 0 || d.Bool() || d.String() != "" || d.U64s() != nil {
		t.Error("sticky decoder returned non-zero values")
	}
	if !errors.Is(d.Close(), ErrTruncated) {
		t.Errorf("Close = %v, want ErrTruncated", d.Close())
	}
}

func TestDecTrailingBytes(t *testing.T) {
	var e Enc
	e.U64(1)
	e.U64(2)
	d := NewDec(e.Bytes())
	_ = d.U64()
	if !errors.Is(d.Close(), ErrCorrupt) {
		t.Errorf("Close with trailing bytes = %v, want ErrCorrupt", d.Close())
	}
}

func TestHostileLengthPrefix(t *testing.T) {
	// A length prefix far beyond the input must error, not allocate.
	var e Enc
	e.U32(0xffffffff)
	d := NewDec(e.Bytes())
	if b := d.BytesField(); b != nil {
		t.Errorf("BytesField = %d bytes, want nil", len(b))
	}
	if !errors.Is(d.Err(), ErrTruncated) {
		t.Errorf("Err = %v, want ErrTruncated", d.Err())
	}

	d = NewDec(e.Bytes())
	if vs := d.U64s(); vs != nil {
		t.Errorf("U64s = %d elems, want nil", len(vs))
	}
	if !errors.Is(d.Err(), ErrTruncated) {
		t.Errorf("Err = %v, want ErrTruncated", d.Err())
	}

	d = NewDec(e.Bytes())
	if n := d.Count(16); n != 0 {
		t.Errorf("Count = %d, want 0", n)
	}
	if !errors.Is(d.Err(), ErrTruncated) {
		t.Errorf("Err = %v, want ErrTruncated", d.Err())
	}
}
