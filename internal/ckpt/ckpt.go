// Package ckpt is the exact-state snapshot substrate: a versioned,
// checksummed binary envelope plus sticky-error encode/decode primitives the
// simulator components serialize themselves with.
//
// Layout of a sealed snapshot:
//
//	offset  size  field
//	0       6     magic "NVCKPT"
//	6       2     format version (little-endian uint16)
//	8       n     payload (component-defined, see DESIGN.md §12)
//	8+n     4     CRC32 (IEEE) over bytes [0, 8+n)
//
// All integers are little-endian. The payload field order is fixed by the
// writers (each component's SaveState documents its order); the format
// version covers payload layout changes, so any reordering bumps
// FormatVersion and old snapshots are rejected with ErrVersion rather than
// misread.
//
// The decoder is sticky-error and never panics on hostile input: truncated,
// bit-flipped, and version-bumped snapshots surface as the typed errors
// below (fuzzed by FuzzCheckpointDecode).
package ckpt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// FormatVersion is the current snapshot payload layout version. Bump it on
// any incompatible change to a SaveState field order; it is also stamped
// into the nvmserved canonical job hash so cached results and snapshots from
// different format eras can never satisfy each other.
const FormatVersion uint16 = 3

// magic identifies a sealed snapshot.
var magic = [6]byte{'N', 'V', 'C', 'K', 'P', 'T'}

// headerLen is magic + version; trailerLen is the CRC32.
const (
	headerLen  = 8
	trailerLen = 4
)

// Typed decode errors. Every failure mode of Open/Dec maps onto exactly one
// of these (possibly wrapped with detail), so callers can branch on class
// with errors.Is.
var (
	// ErrTruncated: the input ends before a complete field or envelope.
	ErrTruncated = errors.New("ckpt: truncated snapshot")
	// ErrChecksum: the envelope CRC32 does not match (bit flip, torn write).
	ErrChecksum = errors.New("ckpt: checksum mismatch")
	// ErrVersion: the snapshot was written by a different format version.
	ErrVersion = errors.New("ckpt: snapshot format version mismatch")
	// ErrCorrupt: structurally invalid content inside a checksummed payload
	// (bad magic, impossible field value, trailing garbage).
	ErrCorrupt = errors.New("ckpt: corrupt snapshot")
)

// Seal wraps payload in the versioned, checksummed envelope.
func Seal(payload []byte) []byte {
	out := make([]byte, 0, headerLen+len(payload)+trailerLen)
	out = append(out, magic[:]...)
	out = binary.LittleEndian.AppendUint16(out, FormatVersion)
	out = append(out, payload...)
	sum := crc32.ChecksumIEEE(out)
	return binary.LittleEndian.AppendUint32(out, sum)
}

// Open verifies the envelope of a sealed snapshot and returns its payload.
// The returned slice aliases data.
func Open(data []byte) ([]byte, error) {
	if len(data) < headerLen+trailerLen {
		return nil, fmt.Errorf("%w: %d bytes, need at least %d",
			ErrTruncated, len(data), headerLen+trailerLen)
	}
	if [6]byte(data[:6]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	// Checksum before version: a bit flip in the version field should read
	// as corruption, not as a innocently mismatched version.
	body := data[:len(data)-trailerLen]
	want := binary.LittleEndian.Uint32(data[len(data)-trailerLen:])
	if got := crc32.ChecksumIEEE(body); got != want {
		return nil, fmt.Errorf("%w: crc32 %08x, want %08x", ErrChecksum, got, want)
	}
	if v := binary.LittleEndian.Uint16(data[6:8]); v != FormatVersion {
		return nil, fmt.Errorf("%w: snapshot v%d, this build reads v%d",
			ErrVersion, v, FormatVersion)
	}
	return body[headerLen:], nil
}

// Enc accumulates a payload. The zero value is ready to use.
type Enc struct {
	buf []byte
}

// Bytes returns the accumulated payload.
func (e *Enc) Bytes() []byte { return e.buf }

// Len returns the accumulated payload length.
func (e *Enc) Len() int { return len(e.buf) }

// U64 appends a little-endian uint64.
func (e *Enc) U64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

// U32 appends a little-endian uint32.
func (e *Enc) U32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }

// U16 appends a little-endian uint16.
func (e *Enc) U16(v uint16) { e.buf = binary.LittleEndian.AppendUint16(e.buf, v) }

// Bool appends one byte (0 or 1).
func (e *Enc) Bool(v bool) {
	b := byte(0)
	if v {
		b = 1
	}
	e.buf = append(e.buf, b)
}

// F64 appends a float64 as its IEEE-754 bits.
func (e *Enc) F64(v float64) { e.U64(math.Float64bits(v)) }

// BytesField appends a u32 length prefix followed by the raw bytes.
func (e *Enc) BytesField(b []byte) {
	e.U32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// String appends s as a length-prefixed byte field.
func (e *Enc) String(s string) {
	e.U32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// U64s appends a u32 count prefix followed by each element.
func (e *Enc) U64s(vs []uint64) {
	e.U32(uint32(len(vs)))
	for _, v := range vs {
		e.U64(v)
	}
}

// Dec reads a payload with a sticky error: after the first failure every
// subsequent read returns the zero value and Err() reports the failure, so
// component LoadState code can decode straight-line and check once.
type Dec struct {
	buf []byte
	off int
	err error
}

// NewDec returns a decoder over payload.
func NewDec(payload []byte) *Dec { return &Dec{buf: payload} }

// Err returns the sticky decode error, if any.
func (d *Dec) Err() error { return d.err }

// Remaining returns the unread byte count.
func (d *Dec) Remaining() int { return len(d.buf) - d.off }

// Close verifies the payload was consumed exactly.
func (d *Dec) Close() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		d.err = fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(d.buf)-d.off)
	}
	return d.err
}

// fail records the first error.
func (d *Dec) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

// take returns the next n bytes, or nil with ErrTruncated.
func (d *Dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || len(d.buf)-d.off < n {
		d.fail(fmt.Errorf("%w: need %d bytes at offset %d, have %d",
			ErrTruncated, n, d.off, len(d.buf)-d.off))
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// U64 reads a little-endian uint64.
func (d *Dec) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// U32 reads a little-endian uint32.
func (d *Dec) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U16 reads a little-endian uint16.
func (d *Dec) U16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// Bool reads one byte; any value other than 0 or 1 is corruption.
func (d *Dec) Bool() bool {
	b := d.take(1)
	if b == nil {
		return false
	}
	switch b[0] {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail(fmt.Errorf("%w: bool byte 0x%02x", ErrCorrupt, b[0]))
		return false
	}
}

// F64 reads a float64 from its IEEE-754 bits.
func (d *Dec) F64() float64 { return math.Float64frombits(d.U64()) }

// BytesField reads a length-prefixed byte field. The length is bounded by
// the remaining input, so hostile prefixes cannot force huge allocations.
func (d *Dec) BytesField() []byte {
	n := int(d.U32())
	b := d.take(n)
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

// String reads a length-prefixed string.
func (d *Dec) String() string {
	n := int(d.U32())
	b := d.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// U64s reads a count-prefixed uint64 slice.
func (d *Dec) U64s() []uint64 {
	n := int(d.U32())
	if d.err != nil {
		return nil
	}
	// Each element takes 8 bytes; reject counts the input cannot hold
	// before allocating.
	if d.Remaining() < n*8 {
		d.fail(fmt.Errorf("%w: u64 slice of %d elements, %d bytes remain",
			ErrTruncated, n, d.Remaining()))
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = d.U64()
	}
	return out
}

// Count reads a u32 element count for a sequence whose elements occupy at
// least minElemBytes each, rejecting counts the remaining input cannot hold.
func (d *Dec) Count(minElemBytes int) int {
	n := int(d.U32())
	if d.err != nil {
		return 0
	}
	if minElemBytes < 1 {
		minElemBytes = 1
	}
	if n < 0 || d.Remaining() < n*minElemBytes {
		d.fail(fmt.Errorf("%w: sequence of %d elements (>=%dB each), %d bytes remain",
			ErrTruncated, n, minElemBytes, d.Remaining()))
		return 0
	}
	return n
}
