package ckpt

import (
	"errors"
	"testing"
)

// FuzzCheckpointDecode feeds hostile bytes through the full decode path:
// envelope open, then a primitive-decode walk shaped like a component
// LoadState. The contract under fuzz is typed errors, never a panic and
// never an unbounded allocation.
func FuzzCheckpointDecode(f *testing.F) {
	// Seed corpus: a valid snapshot, a truncated one, a bit-flipped one, a
	// version-bumped one, and degenerate inputs (mirrors testdata/corpus).
	valid := Seal(samplePayload())
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	flipped := append([]byte(nil), valid...)
	flipped[9] ^= 0x10
	f.Add(flipped)
	bumped := append([]byte(nil), valid[:len(valid)-4]...)
	bumped[6]++
	f.Add(sealCRC(bumped))
	f.Add([]byte{})
	f.Add([]byte("NVCKPT"))
	f.Add(Seal(nil))

	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := Open(data)
		if err != nil {
			if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrChecksum) &&
				!errors.Is(err, ErrVersion) && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("Open returned untyped error: %v", err)
			}
			return
		}
		// The envelope checked out; drain the payload through every
		// primitive. Any failure must be typed and sticky.
		d := NewDec(payload)
		_ = d.U64()
		_ = d.U32()
		_ = d.U16()
		_ = d.Bool()
		_ = d.F64()
		_ = d.BytesField()
		_ = d.String()
		_ = d.U64s()
		n := d.Count(8)
		for i := 0; i < n; i++ {
			_ = d.U64()
		}
		if err := d.Close(); err != nil {
			if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("Close returned untyped error: %v", err)
			}
		}
	})
}
