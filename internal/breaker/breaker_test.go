package breaker

import (
	"testing"
	"time"
)

// TestHalfOpenAdmitsOneProbe pins the state machine: while a probe is in
// flight, further attempts are shed; a failed probe re-opens the circuit.
func TestHalfOpenAdmitsOneProbe(t *testing.T) {
	b := New(1, time.Hour)
	b.RecordFailure()
	if ok, wait := b.Allow(); ok || wait <= 0 {
		t.Fatalf("open breaker allowed an attempt (wait %v)", wait)
	}

	b = New(1, 0) // cooldown elapses immediately
	b.RecordFailure()
	if ok, _ := b.Allow(); !ok {
		t.Fatal("post-cooldown breaker refused the probe")
	}
	if ok, _ := b.Allow(); ok {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	b.RecordFailure()
	if state, _, opens := b.Snapshot(); state != Open || opens != 2 {
		t.Fatalf("failed probe: state %q opens %d, want open 2", state, opens)
	}

	disabled := New(-1, time.Hour)
	for i := 0; i < 10; i++ {
		disabled.RecordFailure()
	}
	if ok, _ := disabled.Allow(); !ok {
		t.Fatal("disabled breaker shed an attempt")
	}
}

// TestSuccessClosesFromAnyState verifies RecordSuccess resets the circuit.
func TestSuccessClosesFromAnyState(t *testing.T) {
	b := New(2, 0)
	b.RecordFailure()
	b.RecordFailure()
	if state, _, _ := b.Snapshot(); state != Open {
		t.Fatalf("state = %q, want open", state)
	}
	if ok, _ := b.Allow(); !ok { // half-open probe
		t.Fatal("probe refused")
	}
	b.RecordSuccess()
	if state, consec, _ := b.Snapshot(); state != Closed || consec != 0 {
		t.Fatalf("after success: state %q consecutive %d, want closed 0", state, consec)
	}
	if ok, _ := b.Allow(); !ok {
		t.Fatal("closed breaker refused an attempt")
	}
}
