package breaker

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestHalfOpenAdmitsOneProbe pins the state machine: while a probe is in
// flight, further attempts are shed; a failed probe re-opens the circuit.
func TestHalfOpenAdmitsOneProbe(t *testing.T) {
	b := New(1, time.Hour)
	b.RecordFailure()
	if ok, wait := b.Allow(); ok || wait <= 0 {
		t.Fatalf("open breaker allowed an attempt (wait %v)", wait)
	}

	b = New(1, 0) // cooldown elapses immediately
	b.RecordFailure()
	if ok, _ := b.Allow(); !ok {
		t.Fatal("post-cooldown breaker refused the probe")
	}
	if ok, _ := b.Allow(); ok {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	b.RecordFailure()
	if state, _, opens := b.Snapshot(); state != Open || opens != 2 {
		t.Fatalf("failed probe: state %q opens %d, want open 2", state, opens)
	}

	disabled := New(-1, time.Hour)
	for i := 0; i < 10; i++ {
		disabled.RecordFailure()
	}
	if ok, _ := disabled.Allow(); !ok {
		t.Fatal("disabled breaker shed an attempt")
	}
}

// TestSuccessClosesFromAnyState verifies RecordSuccess resets the circuit.
func TestSuccessClosesFromAnyState(t *testing.T) {
	b := New(2, 0)
	b.RecordFailure()
	b.RecordFailure()
	if state, _, _ := b.Snapshot(); state != Open {
		t.Fatalf("state = %q, want open", state)
	}
	if ok, _ := b.Allow(); !ok { // half-open probe
		t.Fatal("probe refused")
	}
	b.RecordSuccess()
	if state, consec, _ := b.Snapshot(); state != Closed || consec != 0 {
		t.Fatalf("after success: state %q consecutive %d, want closed 0", state, consec)
	}
	if ok, _ := b.Allow(); !ok {
		t.Fatal("closed breaker refused an attempt")
	}
}

// TestHalfOpenSingleProbeUnderContention is the concurrency version of the
// single-probe guarantee: with the circuit open and the cooldown elapsed,
// any number of goroutines racing through Allow must admit exactly one
// probe. Run under -race (make race does) this also proves the transition
// open -> half-open -> probing is atomic, not check-then-act.
func TestHalfOpenSingleProbeUnderContention(t *testing.T) {
	const goroutines = 32
	const rounds = 100

	b := New(1, 0) // cooldown elapses immediately: open == probe-eligible
	for round := 0; round < rounds; round++ {
		b.RecordFailure() // (re-)open the circuit
		var admitted atomic.Int64
		start := make(chan struct{})
		var wg sync.WaitGroup
		for i := 0; i < goroutines; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				if ok, _ := b.Allow(); ok {
					admitted.Add(1)
				}
			}()
		}
		close(start)
		wg.Wait()
		if n := admitted.Load(); n != 1 {
			t.Fatalf("round %d: %d probes admitted concurrently, want exactly 1", round, n)
		}
		// Fail the admitted probe so the next round starts from open again.
	}
}

// TestReadyDoesNotConsumeProbe pins the Ready/Allow contract concurrently:
// routing layers may poll Ready from any number of goroutines without
// stealing the half-open probe slot from the goroutine that calls Allow.
func TestReadyDoesNotConsumeProbe(t *testing.T) {
	b := New(1, 0)
	b.RecordFailure()

	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				b.Ready()
			}
		}()
	}
	wg.Wait()
	if ok, _ := b.Allow(); !ok {
		t.Fatal("Ready consumed the half-open probe slot")
	}
	if ok, _ := b.Allow(); ok {
		t.Fatal("second concurrent probe admitted after Ready hammering")
	}
}

// TestConcurrentChurnInvariants hammers every method from many goroutines at
// once and checks the observable invariants that must hold regardless of
// interleaving: Snapshot always reports a legal state, consecutive failures
// never go negative, and the opens counter is monotonic. The real assertion
// is the race detector finding nothing.
func TestConcurrentChurnInvariants(t *testing.T) {
	b := New(3, time.Microsecond)
	var wg sync.WaitGroup
	var maxOpens atomic.Uint64

	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				switch (seed + j) % 5 {
				case 0:
					b.Allow()
				case 1:
					b.Ready()
				case 2:
					b.RecordFailure()
				case 3:
					b.RecordSuccess()
				default:
					state, consec, opens := b.Snapshot()
					if state != Closed && state != Open && state != HalfOpen {
						t.Errorf("illegal state %q", state)
					}
					if consec < 0 {
						t.Errorf("negative consecutive failures %d", consec)
					}
					// CompareAndSwap loop keeps the strongest lower bound seen;
					// opens must never run backwards.
					for {
						prev := maxOpens.Load()
						if opens >= prev {
							if maxOpens.CompareAndSwap(prev, opens) {
								break
							}
							continue
						}
						break
					}
				}
			}
		}(i)
	}
	wg.Wait()

	if _, _, opens := b.Snapshot(); opens < maxOpens.Load() {
		t.Fatalf("opens counter ran backwards: final %d < observed %d", opens, maxOpens.Load())
	}
}

// TestConsecutiveFailuresOpenOnce verifies that a burst of concurrent
// failures with no successes opens the circuit, and that the opens counter
// records one transition (not one per failure past the threshold).
func TestConsecutiveFailuresOpenOnce(t *testing.T) {
	b := New(5, time.Hour)
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				b.RecordFailure()
			}
		}()
	}
	wg.Wait()

	state, consec, opens := b.Snapshot()
	if state != Open {
		t.Fatalf("state = %q after 200 failures, want open", state)
	}
	if consec != 200 {
		t.Fatalf("consecutive = %d, want 200 (failures lost under contention)", consec)
	}
	if opens != 1 {
		t.Fatalf("opens = %d, want 1 (open transition double-counted)", opens)
	}
	if ok, wait := b.Allow(); ok || wait <= 0 {
		t.Fatalf("freshly opened breaker admitted an attempt (wait %v)", wait)
	}
}
