// Package breaker implements the consecutive-failure circuit breaker shared
// by nvmserved (guarding the simulation engine) and the cluster layer
// (tracking remote peer health). The state machine is the classic three-state
// breaker: closed while healthy, open after Threshold consecutive failures,
// and half-open after a cooldown, admitting exactly one probe whose outcome
// closes or re-opens the circuit.
package breaker

import (
	"sync"
	"time"
)

// Breaker states.
const (
	Closed   = "closed"
	Open     = "open"
	HalfOpen = "half-open"
)

// Breaker is a consecutive-failure circuit breaker: when threshold failures
// occur in a row with no intervening success, the breaker opens and Allow
// refuses until a cooldown passes. The first Allow after the cooldown is
// admitted as a single probe (half-open); its outcome closes or re-opens the
// circuit. A negative threshold disables the breaker (Allow always true).
type Breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration

	state       string
	consecutive int
	openedAt    time.Time
	probing     bool
	opens       uint64
}

// New returns a closed Breaker with the given threshold and cooldown.
func New(threshold int, cooldown time.Duration) *Breaker {
	return &Breaker{threshold: threshold, cooldown: cooldown, state: Closed}
}

// Allow reports whether a new attempt may proceed, and the suggested
// retry-after duration when it may not.
func (b *Breaker) Allow() (bool, time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.threshold < 0 {
		return true, 0 // breaker disabled
	}
	switch b.state {
	case Closed:
		return true, 0
	case Open:
		if wait := b.cooldown - time.Since(b.openedAt); wait > 0 {
			return false, wait
		}
		// Cooldown elapsed: admit exactly one probe.
		b.state = HalfOpen
		b.probing = true
		return true, 0
	default: // half-open
		if b.probing {
			return false, b.cooldown
		}
		b.probing = true
		return true, 0
	}
}

// Ready reports whether an attempt would currently be admitted, without
// consuming the half-open probe slot. Routing layers use this to order
// candidates; the eventual attempt still goes through Allow.
func (b *Breaker) Ready() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.threshold < 0 {
		return true
	}
	switch b.state {
	case Closed:
		return true
	case Open:
		return time.Since(b.openedAt) >= b.cooldown
	default: // half-open
		return !b.probing
	}
}

// RecordSuccess notes a successful attempt; any success closes the circuit.
func (b *Breaker) RecordSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = Closed
	b.consecutive = 0
	b.probing = false
}

// RecordFailure notes a failure; threshold consecutive failures (or a failed
// half-open probe) open the circuit.
func (b *Breaker) RecordFailure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.threshold < 0 {
		return
	}
	b.consecutive++
	if b.state == HalfOpen || b.consecutive >= b.threshold {
		if b.state != Open {
			b.opens++
		}
		b.state = Open
		b.openedAt = time.Now()
		b.probing = false
	}
}

// Snapshot returns (state, consecutive failures, times opened).
func (b *Breaker) Snapshot() (string, int, uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	// Present the post-cooldown open state as half-open-eligible only once a
	// probe is actually admitted; reporting stays simple and truthful.
	return b.state, b.consecutive, b.opens
}

// State returns just the current state string.
func (b *Breaker) State() string {
	s, _, _ := b.Snapshot()
	return s
}
