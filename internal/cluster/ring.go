package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// Ring is a consistent-hash ring mapping canonical job hashes onto node ids.
// Each node is placed at VNodes pseudo-random points (derived from
// SHA-256(id#i), the same hash family as the job hashes themselves); a key is
// owned by the first node point at or clockwise after the key's point. With
// enough virtual nodes the load split is near-uniform, and adding or removing
// one node moves only ~1/N of the key space — a sweep in flight keeps hitting
// the same owners for every job an unaffected node already computed.
//
// Membership is fixed at construction in this cluster (peers come from
// flags); health-based routing happens above the ring, which always answers
// from the full member set so every node computes identical ownership.
type Ring struct {
	vnodes int
	points []ringPoint // sorted by point
	nodes  []string    // sorted ids, for Nodes()
}

type ringPoint struct {
	point uint64
	node  string
}

// defaultVNodes balances lookup cost against split uniformity; at 64 points
// per node a 3-node ring's heaviest node carries within ~15% of the mean.
const defaultVNodes = 64

// NewRing builds a ring over the given node ids with vnodes virtual points
// per node (0 uses the default).
func NewRing(ids []string, vnodes int) (*Ring, error) {
	if len(ids) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one node")
	}
	if vnodes <= 0 {
		vnodes = defaultVNodes
	}
	r := &Ring{vnodes: vnodes}
	seen := make(map[string]bool, len(ids))
	for _, id := range ids {
		if id == "" {
			return nil, fmt.Errorf("cluster: empty node id")
		}
		if seen[id] {
			return nil, fmt.Errorf("cluster: duplicate node id %q", id)
		}
		seen[id] = true
		r.nodes = append(r.nodes, id)
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{
				point: hashPoint(fmt.Sprintf("%s#%d", id, i)),
				node:  id,
			})
		}
	}
	sort.Strings(r.nodes)
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].point != r.points[j].point {
			return r.points[i].point < r.points[j].point
		}
		// Ties (astronomically unlikely) break by id so every node agrees.
		return r.points[i].node < r.points[j].node
	})
	return r, nil
}

// hashPoint maps a string to a ring position.
func hashPoint(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// keyPoint maps a canonical job hash (hex SHA-256) to a ring position. The
// job hash is already uniform, but re-hashing keeps keys and nodes in the
// same point family regardless of key format.
func keyPoint(jobHash string) uint64 {
	return hashPoint("key:" + jobHash)
}

// Nodes returns the member ids in sorted order.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// Owner returns the node owning the given canonical job hash.
func (r *Ring) Owner(jobHash string) string {
	return r.points[r.successor(keyPoint(jobHash))].node
}

// Order returns every distinct node in ring order starting at the job hash's
// owner: Order(h)[0] is the owner, Order(h)[1] the first replica to hedge or
// fail over to, and so on. All members appear exactly once.
func (r *Ring) Order(jobHash string) []string {
	out := make([]string, 0, len(r.nodes))
	seen := make(map[string]bool, len(r.nodes))
	start := r.successor(keyPoint(jobHash))
	for i := 0; i < len(r.points) && len(out) < len(r.nodes); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}

// successor returns the index of the first ring point at or after pt,
// wrapping at the top.
func (r *Ring) successor(pt uint64) int {
	i := sort.Search(len(r.points), func(i int) bool {
		return r.points[i].point >= pt
	})
	if i == len(r.points) {
		return 0
	}
	return i
}
