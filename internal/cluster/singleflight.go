package cluster

import (
	"sync"

	"repro/internal/server"
)

// flightGroup deduplicates concurrent peer-cache fetches for the same job
// hash: the first caller executes the fetch, every concurrent duplicate
// parks on it and shares the answer. Combined with the owner-side wait on
// in-flight jobs (server.WaitByHash) this keeps a hot sweep from stampeding
// the owning node with one GET per local miss.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	res  *server.Result
	ok   bool
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: make(map[string]*flightCall)}
}

// Do executes fn for key, or waits for an identical in-flight call and
// shares its answer. shared reports whether this caller piggybacked.
func (g *flightGroup) Do(key string, fn func() (*server.Result, bool)) (res *server.Result, ok, shared bool) {
	g.mu.Lock()
	if c, dup := g.m[key]; dup {
		g.mu.Unlock()
		<-c.done
		return c.res, c.ok, true
	}
	c := &flightCall{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	c.res, c.ok = fn()
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(c.done)
	return c.res, c.ok, false
}
