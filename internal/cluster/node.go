// Package cluster turns nvmserved into a multi-node fleet. Every node is
// symmetric: it owns a slice of the canonical job-hash space on a
// consistent-hash ring, runs a local nvmserved scheduler, and speaks a small
// HTTP peer protocol to the rest of the membership. Three mechanisms do the
// work:
//
//   - Sharded dispatch: a job submitted to any node's cluster API is routed
//     to the ring owner of its canonical hash, so repeated sweeps hit the
//     same owner's result cache no matter which node coordinates.
//   - Peer cache fill: a node about to simulate a job it does not own first
//     asks the owner for the finished result (GET /v1/peer/result/{hash}),
//     with single-flight suppression on both sides, so a result computed
//     anywhere is a cache hit everywhere.
//   - Hedged dispatch: when the owner exceeds a latency-percentile budget,
//     the job is also sent to the next replica on the ring. Results are
//     deterministic functions of the plan, so first-answer-wins is always
//     correct; the loser is canceled.
//
// Peer health reuses the internal/breaker circuit breaker: transport faults
// and 5xx responses open a peer's breaker, routing traffic around it until a
// cooldown probe succeeds — a SIGKILLed node mid-sweep costs reroutes, not
// the sweep. Integrity failures are harsher: every peer path re-verifies
// response bytes (digest, canonical hash, snapshot envelope), and a peer
// caught returning corrupt bytes more than QuarantineThreshold times is
// exiled from all routing — corruption is not a transient to retry through.
// Dispatch itself is bounded two ways: a per-dispatch deadline
// (DispatchTimeout) and a per-dispatch attempt budget (AttemptBudget), so a
// partitioned owner cannot trigger unbounded re-dispatch. Background loops
// started with Start probe peer health off the hot path and run anti-entropy
// repair so checkpoint replicas lost to a partition re-converge after heal.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/breaker"
	"repro/internal/server"
)

// Config wires a Node. Zero fields take defaults.
type Config struct {
	// SelfID is this node's id; it must appear in Peers.
	SelfID string
	// Peers is the full fixed membership, self included (self's URL may be
	// empty; it is never dialed).
	Peers []Peer
	// VNodes is the virtual-node count per member (default 64).
	VNodes int
	// HedgeAfter, when positive, is a fixed straggler budget: a dispatched
	// job still unanswered after this long is hedged to the next replica.
	// Zero selects the adaptive policy: 1.5x the HedgePercentile of recent
	// remote latencies, clamped to [HedgeMin, HedgeMax].
	HedgeAfter      time.Duration
	HedgePercentile float64       // default 0.95
	HedgeMin        time.Duration // default 25ms
	HedgeMax        time.Duration // default 2s
	// FillWait is how long a peer fill lets the owner hold the request for an
	// in-flight computation of the same hash (default 250ms).
	FillWait time.Duration
	// RequestTimeout bounds one peer run end to end (default 2m; it should
	// exceed the local job timeout so remote execution is not the tighter
	// constraint).
	RequestTimeout time.Duration
	// DispatchTimeout bounds one whole dispatch — every reroute and hedge
	// included — so a hostile network cannot stretch a single job forever
	// (default 2x RequestTimeout; negative disables the deadline).
	DispatchTimeout time.Duration
	// AttemptBudget caps candidate launches (first try, reroutes, and the
	// hedge together) per dispatch, bounding retry storms under partitions
	// (default member count + 1; negative removes the bound).
	AttemptBudget int
	// BreakerThreshold / BreakerCooldown configure each peer's health breaker
	// (defaults 3 consecutive failures, 3s cooldown).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// QuarantineThreshold is how many corrupt responses (failed digest, wrong
	// hash, bad snapshot envelope) exile a peer from all routing for the rest
	// of the process lifetime (default 3; negative disables quarantine).
	QuarantineThreshold int
	// ProbeTimeout bounds one health probe (default 1s) so a hung peer does
	// not stall the probe loop for the full request budget.
	ProbeTimeout time.Duration
	// ProbeEvery, when positive, has Start run a background loop probing
	// every peer's /v1/healthz, surfacing probe latency in /v1/cluster/info.
	ProbeEvery time.Duration
	// AntiEntropyEvery, when positive, has Start run a background repair
	// loop re-replicating local checkpoints whose ring replica lacks a copy.
	AntiEntropyEvery time.Duration
	// SweepParallel bounds concurrently in-flight points of one cluster
	// sweep (default 2 x local workers x member count: enough to saturate
	// the fleet's pools with headroom for cache hits).
	SweepParallel int
	// Transport overrides the peer HTTP transport. The chaos fabric injects
	// its fault-injecting RoundTripper here; nil uses the standard pooled
	// transport.
	Transport http.RoundTripper
}

func (c Config) withDefaults(workers, members int) Config {
	if c.VNodes <= 0 {
		c.VNodes = defaultVNodes
	}
	if c.HedgePercentile <= 0 || c.HedgePercentile >= 1 {
		c.HedgePercentile = 0.95
	}
	if c.HedgeMin <= 0 {
		c.HedgeMin = 25 * time.Millisecond
	}
	if c.HedgeMax <= 0 {
		c.HedgeMax = 2 * time.Second
	}
	if c.FillWait <= 0 {
		c.FillWait = 250 * time.Millisecond
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 2 * time.Minute
	}
	if c.DispatchTimeout == 0 {
		c.DispatchTimeout = 2 * c.RequestTimeout
	}
	if c.AttemptBudget == 0 {
		c.AttemptBudget = members + 1
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 3 * time.Second
	}
	if c.QuarantineThreshold == 0 {
		c.QuarantineThreshold = 3
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = time.Second
	}
	if c.SweepParallel <= 0 {
		c.SweepParallel = 2 * workers * members
	}
	return c
}

// peerState is one remote member: its address, health breaker, integrity
// record, and last health-probe observation.
type peerState struct {
	id  string
	url string
	brk *breaker.Breaker

	corrupt     atomic.Uint64 // integrity failures observed from this peer
	quarantined atomic.Bool   // exiled from all routing (corruption threshold hit)

	probeStatus atomic.Int64 // last probe HTTP status; 0 = probe failed
	probeNanos  atomic.Int64 // last probe round-trip time
	probeAt     atomic.Int64 // unix nanos of the last probe, 0 = never probed
}

// routable reports whether the peer may be sent traffic at all: quarantine is
// absolute (corrupt bytes are not a transient), the breaker is advisory.
func (ps *peerState) routable() bool {
	return !ps.quarantined.Load() && ps.brk.Ready()
}

// Node is one cluster member. Create with NewNode; it installs the peer
// cache-fill hook and the cluster Prometheus collector on the local server.
// Start launches the configured background loops; Close stops them.
type Node struct {
	cfg    Config
	local  *server.Server
	ring   *Ring
	peers  map[string]*peerState // remote members only
	client *Client
	fillsf *flightGroup
	lat    *latWindow
	m      clusterMetrics

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewNode builds the cluster layer over a local scheduler. The membership in
// cfg.Peers is fixed for the node's lifetime and must include cfg.SelfID.
func NewNode(local *server.Server, cfg Config) (*Node, error) {
	ids := make([]string, 0, len(cfg.Peers))
	selfSeen := false
	for _, p := range cfg.Peers {
		ids = append(ids, p.ID)
		if p.ID == cfg.SelfID {
			selfSeen = true
		}
	}
	if cfg.SelfID == "" {
		return nil, fmt.Errorf("cluster: empty self id")
	}
	if !selfSeen {
		return nil, fmt.Errorf("cluster: self id %q not in peer list", cfg.SelfID)
	}
	cfg = cfg.withDefaults(local.Options().Workers, len(ids))
	ring, err := NewRing(ids, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	n := &Node{
		cfg:    cfg,
		local:  local,
		ring:   ring,
		peers:  make(map[string]*peerState),
		client: NewClient(cfg.RequestTimeout, cfg.ProbeTimeout, cfg.Transport),
		fillsf: newFlightGroup(),
		lat:    newLatWindow(128),
	}
	for _, p := range cfg.Peers {
		if p.ID == cfg.SelfID {
			continue
		}
		if p.URL == "" {
			return nil, fmt.Errorf("cluster: peer %q has no URL", p.ID)
		}
		n.peers[p.ID] = &peerState{
			id:  p.ID,
			url: p.URL,
			brk: breaker.New(cfg.BreakerThreshold, cfg.BreakerCooldown),
		}
	}
	if len(n.peers) > 0 {
		local.SetFill(n.fillFromPeers)
		local.SetCkptReplicate(n.replicateCkpt)
	}
	local.RegisterProm(n.writeProm)
	return n, nil
}

// Start launches the node's configured background loops: health probing
// (ProbeEvery) and checkpoint anti-entropy (AntiEntropyEvery). Idempotent
// until Close.
func (n *Node) Start() {
	if n.stop != nil || len(n.peers) == 0 {
		return
	}
	n.stop = make(chan struct{})
	if n.cfg.ProbeEvery > 0 {
		n.wg.Add(1)
		go n.loop(n.cfg.ProbeEvery, n.ProbePeers)
	}
	if n.cfg.AntiEntropyEvery > 0 {
		n.wg.Add(1)
		go n.loop(n.cfg.AntiEntropyEvery, func(ctx context.Context) { n.AntiEntropy(ctx) })
	}
}

// Close stops the background loops started by Start and waits for them.
func (n *Node) Close() {
	if n.stop == nil {
		return
	}
	close(n.stop)
	n.wg.Wait()
	n.stop = nil
}

// loop drives one background pass function on a fixed period until Close.
func (n *Node) loop(every time.Duration, pass func(context.Context)) {
	defer n.wg.Done()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		<-n.stop
		cancel()
	}()
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-tick.C:
			pass(ctx)
		}
	}
}

// ProbePeers probes every peer's health endpoint once, recording status and
// round-trip latency for /v1/cluster/info. Probes are observational: the
// breaker is driven by real traffic, not probes, so a probe burst can never
// flap routing on its own.
func (n *Node) ProbePeers(ctx context.Context) {
	for _, ps := range n.peers {
		status, took, err := n.client.Health(ctx, ps.url)
		n.m.probes.Add(1)
		ps.probeAt.Store(time.Now().UnixNano())
		ps.probeNanos.Store(int64(took))
		if err != nil {
			ps.probeStatus.Store(0)
			n.m.probeFailures.Add(1)
			continue
		}
		ps.probeStatus.Store(int64(status))
	}
}

// AntiEntropy runs one checkpoint repair pass: for every locally held
// snapshot, make sure the first routable non-self member in its ring order
// holds a copy, pushing ours if not. This is the convergence half of
// partition tolerance — replication during the partition was best-effort and
// may have silently under-replicated; after heal, this pass restores the
// replica without waiting for the job's next barrier. Returns how many
// snapshots were re-replicated.
func (n *Node) AntiEntropy(ctx context.Context) int {
	if len(n.peers) == 0 {
		return 0
	}
	repaired := 0
	for _, hash := range n.local.CheckpointHashes() {
		if ctx.Err() != nil {
			break
		}
		for _, id := range n.ring.Order(hash) {
			if id == n.cfg.SelfID {
				continue
			}
			ps := n.peers[id]
			if !ps.routable() {
				continue
			}
			hctx, hcancel := context.WithTimeout(ctx, 5*time.Second)
			have, err := n.client.HasCkpt(hctx, ps.url, hash)
			hcancel()
			if err != nil {
				n.chargePeer(ps, err)
				continue // try the next replica candidate
			}
			if have {
				ps.brk.RecordSuccess()
				break // replica intact; next hash
			}
			snap, ok := n.local.CheckpointBytes(hash)
			if !ok {
				break // dropped since listing (job finished); nothing to repair
			}
			pctx, pcancel := context.WithTimeout(ctx, 5*time.Second)
			err = n.client.PushCkpt(pctx, ps.url, hash, snap)
			pcancel()
			if err != nil {
				n.m.ckptReplErrors.Add(1)
				n.chargePeer(ps, err)
				continue
			}
			ps.brk.RecordSuccess()
			n.m.ckptRepaired.Add(1)
			repaired++
			break // one replica is the replication factor
		}
	}
	return repaired
}

// chargePeer converts a failed peer call into health bookkeeping: corrupt
// responses count toward quarantine, transport faults and 5xx charge the
// breaker. Safe to call with any error; non-peerErrors are ignored.
func (n *Node) chargePeer(ps *peerState, err error) {
	var pe *peerError
	if !errors.As(err, &pe) {
		return
	}
	if pe.corrupt {
		n.m.corruptResponses.Add(1)
		if c := ps.corrupt.Add(1); n.cfg.QuarantineThreshold > 0 &&
			c == uint64(n.cfg.QuarantineThreshold) {
			ps.quarantined.Store(true)
			n.m.quarantines.Add(1)
		}
	}
	if pe.countsAgainstPeer() {
		ps.brk.RecordFailure()
	}
}

// replicateCkpt is the server.CkptReplicateFunc installed on the local
// scheduler: every checkpoint the scheduler saves is pushed, best-effort, to
// the first routable non-self member in the hash's ring order. With one
// replica per barrier, a SIGKILLed node costs only the work since the last
// barrier — the successor resumes from its copy when the job is resubmitted.
func (n *Node) replicateCkpt(hash string, snap []byte) {
	for _, id := range n.ring.Order(hash) {
		if id == n.cfg.SelfID {
			continue
		}
		ps := n.peers[id]
		if !ps.routable() {
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		err := n.client.PushCkpt(ctx, ps.url, hash, snap)
		cancel()
		if err != nil {
			n.m.ckptReplErrors.Add(1)
			n.chargePeer(ps, err)
			continue // try the next replica; any surviving copy is enough
		}
		ps.brk.RecordSuccess()
		n.m.ckptReplicated.Add(1)
		return
	}
}

// recoverCkpt runs before this node simulates a dispatched job: if the plan
// checkpoints and no snapshot is held locally, ask up to two non-self ring
// members for their replica so the run resumes mid-stream instead of
// restarting. Best-effort — any failure just means simulating from scratch,
// which is always correct.
func (n *Node) recoverCkpt(ctx context.Context, p *server.Plan) {
	if p.CkptEvery <= 0 || len(n.peers) == 0 {
		return
	}
	hash := p.Hash()
	if _, ok := n.local.CheckpointBytes(hash); ok {
		return
	}
	targets := 0
	for _, id := range n.ring.Order(hash) {
		if id == n.cfg.SelfID {
			continue
		}
		if targets++; targets > 2 {
			break
		}
		ps := n.peers[id]
		if !ps.routable() {
			continue
		}
		fctx, fcancel := context.WithTimeout(ctx, 5*time.Second)
		snap, ok, err := n.client.FetchCkpt(fctx, ps.url, hash)
		fcancel()
		if err != nil {
			n.chargePeer(ps, err)
			continue
		}
		ps.brk.RecordSuccess()
		if !ok {
			continue
		}
		if n.local.PutCheckpoint(hash, snap) == nil {
			n.m.ckptRecovered.Add(1)
			return
		}
	}
}

// Local returns the node's local scheduler.
func (n *Node) Local() *server.Server { return n.local }

// Owner returns the ring owner of a canonical job hash (exported for tests
// and tooling that want to steer jobs at specific members).
func (n *Node) Owner(hash string) string { return n.ring.Owner(hash) }

// Quarantined reports whether a peer has been exiled for returning corrupt
// bytes (exported for tooling and the chaos soak's assertions).
func (n *Node) Quarantined(id string) bool {
	ps, ok := n.peers[id]
	return ok && ps.quarantined.Load()
}

// Route describes where one dispatch went.
type Route struct {
	Hash string `json:"hash"`
	// Owner is the ring owner of the hash; Node is the member whose answer
	// won (they differ after a reroute or a hedge win).
	Owner    string `json:"owner"`
	Node     string `json:"node"`
	Hedged   bool   `json:"hedged,omitempty"`
	HedgeWon bool   `json:"hedge_won,omitempty"`
	Reroutes int    `json:"reroutes,omitempty"`
	// Attempts is how many candidate launches this dispatch consumed (first
	// try + reroutes + hedge), always bounded by the attempt budget.
	Attempts int `json:"attempts,omitempty"`
}

// Dispatch routes one job to the ring owner of its canonical hash and waits
// for the result, hedging to the next replica past the straggler budget and
// rerouting around failed peers. The local node is always the candidate of
// last resort, so a dispatch succeeds whenever the job can run at all. The
// whole dispatch — reroutes and hedge included — runs under DispatchTimeout
// and never launches more than AttemptBudget candidates.
func (n *Node) Dispatch(ctx context.Context, spec server.JobSpec) (*server.Result, Route, error) {
	p, err := spec.Compile()
	if err != nil {
		return nil, Route{}, err
	}
	if n.cfg.DispatchTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, n.cfg.DispatchTimeout)
		defer cancel()
	}
	hash := p.Hash()
	order := n.ring.Order(hash)
	route := Route{Hash: hash, Owner: order[0]}

	// Candidate chain: ring order with unhealthy peers pushed behind healthy
	// ones (still reachable as a desperation move — Ready is a snapshot, and
	// a half-open peer may have recovered). Quarantined peers are excluded
	// outright: their bytes cannot be trusted. Self is always "healthy".
	chain := make([]string, 0, len(order))
	var unhealthy []string
	for _, id := range order {
		if id == n.cfg.SelfID {
			chain = append(chain, id)
			continue
		}
		ps := n.peers[id]
		if ps.quarantined.Load() {
			continue
		}
		if ps.brk.Ready() {
			chain = append(chain, id)
		} else {
			unhealthy = append(unhealthy, id)
		}
	}
	chain = append(chain, unhealthy...)

	res, winner, err := n.race(ctx, spec, chain, &route)
	if err != nil {
		return nil, route, err
	}
	route.Node = winner
	return res, route, nil
}

// outcome is one candidate's answer in a dispatch race.
type outcome struct {
	res    *server.Result
	id     string
	err    error
	remote bool
	hedge  bool
	took   time.Duration
}

// race launches candidates from chain one at a time: the next on failure,
// plus at most one hedge launch when the straggler budget expires. First
// successful answer wins; the shared context cancellation reaps the losers
// (a canceled peer run cancels the remote job too, via the request context).
// Launches stop once the attempt budget is spent — under a partition the
// dispatch then fails fast instead of storming the fleet with retries.
func (n *Node) race(ctx context.Context, spec server.JobSpec, chain []string, route *Route) (*server.Result, string, error) {
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()

	resc := make(chan outcome, len(chain))
	next := 0
	launch := func(hedge bool) bool {
		if n.cfg.AttemptBudget > 0 && route.Attempts >= n.cfg.AttemptBudget {
			n.m.budgetExhausted.Add(1)
			return false
		}
		for next < len(chain) {
			id := chain[next]
			next++
			if id == n.cfg.SelfID {
				route.Attempts++
				n.m.dispatchLocal.Add(1)
				go func() {
					res, err := n.runLocal(rctx, spec)
					resc <- outcome{res: res, id: id, err: err, hedge: hedge}
				}()
				return true
			}
			ps := n.peers[id]
			if ok, _ := ps.brk.Allow(); !ok || ps.quarantined.Load() {
				continue // shut out since chain ordering; skip
			}
			route.Attempts++
			n.m.dispatchRemote.Add(1)
			go func() {
				start := time.Now()
				res, err := n.client.Run(rctx, ps.url, spec, route.Hash)
				resc <- outcome{res: res, id: id, err: err, remote: true,
					hedge: hedge, took: time.Since(start)}
			}()
			return true
		}
		return false
	}

	if !launch(false) {
		return nil, "", fmt.Errorf("cluster: no dispatch candidates")
	}
	outstanding := 1
	budget := n.hedgeDelay()
	timer := time.NewTimer(budget)
	defer timer.Stop()
	hedged := false
	var lastErr error
	for outstanding > 0 {
		select {
		case o := <-resc:
			outstanding--
			ps := n.peers[o.id]
			if o.err == nil {
				if o.remote {
					ps.brk.RecordSuccess()
					n.lat.observe(o.took)
				}
				if o.hedge {
					n.m.hedgesWon.Add(1)
					route.HedgeWon = true
				}
				return o.res, o.id, nil
			}
			if o.remote {
				n.chargePeer(ps, o.err)
			}
			if rctx.Err() != nil {
				return nil, "", ctx.Err()
			}
			lastErr = o.err
			if launch(false) {
				outstanding++
				n.m.reroutes.Add(1)
				route.Reroutes++
			}
		case <-timer.C:
			if !hedged && launch(true) {
				outstanding++
				hedged = true
				n.m.hedgesFired.Add(1)
				route.Hedged = true
			}
		}
	}
	return nil, "", fmt.Errorf("cluster: every candidate failed after %d attempts, last error: %w",
		route.Attempts, lastErr)
}

// runLocal executes a job on the local scheduler, absorbing queue-full
// pushback with a short retry loop bounded by ctx. Dispatch traffic skips
// the fill hook: when this node is not the owner it is here as a hedge or
// reroute target, and filling would chase the very owner being avoided.
func (n *Node) runLocal(ctx context.Context, spec server.JobSpec) (*server.Result, error) {
	if p, err := spec.Compile(); err == nil {
		n.recoverCkpt(ctx, p)
	}
	for {
		st, err := n.local.SubmitNoFill(ctx, spec)
		switch {
		case err == nil:
			fin, werr := n.local.Wait(ctx, st.ID)
			if werr != nil {
				return nil, werr
			}
			switch fin.State {
			case server.JobDone:
				res, _, _ := n.local.Result(st.ID)
				return res, nil
			case server.JobCanceled:
				return nil, fmt.Errorf("cluster: local job canceled: %s", fin.Error)
			default:
				return nil, fmt.Errorf("cluster: local job failed: %s", fin.Error)
			}
		case errors.Is(err, server.ErrQueueFull):
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(2 * time.Millisecond):
			}
		default:
			return nil, err
		}
	}
}

// hedgeDelay returns the current straggler budget.
func (n *Node) hedgeDelay() time.Duration {
	if n.cfg.HedgeAfter > 0 {
		return n.cfg.HedgeAfter
	}
	p := n.lat.quantile(n.cfg.HedgePercentile)
	if p <= 0 {
		// No signal yet: start permissive so cold-start latencies (process
		// spawn, first-job JIT of the page pools) don't trigger false hedges.
		return n.cfg.HedgeMax
	}
	d := p + p/2
	if d < n.cfg.HedgeMin {
		d = n.cfg.HedgeMin
	}
	if d > n.cfg.HedgeMax {
		d = n.cfg.HedgeMax
	}
	return d
}

// fillFromPeers is the server.FillFunc installed on the local scheduler: a
// local cache miss for a hash someone else owns asks the owner (then the
// first replica) for the finished result before simulating. Requester-side
// single-flight collapses concurrent misses on one hash into one GET.
func (n *Node) fillFromPeers(ctx context.Context, hash string) (*server.Result, bool) {
	if len(n.peers) == 0 {
		return nil, false
	}
	order := n.ring.Order(hash)
	if order[0] == n.cfg.SelfID {
		// We are the owner: computing it here is the cluster working as
		// designed, not a fill opportunity.
		return nil, false
	}
	res, ok, shared := n.fillsf.Do(hash, func() (*server.Result, bool) {
		targets := 0
		for _, id := range order {
			if id == n.cfg.SelfID {
				continue
			}
			if targets++; targets > 2 {
				break // owner and first replica only; after that, simulate
			}
			ps := n.peers[id]
			if !ps.routable() {
				continue
			}
			fctx, fcancel := context.WithTimeout(ctx, n.cfg.FillWait+2*time.Second)
			res, ok, err := n.client.FetchResult(fctx, ps.url, hash, n.cfg.FillWait)
			fcancel()
			if err != nil {
				n.m.peerFillErrors.Add(1)
				n.chargePeer(ps, err)
				continue
			}
			ps.brk.RecordSuccess()
			if ok {
				n.m.peerFillHits.Add(1)
				return res, true
			}
			n.m.peerFillMisses.Add(1)
		}
		return nil, false
	})
	if shared {
		n.m.peerFillShared.Add(1)
	}
	return res, ok
}

// clusterMetrics are the cluster-layer counters, exported via
// /v1/cluster/info and merged into /v1/metrics/prom.
type clusterMetrics struct {
	dispatchLocal    atomic.Uint64
	dispatchRemote   atomic.Uint64
	hedgesFired      atomic.Uint64
	hedgesWon        atomic.Uint64
	reroutes         atomic.Uint64
	budgetExhausted  atomic.Uint64
	peerFillHits     atomic.Uint64
	peerFillMisses   atomic.Uint64
	peerFillErrors   atomic.Uint64
	peerFillShared   atomic.Uint64
	peerServeHits    atomic.Uint64
	peerServeMiss    atomic.Uint64
	peerRuns         atomic.Uint64
	corruptResponses atomic.Uint64
	quarantines      atomic.Uint64
	probes           atomic.Uint64
	probeFailures    atomic.Uint64
	ckptReplicated   atomic.Uint64
	ckptReplErrors   atomic.Uint64
	ckptReceived     atomic.Uint64
	ckptRecovered    atomic.Uint64
	ckptRepaired     atomic.Uint64
}

// PeerInfo is one member's health view in InfoSnapshot.
type PeerInfo struct {
	ID           string `json:"id"`
	URL          string `json:"url,omitempty"`
	Breaker      string `json:"breaker"`
	BreakerOpens uint64 `json:"breaker_opens,omitempty"`
	Quarantined  bool   `json:"quarantined,omitempty"`
	Corrupt      uint64 `json:"corrupt_responses,omitempty"`
	// ProbeStatus is the HTTP status of the last health probe (0 = probe
	// failed); ProbeMs is its round-trip time. Absent until the first probe.
	ProbeStatus int     `json:"probe_status,omitempty"`
	ProbeMs     float64 `json:"probe_ms,omitempty"`
}

// InfoSnapshot is the JSON shape of GET /v1/cluster/info.
type InfoSnapshot struct {
	Self             string     `json:"self"`
	Revision         string     `json:"revision"`
	VNodes           int        `json:"vnodes"`
	Peers            []PeerInfo `json:"peers"`
	PeersUnhealthy   int        `json:"peers_unhealthy"`
	PeersQuarantined int        `json:"peers_quarantined"`
	HedgeBudgetMs    float64    `json:"hedge_budget_ms"`
	DispatchLocal    uint64     `json:"dispatch_local"`
	DispatchRemote   uint64     `json:"dispatch_remote"`
	HedgesFired      uint64     `json:"hedges_fired"`
	HedgesWon        uint64     `json:"hedges_won"`
	Reroutes         uint64     `json:"reroutes"`
	BudgetExhausted  uint64     `json:"budget_exhausted"`
	PeerFillHits     uint64     `json:"peer_fill_hits"`
	PeerFillMisses   uint64     `json:"peer_fill_misses"`
	PeerFillErrors   uint64     `json:"peer_fill_errors"`
	PeerFillShared   uint64     `json:"peer_fill_shared"`
	PeerServeHits    uint64     `json:"peer_serve_hits"`
	PeerServeMiss    uint64     `json:"peer_serve_misses"`
	PeerRuns         uint64     `json:"peer_runs"`
	CorruptResponses uint64     `json:"corrupt_responses"`
	Quarantines      uint64     `json:"quarantines"`
	Probes           uint64     `json:"probes"`
	ProbeFailures    uint64     `json:"probe_failures"`
	CkptReplicated   uint64     `json:"ckpt_replicated"`
	CkptReplErrors   uint64     `json:"ckpt_repl_errors"`
	CkptReceived     uint64     `json:"ckpt_received"`
	CkptRecovered    uint64     `json:"ckpt_recovered"`
	CkptRepaired     uint64     `json:"ckpt_repaired"`
}

// Info snapshots the cluster state and counters.
func (n *Node) Info() InfoSnapshot {
	s := InfoSnapshot{
		Self:             n.cfg.SelfID,
		Revision:         server.BuildRevision(),
		VNodes:           n.cfg.VNodes,
		HedgeBudgetMs:    float64(n.hedgeDelay()) / float64(time.Millisecond),
		DispatchLocal:    n.m.dispatchLocal.Load(),
		DispatchRemote:   n.m.dispatchRemote.Load(),
		HedgesFired:      n.m.hedgesFired.Load(),
		HedgesWon:        n.m.hedgesWon.Load(),
		Reroutes:         n.m.reroutes.Load(),
		BudgetExhausted:  n.m.budgetExhausted.Load(),
		PeerFillHits:     n.m.peerFillHits.Load(),
		PeerFillMisses:   n.m.peerFillMisses.Load(),
		PeerFillErrors:   n.m.peerFillErrors.Load(),
		PeerFillShared:   n.m.peerFillShared.Load(),
		PeerServeHits:    n.m.peerServeHits.Load(),
		PeerServeMiss:    n.m.peerServeMiss.Load(),
		PeerRuns:         n.m.peerRuns.Load(),
		CorruptResponses: n.m.corruptResponses.Load(),
		Quarantines:      n.m.quarantines.Load(),
		Probes:           n.m.probes.Load(),
		ProbeFailures:    n.m.probeFailures.Load(),
		CkptReplicated:   n.m.ckptReplicated.Load(),
		CkptReplErrors:   n.m.ckptReplErrors.Load(),
		CkptReceived:     n.m.ckptReceived.Load(),
		CkptRecovered:    n.m.ckptRecovered.Load(),
		CkptRepaired:     n.m.ckptRepaired.Load(),
	}
	ids := make([]string, 0, len(n.peers))
	for id := range n.peers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		ps := n.peers[id]
		state, _, opens := ps.brk.Snapshot()
		pi := PeerInfo{
			ID:           id,
			URL:          ps.url,
			Breaker:      state,
			BreakerOpens: opens,
			Quarantined:  ps.quarantined.Load(),
			Corrupt:      ps.corrupt.Load(),
		}
		if ps.probeAt.Load() != 0 {
			pi.ProbeStatus = int(ps.probeStatus.Load())
			pi.ProbeMs = float64(ps.probeNanos.Load()) / 1e6
		}
		s.Peers = append(s.Peers, pi)
		if state == breaker.Open {
			s.PeersUnhealthy++
		}
		if pi.Quarantined {
			s.PeersQuarantined++
		}
	}
	return s
}

// latWindow is a bounded sliding window of recent remote dispatch latencies
// feeding the adaptive hedge budget.
type latWindow struct {
	mu   sync.Mutex
	buf  []time.Duration
	next int
	n    int
}

// latMinSamples is how many observations the adaptive policy wants before
// trusting its percentile estimate.
const latMinSamples = 8

func newLatWindow(size int) *latWindow {
	return &latWindow{buf: make([]time.Duration, size)}
}

func (w *latWindow) observe(d time.Duration) {
	w.mu.Lock()
	w.buf[w.next] = d
	w.next = (w.next + 1) % len(w.buf)
	if w.n < len(w.buf) {
		w.n++
	}
	w.mu.Unlock()
}

// quantile returns the q-quantile of the window, or 0 while under-sampled.
func (w *latWindow) quantile(q float64) time.Duration {
	w.mu.Lock()
	if w.n < latMinSamples {
		w.mu.Unlock()
		return 0
	}
	tmp := make([]time.Duration, w.n)
	copy(tmp, w.buf[:w.n])
	w.mu.Unlock()
	sort.Slice(tmp, func(i, j int) bool { return tmp[i] < tmp[j] })
	idx := int(q * float64(len(tmp)-1))
	return tmp[idx]
}
