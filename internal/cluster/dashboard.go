package cluster

import (
	"context"
	"net/http"
	"sort"
	"sync"
	"time"

	_ "embed"

	"repro/internal/obs"
	"repro/internal/server"
)

// dashboardHTML is the entire dashboard UI: one self-contained page, no
// external assets, embedded in the binary so every cluster member serves it
// even when air-gapped.
//
//go:embed dashboard.html
var dashboardHTML []byte

// NodeDash is one member's dashboard contribution: its build identity,
// service metrics (queue depth, cache residency, checkpoint and chaos-era
// counters), verdict tallies, and per-stage simulated-latency distributions.
// Stale marks a member whose data could not be fetched (partitioned,
// breaker-open, or quarantined); its other fields are then zero and the
// Error says why — the page renders around it instead of blocking on it.
type NodeDash struct {
	ID       string                  `json:"id"`
	Revision string                  `json:"revision,omitempty"`
	Stale    bool                    `json:"stale,omitempty"`
	Error    string                  `json:"error,omitempty"`
	Metrics  *server.MetricsSnapshot `json:"metrics,omitempty"`
	Verdicts map[string]uint64       `json:"verdicts,omitempty"`
	Stages   []obs.HistogramDump     `json:"stages,omitempty"`
}

// DashboardData is the JSON shape of GET /v1/dashboard/data: every member's
// contribution (self always fresh, unreachable peers marked stale), plus the
// fleet-wide aggregation — per-stage histograms merged across members,
// verdict counts summed — and the cluster health snapshot.
type DashboardData struct {
	Self     string              `json:"self"`
	Fleet    []NodeDash          `json:"fleet"`
	Stages   []obs.HistogramDump `json:"stages"`
	Verdicts map[string]uint64   `json:"verdicts,omitempty"`
	Cluster  InfoSnapshot        `json:"cluster"`
}

// localDash snapshots this node's own dashboard contribution.
func (n *Node) localDash() NodeDash {
	m := n.local.MetricsSnapshot()
	return NodeDash{
		ID:       n.cfg.SelfID,
		Revision: server.BuildRevision(),
		Metrics:  &m,
		Verdicts: n.local.VerdictCounts(),
		Stages:   n.local.StageDumps(),
	}
}

// dashFanoutTimeout bounds one peer's dashboard fetch: an unreachable member
// delays the page by at most this before being marked stale. Deliberately
// shorter than the peer-run budget — a dashboard is a glance, not a job.
const dashFanoutTimeout = 2 * time.Second

// Dashboard assembles the fleet-wide dashboard payload. Peer contributions
// are fetched concurrently; quarantined members are never dialed (their bytes
// cannot be trusted), breaker-open members are skipped until their cooldown
// probe recovers, and a fetch that fails or times out yields a stale entry
// rather than an error — a partition degrades the page, never blanks it.
func (n *Node) Dashboard(ctx context.Context) DashboardData {
	fleet := make([]NodeDash, 0, len(n.peers)+1)
	fleet = append(fleet, n.localDash())
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, ps := range n.peers {
		wg.Add(1)
		go func(ps *peerState) {
			defer wg.Done()
			nd := NodeDash{ID: ps.id, Stale: true}
			switch {
			case ps.quarantined.Load():
				nd.Error = "quarantined"
			case !ps.brk.Ready():
				nd.Error = "breaker open"
			default:
				fctx, cancel := context.WithTimeout(ctx, dashFanoutTimeout)
				got, err := n.client.FetchDashboard(fctx, ps.url)
				cancel()
				if err != nil {
					nd.Error = err.Error()
					n.chargePeer(ps, err)
				} else {
					ps.brk.RecordSuccess()
					nd = got
					nd.ID = ps.id
					nd.Stale = false
				}
			}
			mu.Lock()
			fleet = append(fleet, nd)
			mu.Unlock()
		}(ps)
	}
	wg.Wait()
	sort.Slice(fleet, func(i, j int) bool { return fleet[i].ID < fleet[j].ID })

	merged := map[string]*obs.Histogram{}
	verdicts := map[string]uint64{}
	for _, nd := range fleet {
		for i := range nd.Stages {
			hd := &nd.Stages[i]
			agg, ok := merged[hd.Name]
			if !ok {
				agg = obs.NewHistogram(hd.Bounds)
				merged[hd.Name] = agg
			}
			agg.MergeDump(hd)
		}
		for k, v := range nd.Verdicts {
			verdicts[k] += v
		}
	}
	names := make([]string, 0, len(merged))
	for name := range merged {
		names = append(names, name)
	}
	sort.Strings(names)
	stages := make([]obs.HistogramDump, 0, len(names))
	for _, name := range names {
		stages = append(stages, merged[name].DumpAs(name))
	}

	d := DashboardData{Self: n.cfg.SelfID, Fleet: fleet, Stages: stages, Cluster: n.Info()}
	if len(verdicts) > 0 {
		d.Verdicts = verdicts
	}
	return d
}

// handleDashboard serves the embedded single-file web UI.
func (n *Node) handleDashboard(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(dashboardHTML)
}

// handleDashboardData serves the fleet-wide aggregation.
func (n *Node) handleDashboardData(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, n.Dashboard(r.Context()))
}

// handleDashboardLocal serves this node's own contribution — the peer
// protocol behind the fleet fan-out.
func (n *Node) handleDashboardLocal(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, n.localDash())
}
