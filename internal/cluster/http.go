package cluster

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/server"
)

// Handler returns the node's full HTTP surface: the local nvmserved API plus
// the cluster coordinator and peer-protocol routes.
//
//	POST /v1/cluster/jobs         dispatch one job through the ring (waits)
//	POST /v1/cluster/sweep        fan a sweep across the fleet (NDJSON)
//	GET  /v1/cluster/info         membership, peer health, cluster counters
//	GET  /v1/dashboard            embedded fleet dashboard web UI
//	GET  /v1/dashboard/data       fleet-wide dashboard aggregation (JSON)
//	GET  /v1/dashboard/local      this node's dashboard contribution
//	GET  /v1/peer/result/{hash}   canonical result by job hash (peer fill)
//	POST /v1/peer/run             execute a job locally and return its result
//	GET  /v1/peer/ckpt/{hash}     durable job snapshot (preemption migration)
//	HEAD /v1/peer/ckpt/{hash}     snapshot presence probe (anti-entropy dedup)
//	PUT  /v1/peer/ckpt/{hash}     store a replicated job snapshot
//
// The peer routes are the protocol spoken between members; the cluster
// routes are the client-facing coordinator. Every member serves both, so any
// node can coordinate any sweep.
func (n *Node) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/cluster/jobs", n.handleClusterJob)
	mux.HandleFunc("POST /v1/cluster/sweep", n.handleClusterSweep)
	mux.HandleFunc("GET /v1/cluster/info", n.handleClusterInfo)
	mux.HandleFunc("GET /v1/dashboard", n.handleDashboard)
	mux.HandleFunc("GET /v1/dashboard/data", n.handleDashboardData)
	mux.HandleFunc("GET /v1/dashboard/local", n.handleDashboardLocal)
	mux.HandleFunc("GET /v1/peer/result/{hash}", n.handlePeerResult)
	mux.HandleFunc("POST /v1/peer/run", n.handlePeerRun)
	mux.HandleFunc("GET /v1/peer/ckpt/{hash}", n.handlePeerCkptGet)
	mux.HandleFunc("PUT /v1/peer/ckpt/{hash}", n.handlePeerCkptPut)
	mux.Handle("/", n.local.Handler())
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, err error) {
	if code == http.StatusServiceUnavailable || code == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, code, errorBody{Error: err.Error()})
}

// writeCanonical sends a result as its canonical JSON bytes, so a result
// relayed through any number of peers stays byte-identical to the origin.
// The digest header lets every receiver verify the bytes arrived intact and
// charge the sender when they did not.
func writeCanonical(w http.ResponseWriter, res *server.Result) {
	b := res.Canonical()
	sum := sha256.Sum256(b)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(resultDigestHeader, hex.EncodeToString(sum[:]))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(b)
}

// dispatchResponse is the POST /v1/cluster/jobs payload.
type dispatchResponse struct {
	Route  Route          `json:"route"`
	Result *server.Result `json:"result"`
}

func (n *Node) handleClusterJob(w http.ResponseWriter, r *http.Request) {
	var spec server.JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	res, route, err := n.Dispatch(r.Context(), spec)
	if err != nil {
		writeError(w, dispatchErrorCode(err), err)
		return
	}
	writeJSON(w, http.StatusOK, dispatchResponse{Route: route, Result: res})
}

// dispatchErrorCode maps a dispatch failure onto an HTTP status.
func dispatchErrorCode(err error) int {
	switch {
	case errors.Is(err, server.ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, server.ErrDraining), errors.Is(err, server.ErrBreakerOpen):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	default:
		// Compile errors read as client errors; everything else is a fleet
		// failure. Telling them apart cheaply: compile errors never wrap the
		// dispatch-chain sentinel.
		if _, ok := err.(*peerError); ok {
			return http.StatusBadGateway
		}
		return http.StatusBadRequest
	}
}

// clusterSweepPoint is one NDJSON line of a fleet sweep.
type clusterSweepPoint struct {
	Index  int            `json:"index"`
	Value  string         `json:"value"`
	Route  Route          `json:"route"`
	Result *server.Result `json:"result,omitempty"`
	Error  string         `json:"error,omitempty"`
}

// clusterSweepSummary is the final NDJSON line of a fleet sweep.
type clusterSweepSummary struct {
	SweepDone bool         `json:"sweep_done"`
	Points    int          `json:"points"`
	Completed int          `json:"completed"`
	Failed    int          `json:"failed"`
	Hedged    int          `json:"hedged"`
	Rerouted  int          `json:"rerouted"`
	ElapsedMs float64      `json:"elapsed_ms"`
	Cluster   InfoSnapshot `json:"cluster"`
}

// handleClusterSweep fans one parameter sweep across the fleet: every point
// is dispatched through the ring with bounded parallelism, and the NDJSON
// stream emits points in sweep order as soon as each completes.
func (n *Node) handleClusterSweep(w http.ResponseWriter, r *http.Request) {
	var sr server.SweepRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sr); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	specs, vals, err := server.ExpandSweep(sr)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	ctx := r.Context()
	start := time.Now()
	type pointOut struct {
		res   *server.Result
		route Route
		err   error
	}
	outs := make([]chan pointOut, len(specs))
	sem := make(chan struct{}, n.cfg.SweepParallel)
	for i := range specs {
		outs[i] = make(chan pointOut, 1)
		go func(i int) {
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
			case <-ctx.Done():
				outs[i] <- pointOut{err: ctx.Err()}
				return
			}
			res, route, err := n.Dispatch(ctx, specs[i])
			outs[i] <- pointOut{res: res, route: route, err: err}
		}(i)
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	sum := clusterSweepSummary{SweepDone: true}
	for i := range specs {
		o := <-outs[i]
		pt := clusterSweepPoint{Index: i, Value: vals[i], Route: o.route, Result: o.res}
		sum.Points++
		if o.err != nil {
			pt.Error = o.err.Error()
			sum.Failed++
		} else {
			sum.Completed++
		}
		if o.route.Hedged {
			sum.Hedged++
		}
		if o.route.Reroutes > 0 {
			sum.Rerouted++
		}
		_ = enc.Encode(pt)
		if flusher != nil {
			flusher.Flush()
		}
	}
	sum.ElapsedMs = float64(time.Since(start)) / float64(time.Millisecond)
	sum.Cluster = n.Info()
	_ = enc.Encode(sum)
	if flusher != nil {
		flusher.Flush()
	}
}

func (n *Node) handleClusterInfo(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, n.Info())
}

// maxPeerWait caps how long a peer fill may park on the owner's in-flight
// computation; beyond this the requester is better off simulating.
const maxPeerWait = 5 * time.Second

// handlePeerResult serves the local result cache by canonical job hash. With
// ?wait_ms=N it also parks (bounded) on an in-flight local computation of
// the same hash — the owner-side single-flight that absorbs a hot sweep's
// worth of identical fills without stampeding the scheduler.
func (n *Node) handlePeerResult(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	if len(hash) != 64 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("cluster: malformed job hash %q", hash))
		return
	}
	var wait time.Duration
	if ms := r.URL.Query().Get("wait_ms"); ms != "" {
		v, err := strconv.ParseInt(ms, 10, 64)
		if err != nil || v < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("cluster: bad wait_ms %q", ms))
			return
		}
		wait = time.Duration(v) * time.Millisecond
		if wait > maxPeerWait {
			wait = maxPeerWait
		}
	}
	var res *server.Result
	var ok bool
	if wait > 0 {
		ctx, cancel := context.WithTimeout(r.Context(), wait)
		res, ok = n.local.WaitByHash(ctx, hash)
		cancel()
	} else {
		res, ok = n.local.ResultByHash(hash)
	}
	if !ok {
		n.m.peerServeMiss.Add(1)
		writeError(w, http.StatusNotFound, errors.New("result not cached here"))
		return
	}
	n.m.peerServeHits.Add(1)
	writeCanonical(w, res)
}

// handlePeerCkptGet serves this node's durable snapshot of a job hash — the
// read side of preemption migration: the node taking over a killed peer's job
// asks the replicas for the last checkpoint before simulating from scratch.
// HEAD (which the GET pattern also matches) answers presence without reading
// the snapshot — the anti-entropy loop's dedup probe.
func (n *Node) handlePeerCkptGet(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	if len(hash) != 64 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("cluster: malformed job hash %q", hash))
		return
	}
	if r.Method == http.MethodHead {
		if n.local.HasCheckpoint(hash) {
			w.WriteHeader(http.StatusNoContent)
		} else {
			w.WriteHeader(http.StatusNotFound)
		}
		return
	}
	snap, ok := n.local.CheckpointBytes(hash)
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("no snapshot here"))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(snap)
}

// handlePeerCkptPut stores a snapshot replicated from the node running the
// job. The local server validates the sealed envelope before anything
// touches the state dir.
func (n *Node) handlePeerCkptPut(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	if len(hash) != 64 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("cluster: malformed job hash %q", hash))
		return
	}
	snap, err := io.ReadAll(io.LimitReader(r.Body, maxCkptBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := n.local.PutCheckpoint(hash, snap); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	n.m.ckptReceived.Add(1)
	w.WriteHeader(http.StatusNoContent)
}

// handlePeerRun executes a job on this node's scheduler and returns the
// canonical result: the receiving end of sharded and hedged dispatch. Load
// pushback surfaces as 429/503 so the dispatcher reroutes instead of piling
// on; a caller disconnect (hedge lost, coordinator gone) cancels the job.
func (n *Node) handlePeerRun(w http.ResponseWriter, r *http.Request) {
	var spec server.JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	n.m.peerRuns.Add(1)
	// A checkpointing job may have been preempted elsewhere: pull the latest
	// replicated snapshot before running so the job resumes, not restarts.
	if p, err := spec.Compile(); err == nil {
		n.recoverCkpt(r.Context(), p)
	}
	// NoFill: this job was routed HERE by a dispatcher (shard owner, hedge,
	// or reroute); consulting the fill hook would bounce it back toward the
	// owner — the slow or dead node the dispatcher is often escaping.
	st, err := n.local.SubmitNoFill(r.Context(), spec)
	switch {
	case errors.Is(err, server.ErrQueueFull):
		writeError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, server.ErrDraining), errors.Is(err, server.ErrBreakerOpen):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	fin, err := n.local.Wait(r.Context(), st.ID)
	if err != nil {
		writeError(w, http.StatusGatewayTimeout, err)
		return
	}
	switch fin.State {
	case server.JobDone:
		res, _, _ := n.local.Result(st.ID)
		writeCanonical(w, res)
	case server.JobCanceled:
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("job canceled: %s", fin.Error))
	default:
		writeError(w, http.StatusInternalServerError, fmt.Errorf("job failed: %s", fin.Error))
	}
}
