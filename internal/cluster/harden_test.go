package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/server"
)

// startClusterWrapped is startCluster with a per-member handler wrapper, so a
// test can put a fault injector (e.g. a byte corruptor) on one member's wire
// without touching the node itself.
func startClusterWrapped(t *testing.T, n int, optsFor func(i int) server.Options,
	cfgFor func(i int) Config, wrapFor func(i int, h http.Handler) http.Handler) []*testNode {
	t.Helper()
	handlers := make([]*swapHandler, n)
	nodes := make([]*testNode, n)
	peers := make([]Peer, n)
	for i := range nodes {
		handlers[i] = &swapHandler{}
		ts := httptest.NewServer(handlers[i])
		id := fmt.Sprintf("n%d", i+1)
		nodes[i] = &testNode{id: id, ts: ts}
		peers[i] = Peer{ID: id, URL: ts.URL}
	}
	for i := range nodes {
		opts := server.Options{Workers: 2, QueueDepth: 64, CacheEntries: 64}
		if optsFor != nil {
			opts = optsFor(i)
		}
		cfg := Config{}
		if cfgFor != nil {
			cfg = cfgFor(i)
		}
		cfg.SelfID = nodes[i].id
		cfg.Peers = peers
		srv := server.New(opts)
		node, err := NewNode(srv, cfg)
		if err != nil {
			t.Fatalf("NewNode(%s): %v", nodes[i].id, err)
		}
		nodes[i].srv, nodes[i].node = srv, node
		h := http.Handler(node.Handler())
		if wrapFor != nil {
			h = wrapFor(i, h)
		}
		handlers[i].mu.Lock()
		handlers[i].h = h
		handlers[i].mu.Unlock()
	}
	t.Cleanup(func() {
		for _, tn := range nodes {
			tn.ts.Close()
			tn.srv.Shutdown(10 * time.Second)
		}
	})
	return nodes
}

// corruptor flips one byte of every response body while leaving headers (the
// result digest included) intact — the signature of a peer with bad memory or
// a dirty wire, exactly what the integrity layer must catch.
type corruptor struct{ h http.Handler }

func (c corruptor) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rec := httptest.NewRecorder()
	c.h.ServeHTTP(rec, r)
	body := rec.Body.Bytes()
	if len(body) > 0 {
		body[len(body)/2] ^= 0xff
	}
	for k, vs := range rec.Header() {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(rec.Code)
	w.Write(body)
}

// TestQuarantineOnCorruptPeer: a member returning flipped bytes is detected
// by the digest check on every response, charged, and after the threshold
// permanently exiled from routing — while every dispatch still succeeds via
// healthy members.
func TestQuarantineOnCorruptPeer(t *testing.T) {
	const threshold = 2
	nodes := startClusterWrapped(t, 3, nil,
		func(i int) Config {
			// A high breaker threshold keeps the breaker out of the way: this
			// test is about the integrity ledger, not transient health.
			return Config{QuarantineThreshold: threshold, BreakerThreshold: 100}
		},
		func(i int, h http.Handler) http.Handler {
			if i == 2 {
				return corruptor{h}
			}
			return h
		})

	// Dispatch n3-owned jobs from n1 until the corruption threshold trips.
	// Each attempt on n3 yields a corrupt response, costs a reroute, and the
	// dispatch still completes elsewhere — corruption never poisons a result.
	seed, dispatches := uint64(1), 0
	for !nodes[0].node.Quarantined("n3") {
		if dispatches >= threshold+2 {
			t.Fatalf("n3 not quarantined after %d corrupt dispatches", dispatches)
		}
		// Walk distinct seeds so every dispatch is a fresh n3-owned job — a
		// cached hash would not exercise the corrupt path again.
		var spec server.JobSpec
		for {
			spec = clusterChaseSpec(seed)
			seed++
			p, err := spec.Compile()
			if err != nil {
				t.Fatal(err)
			}
			if nodes[0].node.Owner(p.Hash()) == "n3" {
				break
			}
		}
		res, route, err := nodes[0].node.Dispatch(context.Background(), spec)
		if err != nil {
			t.Fatalf("dispatch %d: %v", dispatches, err)
		}
		if route.Node == "n3" {
			t.Fatalf("dispatch %d: corrupt peer's answer accepted", dispatches)
		}
		if res.Hash != route.Hash {
			t.Fatalf("dispatch %d: result hash mismatch after reroute", dispatches)
		}
		dispatches++
	}

	info := nodes[0].node.Info()
	if info.PeersQuarantined != 1 || info.Quarantines != 1 {
		t.Errorf("quarantined=%d quarantines=%d, want 1/1", info.PeersQuarantined, info.Quarantines)
	}
	if info.CorruptResponses < threshold {
		t.Errorf("corrupt_responses = %d, want >= %d", info.CorruptResponses, threshold)
	}
	var n3 *PeerInfo
	for i := range info.Peers {
		if info.Peers[i].ID == "n3" {
			n3 = &info.Peers[i]
		}
	}
	if n3 == nil || !n3.Quarantined || n3.Corrupt < threshold {
		t.Errorf("n3 peer info = %+v, want quarantined with >= %d corrupt", n3, threshold)
	}

	// Exile is absolute: the next n3-owned dispatch must not even try n3 —
	// no reroute, one attempt, answered by a healthy member.
	spec := specOwnedBy(t, nodes[0].node, "n3")
	_, route, err := nodes[0].node.Dispatch(context.Background(), spec)
	if err != nil {
		t.Fatalf("post-quarantine dispatch: %v", err)
	}
	if route.Node == "n3" || route.Reroutes != 0 || route.Attempts != 1 {
		t.Errorf("post-quarantine route = %+v, want one clean attempt off n3", route)
	}
}

// TestAttemptBudgetFailsFast: with the budget spent, a dispatch refuses to
// keep launching candidates and fails fast instead of storming the fleet.
func TestAttemptBudgetFailsFast(t *testing.T) {
	nodes := startCluster(t, 3, nil,
		func(i int) Config { return Config{AttemptBudget: 1} },
	)
	spec := specOwnedBy(t, nodes[0].node, "n3")

	// Healthy fleet first: one attempt is all a clean dispatch needs, and the
	// budget never shows up.
	_, route, err := nodes[0].node.Dispatch(context.Background(), spec)
	if err != nil {
		t.Fatalf("healthy dispatch: %v", err)
	}
	if route.Attempts != 1 {
		t.Errorf("healthy dispatch consumed %d attempts, want 1", route.Attempts)
	}
	if n := nodes[0].node.Info().BudgetExhausted; n != 0 {
		t.Errorf("budget_exhausted = %d on a healthy fleet, want 0", n)
	}

	// Kill the owner of a fresh job: the single budgeted attempt fails, the
	// reroute is refused, and the dispatch errors instead of walking the ring.
	var spec2 server.JobSpec
	for seed := uint64(10000); ; seed++ {
		spec2 = clusterChaseSpec(seed)
		p, cerr := spec2.Compile()
		if cerr != nil {
			t.Fatal(cerr)
		}
		if nodes[0].node.Owner(p.Hash()) == "n3" {
			break
		}
	}
	nodes[2].ts.Close()
	_, route2, err := nodes[0].node.Dispatch(context.Background(), spec2)
	if err == nil {
		t.Fatalf("dispatch with a dead owner and budget 1 succeeded: route %+v", route2)
	}
	if !strings.Contains(err.Error(), "attempts") {
		t.Errorf("error %q does not mention the attempt count", err)
	}
	if route2.Attempts != 1 {
		t.Errorf("failed dispatch consumed %d attempts, want exactly the budget (1)", route2.Attempts)
	}
	if n := nodes[0].node.Info().BudgetExhausted; n == 0 {
		t.Error("budget_exhausted counter not incremented by the refused reroute")
	}
}

// TestAntiEntropyRepairsReplica: a snapshot held by only one member is pushed
// to the first routable non-self member in its ring order by one repair pass;
// a second pass finds the replica present and does nothing.
func TestAntiEntropyRepairsReplica(t *testing.T) {
	// Produce real snapshot bytes by running a checkpointing job on a fleet
	// with durable state — replication leaves a replica we can lift.
	src := startCluster(t, 3,
		func(i int) server.Options {
			return server.Options{Workers: 2, QueueDepth: 64, CacheEntries: 64, StateDir: t.TempDir()}
		}, nil)
	spec, hash := ckptSpecOwnedBy(t, src[0].node, "n3")
	if _, _, err := src[0].node.Dispatch(context.Background(), spec); err != nil {
		t.Fatalf("source dispatch: %v", err)
	}
	var snap []byte
	for _, tn := range src {
		if b, ok := tn.srv.CheckpointBytes(hash); ok {
			snap = b
			break
		}
	}
	if snap == nil {
		t.Fatal("no member holds a snapshot after a checkpointing run")
	}

	// Fresh fleet where exactly one member holds the snapshot: the
	// under-replicated state a partition leaves behind.
	fleet := startCluster(t, 3,
		func(i int) server.Options {
			return server.Options{Workers: 2, QueueDepth: 64, CacheEntries: 64, StateDir: t.TempDir()}
		}, nil)
	holder := fleet[0]
	if err := holder.srv.PutCheckpoint(hash, snap); err != nil {
		t.Fatalf("PutCheckpoint: %v", err)
	}
	var target string
	for _, id := range holder.node.ring.Order(hash) {
		if id != holder.id {
			target = id
			break
		}
	}

	if n := holder.node.AntiEntropy(context.Background()); n != 1 {
		t.Fatalf("first repair pass returned %d, want 1", n)
	}
	var targetNode *testNode
	for _, tn := range fleet {
		if tn.id == target {
			targetNode = tn
		}
	}
	if !targetNode.srv.HasCheckpoint(hash) {
		t.Fatalf("ring-preferred member %s does not hold the repaired replica", target)
	}
	for _, tn := range fleet {
		if tn.id != holder.id && tn.id != target && tn.srv.HasCheckpoint(hash) {
			t.Errorf("repair over-replicated: %s also holds the snapshot", tn.id)
		}
	}
	if n := holder.node.Info().CkptRepaired; n != 1 {
		t.Errorf("ckpt_repaired = %d, want 1", n)
	}
	if n := targetNode.node.Info().CkptReceived; n != 1 {
		t.Errorf("target ckpt_received = %d, want 1", n)
	}

	// Convergence: a second pass sees the replica (HEAD dedup) and is a no-op.
	if n := holder.node.AntiEntropy(context.Background()); n != 0 {
		t.Fatalf("second repair pass returned %d, want 0", n)
	}
}

// TestProbePeersRecordsHealth: a probe pass stamps status and latency into
// /v1/cluster/info and the Prometheus export; a dead peer shows up as a
// failed probe without touching its breaker.
func TestProbePeersRecordsHealth(t *testing.T) {
	nodes := startCluster(t, 3, nil, nil)
	nodes[0].node.ProbePeers(context.Background())

	info := nodes[0].node.Info()
	if info.Probes != 2 || info.ProbeFailures != 0 {
		t.Fatalf("probes=%d failures=%d after one healthy pass, want 2/0", info.Probes, info.ProbeFailures)
	}
	for _, p := range info.Peers {
		if p.ProbeStatus != http.StatusOK {
			t.Errorf("peer %s probe status %d, want 200", p.ID, p.ProbeStatus)
		}
	}

	resp, err := http.Get(nodes[0].ts.URL + "/v1/metrics/prom")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(prom), `nvmcluster_peer_probe_seconds{peer="n2"}`) {
		t.Error("probe latency gauge missing from the Prometheus export")
	}

	// A dead peer fails its probe; probes stay observational, so the breaker
	// must still read closed (no routing flap from monitoring alone).
	nodes[2].ts.Close()
	nodes[0].node.ProbePeers(context.Background())
	info = nodes[0].node.Info()
	if info.ProbeFailures != 1 {
		t.Errorf("probe_failures = %d after probing a dead peer, want 1", info.ProbeFailures)
	}
	for _, p := range info.Peers {
		if p.ID == "n3" {
			if p.ProbeStatus != 0 {
				t.Errorf("dead peer probe status %d, want 0", p.ProbeStatus)
			}
			if p.Breaker != "closed" {
				t.Errorf("probe failure moved the breaker to %q; probes must be observational", p.Breaker)
			}
		}
	}
}

// TestHealthProbeTimeout: Health carries its own tight deadline so a hung
// peer cannot stall a probe for the full request budget.
func TestHealthProbeTimeout(t *testing.T) {
	stall := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-stall
	}))
	defer func() { close(stall); ts.Close() }()

	c := NewClient(10*time.Second, 100*time.Millisecond, nil)
	start := time.Now()
	_, _, err := c.Health(context.Background(), ts.URL)
	took := time.Since(start)
	if err == nil {
		t.Fatal("probe of a hung peer succeeded")
	}
	if took > 2*time.Second {
		t.Fatalf("probe took %s; the 100ms probe timeout did not bound it", took)
	}
}

// TestRunRejectsWrongHash: a peer answering with a well-formed result for the
// wrong job is an integrity failure (corrupt), not a transient.
func TestRunRejectsWrongHash(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, `{"hash":"0000000000000000"}`)
	}))
	defer ts.Close()

	c := NewClient(5*time.Second, time.Second, nil)
	_, err := c.Run(context.Background(), ts.URL, clusterChaseSpec(1), "ffffffffffffffff")
	var pe *peerError
	if !errors.As(err, &pe) || !pe.corrupt {
		t.Fatalf("wrong-hash result gave %v, want a corrupt peerError", err)
	}
}

// TestFetchCkptRejectsOversizeAndGarbage: an over-bound snapshot body is an
// explicit error (never silently clipped into torn state), and a body that
// fails envelope validation is charged as corrupt.
func TestFetchCkptRejectsOversizeAndGarbage(t *testing.T) {
	big := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.CopyN(w, zeros{}, maxCkptBytes+1)
	}))
	defer big.Close()
	c := NewClient(30*time.Second, time.Second, nil)
	_, ok, err := c.FetchCkpt(context.Background(), big.URL, "deadbeef")
	if ok || err == nil || !strings.Contains(err.Error(), "snapshot too large") {
		t.Fatalf("oversize snapshot gave ok=%v err=%v, want explicit too-large error", ok, err)
	}
	var pe *peerError
	if errors.As(err, &pe) && pe.corrupt {
		t.Error("oversize is a policy bound, not corruption; peer must not be charged as corrupt")
	}

	garbage := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "not a snapshot envelope")
	}))
	defer garbage.Close()
	_, ok, err = c.FetchCkpt(context.Background(), garbage.URL, "deadbeef")
	if ok || !errors.As(err, &pe) || !pe.corrupt {
		t.Fatalf("garbage snapshot gave ok=%v err=%v, want a corrupt peerError", ok, err)
	}
}

// zeros is an endless stream of zero bytes for size-bound tests.
type zeros struct{}

func (zeros) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = 0
	}
	return len(p), nil
}
