package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestDashboardFleetWithPartition drives the acceptance scenario: a 3-node
// fleet, one job completed, one member partitioned away. The dashboard on any
// surviving member must still render — fleet-wide stage aggregates and
// verdict counts present, the dead member marked stale — and the same job
// dispatched through different coordinators must carry byte-identical
// verdicts.
func TestDashboardFleetWithPartition(t *testing.T) {
	nodes := startCluster(t, 3, nil, nil)
	ctx := context.Background()

	// Run one job owned by n1 so its verdict survives the n3 partition.
	spec := specOwnedBy(t, nodes[0].node, "n1")
	res1, _, err := nodes[0].node.Dispatch(ctx, spec)
	if err != nil {
		t.Fatalf("dispatch via n1: %v", err)
	}
	if res1.Verdict == nil {
		t.Fatal("dispatched job carries no verdict")
	}

	// The same spec through a different coordinator must produce the same
	// verdict bytes (served from the owner's cache, but identical even if
	// recomputed — the verdict is a pure function of the dump).
	res2, _, err := nodes[1].node.Dispatch(ctx, spec)
	if err != nil {
		t.Fatalf("dispatch via n2: %v", err)
	}
	if res2.Verdict == nil {
		t.Fatal("second dispatch carries no verdict")
	}
	if !bytes.Equal(res1.Verdict.Canonical(), res2.Verdict.Canonical()) {
		t.Fatalf("verdicts differ across coordinators:\n%s\n%s",
			res1.Verdict.Canonical(), res2.Verdict.Canonical())
	}

	// Partition n3: its listener goes away entirely.
	nodes[2].ts.Close()

	for _, tn := range nodes[:2] {
		resp, err := http.Get(tn.ts.URL + "/v1/dashboard/data")
		if err != nil {
			t.Fatalf("GET dashboard data on %s: %v", tn.id, err)
		}
		var data DashboardData
		err = json.NewDecoder(resp.Body).Decode(&data)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("decode dashboard data on %s: %v", tn.id, err)
		}
		if data.Self != tn.id {
			t.Fatalf("self = %q, want %q", data.Self, tn.id)
		}
		if len(data.Fleet) != 3 {
			t.Fatalf("fleet has %d members, want 3", len(data.Fleet))
		}
		for i, nd := range data.Fleet {
			if i > 0 && data.Fleet[i-1].ID >= nd.ID {
				t.Fatalf("fleet not sorted by id: %q then %q", data.Fleet[i-1].ID, nd.ID)
			}
			switch nd.ID {
			case "n3":
				if !nd.Stale || nd.Error == "" {
					t.Fatalf("partitioned n3 not marked stale: %+v", nd)
				}
			default:
				if nd.Stale {
					t.Fatalf("live member %s marked stale: %s", nd.ID, nd.Error)
				}
				if nd.Metrics == nil {
					t.Fatalf("live member %s has no metrics", nd.ID)
				}
			}
		}
		if len(data.Stages) == 0 {
			t.Fatalf("no fleet-wide stage aggregates on %s", tn.id)
		}
		if data.Verdicts[res1.Verdict.Regime] == 0 {
			t.Fatalf("fleet verdict count for %q missing on %s: %v",
				res1.Verdict.Regime, tn.id, data.Verdicts)
		}
		if data.Cluster.Revision == "" {
			t.Fatalf("cluster info on %s carries no build revision", tn.id)
		}
	}

	// The embedded UI itself must be served by every member, self-contained.
	resp, err := http.Get(nodes[1].ts.URL + "/v1/dashboard")
	if err != nil {
		t.Fatalf("GET dashboard page: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read dashboard page: %v", err)
	}
	html := string(body)
	if !strings.Contains(html, "nvmserved fleet dashboard") ||
		!strings.Contains(html, "/v1/dashboard/data") {
		t.Fatal("dashboard page missing expected markup")
	}
	if strings.Contains(html, "src=\"http") || strings.Contains(html, "href=\"http") {
		t.Fatal("dashboard page references external assets")
	}
}
