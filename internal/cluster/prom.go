package cluster

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/breaker"
)

// writeProm renders the cluster counters in Prometheus text format. It is
// registered on the local server so /v1/metrics/prom stays the node's single
// scrape target.
func (n *Node) writeProm(w io.Writer) error {
	s := n.Info()
	var b strings.Builder

	counter := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("nvmcluster_dispatch_local_total", "Dispatches answered by the local scheduler.", s.DispatchLocal)
	counter("nvmcluster_dispatch_remote_total", "Dispatches sent to a remote peer.", s.DispatchRemote)
	counter("nvmcluster_hedges_fired_total", "Straggler dispatches hedged to a second replica.", s.HedgesFired)
	counter("nvmcluster_hedges_won_total", "Hedged dispatches where the hedge answered first.", s.HedgesWon)
	counter("nvmcluster_reroutes_total", "Dispatches rerouted after a candidate failed.", s.Reroutes)
	counter("nvmcluster_budget_exhausted_total", "Dispatch launches refused by the attempt budget.", s.BudgetExhausted)
	counter("nvmcluster_peer_fill_hits_total", "Local jobs satisfied by a peer cache fetch.", s.PeerFillHits)
	counter("nvmcluster_peer_fill_misses_total", "Peer cache fetches that found nothing.", s.PeerFillMisses)
	counter("nvmcluster_peer_fill_errors_total", "Peer cache fetches that failed.", s.PeerFillErrors)
	counter("nvmcluster_peer_fill_shared_total", "Peer cache fetches deduplicated by single-flight.", s.PeerFillShared)
	counter("nvmcluster_peer_serve_hits_total", "Peer result requests served from the local cache.", s.PeerServeHits)
	counter("nvmcluster_peer_serve_misses_total", "Peer result requests that missed.", s.PeerServeMiss)
	counter("nvmcluster_peer_runs_total", "Jobs executed here on behalf of a remote dispatcher.", s.PeerRuns)
	counter("nvmcluster_ckpt_replicated_total", "Job snapshots pushed to a ring replica.", s.CkptReplicated)
	counter("nvmcluster_ckpt_repl_errors_total", "Snapshot replication attempts that failed.", s.CkptReplErrors)
	counter("nvmcluster_ckpt_received_total", "Replicated job snapshots accepted from peers.", s.CkptReceived)
	counter("nvmcluster_ckpt_recovered_total", "Jobs resumed from a snapshot fetched off a peer.", s.CkptRecovered)
	counter("nvmcluster_ckpt_repaired_total", "Snapshots re-replicated by the anti-entropy loop.", s.CkptRepaired)
	counter("nvmcluster_corrupt_responses_total", "Peer responses that failed an integrity check.", s.CorruptResponses)
	counter("nvmcluster_quarantines_total", "Peers quarantined for returning corrupt bytes.", s.Quarantines)
	counter("nvmcluster_probes_total", "Background health probes sent to peers.", s.Probes)
	counter("nvmcluster_probe_failures_total", "Background health probes that failed.", s.ProbeFailures)

	fmt.Fprintf(&b, "# HELP nvmcluster_peers_unhealthy Peers whose health breaker is currently open.\n# TYPE nvmcluster_peers_unhealthy gauge\nnvmcluster_peers_unhealthy %d\n", s.PeersUnhealthy)
	fmt.Fprintf(&b, "# HELP nvmcluster_peers_quarantined Peers exiled for returning corrupt bytes.\n# TYPE nvmcluster_peers_quarantined gauge\nnvmcluster_peers_quarantined %d\n", s.PeersQuarantined)
	fmt.Fprintf(&b, "# HELP nvmcluster_hedge_budget_seconds Current straggler budget before a dispatch is hedged.\n# TYPE nvmcluster_hedge_budget_seconds gauge\nnvmcluster_hedge_budget_seconds %g\n", s.HedgeBudgetMs/1e3)

	fmt.Fprintf(&b, "# HELP nvmcluster_peer_breaker_state Peer health breaker state (one-hot per peer and state).\n# TYPE nvmcluster_peer_breaker_state gauge\n")
	for _, p := range s.Peers {
		for _, state := range []string{breaker.Closed, breaker.Open, breaker.HalfOpen} {
			v := 0
			if p.Breaker == state {
				v = 1
			}
			fmt.Fprintf(&b, "nvmcluster_peer_breaker_state{peer=%q,state=%q} %d\n", p.ID, state, v)
		}
	}

	fmt.Fprintf(&b, "# HELP nvmcluster_peer_probe_seconds Round-trip time of the last health probe per peer.\n# TYPE nvmcluster_peer_probe_seconds gauge\n")
	for _, p := range s.Peers {
		if p.ProbeStatus == 0 && p.ProbeMs == 0 {
			continue // never probed
		}
		fmt.Fprintf(&b, "nvmcluster_peer_probe_seconds{peer=%q} %g\n", p.ID, p.ProbeMs/1e3)
	}

	_, err := io.WriteString(w, b.String())
	return err
}
