package cluster

import (
	"fmt"
	"testing"
)

// testKeys returns n synthetic canonical job hashes.
func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("%064x", i+1)
	}
	return keys
}

func TestNewRingValidation(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Error("empty membership accepted")
	}
	if _, err := NewRing([]string{"a", ""}, 0); err == nil {
		t.Error("empty node id accepted")
	}
	if _, err := NewRing([]string{"a", "b", "a"}, 0); err == nil {
		t.Error("duplicate node id accepted")
	}
}

// TestRingDeterministic: two rings built from the same membership (in any
// order) agree on every owner — the property that lets each node compute
// routing locally.
func TestRingDeterministic(t *testing.T) {
	r1, err := NewRing([]string{"n1", "n2", "n3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRing([]string{"n3", "n1", "n2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range testKeys(500) {
		if r1.Owner(k) != r2.Owner(k) {
			t.Fatalf("owner of %s differs: %s vs %s", k[:8], r1.Owner(k), r2.Owner(k))
		}
	}
}

// TestRingBalance: with the default virtual-node count no member's share of
// the key space strays wildly from the mean.
func TestRingBalance(t *testing.T) {
	r, err := NewRing([]string{"n1", "n2", "n3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	keys := testKeys(9000)
	for _, k := range keys {
		counts[r.Owner(k)]++
	}
	for _, id := range r.Nodes() {
		share := float64(counts[id]) / float64(len(keys))
		if share < 0.15 || share > 0.55 {
			t.Errorf("node %s owns %.0f%% of keys; split %v", id, share*100, counts)
		}
	}
}

// TestRingConsistency: removing one member only remaps the keys that member
// owned; everything else keeps its owner.
func TestRingConsistency(t *testing.T) {
	big, err := NewRing([]string{"n1", "n2", "n3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	small, err := NewRing([]string{"n1", "n2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	keys := testKeys(3000)
	for _, k := range keys {
		was := big.Owner(k)
		now := small.Owner(k)
		if was != "n3" && was != now {
			t.Fatalf("key %s moved %s -> %s though its owner was not removed", k[:8], was, now)
		}
		if was == "n3" {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("n3 owned nothing; balance is broken")
	}
}

// TestRingOrder: the failover order starts at the owner and visits every
// member exactly once.
func TestRingOrder(t *testing.T) {
	ids := []string{"n1", "n2", "n3", "n4"}
	r, err := NewRing(ids, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range testKeys(200) {
		order := r.Order(k)
		if len(order) != len(ids) {
			t.Fatalf("Order(%s) = %v, want %d distinct members", k[:8], order, len(ids))
		}
		if order[0] != r.Owner(k) {
			t.Fatalf("Order(%s)[0] = %s, owner = %s", k[:8], order[0], r.Owner(k))
		}
		seen := make(map[string]bool)
		for _, id := range order {
			if seen[id] {
				t.Fatalf("Order(%s) repeats %s: %v", k[:8], id, order)
			}
			seen[id] = true
		}
	}
}
