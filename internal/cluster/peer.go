package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"time"

	"repro/internal/server"
)

// Peer names one cluster member: a stable node id (the ring key) and the
// base URL its API listens on. The self entry's URL may be empty.
type Peer struct {
	ID  string `json:"id"`
	URL string `json:"url"`
}

// Client is the HTTP client side of the peer protocol. One Client is shared
// by a node for all peers; the transport keeps per-host connection pools.
type Client struct {
	http *http.Client
}

// NewClient returns a peer client. timeout bounds whole requests including
// the remote job execution; dial/TLS setup gets a tighter bound so a dead
// peer fails fast instead of consuming the whole request budget.
func NewClient(timeout time.Duration) *Client {
	return &Client{http: &http.Client{
		Timeout: timeout,
		Transport: &http.Transport{
			DialContext:         (&net.Dialer{Timeout: 2 * time.Second}).DialContext,
			MaxIdleConnsPerHost: 16,
			IdleConnTimeout:     30 * time.Second,
		},
	}}
}

// peerError classifies a failed peer call so the dispatcher can decide
// whether to charge the peer's breaker (transport faults and 5xx responses)
// or just route around momentary pushback (429/503 load shedding).
type peerError struct {
	status    int // 0 for transport errors
	transport bool
	msg       string
}

func (e *peerError) Error() string {
	if e.transport {
		return "peer transport: " + e.msg
	}
	return fmt.Sprintf("peer status %d: %s", e.status, e.msg)
}

// countsAgainstPeer reports whether the failure indicates peer ill-health.
func (e *peerError) countsAgainstPeer() bool {
	return e.transport || e.status >= 500
}

// FetchResult asks baseURL for the cached result of a canonical job hash
// (GET /v1/peer/result/{hash}). wait > 0 lets the owner hold the request for
// an in-flight computation of the same hash. ok=false with nil error is a
// clean miss (the owner simply has not computed it).
func (c *Client) FetchResult(ctx context.Context, baseURL, hash string, wait time.Duration) (*server.Result, bool, error) {
	url := baseURL + "/v1/peer/result/" + hash
	if wait > 0 {
		url += "?wait_ms=" + strconv.FormatInt(wait.Milliseconds(), 10)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, false, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, false, &peerError{transport: true, msg: err.Error()}
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		res, err := decodeResult(resp.Body, hash)
		if err != nil {
			return nil, false, err
		}
		return res, true, nil
	case http.StatusNotFound:
		io.Copy(io.Discard, resp.Body)
		return nil, false, nil
	default:
		return nil, false, readPeerError(resp)
	}
}

// Run executes a job on baseURL and waits for its result
// (POST /v1/peer/run). The body is the canonical result JSON, so results
// forwarded through any number of peers stay byte-identical.
func (c *Client) Run(ctx context.Context, baseURL string, spec server.JobSpec) (*server.Result, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		baseURL+"/v1/peer/run", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, &peerError{transport: true, msg: err.Error()}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, readPeerError(resp)
	}
	return decodeResult(resp.Body, "")
}

// maxCkptBytes bounds a peer snapshot body. Snapshots are full system images
// of bounded simulations; 64MB is far past any realistic plan.
const maxCkptBytes = 64 << 20

// FetchCkpt asks baseURL for its durable snapshot of a canonical job hash
// (GET /v1/peer/ckpt/{hash}). ok=false with nil error is a clean miss.
func (c *Client) FetchCkpt(ctx context.Context, baseURL, hash string) ([]byte, bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		baseURL+"/v1/peer/ckpt/"+hash, nil)
	if err != nil {
		return nil, false, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, false, &peerError{transport: true, msg: err.Error()}
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		snap, err := io.ReadAll(io.LimitReader(resp.Body, maxCkptBytes))
		if err != nil {
			return nil, false, &peerError{transport: true, msg: err.Error()}
		}
		return snap, true, nil
	case http.StatusNotFound:
		io.Copy(io.Discard, resp.Body)
		return nil, false, nil
	default:
		return nil, false, readPeerError(resp)
	}
}

// PushCkpt replicates a job snapshot to baseURL (PUT /v1/peer/ckpt/{hash}),
// where it lands in the peer's durable state dir. The receiver validates the
// envelope before storing.
func (c *Client) PushCkpt(ctx context.Context, baseURL, hash string, snap []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPut,
		baseURL+"/v1/peer/ckpt/"+hash, bytes.NewReader(snap))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.http.Do(req)
	if err != nil {
		return &peerError{transport: true, msg: err.Error()}
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		return &peerError{status: resp.StatusCode, msg: resp.Status}
	}
	return nil
}

// Health probes baseURL's /v1/healthz, returning the raw status code (a 503
// from a draining or degraded node is a valid, readable answer).
func (c *Client) Health(ctx context.Context, baseURL string) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/v1/healthz", nil)
	if err != nil {
		return 0, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return 0, &peerError{transport: true, msg: err.Error()}
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}

// decodeResult parses a canonical result body, verifying the hash when the
// caller knows which job it asked for (integrity check on peer fills).
func decodeResult(r io.Reader, wantHash string) (*server.Result, error) {
	var res server.Result
	if err := json.NewDecoder(io.LimitReader(r, maxResultBytes)).Decode(&res); err != nil {
		return nil, fmt.Errorf("cluster: decoding peer result: %v", err)
	}
	if wantHash != "" && res.Hash != wantHash {
		return nil, fmt.Errorf("cluster: peer returned result for hash %.12s, want %.12s", res.Hash, wantHash)
	}
	return &res, nil
}

// maxResultBytes bounds a peer result body; canonical results with full obs
// dumps run tens of KB, so 16MB is generous without being unbounded.
const maxResultBytes = 16 << 20

// readPeerError turns a non-OK peer response into a peerError, salvaging the
// JSON error message when present.
func readPeerError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	msg := string(bytes.TrimSpace(body))
	var eb struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &eb) == nil && eb.Error != "" {
		msg = eb.Error
	}
	return &peerError{status: resp.StatusCode, msg: msg}
}
