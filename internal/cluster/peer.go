package cluster

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"time"

	"repro/internal/ckpt"
	"repro/internal/server"
)

// Peer names one cluster member: a stable node id (the ring key) and the
// base URL its API listens on. The self entry's URL may be empty.
type Peer struct {
	ID  string `json:"id"`
	URL string `json:"url"`
}

// Client is the HTTP client side of the peer protocol. One Client is shared
// by a node for all peers; the transport keeps per-host connection pools.
type Client struct {
	http         *http.Client
	probeTimeout time.Duration
}

// NewClient returns a peer client. timeout bounds whole requests including
// the remote job execution; probeTimeout bounds one health probe (so a hung
// peer cannot stall probing for the full request budget). rt overrides the
// transport — the chaos fabric injects itself here; nil builds the standard
// pooled transport with a tight dial bound so a dead peer fails fast.
func NewClient(timeout, probeTimeout time.Duration, rt http.RoundTripper) *Client {
	if rt == nil {
		rt = &http.Transport{
			DialContext:         (&net.Dialer{Timeout: 2 * time.Second}).DialContext,
			MaxIdleConnsPerHost: 16,
			IdleConnTimeout:     30 * time.Second,
		}
	}
	if probeTimeout <= 0 {
		probeTimeout = time.Second
	}
	return &Client{
		http:         &http.Client{Timeout: timeout, Transport: rt},
		probeTimeout: probeTimeout,
	}
}

// peerError classifies a failed peer call so the dispatcher can decide
// whether to charge the peer's breaker (transport faults and 5xx responses),
// count it toward quarantine (corrupt bytes), or just route around momentary
// pushback (429/503 load shedding).
type peerError struct {
	status    int // 0 for transport errors
	transport bool
	corrupt   bool // response failed an integrity check (digest, hash, envelope)
	msg       string
}

func (e *peerError) Error() string {
	switch {
	case e.corrupt:
		return "peer corrupt: " + e.msg
	case e.transport:
		return "peer transport: " + e.msg
	default:
		return fmt.Sprintf("peer status %d: %s", e.status, e.msg)
	}
}

// countsAgainstPeer reports whether the failure indicates peer ill-health.
func (e *peerError) countsAgainstPeer() bool {
	return e.corrupt || e.transport || e.status >= 500
}

// resultDigestHeader carries a SHA-256 over the canonical result bytes.
// Every peer path verifies it, so a single flipped byte anywhere on the wire
// is detected and charged to the sending peer instead of poisoning a sweep.
const resultDigestHeader = "X-Result-Digest"

// FetchResult asks baseURL for the cached result of a canonical job hash
// (GET /v1/peer/result/{hash}). wait > 0 lets the owner hold the request for
// an in-flight computation of the same hash. ok=false with nil error is a
// clean miss (the owner simply has not computed it).
func (c *Client) FetchResult(ctx context.Context, baseURL, hash string, wait time.Duration) (*server.Result, bool, error) {
	url := baseURL + "/v1/peer/result/" + hash
	if wait > 0 {
		url += "?wait_ms=" + strconv.FormatInt(wait.Milliseconds(), 10)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, false, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, false, &peerError{transport: true, msg: err.Error()}
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		res, err := decodeResult(resp, hash)
		if err != nil {
			return nil, false, err
		}
		return res, true, nil
	case http.StatusNotFound:
		io.Copy(io.Discard, resp.Body)
		return nil, false, nil
	default:
		return nil, false, readPeerError(resp)
	}
}

// Run executes a job on baseURL and waits for its result
// (POST /v1/peer/run). The body is the canonical result JSON, so results
// forwarded through any number of peers stay byte-identical. wantHash is the
// job's canonical hash; the response must carry it (a corrupt or confused
// peer answering for the wrong job is rejected like peer fills already are).
func (c *Client) Run(ctx context.Context, baseURL string, spec server.JobSpec, wantHash string) (*server.Result, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		baseURL+"/v1/peer/run", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, &peerError{transport: true, msg: err.Error()}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, readPeerError(resp)
	}
	return decodeResult(resp, wantHash)
}

// maxCkptBytes bounds a peer snapshot body. Snapshots are full system images
// of bounded simulations; 64MB is far past any realistic plan.
const maxCkptBytes = 64 << 20

// FetchCkpt asks baseURL for its durable snapshot of a canonical job hash
// (GET /v1/peer/ckpt/{hash}). The envelope is validated before the bytes are
// handed back, so a peer serving corrupt snapshots is charged rather than
// trusted. ok=false with nil error is a clean miss.
func (c *Client) FetchCkpt(ctx context.Context, baseURL, hash string) ([]byte, bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		baseURL+"/v1/peer/ckpt/"+hash, nil)
	if err != nil {
		return nil, false, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, false, &peerError{transport: true, msg: err.Error()}
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		// Read one byte past the bound: exactly maxCkptBytes+1 read means the
		// body was larger, which must be an explicit error — silently clipping
		// a snapshot would resume the job from torn state.
		snap, err := io.ReadAll(io.LimitReader(resp.Body, maxCkptBytes+1))
		if err != nil {
			return nil, false, &peerError{transport: true, msg: err.Error()}
		}
		if len(snap) > maxCkptBytes {
			return nil, false, &peerError{status: resp.StatusCode,
				msg: fmt.Sprintf("snapshot too large (over %d bytes)", maxCkptBytes)}
		}
		if _, err := ckpt.Open(snap); err != nil {
			return nil, false, &peerError{corrupt: true,
				msg: "snapshot failed envelope validation: " + err.Error()}
		}
		return snap, true, nil
	case http.StatusNotFound:
		io.Copy(io.Discard, resp.Body)
		return nil, false, nil
	default:
		return nil, false, readPeerError(resp)
	}
}

// HasCkpt asks baseURL whether it holds a snapshot for hash
// (HEAD /v1/peer/ckpt/{hash}) — the anti-entropy dedup probe, cheap enough
// to run for every locally held snapshot each repair pass.
func (c *Client) HasCkpt(ctx context.Context, baseURL, hash string) (bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodHead,
		baseURL+"/v1/peer/ckpt/"+hash, nil)
	if err != nil {
		return false, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return false, &peerError{transport: true, msg: err.Error()}
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	switch resp.StatusCode {
	case http.StatusOK, http.StatusNoContent:
		return true, nil
	case http.StatusNotFound:
		return false, nil
	default:
		return false, &peerError{status: resp.StatusCode, msg: resp.Status}
	}
}

// PushCkpt replicates a job snapshot to baseURL (PUT /v1/peer/ckpt/{hash}),
// where it lands in the peer's durable state dir. The receiver validates the
// envelope before storing.
func (c *Client) PushCkpt(ctx context.Context, baseURL, hash string, snap []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPut,
		baseURL+"/v1/peer/ckpt/"+hash, bytes.NewReader(snap))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.http.Do(req)
	if err != nil {
		return &peerError{transport: true, msg: err.Error()}
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		return &peerError{status: resp.StatusCode, msg: resp.Status}
	}
	return nil
}

// FetchDashboard asks baseURL for its local dashboard contribution
// (GET /v1/dashboard/local): node metrics, verdict tallies, and per-stage
// latency distributions, feeding the fleet dashboard aggregation.
func (c *Client) FetchDashboard(ctx context.Context, baseURL string) (NodeDash, error) {
	var nd NodeDash
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		baseURL+"/v1/dashboard/local", nil)
	if err != nil {
		return nd, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nd, &peerError{transport: true, msg: err.Error()}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nd, readPeerError(resp)
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxResultBytes)).Decode(&nd); err != nil {
		return nd, &peerError{corrupt: true, status: resp.StatusCode,
			msg: "undecodable dashboard payload: " + err.Error()}
	}
	return nd, nil
}

// Health probes baseURL's /v1/healthz under the client's own probe timeout
// (one hung peer must not stall probing for the full peer-run budget),
// returning the status code and the probe round-trip time. A 503 from a
// draining or degraded node is a valid, readable answer.
func (c *Client) Health(ctx context.Context, baseURL string) (int, time.Duration, error) {
	ctx, cancel := context.WithTimeout(ctx, c.probeTimeout)
	defer cancel()
	start := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/v1/healthz", nil)
	if err != nil {
		return 0, 0, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return 0, time.Since(start), &peerError{transport: true, msg: err.Error()}
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, time.Since(start), nil
}

// decodeResult reads and parses a canonical result body, verifying the
// response digest (when sent) and the job hash (when the caller knows which
// job it asked for). Integrity failures come back as corrupt peerErrors so
// the dispatcher can quarantine the sender.
func decodeResult(resp *http.Response, wantHash string) (*server.Result, error) {
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxResultBytes+1))
	if err != nil {
		return nil, &peerError{transport: true, msg: "reading peer result: " + err.Error()}
	}
	if len(body) > maxResultBytes {
		return nil, &peerError{status: resp.StatusCode, msg: "peer result exceeds size bound"}
	}
	if want := resp.Header.Get(resultDigestHeader); want != "" {
		sum := sha256.Sum256(body)
		if got := hex.EncodeToString(sum[:]); got != want {
			return nil, &peerError{corrupt: true, status: resp.StatusCode,
				msg: fmt.Sprintf("result digest mismatch: body %.12s, header %.12s", got, want)}
		}
	}
	var res server.Result
	if err := json.Unmarshal(body, &res); err != nil {
		return nil, &peerError{corrupt: true, status: resp.StatusCode,
			msg: "undecodable peer result: " + err.Error()}
	}
	if wantHash != "" && res.Hash != wantHash {
		return nil, &peerError{corrupt: true, status: resp.StatusCode,
			msg: fmt.Sprintf("peer returned result for hash %.12s, want %.12s", res.Hash, wantHash)}
	}
	return &res, nil
}

// maxResultBytes bounds a peer result body; canonical results with full obs
// dumps run tens of KB, so 16MB is generous without being unbounded.
const maxResultBytes = 16 << 20

// readPeerError turns a non-OK peer response into a peerError, salvaging the
// JSON error message when present.
func readPeerError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	msg := string(bytes.TrimSpace(body))
	var eb struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &eb) == nil && eb.Error != "" {
		msg = eb.Error
	}
	return &peerError{status: resp.StatusCode, msg: msg}
}
