package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/server"
)

// swapHandler lets an httptest server come up before the node it will serve
// exists — peer URLs must be known to build a Node, but a Node must exist to
// provide the handler. The test wires the handler in after construction.
type swapHandler struct {
	mu sync.RWMutex
	h  http.Handler
}

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	h := s.h
	s.mu.RUnlock()
	if h == nil {
		http.Error(w, "not wired yet", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

type testNode struct {
	id   string
	srv  *server.Server
	node *Node
	ts   *httptest.Server
}

// startCluster builds n in-process members talking real HTTP to each other.
// optsFor/cfgFor customize one member (either may be nil for defaults).
func startCluster(t *testing.T, n int, optsFor func(i int) server.Options, cfgFor func(i int) Config) []*testNode {
	t.Helper()
	handlers := make([]*swapHandler, n)
	nodes := make([]*testNode, n)
	peers := make([]Peer, n)
	for i := range nodes {
		handlers[i] = &swapHandler{}
		ts := httptest.NewServer(handlers[i])
		id := fmt.Sprintf("n%d", i+1)
		nodes[i] = &testNode{id: id, ts: ts}
		peers[i] = Peer{ID: id, URL: ts.URL}
	}
	for i := range nodes {
		opts := server.Options{Workers: 2, QueueDepth: 64, CacheEntries: 64}
		if optsFor != nil {
			opts = optsFor(i)
		}
		cfg := Config{}
		if cfgFor != nil {
			cfg = cfgFor(i)
		}
		cfg.SelfID = nodes[i].id
		cfg.Peers = peers
		srv := server.New(opts)
		node, err := NewNode(srv, cfg)
		if err != nil {
			t.Fatalf("NewNode(%s): %v", nodes[i].id, err)
		}
		nodes[i].srv, nodes[i].node = srv, node
		handlers[i].mu.Lock()
		handlers[i].h = node.Handler()
		handlers[i].mu.Unlock()
	}
	t.Cleanup(func() {
		for _, tn := range nodes {
			tn.ts.Close()
			tn.srv.Shutdown(10 * time.Second)
		}
	})
	return nodes
}

func clusterChaseSpec(seed uint64) server.JobSpec {
	return server.JobSpec{
		Workload: server.WorkloadSpec{Kind: server.KindChase, Region: "16K", MaxSteps: 400},
		Seed:     seed,
	}
}

// specOwnedBy scans seeds for a job whose canonical hash lands on the wanted
// member.
func specOwnedBy(t *testing.T, n *Node, id string) server.JobSpec {
	t.Helper()
	for seed := uint64(1); seed < 500; seed++ {
		spec := clusterChaseSpec(seed)
		p, err := spec.Compile()
		if err != nil {
			t.Fatal(err)
		}
		if n.Owner(p.Hash()) == id {
			return spec
		}
	}
	t.Fatalf("no seed below 500 hashes onto %s", id)
	return server.JobSpec{}
}

// TestDispatchShardsByHash: a dispatch lands on the ring owner, the owner
// caches the result, and a re-dispatch from a different coordinator returns
// byte-identical bytes.
func TestDispatchShardsByHash(t *testing.T) {
	nodes := startCluster(t, 3, nil, nil)
	spec := clusterChaseSpec(7)

	res, route, err := nodes[0].node.Dispatch(context.Background(), spec)
	if err != nil {
		t.Fatalf("Dispatch: %v", err)
	}
	if route.Owner != nodes[0].node.Owner(route.Hash) {
		t.Errorf("route owner %s != ring owner %s", route.Owner, nodes[0].node.Owner(route.Hash))
	}
	if route.Node != route.Owner {
		t.Errorf("healthy dispatch answered by %s, want owner %s", route.Node, route.Owner)
	}
	var ownerSrv *server.Server
	for _, tn := range nodes {
		if tn.id == route.Owner {
			ownerSrv = tn.srv
		}
	}
	if _, ok := ownerSrv.ResultByHash(route.Hash); !ok {
		t.Errorf("owner %s did not cache the result", route.Owner)
	}

	res2, route2, err := nodes[1].node.Dispatch(context.Background(), spec)
	if err != nil {
		t.Fatalf("re-dispatch: %v", err)
	}
	if route2.Owner != route.Owner {
		t.Errorf("owner changed between coordinators: %s vs %s", route2.Owner, route.Owner)
	}
	if !bytes.Equal(res.Canonical(), res2.Canonical()) {
		t.Error("same job dispatched twice returned different canonical bytes")
	}
}

// TestPeerFillOnLocalSubmit: a job computed by its owner becomes a cache hit
// on every other member via peer fill — no re-simulation, PeerFilled set.
func TestPeerFillOnLocalSubmit(t *testing.T) {
	nodes := startCluster(t, 3, nil, nil)
	spec := specOwnedBy(t, nodes[0].node, "n3")

	// Owner computes and caches it.
	if _, _, err := nodes[2].node.Dispatch(context.Background(), spec); err != nil {
		t.Fatalf("owner dispatch: %v", err)
	}

	// A plain local submission on n1 must be satisfied by asking the owner.
	st, err := nodes[0].srv.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	fin, err := nodes[0].srv.Wait(ctx, st.ID)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if fin.State != server.JobDone {
		t.Fatalf("job state %s, want done (%s)", fin.State, fin.Error)
	}
	if !fin.PeerFilled {
		t.Error("job not marked peer_filled; n1 re-simulated an owned result")
	}
	if hits := nodes[0].node.Info().PeerFillHits; hits == 0 {
		t.Errorf("peer_fill_hits = %d, want > 0", hits)
	}
	res1, _, _ := nodes[0].srv.Result(st.ID)
	res3, _ := nodes[2].srv.ResultByHash(fin.Hash)
	if !bytes.Equal(res1.Canonical(), res3.Canonical()) {
		t.Error("peer-filled result differs from the owner's bytes")
	}
	if m := nodes[0].srv.MetricsSnapshot(); m.JobsPeerFilled == 0 {
		t.Errorf("jobs_peer_filled = %d, want > 0", m.JobsPeerFilled)
	}
}

// TestHedgeOnStraggler: a handicapped owner blows the fixed hedge budget, the
// dispatch is hedged to the next replica, the replica wins, and the loser's
// job is canceled on the straggler.
func TestHedgeOnStraggler(t *testing.T) {
	const handicap = 300 * time.Millisecond
	nodes := startCluster(t, 3,
		func(i int) server.Options {
			opts := server.Options{Workers: 2, QueueDepth: 64, CacheEntries: 64}
			if i == 2 {
				opts.Handicap = handicap
			}
			return opts
		},
		func(i int) Config { return Config{HedgeAfter: 30 * time.Millisecond} },
	)
	spec := specOwnedBy(t, nodes[0].node, "n3")

	start := time.Now()
	res, route, err := nodes[0].node.Dispatch(context.Background(), spec)
	if err != nil {
		t.Fatalf("Dispatch: %v", err)
	}
	if !route.Hedged || !route.HedgeWon {
		t.Errorf("route = %+v, want hedged and hedge-won", route)
	}
	if route.Node == "n3" {
		t.Errorf("straggler n3 won the race; handicap or hedging is broken")
	}
	if took := time.Since(start); took >= handicap {
		t.Errorf("dispatch took %s; hedging did not mask the %s straggler", took, handicap)
	}
	if res.Hash != route.Hash {
		t.Errorf("result hash %s != job hash %s", res.Hash, route.Hash)
	}
	info := nodes[0].node.Info()
	if info.HedgesFired == 0 || info.HedgesWon == 0 {
		t.Errorf("hedge counters fired=%d won=%d, want both > 0", info.HedgesFired, info.HedgesWon)
	}

	// First-answer-wins cancels the loser: n3's in-flight job must be
	// reaped, not left simulating.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if nodes[2].srv.MetricsSnapshot().JobsCanceled > 0 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Error("straggler never canceled the losing hedge job")
}

// TestRerouteAroundDeadPeer: a SIGKILLed owner (dead listener) costs a
// reroute, not the dispatch; its breaker opens and later dispatches avoid it
// up front.
func TestRerouteAroundDeadPeer(t *testing.T) {
	nodes := startCluster(t, 3, nil,
		func(i int) Config {
			return Config{BreakerThreshold: 1, BreakerCooldown: time.Minute}
		},
	)
	spec := specOwnedBy(t, nodes[0].node, "n3")
	nodes[2].ts.Close() // the whole process is gone, mid-"sweep"

	res, route, err := nodes[0].node.Dispatch(context.Background(), spec)
	if err != nil {
		t.Fatalf("Dispatch with dead owner: %v", err)
	}
	if route.Node == "n3" {
		t.Error("dead node reported as the winner")
	}
	if route.Reroutes == 0 {
		t.Error("no reroute recorded for a dead owner")
	}
	if res == nil || res.Hash != route.Hash {
		t.Fatalf("bad result after reroute: %+v", res)
	}
	if u := nodes[0].node.Info().PeersUnhealthy; u != 1 {
		t.Errorf("peers_unhealthy = %d, want 1", u)
	}

	// Next dispatch of an n3-owned job starts on a healthy member directly.
	spec2 := specOwnedBy(t, nodes[0].node, "n3")
	_, route2, err := nodes[0].node.Dispatch(context.Background(), spec2)
	if err != nil {
		t.Fatalf("second dispatch: %v", err)
	}
	if route2.Node == "n3" || route2.Reroutes != 0 {
		t.Errorf("open breaker not honored: route %+v", route2)
	}
}

// TestClusterSweepEndpoint: the coordinator's NDJSON sweep emits every point
// in order plus a summary, and a rerun is byte-identical (served by caches).
func TestClusterSweepEndpoint(t *testing.T) {
	nodes := startCluster(t, 3, nil, nil)
	sweep := map[string]any{
		"base": map[string]any{
			"workload": map[string]any{"kind": "chase", "region": "16K", "max_steps": 400},
		},
		"parameter": "seed",
		"values":    []string{"1", "2", "3", "4", "5", "6", "7", "8"},
	}
	run := func() (map[int]string, int) {
		body, _ := json.Marshal(sweep)
		resp, err := http.Post(nodes[0].ts.URL+"/v1/cluster/sweep", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("sweep status %d", resp.StatusCode)
		}
		canon := make(map[int]string)
		completed := 0
		wantIdx := 0
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 16<<20)
		for sc.Scan() {
			var line struct {
				SweepDone *bool           `json:"sweep_done"`
				Completed int             `json:"completed"`
				Index     *int            `json:"index"`
				Error     string          `json:"error"`
				Result    json.RawMessage `json:"result"`
			}
			if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
				t.Fatalf("bad line %q: %v", sc.Text(), err)
			}
			if line.SweepDone != nil {
				completed = line.Completed
				break
			}
			if line.Index == nil || line.Error != "" {
				t.Fatalf("point error: %s", line.Error)
			}
			if *line.Index != wantIdx {
				t.Fatalf("points out of order: got %d, want %d", *line.Index, wantIdx)
			}
			wantIdx++
			var compact bytes.Buffer
			if err := json.Compact(&compact, line.Result); err != nil {
				t.Fatal(err)
			}
			canon[*line.Index] = compact.String()
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		return canon, completed
	}

	first, completed := run()
	if completed != 8 || len(first) != 8 {
		t.Fatalf("first sweep: completed=%d results=%d, want 8/8", completed, len(first))
	}
	second, completed := run()
	if completed != 8 {
		t.Fatalf("second sweep completed %d/8", completed)
	}
	for i := range first {
		if first[i] != second[i] {
			t.Errorf("point %d changed between identical sweeps", i)
		}
	}
}

// clusterCkptSpec is a checkpointing pointer chase: the 64K region caps the
// stream at 1024 accesses, so CkptEvery 300 cuts barriers at 300/600/900.
func clusterCkptSpec(seed uint64) server.JobSpec {
	return server.JobSpec{
		Workload:  server.WorkloadSpec{Kind: server.KindChase, Region: "64K", MaxSteps: 2000},
		Seed:      seed,
		CkptEvery: 300,
	}
}

// ckptSpecOwnedBy scans seeds for a checkpointing job owned by the wanted
// member, returning the spec and its canonical hash.
func ckptSpecOwnedBy(t *testing.T, n *Node, id string) (server.JobSpec, string) {
	t.Helper()
	for seed := uint64(1); seed < 500; seed++ {
		spec := clusterCkptSpec(seed)
		p, err := spec.Compile()
		if err != nil {
			t.Fatal(err)
		}
		if n.Owner(p.Hash()) == id {
			return spec, p.Hash()
		}
	}
	t.Fatalf("no seed below 500 hashes onto %s", id)
	return server.JobSpec{}, ""
}

// TestCkptHandoffAcrossNodes: a checkpointing job replicates every barrier
// snapshot to its ring successor; when the runner is SIGKILLed the re-dispatch
// lands on the successor, which resumes from the replica instead of
// restarting — and the resumed result is byte-identical.
func TestCkptHandoffAcrossNodes(t *testing.T) {
	nodes := startCluster(t, 3,
		func(i int) server.Options {
			return server.Options{Workers: 2, QueueDepth: 64, CacheEntries: 64, StateDir: t.TempDir()}
		},
		func(i int) Config {
			return Config{BreakerThreshold: 1, BreakerCooldown: time.Minute}
		},
	)
	spec, hash := ckptSpecOwnedBy(t, nodes[0].node, "n3")

	// Healthy run: the owner executes and pushes each barrier snapshot to the
	// next ring member (replication is synchronous with the barrier, so by the
	// time Dispatch returns the replica holds the final snapshot).
	res1, route1, err := nodes[0].node.Dispatch(context.Background(), spec)
	if err != nil {
		t.Fatalf("Dispatch: %v", err)
	}
	if route1.Node != "n3" {
		t.Fatalf("healthy dispatch answered by %s, want owner n3", route1.Node)
	}
	var owner, replica *testNode
	for _, tn := range nodes {
		if tn.id == "n3" {
			owner = tn
		} else if _, ok := tn.srv.CheckpointBytes(hash); ok {
			replica = tn
		}
	}
	if replica == nil {
		t.Fatal("no surviving member holds a replicated snapshot")
	}
	if n := owner.node.Info().CkptReplicated; n == 0 {
		t.Errorf("owner ckpt_replicated = %d, want > 0", n)
	}
	if n := replica.node.Info().CkptReceived; n == 0 {
		t.Errorf("replica ckpt_received = %d, want > 0", n)
	}
	snap, _ := replica.srv.CheckpointBytes(hash)

	// The runner dies mid-"sweep". Re-dispatching reroutes to the ring
	// successor, which finds the replicated snapshot in its own state dir and
	// resumes from the last barrier.
	owner.ts.Close()
	res2, route2, err := nodes[0].node.Dispatch(context.Background(), spec)
	if err != nil {
		t.Fatalf("dispatch after owner death: %v", err)
	}
	if route2.Node == "n3" {
		t.Fatal("dead owner reported as the winner")
	}
	var winner *testNode
	for _, tn := range nodes {
		if tn.id == route2.Node {
			winner = tn
		}
	}
	if winner != replica {
		t.Errorf("winner %s is not the snapshot-holding successor %s", winner.id, replica.id)
	}
	if n := winner.srv.MetricsSnapshot().JobsResumed; n == 0 {
		t.Error("surviving node re-simulated from scratch; want a checkpoint resume")
	}
	if !bytes.Equal(res1.Canonical(), res2.Canonical()) {
		t.Error("resumed result differs from the uninterrupted run")
	}

	// Fetch path: snapshots are stamped with the canonical plan hash, so they
	// are portable across clusters. Seed a fresh two-member fleet where only
	// the non-owner holds the snapshot; the owner must pull it over the peer
	// protocol before running.
	c2 := startCluster(t, 2,
		func(i int) server.Options {
			return server.Options{Workers: 2, QueueDepth: 64, CacheEntries: 64, StateDir: t.TempDir()}
		}, nil)
	owner2 := c2[0].node.Owner(hash)
	var runner2, holder2 *testNode
	for _, tn := range c2 {
		if tn.id == owner2 {
			runner2 = tn
		} else {
			holder2 = tn
		}
	}
	if err := holder2.srv.PutCheckpoint(hash, snap); err != nil {
		t.Fatalf("PutCheckpoint on %s: %v", holder2.id, err)
	}
	res3, route3, err := c2[0].node.Dispatch(context.Background(), spec)
	if err != nil {
		t.Fatalf("dispatch on second cluster: %v", err)
	}
	if route3.Node != owner2 {
		t.Fatalf("second-cluster dispatch answered by %s, want owner %s", route3.Node, owner2)
	}
	if n := runner2.node.Info().CkptRecovered; n != 1 {
		t.Errorf("owner ckpt_recovered = %d, want 1", n)
	}
	if n := runner2.srv.MetricsSnapshot().JobsResumed; n == 0 {
		t.Error("owner did not resume from the fetched snapshot")
	}
	if !bytes.Equal(res1.Canonical(), res3.Canonical()) {
		t.Error("peer-recovered result differs from the uninterrupted run")
	}
}

// TestSingleMemberCluster: with no remote peers the cluster layer degrades to
// plain local execution — no fill hook, every dispatch local.
func TestSingleMemberCluster(t *testing.T) {
	srv := server.New(server.Options{Workers: 1, QueueDepth: 8, CacheEntries: 8})
	t.Cleanup(func() { srv.Shutdown(5 * time.Second) })
	node, err := NewNode(srv, Config{SelfID: "solo", Peers: []Peer{{ID: "solo"}}})
	if err != nil {
		t.Fatal(err)
	}
	res, route, err := node.Dispatch(context.Background(), clusterChaseSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if route.Owner != "solo" || route.Node != "solo" || res == nil {
		t.Errorf("route = %+v, want solo-owned local answer", route)
	}
	if info := node.Info(); info.DispatchLocal != 1 || info.DispatchRemote != 0 {
		t.Errorf("dispatch counters local=%d remote=%d, want 1/0", info.DispatchLocal, info.DispatchRemote)
	}
}
