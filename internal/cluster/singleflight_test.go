package cluster

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/server"
)

// TestFlightGroupDedup: concurrent Do calls for one key run the fetch once
// and share the answer.
func TestFlightGroupDedup(t *testing.T) {
	g := newFlightGroup()
	const callers = 8
	gate := make(chan struct{})
	var calls atomic.Int32
	want := &server.Result{Hash: "h"}

	var started, finished sync.WaitGroup
	started.Add(callers)
	finished.Add(callers)
	var sharedCount atomic.Int32
	for i := 0; i < callers; i++ {
		go func() {
			defer finished.Done()
			started.Done()
			res, ok, shared := g.Do("k", func() (*server.Result, bool) {
				calls.Add(1)
				<-gate
				return want, true
			})
			if !ok || res != want {
				t.Errorf("Do = (%v, %v), want (%p, true)", res, ok, want)
			}
			if shared {
				sharedCount.Add(1)
			}
		}()
	}
	started.Wait()
	// Everyone has reached Do (or is one scheduler step away); the flight
	// cannot complete until the gate opens, so all callers join it.
	time.Sleep(20 * time.Millisecond)
	close(gate)
	finished.Wait()

	if n := calls.Load(); n != 1 {
		t.Errorf("fetch ran %d times, want 1", n)
	}
	if n := sharedCount.Load(); n != callers-1 {
		t.Errorf("%d callers shared, want %d", n, callers-1)
	}
}

// TestFlightGroupKeysIndependent: different keys do not serialize on each
// other, and a finished flight does not satisfy later calls (no caching).
func TestFlightGroupKeysIndependent(t *testing.T) {
	g := newFlightGroup()
	var calls atomic.Int32
	fn := func() (*server.Result, bool) {
		calls.Add(1)
		return nil, false
	}
	var wg sync.WaitGroup
	for _, key := range []string{"a", "b"} {
		wg.Add(1)
		go func(k string) {
			defer wg.Done()
			if _, ok, _ := g.Do(k, fn); ok {
				t.Errorf("Do(%s) ok = true, want false", k)
			}
		}(key)
	}
	wg.Wait()
	if n := calls.Load(); n != 2 {
		t.Errorf("fetch ran %d times for 2 keys, want 2", n)
	}
	// Sequential re-ask for a completed key runs the fetch again.
	g.Do("a", fn)
	if n := calls.Load(); n != 3 {
		t.Errorf("fetch ran %d times after re-ask, want 3", n)
	}
}
