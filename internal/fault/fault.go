// Package fault is the deterministic, seed-driven fault-injection layer of
// the simulator. It defines the client-facing fault Spec (part of the
// nvmserved job spec and its canonical cache hash), the typed errors that
// injected faults surface as, the Injector the timing models consult at
// their injection points, and the replay ledger behind the crash-consistency
// checker.
//
// Every injected decision is a pure function of (spec, attempt, engine event
// order): the injector draws from explicitly seeded RNG streams and the
// event engine is single-threaded, so a seeded fault spec reproduces
// byte-identical results across runs and workers.
//
// Fault classes:
//
//   - Uncorrectable media read errors ("poison"): a demand 3D-XPoint read
//     returns a *MediaError instead of data. The error propagates up the
//     hierarchy (media -> nvdimm -> imc -> mem.Request.Err) as a typed
//     error, never a panic. The transient class clears on retry; the
//     permanent class recurs on every attempt.
//   - AIT/RMW stall spikes: the AIT lookup path is charged an extra fixed
//     latency with a seeded probability, modeling controller hiccups
//     (thermal throttling, internal maintenance).
//   - Power failure: the run is cut at an arbitrary cycle; everything
//     outside the ADR domain is lost. See RunToCut and Ledger.
//   - Injected engine crash: a panic raised at the Nth access, a chaos
//     knob for exercising nvmserved's worker panic recovery.
package fault

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/dram"
	"repro/internal/sim"
)

// Spec is the serializable fault-injection specification carried by a job.
// The zero value injects nothing. Spec is part of the nvmserved Plan and
// therefore of the canonical job hash: faulty runs are cacheable and
// reproducible like any other job.
type Spec struct {
	// Seed drives every injection decision (default 1).
	Seed uint64 `json:"seed,omitempty"`

	// PoisonRate is the per-demand-media-read probability of an
	// uncorrectable read error, in [0,1].
	PoisonRate float64 `json:"poison_rate,omitempty"`
	// PoisonTransient selects the transient fault class: the poison clears
	// on retry (the injector fires it only on the first attempt), so
	// nvmserved's retry policy deterministically recovers the job.
	PoisonTransient bool `json:"poison_transient,omitempty"`

	// StallRate is the per-AIT-lookup probability of a stall spike, in [0,1].
	StallRate float64 `json:"stall_rate,omitempty"`
	// StallNs is the duration of one injected stall (default 10000ns when
	// StallRate is set).
	StallNs float64 `json:"stall_ns,omitempty"`

	// PowerFailCycle, when nonzero, cuts power at that engine cycle: the
	// run stops, all non-ADR state is lost, and the crash-consistency
	// checker verifies recovery (App Direct mode only).
	PowerFailCycle uint64 `json:"power_fail_cycle,omitempty"`

	// CrashAccess, when nonzero, panics the simulation engine at the Nth
	// access — a chaos-engineering knob for drilling the service's worker
	// panic recovery and circuit breaker.
	CrashAccess uint64 `json:"crash_access,omitempty"`
}

// maxStallNs bounds one injected stall (1ms of simulated time).
const maxStallNs = 1e6

// Enabled reports whether the spec injects anything at all.
func (s *Spec) Enabled() bool {
	if s == nil {
		return false
	}
	return s.PoisonRate > 0 || s.StallRate > 0 || s.PowerFailCycle > 0 || s.CrashAccess > 0
}

// Validate rejects malformed specs with client-error messages.
func (s *Spec) Validate() error {
	if s == nil {
		return nil
	}
	if math.IsNaN(s.PoisonRate) || s.PoisonRate < 0 || s.PoisonRate > 1 {
		return fmt.Errorf("fault.poison_rate %v out of range [0,1]", s.PoisonRate)
	}
	if math.IsNaN(s.StallRate) || s.StallRate < 0 || s.StallRate > 1 {
		return fmt.Errorf("fault.stall_rate %v out of range [0,1]", s.StallRate)
	}
	if math.IsNaN(s.StallNs) || s.StallNs < 0 || s.StallNs > maxStallNs {
		return fmt.Errorf("fault.stall_ns %v out of range [0,%g]", s.StallNs, float64(maxStallNs))
	}
	return nil
}

// MediaError is an uncorrectable media read error: the 3D-XPoint block at
// Addr could not be read. It is the typed error injected poison surfaces as,
// all the way up to the driver and the job result.
type MediaError struct {
	// Addr is the poisoned media (post-translation) block address.
	Addr uint64
	// Transient marks the retryable fault class.
	Transient bool
}

// Error implements error.
func (e *MediaError) Error() string {
	class := "uncorrectable"
	if e.Transient {
		class = "transient"
	}
	return fmt.Sprintf("fault: %s media read error at media address 0x%x", class, e.Addr)
}

// IsMediaError reports whether err wraps a *MediaError.
func IsMediaError(err error) bool {
	var me *MediaError
	return errors.As(err, &me)
}

// IsTransient reports whether err is a retryable injected fault: retrying
// the job (the injector re-seeded with the next attempt number) clears it.
func IsTransient(err error) bool {
	var me *MediaError
	return errors.As(err, &me) && me.Transient
}

// Injector makes the seeded injection decisions for one run attempt. The
// timing models hold one injector per system and consult it at their
// injection points; a nil *Injector injects nothing, so models thread it
// unconditionally. Injector is not safe for concurrent use — it belongs to
// a single-threaded engine, like every other model component.
type Injector struct {
	spec     Spec
	poison   *sim.RNG
	stall    *sim.RNG
	stallCyc sim.Cycle
	// poisonOff disables the poison stream (transient class past attempt 0).
	poisonOff bool

	injectedPoison uint64
	injectedStalls uint64
}

// NewInjector builds the injector for one attempt of a run. Attempt 0 is the
// first try; transient poison fires only there, so a retry deterministically
// succeeds. Permanent poison and stall decisions ignore the attempt number
// and replay identically on every attempt.
func NewInjector(spec Spec, attempt int) *Injector {
	seed := spec.Seed
	if seed == 0 {
		seed = 1
	}
	stallNs := spec.StallNs
	if stallNs == 0 && spec.StallRate > 0 {
		stallNs = 10000
	}
	return &Injector{
		spec:      spec,
		poison:    sim.NewRNG(seed ^ 0xb0150ed0b0150ed),  // poison stream
		stall:     sim.NewRNG(seed ^ 0x57a11575a1157a57), // stall stream
		stallCyc:  dram.NsToCycles(stallNs),
		poisonOff: spec.PoisonTransient && attempt > 0,
	}
}

// ReadPoison decides whether the demand media read at mediaAddr is
// uncorrectable. It returns nil (no fault) or a *MediaError.
func (i *Injector) ReadPoison(mediaAddr uint64) error {
	if i == nil || i.spec.PoisonRate <= 0 || i.poisonOff {
		return nil
	}
	if i.poison.Float64() >= i.spec.PoisonRate {
		return nil
	}
	i.injectedPoison++
	return &MediaError{Addr: mediaAddr, Transient: i.spec.PoisonTransient}
}

// AITStall returns the extra cycles to charge the current AIT lookup
// (0 almost always; a stall spike with probability StallRate).
func (i *Injector) AITStall() sim.Cycle {
	if i == nil || i.spec.StallRate <= 0 || i.stallCyc == 0 {
		return 0
	}
	if i.stall.Float64() >= i.spec.StallRate {
		return 0
	}
	i.injectedStalls++
	return i.stallCyc
}

// InjectedPoison returns how many reads this injector poisoned.
func (i *Injector) InjectedPoison() uint64 {
	if i == nil {
		return 0
	}
	return i.injectedPoison
}

// InjectedStalls returns how many stall spikes this injector fired.
func (i *Injector) InjectedStalls() uint64 {
	if i == nil {
		return 0
	}
	return i.injectedStalls
}

// CrashPanicMsg formats the panic value used by injected engine crashes, so
// tests and log triage can recognize chaos-injected panics.
func CrashPanicMsg(access uint64) string {
	return fmt.Sprintf("fault: injected engine crash at access %d", access)
}
