package fault

import (
	"bytes"
	"testing"
)

func TestSpecEnabledAndValidate(t *testing.T) {
	var nilSpec *Spec
	if nilSpec.Enabled() {
		t.Fatal("nil spec enabled")
	}
	if err := nilSpec.Validate(); err != nil {
		t.Fatalf("nil spec invalid: %v", err)
	}
	zero := Spec{}
	if zero.Enabled() {
		t.Fatal("zero spec enabled")
	}
	on := Spec{PoisonRate: 0.1}
	if !on.Enabled() {
		t.Fatal("poison spec not enabled")
	}
	for _, bad := range []Spec{
		{PoisonRate: -0.1},
		{PoisonRate: 1.5},
		{StallRate: 2},
		{StallNs: -1},
		{StallNs: 1e9},
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("spec %+v validated", bad)
		}
	}
}

func TestInjectorDeterministic(t *testing.T) {
	spec := Spec{Seed: 42, PoisonRate: 0.3, StallRate: 0.2}
	a := NewInjector(spec, 0)
	b := NewInjector(spec, 0)
	for i := 0; i < 1000; i++ {
		addr := uint64(i) * 256
		ea, eb := a.ReadPoison(addr), b.ReadPoison(addr)
		if (ea == nil) != (eb == nil) {
			t.Fatalf("poison diverged at draw %d", i)
		}
		if a.AITStall() != b.AITStall() {
			t.Fatalf("stall diverged at draw %d", i)
		}
	}
	if a.InjectedPoison() == 0 || a.InjectedStalls() == 0 {
		t.Fatalf("nothing injected at 30%%/20%% over 1000 draws: poison=%d stalls=%d",
			a.InjectedPoison(), a.InjectedStalls())
	}
}

func TestTransientPoisonClearsOnRetry(t *testing.T) {
	spec := Spec{Seed: 7, PoisonRate: 1, PoisonTransient: true}
	first := NewInjector(spec, 0)
	if err := first.ReadPoison(0); err == nil {
		t.Fatal("attempt 0 not poisoned at rate 1")
	} else if !IsTransient(err) {
		t.Fatalf("transient poison not classified transient: %v", err)
	}
	retry := NewInjector(spec, 1)
	if err := retry.ReadPoison(0); err != nil {
		t.Fatalf("attempt 1 still poisoned: %v", err)
	}

	perm := NewInjector(Spec{Seed: 7, PoisonRate: 1}, 5)
	err := perm.ReadPoison(0)
	if err == nil {
		t.Fatal("permanent poison cleared by retry")
	}
	if IsTransient(err) {
		t.Fatal("permanent poison classified transient")
	}
	if !IsMediaError(err) {
		t.Fatal("poison not a MediaError")
	}
}

func TestNilInjectorInjectsNothing(t *testing.T) {
	var inj *Injector
	if err := inj.ReadPoison(0); err != nil {
		t.Fatal("nil injector poisoned")
	}
	if inj.AITStall() != 0 {
		t.Fatal("nil injector stalled")
	}
	if inj.InjectedPoison() != 0 || inj.InjectedStalls() != 0 {
		t.Fatal("nil injector counted")
	}
}

func TestPayloadDeterministicAndUnique(t *testing.T) {
	a := Payload(1, 0, 0, 64)
	b := Payload(1, 0, 0, 64)
	if !bytes.Equal(a, b) {
		t.Fatal("payload not deterministic")
	}
	c := Payload(1, 1, 0, 64)
	if bytes.Equal(a, c) {
		t.Fatal("distinct write indices share a payload")
	}
	d := Payload(2, 0, 0, 64)
	if bytes.Equal(a, d) {
		t.Fatal("distinct seeds share a payload")
	}
}
