// Crash-consistency checking: a replay ledger of ADR-durable writes and the
// power-fail cut driver that builds it.
//
// The ADR contract the paper's persistence claims rest on: a store is
// durable exactly when the iMC accepts it into the write pending queue
// (WPQ). Everything above that point — CPU store buffers, retried
// submissions — is lost on power failure; everything at or below it (WPQ,
// on-DIMM LSQ, RMW buffer, AIT path) is drained by stored energy and must
// survive. The model realizes the drain by committing functional write data
// at WPQ acceptance, so the checker's job is to verify that after recovery
// the persistent image contains exactly the accepted writes: every accepted
// write's final payload (no lost or torn lines) and nothing from writes
// that were never accepted (no ghost lines).
package fault

import (
	"bytes"
	"fmt"
	"sort"

	"repro/internal/mem"
	"repro/internal/sim"
)

// FillPayloads attaches a deterministic, per-access-unique 64B payload to
// every write access in accs (in place). Unique payloads are what make the
// ledger's torn/stale checks meaningful: any mix of two writes, or an old
// value surviving an overwrite, is a byte mismatch.
func FillPayloads(accs []mem.Access, seed uint64) {
	for i := range accs {
		if !accs[i].Op.IsWrite() {
			continue
		}
		size := accs[i].Size
		if size == 0 {
			size = mem.CacheLine
		}
		accs[i].Data = Payload(seed, uint64(i), accs[i].Addr, int(size))
	}
}

// Payload returns the deterministic payload for write index idx at addr.
func Payload(seed, idx, addr uint64, size int) []byte {
	rng := sim.NewRNG(seed ^ (idx+1)*0x9e3779b97f4a7c15 ^ addr)
	out := make([]byte, size)
	for i := 0; i < size; i += 8 {
		v := rng.Uint64()
		for j := 0; j < 8 && i+j < size; j++ {
			out[i+j] = byte(v >> (8 * j))
		}
	}
	return out
}

// Ledger records, during a run to a power-fail cut, which writes reached the
// ADR domain (WPQ acceptance) and with what payload. It is the expected
// recovery image the checker compares against.
type Ledger struct {
	// last maps a 64B line address to the payload of the last accepted
	// write to it (acceptance order).
	last map[uint64][]byte
	// touched is every line any write in the stream targets, accepted or
	// not, for ghost detection.
	touched map[uint64]bool

	accepted int
	lost     int
	endCycle sim.Cycle
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{last: make(map[uint64][]byte), touched: make(map[uint64]bool)}
}

// Accepted returns the count of writes accepted into the ADR domain.
func (l *Ledger) Accepted() int { return l.accepted }

// Lost returns the count of stream writes never accepted at the cut.
func (l *Ledger) Lost() int { return l.lost }

// DurableLines returns the number of distinct durable lines.
func (l *Ledger) DurableLines() int { return len(l.last) }

// EndCycle returns the engine cycle the cut run stopped at.
func (l *Ledger) EndCycle() sim.Cycle { return l.endCycle }

// record notes one accepted write.
func (l *Ledger) record(addr uint64, data []byte) {
	line := mem.AlignDown(addr, mem.CacheLine)
	cp := make([]byte, len(data))
	copy(cp, data)
	l.last[line] = cp
	l.accepted++
}

// RunToCut replays accs into sys with up to window outstanding requests,
// then cuts power at cycle cut: no submission is attempted and no engine
// event runs past the cut. The returned ledger holds every write the system
// accepted (the ADR-durable set at the cut); writes still being retried
// against a full queue — the model's analogue of data in CPU buffers — are
// counted as lost.
//
// Unlike mem.Driver, RunToCut never drains: power is gone. The caller
// recovers the system (vans.System.Recover) and verifies with Ledger.Verify.
func RunToCut(sys mem.System, accs []mem.Access, window int, cut sim.Cycle) *Ledger {
	if window < 1 {
		window = 1
	}
	eng := sys.Engine()
	led := NewLedger()
	for i := range accs {
		if accs[i].Op.IsWrite() {
			led.touched[mem.AlignDown(accs[i].Addr, mem.CacheLine)] = true
		}
	}

	// stepOne advances the engine by exactly one event if that event is at
	// or before the cut; it reports false when the next event (or silence)
	// lies beyond the cut — the moment power fails.
	stepOne := func() bool {
		at, ok := eng.NextAt()
		if !ok || at > cut {
			return false
		}
		fired := eng.Fired()
		eng.RunWhile(func() bool { return eng.Fired() == fired })
		return true
	}

	var id uint64
	inflight := 0
	i := 0
	alive := true
	for i < len(accs) && alive {
		if eng.Now() > cut {
			break
		}
		a := accs[i]
		if inflight >= window {
			alive = stepOne()
			continue
		}
		id++
		r := &mem.Request{ID: id, Op: a.Op, Addr: a.Addr, Size: a.Size, Data: a.Data,
			OnDone: func(*mem.Request) { inflight-- }}
		if !sys.Submit(r) {
			// Backpressure: the write sits in the CPU, outside ADR.
			alive = stepOne()
			continue
		}
		if a.Op.IsWrite() {
			led.record(a.Addr, a.Data)
		}
		inflight++
		i++
	}
	for ; i < len(accs); i++ {
		if accs[i].Op.IsWrite() {
			led.lost++
		}
	}
	led.endCycle = eng.Now()
	if led.endCycle > cut {
		led.endCycle = cut
	}
	return led
}

// Mismatch is one crash-consistency violation found by Verify.
type Mismatch struct {
	// Line is the 64B line address.
	Line uint64 `json:"line"`
	// Kind classifies the violation: "lost" (an accepted write is absent),
	// "torn" (the line holds bytes from no single accepted write), or
	// "ghost" (a never-accepted write became visible).
	Kind string `json:"kind"`
	// Detail is a human-readable byte-level summary.
	Detail string `json:"detail"`
}

// Verify compares the recovered persistent image (readable through read,
// e.g. vans.System.ReadData on a recovered system) against the ledger:
// every durable line must hold exactly its last accepted payload, and every
// touched-but-never-durable line must still be zero. It returns the
// violations found (nil when consistent).
func (l *Ledger) Verify(read func(addr uint64, n int) []byte) []Mismatch {
	var out []Mismatch
	for line, want := range l.last {
		got := read(line, len(want))
		if bytes.Equal(got, want) {
			continue
		}
		kind := "torn"
		if allZero(got) {
			kind = "lost"
		}
		out = append(out, Mismatch{
			Line: line, Kind: kind,
			Detail: fmt.Sprintf("want %x.. got %x..", want[:8], got[:8]),
		})
	}
	for line := range l.touched {
		if _, durable := l.last[line]; durable {
			continue
		}
		if got := read(line, mem.CacheLine); !allZero(got) {
			out = append(out, Mismatch{
				Line: line, Kind: "ghost",
				Detail: fmt.Sprintf("never-accepted write visible: %x..", got[:8]),
			})
		}
	}
	// Map iteration order is random; reports must be byte-identical across
	// runs, so order by line address.
	sort.Slice(out, func(a, b int) bool { return out[a].Line < out[b].Line })
	return out
}

func allZero(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}

// CrashReport is the outcome of one power-fail + recovery check. It holds
// only simulation-domain quantities, so it is byte-identical across runs
// and workers for a given plan.
type CrashReport struct {
	// CutCycle is the requested power-fail cycle.
	CutCycle uint64 `json:"cut_cycle"`
	// EndCycle is the engine cycle the run actually stopped at (the last
	// event at or before the cut; equals CutCycle unless the run finished
	// or stalled earlier).
	EndCycle uint64 `json:"end_cycle"`
	// AcceptedWrites reached the ADR domain before the cut.
	AcceptedWrites int `json:"accepted_writes"`
	// LostWrites were still outside the ADR domain at the cut.
	LostWrites int `json:"lost_writes"`
	// DurableLines is the distinct durable 64B line count.
	DurableLines int `json:"durable_lines"`
	// Consistent reports whether recovery matched the ledger exactly.
	Consistent bool `json:"consistent"`
	// Mismatches lists the violations (empty when consistent).
	Mismatches []Mismatch `json:"mismatches,omitempty"`
}
