// Package imc models the processor's integrated memory controller as it
// faces Optane DIMMs: per-channel write pending queues (WPQ, the ADR
// persistence domain), read pending queues (RPQ), the DDR-T request/grant
// bus, and the 4KB multi-DIMM interleaver LENS characterized.
package imc

import (
	"fmt"

	"repro/internal/dram"
	"repro/internal/nvdimm"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Config parameterizes the iMC.
type Config struct {
	// WPQSlots is the per-channel write pending queue capacity in 64B
	// entries (8 x 64B = the 512B structure LENS sees overflow at 512B).
	WPQSlots int
	// RPQSlots bounds outstanding reads per channel.
	RPQSlots int
	// InterleaveBytes is the contiguous span mapped to one DIMM before
	// rotating to the next (4KB on Optane platforms). Ignored with one
	// channel or when Interleaved is false.
	InterleaveBytes uint64
	// Interleaved enables multi-DIMM interleaving.
	Interleaved bool

	// Obs, when set, registers per-channel counters with the observability
	// registry and enables WPQ/RPQ hook emission. Runtime-only.
	Obs *obs.Obs `json:"-"`

	// BusTransferNs is the DDR-T bus occupancy per 64B transfer.
	BusTransferNs float64
	// BusTurnNs is the penalty for reversing bus direction.
	BusTurnNs float64
	// ReadOverheadNs is the fixed request/grant handshake latency added to
	// each read round trip.
	ReadOverheadNs float64
	// WriteAcceptNs is the latency from WPQ acceptance to store completion
	// (the ADR-durable point the CPU observes).
	WriteAcceptNs float64
	// WriteDrainNs is the per-64B handshake cost of pushing a WPQ entry to
	// the DIMM (DDR-T posted-write overhead; sets the drain rate seen once
	// the WPQ is saturated).
	WriteDrainNs float64
}

// DefaultConfig matches the paper's characterized platform.
func DefaultConfig() Config {
	return Config{
		WPQSlots:        8,
		RPQSlots:        16,
		InterleaveBytes: 4 << 10,
		Interleaved:     false,
		// Transfer occupancy vs handshake latency: a 64B DDR-T transfer
		// occupies the bus ~10ns (the pipelined-beat cost, setting the
		// ~3 GB/s per-channel ceiling); the request/grant handshake adds
		// fixed round-trip latency without occupying the bus.
		BusTransferNs:  10,
		BusTurnNs:      12,
		ReadOverheadNs: 90,
		WriteAcceptNs:  60,
		// Fast WPQ->LSQ handshake: bursts are absorbed by the on-DIMM LSQ,
		// and sustained store backpressure comes from the DIMM internals
		// (LSQ-full retries paced by the media write rate). Small-region
		// store latency is consequently dominated by CPU-side effects the
		// paper's own VANS also leaves unmodeled (Fig. 9a discussion).
		WriteDrainNs: 30,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.WPQSlots == 0 {
		c.WPQSlots = d.WPQSlots
	}
	if c.RPQSlots == 0 {
		c.RPQSlots = d.RPQSlots
	}
	if c.InterleaveBytes == 0 {
		c.InterleaveBytes = d.InterleaveBytes
	}
	if c.BusTransferNs == 0 {
		c.BusTransferNs = d.BusTransferNs
	}
	if c.BusTurnNs == 0 {
		c.BusTurnNs = d.BusTurnNs
	}
	if c.ReadOverheadNs == 0 {
		c.ReadOverheadNs = d.ReadOverheadNs
	}
	if c.WriteAcceptNs == 0 {
		c.WriteAcceptNs = d.WriteAcceptNs
	}
	if c.WriteDrainNs == 0 {
		c.WriteDrainNs = d.WriteDrainNs
	}
	return c
}

// WPQBytes returns the per-channel WPQ capacity in bytes.
func (c Config) WPQBytes() uint64 { return uint64(c.WPQSlots) * 64 }

// Stats counts iMC activity.
type Stats struct {
	Reads     uint64
	Writes    uint64
	WPQMerges uint64
	Forwards  uint64 // reads served from WPQ contents
	Fences    uint64
}

// IMC is the integrated memory controller: an interleaver over channels,
// each fronting one NVDIMM.
type IMC struct {
	eng      *sim.Engine
	cfg      Config
	channels []*Channel
	stats    Stats
}

// New builds an iMC over the given DIMMs (one channel each). Channel i runs
// on engine shard i+1 and DIMM i must have been constructed on that same
// shard handle (eng.Shard(i+1)), as vans does — so each channel's
// queue mechanics (WPQ drain, bus turns, DIMM traffic) may execute
// concurrently with other channels' inside one cycle round, while everything
// that touches driver or cross-channel state funnels back through home
// events. The iMC front doors (Read/Write/Fence/Busy) are called from home
// context only.
func New(eng *sim.Engine, cfg Config, dimms []*nvdimm.DIMM) *IMC {
	cfg = cfg.withDefaults()
	m := &IMC{eng: eng, cfg: cfg}
	for i, d := range dimms {
		m.channels = append(m.channels, newChannel(eng.Shard(i+1), cfg, d, i))
	}
	return m
}

// Config returns the effective configuration.
func (m *IMC) Config() Config { return m.cfg }

// Channels returns the channel list (diagnostics).
func (m *IMC) Channels() []*Channel { return m.channels }

// Stats aggregates counters across channels.
func (m *IMC) Stats() Stats {
	s := m.stats
	for _, ch := range m.channels {
		s.Reads += ch.reads
		s.Writes += ch.writes
		s.WPQMerges += ch.wpq.Merges()
		s.Forwards += ch.forwards
	}
	return s
}

// Route maps a physical address to (channel, on-DIMM address). With
// interleaving, consecutive InterleaveBytes spans rotate across channels;
// without, the whole space maps to channel 0 (the paper's non-interleaved
// single-DIMM setup).
func (m *IMC) Route(addr uint64) (int, uint64) {
	n := uint64(len(m.channels))
	if n <= 1 || !m.cfg.Interleaved {
		return 0, addr
	}
	g := m.cfg.InterleaveBytes
	span := addr / g
	ch := span % n
	local := (span/n)*g + addr%g
	return int(ch), local
}

// Unroute inverts Route (property tests).
func (m *IMC) Unroute(ch int, local uint64) uint64 {
	n := uint64(len(m.channels))
	if n <= 1 || !m.cfg.Interleaved {
		return local
	}
	g := m.cfg.InterleaveBytes
	span := local / g
	return (span*n+uint64(ch))*g + local%g
}

// Read issues a 64B read; done fires when data arrives at the iMC, carrying
// a non-nil error when the DIMM reported an uncorrectable media read
// (poison). It reports false when the channel's RPQ is full.
func (m *IMC) Read(addr uint64, done func(error)) bool {
	ch, local := m.Route(addr)
	return m.channels[ch].read(local, done)
}

// Write offers a 64B store; done fires when the store is ADR-durable
// (accepted into the WPQ). It reports false when the WPQ is full and cannot
// merge, in which case the caller retries.
func (m *IMC) Write(addr uint64, data []byte, done func()) bool {
	ch, local := m.Route(addr)
	return m.channels[ch].write(local, data, done)
}

// Fence drains every WPQ and flushes every DIMM LSQ, then fires done.
func (m *IMC) Fence(done func()) {
	m.stats.Fences++
	remaining := len(m.channels)
	for _, ch := range m.channels {
		ch.fence(func() {
			remaining--
			if remaining == 0 {
				done()
			}
		})
	}
}

// Busy reports in-flight work on any channel.
func (m *IMC) Busy() bool {
	for _, ch := range m.channels {
		if ch.busy() {
			return true
		}
	}
	return false
}

// bus is the per-channel DDR-T bus: single resource with per-transfer
// occupancy and a direction-turnaround penalty.
type bus struct {
	free     sim.Cycle
	lastDir  bool // true = write
	haveDir  bool
	transfer sim.Cycle
	turn     sim.Cycle
}

// acquire reserves one transfer starting no earlier than now and returns
// the start cycle.
func (b *bus) acquire(now sim.Cycle, write bool) sim.Cycle {
	start := now
	if b.free > start {
		start = b.free
	}
	if b.haveDir && b.lastDir != write {
		start += b.turn
	}
	b.free = start + b.transfer
	b.lastDir = write
	b.haveDir = true
	return start
}

// wpq is the write pending queue: a small write-combining buffer keyed by
// 64B line. It reuses the LSQ mechanics at WPQ scale.
type wpq = nvdimm.LSQ

// Channel couples one WPQ/RPQ pair, a bus, and a DIMM.
type Channel struct {
	eng  *sim.Engine // this channel's shard handle (shard index + 1)
	cfg  Config
	dimm *nvdimm.DIMM
	bus  bus
	wpq  *wpq

	rpqInFlight int
	draining    bool
	// drainLine holds a WPQ line popped for drain but not yet accepted by
	// the DIMM (so LSQ backpressure can never lose a write).
	drainLine uint64
	haveDrain bool

	transferCyc sim.Cycle
	readOverCyc sim.Cycle
	writeAccCyc sim.Cycle
	drainCyc    sim.Cycle

	reads    uint64
	writes   uint64
	forwards uint64

	o        *obs.Obs
	comp     string
	histWait *obs.Histogram // WPQ residency (enqueue -> drain pop), ns
}

func newChannel(eng *sim.Engine, cfg Config, d *nvdimm.DIMM, idx int) *Channel {
	ch := &Channel{
		eng:         eng,
		cfg:         cfg,
		dimm:        d,
		wpq:         nvdimm.NewLSQ(cfg.WPQSlots, 64),
		transferCyc: dram.NsToCycles(cfg.BusTransferNs),
		readOverCyc: dram.NsToCycles(cfg.ReadOverheadNs),
		writeAccCyc: dram.NsToCycles(cfg.WriteAcceptNs),
		drainCyc:    dram.NsToCycles(cfg.WriteDrainNs),
	}
	ch.bus = bus{transfer: ch.transferCyc, turn: dram.NsToCycles(cfg.BusTurnNs)}
	if cfg.Obs != nil {
		ch.o = cfg.Obs
		ch.comp = fmt.Sprintf("imc%d", idx)
		ch.o.RegisterPtr(ch.comp, "reads", &ch.reads)
		ch.o.RegisterPtr(ch.comp, "writes", &ch.writes)
		ch.o.RegisterPtr(ch.comp, "wpq_forwards", &ch.forwards)
		ch.o.RegisterFunc(ch.comp, "wpq_merges", ch.wpq.Merges)
		ch.histWait = ch.o.Histogram(ch.comp, "wpq_wait_ns", nil)
	}
	return ch
}

// DIMM returns the attached DIMM.
func (ch *Channel) DIMM() *nvdimm.DIMM { return ch.dimm }

func (ch *Channel) busy() bool {
	return ch.rpqInFlight > 0 || !ch.wpq.Empty() || ch.haveDrain || ch.dimm.Busy()
}

func (ch *Channel) read(addr uint64, done func(error)) bool {
	if ch.rpqInFlight >= ch.cfg.RPQSlots {
		return false
	}
	ch.reads++
	if ch.o.Active() {
		ch.o.Emit(obs.Event{Now: ch.eng.Now(), Stage: obs.StageRPQ, Pos: obs.PosEnqueue,
			Comp: ch.comp, Addr: addr})
	}
	// WPQ forwarding: a pending store to the line satisfies the read at the
	// iMC without a DIMM round trip.
	line := addr - addr%64
	if ch.wpq.Contains(line) {
		ch.forwards++
		if ch.o.Active() {
			ch.o.Emit(obs.Event{Now: ch.eng.Now(), Stage: obs.StageWPQ, Pos: obs.PosHit,
				Comp: ch.comp, Addr: addr})
		}
		ch.rpqInFlight++
		// Completion invokes the driver callback, so it runs as a home event;
		// rpqInFlight is thereby home-owned (bumped here in driver context,
		// decremented in home completions) and never touched by shard events.
		ch.eng.AfterHome(ch.readOverCyc/2, func() {
			ch.rpqInFlight--
			ch.noteRPQDone(addr)
			done(nil)
		})
		return true
	}
	ch.rpqInFlight++
	start := ch.bus.acquire(ch.eng.Now(), false)
	ch.eng.Schedule(start+ch.transferCyc+ch.readOverCyc/2, func() {
		ch.dimm.Read(addr, func(err error) {
			// Poison rides the same return transfer as data would: DDR-T
			// signals the error in-band, so timing is unchanged. The bus
			// reservation happens here on the channel's shard; only the final
			// hand-back to the driver crosses to a home event.
			ret := ch.bus.acquire(ch.eng.Now(), false)
			ch.eng.ScheduleHome(ret+ch.transferCyc+ch.readOverCyc/2, func() {
				ch.rpqInFlight--
				ch.noteRPQDone(addr)
				done(err)
			})
		})
	})
	return true
}

// noteRPQDone emits the read-completion hook event.
func (ch *Channel) noteRPQDone(addr uint64) {
	if ch.o.Active() {
		ch.o.Emit(obs.Event{Now: ch.eng.Now(), Stage: obs.StageRPQ, Pos: obs.PosComplete,
			Comp: ch.comp, Addr: addr})
	}
}

func (ch *Channel) write(addr uint64, data []byte, done func()) bool {
	line := addr - addr%64
	_, ok := ch.wpq.Accept(line, ch.eng.Now())
	if !ok {
		ch.kickDrain()
		return false
	}
	ch.writes++
	if ch.o.Active() {
		ch.o.Emit(obs.Event{Now: ch.eng.Now(), Stage: obs.StageWPQ, Pos: obs.PosEnqueue,
			Write: true, Comp: ch.comp, Addr: addr})
	}
	ch.pendingData(addr, data)
	ch.kickDrain()
	ch.eng.AfterHome(ch.writeAccCyc, done)
	return true
}

// pendingData forwards functional contents immediately (the timing path
// tracks only addresses).
func (ch *Channel) pendingData(addr uint64, data []byte) {
	if data == nil {
		return
	}
	// Commit through the DIMM's functional store at acceptance order.
	ch.dimm.AcceptWriteData(addr, data)
}

// chanDrainStep / chanDrainPush adapt the WPQ drain engine to the engine's
// allocation-free recurring callback form (AfterFn): the drain loop fires
// twice per drained entry for as long as stores flow, so closures here would
// be a steady allocation stream.
func chanDrainStep(a any) { a.(*Channel).drainStep() }
func chanDrainPush(a any) { a.(*Channel).drainPush() }

// kickDrain starts the WPQ drain engine.
func (ch *Channel) kickDrain() {
	if ch.draining {
		return
	}
	ch.draining = true
	ch.eng.AfterFn(1, chanDrainStep, ch)
}

// drainStep pushes one WPQ entry per iteration to the DIMM LSQ over the
// bus. A line popped from the WPQ is held in drainLine until the DIMM
// accepts it, so backpressure never drops a write.
func (ch *Channel) drainStep() {
	if !ch.haveDrain {
		g, ok := ch.wpq.PopGroup()
		if !ok {
			ch.draining = false
			return
		}
		// The WPQ combines at 64B granularity: one line per group.
		ch.drainLine = g.Block
		ch.haveDrain = true
		if ch.histWait != nil {
			now := ch.eng.Now()
			if now > g.Enq {
				ch.histWait.Observe(uint64(float64(now-g.Enq) / dram.CyclesPerNano))
			} else {
				ch.histWait.Observe(0)
			}
		}
		if ch.o.Active() {
			ch.o.Emit(obs.Event{Now: ch.eng.Now(), Stage: obs.StageWPQ, Pos: obs.PosDequeue,
				Write: true, Comp: ch.comp, Addr: g.Block})
		}
	}
	start := ch.bus.acquire(ch.eng.Now(), true)
	ch.eng.ScheduleFn(start+ch.transferCyc, chanDrainPush, ch)
}

// drainPush completes one drain hop after the bus transfer: offer the held
// line to the DIMM, then pace the next drain decision.
func (ch *Channel) drainPush() {
	if !ch.dimm.AcceptWrite(ch.drainLine, nil) {
		// LSQ full: hold the line and retry after a drain interval.
		ch.eng.AfterFn(ch.drainCyc, chanDrainStep, ch)
		return
	}
	ch.haveDrain = false
	ch.eng.AfterFn(ch.drainCyc, chanDrainStep, ch)
}

// fence drains the WPQ then flushes the DIMM. done decrements a counter
// shared across channels (IMC.Fence), so the DIMM's flush notification —
// which fires inside a shard event — is funneled to a home event at the same
// cycle before done runs.
func (ch *Channel) fence(done func()) {
	var wait func()
	wait = func() {
		if !ch.wpq.Empty() || ch.haveDrain {
			ch.kickDrain()
			ch.eng.After(ch.drainCyc, wait)
			return
		}
		ch.dimm.Flush(func() { ch.eng.DeferHome(done) })
	}
	ch.eng.After(1, wait)
}
