package imc

import (
	"fmt"

	"repro/internal/ckpt"
	"repro/internal/sim"
)

// SaveState serializes one channel: the DDR-T bus horizon and direction
// memory, the WPQ, the drain engine's held line, in-flight counters, and the
// activity counters. The attached DIMM is serialized separately by the
// system-level orchestrator so the snapshot layout mirrors the topology.
func (ch *Channel) SaveState(enc *ckpt.Enc) {
	enc.U64(uint64(ch.bus.free))
	enc.Bool(ch.bus.lastDir)
	enc.Bool(ch.bus.haveDir)
	ch.wpq.SaveState(enc)
	enc.U64(uint64(ch.rpqInFlight))
	enc.Bool(ch.draining)
	enc.U64(ch.drainLine)
	enc.Bool(ch.haveDrain)
	enc.U64(ch.reads)
	enc.U64(ch.writes)
	enc.U64(ch.forwards)
	ch.histWait.SaveState(enc)
}

// LoadState restores a channel captured by SaveState.
func (ch *Channel) LoadState(dec *ckpt.Dec) error {
	ch.bus.free = sim.Cycle(dec.U64())
	ch.bus.lastDir = dec.Bool()
	ch.bus.haveDir = dec.Bool()
	if err := ch.wpq.LoadState(dec); err != nil {
		return err
	}
	ch.rpqInFlight = int(dec.U64())
	ch.draining = dec.Bool()
	ch.drainLine = dec.U64()
	ch.haveDrain = dec.Bool()
	ch.reads = dec.U64()
	ch.writes = dec.U64()
	ch.forwards = dec.U64()
	if err := ch.histWait.LoadState(dec); err != nil {
		return err
	}
	return dec.Err()
}

// SaveState serializes the iMC: its direct counters, then every channel and
// its DIMM in channel order.
func (m *IMC) SaveState(enc *ckpt.Enc) error {
	enc.U64(m.stats.Reads)
	enc.U64(m.stats.Writes)
	enc.U64(m.stats.WPQMerges)
	enc.U64(m.stats.Forwards)
	enc.U64(m.stats.Fences)
	enc.U32(uint32(len(m.channels)))
	for _, ch := range m.channels {
		ch.SaveState(enc)
		if err := ch.dimm.SaveState(enc); err != nil {
			return err
		}
	}
	return nil
}

// LoadState restores an iMC captured by SaveState into one built from the
// same configuration.
func (m *IMC) LoadState(dec *ckpt.Dec) error {
	m.stats.Reads = dec.U64()
	m.stats.Writes = dec.U64()
	m.stats.WPQMerges = dec.U64()
	m.stats.Forwards = dec.U64()
	m.stats.Fences = dec.U64()
	n := int(dec.U32())
	if err := dec.Err(); err != nil {
		return err
	}
	if n != len(m.channels) {
		return fmt.Errorf("%w: snapshot has %d iMC channels, this controller %d",
			ckpt.ErrCorrupt, n, len(m.channels))
	}
	for _, ch := range m.channels {
		if err := ch.LoadState(dec); err != nil {
			return err
		}
		if err := ch.dimm.LoadState(dec); err != nil {
			return err
		}
	}
	return nil
}
