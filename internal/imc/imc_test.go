package imc

import (
	"testing"

	"repro/internal/nvdimm"
	"repro/internal/sim"
)

func newIMC(t *testing.T, n int, interleaved bool) (*sim.Engine, *IMC) {
	t.Helper()
	eng := sim.NewEngine()
	nv := nvdimm.DefaultConfig()
	nv.Media.Capacity = 32 << 20
	var dimms []*nvdimm.DIMM
	for i := 0; i < n; i++ {
		// DIMM i shares channel i's shard (i+1), mirroring vans construction;
		// imc.New requires the pairing so DIMM-side schedules stay in-shard.
		dimms = append(dimms, nvdimm.New(eng.Shard(i+1), nv, uint64(i+1)))
	}
	cfg := DefaultConfig()
	cfg.Interleaved = interleaved
	return eng, New(eng, cfg, dimms)
}

func TestReadCompletes(t *testing.T) {
	eng, m := newIMC(t, 1, false)
	done := false
	if !m.Read(4096, func(error) { done = true }) {
		t.Fatal("read rejected")
	}
	eng.Run()
	if !done {
		t.Fatal("read never completed")
	}
	if m.Stats().Reads != 1 {
		t.Fatalf("stats = %+v", m.Stats())
	}
}

func TestWriteCompletesAtWPQAccept(t *testing.T) {
	eng, m := newIMC(t, 1, false)
	var at sim.Cycle = sim.Never
	if !m.Write(64, nil, func() { at = eng.Now() }) {
		t.Fatal("write rejected")
	}
	var readAt sim.Cycle = sim.Never
	m.Read(1<<20, func(error) { readAt = eng.Now() })
	eng.Run()
	if at == sim.Never || readAt == sim.Never {
		t.Fatal("operations never completed")
	}
	if at >= readAt {
		t.Fatalf("posted write (%d) not faster than cold read (%d)", at, readAt)
	}
}

func TestWPQBackpressureAfterCapacityDistinctLines(t *testing.T) {
	eng, m := newIMC(t, 1, false)
	accepted := 0
	for i := 0; i < 64; i++ {
		if m.Write(uint64(i)*64, nil, func() {}) {
			accepted++
		} else {
			break
		}
	}
	if accepted < 8 {
		t.Fatalf("accepted only %d writes, want at least WPQ capacity (8)", accepted)
	}
	if accepted >= 64 {
		t.Fatal("WPQ never exerted backpressure over 64 distinct lines")
	}
	eng.Run()
}

func TestWPQMergeAvoidsBackpressure(t *testing.T) {
	eng, m := newIMC(t, 1, false)
	// Hammer the same line: merging must always accept.
	for i := 0; i < 100; i++ {
		if !m.Write(0, nil, func() {}) {
			t.Fatalf("merge write %d rejected", i)
		}
	}
	eng.Run()
	if m.Stats().WPQMerges == 0 {
		t.Fatal("no WPQ merges recorded")
	}
}

func TestFenceDrainsEverything(t *testing.T) {
	eng, m := newIMC(t, 2, true)
	for i := 0; i < 16; i++ {
		m.Write(uint64(i)*64, nil, func() {})
	}
	fenced := false
	m.Fence(func() { fenced = true })
	eng.Run()
	if !fenced {
		t.Fatal("fence never completed")
	}
	if m.Busy() {
		t.Fatal("iMC busy after fence")
	}
}

func TestRPQBoundsOutstandingReads(t *testing.T) {
	_, m := newIMC(t, 1, false)
	issued := 0
	for i := 0; i < 64; i++ {
		if m.Read(uint64(i)*4096, func(error) {}) {
			issued++
		}
	}
	if issued != DefaultConfig().RPQSlots {
		t.Fatalf("issued %d reads, want RPQ capacity %d", issued, DefaultConfig().RPQSlots)
	}
}

func TestRouteDistributesAcrossChannels(t *testing.T) {
	_, m := newIMC(t, 6, true)
	seen := map[int]bool{}
	for i := 0; i < 6; i++ {
		ch, _ := m.Route(uint64(i) * 4096)
		seen[ch] = true
	}
	if len(seen) != 6 {
		t.Fatalf("6 consecutive 4KB spans hit %d channels, want 6", len(seen))
	}
}
