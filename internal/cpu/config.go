// Package cpu is the full-system substrate standing in for gem5: a
// window-based out-of-order timing core with an L1/L2/L3 cache hierarchy,
// two-level TLB with page-walk modeling, MSHR-limited memory-level
// parallelism, and the CPU-side half of the Pre-translation optimization
// (the mkpt instruction and Read Lookaside Buffer). It drives any
// mem.System — VANS, the baselines, or a plain DRAM controller.
package cpu

import (
	"repro/internal/cache"
	"repro/internal/dram"
	"repro/internal/sim"
)

// Config mirrors Table V's simulated system configuration.
type Config struct {
	// WidthIssue is instructions dispatched per core cycle.
	WidthIssue int
	// CoreGHz is the core clock (2.2 GHz in the paper).
	CoreGHz float64
	// ROB / LQ / SQ are the out-of-order window sizes (224-72-56).
	ROB int
	LQ  int
	SQ  int
	// MSHRs bounds outstanding cache-line misses to memory.
	MSHRs int

	// Cache hierarchy.
	L1 cache.Config
	L2 cache.Config
	L3 cache.Config
	// Hit latencies in ns.
	L1Ns float64
	L2Ns float64
	L3Ns float64

	// TLBs: first-level data TLB and second-level shared TLB.
	DTLBEntries int
	DTLBWays    int
	STLBEntries int
	STLBWays    int
	PageSize    uint64
	// STLBNs is the added cost of an STLB lookup after a DTLB miss;
	// WalkNs is the page-table walk cost after an STLB miss.
	STLBNs float64
	WalkNs float64

	// RLBEntries sizes the Read Lookaside Buffer of Pre-translation
	// (1KB / 8B = 128 entries in the paper). Zero disables the RLB.
	RLBEntries int
}

// DefaultConfig returns the Table V configuration.
func DefaultConfig() Config {
	return Config{
		WidthIssue: 4,
		CoreGHz:    2.2,
		ROB:        224, LQ: 72, SQ: 56,
		MSHRs: 10,
		L1:    cache.Config{SizeBytes: 32 << 10, Ways: 8, LineBytes: 64},
		L2:    cache.Config{SizeBytes: 1 << 20, Ways: 16, LineBytes: 64},
		L3:    cache.Config{SizeBytes: 32 << 20, Ways: 16, LineBytes: 64},
		L1Ns:  1.8, L2Ns: 6.4, L3Ns: 20,
		DTLBEntries: 64, DTLBWays: 4,
		STLBEntries: 1536, STLBWays: 12,
		PageSize: 4096,
		STLBNs:   2.5, WalkNs: 75,
	}
}

// cyc converts the ns latencies once.
type cpucycles struct {
	l1, l2, l3   sim.Cycle
	stlb, walk   sim.Cycle
	perInstr     float64 // engine cycles per instruction at full width
	coreCycle    float64 // engine cycles per core cycle
	rlbExtraBase sim.Cycle
}

func (c Config) cycles() cpucycles {
	coreCycle := dram.ClockMHz / (c.CoreGHz * 1000) // engine cycles per core cycle
	return cpucycles{
		l1:        dram.NsToCycles(c.L1Ns),
		l2:        dram.NsToCycles(c.L2Ns),
		l3:        dram.NsToCycles(c.L3Ns),
		stlb:      dram.NsToCycles(c.STLBNs),
		walk:      dram.NsToCycles(c.WalkNs),
		perInstr:  coreCycle / float64(c.WidthIssue),
		coreCycle: coreCycle,
	}
}

// InstrClass labels instructions for cycle attribution (Figure 12a).
type InstrClass uint8

const (
	// ClassOther is ordinary compute work.
	ClassOther InstrClass = iota
	// ClassRead marks the workload's tracked read operations.
	ClassRead
	// ClassWrite marks the tracked write operations.
	ClassWrite
	// numClasses bounds the attribution arrays.
	numClasses
)

// Instr is one instruction of a synthetic workload stream.
type Instr struct {
	// IsMem marks a memory operation; IsLoad selects load vs store.
	IsMem  bool
	IsLoad bool
	// Addr is the physical address of a memory operation.
	Addr uint64
	// DependsOnLoad serializes this operation behind the previous load's
	// completion (pointer chasing).
	DependsOnLoad bool
	// NT marks a non-temporal (cache-bypassing) store.
	NT bool
	// Clwb marks a cache-line write-back of Addr.
	Clwb bool
	// Fence is a store fence (mfence/sfence): dispatch serializes and all
	// prior stores become durable.
	Fence bool
	// Mkpt marks a pointer-chasing load for Pre-translation; NextAddr is
	// the address the loaded pointer references.
	Mkpt     bool
	NextAddr uint64
	// Class attributes the instruction's retire cycles.
	Class InstrClass
}

// Workload produces an instruction stream.
type Workload interface {
	// Next returns the next instruction; ok=false ends the run.
	Next() (Instr, bool)
}

// SliceWorkload replays a fixed instruction slice.
type SliceWorkload struct {
	Instrs []Instr
	pos    int
}

// Next implements Workload.
func (s *SliceWorkload) Next() (Instr, bool) {
	if s.pos >= len(s.Instrs) {
		return Instr{}, false
	}
	i := s.Instrs[s.pos]
	s.pos++
	return i, true
}

// Reset rewinds the stream.
func (s *SliceWorkload) Reset() { s.pos = 0 }
