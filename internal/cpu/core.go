package cpu

import (
	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/sim"
)

// Stats summarizes one run of the core.
type Stats struct {
	Instructions uint64
	Cycles       sim.Cycle // engine cycles (0.75 ns each)
	Loads        uint64
	Stores       uint64
	Fences       uint64

	L1    cache.Stats
	L2    cache.Stats
	L3    cache.Stats
	DTLB  cache.Stats
	STLB  cache.Stats
	Walks uint64

	// MemReads / MemWrites count requests sent to the memory system.
	MemReads  uint64
	MemWrites uint64

	// ClassCycles attributes retire time to instruction classes.
	ClassCycles [numClasses]sim.Cycle
	// ClassInstrs counts instructions per class.
	ClassInstrs [numClasses]uint64

	// ClassLLCMisses / ClassTLBMisses attribute misses to classes
	// (Figure 12a's per-operation analysis).
	ClassLLCMisses [numClasses]uint64
	ClassTLBMisses [numClasses]uint64

	// RLBHits / PreTransHits / PreTransStale count Pre-translation events.
	RLBHits       uint64
	PreTransHits  uint64
	PreTransStale uint64
	MkptMarked    uint64
}

// IPC returns instructions per core cycle.
func (s Stats) IPC(coreGHz float64) float64 {
	if s.Cycles == 0 {
		return 0
	}
	coreCycles := float64(s.Cycles) * coreGHz * 1000 / 1333.0
	return float64(s.Instructions) / coreCycles
}

// LLCMissRate returns L3 misses / L3 references.
func (s Stats) LLCMissRate() float64 { return s.L3.MissRate() }

// LLCMPKI returns L3 misses per thousand instructions.
func (s Stats) LLCMPKI() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.L3.Misses) / float64(s.Instructions) * 1000
}

// STLBMPKI returns second-level TLB misses per thousand instructions.
func (s Stats) STLBMPKI() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.STLB.Misses) / float64(s.Instructions) * 1000
}

// Core is the window-based out-of-order timing model bound to one memory
// system.
type Core struct {
	cfg Config
	cyc cpucycles
	sys mem.System
	eng *sim.Engine

	l1, l2, l3 *cache.Cache
	dtlb, stlb *cache.TLB

	rlb      *RLB
	preTrans PreTransPort

	// retireRing holds completion tokens of the last ROB instructions.
	retireRing []*token
	// dispatchF is the fractional dispatch clock in engine cycles.
	dispatchF float64
	// lastLoad is the most recent load's completion token (dep chains).
	lastLoad *token
	// outstanding counts memory misses in flight (MSHR limit).
	outstanding int

	nextID uint64
	stats  Stats
}

// token tracks one instruction's completion.
type token struct {
	done bool
	at   sim.Cycle
}

// PreTransPort abstracts the DIMM-side pre-translation table lookup for a
// physical address (implemented by vans.System when the optimization is on).
type PreTransPort interface {
	// Lookup returns the recorded pointee page frame for paddr.
	Lookup(paddr uint64) (pfn uint64, ok bool)
	// Update records paddr -> pfn.
	Update(paddr, pfn uint64)
	// ExtraLatency is the added DRAM cost of fetching the entry with data.
	ExtraLatency() sim.Cycle
}

// New builds a core over sys with cfg (zero value defaulted).
func New(cfg Config, sys mem.System) *Core {
	if cfg.WidthIssue == 0 {
		cfg = DefaultConfig()
	}
	c := &Core{
		cfg:  cfg,
		cyc:  cfg.cycles(),
		sys:  sys,
		eng:  sys.Engine(),
		l1:   cache.New(cfg.L1),
		l2:   cache.New(cfg.L2),
		l3:   cache.New(cfg.L3),
		dtlb: cache.NewTLB(cfg.DTLBEntries, cfg.DTLBWays, cfg.PageSize),
		stlb: cache.NewTLB(cfg.STLBEntries, cfg.STLBWays, cfg.PageSize),
	}
	c.retireRing = make([]*token, cfg.ROB)
	if cfg.RLBEntries > 0 {
		c.rlb = NewRLB(cfg.RLBEntries)
	}
	return c
}

// AttachPreTrans connects the DIMM-side pre-translation table (Pre-
// translation is active only when both the RLB and the port are present).
func (c *Core) AttachPreTrans(p PreTransPort) { c.preTrans = p }

// Stats returns a snapshot including cache/TLB counters.
func (c *Core) Stats() Stats {
	s := c.stats
	s.L1 = c.l1.Stats()
	s.L2 = c.l2.Stats()
	s.L3 = c.l3.Stats()
	s.DTLB = c.dtlb.Stats()
	s.STLB = c.stlb.Stats()
	return s
}

// resolve runs the engine until tok completes.
func (c *Core) resolve(tok *token) sim.Cycle {
	if !tok.done {
		c.eng.RunWhile(func() bool { return !tok.done })
		if !tok.done {
			panic("cpu: token never resolved (memory model deadlock)")
		}
	}
	return tok.at
}

// immediate returns a resolved token.
func immediate(at sim.Cycle) *token { return &token{done: true, at: at} }

// submitRetry submits r until accepted, advancing the engine under
// backpressure.
func (c *Core) submitRetry(r *mem.Request) {
	for !c.sys.Submit(r) {
		fired := c.eng.Fired()
		c.eng.RunWhile(func() bool { return c.eng.Fired() == fired })
		if c.eng.Pending() == 0 && !c.sys.Submit(r) {
			panic("cpu: memory system rejected request with no pending events")
		}
	}
}

// memRead issues a cache-line read at no earlier than `at`, returning a
// completion token. Counts against MSHRs.
func (c *Core) memRead(addr uint64, at sim.Cycle) *token {
	c.waitMSHR()
	if c.eng.Now() < at {
		c.eng.RunUntil(at)
	}
	tok := &token{}
	c.nextID++
	c.outstanding++
	c.stats.MemReads++
	r := &mem.Request{ID: c.nextID, Op: mem.OpRead, Addr: addr, Size: 64,
		OnDone: func(rq *mem.Request) {
			c.outstanding--
			tok.done = true
			tok.at = rq.Done
		}}
	c.submitRetry(r)
	return tok
}

// memWrite posts a cache-line write (write-back traffic or NT store).
func (c *Core) memWrite(addr uint64, op mem.Op, at sim.Cycle) *token {
	c.waitMSHR()
	if c.eng.Now() < at {
		c.eng.RunUntil(at)
	}
	tok := &token{}
	c.nextID++
	c.outstanding++
	c.stats.MemWrites++
	r := &mem.Request{ID: c.nextID, Op: op, Addr: addr, Size: 64,
		OnDone: func(rq *mem.Request) {
			c.outstanding--
			tok.done = true
			tok.at = rq.Done
		}}
	c.submitRetry(r)
	return tok
}

// waitMSHR blocks until a miss slot is free.
func (c *Core) waitMSHR() {
	for c.outstanding >= c.cfg.MSHRs {
		fired := c.eng.Fired()
		c.eng.RunWhile(func() bool {
			return c.eng.Fired() == fired && c.outstanding >= c.cfg.MSHRs
		})
	}
}

// translate performs the TLB lookup chain at time `at` and returns the
// post-translation time.
func (c *Core) translate(addr uint64, at sim.Cycle, class InstrClass) sim.Cycle {
	if c.dtlb.Lookup(addr) {
		return at
	}
	at += c.cyc.stlb
	if c.stlb.Lookup(addr) {
		c.dtlb.Insert(addr)
		return at
	}
	// Page walk: fixed-cost walk (page-table lines usually cache-resident).
	c.stats.Walks++
	c.stats.ClassTLBMisses[class]++
	at += c.cyc.walk
	c.stlb.Insert(addr)
	c.dtlb.Insert(addr)
	return at
}

// lookupHierarchy walks L1->L2->L3, filling on hit path, and returns either
// (latency, nil) for a hit or (latency-so-far, missToken) after issuing the
// memory read.
func (c *Core) loadPath(addr uint64, at sim.Cycle, class InstrClass) *token {
	line := addr &^ 63
	if c.l1.Access(line, false) {
		return immediate(at + c.cyc.l1)
	}
	at += c.cyc.l1
	if c.l2.Access(line, false) {
		c.fillL1(line, false)
		return immediate(at + c.cyc.l2)
	}
	at += c.cyc.l2
	if c.l3.Access(line, false) {
		c.fillL1(line, false)
		c.l2.Fill(line, false)
		return immediate(at + c.cyc.l3)
	}
	at += c.cyc.l3
	c.stats.ClassLLCMisses[class]++
	miss := c.memRead(line, at)
	// The line installs when data arrives; approximate by installing now
	// (timing of subsequent hits is unaffected at this model fidelity).
	c.fillHierarchy(line, false)
	return miss
}

// fillL1 installs a line into L1, pushing dirty victims down.
func (c *Core) fillL1(line uint64, dirty bool) {
	if v, ev := c.l1.Fill(line, dirty); ev && v.Dirty {
		if v2, ev2 := c.l2.Fill(v.Addr, true); ev2 && v2.Dirty {
			c.spillL3(v2.Addr)
		}
	}
}

// fillHierarchy installs a line into all levels (miss fill).
func (c *Core) fillHierarchy(line uint64, dirty bool) {
	c.fillL1(line, dirty)
	if v, ev := c.l2.Fill(line, false); ev && v.Dirty {
		c.spillL3(v.Addr)
	}
	if v, ev := c.l3.Fill(line, false); ev && v.Dirty {
		c.memWrite(v.Addr, mem.OpWrite, c.eng.Now())
	}
}

// spillL3 pushes a dirty L2 victim into L3, spilling to memory if L3
// displaces a dirty line.
func (c *Core) spillL3(line uint64) {
	if v, ev := c.l3.Fill(line, true); ev && v.Dirty {
		c.memWrite(v.Addr, mem.OpWrite, c.eng.Now())
	}
}

// storePath handles a cached store (write-allocate, RFO on miss). Stores
// complete into the store buffer immediately; misses generate traffic.
func (c *Core) storePath(addr uint64, at sim.Cycle) {
	line := addr &^ 63
	if c.l1.Access(line, true) {
		return
	}
	if c.l2.Access(line, true) {
		c.fillL1(line, true)
		return
	}
	if c.l3.Access(line, true) {
		c.fillL1(line, true)
		c.l2.Fill(line, false)
		return
	}
	// RFO: fetch ownership from memory; traffic matters, the store itself
	// retires from the store buffer.
	c.memRead(line, at)
	c.fillHierarchy(line, true)
}

// Run executes the workload to completion and returns the statistics.
func (c *Core) Run(w Workload) Stats {
	start := c.eng.Now()
	robIdx := 0
	c.dispatchF = float64(start)
	prevRetire := start
	var pending []pendingRetire
	for {
		in, ok := w.Next()
		if !ok {
			break
		}
		c.stats.Instructions++
		c.stats.ClassInstrs[in.Class]++

		// ROB window: dispatch cannot pass retirement of the instruction
		// ROB slots earlier.
		c.dispatchF += c.cyc.perInstr
		if old := c.retireRing[robIdx]; old != nil {
			if at := c.resolve(old); float64(at) > c.dispatchF {
				c.dispatchF = float64(at)
			}
		}
		dispatch := sim.Cycle(c.dispatchF)

		var done *token
		switch {
		case in.Fence:
			c.stats.Fences++
			tok := &token{}
			c.nextID++
			r := &mem.Request{ID: c.nextID, Op: mem.OpFence,
				OnDone: func(rq *mem.Request) {
					tok.done = true
					tok.at = rq.Done
				}}
			if c.eng.Now() < dispatch {
				c.eng.RunUntil(dispatch)
			}
			c.submitRetry(r)
			at := c.resolve(tok)
			// Fences serialize dispatch.
			if float64(at) > c.dispatchF {
				c.dispatchF = float64(at)
			}
			done = immediate(at)

		case in.IsMem && in.IsLoad:
			c.stats.Loads++
			issue := dispatch
			if in.DependsOnLoad && c.lastLoad != nil {
				if at := c.resolve(c.lastLoad); at > issue {
					issue = at
				}
			}
			issue = c.translate(in.Addr, issue, in.Class)
			tok := c.loadPath(in.Addr, issue, in.Class)
			if in.Mkpt {
				tok = c.mkptLoad(in, tok)
			}
			c.lastLoad = tok
			done = tok

		case in.IsMem && in.NT:
			c.stats.Stores++
			issue := dispatch
			if in.DependsOnLoad && c.lastLoad != nil {
				if at := c.resolve(c.lastLoad); at > issue {
					issue = at
				}
			}
			issue = c.translate(in.Addr, issue, in.Class)
			done = c.memWrite(in.Addr, mem.OpWriteNT, issue)

		case in.IsMem && in.Clwb:
			c.stats.Stores++
			issue := c.translate(in.Addr, dispatch, in.Class)
			line := in.Addr &^ 63
			// clwb leaves the line resident but clean; the write-back goes
			// to the memory system either way in this model.
			c.l1.Invalidate(line)
			done = c.memWrite(line, mem.OpClwb, issue)

		case in.IsMem:
			c.stats.Stores++
			issue := dispatch
			if in.DependsOnLoad && c.lastLoad != nil {
				if at := c.resolve(c.lastLoad); at > issue {
					issue = at
				}
			}
			issue = c.translate(in.Addr, issue, in.Class)
			c.storePath(in.Addr, issue)
			done = immediate(issue + c.cyc.l1)

		default:
			done = immediate(dispatch + sim.Cycle(c.cyc.coreCycle))
		}

		c.retireRing[robIdx] = done
		robIdx = (robIdx + 1) % len(c.retireRing)

		// In-order retirement attribution is deferred so outstanding loads
		// overlap (memory-level parallelism); tokens resolve lazily.
		pending = append(pending, pendingRetire{class: in.Class, tok: done})
		if len(pending) >= 4*len(c.retireRing) {
			prevRetire = c.drainRetire(pending, prevRetire)
			pending = pending[:0]
		}
	}
	prevRetire = c.drainRetire(pending, prevRetire)
	// Drain outstanding background traffic.
	for c.outstanding > 0 {
		fired := c.eng.Fired()
		c.eng.RunWhile(func() bool { return c.eng.Fired() == fired })
	}
	if prevRetire > c.eng.Now() {
		c.eng.RunUntil(prevRetire)
	}
	c.stats.Cycles = c.eng.Now() - start
	return c.Stats()
}

// pendingRetire defers in-order retirement accounting.
type pendingRetire struct {
	class InstrClass
	tok   *token
}

// drainRetire resolves queued retirements in order and attributes cycles.
func (c *Core) drainRetire(pending []pendingRetire, prevRetire sim.Cycle) sim.Cycle {
	for _, p := range pending {
		at := c.resolve(p.tok)
		if at < prevRetire {
			at = prevRetire
		}
		c.stats.ClassCycles[p.class] += at - prevRetire
		prevRetire = at
	}
	return prevRetire
}
