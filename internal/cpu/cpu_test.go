package cpu

import (
	"testing"

	"repro/internal/dram"
	"repro/internal/mem"
	"repro/internal/nvdimm"
	"repro/internal/sim"
	"repro/internal/vans"
)

// dramSystem returns a plain DDR4 system for CPU tests.
func dramSystem() mem.System {
	cfg := dram.DefaultConfig()
	cfg.RefreshEnabled = false
	return dram.NewController(sim.NewEngine(), cfg)
}

func vansSystem() mem.System {
	cfg := vans.DefaultConfig()
	cfg.NV.Media.Capacity = 64 << 20
	return vans.New(cfg)
}

// computeOnly generates n non-memory instructions.
func computeOnly(n int) *SliceWorkload {
	w := &SliceWorkload{Instrs: make([]Instr, n)}
	return w
}

// streamLoads generates loads over a footprint with given stride.
func streamLoads(n int, stride, footprint uint64, dep bool) *SliceWorkload {
	w := &SliceWorkload{}
	for i := 0; i < n; i++ {
		w.Instrs = append(w.Instrs, Instr{
			IsMem: true, IsLoad: true,
			Addr:          (uint64(i) * stride) % footprint,
			DependsOnLoad: dep,
			Class:         ClassRead,
		})
	}
	return w
}

func TestComputeIPCReachesWidth(t *testing.T) {
	core := New(DefaultConfig(), dramSystem())
	st := core.Run(computeOnly(10000))
	ipc := st.IPC(2.2)
	if ipc < 3.0 || ipc > 4.5 {
		t.Fatalf("compute-only IPC = %.2f, want ~4", ipc)
	}
	if st.Instructions != 10000 {
		t.Fatalf("Instructions = %d", st.Instructions)
	}
}

func TestCacheHitsKeepIPCHigh(t *testing.T) {
	core := New(DefaultConfig(), dramSystem())
	// 16KB footprint fits L1: after warmup everything hits.
	st := core.Run(streamLoads(20000, 64, 16<<10, false))
	if st.L1.MissRate() > 0.05 {
		t.Fatalf("L1 miss rate = %.3f, want ~0 for resident footprint", st.L1.MissRate())
	}
	if ipc := st.IPC(2.2); ipc < 1.0 {
		t.Fatalf("L1-resident IPC = %.2f, too low", ipc)
	}
}

func TestDependentMissesSlowerThanIndependent(t *testing.T) {
	// Pointer-chasing (dependent) misses serialize; independent misses
	// overlap via MSHRs.
	big := uint64(128 << 20)
	indep := New(DefaultConfig(), dramSystem()).Run(streamLoads(4000, 8192, big, false))
	dep := New(DefaultConfig(), dramSystem()).Run(streamLoads(4000, 8192, big, true))
	if dep.Cycles <= indep.Cycles*2 {
		t.Fatalf("dependent run (%d cyc) not >> independent (%d cyc)",
			dep.Cycles, indep.Cycles)
	}
}

func TestLLCMissesDriveMemoryTraffic(t *testing.T) {
	core := New(DefaultConfig(), dramSystem())
	st := core.Run(streamLoads(5000, 4096, 256<<20, false))
	if st.MemReads == 0 {
		t.Fatal("no memory reads for an uncacheable footprint")
	}
	if st.LLCMPKI() < 100 {
		t.Fatalf("LLC MPKI = %.1f, want high for streaming misses", st.LLCMPKI())
	}
}

func TestTLBMissesCounted(t *testing.T) {
	core := New(DefaultConfig(), dramSystem())
	// Stride of one page over a large footprint: every access a new page.
	st := core.Run(streamLoads(10000, 4096, 512<<20, false))
	if st.STLB.Misses == 0 || st.Walks == 0 {
		t.Fatalf("no STLB misses/walks: %+v", st.STLB)
	}
	core2 := New(DefaultConfig(), dramSystem())
	st2 := core2.Run(streamLoads(10000, 64, 64<<10, false))
	if st2.Walks > st.Walks/10 {
		t.Fatalf("small footprint walks (%d) not << large (%d)", st2.Walks, st.Walks)
	}
}

func TestStoresGenerateRFOTraffic(t *testing.T) {
	core := New(DefaultConfig(), dramSystem())
	w := &SliceWorkload{}
	for i := 0; i < 3000; i++ {
		w.Instrs = append(w.Instrs, Instr{
			IsMem: true, Addr: uint64(i) * 4096 % (256 << 20), Class: ClassWrite})
	}
	st := core.Run(w)
	if st.MemReads == 0 {
		t.Fatal("cached store misses generated no RFO reads")
	}
}

func TestNTStoresBypassCaches(t *testing.T) {
	core := New(DefaultConfig(), dramSystem())
	w := &SliceWorkload{}
	for i := 0; i < 1000; i++ {
		w.Instrs = append(w.Instrs, Instr{
			IsMem: true, NT: true, Addr: uint64(i) * 64, Class: ClassWrite})
	}
	st := core.Run(w)
	if st.MemWrites < 1000 {
		t.Fatalf("NT stores reached memory %d times, want 1000", st.MemWrites)
	}
	if st.L1.Misses+st.L1.Hits != 0 {
		t.Fatal("NT stores touched the cache hierarchy")
	}
}

func TestFenceSerializes(t *testing.T) {
	sys := vansSystem()
	core := New(DefaultConfig(), sys)
	w := &SliceWorkload{}
	for i := 0; i < 50; i++ {
		w.Instrs = append(w.Instrs,
			Instr{IsMem: true, NT: true, Addr: uint64(i) * 64, Class: ClassWrite},
			Instr{Fence: true})
	}
	st := core.Run(w)
	if st.Fences != 50 {
		t.Fatalf("Fences = %d", st.Fences)
	}
	if !sys.Drained() {
		t.Fatal("system not drained after fenced run")
	}
	// Fenced writes are far slower than unfenced.
	core2 := New(DefaultConfig(), vansSystem())
	w2 := &SliceWorkload{}
	for i := 0; i < 50; i++ {
		w2.Instrs = append(w2.Instrs,
			Instr{IsMem: true, NT: true, Addr: uint64(i) * 64, Class: ClassWrite},
			Instr{})
	}
	st2 := core2.Run(w2)
	if st.Cycles <= st2.Cycles*2 {
		t.Fatalf("fenced run (%d) not >> unfenced (%d)", st.Cycles, st2.Cycles)
	}
}

func TestClassAttribution(t *testing.T) {
	core := New(DefaultConfig(), dramSystem())
	w := &SliceWorkload{}
	// Expensive dependent reads vs cheap compute.
	for i := 0; i < 500; i++ {
		w.Instrs = append(w.Instrs, Instr{
			IsMem: true, IsLoad: true, DependsOnLoad: true,
			Addr:  uint64(i) * 8192 % (128 << 20),
			Class: ClassRead,
		})
		for j := 0; j < 3; j++ {
			w.Instrs = append(w.Instrs, Instr{Class: ClassOther})
		}
	}
	st := core.Run(w)
	cpiRead := float64(st.ClassCycles[ClassRead]) / float64(st.ClassInstrs[ClassRead])
	cpiOther := float64(st.ClassCycles[ClassOther]) / float64(st.ClassInstrs[ClassOther])
	if cpiRead < 4*cpiOther {
		t.Fatalf("read CPI (%.1f) not >> other CPI (%.1f)", cpiRead, cpiOther)
	}
}

// chaseWorkload builds a pointer-chasing traversal with mkpt marks.
func chaseWorkload(nodes, hops int, mkpt bool, seed uint64) *SliceWorkload {
	perm := sim.NewRNG(seed).PermCycle(nodes)
	w := &SliceWorkload{}
	at := 0
	for i := 0; i < hops; i++ {
		next := perm[at]
		w.Instrs = append(w.Instrs, Instr{
			IsMem: true, IsLoad: true, DependsOnLoad: true,
			Addr:     uint64(at) * 4096, // one node per page: TLB-hostile
			Mkpt:     mkpt,
			NextAddr: uint64(next) * 4096,
			Class:    ClassRead,
		})
		at = next
	}
	return w
}

func TestPreTranslationReducesTLBMisses(t *testing.T) {
	run := func(enable bool) Stats {
		sys := vans.New(func() vans.Config {
			c := vans.DefaultConfig()
			c.NV.Media.Capacity = 64 << 20
			return c
		}())
		cfg := DefaultConfig()
		// Small STLB so the chase exceeds TLB reach.
		cfg.STLBEntries = 64
		cfg.DTLBEntries = 16
		if enable {
			cfg.RLBEntries = 128
		}
		core := New(cfg, sys)
		if enable {
			core.AttachPreTrans(sys.EnablePreTranslation(nvdimm.PreTransConfig{}))
		}
		// Two traversals of the same ring: the first trains the tables.
		w := chaseWorkload(512, 2048, enable, 7)
		return core.Run(w)
	}
	base := run(false)
	opt := run(true)
	if opt.STLB.Misses >= base.STLB.Misses {
		t.Fatalf("pre-translation STLB misses %d not below baseline %d",
			opt.STLB.Misses, base.STLB.Misses)
	}
	if opt.PreTransHits == 0 {
		t.Fatal("no pre-translation hits recorded")
	}
	if opt.Cycles >= base.Cycles {
		t.Fatalf("pre-translation run (%d cyc) not faster than baseline (%d cyc)",
			opt.Cycles, base.Cycles)
	}
}

func TestRLB(t *testing.T) {
	r := NewRLB(2)
	if _, ok := r.Lookup(0); ok {
		t.Fatal("cold RLB hit")
	}
	r.Insert(0, 10)
	r.Insert(64, 11)
	if pfn, ok := r.Lookup(0); !ok || pfn != 10 {
		t.Fatalf("Lookup = %d,%v", pfn, ok)
	}
	r.Insert(128, 12) // evict FIFO (0)
	if _, ok := r.Lookup(0); ok {
		t.Fatal("FIFO eviction failed")
	}
	if _, ok := r.Lookup(64); !ok {
		t.Fatal("entry 64 lost")
	}
	r.Insert(64, 99) // overwrite in place
	if pfn, _ := r.Lookup(64); pfn != 99 {
		t.Fatal("in-place update failed")
	}
	if r.Lookups() == 0 || r.Hits() == 0 {
		t.Fatal("counters not populated")
	}
}

func TestSliceWorkloadReset(t *testing.T) {
	w := &SliceWorkload{Instrs: []Instr{{}, {}}}
	w.Next()
	w.Next()
	if _, ok := w.Next(); ok {
		t.Fatal("exhausted workload returned an instruction")
	}
	w.Reset()
	if _, ok := w.Next(); !ok {
		t.Fatal("reset failed")
	}
}
