package cpu

import (
	"repro/internal/sim"
)

// RLB is the Read Lookaside Buffer of the Pre-translation optimization
// (Section V-B): a small SRAM cache of pre-translation table entries, each
// mapping a physical address holding a pointer to the page frame number that
// pointer references.
type RLB struct {
	entries  map[uint64]uint64 // paddr (line-aligned) -> pfn
	capacity int
	order    []uint64
	hits     uint64
	lookups  uint64
}

// NewRLB returns an RLB with the given entry count.
func NewRLB(entries int) *RLB {
	if entries < 1 {
		entries = 1
	}
	return &RLB{entries: make(map[uint64]uint64, entries), capacity: entries}
}

// key normalizes the pointer location address.
func (r *RLB) key(paddr uint64) uint64 { return paddr &^ 63 }

// Lookup probes for the pointee pfn recorded for paddr.
func (r *RLB) Lookup(paddr uint64) (uint64, bool) {
	r.lookups++
	pfn, ok := r.entries[r.key(paddr)]
	if ok {
		r.hits++
	}
	return pfn, ok
}

// Insert records paddr -> pfn, evicting FIFO at capacity.
func (r *RLB) Insert(paddr, pfn uint64) {
	k := r.key(paddr)
	if _, ok := r.entries[k]; ok {
		r.entries[k] = pfn
		return
	}
	if len(r.entries) >= r.capacity && len(r.order) > 0 {
		delete(r.entries, r.order[0])
		r.order = r.order[1:]
	}
	r.entries[k] = pfn
	r.order = append(r.order, k)
}

// Hits and Lookups expose counters.
func (r *RLB) Hits() uint64    { return r.hits }
func (r *RLB) Lookups() uint64 { return r.lookups }

// mkptLoad implements the mkpt-marked load semantics (Figure 13b/13c):
//
//  1. The RLB (or, one extra DRAM access later, the DIMM's pre-translation
//     table) is probed with the load's physical address.
//  2. On a hit whose pfn matches the pointee, the TLB entry for the next
//     access arrives with the data: the CPU's TLBs are pre-filled, so the
//     dependent load skips its TLB miss. Check-before-read validates the
//     entry (stale entries are discarded and corrected).
//  3. On a miss or stale entry, mkpt updates the table after the load.
//
// It returns the (possibly extended) completion token of the load.
func (c *Core) mkptLoad(in Instr, loadTok *token) *token {
	if c.rlb == nil || c.preTrans == nil {
		return loadTok
	}
	c.stats.MkptMarked++
	actualPfn := in.NextAddr / c.cfg.PageSize

	if pfn, ok := c.rlb.Lookup(in.Addr); ok {
		c.stats.RLBHits++
		if pfn == actualPfn {
			c.prefillTLB(in.NextAddr)
			c.stats.PreTransHits++
		} else {
			c.stats.PreTransStale++
			c.rlb.Insert(in.Addr, actualPfn)
			c.preTrans.Update(in.Addr, actualPfn)
		}
		return loadTok
	}

	// RLB miss: the DIMM fetches the pre-translation entry alongside the
	// data (one extra on-DIMM DRAM access on the load's critical path).
	extra := c.preTrans.ExtraLatency()
	out := &token{}
	resolveAfter(c, loadTok, extra, out)
	if pfn, ok := c.preTrans.Lookup(in.Addr); ok {
		c.rlb.Insert(in.Addr, pfn)
		if pfn == actualPfn {
			c.prefillTLB(in.NextAddr)
			c.stats.PreTransHits++
		} else {
			c.stats.PreTransStale++
			c.preTrans.Update(in.Addr, actualPfn)
			c.rlb.Insert(in.Addr, actualPfn)
		}
	} else {
		// Table miss: mkpt updates the entry for future traversals.
		c.preTrans.Update(in.Addr, actualPfn)
		c.rlb.Insert(in.Addr, actualPfn)
	}
	return out
}

// prefillTLB installs the pointee translation as if delivered with the data.
func (c *Core) prefillTLB(addr uint64) {
	c.stlb.Insert(addr)
	c.dtlb.Insert(addr)
}

// resolveAfter completes out `extra` cycles after base resolves, without
// blocking the issue path.
func resolveAfter(c *Core, base *token, extra sim.Cycle, out *token) {
	if base.done {
		at := base.at + extra
		if at <= c.eng.Now() {
			out.done = true
			out.at = at
			return
		}
		c.eng.Schedule(at, func() {
			out.done = true
			out.at = c.eng.Now()
		})
		return
	}
	// Poll cheaply: chain a check after the engine advances.
	c.eng.After(1, func() { resolveAfter(c, base, extra, out) })
}
