package dram

import (
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/sim"
)

// bankState tracks one bank's open row and per-command earliest-issue times.
type bankState struct {
	open    bool
	openRow uint64
	// Earliest cycles each command class may next issue to this bank.
	nextACT sim.Cycle
	nextPRE sim.Cycle
	nextRW  sim.Cycle
	// lastCol tracks the bank group for tCCD decisions (kept in rankState).
}

// rankState tracks rank-wide constraints: tRRD/tFAW activation pacing,
// write-to-read turnaround and refresh.
type rankState struct {
	lastACTs    []sim.Cycle // up to 4 most recent ACT times (tFAW window)
	nextACT     sim.Cycle   // tRRD pacing
	nextRD      sim.Cycle   // tWTR turnaround
	nextRefresh sim.Cycle
}

// pending is a queued request with its decoded coordinates. bursts is the
// number of back-to-back column bursts the request occupies (1 for a 64B
// access; an Optane AIT 256B sector access uses 4).
type pending struct {
	req    *mem.Request
	coord  Coord
	write  bool
	bursts int
}

// Stats counts controller activity.
type Stats struct {
	Reads      uint64
	Writes     uint64
	RowHits    uint64
	RowMisses  uint64
	RowConf    uint64 // row conflicts (had to close another row)
	Refreshes  uint64
	DataCycles sim.Cycle // cycles the data bus was occupied
}

// Controller is one DRAM channel: a request queue, bank/rank state, and a
// command scheduler. It implements mem.System for standalone use and exposes
// Schedule for composition inside larger models (iMC, NVDIMM).
type Controller struct {
	eng   *sim.Engine
	cfg   Config
	queue *sim.Queue[pending]

	banks []bankState
	ranks []rankState

	// busFree is the earliest cycle the shared data bus is free.
	busFree sim.Cycle
	// lastBurstBG/lastBurstAt implement tCCD_L vs tCCD_S spacing.
	lastBurstBG int
	lastBurstAt sim.Cycle
	haveBurst   bool

	// cmds is the recorded command trace when cfg.TapCommands is set.
	cmds []Cmd

	inflight int
	busy     bool

	stats Stats

	o    *obs.Obs
	comp string
	// histAccess records per-access data-phase duration in ns (nil without
	// an attached Obs).
	histAccess *obs.Histogram
}

// NewController returns a controller on eng with cfg (zero fields defaulted).
func NewController(eng *sim.Engine, cfg Config) *Controller {
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 32
	}
	if cfg.AccessBytes == 0 {
		cfg.AccessBytes = 64
	}
	if cfg.Geometry.Ranks == 0 {
		cfg.Geometry = DefaultGeometry()
	}
	if cfg.Timing.TCL == 0 {
		cfg.Timing = DDR42666()
	}
	c := &Controller{
		eng:   eng,
		cfg:   cfg,
		queue: sim.NewQueue[pending](cfg.QueueDepth),
		banks: make([]bankState, cfg.Geometry.totalBanks()),
		ranks: make([]rankState, cfg.Geometry.Ranks),
	}
	for i := range c.ranks {
		c.ranks[i].nextRefresh = cfg.Timing.TREFI
	}
	if cfg.Obs != nil {
		c.o = cfg.Obs
		c.comp = cfg.ObsName
		if c.comp == "" {
			c.comp = "dram"
		}
		c.o.RegisterPtr(c.comp, "reads", &c.stats.Reads)
		c.o.RegisterPtr(c.comp, "writes", &c.stats.Writes)
		c.o.RegisterPtr(c.comp, "row_hits", &c.stats.RowHits)
		c.o.RegisterPtr(c.comp, "row_misses", &c.stats.RowMisses)
		c.o.RegisterPtr(c.comp, "row_conflicts", &c.stats.RowConf)
		c.o.RegisterPtr(c.comp, "refreshes", &c.stats.Refreshes)
		c.o.RegisterFunc(c.comp, "data_cycles", func() uint64 { return uint64(c.stats.DataCycles) })
		c.histAccess = c.o.Histogram(c.comp, "access_ns", nil)
	}
	return c
}

// Engine implements mem.System.
func (c *Controller) Engine() *sim.Engine { return c.eng }

// CyclesPerNano implements mem.System.
func (c *Controller) CyclesPerNano() float64 { return CyclesPerNano }

// Drained implements mem.System.
func (c *Controller) Drained() bool { return c.inflight == 0 && c.queue.Empty() }

// Stats returns a copy of the activity counters.
func (c *Controller) Stats() Stats { return c.stats }

// Commands returns the recorded command trace (TapCommands must be set).
// The slice is owned by the controller; callers must not mutate it.
func (c *Controller) Commands() []Cmd { return c.cmds }

// ResetCommands discards the recorded command trace.
func (c *Controller) ResetCommands() { c.cmds = nil }

// Submit implements mem.System: enqueue a request, false on backpressure.
// Requests must fit within one burst (split larger requests with
// mem.LineSpan before submitting).
func (c *Controller) Submit(r *mem.Request) bool {
	if r.Op == mem.OpFence {
		// A bare DRAM channel has no write-pending buffering beyond the
		// queue; a fence completes when the channel drains.
		c.completeWhenDrained(r)
		return true
	}
	if c.queue.Full() {
		return false
	}
	r.Issued = c.eng.Now()
	c.queue.Push(pending{
		req:    r,
		coord:  c.cfg.Geometry.MapAddr(r.Addr % c.cfg.Geometry.Capacity()),
		write:  r.Op.IsWrite() || r.Op == mem.OpClwb,
		bursts: 1,
	})
	c.inflight++
	c.kick()
	return true
}

// Schedule is the composition entry point: time one single-burst access at
// addr and call done when its data completes. It bypasses mem.Request
// bookkeeping.
func (c *Controller) Schedule(addr uint64, write bool, done func()) bool {
	return c.ScheduleN(addr, write, 1, done)
}

// ScheduleN times one access of n back-to-back bursts (n*64 contiguous
// bytes within one row) as a single queue entry.
func (c *Controller) ScheduleN(addr uint64, write bool, n int, done func()) bool {
	if c.queue.Full() {
		return false
	}
	if n < 1 {
		n = 1
	}
	r := &mem.Request{Addr: addr, Size: uint32(n * 64), Issued: c.eng.Now(),
		OnDone: func(*mem.Request) {
			if done != nil {
				done()
			}
		}}
	if write {
		r.Op = mem.OpWrite
	}
	c.queue.Push(pending{req: r, coord: c.cfg.Geometry.MapAddr(addr % c.cfg.Geometry.Capacity()),
		write: write, bursts: n})
	c.inflight++
	c.kick()
	return true
}

func (c *Controller) completeWhenDrained(r *mem.Request) {
	r.Issued = c.eng.Now()
	if c.Drained() {
		c.eng.After(1, func() { r.Complete(c.eng.Now()) })
		return
	}
	// Poll at the bus-free horizon; cheap and always makes progress because
	// pending work strictly advances busFree.
	c.eng.After(c.cfg.Timing.TBurst, func() { c.completeWhenDrained(r) })
}

// ctrlServiceNext adapts serviceNext to the engine's allocation-free
// recurring callback form: the scheduler loop re-arms itself once per
// request, so method-value closures here would allocate per access.
func ctrlServiceNext(a any) { a.(*Controller).serviceNext() }

// kick schedules the scheduler loop if it is not already running.
func (c *Controller) kick() {
	if c.busy {
		return
	}
	c.busy = true
	c.eng.AfterFn(0, ctrlServiceNext, c)
}

// pickNext selects the next queued request index per policy.
func (c *Controller) pickNext() int {
	if c.cfg.Policy == FCFS || c.queue.Len() == 1 {
		return 0
	}
	// FR-FCFS: oldest row hit first, else oldest.
	hit := -1
	c.queue.Scan(func(i int, p pending) bool {
		b := c.banks[c.cfg.Geometry.bankIndex(p.coord)]
		if b.open && b.openRow == p.coord.Row {
			hit = i
			return false
		}
		return true
	})
	if hit >= 0 {
		return hit
	}
	return 0
}

// serviceNext issues the full command sequence for one request, reserves the
// involved resources, and schedules its completion. It then re-arms itself
// at the cycle the command bus frees up, overlapping bank timing of
// subsequent requests.
func (c *Controller) serviceNext() {
	if c.queue.Empty() {
		c.busy = false
		return
	}
	p := c.queue.RemoveAt(c.pickNext())
	now := c.eng.Now()
	t := &c.cfg.Timing
	g := &c.cfg.Geometry
	bi := g.bankIndex(p.coord)
	b := &c.banks[bi]
	rk := &c.ranks[p.coord.Rank]

	// Refresh: if the refresh deadline passed, precharge all open banks of
	// the rank, issue REF, and pay tRFC before further activates.
	if c.cfg.RefreshEnabled {
		for now >= rk.nextRefresh {
			refAt := rk.nextRefresh
			lo := p.coord.Rank * g.BankGroups * g.Banks
			hi := lo + g.BankGroups*g.Banks
			for i := lo; i < hi; i++ {
				bb := &c.banks[i]
				if !bb.open {
					continue
				}
				preAt := maxCycle(refAt, bb.nextPRE)
				bg := (i - lo) / g.Banks
				bk := (i - lo) % g.Banks
				c.emit(Cmd{At: preAt, Kind: CmdPRE,
					Coord: Coord{Rank: p.coord.Rank, BankGroup: bg, Bank: bk}})
				bb.open = false
				bb.nextACT = maxCycle(bb.nextACT, preAt+t.TRP)
				if refAt < preAt+t.TRP {
					refAt = preAt + t.TRP
				}
			}
			c.emit(Cmd{At: refAt, Kind: CmdREF, Coord: Coord{Rank: p.coord.Rank}})
			c.stats.Refreshes++
			for i := lo; i < hi; i++ {
				bb := &c.banks[i]
				if bb.nextACT < refAt+t.TRFC {
					bb.nextACT = refAt + t.TRFC
				}
			}
			rk.nextRefresh += t.TREFI
		}
	}

	cursor := now

	// Row conflict: precharge the open row first.
	if b.open && b.openRow != p.coord.Row {
		preAt := maxCycle(cursor, b.nextPRE)
		c.emit(Cmd{At: preAt, Kind: CmdPRE, Coord: p.coord})
		b.open = false
		b.nextACT = maxCycle(b.nextACT, preAt+t.TRP)
		cursor = preAt
		c.stats.RowConf++
	}

	// Activate if closed.
	if !b.open {
		actAt := maxCycle(cursor, b.nextACT)
		actAt = maxCycle(actAt, rk.nextACT)
		// tFAW: at most 4 ACTs in any TFAW window per rank.
		if len(rk.lastACTs) == 4 {
			if w := rk.lastACTs[0] + t.TFAW; actAt < w {
				actAt = w
			}
		}
		c.emit(Cmd{At: actAt, Kind: CmdACT, Coord: p.coord})
		rk.nextACT = actAt + t.TRRD
		rk.lastACTs = append(rk.lastACTs, actAt)
		if len(rk.lastACTs) > 4 {
			rk.lastACTs = rk.lastACTs[1:]
		}
		b.open = true
		b.openRow = p.coord.Row
		b.nextRW = maxCycle(b.nextRW, actAt+t.TRCD)
		// tRAS: earliest PRE after this ACT.
		b.nextPRE = maxCycle(b.nextPRE, actAt+t.TRAS)
		cursor = actAt
		c.stats.RowMisses++
	} else {
		c.stats.RowHits++
	}

	// Column command: respect bank readiness, bus occupancy, and burst
	// spacing (tCCD_L within a bank group, tCCD_S across).
	rwAt := maxCycle(cursor, b.nextRW)
	// Data bus: this access's first data beat must not start before the bus
	// frees from the previous burst.
	dataLat := t.TCL
	if p.write {
		dataLat = t.TWL
	}
	if c.busFree > dataLat {
		rwAt = maxCycle(rwAt, c.busFree-dataLat)
	}
	if c.haveBurst {
		gap := t.TCCDS
		if p.coord.BankGroup == c.lastBurstBG {
			gap = t.TCCD
		}
		rwAt = maxCycle(rwAt, c.lastBurstAt+gap)
	}
	if !p.write {
		rwAt = maxCycle(rwAt, rk.nextRD)
	}

	bursts := sim.Cycle(1)
	if p.bursts > 1 {
		bursts = sim.Cycle(p.bursts)
	}
	var dataStart, dataEnd sim.Cycle
	if p.write {
		c.emit(Cmd{At: rwAt, Kind: CmdWR, Coord: p.coord})
		dataStart = rwAt + t.TWL
		dataEnd = dataStart + bursts*t.TBurst
		// Write recovery gates the next PRE; tWTR gates the next read.
		b.nextPRE = maxCycle(b.nextPRE, dataEnd+t.TWR)
		rk.nextRD = maxCycle(rk.nextRD, dataEnd+t.TWTR)
		c.stats.Writes++
	} else {
		c.emit(Cmd{At: rwAt, Kind: CmdRD, Coord: p.coord})
		dataStart = rwAt + t.TCL
		dataEnd = dataStart + bursts*t.TBurst
		b.nextPRE = maxCycle(b.nextPRE, rwAt+t.TRTP)
		c.stats.Reads++
	}
	c.haveBurst = true
	c.lastBurstBG = p.coord.BankGroup
	// Multi-burst requests hold the column pipeline until their last burst.
	c.lastBurstAt = rwAt + (bursts-1)*t.TBurst
	c.busFree = maxCycle(c.busFree, dataEnd)
	c.stats.DataCycles += bursts * t.TBurst

	// Closed-page policy: precharge as soon as legal after the access.
	if c.cfg.ClosedPage {
		preAt := b.nextPRE
		c.emit(Cmd{At: preAt, Kind: CmdPRE, Coord: p.coord})
		b.open = false
		b.nextACT = maxCycle(b.nextACT, preAt+t.TRP)
	}

	if c.histAccess != nil {
		c.histAccess.Observe(uint64(float64(dataEnd-rwAt) / CyclesPerNano))
	}
	if c.o.Active() {
		c.o.Emit(obs.Event{Now: rwAt, Stage: obs.StageDRAM, Pos: obs.PosIssue,
			Write: p.write, Comp: c.comp, Addr: p.req.Addr, Arg: uint64(dataEnd - rwAt)})
	}

	req := p.req
	c.eng.Schedule(dataEnd, func() {
		c.inflight--
		req.Complete(c.eng.Now())
	})

	// Next request may begin scheduling once this one's column command has
	// issued — that is where command-bus serialization bites.
	next := maxCycle(rwAt, now+1)
	if c.queue.Empty() {
		c.busy = false
		return
	}
	c.eng.ScheduleFn(next, ctrlServiceNext, c)
}

func (c *Controller) emit(cmd Cmd) {
	if c.cfg.TapCommands {
		c.cmds = append(c.cmds, cmd)
	}
}

func maxCycle(a, b sim.Cycle) sim.Cycle {
	if a > b {
		return a
	}
	return b
}
