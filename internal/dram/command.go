package dram

import (
	"fmt"

	"repro/internal/sim"
)

// CmdKind is a DDR4 command mnemonic.
type CmdKind uint8

const (
	// CmdACT activates (opens) a row in a bank.
	CmdACT CmdKind = iota
	// CmdPRE precharges (closes) the open row of a bank.
	CmdPRE
	// CmdRD reads one burst from the open row.
	CmdRD
	// CmdWR writes one burst into the open row.
	CmdWR
	// CmdREF refreshes a rank (all banks must be precharged).
	CmdREF
)

// String returns the DDR4 mnemonic.
func (k CmdKind) String() string {
	switch k {
	case CmdACT:
		return "ACT"
	case CmdPRE:
		return "PRE"
	case CmdRD:
		return "RD"
	case CmdWR:
		return "WR"
	case CmdREF:
		return "REF"
	default:
		return fmt.Sprintf("CMD(%d)", uint8(k))
	}
}

// Cmd is one command as it appears on the command bus, with full addressing.
// A sequence of Cmd values is exactly what the legality Checker consumes.
type Cmd struct {
	At   sim.Cycle
	Kind CmdKind
	Coord
}

// String renders the command for traces and error messages.
func (c Cmd) String() string {
	switch c.Kind {
	case CmdREF:
		return fmt.Sprintf("%d REF r%d", c.At, c.Rank)
	case CmdACT:
		return fmt.Sprintf("%d ACT r%d bg%d b%d row=%d", c.At, c.Rank, c.BankGroup, c.Bank, c.Row)
	case CmdPRE:
		return fmt.Sprintf("%d PRE r%d bg%d b%d", c.At, c.Rank, c.BankGroup, c.Bank)
	default:
		return fmt.Sprintf("%d %s r%d bg%d b%d row=%d col=%d", c.At, c.Kind, c.Rank, c.BankGroup, c.Bank, c.Row, c.Col)
	}
}
