package dram

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func TestMultiChannelRouteBijection(t *testing.T) {
	m := NewMultiChannel(DefaultMultiChannelConfig())
	f := func(addrRaw uint64) bool {
		addr := addrRaw % (1 << 34)
		ch, local := m.Route(addr)
		if ch < 0 || ch >= 4 {
			return false
		}
		return m.Unroute(ch, local) == addr
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestMultiChannelLineInterleaving(t *testing.T) {
	m := NewMultiChannel(DefaultMultiChannelConfig())
	seen := map[int]bool{}
	for i := 0; i < 4; i++ {
		ch, _ := m.Route(uint64(i) * 64)
		seen[ch] = true
	}
	if len(seen) != 4 {
		t.Fatalf("4 consecutive lines hit %d channels, want 4", len(seen))
	}
}

func TestMultiChannelBandwidthScales(t *testing.T) {
	bw := func(channels int) float64 {
		cfg := DefaultMultiChannelConfig()
		cfg.Channels = channels
		cfg.Channel.RefreshEnabled = false
		m := NewMultiChannel(cfg)
		d := mem.NewDriver(m)
		n := 4096
		accs := make([]mem.Access, n)
		for i := range accs {
			accs[i] = mem.Access{Op: mem.OpRead, Addr: uint64(i) * 64, Size: 64}
		}
		elapsed := d.RunWindow(accs, 32)
		return mem.BandwidthGBs(m, uint64(n)*64, elapsed)
	}
	one := bw(1)
	four := bw(4)
	if four < 2*one {
		t.Fatalf("4-channel bandwidth (%.2f) not >= 2x 1-channel (%.2f)", four, one)
	}
}

func TestMultiChannelWritesAndFence(t *testing.T) {
	m := NewMultiChannel(DefaultMultiChannelConfig())
	d := mem.NewDriver(m)
	accs := make([]mem.Access, 128)
	for i := range accs {
		accs[i] = mem.Access{Op: mem.OpWrite, Addr: uint64(i) * 64, Size: 64}
	}
	d.RunWindow(accs, 16)
	d.Fence()
	if !m.Drained() {
		t.Fatal("not drained after fence")
	}
	var writes uint64
	for _, ch := range m.Channels() {
		writes += ch.Stats().Writes
	}
	if writes != 128 {
		t.Fatalf("channel writes = %d, want 128", writes)
	}
}

func TestMultiChannelSingleChannelDegenerate(t *testing.T) {
	cfg := DefaultMultiChannelConfig()
	cfg.Channels = 1
	m := NewMultiChannel(cfg)
	if ch, local := m.Route(12345); ch != 0 || local != 12345 {
		t.Fatalf("single-channel route = %d,%d", ch, local)
	}
}

func TestMultiChannelWriteBackpressure(t *testing.T) {
	cfg := DefaultMultiChannelConfig()
	cfg.WriteQueue = 4
	m := NewMultiChannel(cfg)
	accepted := 0
	for i := 0; i < 64; i++ {
		if m.Submit(&mem.Request{Op: mem.OpWrite, Addr: uint64(i) * 8192 * 16, Size: 64}) {
			accepted++
		} else {
			break
		}
	}
	if accepted >= 64 {
		t.Fatal("write queue never exerted backpressure")
	}
	m.Engine().Run()
}
