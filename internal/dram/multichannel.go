package dram

import (
	"repro/internal/mem"
	"repro/internal/sim"
)

// MultiChannel is a DRAM main-memory system of N independent channels with
// line-granular channel interleaving — the DDR4 4-channel configuration of
// Table V. It implements mem.System.
type MultiChannel struct {
	eng      *sim.Engine
	channels []*Controller
	ilv      uint64
	wq       int
	wqMax    int
	inflight int
}

// MultiChannelConfig configures the system.
type MultiChannelConfig struct {
	// Channels is the channel count (Table V: 4).
	Channels int
	// Channel configures each channel identically.
	Channel Config
	// InterleaveBytes is the consecutive span per channel (default: one
	// 64B line, the fine-grained interleaving of server iMCs).
	InterleaveBytes uint64
	// WriteQueue bounds posted writes per system.
	WriteQueue int
}

// DefaultMultiChannelConfig returns the Table V DRAM main memory.
func DefaultMultiChannelConfig() MultiChannelConfig {
	return MultiChannelConfig{
		Channels:        4,
		Channel:         DefaultConfig(),
		InterleaveBytes: 64,
		WriteQueue:      32,
	}
}

// NewMultiChannel builds the system on a fresh engine.
func NewMultiChannel(cfg MultiChannelConfig) *MultiChannel {
	if cfg.Channels < 1 {
		cfg.Channels = 1
	}
	if cfg.InterleaveBytes == 0 {
		cfg.InterleaveBytes = 64
	}
	if cfg.WriteQueue == 0 {
		cfg.WriteQueue = 32
	}
	eng := sim.NewEngine()
	m := &MultiChannel{eng: eng, ilv: cfg.InterleaveBytes, wqMax: cfg.WriteQueue}
	for i := 0; i < cfg.Channels; i++ {
		m.channels = append(m.channels, NewController(eng, cfg.Channel))
	}
	return m
}

// Engine implements mem.System.
func (m *MultiChannel) Engine() *sim.Engine { return m.eng }

// CyclesPerNano implements mem.System.
func (m *MultiChannel) CyclesPerNano() float64 { return CyclesPerNano }

// Drained implements mem.System.
func (m *MultiChannel) Drained() bool {
	if m.inflight > 0 || m.wq > 0 {
		return false
	}
	for _, ch := range m.channels {
		if !ch.Drained() {
			return false
		}
	}
	return true
}

// Channels exposes the per-channel controllers (stats, command traces).
func (m *MultiChannel) Channels() []*Controller { return m.channels }

// Route maps an address to (channel, local address).
func (m *MultiChannel) Route(addr uint64) (int, uint64) {
	n := uint64(len(m.channels))
	if n == 1 {
		return 0, addr
	}
	span := addr / m.ilv
	return int(span % n), (span/n)*m.ilv + addr%m.ilv
}

// Unroute inverts Route (property tests).
func (m *MultiChannel) Unroute(ch int, local uint64) uint64 {
	n := uint64(len(m.channels))
	if n == 1 {
		return local
	}
	span := local / m.ilv
	return (span*n+uint64(ch))*m.ilv + local%m.ilv
}

// Submit implements mem.System: reads route to their channel, writes are
// posted through a bounded write queue, fences drain everything.
func (m *MultiChannel) Submit(r *mem.Request) bool {
	now := m.eng.Now()
	switch r.Op {
	case mem.OpRead:
		ci, local := m.Route(r.Addr)
		inner := &mem.Request{Op: mem.OpRead, Addr: local, Size: 64,
			OnDone: func(rq *mem.Request) {
				m.inflight--
				r.Complete(m.eng.Now())
			}}
		if !m.channels[ci].Submit(inner) {
			return false
		}
		m.inflight++
		r.Issued = now
		return true
	case mem.OpWrite, mem.OpWriteNT, mem.OpClwb:
		if m.wq >= m.wqMax {
			return false
		}
		m.wq++
		r.Issued = now
		m.eng.After(NsToCycles(20), func() { r.Complete(m.eng.Now()) })
		ci, local := m.Route(r.Addr)
		w := &mem.Request{Op: mem.OpWrite, Addr: local, Size: 64,
			OnDone: func(*mem.Request) { m.wq-- }}
		var push func()
		push = func() {
			if !m.channels[ci].Submit(w) {
				m.eng.After(16, push)
			}
		}
		push()
		return true
	case mem.OpFence:
		r.Issued = now
		var poll func()
		poll = func() {
			if m.Drained() {
				r.Complete(m.eng.Now())
				return
			}
			m.eng.After(16, poll)
		}
		m.eng.After(1, poll)
		return true
	default:
		return false
	}
}
