package dram

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/sim"
)

func newTestController(cfg Config) *Controller {
	return NewController(sim.NewEngine(), cfg)
}

func TestMapAddrUnmapRoundTrip(t *testing.T) {
	g := DefaultGeometry()
	f := func(addrRaw uint64) bool {
		addr := addrRaw % g.Capacity()
		c := g.MapAddr(addr)
		return g.UnmapAddr(c) == addr
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestMapAddrInRange(t *testing.T) {
	g := DefaultGeometry()
	f := func(addrRaw uint64) bool {
		c := g.MapAddr(addrRaw % g.Capacity())
		return c.Rank >= 0 && c.Rank < g.Ranks &&
			c.BankGroup >= 0 && c.BankGroup < g.BankGroups &&
			c.Bank >= 0 && c.Bank < g.Banks &&
			c.Row < g.Rows && c.Col < g.RowSize
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestMapAddrSameRowForNearbyAddrs(t *testing.T) {
	g := DefaultGeometry()
	a := g.MapAddr(0)
	b := g.MapAddr(64)
	if a.Row != b.Row || a.Bank != b.Bank || a.BankGroup != b.BankGroup {
		t.Fatalf("addresses 0 and 64 map to different rows/banks: %+v vs %+v", a, b)
	}
	if b.Col != 64 {
		t.Fatalf("col = %d, want 64", b.Col)
	}
}

func TestNsCycleConversion(t *testing.T) {
	if NsToCycles(0.75) != 1 {
		t.Fatalf("NsToCycles(0.75) = %d, want 1", NsToCycles(0.75))
	}
	if NsToCycles(0) != 0 || NsToCycles(-5) != 0 {
		t.Fatal("non-positive ns should be 0 cycles")
	}
	got := CyclesToNs(1333)
	if got < 999 || got > 1001 {
		t.Fatalf("CyclesToNs(1333) = %v, want ~1000", got)
	}
}

// readLatency issues a single dependent read and returns its latency.
func readLatency(t *testing.T, c *Controller, addr uint64) sim.Cycle {
	t.Helper()
	d := mem.NewDriver(c)
	lats := d.RunChain([]mem.Access{{Op: mem.OpRead, Addr: addr, Size: 64}})
	return lats[0]
}

func TestRowMissReadLatency(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RefreshEnabled = false
	c := newTestController(cfg)
	got := readLatency(t, c, 0)
	// Cold bank: ACT at ~0, RD at tRCD, data at +tCL+tBurst.
	want := cfg.Timing.TRCD + cfg.Timing.TCL + cfg.Timing.TBurst
	if got != want {
		t.Fatalf("cold read latency = %d, want %d", got, want)
	}
}

func TestRowHitFasterThanMiss(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RefreshEnabled = false
	c := newTestController(cfg)
	first := readLatency(t, c, 0)
	hit := readLatency(t, c, 128) // same row
	if hit >= first {
		t.Fatalf("row hit latency %d not below miss latency %d", hit, first)
	}
	st := c.Stats()
	if st.RowHits != 1 || st.RowMisses != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss", st)
	}
}

func TestRowConflictSlowerThanHit(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RefreshEnabled = false
	c := newTestController(cfg)
	g := cfg.Geometry
	readLatency(t, c, 0) // opens row 0 of bank 0
	// Conflicting address: same bank, different row.
	conflictAddr := g.UnmapAddr(Coord{Rank: 0, BankGroup: 0, Bank: 0, Row: 5, Col: 0})
	conflict := readLatency(t, c, conflictAddr)
	hit := readLatency(t, c, conflictAddr+64)
	if conflict <= hit {
		t.Fatalf("conflict latency %d not above hit latency %d", conflict, hit)
	}
	if c.Stats().RowConf != 1 {
		t.Fatalf("RowConf = %d, want 1", c.Stats().RowConf)
	}
}

func TestWriteCompletes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RefreshEnabled = false
	c := newTestController(cfg)
	d := mem.NewDriver(c)
	lats := d.RunChain([]mem.Access{{Op: mem.OpWrite, Addr: 0, Size: 64}})
	want := cfg.Timing.TRCD + cfg.Timing.TWL + cfg.Timing.TBurst
	if lats[0] != want {
		t.Fatalf("write latency = %d, want %d", lats[0], want)
	}
	if c.Stats().Writes != 1 {
		t.Fatal("write not counted")
	}
}

func TestFenceCompletesAfterDrain(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RefreshEnabled = false
	c := newTestController(cfg)
	d := mem.NewDriver(c)
	accs := []mem.Access{
		{Op: mem.OpWrite, Addr: 0, Size: 64},
		{Op: mem.OpWrite, Addr: 64, Size: 64},
	}
	elapsed := d.RunWindow(accs, 8)
	_ = elapsed
	lat := d.Fence()
	if lat == 0 {
		t.Fatal("fence latency should be nonzero")
	}
	if !c.Drained() {
		t.Fatal("controller not drained after fence")
	}
}

func TestBandwidthImprovesWithWindow(t *testing.T) {
	mkAccs := func(n int) []mem.Access {
		accs := make([]mem.Access, n)
		for i := range accs {
			accs[i] = mem.Access{Op: mem.OpRead, Addr: uint64(i) * 64, Size: 64}
		}
		return accs
	}
	cfg := DefaultConfig()
	cfg.RefreshEnabled = false
	serial := newTestController(cfg)
	tSerial := mem.NewDriver(serial).RunWindow(mkAccs(256), 1)
	overlapped := newTestController(cfg)
	tOver := mem.NewDriver(overlapped).RunWindow(mkAccs(256), 16)
	if tOver >= tSerial {
		t.Fatalf("windowed run (%d) not faster than serial (%d)", tOver, tSerial)
	}
}

func TestSchedulerEmitsLegalCommands_Sequential(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TapCommands = true
	c := newTestController(cfg)
	d := mem.NewDriver(c)
	accs := make([]mem.Access, 512)
	for i := range accs {
		op := mem.OpRead
		if i%3 == 0 {
			op = mem.OpWrite
		}
		accs[i] = mem.Access{Op: op, Addr: uint64(i) * 64, Size: 64}
	}
	d.RunWindow(accs, 8)
	vs := NewChecker(cfg.Timing, cfg.Geometry).Check(c.Commands())
	for _, v := range vs {
		t.Errorf("violation: %s", v)
	}
}

func TestSchedulerEmitsLegalCommands_Random(t *testing.T) {
	for _, pol := range []Policy{FCFS, FRFCFS} {
		cfg := DefaultConfig()
		cfg.TapCommands = true
		cfg.Policy = pol
		c := newTestController(cfg)
		d := mem.NewDriver(c)
		rng := sim.NewRNG(12345)
		accs := make([]mem.Access, 2000)
		for i := range accs {
			op := mem.OpRead
			if rng.Intn(2) == 0 {
				op = mem.OpWrite
			}
			accs[i] = mem.Access{Op: op, Addr: rng.Uint64n(cfg.Geometry.Capacity()) &^ 63, Size: 64}
		}
		d.RunWindow(accs, 16)
		vs := NewChecker(cfg.Timing, cfg.Geometry).Check(c.Commands())
		if len(vs) > 0 {
			t.Errorf("%v: %d violations, first: %s", pol, len(vs), vs[0])
		}
	}
}

func TestSchedulerEmitsLegalCommands_LongRunWithRefresh(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TapCommands = true
	c := newTestController(cfg)
	d := mem.NewDriver(c)
	rng := sim.NewRNG(777)
	// Dependent chain so simulated time passes many tREFI periods.
	accs := make([]mem.Access, 600)
	for i := range accs {
		accs[i] = mem.Access{Op: mem.OpRead, Addr: rng.Uint64n(1<<26) &^ 63, Size: 64}
	}
	d.RunChain(accs)
	if c.Stats().Refreshes == 0 {
		t.Fatal("no refreshes fired over a long run")
	}
	vs := NewChecker(cfg.Timing, cfg.Geometry).Check(c.Commands())
	if len(vs) > 0 {
		t.Fatalf("%d violations with refresh, first: %s", len(vs), vs[0])
	}
}

func TestCheckerRejectsMutatedTraces(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RefreshEnabled = false
	cfg.TapCommands = true
	c := newTestController(cfg)
	d := mem.NewDriver(c)
	accs := make([]mem.Access, 64)
	for i := range accs {
		accs[i] = mem.Access{Op: mem.OpRead, Addr: uint64(i) * 8192 * 4, Size: 64}
	}
	d.RunWindow(accs, 8)
	base := c.Commands()
	chk := NewChecker(cfg.Timing, cfg.Geometry)
	if vs := chk.Check(base); len(vs) != 0 {
		t.Fatalf("baseline trace illegal: %s", vs[0])
	}

	mutations := []struct {
		name string
		mut  func([]Cmd) []Cmd
	}{
		{"drop first ACT", func(cs []Cmd) []Cmd {
			out := make([]Cmd, 0, len(cs))
			dropped := false
			for _, cmd := range cs {
				if !dropped && cmd.Kind == CmdACT {
					dropped = true
					continue
				}
				out = append(out, cmd)
			}
			return out
		}},
		{"RD too early after ACT", func(cs []Cmd) []Cmd {
			out := append([]Cmd(nil), cs...)
			for i := range out {
				if out[i].Kind == CmdRD {
					out[i].At -= cfg.Timing.TRCD // violates tRCD
					break
				}
			}
			return out
		}},
		{"double ACT", func(cs []Cmd) []Cmd {
			out := append([]Cmd(nil), cs...)
			for _, cmd := range cs {
				if cmd.Kind == CmdACT {
					dup := cmd
					dup.At += 2
					out = append(out, dup)
					break
				}
			}
			return out
		}},
		{"RD to wrong row", func(cs []Cmd) []Cmd {
			out := append([]Cmd(nil), cs...)
			for i := range out {
				if out[i].Kind == CmdRD {
					out[i].Row += 9
					break
				}
			}
			return out
		}},
	}
	for _, m := range mutations {
		if vs := chk.Check(m.mut(base)); len(vs) == 0 {
			t.Errorf("mutation %q not detected", m.name)
		}
	}
}

func TestCheckerFAWRule(t *testing.T) {
	tm := DDR42666()
	g := DefaultGeometry()
	chk := NewChecker(tm, g)
	var cmds []Cmd
	// 5 ACTs to distinct banks, spaced by tRRD only: the 5th violates tFAW.
	at := sim.Cycle(0)
	for i := 0; i < 5; i++ {
		cmds = append(cmds, Cmd{At: at, Kind: CmdACT,
			Coord: Coord{BankGroup: i % g.BankGroups, Bank: i / g.BankGroups, Row: 1}})
		at += tm.TRRD
	}
	vs := chk.Check(cmds)
	if len(vs) == 0 {
		t.Fatal("tFAW violation not detected")
	}
}

func TestCheckerRefRequiresPrecharged(t *testing.T) {
	tm := DDR42666()
	g := DefaultGeometry()
	chk := NewChecker(tm, g)
	cmds := []Cmd{
		{At: 0, Kind: CmdACT, Coord: Coord{Row: 1}},
		{At: 100, Kind: CmdREF, Coord: Coord{}},
	}
	if vs := chk.Check(cmds); len(vs) == 0 {
		t.Fatal("REF with open bank not detected")
	}
}

func TestFRFCFSPrefersRowHits(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RefreshEnabled = false
	cfg.Policy = FRFCFS
	c := newTestController(cfg)
	d := mem.NewDriver(c)
	g := cfg.Geometry
	conflict := g.UnmapAddr(Coord{Row: 3})
	// Interleave row-0 hits with row-3 conflicts; FR-FCFS should batch hits.
	var accs []mem.Access
	for i := 0; i < 32; i++ {
		accs = append(accs, mem.Access{Op: mem.OpRead, Addr: uint64(i) * 64, Size: 64})
		accs = append(accs, mem.Access{Op: mem.OpRead, Addr: conflict + uint64(i)*64, Size: 64})
	}
	tFR := d.RunWindow(accs, 16)

	cfg2 := cfg
	cfg2.Policy = FCFS
	c2 := newTestController(cfg2)
	tFC := mem.NewDriver(c2).RunWindow(accs, 16)
	if tFR >= tFC {
		t.Fatalf("FR-FCFS (%d) not faster than FCFS (%d) on conflicting mix", tFR, tFC)
	}
	if c.Stats().RowConf >= c2.Stats().RowConf {
		t.Fatalf("FR-FCFS conflicts (%d) not fewer than FCFS (%d)",
			c.Stats().RowConf, c2.Stats().RowConf)
	}
}

func TestControllerBackpressure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QueueDepth = 2
	c := newTestController(cfg)
	ok1 := c.Submit(&mem.Request{Op: mem.OpRead, Addr: 0, Size: 64})
	ok2 := c.Submit(&mem.Request{Op: mem.OpRead, Addr: 64, Size: 64})
	if !ok1 || !ok2 {
		t.Fatal("queue rejected requests below capacity")
	}
	if c.Submit(&mem.Request{Op: mem.OpRead, Addr: 128, Size: 64}) {
		t.Fatal("queue accepted request beyond capacity")
	}
}

func TestScheduleCompositionEntryPoint(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RefreshEnabled = false
	c := newTestController(cfg)
	doneCount := 0
	if !c.Schedule(0, false, func() { doneCount++ }) {
		t.Fatal("Schedule rejected")
	}
	c.Engine().Run()
	if doneCount != 1 {
		t.Fatalf("done fired %d times, want 1", doneCount)
	}
	if !c.Drained() {
		t.Fatal("not drained after completion")
	}
}

func TestPolicyString(t *testing.T) {
	if FCFS.String() != "fcfs" || FRFCFS.String() != "fr-fcfs" {
		t.Fatal("policy names wrong")
	}
	if Policy(9).String() == "" {
		t.Fatal("unknown policy should still format")
	}
}

func TestCmdString(t *testing.T) {
	c := Cmd{At: 5, Kind: CmdACT, Coord: Coord{Rank: 0, BankGroup: 1, Bank: 2, Row: 3}}
	if c.String() == "" {
		t.Fatal("empty command string")
	}
	for _, k := range []CmdKind{CmdACT, CmdPRE, CmdRD, CmdWR, CmdREF, CmdKind(42)} {
		if k.String() == "" {
			t.Fatalf("kind %d has empty name", k)
		}
	}
}

func TestGeometryCapacity(t *testing.T) {
	g := Geometry{Ranks: 2, BankGroups: 4, Banks: 4, RowSize: 8192, Rows: 1024}
	want := uint64(2*4*4) * 1024 * 8192
	if g.Capacity() != want {
		t.Fatalf("Capacity = %d, want %d", g.Capacity(), want)
	}
}
