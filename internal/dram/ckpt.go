package dram

import (
	"fmt"

	"repro/internal/ckpt"
	"repro/internal/sim"
)

// SaveState serializes the controller's mutable state. Checkpoints cut at
// engine-idle barriers, so the request queue must be empty and no access may
// be in flight — a queued *mem.Request carries a completion closure that has
// no identity outside this process. What persists across idle is the bank and
// rank timing state (open rows, earliest-issue cycles, tFAW windows, refresh
// deadlines), the data-bus horizon, burst-spacing history, and the stats.
//
// Field order: bank count, per-bank (open, openRow, nextACT, nextPRE,
// nextRW); rank count, per-rank (lastACTs, nextACT, nextRD, nextRefresh);
// busFree, lastBurstBG, lastBurstAt, haveBurst; stats.
func (c *Controller) SaveState(enc *ckpt.Enc) error {
	if !c.queue.Empty() || c.inflight != 0 || c.busy {
		return fmt.Errorf("ckpt: DRAM controller has in-flight requests; checkpoint only at an idle cut")
	}
	if c.cfg.TapCommands {
		return fmt.Errorf("ckpt: DRAM controller with a command trace tap cannot be checkpointed")
	}
	enc.U32(uint32(len(c.banks)))
	for i := range c.banks {
		b := &c.banks[i]
		enc.Bool(b.open)
		enc.U64(b.openRow)
		enc.U64(uint64(b.nextACT))
		enc.U64(uint64(b.nextPRE))
		enc.U64(uint64(b.nextRW))
	}
	enc.U32(uint32(len(c.ranks)))
	for i := range c.ranks {
		rk := &c.ranks[i]
		acts := make([]uint64, len(rk.lastACTs))
		for j, a := range rk.lastACTs {
			acts[j] = uint64(a)
		}
		enc.U64s(acts)
		enc.U64(uint64(rk.nextACT))
		enc.U64(uint64(rk.nextRD))
		enc.U64(uint64(rk.nextRefresh))
	}
	enc.U64(uint64(c.busFree))
	enc.U64(uint64(c.lastBurstBG))
	enc.U64(uint64(c.lastBurstAt))
	enc.Bool(c.haveBurst)
	enc.U64(c.stats.Reads)
	enc.U64(c.stats.Writes)
	enc.U64(c.stats.RowHits)
	enc.U64(c.stats.RowMisses)
	enc.U64(c.stats.RowConf)
	enc.U64(c.stats.Refreshes)
	enc.U64(uint64(c.stats.DataCycles))
	c.histAccess.SaveState(enc)
	return nil
}

// LoadState restores state captured by SaveState into a controller built
// from the same configuration.
func (c *Controller) LoadState(dec *ckpt.Dec) error {
	if !c.queue.Empty() || c.inflight != 0 || c.busy {
		return fmt.Errorf("ckpt: cannot restore into a DRAM controller with in-flight requests")
	}
	nb := dec.Count(26)
	if err := dec.Err(); err != nil {
		return err
	}
	if nb != len(c.banks) {
		return fmt.Errorf("%w: snapshot has %d DRAM banks, this controller %d",
			ckpt.ErrCorrupt, nb, len(c.banks))
	}
	for i := range c.banks {
		b := &c.banks[i]
		b.open = dec.Bool()
		b.openRow = dec.U64()
		b.nextACT = sim.Cycle(dec.U64())
		b.nextPRE = sim.Cycle(dec.U64())
		b.nextRW = sim.Cycle(dec.U64())
	}
	nr := dec.Count(4 + 24)
	if err := dec.Err(); err != nil {
		return err
	}
	if nr != len(c.ranks) {
		return fmt.Errorf("%w: snapshot has %d DRAM ranks, this controller %d",
			ckpt.ErrCorrupt, nr, len(c.ranks))
	}
	for i := range c.ranks {
		rk := &c.ranks[i]
		acts := dec.U64s()
		if err := dec.Err(); err != nil {
			return err
		}
		if len(acts) > 4 {
			return fmt.Errorf("%w: rank tFAW window of %d activations", ckpt.ErrCorrupt, len(acts))
		}
		rk.lastACTs = rk.lastACTs[:0]
		for _, a := range acts {
			rk.lastACTs = append(rk.lastACTs, sim.Cycle(a))
		}
		rk.nextACT = sim.Cycle(dec.U64())
		rk.nextRD = sim.Cycle(dec.U64())
		rk.nextRefresh = sim.Cycle(dec.U64())
	}
	c.busFree = sim.Cycle(dec.U64())
	c.lastBurstBG = int(dec.U64())
	c.lastBurstAt = sim.Cycle(dec.U64())
	c.haveBurst = dec.Bool()
	c.stats.Reads = dec.U64()
	c.stats.Writes = dec.U64()
	c.stats.RowHits = dec.U64()
	c.stats.RowMisses = dec.U64()
	c.stats.RowConf = dec.U64()
	c.stats.Refreshes = dec.U64()
	c.stats.DataCycles = sim.Cycle(dec.U64())
	if err := c.histAccess.LoadState(dec); err != nil {
		return err
	}
	return dec.Err()
}
