package dram

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// Violation is one DDR4 protocol rule broken by a command trace.
type Violation struct {
	Cmd  Cmd
	Rule string
}

// String renders the violation.
func (v Violation) String() string { return fmt.Sprintf("%s: %s", v.Cmd, v.Rule) }

// Checker validates a DDR4 command trace against a Timing set. It is the
// repository's stand-in for the Micron DDR4 Verilog verification model: the
// controller's recorded command stream is replayed through an independent
// rule set, so a timing bug in the scheduler cannot silently self-certify.
type Checker struct {
	t Timing
	g Geometry
}

// NewChecker returns a checker for the given timing and geometry.
func NewChecker(t Timing, g Geometry) *Checker { return &Checker{t: t, g: g} }

// chkBank mirrors per-bank protocol state during checking.
type chkBank struct {
	open      bool
	openRow   uint64
	lastACT   sim.Cycle
	lastPRE   sim.Cycle
	lastRD    sim.Cycle
	lastWRend sim.Cycle // end of last write data burst
	hasACT    bool
	hasPRE    bool
	hasRD     bool
	hasWR     bool
}

// chkRank mirrors per-rank protocol state.
type chkRank struct {
	acts      []sim.Cycle
	lastREF   sim.Cycle
	hasREF    bool
	lastWRend sim.Cycle
	hasWR     bool
}

// Check replays cmds (sorted by cycle, ties in input order) and returns all
// violations found. An empty result means the trace is DDR4-legal under the
// rule subset below, which covers the constraints the controller must honor:
//
//	ACT:  bank must be precharged; >= tRP after its PRE; >= tRRD after the
//	      rank's previous ACT; at most 4 ACTs per rank per tFAW; >= tRFC
//	      after REF.
//	PRE:  >= tRAS after the bank's ACT; >= tRTP after its last RD; >= tWR
//	      after its last write data.
//	RD:   bank open, row matches; >= tRCD after ACT; >= tWTR after the
//	      rank's last write data end.
//	WR:   bank open, row matches; >= tRCD after ACT.
//	Bursts: same-bank-group spacing >= tCCD_L, cross-group >= tCCD_S.
//	REF:  all banks of the rank precharged.
func (c *Checker) Check(cmds []Cmd) []Violation {
	ordered := make([]Cmd, len(cmds))
	copy(ordered, cmds)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].At < ordered[j].At })

	banks := make([]chkBank, c.g.totalBanks())
	ranks := make([]chkRank, c.g.Ranks)
	var vs []Violation
	fail := func(cmd Cmd, format string, args ...interface{}) {
		vs = append(vs, Violation{Cmd: cmd, Rule: fmt.Sprintf(format, args...)})
	}

	var lastBurstAt sim.Cycle
	lastBurstBG := -1
	haveBurst := false

	for _, cmd := range ordered {
		if cmd.Rank < 0 || cmd.Rank >= c.g.Ranks {
			fail(cmd, "rank %d out of range", cmd.Rank)
			continue
		}
		rk := &ranks[cmd.Rank]
		var b *chkBank
		if cmd.Kind != CmdREF {
			if cmd.BankGroup < 0 || cmd.BankGroup >= c.g.BankGroups ||
				cmd.Bank < 0 || cmd.Bank >= c.g.Banks {
				fail(cmd, "bank address out of range")
				continue
			}
			b = &banks[c.g.bankIndex(cmd.Coord)]
		}

		switch cmd.Kind {
		case CmdACT:
			if b.open {
				fail(cmd, "ACT to open bank (row %d still open)", b.openRow)
			}
			if b.hasPRE && cmd.At < b.lastPRE+c.t.TRP {
				fail(cmd, "tRP: ACT at %d < PRE %d + %d", cmd.At, b.lastPRE, c.t.TRP)
			}
			if rk.hasREF && cmd.At < rk.lastREF+c.t.TRFC {
				fail(cmd, "tRFC: ACT at %d < REF %d + %d", cmd.At, rk.lastREF, c.t.TRFC)
			}
			if n := len(rk.acts); n > 0 && cmd.At < rk.acts[n-1]+c.t.TRRD {
				fail(cmd, "tRRD: ACT at %d < prev ACT %d + %d", cmd.At, rk.acts[n-1], c.t.TRRD)
			}
			if len(rk.acts) >= 4 {
				if w := rk.acts[len(rk.acts)-4]; cmd.At < w+c.t.TFAW {
					fail(cmd, "tFAW: 5th ACT at %d inside window from %d", cmd.At, w)
				}
			}
			rk.acts = append(rk.acts, cmd.At)
			if len(rk.acts) > 8 {
				rk.acts = rk.acts[len(rk.acts)-8:]
			}
			b.open = true
			b.openRow = cmd.Row
			b.lastACT = cmd.At
			b.hasACT = true

		case CmdPRE:
			if !b.open {
				fail(cmd, "PRE to precharged bank")
			}
			if b.hasACT && cmd.At < b.lastACT+c.t.TRAS {
				fail(cmd, "tRAS: PRE at %d < ACT %d + %d", cmd.At, b.lastACT, c.t.TRAS)
			}
			if b.hasRD && cmd.At < b.lastRD+c.t.TRTP {
				fail(cmd, "tRTP: PRE at %d < RD %d + %d", cmd.At, b.lastRD, c.t.TRTP)
			}
			if b.hasWR && cmd.At < b.lastWRend+c.t.TWR {
				fail(cmd, "tWR: PRE at %d < WR data end %d + %d", cmd.At, b.lastWRend, c.t.TWR)
			}
			b.open = false
			b.lastPRE = cmd.At
			b.hasPRE = true

		case CmdRD, CmdWR:
			if !b.open {
				fail(cmd, "%s to precharged bank", cmd.Kind)
			} else if b.openRow != cmd.Row {
				fail(cmd, "%s row %d but open row is %d", cmd.Kind, cmd.Row, b.openRow)
			}
			if b.hasACT && cmd.At < b.lastACT+c.t.TRCD {
				fail(cmd, "tRCD: %s at %d < ACT %d + %d", cmd.Kind, cmd.At, b.lastACT, c.t.TRCD)
			}
			if haveBurst {
				gap := c.t.TCCDS
				if cmd.BankGroup == lastBurstBG {
					gap = c.t.TCCD
				}
				if cmd.At < lastBurstAt+gap {
					fail(cmd, "tCCD: burst at %d < prev burst %d + %d", cmd.At, lastBurstAt, gap)
				}
			}
			if cmd.Kind == CmdRD {
				if rk.hasWR && cmd.At < rk.lastWRend+c.t.TWTR {
					fail(cmd, "tWTR: RD at %d < write data end %d + %d", cmd.At, rk.lastWRend, c.t.TWTR)
				}
				b.lastRD = cmd.At
				b.hasRD = true
			} else {
				end := cmd.At + c.t.TWL + c.t.TBurst
				b.lastWRend = end
				b.hasWR = true
				rk.lastWRend = end
				rk.hasWR = true
			}
			haveBurst = true
			lastBurstAt = cmd.At
			lastBurstBG = cmd.BankGroup

		case CmdREF:
			lo := cmd.Rank * c.g.BankGroups * c.g.Banks
			hi := lo + c.g.BankGroups*c.g.Banks
			for i := lo; i < hi; i++ {
				if banks[i].open {
					fail(cmd, "REF with bank %d open", i-lo)
					break
				}
			}
			rk.lastREF = cmd.At
			rk.hasREF = true

		default:
			fail(cmd, "unknown command kind %d", cmd.Kind)
		}
	}
	return vs
}
