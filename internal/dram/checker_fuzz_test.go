package dram

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/sim"
)

// legalTrace generates a legal command trace by running the controller on a
// random access mix.
func legalTrace(seed uint64, pol Policy) ([]Cmd, Config) {
	cfg := DefaultConfig()
	cfg.TapCommands = true
	cfg.Policy = pol
	cfg.RefreshEnabled = seed%2 == 0
	c := NewController(sim.NewEngine(), cfg)
	d := mem.NewDriver(c)
	rng := sim.NewRNG(seed)
	accs := make([]mem.Access, 300)
	for i := range accs {
		op := mem.OpRead
		if rng.Intn(3) == 0 {
			op = mem.OpWrite
		}
		accs[i] = mem.Access{Op: op, Addr: rng.Uint64n(cfg.Geometry.Capacity()) &^ 63, Size: 64}
	}
	d.RunWindow(accs, 12)
	return c.Commands(), cfg
}

// Property: the controller always emits legal traces across policies,
// refresh settings, and random access mixes.
func TestControllerAlwaysLegal(t *testing.T) {
	f := func(seed uint64, frfcfs bool) bool {
		pol := FCFS
		if frfcfs {
			pol = FRFCFS
		}
		cmds, cfg := legalTrace(seed, pol)
		if len(cmds) == 0 {
			return false
		}
		vs := NewChecker(cfg.Timing, cfg.Geometry).Check(cmds)
		if len(vs) > 0 {
			t.Logf("seed %d policy %v: %s", seed, pol, vs[0])
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: guaranteed-illegal mutations of a legal trace are always
// detected. Duplicating any ACT shortly after itself re-opens an open bank
// (and violates tRRD), which no legal trace can contain.
func TestCheckerDetectsRandomMutations(t *testing.T) {
	base, cfg := legalTrace(7, FCFS)
	chk := NewChecker(cfg.Timing, cfg.Geometry)
	if vs := chk.Check(base); len(vs) != 0 {
		t.Fatalf("baseline illegal: %s", vs[0])
	}
	f := func(pickRaw uint16, gapRaw uint8) bool {
		mut := append([]Cmd(nil), base...)
		var actIdx []int
		for i, c := range mut {
			if c.Kind == CmdACT {
				actIdx = append(actIdx, i)
			}
		}
		if len(actIdx) == 0 {
			return true
		}
		i := actIdx[int(pickRaw)%len(actIdx)]
		dup := mut[i]
		// Insert the duplicate 1..tRAS-1 cycles later: the bank is still
		// open, so the second ACT must be flagged.
		dup.At += 1 + sim.Cycle(uint64(gapRaw))%(cfg.Timing.TRAS-1)
		mut = append(mut, dup)
		vs := chk.Check(mut)
		return len(vs) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// The checker must tolerate arbitrary garbage without panicking.
func TestCheckerGarbageTolerance(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		cmds := make([]Cmd, 50)
		for i := range cmds {
			cmds[i] = Cmd{
				At:   sim.Cycle(rng.Uint64n(10000)),
				Kind: CmdKind(rng.Intn(7)), // includes invalid kinds
				Coord: Coord{
					Rank:      rng.Intn(3) - 1, // includes out-of-range
					BankGroup: rng.Intn(6) - 1,
					Bank:      rng.Intn(6) - 1,
					Row:       rng.Uint64n(1 << 17),
					Col:       rng.Uint64n(1 << 14),
				},
			}
		}
		g := DefaultGeometry()
		NewChecker(DDR42666(), g).Check(cmds) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
