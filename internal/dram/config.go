// Package dram implements a DDR4 DRAM timing model: per-bank state machines,
// a command scheduler with FCFS and FR-FCFS policies, an address mapper, and
// a DDR4 command-legality checker that plays the role of Micron's Verilog
// verification model in the paper's DRAM-model verification flow.
//
// The model serves two roles in this repository: the on-DIMM DRAM that hosts
// the Optane AIT (the paper models its timing with the DDR4 protocol because
// DDR-T extends DDR4), and the DRAM main memory of the baseline systems.
package dram

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Timing holds DDR4 timing constraints in command-clock cycles. The defaults
// mirror Table V of the paper: DDR4-2666 with tCAS(19) tRCD(19) tRP(19)
// tRAS(43). One command clock at 2666 MT/s is 0.75 ns.
type Timing struct {
	TCL    sim.Cycle // CAS latency: RD -> first data beat
	TRCD   sim.Cycle // ACT -> RD/WR to the same bank
	TRP    sim.Cycle // PRE -> ACT to the same bank
	TRAS   sim.Cycle // ACT -> PRE to the same bank
	TCCD   sim.Cycle // RD->RD / WR->WR minimum spacing (same bank group)
	TCCDS  sim.Cycle // RD->RD / WR->WR spacing across bank groups (short)
	TRRD   sim.Cycle // ACT -> ACT, different banks same rank
	TFAW   sim.Cycle // window for at most four ACTs per rank
	TWL    sim.Cycle // write latency: WR -> first data beat
	TWR    sim.Cycle // write recovery: end of write data -> PRE
	TRTP   sim.Cycle // RD -> PRE
	TWTR   sim.Cycle // end of write data -> RD
	TBurst sim.Cycle // data burst length on the bus (BL8 = 4 command clocks)
	TREFI  sim.Cycle // average refresh interval
	TRFC   sim.Cycle // refresh cycle time (rank busy after REF)
}

// DDR42666 returns the DDR4-2666 timing set used throughout the paper.
func DDR42666() Timing {
	return Timing{
		TCL: 19, TRCD: 19, TRP: 19, TRAS: 43,
		TCCD: 7, TCCDS: 4, TRRD: 6, TFAW: 26,
		TWL: 14, TWR: 20, TRTP: 10, TWTR: 10,
		TBurst: 4,
		TREFI:  10398, // 7.8 us at 0.75 ns/cycle
		TRFC:   467,   // 350 ns for 8Gb devices
	}
}

// DDR31600 returns a DDR3-1600-like timing set (used by the DRAMSim2-DDR3
// baseline comparison in Figure 3a). Cycles are still interpreted on the
// shared 0.75 ns clock for comparability.
func DDR31600() Timing {
	t := DDR42666()
	t.TCL, t.TRCD, t.TRP, t.TRAS = 15, 15, 15, 38
	t.TCCD, t.TCCDS = 5, 5
	return t
}

// ClockMHz is the command-clock frequency all simulations run at. One engine
// cycle is one command clock: 1333 MHz, 0.75 ns.
const ClockMHz = 1333.0

// CyclesPerNano converts between engine cycles and wall-clock nanoseconds.
const CyclesPerNano = ClockMHz / 1000.0

// NsToCycles converts a nanosecond latency into engine cycles (rounded).
func NsToCycles(ns float64) sim.Cycle {
	if ns <= 0 {
		return 0
	}
	return sim.Cycle(ns*CyclesPerNano + 0.5)
}

// CyclesToNs converts engine cycles to nanoseconds.
func CyclesToNs(c sim.Cycle) float64 { return float64(c) / CyclesPerNano }

// Geometry describes the DRAM organization behind one controller.
type Geometry struct {
	Ranks      int
	BankGroups int
	// Banks is banks per bank group.
	Banks int
	// RowSize is the row (page) size in bytes.
	RowSize uint64
	// Rows per bank; with RowSize this fixes the capacity.
	Rows uint64
}

// DefaultGeometry is a single-rank x8 DDR4 device set: 4 bank groups x 4
// banks, 8KB rows.
func DefaultGeometry() Geometry {
	return Geometry{Ranks: 1, BankGroups: 4, Banks: 4, RowSize: 8 << 10, Rows: 1 << 16}
}

// Capacity returns the total bytes addressable by the geometry.
func (g Geometry) Capacity() uint64 {
	return uint64(g.Ranks*g.BankGroups*g.Banks) * g.Rows * g.RowSize
}

// Coord locates one column burst inside the DRAM organization.
type Coord struct {
	Rank, BankGroup, Bank int
	Row                   uint64
	Col                   uint64
}

// bankIndex flattens the coordinate into a dense bank id.
func (g Geometry) bankIndex(c Coord) int {
	return (c.Rank*g.BankGroups+c.BankGroup)*g.Banks + c.Bank
}

// totalBanks returns the number of independent banks.
func (g Geometry) totalBanks() int { return g.Ranks * g.BankGroups * g.Banks }

// MapAddr maps a physical byte address onto the organization using a
// row-interleaved scheme: consecutive rows rotate across banks so streaming
// accesses exploit bank-level parallelism, while accesses within a row stay
// open-page friendly. Layout (low to high): column within row, bank, bank
// group, rank, row.
func (g Geometry) MapAddr(addr uint64) Coord {
	a := addr
	col := a % g.RowSize
	a /= g.RowSize
	bank := int(a % uint64(g.Banks))
	a /= uint64(g.Banks)
	bg := int(a % uint64(g.BankGroups))
	a /= uint64(g.BankGroups)
	rank := int(a % uint64(g.Ranks))
	a /= uint64(g.Ranks)
	row := a % g.Rows
	return Coord{Rank: rank, BankGroup: bg, Bank: bank, Row: row, Col: col}
}

// UnmapAddr is the inverse of MapAddr (used by property tests).
func (g Geometry) UnmapAddr(c Coord) uint64 {
	a := c.Row
	a = a*uint64(g.Ranks) + uint64(c.Rank)
	a = a*uint64(g.BankGroups) + uint64(c.BankGroup)
	a = a*uint64(g.Banks) + uint64(c.Bank)
	return a*g.RowSize + c.Col
}

// Policy selects the command scheduling policy.
type Policy uint8

const (
	// FCFS serves requests strictly in arrival order (VANS default).
	FCFS Policy = iota
	// FRFCFS serves row hits before row misses, then arrival order.
	FRFCFS
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case FCFS:
		return "fcfs"
	case FRFCFS:
		return "fr-fcfs"
	default:
		return fmt.Sprintf("policy(%d)", uint8(p))
	}
}

// Config configures one Controller.
type Config struct {
	Timing   Timing
	Geometry Geometry
	Policy   Policy
	// QueueDepth bounds the request queue (0 = 32).
	QueueDepth int
	// AccessBytes is the data moved per RD/WR burst (64 for a x64 channel
	// with BL8). Requests larger than this are split by the caller.
	AccessBytes uint64
	// TapCommands, when true, records the command trace for verification.
	TapCommands bool
	// ClosedPage precharges the row after every column access (auto-
	// precharge), as device models without row-buffer locality exploitation
	// do — e.g. Ramulator's PCM model.
	ClosedPage bool
	// RefreshEnabled enables periodic REF commands.
	RefreshEnabled bool

	// Obs, when set, registers this controller's counters with the
	// observability registry and enables hook emission. Runtime-only.
	Obs *obs.Obs `json:"-"`
	// ObsName is the component name used in the registry ("dram" when
	// empty); composed models pass e.g. "dimm0/dram".
	ObsName string `json:"-"`
}

// DefaultConfig returns a DDR4-2666 single-channel configuration.
func DefaultConfig() Config {
	return Config{
		Timing:         DDR42666(),
		Geometry:       DefaultGeometry(),
		Policy:         FCFS,
		QueueDepth:     32,
		AccessBytes:    64,
		RefreshEnabled: true,
	}
}
