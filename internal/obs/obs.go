// Package obs is the observability layer spanning the whole simulator: typed
// lifecycle hooks (the Akita hookable pattern — a no-op branch when nothing
// is attached), a per-component registry of named counters and fixed-bucket
// latency histograms, and pluggable tracers that can follow one access
// through iMC → LSQ → RMW → AIT → media.
//
// Design constraints, in order:
//
//  1. Zero cost when disabled. Hook call sites guard with Active(), which is
//     a nil check plus a bool load and inlines; the Event struct is only
//     constructed inside the guard, so the hot path stays allocation-free
//     (pinned by BenchmarkEmitDisabled and the engine/media alloc guards).
//  2. Nil-safe everywhere. A component holds a *Obs that may be nil; every
//     method has an explicit nil-receiver branch, so unobserved systems need
//     no wiring at all.
//  3. Deterministic aggregation under parallelism. Construction-time calls
//     (Child, Attach, registration, AdoptEngine) take the parent mutex;
//     the hot path (Emit, Counter.Add, Histogram.Observe) is single-threaded
//     by the same argument as the engine itself: each child Obs belongs to
//     exactly one engine's goroutine. Aggregation (Dump, Digest) happens
//     after the owning goroutines join.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/sim"
)

// Stage identifies the datapath structure an event happened in. The taxonomy
// follows the paper's Fig. 2 datapath: requests enter at the iMC (WPQ/RPQ),
// cross to the on-DIMM LSQ, combine in the RMW buffer, translate through the
// AIT (backed by on-DIMM DRAM), and land on 3D-XPoint media, with the
// wear-leveler migrating worn blocks underneath.
type Stage uint8

// Stages in datapath order.
const (
	StageRequest Stage = iota // CPU-visible request (driver boundary)
	StageWPQ                  // iMC write pending queue (ADR domain)
	StageRPQ                  // iMC read pending queue
	StageLSQ                  // on-DIMM load-store queue
	StageRMW                  // 16KB read-modify-write buffer
	StageAIT                  // address indirection table (translate + buffer)
	StageMedia                // 3D-XPoint media access
	StageWear                 // wear-leveling migration
	StageDRAM                 // on-DIMM DRAM (AIT table/data backing)

	numStages
)

var stageNames = [numStages]string{
	"request", "wpq", "rpq", "lsq", "rmw", "ait", "media", "wear", "dram",
}

// String names the stage.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return fmt.Sprintf("stage(%d)", uint8(s))
}

// Pos is the typed hook position within a stage.
type Pos uint8

// Hook positions.
const (
	PosEnqueue  Pos = iota // accepted into a queue
	PosDequeue             // popped for downstream processing
	PosIssue               // operation issued to the structure
	PosComplete            // operation finished
	PosHit                 // structure lookup hit (forward/combine)
	PosMiss                // structure lookup miss
	PosMigrate             // wear-leveling migration started
	PosFault               // injected or detected fault (poison, stall)

	numPos
)

var posNames = [numPos]string{
	"enqueue", "dequeue", "issue", "complete", "hit", "miss", "migrate", "fault",
}

// String names the position.
func (p Pos) String() string {
	if int(p) < len(posNames) {
		return posNames[p]
	}
	return fmt.Sprintf("pos(%d)", uint8(p))
}

// Event is one lifecycle hook firing. It is a flat value struct — no
// interfaces, no pointers beyond the component name — so constructing one
// does not allocate.
type Event struct {
	// Now is the engine cycle the event refers to (for duration events, the
	// start cycle).
	Now sim.Cycle
	// Stage and Pos locate the event in the datapath.
	Stage Stage
	Pos   Pos
	// Write distinguishes the store path from the load path.
	Write bool
	// Comp names the component instance ("dimm0", "imc0", "dimm0/media").
	Comp string
	// Addr is the address the event concerns (stage-local address space).
	Addr uint64
	// Arg carries a per-position extra: a duration in cycles for
	// PosIssue/PosMigrate spans, a stall length for PosFault, a request ID
	// for StageRequest events. Zero when unused.
	Arg uint64
}

// Tracer consumes lifecycle events. Implementations must not retain the
// event past the call unless they copy it (Event is a value, so plain
// append copies).
type Tracer interface {
	OnEvent(ev Event)
}

// Obs is one observability context: a hook set, a registry, and the engines
// it watches. A parent Obs hands out Child contexts so concurrently built
// systems (parallel sweep points) each own a single-threaded context while
// Dump/Digest aggregate the whole family.
type Obs struct {
	// hooks is fixed after construction/Attach; active mirrors len(hooks)>0
	// so the hot-path guard is one load.
	hooks  []Tracer
	active bool

	mu       sync.Mutex
	parent   *Obs
	children []*Obs
	counters []*Counter
	hists    []*Histogram
	engines  []*sim.Engine
}

// New returns an empty observability context with no tracers attached.
func New() *Obs { return &Obs{} }

// Attach adds a tracer. Attach before constructing observed systems: Child
// copies the hook set at creation, so later attachments do not propagate to
// existing children. Attaching to a nil Obs is a no-op.
func (o *Obs) Attach(t Tracer) {
	if o == nil || t == nil {
		return
	}
	o.mu.Lock()
	o.hooks = append(o.hooks, t)
	o.active = true
	o.mu.Unlock()
}

// Active reports whether any tracer is attached. It is the hot-path guard:
// call sites construct an Event only when Active returns true.
func (o *Obs) Active() bool { return o != nil && o.active }

// Emit delivers ev to every attached tracer. Callers on hot paths should
// guard with Active() so the Event struct is never built when disabled.
func (o *Obs) Emit(ev Event) {
	if o == nil || !o.active {
		return
	}
	for _, t := range o.hooks {
		t.OnEvent(ev)
	}
}

// Child derives a context for one concurrently-built system: it shares the
// parent's tracers (copied at this moment) and registers itself for
// aggregation. Child of a nil Obs is nil, so unobserved construction paths
// need no checks.
func (o *Obs) Child() *Obs {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	c := &Obs{hooks: o.hooks, active: o.active, parent: o}
	o.children = append(o.children, c)
	o.mu.Unlock()
	return c
}

// AdoptEngine registers an engine for Digest accounting (events fired, peak
// pending). Nil-safe.
func (o *Obs) AdoptEngine(e *sim.Engine) {
	if o == nil || e == nil {
		return
	}
	o.mu.Lock()
	o.engines = append(o.engines, e)
	o.mu.Unlock()
}

// ------------------------------------------------------------ counters

// Counter is a registry-backed named counter. It reads from exactly one of:
// an owned value (Add/Inc), a registered pointer into an existing stats
// struct (zero hot-path cost — the component keeps bumping its own field),
// or a derived function.
type Counter struct {
	comp, name string
	v          uint64
	ptr        *uint64
	fn         func() uint64
}

// Add increments an owned counter.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v += n
	}
}

// Inc increments an owned counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 {
	switch {
	case c == nil:
		return 0
	case c.fn != nil:
		return c.fn()
	case c.ptr != nil:
		return *c.ptr
	default:
		return c.v
	}
}

// Counter registers (or returns) an owned counter named comp/name. Returns
// nil on a nil Obs; Counter methods are nil-safe.
func (o *Obs) Counter(comp, name string) *Counter {
	if o == nil {
		return nil
	}
	c := &Counter{comp: comp, name: name}
	o.mu.Lock()
	o.counters = append(o.counters, c)
	o.mu.Unlock()
	return c
}

// RegisterPtr backs a registry counter by an existing uint64 field. The
// component keeps mutating the field directly — registration costs nothing
// on the hot path.
func (o *Obs) RegisterPtr(comp, name string, p *uint64) {
	if o == nil || p == nil {
		return
	}
	o.mu.Lock()
	o.counters = append(o.counters, &Counter{comp: comp, name: name, ptr: p})
	o.mu.Unlock()
}

// RegisterFunc backs a registry counter by a derived function (e.g. a
// structure's accessor). fn is called during Dump, after the owning
// goroutine has quiesced.
func (o *Obs) RegisterFunc(comp, name string, fn func() uint64) {
	if o == nil || fn == nil {
		return
	}
	o.mu.Lock()
	o.counters = append(o.counters, &Counter{comp: comp, name: name, fn: fn})
	o.mu.Unlock()
}

// ------------------------------------------------------------ histograms

// Histogram is a bounded fixed-bucket latency histogram: counts[i] holds
// observations v <= bounds[i]; the final slot counts overflow. Memory is
// O(len(bounds)) regardless of sample count — the replacement for the
// unbounded sim.Accumulator on long-lived service paths.
type Histogram struct {
	comp, name string
	bounds     []uint64 // ascending upper bounds
	counts     []uint64 // len(bounds)+1, last = overflow
	count      uint64
	sum        uint64
	min, max   uint64
}

// ExpBounds returns n doubling bucket bounds starting at lo: lo, 2lo, 4lo...
func ExpBounds(lo uint64, n int) []uint64 {
	if lo == 0 {
		lo = 1
	}
	b := make([]uint64, n)
	for i := range b {
		b[i] = lo
		lo *= 2
	}
	return b
}

// DefaultLatencyBounds covers simulated access latencies: 16ns doubling to
// ~134ms (24 buckets), spanning a WPQ hit through a wear-migration stall.
func DefaultLatencyBounds() []uint64 { return ExpBounds(16, 24) }

// NewHistogram returns a histogram with the given ascending bounds.
func NewHistogram(bounds []uint64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

// Histogram registers a new histogram named comp/name with the given bounds
// (DefaultLatencyBounds when nil). Returns nil on a nil Obs; Observe on a
// nil Histogram is a no-op.
func (o *Obs) Histogram(comp, name string, bounds []uint64) *Histogram {
	if o == nil {
		return nil
	}
	if bounds == nil {
		bounds = DefaultLatencyBounds()
	}
	h := NewHistogram(bounds)
	h.comp, h.name = comp, name
	o.mu.Lock()
	o.hists = append(o.hists, h)
	o.mu.Unlock()
	return h
}

// Observe records one sample. Nil-safe.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i]++
	h.count++
	h.sum += v
	if h.count == 1 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// N returns the sample count.
func (h *Histogram) N() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the sample total.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Mean returns the arithmetic mean, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Min and Max return the exact observed extremes (0 with no samples).
func (h *Histogram) Min() uint64 {
	if h == nil {
		return 0
	}
	return h.min
}

// Max returns the largest observed sample.
func (h *Histogram) Max() uint64 {
	if h == nil {
		return 0
	}
	return h.max
}

// Bounds returns the bucket upper bounds (shared; do not mutate).
func (h *Histogram) Bounds() []uint64 {
	if h == nil {
		return nil
	}
	return h.bounds
}

// Counts returns the per-bucket counts (shared; do not mutate).
func (h *Histogram) Counts() []uint64 {
	if h == nil {
		return nil
	}
	return h.counts
}

// Quantile returns an upper-bound estimate of the q-th quantile (0..1): the
// bound of the bucket where the cumulative count crosses q, or the observed
// max for the overflow bucket.
func (h *Histogram) Quantile(q float64) uint64 {
	if h == nil || h.count == 0 {
		return 0
	}
	target := uint64(q * float64(h.count))
	if target < 1 {
		target = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			if i < len(h.bounds) {
				b := h.bounds[i]
				if b > h.max {
					b = h.max
				}
				return b
			}
			return h.max
		}
	}
	return h.max
}

// Merge folds other into h. Bounds must match (same registration source);
// mismatched merges are dropped rather than corrupting buckets.
func (h *Histogram) Merge(other *Histogram) {
	if h == nil || other == nil || other.count == 0 {
		return
	}
	if len(h.bounds) != len(other.bounds) {
		return
	}
	for i := range h.counts {
		h.counts[i] += other.counts[i]
	}
	if h.count == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	h.count += other.count
	h.sum += other.sum
}

// MergeDump folds a flattened HistogramDump (e.g. out of a job result) into
// h. Bounds must match; mismatched merges are dropped.
func (h *Histogram) MergeDump(d *HistogramDump) {
	if h == nil || d == nil || d.Count == 0 {
		return
	}
	if len(h.bounds) != len(d.Bounds) || len(h.counts) != len(d.Counts) {
		return
	}
	for i := range h.counts {
		h.counts[i] += d.Counts[i]
	}
	if h.count == 0 || d.Min < h.min {
		h.min = d.Min
	}
	if d.Max > h.max {
		h.max = d.Max
	}
	h.count += d.Count
	h.sum += d.Sum
}

// --------------------------------------------------------------- dump

// CounterDump is one flattened counter ("comp/name").
type CounterDump struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// HistogramDump is one flattened histogram with its full bucket layout (so
// dumps merge losslessly across jobs and serve Prometheus buckets).
type HistogramDump struct {
	Name   string   `json:"name"`
	Count  uint64   `json:"count"`
	Sum    uint64   `json:"sum"`
	Min    uint64   `json:"min"`
	Max    uint64   `json:"max"`
	P50    uint64   `json:"p50"`
	P95    uint64   `json:"p95"`
	P99    uint64   `json:"p99"`
	Bounds []uint64 `json:"bounds"`
	Counts []uint64 `json:"counts"`
}

// DumpAs flattens h into a named HistogramDump — the wire shape used by job
// results and the fleet dashboard. Nil-safe (returns a zero dump carrying
// only the name).
func (h *Histogram) DumpAs(name string) HistogramDump {
	if h == nil {
		return HistogramDump{Name: name}
	}
	return HistogramDump{
		Name: name, Count: h.N(), Sum: h.Sum(), Min: h.Min(), Max: h.Max(),
		P50: h.Quantile(0.50), P95: h.Quantile(0.95), P99: h.Quantile(0.99),
		Bounds: h.Bounds(), Counts: h.Counts(),
	}
}

// Dump is the flat aggregated view of an Obs family: every counter and
// histogram of the context and its children, same-name entries summed or
// merged, sorted by name. It marshals to flat JSON and renders as a table.
type Dump struct {
	Counters   []CounterDump   `json:"counters"`
	Histograms []HistogramDump `json:"histograms"`
}

// Dump aggregates the context and all its descendants. Call only after the
// goroutines driving child engines have joined. Nil-safe (returns an empty
// dump).
func (o *Obs) Dump() *Dump {
	d := &Dump{}
	if o == nil {
		return d
	}
	cvals := map[string]uint64{}
	hmerged := map[string]*Histogram{}
	o.collect(cvals, hmerged)

	for name, v := range cvals {
		d.Counters = append(d.Counters, CounterDump{Name: name, Value: v})
	}
	sort.Slice(d.Counters, func(i, j int) bool { return d.Counters[i].Name < d.Counters[j].Name })
	for name, h := range hmerged {
		d.Histograms = append(d.Histograms, HistogramDump{
			Name: name, Count: h.count, Sum: h.sum, Min: h.min, Max: h.max,
			P50: h.Quantile(0.50), P95: h.Quantile(0.95), P99: h.Quantile(0.99),
			Bounds: h.bounds, Counts: h.counts,
		})
	}
	sort.Slice(d.Histograms, func(i, j int) bool { return d.Histograms[i].Name < d.Histograms[j].Name })
	return d
}

// collect folds this context's registry into the aggregation maps, then
// recurses into children.
func (o *Obs) collect(cvals map[string]uint64, hmerged map[string]*Histogram) {
	o.mu.Lock()
	counters := o.counters
	hists := o.hists
	children := o.children
	o.mu.Unlock()
	for _, c := range counters {
		cvals[c.comp+"/"+c.name] += c.Value()
	}
	for _, h := range hists {
		name := h.comp + "/" + h.name
		m, ok := hmerged[name]
		if !ok {
			m = NewHistogram(h.bounds)
			hmerged[name] = m
		}
		m.Merge(h)
	}
	for _, c := range children {
		c.collect(cvals, hmerged)
	}
}

// Table renders the dump as an aligned human-readable table.
func (d *Dump) Table() string {
	var b strings.Builder
	w := 0
	for _, c := range d.Counters {
		if len(c.Name) > w {
			w = len(c.Name)
		}
	}
	for _, h := range d.Histograms {
		if len(h.Name) > w {
			w = len(h.Name)
		}
	}
	for _, c := range d.Counters {
		fmt.Fprintf(&b, "%-*s %12d\n", w, c.Name, c.Value)
	}
	for _, h := range d.Histograms {
		fmt.Fprintf(&b, "%-*s n=%d mean=%.1f p50=%d p95=%d p99=%d max=%d\n",
			w, h.Name, h.Count, float64(h.Sum)/maxF(1, float64(h.Count)),
			h.P50, h.P95, h.P99, h.Max)
	}
	return b.String()
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// --------------------------------------------------------------- digest

// Digest is the one-line per-run summary printed by cmd/experiments: enough
// to spot a sweep regression from CI logs without a full dump.
type Digest struct {
	EventsFired uint64 `json:"events_fired"`
	PeakPending int    `json:"peak_pending"`
	MediaReads  uint64 `json:"media_reads"`
	MediaWrites uint64 `json:"media_writes"`
	Migrations  uint64 `json:"migrations"`
}

// String renders the digest as one log line.
func (g Digest) String() string {
	return fmt.Sprintf("events=%d peak_pending=%d media_r=%d media_w=%d migrations=%d",
		g.EventsFired, g.PeakPending, g.MediaReads, g.MediaWrites, g.Migrations)
}

// Digest summarizes the family: engine totals plus the media/wear counters
// matched by registry-name suffix. Call after the owning goroutines join.
func (o *Obs) Digest() Digest {
	var g Digest
	if o == nil {
		return g
	}
	o.digestInto(&g)
	return g
}

func (o *Obs) digestInto(g *Digest) {
	o.mu.Lock()
	counters := o.counters
	engines := o.engines
	children := o.children
	o.mu.Unlock()
	for _, e := range engines {
		g.EventsFired += e.Fired()
		if p := e.PeakPending(); p > g.PeakPending {
			g.PeakPending = p
		}
	}
	for _, c := range counters {
		name := c.comp + "/" + c.name
		switch {
		case strings.HasSuffix(name, "media/reads"):
			g.MediaReads += c.Value()
		case strings.HasSuffix(name, "media/writes"):
			g.MediaWrites += c.Value()
		case strings.HasSuffix(name, "wear/migrations") || strings.HasSuffix(name, "optane/tails"):
			g.Migrations += c.Value()
		}
	}
	for _, c := range children {
		c.digestInto(g)
	}
}
