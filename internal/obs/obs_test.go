package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/sim"
)

// recorder is a minimal tracer: append-only event capture.
type recorder struct{ events []Event }

func (r *recorder) OnEvent(ev Event) { r.events = append(r.events, ev) }

func TestNilObsIsSafe(t *testing.T) {
	var o *Obs
	if o.Active() {
		t.Fatal("nil Obs reports active")
	}
	o.Emit(Event{Stage: StageMedia})
	o.RegisterPtr("c", "n", new(uint64))
	o.RegisterFunc("c", "n", func() uint64 { return 1 })
	o.AdoptEngine(sim.NewEngine())
	if c := o.Child(); c != nil {
		t.Fatal("Child of nil Obs must be nil")
	}
	o.Counter("c", "n").Inc() // nil counter, nil-safe
	if d := o.Dump(); len(d.Counters) != 0 || len(d.Histograms) != 0 {
		t.Fatal("nil Obs dump not empty")
	}
	if g := o.Digest(); g != (Digest{}) {
		t.Fatal("nil Obs digest not zero")
	}
}

func TestEmitReachesTracers(t *testing.T) {
	o := New()
	if o.Active() {
		t.Fatal("fresh Obs active before Attach")
	}
	rec := &recorder{}
	o.Attach(rec)
	if !o.Active() {
		t.Fatal("Obs inactive after Attach")
	}
	ev := Event{Now: 7, Stage: StageRMW, Pos: PosHit, Write: true, Comp: "dimm0", Addr: 0x100}
	o.Emit(ev)
	if len(rec.events) != 1 || rec.events[0] != ev {
		t.Fatalf("tracer got %+v, want [%+v]", rec.events, ev)
	}
}

func TestChildSharesHooksAtCreation(t *testing.T) {
	o := New()
	rec := &recorder{}
	o.Attach(rec)
	c := o.Child()
	c.Emit(Event{Stage: StageMedia, Pos: PosIssue, Comp: "m"})
	if len(rec.events) != 1 {
		t.Fatalf("child emit not delivered: %d events", len(rec.events))
	}

	// A tracer attached after Child does not propagate to existing children.
	late := New()
	c2 := late.Child()
	late.Attach(rec)
	c2.Emit(Event{Stage: StageMedia})
	if len(rec.events) != 1 {
		t.Fatal("late Attach leaked into a pre-existing child")
	}
}

func TestRegistryDumpAggregatesFamily(t *testing.T) {
	o := New()
	var v uint64 = 5
	o.RegisterPtr("imc0", "reads", &v)
	o.RegisterFunc("imc0", "writes", func() uint64 { return 11 })
	o.Counter("driver", "faults").Add(3)

	// Same-name counters across children sum.
	c1, c2 := o.Child(), o.Child()
	var a, b uint64 = 10, 32
	c1.RegisterPtr("dimm0", "media_writes", &a)
	c2.RegisterPtr("dimm0", "media_writes", &b)

	d := o.Dump()
	got := map[string]uint64{}
	for _, c := range d.Counters {
		got[c.Name] = c.Value
	}
	want := map[string]uint64{
		"imc0/reads": 5, "imc0/writes": 11, "driver/faults": 3,
		"dimm0/media_writes": 42,
	}
	for name, w := range want {
		if got[name] != w {
			t.Errorf("%s = %d, want %d", name, got[name], w)
		}
	}
	if len(d.Counters) != len(want) {
		t.Fatalf("dump has %d counters, want %d", len(d.Counters), len(want))
	}
	for i := 1; i < len(d.Counters); i++ {
		if d.Counters[i-1].Name >= d.Counters[i].Name {
			t.Fatalf("dump counters not sorted: %q before %q",
				d.Counters[i-1].Name, d.Counters[i].Name)
		}
	}
}

func TestHistogramQuantilesAndMerge(t *testing.T) {
	bounds := ExpBounds(1, 10) // 1,2,4,...,512
	h := NewHistogram(bounds)
	for v := uint64(1); v <= 100; v++ {
		h.Observe(v)
	}
	if h.N() != 100 || h.Min() != 1 || h.Max() != 100 {
		t.Fatalf("n=%d min=%d max=%d", h.N(), h.Min(), h.Max())
	}
	// Quantiles are bucket upper bounds: p50 of 1..100 lands in (32,64].
	if q := h.Quantile(0.50); q != 64 {
		t.Errorf("p50 = %d, want 64", q)
	}
	if q := h.Quantile(1.0); q < 100 {
		t.Errorf("p100 = %d, want >= 100", q)
	}

	other := NewHistogram(bounds)
	other.Observe(1000) // overflow bucket
	h.Merge(other)
	if h.N() != 101 || h.Max() != 1000 {
		t.Fatalf("after merge: n=%d max=%d", h.N(), h.Max())
	}

	// Round-trip through a dump and MergeDump.
	var dumped HistogramDump
	{
		o := New()
		hh := o.Histogram("c", "lat", bounds)
		hh.Observe(3)
		hh.Observe(7)
		d := o.Dump()
		if len(d.Histograms) != 1 {
			t.Fatalf("dump has %d histograms", len(d.Histograms))
		}
		dumped = d.Histograms[0]
	}
	agg := NewHistogram(dumped.Bounds)
	agg.MergeDump(&dumped)
	agg.MergeDump(&dumped)
	if agg.N() != 4 || agg.Sum() != 20 || agg.Min() != 3 || agg.Max() != 7 {
		t.Fatalf("MergeDump: n=%d sum=%d min=%d max=%d", agg.N(), agg.Sum(), agg.Min(), agg.Max())
	}
}

func TestDigestCountsEnginesAndMedia(t *testing.T) {
	o := New()
	eng := sim.NewEngine()
	fired := 0
	eng.Schedule(1, func() { fired++ })
	eng.Run()
	o.AdoptEngine(eng)

	c := o.Child()
	var mr, mw, mig uint64 = 10, 20, 2
	c.RegisterPtr("dimm0/media", "reads", &mr)
	c.RegisterPtr("dimm0/media", "writes", &mw)
	c.RegisterPtr("dimm0/wear", "migrations", &mig)

	g := o.Digest()
	if g.EventsFired == 0 {
		t.Error("digest saw no engine events")
	}
	if g.MediaReads != 10 || g.MediaWrites != 20 || g.Migrations != 2 {
		t.Errorf("digest = %+v", g)
	}
	if !strings.Contains(g.String(), "media_w=20") {
		t.Errorf("digest string %q", g.String())
	}
}

func TestLifecycleLimitAndNDJSON(t *testing.T) {
	lt := NewLifecycle(2) // 2 cycles per ns
	lt.Limit = 2
	o := New()
	o.Attach(lt)
	for i := 0; i < 5; i++ {
		o.Emit(Event{Now: sim.Cycle(i * 10), Stage: StageMedia, Pos: PosIssue, Comp: "m", Arg: 4})
	}
	if len(lt.Events()) != 2 || lt.Dropped() != 3 {
		t.Fatalf("events=%d dropped=%d", len(lt.Events()), lt.Dropped())
	}

	var buf bytes.Buffer
	if err := lt.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("NDJSON lines = %d", len(lines))
	}
	var line struct {
		Cycle uint64  `json:"cycle"`
		Ns    float64 `json:"ns"`
		Stage string  `json:"stage"`
		Pos   string  `json:"pos"`
	}
	if err := json.Unmarshal([]byte(lines[1]), &line); err != nil {
		t.Fatal(err)
	}
	if line.Cycle != 10 || line.Ns != 5 || line.Stage != "media" || line.Pos != "issue" {
		t.Fatalf("line = %+v", line)
	}
}

func TestChromeTraceShape(t *testing.T) {
	lt := NewLifecycle(1)
	o := New()
	o.Attach(lt)
	o.Emit(Event{Now: 0, Stage: StageRequest, Pos: PosIssue, Comp: "driver", Addr: 64})
	o.Emit(Event{Now: 1000, Stage: StageMedia, Pos: PosIssue, Comp: "dimm0/media", Addr: 64, Arg: 500})
	o.Emit(Event{Now: 2000, Stage: StageRequest, Pos: PosComplete, Comp: "driver", Addr: 64})

	var buf bytes.Buffer
	if err := lt.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Pid  int     `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, buf.String())
	}
	var slices, instants int
	for _, ev := range tf.TraceEvents {
		switch ev.Ph {
		case "X":
			slices++
			if ev.Name != "media issue" || ev.Dur != 0.5 {
				t.Errorf("slice %+v, want media issue dur=0.5us", ev)
			}
		case "i":
			instants++
		}
	}
	if slices != 1 || instants != 2 {
		t.Fatalf("slices=%d instants=%d, want 1/2", slices, instants)
	}

	// Determinism: a second export of the same trace is byte-identical.
	var buf2 bytes.Buffer
	if err := lt.WriteChromeTrace(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("re-export differs")
	}
}

// TestEmitDisabledAllocs pins design constraint #1: with no tracer attached,
// the Active() guard keeps the call site allocation-free (the Event struct is
// never built), including for a nil Obs.
func TestEmitDisabledAllocs(t *testing.T) {
	for _, o := range []*Obs{nil, New()} {
		allocs := testing.AllocsPerRun(1000, func() {
			if o.Active() {
				o.Emit(Event{Now: 1, Stage: StageMedia, Pos: PosIssue, Comp: "m", Addr: 64})
			}
		})
		if allocs != 0 {
			t.Fatalf("disabled emit allocates %.1f/op", allocs)
		}
	}
}

func BenchmarkEmitDisabled(b *testing.B) {
	o := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if o.Active() {
			o.Emit(Event{Now: sim.Cycle(i), Stage: StageMedia, Pos: PosIssue, Comp: "m"})
		}
	}
}

func BenchmarkEmitNilObs(b *testing.B) {
	var o *Obs
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if o.Active() {
			o.Emit(Event{Now: sim.Cycle(i), Stage: StageMedia, Pos: PosIssue, Comp: "m"})
		}
	}
}

func BenchmarkEmitEnabled(b *testing.B) {
	o := New()
	lt := NewLifecycle(1)
	lt.Limit = 1 << 30
	o.Attach(lt)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o.Emit(Event{Now: sim.Cycle(i), Stage: StageMedia, Pos: PosIssue, Comp: "m"})
	}
}
