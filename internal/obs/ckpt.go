package obs

import (
	"fmt"

	"repro/internal/ckpt"
)

// SaveState serializes the histogram's mutable sample state. Field order:
// bucket count, counts[], count, sum, min, max. Bounds are configuration
// (rebuilt by the owning component), not state, so they are asserted on
// load rather than carried.
func (h *Histogram) SaveState(enc *ckpt.Enc) {
	if h == nil {
		enc.U32(0)
		return
	}
	enc.U32(uint32(len(h.counts)))
	for _, c := range h.counts {
		enc.U64(c)
	}
	enc.U64(h.count)
	enc.U64(h.sum)
	enc.U64(h.min)
	enc.U64(h.max)
}

// LoadState restores sample state captured by SaveState into a histogram
// with the same bucket layout.
func (h *Histogram) LoadState(dec *ckpt.Dec) error {
	n := dec.Count(8)
	if err := dec.Err(); err != nil {
		return err
	}
	if h == nil {
		if n != 0 {
			return fmt.Errorf("%w: snapshot has %d histogram buckets, restoring into none", ckpt.ErrCorrupt, n)
		}
		return nil
	}
	if n != len(h.counts) {
		return fmt.Errorf("%w: snapshot has %d histogram buckets, this histogram %d",
			ckpt.ErrCorrupt, n, len(h.counts))
	}
	for i := range h.counts {
		h.counts[i] = dec.U64()
	}
	h.count = dec.U64()
	h.sum = dec.U64()
	h.min = dec.U64()
	h.max = dec.U64()
	return dec.Err()
}
