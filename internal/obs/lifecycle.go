package obs

import (
	"bufio"
	"encoding/json"
	"io"
)

// DefaultTraceLimit bounds lifecycle recording so a runaway traced job
// cannot exhaust service memory; events past the limit are counted, not
// stored.
const DefaultTraceLimit = 1 << 20

// Lifecycle records every hook firing in emission order: the per-access
// stage timeline (WPQ entry, LSQ drain, RMW hit/miss, AIT translate/stall,
// media issue/return, wear migration) that the exporters serialize.
type Lifecycle struct {
	// CyclesPerNano converts event cycles to wall nanoseconds in exports.
	// Zero is treated as 1 (cycles render as ns).
	CyclesPerNano float64
	// Limit caps stored events (DefaultTraceLimit when 0).
	Limit int

	events  []Event
	dropped uint64
}

// NewLifecycle returns a lifecycle tracer for a system clocked at cpn
// cycles per nanosecond.
func NewLifecycle(cpn float64) *Lifecycle {
	return &Lifecycle{CyclesPerNano: cpn}
}

// OnEvent implements Tracer.
func (l *Lifecycle) OnEvent(ev Event) {
	limit := l.Limit
	if limit == 0 {
		limit = DefaultTraceLimit
	}
	if len(l.events) >= limit {
		l.dropped++
		return
	}
	l.events = append(l.events, ev)
}

// Events returns the recorded events in emission order (owned by the
// tracer).
func (l *Lifecycle) Events() []Event { return l.events }

// Dropped returns how many events were discarded past the limit.
func (l *Lifecycle) Dropped() uint64 { return l.dropped }

// cpn returns the effective cycles-per-nanosecond conversion.
func (l *Lifecycle) cpn() float64 {
	if l.CyclesPerNano > 0 {
		return l.CyclesPerNano
	}
	return 1
}

// eventNDJSON is the NDJSON line shape: flat, self-describing, one event
// per line (the /v1/jobs/{id}/trace stream format).
type eventNDJSON struct {
	Cycle uint64  `json:"cycle"`
	Ns    float64 `json:"ns"`
	Stage string  `json:"stage"`
	Pos   string  `json:"pos"`
	Write bool    `json:"write,omitempty"`
	Comp  string  `json:"comp"`
	Addr  uint64  `json:"addr"`
	Arg   uint64  `json:"arg,omitempty"`
}

// WriteNDJSON streams the trace as newline-delimited JSON.
func (l *Lifecycle) WriteNDJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	cpn := l.cpn()
	for _, ev := range l.events {
		line := eventNDJSON{
			Cycle: uint64(ev.Now),
			Ns:    float64(ev.Now) / cpn,
			Stage: ev.Stage.String(),
			Pos:   ev.Pos.String(),
			Write: ev.Write,
			Comp:  ev.Comp,
			Addr:  ev.Addr,
			Arg:   ev.Arg,
		}
		if err := enc.Encode(line); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Chrome trace_event shapes. The exported file is the JSON Object Format
// ({"traceEvents": [...]}), loadable directly in chrome://tracing and
// Perfetto. Processes map to component instances, threads to stages, so the
// timeline reads as one swim-lane per structure per component.
type chromeEvent struct {
	Name string          `json:"name"`
	Ph   string          `json:"ph"`
	Ts   float64         `json:"ts"` // microseconds
	Dur  float64         `json:"dur,omitempty"`
	Pid  int             `json:"pid"`
	Tid  int             `json:"tid"`
	S    string          `json:"s,omitempty"` // instant scope
	Args json.RawMessage `json:"args,omitempty"`
}

type chromeMeta struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid,omitempty"`
	Args map[string]any `json:"args"`
}

type chromeArgs struct {
	Addr  uint64 `json:"addr"`
	Write bool   `json:"write"`
	Arg   uint64 `json:"arg,omitempty"`
}

// WriteChromeTrace serializes the trace in Chrome trace_event JSON.
// Durations (media accesses, wear migrations — PosIssue/PosMigrate events
// carrying a cycle span in Arg) render as complete ("X") slices; everything
// else renders as a thread-scoped instant ("i"). Timestamps are microseconds
// from cycle 0. The output is deterministic for a deterministic run: pids
// follow first-appearance order and encoding/json formats floats stably.
func (l *Lifecycle) WriteChromeTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"displayTimeUnit":"ns","traceEvents":[`); err != nil {
		return err
	}
	enc := json.NewEncoder(bw)
	enc.SetEscapeHTML(false)
	cpn := l.cpn()
	toUs := func(c uint64) float64 { return float64(c) / cpn / 1000 }

	pids := map[string]int{}
	var comps []string // first-appearance order, for deterministic output
	first := true
	write := func(v any) error {
		if !first {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
		}
		first = false
		// Encoder appends '\n'; harmless inside a JSON array.
		return enc.Encode(v)
	}

	for _, ev := range l.events {
		pid, ok := pids[ev.Comp]
		if !ok {
			pid = len(pids) + 1
			pids[ev.Comp] = pid
			comps = append(comps, ev.Comp)
			if err := write(chromeMeta{
				Name: "process_name", Ph: "M", Pid: pid,
				Args: map[string]any{"name": ev.Comp},
			}); err != nil {
				return err
			}
		}
		tid := int(ev.Stage) + 1
		args, err := json.Marshal(chromeArgs{Addr: ev.Addr, Write: ev.Write, Arg: ev.Arg})
		if err != nil {
			return err
		}
		ce := chromeEvent{
			Name: ev.Stage.String() + " " + ev.Pos.String(),
			Ts:   toUs(uint64(ev.Now)),
			Pid:  pid,
			Tid:  tid,
			Args: args,
		}
		if ev.Arg > 0 && (ev.Pos == PosIssue || ev.Pos == PosMigrate) {
			ce.Ph = "X"
			ce.Dur = toUs(ev.Arg)
		} else {
			ce.Ph = "i"
			ce.S = "t"
		}
		if err := write(ce); err != nil {
			return err
		}
	}

	// Name the stage threads once per process.
	for _, comp := range comps {
		pid := pids[comp]
		for s := Stage(0); s < numStages; s++ {
			if err := write(chromeMeta{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: int(s) + 1,
				Args: map[string]any{"name": s.String()},
			}); err != nil {
				return err
			}
		}
	}

	if _, err := bw.WriteString("]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
