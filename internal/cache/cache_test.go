package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestConfigSets(t *testing.T) {
	c := Config{SizeBytes: 32 << 10, Ways: 8, LineBytes: 64}
	if c.Sets() != 64 {
		t.Fatalf("Sets = %d, want 64", c.Sets())
	}
	tiny := Config{SizeBytes: 64, Ways: 8, LineBytes: 64}
	if tiny.Sets() != 1 {
		t.Fatalf("tiny Sets = %d, want 1", tiny.Sets())
	}
}

func TestAccessMissThenHit(t *testing.T) {
	c := New(Config{SizeBytes: 1024, Ways: 2, LineBytes: 64})
	if c.Access(0, false) {
		t.Fatal("cold access hit")
	}
	c.Fill(0, false)
	if !c.Access(0, false) {
		t.Fatal("filled line missed")
	}
	if !c.Access(63, false) {
		t.Fatal("same line different offset missed")
	}
	if c.Access(64, false) {
		t.Fatal("next line hit spuriously")
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	// 2-way, map three lines to the same set.
	c := New(Config{SizeBytes: 256, Ways: 2, LineBytes: 64}) // 2 sets
	setStride := uint64(128)                                 // lines 0, 128, 256 share set 0
	c.Fill(0, false)
	c.Fill(setStride, false)
	c.Access(0, false) // 0 most recent
	v, ev := c.Fill(2*setStride, false)
	if !ev || v.Addr != setStride {
		t.Fatalf("victim = %+v (%v), want addr %d", v, ev, setStride)
	}
	if !c.Peek(0) || !c.Peek(2*setStride) || c.Peek(setStride) {
		t.Fatal("residency wrong after eviction")
	}
}

func TestDirtyWriteBack(t *testing.T) {
	c := New(Config{SizeBytes: 128, Ways: 1, LineBytes: 64}) // 2 sets direct-mapped
	c.Fill(0, false)
	c.Access(0, true) // dirty it
	v, ev := c.Fill(128, false)
	if !ev || !v.Dirty || v.Addr != 0 {
		t.Fatalf("dirty eviction = %+v (%v)", v, ev)
	}
	if c.Stats().WriteBacks != 1 {
		t.Fatalf("WriteBacks = %d", c.Stats().WriteBacks)
	}
}

func TestFillDirtyFlag(t *testing.T) {
	c := New(Config{SizeBytes: 128, Ways: 1, LineBytes: 64})
	c.Fill(0, true) // write-allocate store miss
	v, ev := c.Fill(128, false)
	if !ev || !v.Dirty {
		t.Fatalf("write-allocated line not dirty on eviction: %+v %v", v, ev)
	}
}

func TestDuplicateFillRefreshes(t *testing.T) {
	c := New(Config{SizeBytes: 128, Ways: 2, LineBytes: 64}) // 1 set, 2 ways
	c.Fill(0, false)
	c.Fill(64, false)
	c.Fill(0, true) // duplicate: refresh + dirty
	v, ev := c.Fill(128, false)
	if !ev || v.Addr != 64 {
		t.Fatalf("victim = %+v, want 64 (0 was refreshed)", v)
	}
}

func TestInvalidate(t *testing.T) {
	c := New(Config{SizeBytes: 1024, Ways: 2, LineBytes: 64})
	c.Fill(0, false)
	c.Access(0, true)
	dirty, present := c.Invalidate(0)
	if !present || !dirty {
		t.Fatalf("Invalidate = %v,%v", dirty, present)
	}
	if c.Peek(0) {
		t.Fatal("line resident after invalidate")
	}
	if _, present := c.Invalidate(0); present {
		t.Fatal("double invalidate reported present")
	}
}

func TestVictimAddressRoundTrip(t *testing.T) {
	// The evicted address must map back to the same set/tag.
	cfg := Config{SizeBytes: 4096, Ways: 2, LineBytes: 64}
	f := func(addrRaw uint32) bool {
		c := New(cfg)
		addr := uint64(addrRaw) &^ 63
		c.Fill(addr, false)
		// Fill the same set with two more conflicting lines.
		stride := cfg.Sets() * cfg.LineBytes
		c.Fill(addr+stride, false)
		v, ev := c.Fill(addr+2*stride, false)
		if !ev {
			return false
		}
		return v.Addr == addr
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: occupancy never exceeds capacity, and a filled line hits until
// evicted.
func TestCacheInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		c := New(Config{SizeBytes: 2048, Ways: 4, LineBytes: 64})
		resident := map[uint64]bool{}
		for i := 0; i < 500; i++ {
			addr := rng.Uint64n(1<<14) &^ 63
			if c.Access(addr, rng.Intn(2) == 0) != resident[addr] {
				return false
			}
			if !resident[addr] {
				v, ev := c.Fill(addr, false)
				resident[addr] = true
				if ev {
					if !resident[v.Addr] {
						return false // evicted something not resident
					}
					delete(resident, v.Addr)
				}
			}
			if len(resident) > 32 { // 2048/64 lines capacity
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTLB(t *testing.T) {
	tlb := NewTLB(4, 2, 4096)
	if tlb.Lookup(0) {
		t.Fatal("cold TLB hit")
	}
	tlb.Insert(0)
	if !tlb.Lookup(100) { // same page
		t.Fatal("same-page lookup missed")
	}
	if tlb.Lookup(4096) {
		t.Fatal("next page hit")
	}
	if !tlb.Resident(0) || tlb.Resident(8192) {
		t.Fatal("Resident wrong")
	}
	if tlb.PageSize() != 4096 {
		t.Fatal("PageSize")
	}
	st := tlb.Stats()
	if st.Hits != 1 || st.Misses != 2 {
		t.Fatalf("TLB stats = %+v", st)
	}
}

func TestTLBCapacity(t *testing.T) {
	tlb := NewTLB(4, 4, 4096)
	for p := uint64(0); p < 5; p++ {
		tlb.Insert(p * 4096)
	}
	hits := 0
	for p := uint64(0); p < 5; p++ {
		if tlb.Resident(p * 4096) {
			hits++
		}
	}
	if hits != 4 {
		t.Fatalf("TLB holds %d entries, want 4", hits)
	}
}

func TestMissRate(t *testing.T) {
	var s Stats
	if s.MissRate() != 0 {
		t.Fatal("empty miss rate")
	}
	s = Stats{Hits: 3, Misses: 1}
	if s.MissRate() != 0.25 {
		t.Fatalf("MissRate = %v", s.MissRate())
	}
}

func TestResetStats(t *testing.T) {
	c := New(Config{SizeBytes: 1024, Ways: 2, LineBytes: 64})
	c.Access(0, false)
	c.ResetStats()
	if c.Stats().Misses != 0 {
		t.Fatal("ResetStats did not clear")
	}
}
