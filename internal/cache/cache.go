// Package cache provides the CPU-side cache and TLB structures of the
// full-system substrate (the gem5 stand-in): set-associative LRU caches with
// write-back write-allocate semantics, and TLBs built on the same structure.
// Timing is orchestrated by internal/cpu; these types are pure state.
package cache

// Config describes one cache level.
type Config struct {
	// SizeBytes is the total capacity.
	SizeBytes uint64
	// Ways is the associativity.
	Ways int
	// LineBytes is the line (block) size.
	LineBytes uint64
}

// Sets returns the set count.
func (c Config) Sets() uint64 {
	lines := c.SizeBytes / c.LineBytes
	sets := lines / uint64(c.Ways)
	if sets == 0 {
		sets = 1
	}
	return sets
}

// Stats counts cache activity.
type Stats struct {
	Hits       uint64
	Misses     uint64
	Evictions  uint64
	WriteBacks uint64
}

// MissRate returns misses / (hits + misses).
func (s Stats) MissRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Misses) / float64(total)
}

type line struct {
	tag     uint64
	valid   bool
	dirty   bool
	lastUse uint64
}

// Cache is a set-associative write-back cache. Addresses are physical.
type Cache struct {
	cfg   Config
	sets  [][]line
	nsets uint64
	tick  uint64
	stats Stats
}

// New builds a cache from cfg.
func New(cfg Config) *Cache {
	if cfg.LineBytes == 0 {
		cfg.LineBytes = 64
	}
	if cfg.Ways == 0 {
		cfg.Ways = 8
	}
	n := cfg.Sets()
	sets := make([][]line, n)
	for i := range sets {
		sets[i] = make([]line, cfg.Ways)
	}
	return &Cache{cfg: cfg, sets: sets, nsets: n}
}

// Cfg returns the configuration.
func (c *Cache) Cfg() Config { return c.cfg }

// Stats returns a snapshot of counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the counters (warm-up support).
func (c *Cache) ResetStats() { c.stats = Stats{} }

func (c *Cache) index(addr uint64) (set uint64, tag uint64) {
	block := addr / c.cfg.LineBytes
	return block % c.nsets, block / c.nsets
}

// Access looks up addr; write marks the line dirty on hit. It returns hit.
func (c *Cache) Access(addr uint64, write bool) bool {
	si, tag := c.index(addr)
	set := c.sets[si]
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			c.tick++
			set[i].lastUse = c.tick
			if write {
				set[i].dirty = true
			}
			c.stats.Hits++
			return true
		}
	}
	c.stats.Misses++
	return false
}

// Peek reports residency without LRU or stat effects.
func (c *Cache) Peek(addr uint64) bool {
	si, tag := c.index(addr)
	for _, l := range c.sets[si] {
		if l.valid && l.tag == tag {
			return true
		}
	}
	return false
}

// Victim describes a line displaced by Fill.
type Victim struct {
	Addr  uint64
	Dirty bool
}

// Fill installs the line containing addr (after a miss), returning the
// displaced victim if any. dirty pre-marks the new line (write-allocate
// store miss).
func (c *Cache) Fill(addr uint64, dirty bool) (v Victim, evicted bool) {
	si, tag := c.index(addr)
	set := c.sets[si]
	c.tick++
	// Already resident (duplicate fill): refresh only.
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lastUse = c.tick
			if dirty {
				set[i].dirty = true
			}
			return Victim{}, false
		}
	}
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			goto install
		}
		if set[i].lastUse < set[victim].lastUse {
			victim = i
		}
	}
	{
		old := set[victim]
		v = Victim{Addr: (old.tag*c.nsets + si) * c.cfg.LineBytes, Dirty: old.dirty}
		evicted = true
		c.stats.Evictions++
		if old.dirty {
			c.stats.WriteBacks++
		}
	}
install:
	set[victim] = line{tag: tag, valid: true, dirty: dirty, lastUse: c.tick}
	return v, evicted
}

// Invalidate removes the line containing addr, returning whether it was
// dirty (inclusive-hierarchy back-invalidation).
func (c *Cache) Invalidate(addr uint64) (wasDirty, wasPresent bool) {
	si, tag := c.index(addr)
	set := c.sets[si]
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			wasDirty = set[i].dirty
			set[i] = line{}
			return wasDirty, true
		}
	}
	return false, false
}

// TLB is a translation lookaside buffer: a cache keyed by page number. The
// simulation uses physical addressing, so the TLB tracks only hit/miss
// behavior and the prefill effect of Pre-translation.
type TLB struct {
	c        *Cache
	pageSize uint64
}

// NewTLB builds a TLB with the given entry count, associativity, and page
// size.
func NewTLB(entries, ways int, pageSize uint64) *TLB {
	return &TLB{
		c:        New(Config{SizeBytes: uint64(entries), Ways: ways, LineBytes: 1}),
		pageSize: pageSize,
	}
}

// Lookup probes the translation for addr.
func (t *TLB) Lookup(addr uint64) bool {
	return t.c.Access(addr/t.pageSize, false)
}

// Insert installs the translation for addr (after a walk, or via RLB
// prefill from Pre-translation).
func (t *TLB) Insert(addr uint64) {
	t.c.Fill(addr/t.pageSize, false)
}

// Resident reports presence without side effects.
func (t *TLB) Resident(addr uint64) bool {
	return t.c.Peek(addr / t.pageSize)
}

// Stats returns the hit/miss counters.
func (t *TLB) Stats() Stats { return t.c.Stats() }

// ResetStats zeroes the counters.
func (t *TLB) ResetStats() { t.c.ResetStats() }

// PageSize returns the translation granularity.
func (t *TLB) PageSize() uint64 { return t.pageSize }
