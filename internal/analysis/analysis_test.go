package analysis

import (
	"math"
	"strings"
	"testing"
)

func TestSeriesAddAndYAt(t *testing.T) {
	s := &Series{Name: "x"}
	s.Add(1, 10)
	s.Add(2, 20)
	s.Add(4, 40)
	if s.Len() != 3 {
		t.Fatal("Len")
	}
	if s.YAt(2) != 20 || s.YAt(3) != 40 || s.YAt(100) != 40 {
		t.Fatal("YAt wrong")
	}
	if !strings.Contains(s.String(), "x") {
		t.Fatal("String missing name")
	}
}

func TestKnees(t *testing.T) {
	s := &Series{}
	// Flat, then a 2x jump after x=8, then flat, then 1.5x after x=32.
	pts := [][2]float64{{1, 100}, {2, 100}, {4, 105}, {8, 100}, {16, 200},
		{32, 210}, {64, 315}}
	for _, p := range pts {
		s.Add(p[0], p[1])
	}
	ks := Knees(s, 1.4)
	if len(ks) != 2 || ks[0] != 8 || ks[1] != 32 {
		t.Fatalf("Knees = %v, want [8 32]", ks)
	}
	top := LargestKnees(s, 1)
	if len(top) != 1 || top[0] != 8 {
		t.Fatalf("LargestKnees = %v, want [8]", top)
	}
	both := LargestKnees(s, 2)
	if len(both) != 2 || both[0] != 8 || both[1] != 32 {
		t.Fatalf("LargestKnees(2) = %v", both)
	}
}

func TestAmplificationScore(t *testing.T) {
	if AmplificationScore(400, 200) != 2 {
		t.Fatal("score wrong")
	}
	if AmplificationScore(100, 0) != 0 {
		t.Fatal("zero fit should be 0")
	}
}

func TestGranularityFromScores(t *testing.T) {
	bs := []uint64{64, 128, 256, 512}
	scores := []float64{2.0, 1.5, 1.05, 1.01}
	if g := GranularityFromScores(bs, scores, 0.1); g != 256 {
		t.Fatalf("granularity = %d, want 256", g)
	}
	// Never drops: report the largest probed.
	if g := GranularityFromScores(bs, []float64{3, 3, 3, 3}, 0.1); g != 512 {
		t.Fatalf("granularity = %d, want 512", g)
	}
	if g := GranularityFromScores(nil, nil, 0.1); g != 0 {
		t.Fatalf("empty granularity = %d", g)
	}
}

func TestTails(t *testing.T) {
	lats := make([]float64, 100)
	for i := range lats {
		lats[i] = 100
	}
	lats[20] = 5000
	lats[60] = 6000
	st := Tails(lats, 8)
	if st.Tails != 2 {
		t.Fatalf("Tails = %d", st.Tails)
	}
	if len(st.Intervals) != 1 || st.Intervals[0] != 40 {
		t.Fatalf("Intervals = %v", st.Intervals)
	}
	if st.MeanInterval() != 40 {
		t.Fatal("MeanInterval")
	}
	if st.MeanNormal != 100 || st.MeanTail != 5500 {
		t.Fatalf("means = %v %v", st.MeanNormal, st.MeanTail)
	}
	if st.TailRatio != 0.02 {
		t.Fatalf("TailRatio = %v", st.TailRatio)
	}
}

func TestTailsEmpty(t *testing.T) {
	st := Tails(nil, 8)
	if st.N != 0 || st.Tails != 0 || st.MeanInterval() != 0 {
		t.Fatal("empty tails wrong")
	}
}

func TestAccuracy(t *testing.T) {
	if Accuracy(90, 100) != 0.9 {
		t.Fatal("0.9")
	}
	if Accuracy(110, 100) != 0.9 {
		t.Fatal("symmetric")
	}
	if Accuracy(300, 100) != 0 {
		t.Fatal("clamped")
	}
	if Accuracy(0, 0) != 1 {
		t.Fatal("both zero")
	}
	if Accuracy(1, 0) != 0 {
		t.Fatal("real zero")
	}
}

func TestMeanAndGeomeanAccuracy(t *testing.T) {
	sim := []float64{90, 80}
	real := []float64{100, 100}
	if got := MeanAccuracy(sim, real); math.Abs(got-0.85) > 1e-12 {
		t.Fatalf("MeanAccuracy = %v", got)
	}
	want := math.Sqrt(0.9 * 0.8)
	if got := GeomeanAccuracy(sim, real); math.Abs(got-want) > 1e-12 {
		t.Fatalf("GeomeanAccuracy = %v, want %v", got, want)
	}
	if MeanAccuracy(nil, nil) != 0 || GeomeanAccuracy(nil, nil) != 0 {
		t.Fatal("empty accuracy not 0")
	}
}

func TestLogSpace(t *testing.T) {
	got := LogSpace(64, 512, 2)
	want := []uint64{64, 128, 256, 512}
	if len(got) != len(want) {
		t.Fatalf("LogSpace = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("LogSpace = %v", got)
		}
	}
	if got := LogSpace(64, 1024, 4); len(got) != 3 {
		t.Fatalf("LogSpace step 4 = %v", got)
	}
}

func TestTableString(t *testing.T) {
	tab := &Table{Title: "demo", Columns: []string{"a", "bee"}}
	tab.AddRow("1", "2")
	tab.AddRow("333", "4")
	out := tab.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "333") {
		t.Fatalf("table render: %s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d", len(lines))
	}
}
