// Package analysis provides the curve-analysis primitives LENS uses to turn
// latency measurements into microarchitecture parameters — inflection (knee)
// detection, amplification scores, tail-latency counting — plus the
// series/table containers and accuracy metrics the experiment harness uses
// to regenerate the paper's figures.
package analysis

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Series is one plotted curve: y = f(x) with axis labels.
type Series struct {
	Name   string
	XLabel string
	YLabel string
	X      []float64
	Y      []float64
}

// Add appends one point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len returns the point count.
func (s *Series) Len() int { return len(s.X) }

// YAt returns the y value at the first x >= target (or the last y).
func (s *Series) YAt(target float64) float64 {
	for i, x := range s.X {
		if x >= target {
			return s.Y[i]
		}
	}
	if len(s.Y) == 0 {
		return 0
	}
	return s.Y[len(s.Y)-1]
}

// String renders the series as aligned columns.
func (s *Series) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s: %s vs %s\n", s.Name, s.YLabel, s.XLabel)
	for i := range s.X {
		fmt.Fprintf(&b, "%14.0f %12.2f\n", s.X[i], s.Y[i])
	}
	return b.String()
}

// Table is a printable rows-and-columns result (one per paper table, and the
// bar charts reduce to one too).
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends one row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Knees returns the x positions where y jumps by at least ratio between
// consecutive points of a monotone-x curve: the buffer-overflow inflection
// points of a LENS latency sweep. The returned x is the *last* point before
// the jump — the estimated structure capacity.
func Knees(s *Series, ratio float64) []float64 {
	var out []float64
	for i := 1; i < s.Len(); i++ {
		if s.Y[i-1] > 0 && s.Y[i]/s.Y[i-1] >= ratio {
			out = append(out, s.X[i-1])
		}
	}
	return out
}

// LargestKnees returns up to n knee positions ranked by jump magnitude,
// re-sorted in ascending x.
func LargestKnees(s *Series, n int) []float64 {
	type knee struct {
		x, jump float64
	}
	var ks []knee
	for i := 1; i < s.Len(); i++ {
		if s.Y[i-1] > 0 {
			ks = append(ks, knee{x: s.X[i-1], jump: s.Y[i] / s.Y[i-1]})
		}
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i].jump > ks[j].jump })
	if len(ks) > n {
		ks = ks[:n]
	}
	xs := make([]float64, len(ks))
	for i, k := range ks {
		xs[i] = k.x
	}
	sort.Float64s(xs)
	return xs
}

// AmplificationScore is LENS's counter-free amplification estimate: the
// ratio of the buffer-overflow latency to the non-overflow latency at the
// same PC-Block size. It is 1 exactly when the actual amplification is 1.
func AmplificationScore(overflowNs, fitNs float64) float64 {
	if fitNs <= 0 {
		return 0
	}
	return overflowNs / fitNs
}

// GranularityFromScores returns the first block size whose score drops to
// within tol of 1 — the access granularity of the probed structure.
func GranularityFromScores(blockSizes []uint64, scores []float64, tol float64) uint64 {
	for i, sc := range scores {
		if sc <= 1+tol {
			return blockSizes[i]
		}
	}
	if len(blockSizes) == 0 {
		return 0
	}
	return blockSizes[len(blockSizes)-1]
}

// ScoreKnees finds the block sizes where an amplification-score curve stops
// falling: positions i whose drop from the previous point is at least
// minDrop while the next drop is below it. Each knee marks one structure's
// access granularity (a single sweep exposes every level it spans).
func ScoreKnees(blockSizes []uint64, scores []float64, minDrop float64) []uint64 {
	var out []uint64
	n := len(scores)
	if len(blockSizes) < n {
		n = len(blockSizes)
	}
	for i := 1; i < n; i++ {
		drop := scores[i-1] - scores[i]
		nextDrop := 0.0
		if i+1 < n {
			nextDrop = scores[i] - scores[i+1]
		}
		if drop >= minDrop && nextDrop < minDrop {
			out = append(out, blockSizes[i])
		}
	}
	return out
}

// TailStats summarizes tail-latency behavior of an iteration-latency trace.
type TailStats struct {
	N          int
	Tails      int
	TailRatio  float64 // tails per iteration
	MeanNormal float64
	MeanTail   float64
	// Intervals are the iteration gaps between consecutive tails.
	Intervals []int
}

// Tails classifies iterations with latency > factor x median as tails and
// returns interval statistics (the policy prober's migration analysis).
func Tails(latsNs []float64, factor float64) TailStats {
	st := TailStats{N: len(latsNs)}
	if len(latsNs) == 0 {
		return st
	}
	sorted := append([]float64(nil), latsNs...)
	sort.Float64s(sorted)
	median := sorted[len(sorted)/2]
	threshold := median * factor
	last := -1
	var sumN, sumT float64
	var nN, nT int
	for i, l := range latsNs {
		if l > threshold {
			st.Tails++
			sumT += l
			nT++
			if last >= 0 {
				st.Intervals = append(st.Intervals, i-last)
			}
			last = i
		} else {
			sumN += l
			nN++
		}
	}
	if nN > 0 {
		st.MeanNormal = sumN / float64(nN)
	}
	if nT > 0 {
		st.MeanTail = sumT / float64(nT)
	}
	st.TailRatio = float64(st.Tails) / float64(st.N)
	return st
}

// MeanInterval returns the average tail interval (0 when < 2 tails).
func (t TailStats) MeanInterval() float64 {
	if len(t.Intervals) == 0 {
		return 0
	}
	sum := 0
	for _, v := range t.Intervals {
		sum += v
	}
	return float64(sum) / float64(len(t.Intervals))
}

// Accuracy returns the paper's point accuracy: 1 - |sim-real|/real, clamped
// to [0, 1].
func Accuracy(sim, real float64) float64 {
	if real == 0 {
		if sim == 0 {
			return 1
		}
		return 0
	}
	acc := 1 - math.Abs(sim-real)/math.Abs(real)
	if acc < 0 {
		return 0
	}
	return acc
}

// MeanAccuracy averages pointwise accuracy over paired curves (arithmetic
// mean, as Figure 3a/9e).
func MeanAccuracy(sim, real []float64) float64 {
	n := len(sim)
	if len(real) < n {
		n = len(real)
	}
	if n == 0 {
		return 0
	}
	var sum float64
	for i := 0; i < n; i++ {
		sum += Accuracy(sim[i], real[i])
	}
	return sum / float64(n)
}

// GeomeanAccuracy is the geometric-mean variant used by Figure 11d.
func GeomeanAccuracy(sim, real []float64) float64 {
	n := len(sim)
	if len(real) < n {
		n = len(real)
	}
	if n == 0 {
		return 0
	}
	prod := 0.0
	cnt := 0
	for i := 0; i < n; i++ {
		a := Accuracy(sim[i], real[i])
		if a > 0 {
			prod += math.Log(a)
			cnt++
		}
	}
	if cnt == 0 {
		return 0
	}
	return math.Exp(prod / float64(cnt))
}

// LogSpace returns powers-of-two byte sizes from lo to hi inclusive,
// multiplying by step each time (step >= 2).
func LogSpace(lo, hi uint64, step uint64) []uint64 {
	if step < 2 {
		step = 2
	}
	var out []uint64
	for s := lo; s <= hi; s *= step {
		out = append(out, s)
	}
	return out
}
