package analysis

import (
	"strings"
	"testing"
)

func sampleSeries() *Series {
	s := &Series{Name: "demo", XLabel: "bytes", YLabel: "ns"}
	for i := 0; i < 10; i++ {
		s.Add(float64(uint64(64)<<i), float64(100+i*30))
	}
	return s
}

func TestPlotRendersGrid(t *testing.T) {
	out := Plot([]*Series{sampleSeries()}, DefaultPlotOptions())
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// legend + height rows + axis + x labels + axis names.
	want := 1 + 16 + 1 + 1 + 1
	if len(lines) != want {
		t.Fatalf("got %d lines, want %d:\n%s", len(lines), want, out)
	}
	if !strings.Contains(lines[0], "demo") {
		t.Fatal("legend missing")
	}
	if !strings.Contains(out, "*") {
		t.Fatal("no markers plotted")
	}
	if !strings.Contains(out, "x: bytes, y: ns") {
		t.Fatal("axis labels missing")
	}
}

func TestPlotMultipleSeriesMarkers(t *testing.T) {
	a := sampleSeries()
	b := &Series{Name: "other"}
	for i := 0; i < 10; i++ {
		b.Add(float64(uint64(64)<<i), float64(400-i*20))
	}
	out := Plot([]*Series{a, b}, PlotOptions{Width: 40, Height: 10, LogX: true})
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatalf("markers missing:\n%s", out)
	}
}

func TestPlotLogScales(t *testing.T) {
	s := &Series{Name: "tails"}
	for i := 0; i < 50; i++ {
		y := 100.0
		if i%10 == 0 {
			y = 50000
		}
		s.Add(float64(i), y)
	}
	out := Plot([]*Series{s}, PlotOptions{Width: 50, Height: 8, LogY: true})
	if !strings.Contains(out, "5e+04") && !strings.Contains(out, "50000") {
		t.Fatalf("log-y max label missing:\n%s", out)
	}
}

func TestPlotEmptyAndDegenerate(t *testing.T) {
	if out := Plot(nil, DefaultPlotOptions()); !strings.Contains(out, "no data") {
		t.Fatal("empty plot should say no data")
	}
	// Single point: axes degenerate but must not panic or divide by zero.
	s := &Series{Name: "pt"}
	s.Add(5, 7)
	out := Plot([]*Series{s}, PlotOptions{Width: 10, Height: 4})
	if !strings.Contains(out, "*") {
		t.Fatalf("single point not plotted:\n%s", out)
	}
}

func TestPlotClampsTinyDimensions(t *testing.T) {
	s := sampleSeries()
	out := Plot([]*Series{s}, PlotOptions{Width: 1, Height: 1})
	if out == "" {
		t.Fatal("tiny plot empty")
	}
}
