package analysis

import (
	"fmt"
	"math"
	"strings"
)

// PlotOptions controls ASCII rendering.
type PlotOptions struct {
	// Width and Height are the plot area dimensions in characters.
	Width  int
	Height int
	// LogX plots the x axis on a log2 scale (region-size sweeps).
	LogX bool
	// LogY plots the y axis on a log10 scale (tail-latency traces).
	LogY bool
}

// DefaultPlotOptions fits a terminal.
func DefaultPlotOptions() PlotOptions {
	return PlotOptions{Width: 64, Height: 16}
}

// markers distinguish up to six overlaid series.
var markers = []byte{'*', 'o', '+', 'x', '#', '@'}

// Plot renders one or more series as an ASCII chart with a legend, shared
// axes, and min/max labels. Series are overlaid in marker order.
func Plot(series []*Series, opt PlotOptions) string {
	if opt.Width < 8 {
		opt.Width = 8
	}
	if opt.Height < 4 {
		opt.Height = 4
	}
	var xMin, xMax, yMin, yMax float64
	first := true
	for _, s := range series {
		for i := range s.X {
			x, y := opt.tx(s.X[i]), opt.ty(s.Y[i])
			if first {
				xMin, xMax, yMin, yMax = x, x, y, y
				first = false
				continue
			}
			xMin, xMax = math.Min(xMin, x), math.Max(xMax, x)
			yMin, yMax = math.Min(yMin, y), math.Max(yMax, y)
		}
	}
	if first {
		return "(no data)\n"
	}
	if xMax == xMin {
		xMax = xMin + 1
	}
	if yMax == yMin {
		yMax = yMin + 1
	}

	grid := make([][]byte, opt.Height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", opt.Width))
	}
	for si, s := range series {
		m := markers[si%len(markers)]
		for i := range s.X {
			cx := int((opt.tx(s.X[i]) - xMin) / (xMax - xMin) * float64(opt.Width-1))
			cy := int((opt.ty(s.Y[i]) - yMin) / (yMax - yMin) * float64(opt.Height-1))
			row := opt.Height - 1 - cy
			grid[row][cx] = m
		}
	}

	var b strings.Builder
	// Legend.
	for si, s := range series {
		if si > 0 {
			b.WriteString("   ")
		}
		fmt.Fprintf(&b, "%c %s", markers[si%len(markers)], s.Name)
	}
	b.WriteByte('\n')
	// Y-axis labels on the first and last rows.
	topLabel := fmt.Sprintf("%.4g", opt.invY(yMax))
	botLabel := fmt.Sprintf("%.4g", opt.invY(yMin))
	labelW := len(topLabel)
	if len(botLabel) > labelW {
		labelW = len(botLabel)
	}
	for r := range grid {
		switch r {
		case 0:
			fmt.Fprintf(&b, "%*s |%s\n", labelW, topLabel, grid[r])
		case opt.Height - 1:
			fmt.Fprintf(&b, "%*s |%s\n", labelW, botLabel, grid[r])
		default:
			fmt.Fprintf(&b, "%*s |%s\n", labelW, "", grid[r])
		}
	}
	fmt.Fprintf(&b, "%*s +%s\n", labelW, "", strings.Repeat("-", opt.Width))
	fmt.Fprintf(&b, "%*s  %-*.4g%*.4g\n", labelW, "",
		opt.Width/2, opt.invX(xMin), opt.Width-opt.Width/2, opt.invX(xMax))
	if len(series) > 0 && (series[0].XLabel != "" || series[0].YLabel != "") {
		fmt.Fprintf(&b, "%*s  x: %s, y: %s\n", labelW, "", series[0].XLabel, series[0].YLabel)
	}
	return b.String()
}

func (o PlotOptions) tx(x float64) float64 {
	if o.LogX && x > 0 {
		return math.Log2(x)
	}
	return x
}

func (o PlotOptions) ty(y float64) float64 {
	if o.LogY && y > 0 {
		return math.Log10(y)
	}
	return y
}

func (o PlotOptions) invX(x float64) float64 {
	if o.LogX {
		return math.Exp2(x)
	}
	return x
}

func (o PlotOptions) invY(y float64) float64 {
	if o.LogY {
		return math.Pow(10, y)
	}
	return y
}
