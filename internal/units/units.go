// Package units parses human-friendly byte sizes ("64", "4K", "16M", "2GiB").
// It is the single size-suffix parser shared by the CLI tools (cmd/vans,
// cmd/tracegen) and the nvmserved job API, replacing the per-command copies.
package units

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// MaxBytes is the largest size ParseBytes accepts: 2^63-1. Sizes are consumed
// as offsets and capacities that get mixed with signed arithmetic downstream,
// so anything above int64 range is rejected as out of range rather than left
// to wrap.
const MaxBytes = math.MaxInt64

// ParseBytes parses a byte size: an unsigned integer with an optional
// binary-scale suffix K, M, G, T, P, or E (case-insensitive), each optionally
// followed by "B" or "iB" ("4K" == "4KB" == "4KiB" == 4096). A bare "B"
// suffix is also accepted ("64B" == 64). Negative sizes and sizes above
// 2^63-1 (e.g. "20E") are rejected with explicit errors.
func ParseBytes(s string) (uint64, error) {
	t := strings.ToUpper(strings.TrimSpace(s))
	if strings.HasPrefix(t, "-") {
		return 0, fmt.Errorf("units: size %q is negative", s)
	}
	if strings.HasPrefix(t, "+") {
		return 0, fmt.Errorf("units: size %q has an explicit sign", s)
	}
	i := 0
	for i < len(t) && t[i] >= '0' && t[i] <= '9' {
		i++
	}
	if i == 0 {
		return 0, fmt.Errorf("units: size %q has no leading number", s)
	}
	v, err := strconv.ParseUint(t[:i], 10, 64)
	if err != nil {
		return 0, fmt.Errorf("units: bad number in size %q: %v", s, err)
	}
	var mult uint64
	switch t[i:] {
	case "", "B":
		mult = 1
	case "K", "KB", "KIB":
		mult = 1 << 10
	case "M", "MB", "MIB":
		mult = 1 << 20
	case "G", "GB", "GIB":
		mult = 1 << 30
	case "T", "TB", "TIB":
		mult = 1 << 40
	case "P", "PB", "PIB":
		mult = 1 << 50
	case "E", "EB", "EIB":
		mult = 1 << 60
	default:
		return 0, fmt.Errorf("units: unknown size suffix %q in %q", t[i:], s)
	}
	if v > MaxBytes/mult {
		return 0, fmt.Errorf("units: size %q exceeds 2^63-1 bytes", s)
	}
	return v * mult, nil
}

// ParseBytesDefault parses s, substituting def for the empty string.
func ParseBytesDefault(s string, def uint64) (uint64, error) {
	if strings.TrimSpace(s) == "" {
		return def, nil
	}
	return ParseBytes(s)
}
