package units

import (
	"strings"
	"testing"
)

func TestParseBytes(t *testing.T) {
	cases := []struct {
		in   string
		want uint64
	}{
		{"0", 0},
		{"64", 64},
		{"64B", 64},
		{"1K", 1 << 10},
		{"1k", 1 << 10},
		{"4KB", 4 << 10},
		{"4KiB", 4 << 10},
		{"16M", 16 << 20},
		{"16MiB", 16 << 20},
		{"2G", 2 << 30},
		{"2gb", 2 << 30},
		{"1T", 1 << 40},
		{" 8M ", 8 << 20},
		{"1P", 1 << 50},
		{"1E", 1 << 60},
		{"7E", 7 << 60}, // largest whole-exbibyte size under 2^63-1
		{"9223372036854775807", 1<<63 - 1},
	}
	for _, c := range cases {
		got, err := ParseBytes(c.in)
		if err != nil {
			t.Errorf("ParseBytes(%q): unexpected error %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseBytes(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestParseBytesErrors(t *testing.T) {
	cases := []struct {
		in      string
		errLike string // substring the error message must carry
	}{
		{"", "no leading number"},
		{"K", "no leading number"},
		{"B", "no leading number"},
		{"12X", "unknown size suffix"},
		{"1KK", "unknown size suffix"},
		{"1.5M", "unknown size suffix"},
		// Negative and signed sizes get explicit rejections, not a generic
		// parse failure.
		{"-4K", "negative"},
		{"-1", "negative"},
		{" -8M", "negative"},
		{"+4K", "explicit sign"},
		// Anything above 2^63-1 is out of range, whether the overflow comes
		// from the suffix multiply or the bare number itself.
		{"20E", "exceeds 2^63-1"},
		{"8E", "exceeds 2^63-1"},
		{"9223372036854775808", "exceeds 2^63-1"}, // 2^63 exactly
		{"20000000000G", "exceeds 2^63-1"},
		{"999999999999999999999", "bad number"}, // overflows uint64 in ParseUint
	}
	for _, c := range cases {
		v, err := ParseBytes(c.in)
		if err == nil {
			t.Errorf("ParseBytes(%q) = %d, want error", c.in, v)
			continue
		}
		if !strings.Contains(err.Error(), c.errLike) {
			t.Errorf("ParseBytes(%q) error = %q, want it to mention %q", c.in, err, c.errLike)
		}
	}
}

func TestParseBytesDefault(t *testing.T) {
	if v, err := ParseBytesDefault("", 42); err != nil || v != 42 {
		t.Errorf("ParseBytesDefault(\"\", 42) = %d, %v; want 42, nil", v, err)
	}
	if v, err := ParseBytesDefault("2K", 42); err != nil || v != 2048 {
		t.Errorf("ParseBytesDefault(\"2K\", 42) = %d, %v; want 2048, nil", v, err)
	}
	if _, err := ParseBytesDefault("junk", 42); err == nil {
		t.Error("ParseBytesDefault(\"junk\", 42): want error")
	}
}
