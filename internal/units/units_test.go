package units

import "testing"

func TestParseBytes(t *testing.T) {
	cases := []struct {
		in   string
		want uint64
	}{
		{"0", 0},
		{"64", 64},
		{"64B", 64},
		{"1K", 1 << 10},
		{"1k", 1 << 10},
		{"4KB", 4 << 10},
		{"4KiB", 4 << 10},
		{"16M", 16 << 20},
		{"16MiB", 16 << 20},
		{"2G", 2 << 30},
		{"2gb", 2 << 30},
		{"1T", 1 << 40},
		{" 8M ", 8 << 20},
	}
	for _, c := range cases {
		got, err := ParseBytes(c.in)
		if err != nil {
			t.Errorf("ParseBytes(%q): unexpected error %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseBytes(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestParseBytesErrors(t *testing.T) {
	for _, in := range []string{"", "K", "B", "12X", "1KK", "-4K", "1.5M", "999999999999999999999", "20000000000G"} {
		if v, err := ParseBytes(in); err == nil {
			t.Errorf("ParseBytes(%q) = %d, want error", in, v)
		}
	}
}

func TestParseBytesDefault(t *testing.T) {
	if v, err := ParseBytesDefault("", 42); err != nil || v != 42 {
		t.Errorf("ParseBytesDefault(\"\", 42) = %d, %v; want 42, nil", v, err)
	}
	if v, err := ParseBytesDefault("2K", 42); err != nil || v != 2048 {
		t.Errorf("ParseBytesDefault(\"2K\", 42) = %d, %v; want 2048, nil", v, err)
	}
	if _, err := ParseBytesDefault("junk", 42); err == nil {
		t.Error("ParseBytesDefault(\"junk\", 42): want error")
	}
}
