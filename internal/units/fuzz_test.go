package units

import (
	"strings"
	"testing"
)

// isASCII reports whether s is pure ASCII; the case-insensitivity invariant
// is only claimed there (Unicode case folding is not round-trippable).
func isASCII(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] >= 0x80 {
			return false
		}
	}
	return true
}

// FuzzParseSize hammers the size parser with arbitrary inputs. Invariants:
// never panic, never accept a value above MaxBytes, parse deterministically,
// and treat suffix case and surrounding whitespace as insignificant.
func FuzzParseSize(f *testing.F) {
	for _, seed := range []string{
		"", "0", "64", "64B", "4K", "4KiB", "16M", "2G", "1T", "1P", "7E",
		"20E", "-4K", "+1M", " 8M ", "1KK", "12X", "1.5M",
		"9223372036854775807", "9223372036854775808", "999999999999999999999",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		v, err := ParseBytes(s)
		if err != nil {
			if v != 0 {
				t.Fatalf("ParseBytes(%q) returned %d alongside error %v", s, v, err)
			}
			return
		}
		if v > MaxBytes {
			t.Fatalf("ParseBytes(%q) = %d, above MaxBytes", s, v)
		}
		again, err2 := ParseBytes(s)
		if err2 != nil || again != v {
			t.Fatalf("ParseBytes(%q) not deterministic: %d,%v then %d,%v", s, v, err, again, err2)
		}
		if isASCII(s) {
			if lower, err3 := ParseBytes(strings.ToLower(s)); err3 != nil || lower != v {
				t.Fatalf("ParseBytes case-sensitive on %q: %d,%v vs %d,%v", s, v, err, lower, err3)
			}
		}
		if trimmed, err4 := ParseBytes(" " + s + " "); err4 != nil || trimmed != v {
			t.Fatalf("ParseBytes whitespace-sensitive on %q: %d,%v vs %d,%v", s, v, err, trimmed, err4)
		}
	})
}
