// Package core is the library façade: the entry points a downstream user
// needs to build the paper's systems without navigating the subsystem
// packages. It wires configuration presets (Tables III and V), system
// construction (VANS in its operating modes, the baselines, the empirical
// Optane reference), LENS characterization, and the experiment registry.
package core

import (
	"repro/internal/analysis"
	"repro/internal/baseline"
	"repro/internal/exp"
	"repro/internal/lens"
	"repro/internal/mem"
	"repro/internal/optane"
	"repro/internal/vans"
)

// Version identifies the reproduction release.
const Version = "1.0.0"

// Paper identifies the reproduced publication.
const Paper = "Characterizing and Modeling Non-Volatile Memory Systems (MICRO 2020)"

// SystemKind selects a memory system to build.
type SystemKind string

const (
	// VANS is the validated cycle-accurate NVRAM simulator (App Direct).
	VANS SystemKind = "vans"
	// VANSMemoryMode is VANS with the DRAM near cache (Memory mode).
	VANSMemoryMode SystemKind = "vans-memory"
	// OptaneReference is the empirical model of the measured real machine.
	OptaneReference SystemKind = "optane"
	// PMEP is the delay-injection emulator baseline.
	PMEP SystemKind = "pmep"
	// RamulatorPCM is the slower-DRAM PCM-model baseline.
	RamulatorPCM SystemKind = "ramulator-pcm"
	// RamulatorDDR4 is the conventional DDR4 simulator baseline.
	RamulatorDDR4 SystemKind = "ramulator-ddr4"
	// DRAMSim2DDR3 is the DDR3-timed simulator baseline.
	DRAMSim2DDR3 SystemKind = "dramsim2-ddr3"
)

// SystemKinds lists every buildable system.
func SystemKinds() []SystemKind {
	return []SystemKind{VANS, VANSMemoryMode, OptaneReference, PMEP,
		RamulatorPCM, RamulatorDDR4, DRAMSim2DDR3}
}

// Options tunes BuildSystem beyond the defaults.
type Options struct {
	// DIMMs is the NVDIMM count (default 1).
	DIMMs int
	// Interleaved enables 4KB multi-DIMM interleaving.
	Interleaved bool
	// MediaBytes overrides the NVRAM media capacity.
	MediaBytes uint64
	// Functional enables end-to-end data-content tracking.
	Functional bool
	// Seed drives stochastic behavior (default 1).
	Seed uint64
}

// BuildVANS constructs a VANS instance with the Table V configuration.
func BuildVANS(o Options) *vans.System {
	cfg := vans.DefaultConfig()
	applyOptions(&cfg, o)
	return vans.New(cfg)
}

// BuildSystem constructs any of the supported systems.
func BuildSystem(kind SystemKind, o Options) mem.System {
	if o.Seed == 0 {
		o.Seed = 1
	}
	switch kind {
	case VANS:
		return BuildVANS(o)
	case VANSMemoryMode:
		cfg := vans.DefaultConfig()
		applyOptions(&cfg, o)
		cfg.Mode = vans.MemoryMode
		return vans.New(cfg)
	case OptaneReference:
		d := o.DIMMs
		if d == 0 {
			d = 1
		}
		return optane.New(optane.Config{
			Params: optane.DefaultParams(), DIMMs: d,
			Interleaved: o.Interleaved, Seed: o.Seed})
	case PMEP:
		return baseline.NewPMEP(baseline.DefaultPMEP(), o.Seed)
	case RamulatorPCM:
		return baseline.NewSlowDRAM(baseline.RamulatorPCM)
	case RamulatorDDR4:
		return baseline.NewSlowDRAM(baseline.RamulatorDDR4)
	case DRAMSim2DDR3:
		return baseline.NewSlowDRAM(baseline.DRAMSim2DDR3)
	default:
		return nil
	}
}

func applyOptions(cfg *vans.Config, o Options) {
	if o.DIMMs > 0 {
		cfg.DIMMs = o.DIMMs
	}
	cfg.Interleaved = o.Interleaved
	if o.MediaBytes > 0 {
		cfg.NV.Media.Capacity = o.MediaBytes
	}
	cfg.Functional = o.Functional
	if o.Seed > 0 {
		cfg.Seed = o.Seed
	}
}

// Characterize runs the full LENS prober suite against any system
// constructor and returns the recovered parameter report.
func Characterize(mk func() mem.System, quick bool) lens.Characterization {
	sc := exp.PaperScale()
	if quick {
		sc = exp.QuickScale()
	}
	bp := lens.BufferProberConfig{
		Regions:      sc.Regions,
		BlockSizes:   sc.BlockSizes,
		KneeRatio:    1.25,
		MaxReadKnees: 2,
		Options:      sc.Opt,
	}
	pc := lens.PolicyProberConfig{
		OverwriteIters: sc.OverwriteIters,
		TailFactor:     8,
		Regions:        analysis.LogSpace(256, 8<<10, 2),
		SeqSizes:       analysis.LogSpace(1<<10, 32<<10, 2),
		Options:        sc.Opt,
	}
	return lens.Characterize(lens.MakeSystem(mk), bp, pc)
}

// Experiments lists the regenerable paper artifacts.
func Experiments() []string { return exp.IDs() }

// RunExperiment regenerates one table or figure by id.
func RunExperiment(id string, quick bool) (*exp.Result, error) {
	sc := exp.PaperScale()
	if quick {
		sc = exp.QuickScale()
	}
	return exp.Run(id, sc)
}
