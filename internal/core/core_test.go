package core

import (
	"strings"
	"testing"

	"repro/internal/mem"
)

func TestBuildEverySystemKind(t *testing.T) {
	for _, kind := range SystemKinds() {
		sys := BuildSystem(kind, Options{MediaBytes: 32 << 20})
		if sys == nil {
			t.Fatalf("BuildSystem(%q) = nil", kind)
		}
		d := mem.NewDriver(sys)
		lats := d.RunChain([]mem.Access{
			{Op: mem.OpRead, Addr: 1 << 20, Size: 64},
			{Op: mem.OpWriteNT, Addr: 1 << 20, Size: 64},
		})
		if lats[0] == 0 {
			t.Errorf("%s: zero read latency", kind)
		}
		d.Fence()
	}
	if BuildSystem("bogus", Options{}) != nil {
		t.Fatal("bogus kind built")
	}
}

func TestBuildVANSOptions(t *testing.T) {
	s := BuildVANS(Options{DIMMs: 6, Interleaved: true, MediaBytes: 32 << 20, Seed: 9})
	if len(s.DIMMs()) != 6 {
		t.Fatalf("DIMMs = %d", len(s.DIMMs()))
	}
	if !s.Config().Interleaved {
		t.Fatal("not interleaved")
	}
}

func TestExperimentsRegistry(t *testing.T) {
	ids := Experiments()
	if len(ids) < 30 {
		t.Fatalf("only %d experiments", len(ids))
	}
	r, err := RunExperiment("tab5", true)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.String(), "RMW Buffer") {
		t.Fatal("tab5 missing RMW Buffer row")
	}
	if _, err := RunExperiment("nope", true); err == nil {
		t.Fatal("unknown experiment did not error")
	}
}

func TestCharacterizeFacade(t *testing.T) {
	// Characterize a scaled VANS via the façade.
	mk := func() mem.System {
		return BuildVANS(Options{MediaBytes: 64 << 20})
	}
	// Quick mode still probes full-size structures on the default config,
	// which is slow; use the façade only for the signature here by probing
	// the Optane reference (cheap behavioral model).
	_ = mk
	c := Characterize(func() mem.System {
		return BuildSystem(OptaneReference, Options{})
	}, true)
	if len(c.Buffers.ReadBufferBytes) == 0 {
		t.Fatal("no buffers recovered")
	}
	if !strings.Contains(c.Report(), "Read buffers") {
		t.Fatal("report malformed")
	}
}

func TestVersionAndPaper(t *testing.T) {
	if Version == "" || !strings.Contains(Paper, "MICRO 2020") {
		t.Fatal("identity constants wrong")
	}
}
