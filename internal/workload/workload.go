// Package workload generates the synthetic instruction streams that stand in
// for the paper's benchmark binaries: SPEC CPU 2006/2017 workloads matched
// to Table IV's LLC MPKI and footprint statistics, and the cloud/persistent-
// memory workloads of Section V (Redis, YCSB, TPCC, fio sequential write,
// PMDK HashMap and LinkedList). Each generator is deterministic under its
// seed and produces instructions for the internal/cpu timing core.
package workload

import (
	"math"

	"repro/internal/cpu"
	"repro/internal/sim"
)

// Perm returns a deterministic single-cycle permutation over [0, n) for the
// given seed (a shared helper for pointer-chasing experiment setups).
func Perm(n int, seed uint64) []int {
	if n < 1 {
		return nil
	}
	return sim.NewRNG(seed).PermCycle(n)
}

// Zipf samples integers in [0, n) with a zipfian distribution of exponent
// theta (YCSB uses ~0.99), biased so low indices are hot.
type Zipf struct {
	rng   *sim.RNG
	n     uint64
	theta float64
	zetan float64
	alpha float64
	eta   float64
}

// NewZipf builds a sampler over [0, n).
func NewZipf(rng *sim.RNG, n uint64, theta float64) *Zipf {
	z := &Zipf{rng: rng, n: n, theta: theta}
	for i := uint64(1); i <= n; i++ {
		z.zetan += 1 / math.Pow(float64(i), theta)
	}
	zeta2 := 1 + 1/math.Pow(2, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta2/z.zetan)
	return z
}

// Next samples one value.
func (z *Zipf) Next() uint64 {
	u := z.rng.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	v := uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if v >= z.n {
		v = z.n - 1
	}
	return v
}

// Gen is a streaming instruction generator implementing cpu.Workload.
type Gen struct {
	budget int
	emit   func(g *Gen) // refills g.queue with the next operation group
	queue  []cpu.Instr
	rng    *sim.RNG
	state  map[string]uint64
}

// Next implements cpu.Workload.
func (g *Gen) Next() (cpu.Instr, bool) {
	for len(g.queue) == 0 {
		if g.budget <= 0 {
			return cpu.Instr{}, false
		}
		g.emit(g)
	}
	in := g.queue[0]
	g.queue = g.queue[1:]
	g.budget--
	return in, true
}

// push appends instructions to the pending queue.
func (g *Gen) push(ins ...cpu.Instr) { g.queue = append(g.queue, ins...) }

// compute pushes n plain compute instructions.
func (g *Gen) compute(n int) {
	for i := 0; i < n; i++ {
		g.push(cpu.Instr{})
	}
}

// SPECBench describes one Table IV workload.
type SPECBench struct {
	Name  string
	Suite int // 2006 or 2017
	// MPKI is the LLC misses per thousand instructions measured on the
	// server (Table IV).
	MPKI float64
	// FootprintMB is the main-memory footprint.
	FootprintMB float64
	// PointerChase is the fraction of far accesses that are dependent
	// (pointer-heavy codes like mcf/omnetpp vs streaming codes like lbm).
	PointerChase float64
}

// SPECTable reproduces Table IV.
func SPECTable() []SPECBench {
	return []SPECBench{
		{Name: "gcc", Suite: 2006, MPKI: 2.9, FootprintMB: 1229, PointerChase: 0.4},
		{Name: "mcf", Suite: 2006, MPKI: 27.1, FootprintMB: 9318, PointerChase: 0.8},
		{Name: "sjeng", Suite: 2006, MPKI: 2.7, FootprintMB: 645, PointerChase: 0.5},
		{Name: "libquantum", Suite: 2006, MPKI: 3.4, FootprintMB: 2355, PointerChase: 0.1},
		{Name: "omnetpp", Suite: 2006, MPKI: 2.1, FootprintMB: 1434, PointerChase: 0.7},
		{Name: "cactusADM", Suite: 2006, MPKI: 2.0, FootprintMB: 2253, PointerChase: 0.1},
		{Name: "lbm", Suite: 2006, MPKI: 7.7, FootprintMB: 2970, PointerChase: 0.05},
		{Name: "wrf", Suite: 2006, MPKI: 2.4, FootprintMB: 1024, PointerChase: 0.15},
		{Name: "gcc17", Suite: 2017, MPKI: 21.5, FootprintMB: 1126, PointerChase: 0.4},
		{Name: "mcf17", Suite: 2017, MPKI: 26.3, FootprintMB: 8909, PointerChase: 0.8},
		{Name: "omnetpp17", Suite: 2017, MPKI: 2.1, FootprintMB: 983, PointerChase: 0.7},
		{Name: "deepsjeng17", Suite: 2017, MPKI: 2.5, FootprintMB: 594, PointerChase: 0.5},
		{Name: "xz17", Suite: 2017, MPKI: 2.7, FootprintMB: 1843, PointerChase: 0.3},
	}
}

// SPECBenchByName finds a Table IV entry.
func SPECBenchByName(name string) (SPECBench, bool) {
	for _, b := range SPECTable() {
		if b.Name == name {
			return b, true
		}
	}
	return SPECBench{}, false
}

// SPEC builds an instruction stream matching the bench's MPKI and footprint:
// a memRatio of operations touch memory; of those, a calibrated fraction
// goes to a random location in the full footprint (an LLC miss) while the
// rest hit a small cache-resident region.
func SPEC(b SPECBench, instructions int, seed uint64) cpu.Workload {
	const memRatio = 0.35
	const storeShare = 0.3
	farFrac := b.MPKI / 1000 / memRatio
	if farFrac > 1 {
		farFrac = 1
	}
	footprint := uint64(b.FootprintMB * (1 << 20))
	if footprint < 1<<20 {
		footprint = 1 << 20
	}
	rng := sim.NewRNG(seed ^ 0x5bec)
	g := &Gen{budget: instructions, rng: rng}
	hot := uint64(256 << 10) // fits the L2/L3 comfortably
	g.emit = func(g *Gen) {
		if g.rng.Float64() >= memRatio {
			g.push(cpu.Instr{})
			return
		}
		var addr uint64
		far := g.rng.Float64() < farFrac
		if far {
			addr = g.rng.Uint64n(footprint) &^ 63
		} else {
			addr = g.rng.Uint64n(hot) &^ 63
		}
		isStore := g.rng.Float64() < storeShare
		if isStore {
			g.push(cpu.Instr{IsMem: true, Addr: addr, Class: cpu.ClassWrite})
			return
		}
		dep := far && g.rng.Float64() < b.PointerChase
		g.push(cpu.Instr{IsMem: true, IsLoad: true, Addr: addr,
			DependsOnLoad: dep, Class: cpu.ClassRead})
	}
	return g
}
