package workload

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/sim"
)

func drain(t *testing.T, w cpu.Workload, max int) []cpu.Instr {
	t.Helper()
	var out []cpu.Instr
	for i := 0; i < max; i++ {
		in, ok := w.Next()
		if !ok {
			break
		}
		out = append(out, in)
	}
	return out
}

func TestZipfConcentration(t *testing.T) {
	rng := sim.NewRNG(1)
	z := NewZipf(rng, 10000, 0.99)
	counts := map[uint64]int{}
	n := 50000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	// Top-10 values should absorb a large share of samples.
	top := 0
	for v := uint64(0); v < 10; v++ {
		top += counts[v]
	}
	if frac := float64(top) / float64(n); frac < 0.2 {
		t.Fatalf("top-10 share = %.2f, want heavy concentration", frac)
	}
	// All samples in range.
	for v := range counts {
		if v >= 10000 {
			t.Fatalf("sample %d out of range", v)
		}
	}
}

func TestSPECTableMatchesPaper(t *testing.T) {
	tab := SPECTable()
	if len(tab) != 13 {
		t.Fatalf("SPECTable has %d entries, want 13 (Table IV)", len(tab))
	}
	mcf, ok := SPECBenchByName("mcf")
	if !ok || mcf.MPKI != 27.1 {
		t.Fatalf("mcf = %+v", mcf)
	}
	if _, ok := SPECBenchByName("nope"); ok {
		t.Fatal("bogus bench found")
	}
	for _, b := range tab {
		if b.MPKI < 2.0 {
			t.Errorf("%s MPKI %.1f below the paper's >=2 selection threshold", b.Name, b.MPKI)
		}
	}
}

func TestSPECGeneratorBudget(t *testing.T) {
	w := SPEC(SPECTable()[0], 5000, 1)
	ins := drain(t, w, 10000)
	if len(ins) != 5000 {
		t.Fatalf("generated %d instructions, want 5000", len(ins))
	}
}

func TestSPECGeneratorDeterministic(t *testing.T) {
	a := drain(t, SPEC(SPECTable()[1], 2000, 7), 3000)
	b := drain(t, SPEC(SPECTable()[1], 2000, 7), 3000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("instruction %d differs", i)
		}
	}
}

func TestSPECMemIntensityTracksMPKI(t *testing.T) {
	far := func(b SPECBench) float64 {
		ins := drain(t, SPEC(b, 50000, 3), 50000)
		farCount := 0
		for _, in := range ins {
			if in.IsMem && in.Addr >= 16<<20 {
				farCount++
			}
		}
		return float64(farCount) / float64(len(ins)) * 1000
	}
	mcf, _ := SPECBenchByName("mcf")
	omnetpp, _ := SPECBenchByName("omnetpp")
	fMcf := far(mcf)
	fOmn := far(omnetpp)
	if fMcf < 3*fOmn {
		t.Fatalf("mcf far-access rate (%.1f/ki) not >> omnetpp (%.1f/ki)", fMcf, fOmn)
	}
}

func TestCloudNamesComplete(t *testing.T) {
	names := CloudNames()
	if len(names) != 6 {
		t.Fatalf("CloudNames = %v", names)
	}
	for _, n := range names {
		w := Cloud(n, CloudOptions{Instructions: 1000, Seed: 2})
		if w == nil {
			t.Fatalf("Cloud(%q) = nil", n)
		}
		ins := drain(t, w, 2000)
		if len(ins) == 0 {
			t.Fatalf("%s generated nothing", n)
		}
	}
	if Cloud("bogus", CloudOptions{}) != nil {
		t.Fatal("bogus workload not nil")
	}
}

func TestRedisReadDominated(t *testing.T) {
	ins := drain(t, Redis(CloudOptions{Instructions: 30000, Seed: 1}), 30000)
	var reads, writes int
	for _, in := range ins {
		if !in.IsMem {
			continue
		}
		if in.IsLoad {
			reads++
		} else {
			writes++
		}
	}
	if reads < 3*writes {
		t.Fatalf("Redis reads (%d) not dominating writes (%d)", reads, writes)
	}
	// Pointer chasing: most reads are dependent.
	dep := 0
	for _, in := range ins {
		if in.IsLoad && in.DependsOnLoad {
			dep++
		}
	}
	if dep < reads/2 {
		t.Fatalf("dependent reads %d of %d, want majority", dep, reads)
	}
}

func TestYCSBWriteConcentration(t *testing.T) {
	ins := drain(t, YCSB(CloudOptions{Instructions: 60000, Seed: 5}), 60000)
	counts := map[uint64]int{}
	total := 0
	for _, in := range ins {
		if in.IsMem && !in.IsLoad && !in.Clwb && !in.Fence {
			counts[in.Addr&^63]++
			total++
		}
	}
	if total == 0 {
		t.Fatal("no writes")
	}
	// Find top-10 lines.
	top := make([]int, 0, len(counts))
	for _, c := range counts {
		top = append(top, c)
	}
	max10 := 0
	for i := 0; i < 10; i++ {
		best := -1
		for j, c := range top {
			if best < 0 || c > top[best] {
				best = j
			}
			_ = c
		}
		if best < 0 {
			break
		}
		max10 += top[best]
		top[best] = -1
	}
	if frac := float64(max10) / float64(total); frac < 0.15 {
		t.Fatalf("top-10 lines absorb %.2f of writes, want concentrated", frac)
	}
}

func TestFIOWriteSequential(t *testing.T) {
	ins := drain(t, FIOWrite(CloudOptions{Instructions: 5000, Seed: 1}), 5000)
	var last uint64
	seen := 0
	for _, in := range ins {
		if in.IsMem && in.NT {
			if seen > 0 && in.Addr != last+64 && in.Addr != 0 {
				t.Fatalf("non-sequential write: %d after %d", in.Addr, last)
			}
			last = in.Addr
			seen++
		}
	}
	if seen == 0 {
		t.Fatal("no NT writes")
	}
}

func TestChainStableAcrossMkptRuns(t *testing.T) {
	// The same seed must give the same traversal with and without mkpt so
	// speedups compare like against like.
	addrs := func(mkpt bool) []uint64 {
		ins := drain(t, LinkedList(CloudOptions{Instructions: 5000, Seed: 9, Mkpt: mkpt}), 5000)
		var out []uint64
		for _, in := range ins {
			if in.IsLoad {
				out = append(out, in.Addr)
			}
		}
		return out
	}
	a, b := addrs(false), addrs(true)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("address %d differs with mkpt", i)
		}
	}
}

func TestMkptMarksCarryNextAddr(t *testing.T) {
	ins := drain(t, LinkedList(CloudOptions{Instructions: 2000, Seed: 3, Mkpt: true}), 2000)
	marked := 0
	for _, in := range ins {
		if in.Mkpt {
			marked++
			if in.NextAddr == in.Addr {
				t.Fatal("mkpt NextAddr equals Addr")
			}
		}
	}
	if marked == 0 {
		t.Fatal("no mkpt-marked loads")
	}
}

func TestTPCCHasFences(t *testing.T) {
	ins := drain(t, TPCC(CloudOptions{Instructions: 10000, Seed: 2}), 10000)
	fences := 0
	for _, in := range ins {
		if in.Fence {
			fences++
		}
	}
	if fences == 0 {
		t.Fatal("TPCC has no commit fences")
	}
}

func TestHashMapMix(t *testing.T) {
	ins := drain(t, HashMap(CloudOptions{Instructions: 10000, Seed: 2}), 10000)
	var loads, stores, fences int
	for _, in := range ins {
		switch {
		case in.Fence:
			fences++
		case in.IsMem && in.IsLoad:
			loads++
		case in.IsMem:
			stores++
		}
	}
	if loads == 0 || stores == 0 || fences == 0 {
		t.Fatalf("mix: loads=%d stores=%d fences=%d", loads, stores, fences)
	}
}
