package workload

import (
	"repro/internal/cpu"
	"repro/internal/sim"
)

// CloudOptions tunes the Section V workload generators.
type CloudOptions struct {
	// Instructions is the stream length.
	Instructions int
	// Seed drives all random choices.
	Seed uint64
	// Mkpt marks pointer-chasing loads for Pre-translation (used only when
	// the optimization is enabled on the CPU and DIMM sides).
	Mkpt bool
	// Footprint is the working-set size in bytes (defaults per workload).
	Footprint uint64
}

func (o CloudOptions) withDefaults(defaultFootprint uint64) CloudOptions {
	if o.Instructions == 0 {
		o.Instructions = 200000
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Footprint == 0 {
		o.Footprint = defaultFootprint
	}
	return o
}

// chain is a stable pointer graph (single-cycle permutation over nodes) so
// pointer-chasing traversals revisit the same links and Pre-translation can
// train. Node i lives at base + i*nodeStride.
type chain struct {
	perm       []int
	base       uint64
	nodeStride uint64
	at         int
}

func newChain(rng *sim.RNG, nodes int, base, nodeStride uint64) *chain {
	return &chain{perm: rng.PermCycle(nodes), base: base, nodeStride: nodeStride}
}

func (c *chain) addrOf(i int) uint64 { return c.base + uint64(i)*c.nodeStride }

// hop emits one dependent load following the chain, optionally mkpt-marked.
func (c *chain) hop(mkpt bool) cpu.Instr {
	next := c.perm[c.at]
	in := cpu.Instr{
		IsMem: true, IsLoad: true, DependsOnLoad: true,
		Addr:     c.addrOf(c.at),
		Mkpt:     mkpt,
		NextAddr: c.addrOf(next),
		Class:    cpu.ClassRead,
	}
	c.at = next
	return in
}

// Redis models pmem-Redis GET/SET traffic: hash-bucket lookup followed by a
// short pointer chase per GET (the read-dominated pattern of Figure 12a),
// with ~10% SETs that persist via clwb+fence.
func Redis(o CloudOptions) cpu.Workload {
	o = o.withDefaults(256 << 20)
	rng := sim.NewRNG(o.Seed ^ 0x9ed15)
	nodes := int(o.Footprint / 4096)
	ch := newChain(rng, nodes, 0, 4096)
	g := &Gen{budget: o.Instructions, rng: rng}
	g.emit = func(g *Gen) {
		if g.rng.Float64() < 0.10 {
			// SET: update a value and persist it.
			addr := g.rng.Uint64n(o.Footprint) &^ 63
			g.push(
				cpu.Instr{IsMem: true, Addr: addr, Class: cpu.ClassWrite},
				cpu.Instr{IsMem: true, Clwb: true, Addr: addr, Class: cpu.ClassWrite},
				cpu.Instr{Fence: true, Class: cpu.ClassWrite},
			)
			g.compute(4)
			return
		}
		// GET: bucket index computation, then chase ~3 nodes.
		g.compute(3)
		for h := 0; h < 3; h++ {
			g.push(ch.hop(o.Mkpt))
		}
		g.compute(5)
	}
	return g
}

// YCSB models an update-heavy YCSB workload: zipfian record selection makes
// a handful of cache lines absorb most writes (the Top10 concentration of
// Figure 12b), each update persisted with clwb+fence.
func YCSB(o CloudOptions) cpu.Workload {
	o = o.withDefaults(64 << 20)
	rng := sim.NewRNG(o.Seed ^ 0x4c5b)
	records := o.Footprint / 1024
	zipf := NewZipf(rng, records, 0.99)
	g := &Gen{budget: o.Instructions, rng: rng}
	g.emit = func(g *Gen) {
		rec := zipf.Next() * 1024
		if g.rng.Float64() < 0.5 {
			// Update: write the record head and persist.
			g.push(
				cpu.Instr{IsMem: true, Addr: rec, Class: cpu.ClassWrite},
				cpu.Instr{IsMem: true, Clwb: true, Addr: rec, Class: cpu.ClassWrite},
				cpu.Instr{Fence: true, Class: cpu.ClassWrite},
			)
		} else {
			g.push(cpu.Instr{IsMem: true, IsLoad: true, Addr: rec, Class: cpu.ClassRead})
		}
		g.compute(6)
	}
	return g
}

// TPCC models an OLTP transaction mix: several indexed reads (some
// dependent), a handful of row updates, and a commit fence per transaction.
func TPCC(o CloudOptions) cpu.Workload {
	o = o.withDefaults(128 << 20)
	rng := sim.NewRNG(o.Seed ^ 0x79cc)
	nodes := int(o.Footprint / 4096)
	index := newChain(rng, nodes, 0, 4096)
	g := &Gen{budget: o.Instructions, rng: rng}
	g.emit = func(g *Gen) {
		// Index traversal: 2 hops.
		g.push(index.hop(o.Mkpt), index.hop(o.Mkpt))
		// Row reads with locality.
		row := g.rng.Uint64n(o.Footprint) &^ 63
		for i := 0; i < 3; i++ {
			g.push(cpu.Instr{IsMem: true, IsLoad: true,
				Addr: row + uint64(i)*64, Class: cpu.ClassRead})
		}
		g.compute(8)
		// Updates + redo-log append, then commit.
		logBase := g.state["log"] % (1 << 20)
		g.state["log"] += 256
		for i := 0; i < 2; i++ {
			g.push(
				cpu.Instr{IsMem: true, Addr: row + uint64(i)*64, Class: cpu.ClassWrite},
				cpu.Instr{IsMem: true, Clwb: true, Addr: row + uint64(i)*64, Class: cpu.ClassWrite},
			)
		}
		g.push(
			cpu.Instr{IsMem: true, NT: true, Addr: o.Footprint + logBase, Class: cpu.ClassWrite},
			cpu.Instr{Fence: true, Class: cpu.ClassWrite},
		)
		g.compute(6)
	}
	g.state = map[string]uint64{}
	return g
}

// FIOWrite models fio's sequential write workload: streaming non-temporal
// stores with a fence per 4KB block.
func FIOWrite(o CloudOptions) cpu.Workload {
	o = o.withDefaults(512 << 20)
	rng := sim.NewRNG(o.Seed ^ 0xf10)
	g := &Gen{budget: o.Instructions, rng: rng, state: map[string]uint64{}}
	g.emit = func(g *Gen) {
		pos := g.state["pos"]
		for l := 0; l < 4; l++ {
			g.push(cpu.Instr{IsMem: true, NT: true,
				Addr: (pos + uint64(l)*64) % o.Footprint, Class: cpu.ClassWrite})
		}
		pos += 256
		if pos%4096 == 0 {
			g.push(cpu.Instr{Fence: true, Class: cpu.ClassWrite})
		}
		g.state["pos"] = pos
		g.compute(2)
	}
	return g
}

// HashMap models the PMDK hashmap benchmark: hash a key, read the bucket,
// walk a short chain, then insert a node persistently.
func HashMap(o CloudOptions) cpu.Workload {
	o = o.withDefaults(128 << 20)
	rng := sim.NewRNG(o.Seed ^ 0x4a54)
	buckets := o.Footprint / 2 / 64
	nodesRegion := o.Footprint / 2
	nodes := int(nodesRegion / 4096)
	ch := newChain(rng, nodes, o.Footprint/2, 4096)
	g := &Gen{budget: o.Instructions, rng: rng}
	g.emit = func(g *Gen) {
		g.compute(4) // hash the key
		bucket := g.rng.Uint64n(buckets) * 64
		g.push(cpu.Instr{IsMem: true, IsLoad: true, Addr: bucket, Class: cpu.ClassRead})
		// Chain walk: 2 dependent hops.
		g.push(ch.hop(o.Mkpt), ch.hop(o.Mkpt))
		// Insert: write the node and relink the bucket, persist both.
		node := o.Footprint/2 + g.rng.Uint64n(nodesRegion)&^63
		g.push(
			cpu.Instr{IsMem: true, Addr: node, Class: cpu.ClassWrite},
			cpu.Instr{IsMem: true, Clwb: true, Addr: node, Class: cpu.ClassWrite},
			cpu.Instr{IsMem: true, Addr: bucket, Class: cpu.ClassWrite},
			cpu.Instr{IsMem: true, Clwb: true, Addr: bucket, Class: cpu.ClassWrite},
			cpu.Instr{Fence: true, Class: cpu.ClassWrite},
		)
		g.compute(3)
	}
	return g
}

// LinkedList models the PMDK linked-list benchmark: long pointer-chasing
// traversals with occasional persistent inserts — the most TLB-hostile
// pattern, and the best case for Pre-translation (Figure 13d).
func LinkedList(o CloudOptions) cpu.Workload {
	o = o.withDefaults(256 << 20)
	rng := sim.NewRNG(o.Seed ^ 0x111ed)
	nodes := int(o.Footprint / 4096)
	ch := newChain(rng, nodes, 0, 4096)
	g := &Gen{budget: o.Instructions, rng: rng, state: map[string]uint64{}}
	g.emit = func(g *Gen) {
		// Traverse 8 nodes.
		for h := 0; h < 8; h++ {
			g.push(ch.hop(o.Mkpt))
		}
		g.compute(2)
		// Insert every few traversals.
		g.state["n"]++
		if g.state["n"]%4 == 0 {
			node := g.rng.Uint64n(o.Footprint) &^ 63
			g.push(
				cpu.Instr{IsMem: true, Addr: node, Class: cpu.ClassWrite},
				cpu.Instr{IsMem: true, Clwb: true, Addr: node, Class: cpu.ClassWrite},
				cpu.Instr{Fence: true, Class: cpu.ClassWrite},
			)
		}
	}
	return g
}

// Cloud lists the six Section V workloads by name (the Figure 13d x-axis).
func Cloud(name string, o CloudOptions) cpu.Workload {
	switch name {
	case "FIO-write":
		return FIOWrite(o)
	case "YCSB":
		return YCSB(o)
	case "TPCC":
		return TPCC(o)
	case "HashMap":
		return HashMap(o)
	case "Redis":
		return Redis(o)
	case "LinkedList":
		return LinkedList(o)
	default:
		return nil
	}
}

// CloudNames returns the Figure 13d workload order.
func CloudNames() []string {
	return []string{"FIO-write", "YCSB", "TPCC", "HashMap", "Redis", "LinkedList"}
}
