package workload

import (
	"repro/internal/mem"
	"repro/internal/sim"
)

// ChaseAccesses builds a dependent pointer-chasing load stream over a region
// of regionBytes: one cache-line load per hop following a single-cycle
// permutation, at most maxSteps hops (0 means one hop per block). The walk
// is deterministic under seed. Replay it with window 1 — every hop depends
// on the previous load. Shared by cmd/vans and nvmserved chase jobs.
func ChaseAccesses(regionBytes uint64, maxSteps int, seed uint64) []mem.Access {
	blocks := int(regionBytes / mem.CacheLine)
	if blocks < 2 {
		blocks = 2
	}
	steps := blocks
	if maxSteps > 0 && steps > maxSteps {
		steps = maxSteps
	}
	perm := sim.NewRNG(seed).PermCycle(blocks)
	accs := make([]mem.Access, 0, steps)
	at := 0
	for i := 0; i < steps; i++ {
		accs = append(accs, mem.Access{Op: mem.OpRead,
			Addr: uint64(at) * mem.CacheLine, Size: mem.CacheLine})
		at = perm[at]
	}
	return accs
}

// SeqAccesses builds a sequential stream of op covering totalBytes in
// cache-line steps starting at address zero.
func SeqAccesses(totalBytes uint64, op mem.Op) []mem.Access {
	accs := make([]mem.Access, 0, totalBytes/mem.CacheLine)
	for a := uint64(0); a < totalBytes; a += mem.CacheLine {
		accs = append(accs, mem.Access{Op: op, Addr: a, Size: mem.CacheLine})
	}
	return accs
}
