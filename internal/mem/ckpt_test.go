package mem

import (
	"testing"

	"repro/internal/ckpt"
)

// TestBarrierPlacement pins the barrier rule: every Every-th index plus the
// forced warmup boundary, never index 0.
func TestBarrierPlacement(t *testing.T) {
	p := &CkptPolicy{Every: 100, ForcedAt: 250}
	var got []int
	for i := 0; i < 600; i++ {
		if p.atBarrier(i) {
			got = append(got, i)
		}
	}
	want := []int{100, 200, 250, 300, 400, 500}
	if len(got) != len(want) {
		t.Fatalf("barriers at %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("barriers at %v, want %v", got, want)
		}
	}
	var nilPol *CkptPolicy
	for i := 0; i < 600; i++ {
		if nilPol.atBarrier(i) {
			t.Fatalf("nil policy claims a barrier at %d", i)
		}
	}
}

// TestBarrierCheckZeroAlloc pins the disabled-checkpoint hot path at zero
// allocations: a driver without a policy must pay nothing per access.
func TestBarrierCheckZeroAlloc(t *testing.T) {
	d := &Driver{}
	sink := false
	if avg := testing.AllocsPerRun(1000, func() {
		for i := 0; i < 64; i++ {
			if d.ckpt.atBarrier(i) {
				sink = true
			}
		}
	}); avg != 0 {
		t.Fatalf("disabled barrier check allocates %.1f per run, want 0", avg)
	}
	if sink {
		t.Fatal("nil policy fired a barrier")
	}
}

// TestDriverStateRoundTrip: driver accounting survives a save/load cycle.
func TestDriverStateRoundTrip(t *testing.T) {
	d := &Driver{nextID: 42, faults: 0, reads: 7, writes: 9, faultCount: 0, runStart: 1234}
	var enc ckpt.Enc
	if err := d.SaveState(&enc); err != nil {
		t.Fatalf("SaveState: %v", err)
	}
	d2 := &Driver{}
	dec := ckpt.NewDec(enc.Bytes())
	if err := d2.LoadState(dec); err != nil {
		t.Fatalf("LoadState: %v", err)
	}
	if err := dec.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if d2.nextID != 42 || d2.reads != 7 || d2.writes != 9 || d2.runStart != 1234 {
		t.Fatalf("restored driver %+v", d2)
	}
}
