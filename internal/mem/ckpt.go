package mem

import (
	"fmt"

	"repro/internal/ckpt"
	"repro/internal/sim"
)

// CkptPolicy makes checkpoint barriers part of a run's semantics. At a
// barrier the driver stops issuing, drains its outstanding window, runs the
// engine to quiescence, and only then invokes Sink — so the whole system
// serializes from an idle cut with no in-flight closures. Because the
// barriers (the drains) perturb timing relative to a barrier-free run, the
// policy's shape (Every, ForcedAt) belongs to the job plan and its hash: a
// straight run and a resumed run of the same plan execute identical barriers
// and produce byte-identical results.
type CkptPolicy struct {
	// Every inserts a barrier before access i for every i with i%Every == 0,
	// 0 < i < len(accs). Zero disables periodic barriers.
	Every int
	// ForcedAt inserts one extra barrier before access ForcedAt (the warmup
	// boundary warm-start sweeps fork from). Zero disables it.
	ForcedAt int
	// StartIndex resumes the run at this access index. The driver skips
	// accesses before it and suppresses the barrier at the index itself (the
	// snapshot being resumed was taken there).
	StartIndex int
	// Sink receives each barrier's access index with the system quiescent.
	// A nil Sink still executes the barriers (drains), which is what keeps a
	// non-checkpointing run of the same plan byte-identical to one that
	// snapshots. A Sink error aborts the run.
	Sink func(idx int) error
}

// atBarrier reports whether a barrier precedes access i. It is on the
// per-access hot path and must not allocate (pinned by an AllocsPerRun
// guard).
func (p *CkptPolicy) atBarrier(i int) bool {
	if p == nil || i == 0 {
		return false
	}
	if p.Every > 0 && i%p.Every == 0 {
		return true
	}
	return p.ForcedAt > 0 && i == p.ForcedAt
}

// SetCkpt installs the checkpoint policy for subsequent runs (nil disables).
func (d *Driver) SetCkpt(p *CkptPolicy) { d.ckpt = p }

// CkptErr returns the error of a Sink invocation that aborted a run (nil
// otherwise).
func (d *Driver) CkptErr() error { return d.ckptErr }

// SaveState serializes the driver's accounting at a barrier: request ID
// counter, fault counters, request counters, the run's start cycle, and the
// end-to-end latency histograms. A driver that already observed an access
// fault cannot checkpoint — the error value has no serial form (and fault
// injection is rejected upstream anyway).
func (d *Driver) SaveState(enc *ckpt.Enc) error {
	if d.firstErr != nil {
		return fmt.Errorf("ckpt: driver observed an access fault (%v); cannot checkpoint", d.firstErr)
	}
	enc.U64(d.nextID)
	enc.U64(uint64(d.faults))
	enc.U64(d.faultCount)
	enc.U64(d.reads)
	enc.U64(d.writes)
	enc.U64(uint64(d.runStart))
	d.histRead.SaveState(enc)
	d.histWrite.SaveState(enc)
	return nil
}

// LoadState restores driver accounting captured by SaveState.
func (d *Driver) LoadState(dec *ckpt.Dec) error {
	d.nextID = dec.U64()
	d.faults = int(dec.U64())
	d.faultCount = dec.U64()
	d.reads = dec.U64()
	d.writes = dec.U64()
	d.runStart = sim.Cycle(dec.U64())
	if err := dec.Err(); err != nil {
		return err
	}
	if err := d.histRead.LoadState(dec); err != nil {
		return err
	}
	return d.histWrite.LoadState(dec)
}
