// Package mem defines the memory request model shared by every timing model
// in the repository: operations, requests, the System interface that all
// simulated memory systems implement, and address/line arithmetic helpers.
package mem

import (
	"fmt"

	"repro/internal/sim"
)

// Op is a memory operation kind. The set mirrors the instruction classes the
// paper's microbenchmarks use: cached loads/stores, non-temporal (cache
// bypassing) stores, cache-line write-back (clwb), and store fences (mfence).
type Op uint8

const (
	// OpRead is a load of Size bytes.
	OpRead Op = iota
	// OpWrite is a regular (write-allocate) store of Size bytes.
	OpWrite
	// OpWriteNT is a non-temporal store that bypasses the CPU caches and is
	// posted directly toward the memory controller.
	OpWriteNT
	// OpClwb requests write-back of the cache line containing Addr without
	// invalidating it.
	OpClwb
	// OpFence orders prior stores: it completes only once all previously
	// submitted writes are durable in the ADR domain (and, per the paper's
	// observation, flushes the on-DIMM LSQ).
	OpFence
)

// String returns the conventional mnemonic for the operation.
func (o Op) String() string {
	switch o {
	case OpRead:
		return "load"
	case OpWrite:
		return "store"
	case OpWriteNT:
		return "store-nt"
	case OpClwb:
		return "clwb"
	case OpFence:
		return "mfence"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// IsWrite reports whether the operation carries write data.
func (o Op) IsWrite() bool { return o == OpWrite || o == OpWriteNT }

// CacheLine is the CPU cache line size in bytes. All traffic that reaches a
// memory controller is in cache-line units.
const CacheLine = 64

// Request is one memory access flowing through a System. Requests are
// allocated by the driver and owned by the system until OnDone fires.
type Request struct {
	// ID is a driver-assigned identifier, unique within a run.
	ID uint64
	// Op is the operation kind.
	Op Op
	// Addr is the physical byte address.
	Addr uint64
	// Size is the access size in bytes (<= CacheLine for CPU-issued ops).
	Size uint32
	// Data optionally carries write data / receives read data when the
	// system is run in functional mode. Nil means timing-only.
	Data []byte
	// Issued is stamped by the system when the request is accepted.
	Issued sim.Cycle
	// Done is stamped by the system just before OnDone fires.
	Done sim.Cycle
	// OnDone, if non-nil, is called exactly once when the request completes.
	OnDone func(*Request)
	// Err records an access fault attached by the system before completion
	// (an uncorrectable media read surfaces here as a typed error rather
	// than a panic). Nil means the access succeeded.
	Err error

	// Meta lets system-internal layers attach routing state without extra
	// allocation. External callers must not touch it.
	Meta any
}

// Latency returns the request's completion latency in cycles.
func (r *Request) Latency() sim.Cycle { return r.Done - r.Issued }

// Line returns the cache-line-aligned address containing r.Addr.
func (r *Request) Line() uint64 { return AlignDown(r.Addr, CacheLine) }

// complete stamps Done and fires OnDone. Systems should call Complete rather
// than invoking OnDone directly so stamping is uniform.
func (r *Request) Complete(now sim.Cycle) {
	r.Done = now
	if r.OnDone != nil {
		r.OnDone(r)
	}
}

// CompleteErr attaches an access fault and completes the request.
func (r *Request) CompleteErr(now sim.Cycle, err error) {
	r.Err = err
	r.Complete(now)
}

// System is a simulated memory system: the VANS model, the baseline
// emulators, and the empirical Optane reference model all implement it.
//
// The contract: Submit either accepts the request (true) or reports
// backpressure (false; the caller retries after advancing the engine).
// Accepted requests complete via Request.OnDone at some later engine cycle.
// All progress happens through the shared Engine.
type System interface {
	// Engine returns the event engine driving this system.
	Engine() *sim.Engine
	// Submit offers a request; false means the front queue is full.
	Submit(r *Request) bool
	// CyclesPerNano converts: ns = cycles / CyclesPerNano.
	CyclesPerNano() float64
	// Drained reports whether no requests are in flight.
	Drained() bool
}

// NsPerCycle returns the nanosecond duration of one cycle of sys.
func NsPerCycle(sys System) float64 { return 1 / sys.CyclesPerNano() }

// ToNs converts a cycle count of sys to nanoseconds.
func ToNs(sys System, c sim.Cycle) float64 { return float64(c) / sys.CyclesPerNano() }

// AlignDown rounds addr down to a multiple of align (a power of two or any
// positive integer).
func AlignDown(addr, align uint64) uint64 { return addr - addr%align }

// AlignUp rounds addr up to a multiple of align.
func AlignUp(addr, align uint64) uint64 {
	if r := addr % align; r != 0 {
		return addr + align - r
	}
	return addr
}

// LineSpan returns the sequence of block-aligned addresses of size blockSize
// touched by the byte range [addr, addr+size). It is the canonical
// access-splitting helper: callers fan a request out into one sub-access per
// returned block.
func LineSpan(addr uint64, size uint32, blockSize uint64) []uint64 {
	if size == 0 {
		return nil
	}
	first := AlignDown(addr, blockSize)
	last := AlignDown(addr+uint64(size)-1, blockSize)
	n := (last-first)/blockSize + 1
	blocks := make([]uint64, 0, n)
	for b := first; ; b += blockSize {
		blocks = append(blocks, b)
		if b == last {
			break
		}
	}
	return blocks
}

// Bytes formats a byte count with binary units, matching the paper's axis
// labels (64, 1K, 64K, 4M, 256M, ...).
func Bytes(n uint64) string {
	switch {
	case n >= 1<<30 && n%(1<<30) == 0:
		return fmt.Sprintf("%dG", n>>30)
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dM", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dK", n>>10)
	default:
		return fmt.Sprintf("%d", n)
	}
}
