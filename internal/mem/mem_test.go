package mem

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestOpString(t *testing.T) {
	cases := map[Op]string{
		OpRead: "load", OpWrite: "store", OpWriteNT: "store-nt",
		OpClwb: "clwb", OpFence: "mfence", Op(99): "op(99)",
	}
	for op, want := range cases {
		if got := op.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", op, got, want)
		}
	}
}

func TestOpIsWrite(t *testing.T) {
	if !OpWrite.IsWrite() || !OpWriteNT.IsWrite() {
		t.Fatal("writes not classified as writes")
	}
	if OpRead.IsWrite() || OpClwb.IsWrite() || OpFence.IsWrite() {
		t.Fatal("non-writes classified as writes")
	}
}

func TestAlign(t *testing.T) {
	if AlignDown(100, 64) != 64 {
		t.Fatal("AlignDown(100,64)")
	}
	if AlignDown(128, 64) != 128 {
		t.Fatal("AlignDown(128,64)")
	}
	if AlignUp(100, 64) != 128 {
		t.Fatal("AlignUp(100,64)")
	}
	if AlignUp(128, 64) != 128 {
		t.Fatal("AlignUp(128,64)")
	}
}

func TestLineSpan(t *testing.T) {
	blocks := LineSpan(60, 8, 64) // crosses 0..63 and 64..127
	if len(blocks) != 2 || blocks[0] != 0 || blocks[1] != 64 {
		t.Fatalf("LineSpan(60,8,64) = %v", blocks)
	}
	blocks = LineSpan(256, 256, 256)
	if len(blocks) != 1 || blocks[0] != 256 {
		t.Fatalf("LineSpan(256,256,256) = %v", blocks)
	}
	if LineSpan(0, 0, 64) != nil {
		t.Fatal("LineSpan zero size should be nil")
	}
}

// Property: LineSpan covers the byte range exactly — every byte of
// [addr, addr+size) falls in exactly one returned block, blocks are aligned,
// strictly increasing, and contiguous.
func TestLineSpanCoversRange(t *testing.T) {
	f := func(addrRaw uint32, sizeRaw uint16, blkSel uint8) bool {
		blockSize := uint64(64) << (blkSel % 4) // 64,128,256,512
		addr := uint64(addrRaw)
		size := uint32(sizeRaw%2048) + 1
		blocks := LineSpan(addr, size, blockSize)
		if len(blocks) == 0 {
			return false
		}
		for i, b := range blocks {
			if b%blockSize != 0 {
				return false
			}
			if i > 0 && b != blocks[i-1]+blockSize {
				return false
			}
		}
		return blocks[0] <= addr && blocks[len(blocks)-1]+blockSize >= addr+uint64(size)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestBytesFormat(t *testing.T) {
	cases := map[uint64]string{
		64: "64", 1024: "1K", 64 << 10: "64K", 4 << 20: "4M",
		256 << 20: "256M", 1 << 30: "1G", 1000: "1000",
	}
	for n, want := range cases {
		if got := Bytes(n); got != want {
			t.Errorf("Bytes(%d) = %q, want %q", n, got, want)
		}
	}
}

// fakeSystem is a minimal System with fixed latency and a bounded front
// queue, used to exercise the drivers.
type fakeSystem struct {
	eng      *sim.Engine
	latency  sim.Cycle
	capacity int
	inflight int
	accepted []*Request
}

func newFakeSystem(latency sim.Cycle, capacity int) *fakeSystem {
	return &fakeSystem{eng: sim.NewEngine(), latency: latency, capacity: capacity}
}

func (f *fakeSystem) Engine() *sim.Engine    { return f.eng }
func (f *fakeSystem) CyclesPerNano() float64 { return 1 }
func (f *fakeSystem) Drained() bool          { return f.inflight == 0 }

func (f *fakeSystem) Submit(r *Request) bool {
	if f.inflight >= f.capacity {
		return false
	}
	f.inflight++
	r.Issued = f.eng.Now()
	f.accepted = append(f.accepted, r)
	f.eng.After(f.latency, func() {
		f.inflight--
		r.Complete(f.eng.Now())
	})
	return true
}

func TestDriverRunChainSerializes(t *testing.T) {
	sys := newFakeSystem(10, 4)
	d := NewDriver(sys)
	accs := []Access{{Op: OpRead, Size: 64}, {Op: OpRead, Addr: 64, Size: 64}, {Op: OpRead, Addr: 128, Size: 64}}
	lats := d.RunChain(accs)
	if len(lats) != 3 {
		t.Fatalf("got %d latencies", len(lats))
	}
	for i, l := range lats {
		if l != 10 {
			t.Fatalf("latency[%d] = %d, want 10", i, l)
		}
	}
	// Serialized: total time is 3*10.
	if sys.eng.Now() != 30 {
		t.Fatalf("end = %d, want 30", sys.eng.Now())
	}
}

func TestDriverRunWindowOverlaps(t *testing.T) {
	sys := newFakeSystem(10, 16)
	d := NewDriver(sys)
	accs := make([]Access, 8)
	for i := range accs {
		accs[i] = Access{Op: OpWrite, Addr: uint64(i * 64), Size: 64}
	}
	elapsed := d.RunWindow(accs, 8)
	// All 8 fit in one window and the fake has no bandwidth limit: total
	// time is a single latency.
	if elapsed != 10 {
		t.Fatalf("elapsed = %d, want 10", elapsed)
	}
	elapsed = d.RunWindow(accs, 1)
	if elapsed != 80 {
		t.Fatalf("window=1 elapsed = %d, want 80", elapsed)
	}
}

func TestDriverBackpressure(t *testing.T) {
	sys := newFakeSystem(5, 2)
	d := NewDriver(sys)
	accs := make([]Access, 10)
	for i := range accs {
		accs[i] = Access{Op: OpWrite, Addr: uint64(i * 64), Size: 64}
	}
	elapsed := d.RunWindow(accs, 64) // window larger than system capacity
	// Capacity 2, latency 5: 10 reqs finish in ceil(10/2)*5 = 25 cycles.
	if elapsed != 25 {
		t.Fatalf("elapsed = %d, want 25", elapsed)
	}
}

func TestDriverRunChainTimed(t *testing.T) {
	sys := newFakeSystem(7, 1)
	d := NewDriver(sys)
	res := d.RunChainTimed([]Access{{Op: OpRead, Size: 64}, {Op: OpRead, Addr: 64, Size: 64}})
	if res.TotalCycles != 14 {
		t.Fatalf("TotalCycles = %d, want 14", res.TotalCycles)
	}
}

func TestBandwidthGBs(t *testing.T) {
	sys := newFakeSystem(1, 1) // 1 cycle/ns
	// 1000 bytes in 100 cycles = 100ns -> 10 GB/s.
	if got := BandwidthGBs(sys, 1000, 100); got != 10 {
		t.Fatalf("BandwidthGBs = %v, want 10", got)
	}
	if BandwidthGBs(sys, 1000, 0) != 0 {
		t.Fatal("zero elapsed should give 0")
	}
}

func TestRequestCompleteStampsDone(t *testing.T) {
	var fired int
	r := &Request{OnDone: func(*Request) { fired++ }}
	r.Issued = 5
	r.Complete(25)
	if fired != 1 {
		t.Fatal("OnDone not fired exactly once")
	}
	if r.Latency() != 20 {
		t.Fatalf("Latency = %d, want 20", r.Latency())
	}
}

func TestRequestLine(t *testing.T) {
	r := &Request{Addr: 130}
	if r.Line() != 128 {
		t.Fatalf("Line = %d, want 128", r.Line())
	}
}
