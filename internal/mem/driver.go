package mem

import (
	"repro/internal/obs"
	"repro/internal/sim"
)

// Driver issues request streams into a System and collects completion
// latencies. It implements the two access disciplines the LENS
// microbenchmarks need: a dependent chain (each access starts only after the
// previous completes — pointer chasing) and a windowed stream (up to W
// outstanding — bandwidth tests).
type Driver struct {
	sys    System
	nextID uint64

	// faults counts completed requests that carried an access fault
	// (mem.Request.Err, e.g. injected uncorrectable media reads); firstErr
	// keeps the first such error for reporting.
	faults   int
	firstErr error

	o          *obs.Obs
	reads      uint64
	writes     uint64
	faultCount uint64
	histRead   *obs.Histogram
	histWrite  *obs.Histogram

	// ckpt, when set, makes checkpoint barriers part of the run (see
	// CkptPolicy). runStart is the engine cycle the windowed run started at;
	// it is serialized so a resumed run reports the same elapsed span.
	ckpt     *CkptPolicy
	ckptErr  error
	runStart sim.Cycle
}

// NewDriver returns a driver bound to sys.
func NewDriver(sys System) *Driver { return &Driver{sys: sys} }

// SetObs registers the driver's request counters and end-to-end latency
// histograms ("driver" component) and enables request-lifecycle hook
// emission. Call before issuing accesses.
func (d *Driver) SetObs(o *obs.Obs) {
	if o == nil {
		return
	}
	d.o = o
	o.RegisterPtr("driver", "reads", &d.reads)
	o.RegisterPtr("driver", "writes", &d.writes)
	o.RegisterPtr("driver", "faults", &d.faultCount)
	d.histRead = o.Histogram("driver", "read_ns", nil)
	d.histWrite = o.Histogram("driver", "write_ns", nil)
}

// noteDone folds one completed request into the fault and latency
// accounting.
func (d *Driver) noteDone(r *Request) {
	if r.Err != nil {
		d.faults++
		d.faultCount++
		if d.firstErr == nil {
			d.firstErr = r.Err
		}
	}
	if d.o != nil {
		ns := uint64(float64(r.Latency()) / d.sys.CyclesPerNano())
		switch {
		case r.Op == OpRead:
			d.reads++
			d.histRead.Observe(ns)
		case r.Op.IsWrite() || r.Op == OpClwb:
			d.writes++
			d.histWrite.Observe(ns)
		}
		if d.o.Active() {
			d.o.Emit(obs.Event{Now: d.sys.Engine().Now(), Stage: obs.StageRequest,
				Pos: obs.PosComplete, Write: r.Op != OpRead, Comp: "driver",
				Addr: r.Addr, Arg: uint64(r.Latency())})
		}
	}
}

// Err returns the first access fault observed across all runs of this
// driver (nil when every access succeeded). Faults do not abort a run —
// the stream completes with its real timing — so callers check Err after
// the run to decide whether results are trustworthy.
func (d *Driver) Err() error { return d.firstErr }

// Faults returns the number of faulted accesses observed.
func (d *Driver) Faults() int { return d.faults }

// Access is one element of a driver stream.
type Access struct {
	Op   Op
	Addr uint64
	Size uint32
	// Data optionally carries a functional write payload (crash-consistency
	// and data-integrity runs). Nil means timing-only.
	Data []byte
}

// submitBlocking offers r until accepted, advancing the engine to drain
// backpressure. It panics if the system can make no progress, which would
// indicate a deadlocked model (a bug we want loudly).
func (d *Driver) submitBlocking(r *Request) {
	eng := d.sys.Engine()
	if d.o.Active() {
		// Arg deliberately stays 0: PosIssue events carrying a nonzero Arg
		// render as duration slices in the Chrome exporter.
		d.o.Emit(obs.Event{Now: eng.Now(), Stage: obs.StageRequest, Pos: obs.PosIssue,
			Write: r.Op != OpRead && r.Op != OpFence, Comp: "driver", Addr: r.Addr})
	}
	for !d.sys.Submit(r) {
		if eng.Pending() == 0 {
			panic("mem: system refused request with no pending events (model deadlock)")
		}
		fired := eng.Fired()
		eng.RunWhile(func() bool { return eng.Fired() == fired })
	}
}

// RunChain issues accesses strictly one at a time: access i+1 is submitted
// only once access i completed. It returns the per-access latency in cycles.
// This is the timing discipline of a pointer-chasing load loop, where the
// next address depends on the loaded value.
func (d *Driver) RunChain(accs []Access) []sim.Cycle {
	eng := d.sys.Engine()
	lats := make([]sim.Cycle, 0, len(accs))
	for _, a := range accs {
		d.nextID++
		done := false
		r := &Request{ID: d.nextID, Op: a.Op, Addr: a.Addr, Size: a.Size, Data: a.Data,
			OnDone: func(r *Request) { done = true; d.noteDone(r) }}
		d.submitBlocking(r)
		eng.RunWhile(func() bool { return !done })
		if !done {
			panic("mem: request never completed (model deadlock)")
		}
		lats = append(lats, r.Latency())
	}
	return lats
}

// ChainResult summarizes a RunChain run in wall-clock terms.
type ChainResult struct {
	Latencies []sim.Cycle
	// TotalCycles is the span from first submit to last completion.
	TotalCycles sim.Cycle
}

// RunChainTimed is RunChain plus the total elapsed cycles.
func (d *Driver) RunChainTimed(accs []Access) ChainResult {
	start := d.sys.Engine().Now()
	lats := d.RunChain(accs)
	return ChainResult{Latencies: lats, TotalCycles: d.sys.Engine().Now() - start}
}

// RunWindow issues accesses keeping up to window requests outstanding, the
// discipline of a store/streaming loop limited by CPU memory-level
// parallelism. It returns the total cycles from first submit until the last
// completion (all requests drained).
func (d *Driver) RunWindow(accs []Access, window int) sim.Cycle {
	elapsed, _ := d.RunWindowChecked(accs, window, nil)
	return elapsed
}

// RunWindowChecked is RunWindow with a cooperative cancellation hook: when
// keepGoing is non-nil it is polled before each submission, and a false
// return abandons the remaining accesses after draining what is already in
// flight. The second result reports whether the whole stream was issued.
// A run that completes has timing identical to RunWindow (the hook never
// touches the engine), which is what lets nvmserved enforce per-job timeouts
// without perturbing results.
func (d *Driver) RunWindowChecked(accs []Access, window int, keepGoing func() bool) (sim.Cycle, bool) {
	if window < 1 {
		window = 1
	}
	eng := d.sys.Engine()
	start := eng.Now()
	first := 0
	if d.ckpt != nil && d.ckpt.StartIndex > 0 {
		// Resuming from a snapshot: the accesses before StartIndex already ran
		// in the captured prefix, and the run's true start cycle was restored
		// by LoadState.
		first = d.ckpt.StartIndex
		start = d.runStart
	} else {
		d.runStart = start
	}
	inflight := 0
	completed := true
	for i := first; i < len(accs); i++ {
		a := accs[i]
		if d.ckpt.atBarrier(i) && i != first {
			// Checkpoint barrier: drain the window, run the engine dry, then
			// hand the idle cut to the sink. The drain is executed even with a
			// nil sink so barrier placement — part of the plan — perturbs a
			// non-checkpointing run identically.
			for inflight > 0 {
				if eng.Pending() == 0 {
					panic("mem: barrier drain stalled with no pending events (model deadlock)")
				}
				fired := eng.Fired()
				eng.RunWhile(func() bool { return eng.Fired() == fired })
			}
			eng.Run()
			if d.ckpt.Sink != nil {
				if err := d.ckpt.Sink(i); err != nil {
					d.ckptErr = err
					completed = false
					break
				}
			}
		}
		if keepGoing != nil && !keepGoing() {
			completed = false
			break
		}
		for inflight >= window {
			fired := eng.Fired()
			eng.RunWhile(func() bool { return eng.Fired() == fired && inflight >= window })
			if inflight >= window && eng.Pending() == 0 {
				panic("mem: window stalled with no pending events (model deadlock)")
			}
		}
		d.nextID++
		r := &Request{ID: d.nextID, Op: a.Op, Addr: a.Addr, Size: a.Size, Data: a.Data,
			OnDone: func(r *Request) { inflight--; d.noteDone(r) }}
		d.submitBlocking(r)
		inflight++
	}
	for inflight > 0 {
		if eng.Pending() == 0 {
			panic("mem: drain stalled with no pending events (model deadlock)")
		}
		fired := eng.Fired()
		eng.RunWhile(func() bool { return eng.Fired() == fired })
	}
	return eng.Now() - start, completed
}

// Fence submits an OpFence and runs until it completes, guaranteeing all
// previously submitted stores are durable.
func (d *Driver) Fence() sim.Cycle {
	lats := d.RunChain([]Access{{Op: OpFence}})
	return lats[0]
}

// BandwidthGBs converts (bytes moved, elapsed cycles) into GB/s given the
// system clock.
func BandwidthGBs(sys System, bytes uint64, elapsed sim.Cycle) float64 {
	if elapsed == 0 {
		return 0
	}
	ns := ToNs(sys, elapsed)
	return float64(bytes) / ns // bytes/ns == GB/s
}
