package server

import (
	"encoding/json"
	"errors"
	"net/http"
)

// Handler returns the nvmserved HTTP API:
//
//	POST /v1/jobs            submit a JobSpec; ?wait=1 blocks until terminal
//	GET  /v1/jobs/{id}       job status
//	GET  /v1/jobs/{id}/result  result of a completed job
//	GET  /v1/jobs/{id}/trace   NDJSON lifecycle trace of a traced job
//	GET  /v1/jobs/{id}/checkpoint  latest durable snapshot of a preempted job
//	GET  /v1/healthz         liveness + drain state
//	GET  /v1/metrics         expvar-style service metrics
//	GET  /v1/metrics/prom    Prometheus text exposition format
//	POST /v1/sweep           fan a parameter sweep across the pool (NDJSON)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /v1/jobs/{id}/checkpoint", s.handleCheckpoint)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/metrics/prom", s.handleMetricsProm)
	mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, err error) {
	if code == http.StatusServiceUnavailable || code == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, code, errorBody{Error: err.Error()})
}

// submitResponse is the POST /v1/jobs payload: the job status, plus the
// result inline when the job is already terminal (cache hit or ?wait=1).
type submitResponse struct {
	Job    JobStatus `json:"job"`
	Result *Result   `json:"result,omitempty"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	st, err := s.Submit(spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		// Load shedding: the queue is saturated — back off and retry.
		writeError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, ErrDraining), errors.Is(err, ErrBreakerOpen):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if r.URL.Query().Get("wait") != "" && st.State != JobDone {
		if st, err = s.Wait(r.Context(), st.ID); err != nil {
			writeError(w, http.StatusGatewayTimeout, err)
			return
		}
	}
	resp := submitResponse{Job: st}
	code := http.StatusAccepted
	if st.State == JobDone {
		code = http.StatusOK
		resp.Result, _, _ = s.Result(st.ID)
	}
	writeJSON(w, code, resp)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, ok := s.Status(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("unknown job"))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	res, st, ok := s.Result(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("unknown job"))
		return
	}
	switch st.State {
	case JobDone:
		writeJSON(w, http.StatusOK, res)
	case JobQueued, JobRunning:
		// Not terminal yet: report progress, not an error.
		writeJSON(w, http.StatusAccepted, st)
	default:
		writeJSON(w, http.StatusConflict, st)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	// One probe carries everything an admission decision needs: liveness,
	// drain/breaker state, queue pressure, and cache residency — plus the
	// node identity and resolved listen address so cluster tooling can
	// discover ports when the daemon was started with -addr :0.
	type health struct {
		Status          string `json:"status"`
		NodeID          string `json:"node_id,omitempty"`
		Addr            string `json:"addr,omitempty"`
		Revision        string `json:"revision"`
		Draining        bool   `json:"draining"`
		Breaker         string `json:"breaker"`
		BreakerFailures int    `json:"breaker_failures,omitempty"`
		BreakerOpens    uint64 `json:"breaker_opens,omitempty"`
		Workers         int    `json:"workers"`
		WorkersBusy     int    `json:"workers_busy"`
		QueueDepth      int    `json:"queue_depth"`
		QueueCapacity   int    `json:"queue_capacity"`
		CacheEntries    int    `json:"cache_entries"`
		CacheCapacity   int    `json:"cache_capacity"`
	}
	h := health{Status: "ok", Revision: BuildRevision(), Draining: s.Draining()}
	h.NodeID, h.Addr = s.Identity()
	h.Breaker, h.BreakerFailures, h.BreakerOpens = s.BreakerState()
	h.Workers = s.opts.Workers
	h.WorkersBusy = int(s.busy.Load())
	h.QueueDepth = len(s.queue)
	h.QueueCapacity = s.opts.QueueDepth
	h.CacheEntries = s.cache.Len()
	h.CacheCapacity = s.cache.Cap()
	code := http.StatusOK
	switch {
	case h.Draining:
		h.Status = "draining"
		code = http.StatusServiceUnavailable
	case h.Breaker != BreakerClosed:
		// Tripped (or probing) breaker: alive but degraded. 503 lets load
		// balancers steer traffic away until the engine recovers.
		h.Status = "degraded"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.MetricsSnapshot())
}

func (s *Server) handleMetricsProm(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.WritePrometheus(w)
}

// handleCheckpoint serves the latest durable snapshot of a job that was
// preempted mid-run (sealed binary, stamped with the job hash). A client can
// carry it to any other nvmserved node — PutCheckpoint there, resubmit the
// same spec — and the job resumes from the last barrier.
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	_, st, ok := s.Result(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("unknown job"))
		return
	}
	snap, ok := s.CheckpointBytes(st.Hash)
	if !ok {
		writeError(w, http.StatusNotFound,
			errors.New("no checkpoint for this job (finished, never snapshotted, or no state dir)"))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(snap)
}

// handleTrace streams a traced job's lifecycle as NDJSON (one stage event per
// line). Jobs submitted without "trace": true have no trace and get 404.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	res, st, ok := s.Result(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("unknown job"))
		return
	}
	switch st.State {
	case JobDone:
	case JobQueued, JobRunning:
		writeJSON(w, http.StatusAccepted, st)
		return
	default:
		writeJSON(w, http.StatusConflict, st)
		return
	}
	lt := res.Trace()
	if lt == nil {
		writeError(w, http.StatusNotFound,
			errors.New("job was not traced; submit with \"trace\": true"))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	_ = lt.WriteNDJSON(w)
}
