package server

import (
	"time"

	"repro/internal/breaker"
)

// Breaker states, re-exported from internal/breaker for API compatibility.
// The same breaker implementation guards the engine here and tracks remote
// peer health in internal/cluster.
const (
	BreakerClosed   = breaker.Closed
	BreakerOpen     = breaker.Open
	BreakerHalfOpen = breaker.HalfOpen
)

// newBreaker returns the engine circuit breaker: threshold consecutive
// engine failures (panics, faulted runs) open it and submissions are shed at
// the door until a cooldown passes. State is surfaced on /v1/healthz.
func newBreaker(threshold int, cooldown time.Duration) *breaker.Breaker {
	return breaker.New(threshold, cooldown)
}
