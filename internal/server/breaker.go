package server

import (
	"sync"
	"time"
)

// Breaker states.
const (
	BreakerClosed   = "closed"
	BreakerOpen     = "open"
	BreakerHalfOpen = "half-open"
)

// breaker is a consecutive-failure circuit breaker guarding the engine: when
// threshold engine failures (panics, faulted runs) occur in a row with no
// intervening success, the breaker opens and submissions are shed at the door
// until a cooldown passes. The first submission after the cooldown is
// admitted as a single probe (half-open); its outcome closes or re-opens the
// circuit. State is surfaced on /v1/healthz.
type breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration

	state       string
	consecutive int
	openedAt    time.Time
	probing     bool
	opens       uint64
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, state: BreakerClosed}
}

// allow reports whether a new job may enter, and the suggested retry-after
// duration when it may not.
func (b *breaker) allow() (bool, time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.threshold < 0 {
		return true, 0 // breaker disabled
	}
	switch b.state {
	case BreakerClosed:
		return true, 0
	case BreakerOpen:
		if wait := b.cooldown - time.Since(b.openedAt); wait > 0 {
			return false, wait
		}
		// Cooldown elapsed: admit exactly one probe.
		b.state = BreakerHalfOpen
		b.probing = true
		return true, 0
	default: // half-open
		if b.probing {
			return false, b.cooldown
		}
		b.probing = true
		return true, 0
	}
}

// recordSuccess notes a completed job; any success closes the circuit.
func (b *breaker) recordSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = BreakerClosed
	b.consecutive = 0
	b.probing = false
}

// recordFailure notes an engine failure; threshold consecutive failures (or
// a failed half-open probe) open the circuit.
func (b *breaker) recordFailure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.threshold < 0 {
		return
	}
	b.consecutive++
	if b.state == BreakerHalfOpen || b.consecutive >= b.threshold {
		if b.state != BreakerOpen {
			b.opens++
		}
		b.state = BreakerOpen
		b.openedAt = time.Now()
		b.probing = false
	}
}

// snapshot returns (state, consecutive failures, times opened).
func (b *breaker) snapshot() (string, int, uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	// Present the post-cooldown open state as half-open-eligible only once a
	// probe is actually admitted; reporting stays simple and truthful.
	return b.state, b.consecutive, b.opens
}
