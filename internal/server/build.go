package server

import (
	"runtime/debug"
	"sync"
)

var (
	buildOnce sync.Once
	buildRev  string
)

// BuildRevision returns the VCS revision compiled into the binary
// (runtime/debug.ReadBuildInfo vcs.revision, with a ".dirty" suffix when the
// working tree was modified). Builds outside a VCS checkout — go test
// binaries, source-only distributions — report "unknown". The value surfaces
// on /v1/healthz, /v1/cluster/info, and the nvmserved_build_info gauge so a
// fleet's members can be checked for skew from any one scrape.
func BuildRevision() string {
	buildOnce.Do(func() {
		buildRev = "unknown"
		info, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		var rev string
		dirty := false
		for _, kv := range info.Settings {
			switch kv.Key {
			case "vcs.revision":
				rev = kv.Value
			case "vcs.modified":
				dirty = kv.Value == "true"
			}
		}
		if rev == "" {
			return
		}
		if len(rev) > 12 {
			rev = rev[:12]
		}
		if dirty {
			rev += ".dirty"
		}
		buildRev = rev
	})
	return buildRev
}
