package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/exp"
)

// SweepRequest fans one parameter sweep across the worker pool: the base
// job is cloned once per value with Parameter overridden. Values are strings
// so byte sizes keep their suffixes ("4K"); numeric parameters are parsed.
type SweepRequest struct {
	Base      JobSpec  `json:"base"`
	Parameter string   `json:"parameter"`
	Values    []string `json:"values,omitempty"`
	// FromScale fills Values for the "region" parameter from a named
	// experiment scale's pointer-chase sweep (the Fig. 5–7 regions in
	// internal/exp): "quick" or "paper".
	FromScale string `json:"from_scale,omitempty"`
}

// maxSweepPoints bounds one sweep request.
const maxSweepPoints = 256

// sweepPoint is one NDJSON line of the streamed response.
type sweepPoint struct {
	Index  int       `json:"index"`
	Value  string    `json:"value"`
	Job    JobStatus `json:"job"`
	Result *Result   `json:"result,omitempty"`
}

// sweepSummary is the final NDJSON line.
type sweepSummary struct {
	SweepDone bool            `json:"sweep_done"`
	Points    int             `json:"points"`
	Completed int             `json:"completed"`
	Cached    int             `json:"cached"`
	Failed    int             `json:"failed"`
	ElapsedMs float64         `json:"elapsed_ms"`
	Metrics   MetricsSnapshot `json:"metrics"`
}

// resolveValues expands FromScale and validates the value list.
func (sr *SweepRequest) resolveValues() ([]string, error) {
	vals := sr.Values
	if sr.FromScale != "" {
		if len(vals) > 0 {
			return nil, errors.New("sweep: give values or from_scale, not both")
		}
		if sr.Parameter != "region" {
			return nil, fmt.Errorf("sweep: from_scale applies to the region parameter, not %q", sr.Parameter)
		}
		sc, ok := exp.ScaleByName(sr.FromScale)
		if !ok {
			return nil, fmt.Errorf("sweep: unknown scale %q (want quick or paper)", sr.FromScale)
		}
		for _, reg := range sc.Regions {
			if reg <= maxRegionBytes {
				vals = append(vals, strconv.FormatUint(reg, 10))
			}
		}
	}
	if len(vals) == 0 {
		return nil, errors.New("sweep: no values")
	}
	if len(vals) > maxSweepPoints {
		return nil, fmt.Errorf("sweep: %d points exceeds limit %d", len(vals), maxSweepPoints)
	}
	return vals, nil
}

// applySweepValue returns base with parameter overridden to val.
func applySweepValue(base JobSpec, parameter, val string) (JobSpec, error) {
	atoi := func() (int, error) {
		n, err := strconv.Atoi(val)
		if err != nil {
			return 0, fmt.Errorf("sweep: value %q for %s: %v", val, parameter, err)
		}
		return n, nil
	}
	var err error
	switch parameter {
	case "region":
		base.Workload.Region = val
	case "bytes":
		base.Workload.Bytes = val
	case "footprint":
		base.Workload.Footprint = val
	case "op":
		base.Workload.Op = val
	case "name":
		base.Workload.Name = val
	case "instructions":
		base.Workload.Instructions, err = atoi()
	case "dimms":
		base.Config.DIMMs, err = atoi()
	case "window":
		base.Window, err = atoi()
	case "seed":
		var n uint64
		n, err = strconv.ParseUint(val, 10, 64)
		base.Seed = n
	default:
		err = fmt.Errorf("sweep: unknown parameter %q (region, bytes, footprint, op, name, instructions, dimms, window, seed)", parameter)
	}
	return base, err
}

// ExpandSweep resolves a sweep request into one validated spec per point and
// the aligned value list. Every point is pre-validated so a bad sweep fails
// whole, before any output has been streamed. Shared by the local NDJSON
// sweep endpoint and the cluster coordinator's fleet sweep.
func ExpandSweep(sr SweepRequest) ([]JobSpec, []string, error) {
	vals, err := sr.resolveValues()
	if err != nil {
		return nil, nil, err
	}
	specs := make([]JobSpec, len(vals))
	for i, v := range vals {
		spec, err := applySweepValue(sr.Base, sr.Parameter, v)
		if err != nil {
			return nil, nil, err
		}
		if _, err := spec.Compile(); err != nil {
			return nil, nil, fmt.Errorf("sweep point %d (%s=%s): %v", i, sr.Parameter, v, err)
		}
		specs[i] = spec
	}
	return specs, vals, nil
}

// handleSweep streams NDJSON: one line per sweep point as soon as that point
// completes (in sweep order), then a summary line with the service metrics.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var sr SweepRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sr); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	specs, vals, err := ExpandSweep(sr)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	ctx := r.Context()
	start := time.Now()
	// The submitter goroutine keeps the queue fed (retrying while full) and
	// hands job IDs over in sweep order; the response loop streams each
	// point the moment it finishes.
	type submitted struct {
		id  string
		err error
	}
	ids := make(chan submitted, len(specs))
	go func() {
		defer close(ids)
		for _, spec := range specs {
			for {
				// Submitter-context submission: a client disconnect cancels
				// every still-pending point instead of orphaning them.
				st, err := s.SubmitCtx(ctx, spec)
				if err == nil {
					ids <- submitted{id: st.ID}
					break
				}
				if !errors.Is(err, ErrQueueFull) {
					ids <- submitted{err: err}
					return
				}
				select {
				case <-ctx.Done():
					ids <- submitted{err: ctx.Err()}
					return
				case <-time.After(2 * time.Millisecond):
				}
			}
		}
	}()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	sum := sweepSummary{SweepDone: true}
	i := 0
	for sub := range ids {
		if sub.err != nil {
			// Streaming already began: emit the failure as a point line.
			_ = enc.Encode(errorBody{Error: sub.err.Error()})
			break
		}
		st, err := s.Wait(ctx, sub.id)
		if err != nil {
			_ = enc.Encode(errorBody{Error: err.Error()})
			break
		}
		pt := sweepPoint{Index: i, Value: vals[i], Job: st}
		sum.Points++
		switch st.State {
		case JobDone:
			sum.Completed++
			if st.Cached {
				sum.Cached++
			}
			pt.Result, _, _ = s.Result(sub.id)
		default:
			sum.Failed++
		}
		_ = enc.Encode(pt)
		if flusher != nil {
			flusher.Flush()
		}
		i++
	}
	sum.ElapsedMs = float64(time.Since(start)) / float64(time.Millisecond)
	sum.Metrics = s.MetricsSnapshot()
	_ = enc.Encode(sum)
	if flusher != nil {
		flusher.Flush()
	}
}

// SweepAggregate summarizes a finished sweep's results for programmatic
// callers (used by tests and example clients): per-point average latency and
// bandwidth keyed by value.
type SweepAggregate struct {
	Parameter string    `json:"parameter"`
	Values    []string  `json:"values"`
	AvgNs     []float64 `json:"avg_ns"`
	GBs       []float64 `json:"gbs"`
}

// Aggregate folds sweep point results into aligned series.
func Aggregate(parameter string, values []string, results []*Result) SweepAggregate {
	agg := SweepAggregate{Parameter: parameter, Values: values}
	for _, r := range results {
		if r == nil {
			agg.AvgNs = append(agg.AvgNs, 0)
			agg.GBs = append(agg.GBs, 0)
			continue
		}
		agg.AvgNs = append(agg.AvgNs, r.AvgLatencyNs)
		agg.GBs = append(agg.GBs, r.BandwidthGBs)
	}
	return agg
}
