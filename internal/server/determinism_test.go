package server

import (
	"bytes"
	"context"
	"sync"
	"testing"
)

// TestRunDeterminismAcrossRunners is the regression test that makes the
// result cache sound: the same compiled job, run on different Runners in
// concurrent goroutines, must produce byte-identical canonical results.
func TestRunDeterminismAcrossRunners(t *testing.T) {
	specs := map[string]JobSpec{
		"chase": chaseSpec("32K", 3),
		"seq":   seqSpec("32K", "store-nt", 3),
		"trace": {Workload: WorkloadSpec{Kind: KindTrace,
			Trace: "0 load 0x0 64\n0 store 0x40 64\n0 store-nt 0x1000 64\n0 mfence 0x0 0\n"}},
		"cloud": {Workload: WorkloadSpec{Kind: KindCloud, Name: "Redis",
			Instructions: 4000, Footprint: "1M"}, Seed: 9},
	}
	for name, spec := range specs {
		spec := spec
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			p, err := spec.Compile()
			if err != nil {
				t.Fatalf("Compile: %v", err)
			}
			const replicas = 3
			out := make([][]byte, replicas)
			var wg sync.WaitGroup
			for i := 0; i < replicas; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					res, err := NewRunner().Run(context.Background(), p)
					if err != nil {
						t.Errorf("replica %d: %v", i, err)
						return
					}
					out[i] = res.Canonical()
				}(i)
			}
			wg.Wait()
			for i := 1; i < replicas; i++ {
				if out[i] == nil || out[0] == nil {
					t.Fatal("missing replica output")
				}
				if !bytes.Equal(out[0], out[i]) {
					t.Errorf("replica %d diverged:\n%s\nvs\n%s", i, out[0], out[i])
				}
			}
		})
	}
}

// TestRunSpecMatchesRunner pins the CLI entry point to the worker path.
func TestRunSpecMatchesRunner(t *testing.T) {
	spec := chaseSpec("16K", 5)
	a, err := RunSpec(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := spec.Compile()
	b, err := NewRunner().Run(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Canonical(), b.Canonical()) {
		t.Error("RunSpec and Runner.Run disagree on the same spec")
	}
	if a.Hash != p.Hash() {
		t.Errorf("result hash %s != plan hash %s", a.Hash, p.Hash())
	}
}

// TestRunSanity spot-checks that results carry real simulation output.
func TestRunSanity(t *testing.T) {
	res, err := RunSpec(context.Background(), seqSpec("16K", "store-nt", 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Accesses != 256 || res.BytesMoved != 16<<10 {
		t.Errorf("accesses=%d bytes=%d, want 256 / 16384", res.Accesses, res.BytesMoved)
	}
	if res.ElapsedCycles == 0 || res.BandwidthGBs <= 0 {
		t.Errorf("degenerate timing: %+v", res)
	}
	if len(res.Vans.DIMMs) != 1 || res.Vans.DIMMs[0].ClientWrites == 0 {
		t.Errorf("snapshot missing DIMM activity: %+v", res.Vans)
	}
}

// TestRunCancellation verifies a canceled context aborts a long replay.
func TestRunCancellation(t *testing.T) {
	spec := chaseSpec("64M", 1)
	spec.Workload.MaxSteps = maxChaseSteps // long dependent chain
	p, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rn := NewRunner()
	rn.checkEvery = 64
	if _, err := rn.Run(ctx, p); err == nil {
		t.Fatal("Run with canceled context succeeded")
	}
}
