package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/fault"
)

// faultSpec returns a small chase job with the given fault spec attached.
func faultSpec(seed uint64, f *fault.Spec) JobSpec {
	s := chaseSpec("16K", seed)
	s.Fault = f
	return s
}

// TestPanicJobFailsAndDaemonSurvives is the headline robustness regression:
// a job that panics the simulation engine must come back as a failed job
// carrying the panic value and stack, the worker must be replaced, and the
// daemon must keep serving subsequent jobs.
func TestPanicJobFailsAndDaemonSurvives(t *testing.T) {
	s := New(Options{Workers: 1, QueueDepth: 8, CacheEntries: -1, BreakerThreshold: -1})
	defer s.Shutdown(5 * time.Second)

	st, err := s.Submit(faultSpec(1, &fault.Spec{CrashAccess: 5}))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	st = waitDone(t, s, st.ID)
	if st.State != JobFailed {
		t.Fatalf("panicking job state = %q, want failed", st.State)
	}
	if !strings.Contains(st.Error, "job panicked") ||
		!strings.Contains(st.Error, fault.CrashPanicMsg(5)) {
		t.Errorf("job error missing panic context: %q", st.Error)
	}
	if !strings.Contains(st.Error, "runJob") {
		t.Errorf("job error missing stack trace: %q", st.Error)
	}

	// The pool had exactly one worker; if it died without replacement this
	// submission would hang forever.
	st2, err := s.Submit(chaseSpec("16K", 2))
	if err != nil {
		t.Fatalf("Submit after panic: %v", err)
	}
	if st2 = waitDone(t, s, st2.ID); st2.State != JobDone {
		t.Fatalf("job after panic state = %q, want done (err %q)", st2.State, st2.Error)
	}

	m := s.MetricsSnapshot()
	if m.JobPanics < 1 {
		t.Errorf("job_panics = %d, want >= 1", m.JobPanics)
	}
	if m.WorkersReplaced < 1 {
		t.Errorf("workers_replaced = %d, want >= 1", m.WorkersReplaced)
	}
}

// TestTransientFaultRetriedToSuccess pins the retry policy: a transient
// injected fault fails attempt 0 and clears on attempt 1, so the job
// completes with at least one recorded retry. A permanent fault must not be
// retried and must surface as a typed media error.
func TestTransientFaultRetriedToSuccess(t *testing.T) {
	s := New(Options{Workers: 1, QueueDepth: 8, CacheEntries: -1,
		MaxRetries: 2, RetryBaseDelay: time.Millisecond, BreakerThreshold: -1})
	defer s.Shutdown(5 * time.Second)

	st, err := s.Submit(faultSpec(3, &fault.Spec{PoisonRate: 1, PoisonTransient: true}))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if st = waitDone(t, s, st.ID); st.State != JobDone {
		t.Fatalf("transient job state = %q, want done (err %q)", st.State, st.Error)
	}
	if m := s.MetricsSnapshot(); m.JobRetries < 1 {
		t.Errorf("job_retries = %d, want >= 1", m.JobRetries)
	}

	st, err = s.Submit(faultSpec(4, &fault.Spec{PoisonRate: 1}))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if st = waitDone(t, s, st.ID); st.State != JobFailed {
		t.Fatalf("permanent-fault job state = %q, want failed", st.State)
	}
	if !strings.Contains(st.Error, "media read error") {
		t.Errorf("permanent fault error = %q, want a media read error", st.Error)
	}
}

// TestBreakerTripsAndRecovers drives the circuit breaker through its full
// cycle over the HTTP API: consecutive engine failures open it (healthz goes
// degraded, submissions shed with 503 + Retry-After), the cooldown admits a
// probe, and a successful probe closes it again.
func TestBreakerTripsAndRecovers(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 8, CacheEntries: -1,
		BreakerThreshold: 2, BreakerCooldown: 50 * time.Millisecond})

	for seed := uint64(10); seed < 12; seed++ {
		st, err := s.Submit(faultSpec(seed, &fault.Spec{PoisonRate: 1}))
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		if st = waitDone(t, s, st.ID); st.State != JobFailed {
			t.Fatalf("fault job state = %q, want failed", st.State)
		}
	}

	if state, _, opens := s.BreakerState(); state != BreakerOpen || opens != 1 {
		t.Fatalf("breaker = %q opens=%d, want open opens=1", state, opens)
	}
	if _, err := s.Submit(chaseSpec("16K", 20)); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("submit with open breaker: err = %v, want ErrBreakerOpen", err)
	}

	resp := postJSON(t, ts.URL+"/v1/jobs", chaseSpec("16K", 21))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("open-breaker submit status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("open-breaker 503 without Retry-After")
	}
	resp.Body.Close()

	r, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if r.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("degraded healthz status = %d, want 503", r.StatusCode)
	}
	var h struct {
		Status  string `json:"status"`
		Breaker string `json:"breaker"`
	}
	if err := json.NewDecoder(r.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if h.Status != "degraded" || h.Breaker != BreakerOpen {
		t.Errorf("healthz = %+v, want status degraded, breaker open", h)
	}

	// Past the cooldown a single clean probe is admitted; its success closes
	// the circuit.
	time.Sleep(60 * time.Millisecond)
	st, err := s.Submit(chaseSpec("16K", 22))
	if err != nil {
		t.Fatalf("probe submit: %v", err)
	}
	if st = waitDone(t, s, st.ID); st.State != JobDone {
		t.Fatalf("probe state = %q, want done (err %q)", st.State, st.Error)
	}
	if state, _, _ := s.BreakerState(); state != BreakerClosed {
		t.Fatalf("breaker after probe = %q, want closed", state)
	}
	r2, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if r2.StatusCode != http.StatusOK {
		t.Errorf("recovered healthz status = %d, want 200", r2.StatusCode)
	}
	r2.Body.Close()
}

// The breaker state-machine unit test lives in internal/breaker, where the
// implementation moved when the cluster layer started sharing it.

// TestPowerFailJobReturnsCrashReport runs a power-fail job end to end through
// the service: the result carries a consistent crash report instead of
// steady-state bandwidth, and is byte-identical across submissions (cache off).
func TestPowerFailJobReturnsCrashReport(t *testing.T) {
	s := New(Options{Workers: 2, QueueDepth: 8, CacheEntries: -1})
	defer s.Shutdown(5 * time.Second)

	spec := JobSpec{
		Workload: WorkloadSpec{Kind: KindSeq, Bytes: "16K", Op: "store-nt"},
		Seed:     7,
		Fault:    &fault.Spec{PowerFailCycle: 4000},
	}
	var first []byte
	for i := 0; i < 2; i++ {
		st, err := s.Submit(spec)
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		if st = waitDone(t, s, st.ID); st.State != JobDone {
			t.Fatalf("power-fail job state = %q, want done (err %q)", st.State, st.Error)
		}
		res, _, _ := s.Result(st.ID)
		if res == nil || res.Crash == nil {
			t.Fatal("power-fail result missing crash report")
		}
		if !res.Crash.Consistent {
			t.Fatalf("crash report inconsistent: %+v", res.Crash.Mismatches)
		}
		if i == 0 {
			first = res.Canonical()
		} else if string(first) != string(res.Canonical()) {
			t.Error("power-fail results differ across runs")
		}
	}

	// Memory mode cannot honor the ADR contract; the spec must be rejected at
	// compile time.
	bad := spec
	bad.Config.Mode = "memory"
	if _, err := s.Submit(bad); err == nil {
		t.Error("memory-mode power-fail spec accepted, want compile error")
	}
}

// waitDone blocks until the job reaches a terminal state.
func waitDone(t *testing.T, s *Server, id string) JobStatus {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	st, err := s.Wait(ctx, id)
	if err != nil {
		t.Fatalf("Wait(%s): %v", id, err)
	}
	return st
}
