package server

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"
)

// slowSpec is a job long enough to still be running when the test needs an
// occupied worker: a dependent chase over a large region.
func slowSpec(seed uint64) JobSpec {
	return JobSpec{
		Workload: WorkloadSpec{Kind: KindChase, Region: "64M", MaxSteps: maxChaseSteps},
		Seed:     seed,
	}
}

func TestSubmitAndWait(t *testing.T) {
	s := New(Options{Workers: 2, QueueDepth: 8})
	defer s.Shutdown(5 * time.Second)

	st, err := s.Submit(chaseSpec("16K", 1))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if st.State != JobQueued {
		t.Fatalf("state = %s, want queued", st.State)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	fin, err := s.Wait(ctx, st.ID)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if fin.State != JobDone {
		t.Fatalf("state = %s (%s), want done", fin.State, fin.Error)
	}
	res, _, ok := s.Result(st.ID)
	if !ok || res == nil {
		t.Fatal("Result missing after done")
	}
	if res.Hash != st.Hash {
		t.Errorf("result hash %s != job hash %s", res.Hash, st.Hash)
	}
}

func TestUnknownJob(t *testing.T) {
	s := New(Options{Workers: 1})
	defer s.Shutdown(time.Second)
	if _, ok := s.Status("nope"); ok {
		t.Error("Status of unknown job reported ok")
	}
	if _, _, ok := s.Result("nope"); ok {
		t.Error("Result of unknown job reported ok")
	}
	if _, err := s.Wait(context.Background(), "nope"); err == nil {
		t.Error("Wait on unknown job succeeded")
	}
}

func TestCacheHitCompletesImmediately(t *testing.T) {
	s := New(Options{Workers: 1, QueueDepth: 4, CacheEntries: 16})
	defer s.Shutdown(5 * time.Second)

	spec := chaseSpec("16K", 2)
	st, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := s.Wait(ctx, st.ID); err != nil {
		t.Fatal(err)
	}

	st2, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st2.State != JobDone || !st2.Cached {
		t.Fatalf("duplicate submission state=%s cached=%v, want immediate cached done", st2.State, st2.Cached)
	}
	r1, _, _ := s.Result(st.ID)
	r2, _, _ := s.Result(st2.ID)
	if string(r1.Canonical()) != string(r2.Canonical()) {
		t.Error("cached result differs from original")
	}
	m := s.MetricsSnapshot()
	if m.CacheHits != 1 || m.JobsCached != 1 {
		t.Errorf("cache counters = hits %d cached %d, want 1/1", m.CacheHits, m.JobsCached)
	}
}

func TestQueueFullRejects(t *testing.T) {
	s := New(Options{Workers: 1, QueueDepth: 1, CacheEntries: -1})
	defer s.Shutdown(100 * time.Millisecond)

	// One job occupies the worker, one fills the queue, the next bounces.
	// Seeds differ so the disabled cache is not even consulted.
	if _, err := s.Submit(slowSpec(1)); err != nil {
		t.Fatal(err)
	}
	// Give the worker a moment to dequeue the first job.
	deadline := time.Now().Add(2 * time.Second)
	for len(s.queue) != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if _, err := s.Submit(slowSpec(2)); err != nil {
		t.Fatal(err)
	}
	_, err := s.Submit(slowSpec(3))
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit: %v, want ErrQueueFull", err)
	}
	if m := s.MetricsSnapshot(); m.RejectedQueueFull != 1 {
		t.Errorf("rejected_queue_full = %d, want 1", m.RejectedQueueFull)
	}
}

func TestJobTimeoutCancels(t *testing.T) {
	s := New(Options{Workers: 1, QueueDepth: 2, JobTimeout: 5 * time.Millisecond})
	defer s.Shutdown(5 * time.Second)

	st, err := s.Submit(slowSpec(4))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	fin, err := s.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != JobCanceled {
		t.Fatalf("state = %s, want canceled (timeout)", fin.State)
	}
	if m := s.MetricsSnapshot(); m.JobsCanceled != 1 {
		t.Errorf("jobs_canceled = %d, want 1", m.JobsCanceled)
	}
}

// TestGracefulShutdown covers the drain contract: submissions are rejected
// once draining, in-flight jobs finish or are canceled within the budget,
// and the goroutine count returns to baseline (no leaks).
func TestGracefulShutdown(t *testing.T) {
	baseline := runtime.NumGoroutine()

	s := New(Options{Workers: 2, QueueDepth: 8})
	for i := uint64(0); i < 4; i++ {
		if _, err := s.Submit(chaseSpec("16K", 10+i)); err != nil {
			t.Fatal(err)
		}
	}
	if !s.Shutdown(30 * time.Second) {
		t.Error("drain did not complete cleanly within the budget")
	}
	if _, err := s.Submit(chaseSpec("16K", 99)); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit after shutdown: %v, want ErrDraining", err)
	}
	if m := s.MetricsSnapshot(); m.RejectedDraining != 1 {
		t.Errorf("rejected_draining = %d, want 1", m.RejectedDraining)
	}

	waitForGoroutines(t, baseline)
}

// TestForcedShutdownCancelsInFlight verifies the second drain phase: a job
// that cannot finish inside the budget is context-canceled, and the pool
// still exits.
func TestForcedShutdownCancelsInFlight(t *testing.T) {
	baseline := runtime.NumGoroutine()

	s := New(Options{Workers: 1, QueueDepth: 4, CacheEntries: -1})
	st, err := s.Submit(slowSpec(5))
	if err != nil {
		t.Fatal(err)
	}
	// Ensure the job is running before draining.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cur, _ := s.Status(st.ID); cur.State == JobRunning {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if s.Shutdown(time.Millisecond) {
		t.Log("drain reported clean; job finished faster than expected")
	}
	fin, _ := s.Status(st.ID)
	if fin.State != JobCanceled && fin.State != JobDone {
		t.Fatalf("in-flight job state after forced drain = %s, want canceled or done", fin.State)
	}

	waitForGoroutines(t, baseline)
}

// waitForGoroutines polls until the goroutine count drops back to the
// baseline (with slack for runtime helpers) or fails the test.
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 64<<10)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutines leaked: baseline %d, now %d\n%s",
		baseline, runtime.NumGoroutine(), buf[:n])
}
