package server

import (
	"sort"

	"repro/internal/obs"
)

// StageDumps flattens the service-wide merged per-stage simulated-latency
// histograms (the same distributions behind nvmserved_stage_latency_ns) into
// their wire shape, sorted by stage name so the slice is deterministic for a
// given service state. The fleet dashboard aggregates these across members.
func (s *Server) StageDumps() []obs.HistogramDump {
	stages := s.metrics.stageSnapshot()
	names := make([]string, 0, len(stages))
	for name := range stages {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]obs.HistogramDump, 0, len(names))
	for _, name := range names {
		out = append(out, stages[name].DumpAs(name))
	}
	return out
}

// VerdictCounts returns completed jobs bucketed by named bottleneck regime
// (nil until the first job produces a verdict).
func (s *Server) VerdictCounts() map[string]uint64 {
	return s.metrics.verdictSnapshot()
}
