package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Shutdown(30 * time.Second)
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeBody[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return v
}

// TestHTTPConcurrentMixedJobs is the headline acceptance test: ≥50
// concurrent submissions through the HTTP API, mixing duplicates and unique
// jobs. All must complete, duplicates must be served by the cache (checked
// via the cache-hit counter), and every result must match the
// single-threaded replay of the same spec.
func TestHTTPConcurrentMixedJobs(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 4, QueueDepth: 128, CacheEntries: 64})

	dup := seqSpec("16K", "store-nt", 1)
	// Pre-warm the duplicate spec so every later duplicate is a guaranteed
	// cache hit regardless of scheduling interleave.
	resp := postJSON(t, ts.URL+"/v1/jobs?wait=1", dup)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm-up status = %d", resp.StatusCode)
	}
	warm := decodeBody[submitResponse](t, resp)
	if warm.Job.State != JobDone || warm.Result == nil {
		t.Fatalf("warm-up did not complete: %+v", warm.Job)
	}

	const dups, uniques = 25, 25
	// Expected results computed by single-threaded replay, outside the pool.
	expect := make(map[string][]byte) // hash -> canonical result
	specs := make([]JobSpec, 0, dups+uniques)
	for i := 0; i < dups; i++ {
		specs = append(specs, dup)
	}
	for i := 0; i < uniques; i++ {
		specs = append(specs, chaseSpec("16K", uint64(100+i)))
	}
	for _, spec := range specs {
		p, err := spec.Compile()
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := expect[p.Hash()]; ok {
			continue
		}
		res, err := NewRunner().Run(context.Background(), p)
		if err != nil {
			t.Fatal(err)
		}
		expect[p.Hash()] = res.Canonical()
	}

	var wg sync.WaitGroup
	errs := make(chan error, len(specs))
	for i, spec := range specs {
		wg.Add(1)
		go func(i int, spec JobSpec) {
			defer wg.Done()
			resp := postJSON(t, ts.URL+"/v1/jobs?wait=1", spec)
			if resp.StatusCode != http.StatusOK {
				resp.Body.Close()
				errs <- fmt.Errorf("job %d: status %d", i, resp.StatusCode)
				return
			}
			out := decodeBody[submitResponse](t, resp)
			if out.Job.State != JobDone || out.Result == nil {
				errs <- fmt.Errorf("job %d: state %s (%s)", i, out.Job.State, out.Job.Error)
				return
			}
			want, ok := expect[out.Job.Hash]
			if !ok {
				errs <- fmt.Errorf("job %d: unexpected hash %s", i, out.Job.Hash)
				return
			}
			if !bytes.Equal(out.Result.Canonical(), want) {
				errs <- fmt.Errorf("job %d: result diverges from single-threaded replay", i)
			}
		}(i, spec)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	m := s.MetricsSnapshot()
	if m.CacheHits < dups {
		t.Errorf("cache_hits = %d, want >= %d (all duplicates)", m.CacheHits, dups)
	}
	if want := uint64(1 + dups + uniques); m.JobsAccepted != want {
		t.Errorf("jobs_accepted = %d, want %d", m.JobsAccepted, want)
	}
	if m.JobsCompleted+m.JobsCached != uint64(1+dups+uniques) {
		t.Errorf("completed %d + cached %d != accepted %d",
			m.JobsCompleted, m.JobsCached, m.JobsAccepted)
	}
	if m.JobsFailed != 0 || m.JobsCanceled != 0 {
		t.Errorf("failed=%d canceled=%d, want 0/0", m.JobsFailed, m.JobsCanceled)
	}
}

func TestHTTPJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 8})

	resp := postJSON(t, ts.URL+"/v1/jobs", chaseSpec("16K", 42))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	sub := decodeBody[submitResponse](t, resp)
	id := sub.Job.ID

	// Poll status until terminal.
	deadline := time.Now().Add(30 * time.Second)
	var st JobStatus
	for time.Now().Before(deadline) {
		r, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		st = decodeBody[JobStatus](t, r)
		if st.State == JobDone || st.State == JobFailed {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st.State != JobDone {
		t.Fatalf("job never completed: %+v", st)
	}

	r, err := http.Get(ts.URL + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	if r.StatusCode != http.StatusOK {
		t.Fatalf("result status = %d, want 200", r.StatusCode)
	}
	res := decodeBody[Result](t, r)
	if res.Hash != st.Hash || res.Accesses == 0 {
		t.Errorf("result payload wrong: %+v", res)
	}
}

func TestHTTPErrors(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 8})

	// Unknown job.
	r, _ := http.Get(ts.URL + "/v1/jobs/zzz")
	if r.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status = %d, want 404", r.StatusCode)
	}
	r.Body.Close()

	// Invalid spec.
	resp := postJSON(t, ts.URL+"/v1/jobs", JobSpec{Workload: WorkloadSpec{Kind: "zap"}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad spec status = %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	// Unknown JSON field.
	resp2, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"workload":{"kind":"chase"},"bogus":1}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field status = %d, want 400", resp2.StatusCode)
	}
	resp2.Body.Close()

	// Healthz.
	r2, _ := http.Get(ts.URL + "/v1/healthz")
	if r2.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d, want 200", r2.StatusCode)
	}
	r2.Body.Close()
}

func TestHTTPQueueFullAndDraining(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 1, CacheEntries: -1})

	// Occupy the worker and fill the queue with slow jobs.
	postJSON(t, ts.URL+"/v1/jobs", slowSpec(50)).Body.Close()
	deadline := time.Now().Add(2 * time.Second)
	for len(s.queue) != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	postJSON(t, ts.URL+"/v1/jobs", slowSpec(51)).Body.Close()

	resp := postJSON(t, ts.URL+"/v1/jobs", slowSpec(52))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("full queue status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	resp.Body.Close()

	// Drain (forced; the slow jobs are canceled) and verify the API says so.
	s.Shutdown(10 * time.Millisecond)
	resp = postJSON(t, ts.URL+"/v1/jobs", chaseSpec("16K", 53))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining submit status = %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()
	r, _ := http.Get(ts.URL + "/v1/healthz")
	if r.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining healthz = %d, want 503", r.StatusCode)
	}
	r.Body.Close()
}

// TestHTTPSweep drives the batch endpoint: a region sweep fans across the
// pool, streams one NDJSON line per point in order, and ends with a summary
// whose metrics include utilization and latency percentiles.
func TestHTTPSweep(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: runtime.GOMAXPROCS(0), QueueDepth: 64})

	// Pre-warm one sweep value so its repeat inside the sweep is a
	// guaranteed cache hit (a duplicate submitted while its twin is still
	// in flight legitimately misses).
	warm := chaseSpec("16K", 77)
	postJSON(t, ts.URL+"/v1/jobs?wait=1", warm).Body.Close()

	req := SweepRequest{
		Base:      chaseSpec("4K", 77),
		Parameter: "region",
		Values:    []string{"4K", "8K", "16K", "32K", "16K"}, // duplicates of the warmed value
	}
	resp := postJSON(t, ts.URL+"/v1/sweep", req)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type = %q", ct)
	}

	var points []sweepPoint
	var sum sweepSummary
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if bytes.Contains(line, []byte(`"sweep_done"`)) {
			if err := json.Unmarshal(line, &sum); err != nil {
				t.Fatalf("summary line: %v", err)
			}
			continue
		}
		var pt sweepPoint
		if err := json.Unmarshal(line, &pt); err != nil {
			t.Fatalf("point line %q: %v", line, err)
		}
		points = append(points, pt)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	if len(points) != len(req.Values) {
		t.Fatalf("got %d points, want %d", len(points), len(req.Values))
	}
	for i, pt := range points {
		if pt.Index != i || pt.Value != req.Values[i] {
			t.Errorf("point %d out of order: %+v", i, pt)
		}
		if pt.Job.State != JobDone || pt.Result == nil {
			t.Errorf("point %d incomplete: %+v", i, pt.Job)
		}
	}
	// Larger chase regions overflow more buffers: latency must not shrink.
	if points[0].Result.AvgLatencyNs > points[3].Result.AvgLatencyNs {
		t.Errorf("latency not monotonic-ish: 4K=%.1f 32K=%.1f",
			points[0].Result.AvgLatencyNs, points[3].Result.AvgLatencyNs)
	}
	if !sum.SweepDone || sum.Points != len(req.Values) || sum.Completed != len(req.Values) {
		t.Errorf("summary wrong: %+v", sum)
	}
	if sum.Cached < 1 {
		t.Errorf("duplicate sweep point not served from cache: %+v", sum)
	}
	m := sum.Metrics
	if m.WorkerUtilization <= 0 || m.WorkerUtilization > 1 {
		t.Errorf("worker_utilization = %f, want (0,1]", m.WorkerUtilization)
	}
	if m.JobLatencyMs.N == 0 || m.JobLatencyMs.P99 < m.JobLatencyMs.P50 {
		t.Errorf("latency percentiles wrong: %+v", m.JobLatencyMs)
	}
	if m.QueueDepth != 0 {
		t.Errorf("queue_depth after sweep = %d, want 0", m.QueueDepth)
	}
}

func TestHTTPSweepFromScale(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2, QueueDepth: 64})
	base := chaseSpec("4K", 3)
	base.Workload.MaxSteps = 200
	req := SweepRequest{Base: base, Parameter: "region", FromScale: "quick"}
	resp := postJSON(t, ts.URL+"/v1/sweep", req)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status = %d", resp.StatusCode)
	}
	var lines int
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for sc.Scan() {
		lines++
	}
	if lines < 3 {
		t.Errorf("from_scale sweep produced %d lines, want several points + summary", lines)
	}
}

func TestHTTPSweepBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 4})
	for name, req := range map[string]SweepRequest{
		"no values":      {Base: chaseSpec("4K", 1), Parameter: "region"},
		"bad param":      {Base: chaseSpec("4K", 1), Parameter: "zap", Values: []string{"1"}},
		"bad value":      {Base: chaseSpec("4K", 1), Parameter: "dimms", Values: []string{"x"}},
		"bad point":      {Base: chaseSpec("4K", 1), Parameter: "region", Values: []string{"64"}},
		"both sources":   {Base: chaseSpec("4K", 1), Parameter: "region", Values: []string{"4K"}, FromScale: "quick"},
		"bad scale":      {Base: chaseSpec("4K", 1), Parameter: "region", FromScale: "zap"},
		"scale mismatch": {Base: chaseSpec("4K", 1), Parameter: "dimms", FromScale: "quick"},
	} {
		resp := postJSON(t, ts.URL+"/v1/sweep", req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", name, resp.StatusCode)
		}
		resp.Body.Close()
	}
}

func TestHTTPMetricsShape(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2, QueueDepth: 8})
	postJSON(t, ts.URL+"/v1/jobs?wait=1", seqSpec("8K", "load", 9)).Body.Close()

	r, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(r.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"queue_depth", "workers", "worker_utilization",
		"cache_hit_rate", "job_latency_ms", "jobs_accepted", "jobs_completed"} {
		if _, ok := m[key]; !ok {
			t.Errorf("metrics missing %q", key)
		}
	}
	lat, ok := m["job_latency_ms"].(map[string]any)
	if !ok {
		t.Fatalf("job_latency_ms not an object: %T", m["job_latency_ms"])
	}
	for _, key := range []string{"p50", "p95", "p99"} {
		if _, ok := lat[key]; !ok {
			t.Errorf("latency summary missing %q", key)
		}
	}
}
