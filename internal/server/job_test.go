package server

import (
	"strings"
	"testing"
)

func chaseSpec(region string, seed uint64) JobSpec {
	return JobSpec{
		Workload: WorkloadSpec{Kind: KindChase, Region: region, MaxSteps: 400},
		Seed:     seed,
	}
}

func seqSpec(bytes, op string, seed uint64) JobSpec {
	return JobSpec{
		Workload: WorkloadSpec{Kind: KindSeq, Bytes: bytes, Op: op},
		Seed:     seed,
	}
}

func TestCompileDefaults(t *testing.T) {
	p, err := JobSpec{Workload: WorkloadSpec{Kind: "chase"}}.Compile()
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if p.DIMMs != 1 || p.Mode != "appdirect" || p.CfgSeed != 1 {
		t.Errorf("config defaults wrong: %+v", p)
	}
	if p.Region != 1<<20 || p.MaxSteps != 200000 {
		t.Errorf("chase defaults wrong: region=%d maxSteps=%d", p.Region, p.MaxSteps)
	}
	if p.Window != 10 || p.Seed != 1 {
		t.Errorf("replay defaults wrong: window=%d seed=%d", p.Window, p.Seed)
	}

	p, err = JobSpec{Workload: WorkloadSpec{Kind: "seq"}}.Compile()
	if err != nil {
		t.Fatalf("Compile seq: %v", err)
	}
	if p.Bytes != 1<<20 || p.Op != "load" {
		t.Errorf("seq defaults wrong: bytes=%d op=%q", p.Bytes, p.Op)
	}
}

func TestCompileSizeSuffixes(t *testing.T) {
	spec := chaseSpec("4K", 1)
	spec.Config.MediaBytes = "64M"
	p, err := spec.Compile()
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if p.Region != 4<<10 {
		t.Errorf("region = %d, want %d", p.Region, 4<<10)
	}
	if p.MediaBytes != 64<<20 {
		t.Errorf("media = %d, want %d", p.MediaBytes, 64<<20)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := map[string]JobSpec{
		"no kind":      {},
		"bad kind":     {Workload: WorkloadSpec{Kind: "zap"}},
		"bad op":       {Workload: WorkloadSpec{Kind: "seq", Op: "zap"}},
		"bad size":     {Workload: WorkloadSpec{Kind: "seq", Bytes: "12X"}},
		"tiny region":  {Workload: WorkloadSpec{Kind: "chase", Region: "64"}},
		"huge region":  {Workload: WorkloadSpec{Kind: "chase", Region: "8G"}},
		"bad mode":     {Config: ConfigSpec{Mode: "direct"}, Workload: WorkloadSpec{Kind: "chase"}},
		"bad dimms":    {Config: ConfigSpec{DIMMs: 99}, Workload: WorkloadSpec{Kind: "chase"}},
		"bad window":   {Window: -2, Workload: WorkloadSpec{Kind: "chase"}},
		"empty trace":  {Workload: WorkloadSpec{Kind: "trace"}},
		"bad trace":    {Workload: WorkloadSpec{Kind: "trace", Trace: "0 zap 0x0 64"}},
		"bad cloud":    {Workload: WorkloadSpec{Kind: "cloud", Name: "NoSuchDB"}},
		"neg instrs":   {Workload: WorkloadSpec{Kind: "cloud", Name: "Redis", Instructions: -1}},
		"huge instrs":  {Workload: WorkloadSpec{Kind: "cloud", Name: "Redis", Instructions: 1 << 30}},
		"bad footmeas": {Workload: WorkloadSpec{Kind: "cloud", Name: "Redis", Footprint: "nope"}},
	}
	for name, spec := range cases {
		if _, err := spec.Compile(); err == nil {
			t.Errorf("%s: Compile succeeded, want error", name)
		}
	}
}

func TestCompileTrace(t *testing.T) {
	text := "0 load 0x0 64\n0 store-nt 0x40 64\n0 mfence 0x0 0\n"
	p, err := JobSpec{Workload: WorkloadSpec{Kind: "trace", Trace: text}}.Compile()
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if p.Trace != text {
		t.Errorf("trace text not preserved")
	}
}

func TestHashStableAndSensitive(t *testing.T) {
	a1, err := chaseSpec("64K", 7).Compile()
	if err != nil {
		t.Fatal(err)
	}
	a2, _ := chaseSpec("64K", 7).Compile()
	if a1.Hash() != a2.Hash() {
		t.Errorf("identical specs hash differently: %s vs %s", a1.Hash(), a2.Hash())
	}
	if len(a1.Hash()) != 64 || strings.ToLower(a1.Hash()) != a1.Hash() {
		t.Errorf("hash %q is not lowercase hex sha256", a1.Hash())
	}

	// Equivalent spellings canonicalize to the same hash.
	b, _ := chaseSpec("65536", 7).Compile()
	if b.Hash() != a1.Hash() {
		t.Errorf("\"64K\" and \"65536\" hash differently")
	}

	// Any semantic change re-keys.
	for name, spec := range map[string]JobSpec{
		"seed":   chaseSpec("64K", 8),
		"region": chaseSpec("32K", 7),
		"kind":   seqSpec("64K", "load", 7),
		"dimms": {Config: ConfigSpec{DIMMs: 2},
			Workload: WorkloadSpec{Kind: KindChase, Region: "64K", MaxSteps: 400}, Seed: 7},
	} {
		p, err := spec.Compile()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.Hash() == a1.Hash() {
			t.Errorf("%s change did not change the hash", name)
		}
	}
}
