package server

import (
	"container/list"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"repro/internal/ckpt"
)

// stateStore is the durable side of preemptible jobs: a directory holding one
// sealed snapshot per in-progress job hash plus a results.json of finished
// work. Everything in it survives a SIGKILL of the daemon — writes are
// tmp+rename atomic, and corrupt or stale snapshots are detected (and
// discarded) by the ckpt envelope on the way back in.
type stateStore struct {
	dir string
}

// newStateStore opens (creating if needed) the state directory. An empty dir
// disables durability: every method is a cheap no-op.
func newStateStore(dir string) (*stateStore, error) {
	if dir == "" {
		return &stateStore{}, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: state dir: %w", err)
	}
	return &stateStore{dir: dir}, nil
}

func (st *stateStore) enabled() bool { return st.dir != "" }

// ckptPath maps a job hash to its snapshot file. Hashes are hex, so they are
// safe as file names.
func (st *stateStore) ckptPath(hash string) string {
	return filepath.Join(st.dir, hash+".ckpt")
}

// LoadCkpt returns the stored snapshot for hash after envelope validation.
// A snapshot that fails validation (truncated write at crash time, stale
// format) is deleted on the spot so the job simply runs from the start
// instead of failing forever.
func (st *stateStore) LoadCkpt(hash string) ([]byte, bool) {
	if !st.enabled() {
		return nil, false
	}
	data, err := os.ReadFile(st.ckptPath(hash))
	if err != nil {
		return nil, false
	}
	if _, err := ckpt.Open(data); err != nil {
		os.Remove(st.ckptPath(hash))
		return nil, false
	}
	return data, true
}

// SaveCkpt atomically replaces the stored snapshot for hash.
func (st *stateStore) SaveCkpt(hash string, snap []byte) error {
	if !st.enabled() {
		return nil
	}
	return atomicWrite(st.ckptPath(hash), snap)
}

// DropCkpt removes the stored snapshot for hash (job finished; the snapshot
// is dead weight).
func (st *stateStore) DropCkpt(hash string) {
	if st.enabled() {
		os.Remove(st.ckptPath(hash))
	}
}

// HasCkpt reports whether a snapshot is stored for hash.
func (st *stateStore) HasCkpt(hash string) bool {
	if !st.enabled() {
		return false
	}
	_, err := os.Stat(st.ckptPath(hash))
	return err == nil
}

// CkptHashes lists every job hash with a stored snapshot, in directory order
// — the scan input for cluster anti-entropy repair.
func (st *stateStore) CkptHashes() []string {
	if !st.enabled() {
		return nil
	}
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return nil
	}
	var hashes []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if h, ok := strings.CutSuffix(e.Name(), ".ckpt"); ok {
			hashes = append(hashes, h)
		}
	}
	return hashes
}

// persistedResult pairs a hash with its canonical result JSON.
type persistedResult struct {
	Hash   string          `json:"hash"`
	Result json.RawMessage `json:"result"`
}

// SaveResults persists the result cache (oldest first, so reloading in order
// reproduces the LRU order).
func (st *stateStore) SaveResults(entries []persistedResult) error {
	if !st.enabled() {
		return nil
	}
	b, err := json.Marshal(entries)
	if err != nil {
		return err
	}
	return atomicWrite(filepath.Join(st.dir, "results.json"), b)
}

// LoadResults returns the persisted result cache (empty on any miss or decode
// failure: the cache is an optimization, not a source of truth).
func (st *stateStore) LoadResults() []persistedResult {
	if !st.enabled() {
		return nil
	}
	b, err := os.ReadFile(filepath.Join(st.dir, "results.json"))
	if err != nil {
		return nil
	}
	var entries []persistedResult
	if json.Unmarshal(b, &entries) != nil {
		return nil
	}
	return entries
}

// atomicWrite writes data to path via a same-directory temp file and rename,
// so readers (and a daemon restarted after SIGKILL) never observe a torn
// file.
func atomicWrite(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return err
	}
	return nil
}

// warmCacheCap bounds the warm-snapshot cache. Warm snapshots are full system
// images (hundreds of KB for realistic plans), and a sweep reuses one per
// shared prefix, so a handful covers concurrent sweeps.
const warmCacheCap = 8

// warmCache is a small LRU of warm-start snapshots keyed by WarmHash. It is
// memory-only: a warm snapshot is a pure optimization (the warmup prefix can
// always be re-simulated) and is cheap to rebuild on restart.
type warmCache struct {
	mu sync.Mutex
	ll *list.List
	m  map[string]*list.Element
}

type warmEntry struct {
	key  string
	snap []byte
}

func newWarmCache() *warmCache {
	return &warmCache{ll: list.New(), m: make(map[string]*list.Element)}
}

// Get returns the warm snapshot for key, promoting it.
func (c *warmCache) Get(key string) ([]byte, bool) {
	if key == "" {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*warmEntry).snap, true
}

// Put inserts or refreshes key, evicting the least recently used entry.
func (c *warmCache) Put(key string, snap []byte) {
	if key == "" || snap == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		el.Value.(*warmEntry).snap = snap
		c.ll.MoveToFront(el)
		return
	}
	c.m[key] = c.ll.PushFront(&warmEntry{key: key, snap: snap})
	for c.ll.Len() > warmCacheCap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.m, oldest.Value.(*warmEntry).key)
	}
}

// Len returns the resident entry count.
func (c *warmCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// validSnapshotName reports whether hash is safe to use as a snapshot file
// name component (defense for the peer/HTTP checkpoint endpoints).
func validSnapshotName(hash string) bool {
	if hash == "" || len(hash) > 128 {
		return false
	}
	return !strings.ContainsAny(hash, "/\\. ")
}
