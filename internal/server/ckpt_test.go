package server

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/ckpt"
	"repro/internal/exp"
	"repro/internal/fault"
)

// overwriteTrace builds an inline text trace that hammers a small address set
// with stores — the access pattern of the wear-leveling / overwrite-tail
// figures.
func overwriteTrace(lines, n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "%d store 0x%x 64\n", i, uint64(i%lines)*64)
	}
	return b.String()
}

// figureSpec names one representative job shape; figureSpecs maps every
// registered experiment onto one (or marks it static). The restore-identity
// test runs each distinct shape once.
type figureSpec struct {
	key string
	// static marks table-only experiments with no simulation to checkpoint.
	static bool
}

var figureShapes = map[string]JobSpec{
	// Dependent-chain latency probes over one DIMM (buffer probers, accuracy
	// and characterization figures).
	"chase-1dimm": {
		Config:   ConfigSpec{MediaBytes: "16M"},
		Workload: WorkloadSpec{Kind: "chase", Region: "256K", MaxSteps: 2400},
		Seed:     7, CkptEvery: 700,
	},
	// The same chain across 6 interleaved DIMMs (interleaving figures).
	"chase-6dimm": {
		Config:   ConfigSpec{DIMMs: 6, Interleaved: true, MediaBytes: "8M"},
		Workload: WorkloadSpec{Kind: "chase", Region: "256K", MaxSteps: 2400},
		Seed:     7, CkptEvery: 700,
	},
	// Media-capacity sensitivity: a smaller media with the same chain.
	"chase-smallmedia": {
		Config:   ConfigSpec{MediaBytes: "4M"},
		Workload: WorkloadSpec{Kind: "chase", Region: "128K", MaxSteps: 2400},
		Seed:     7, CkptEvery: 700,
	},
	// Streaming stores over 6 DIMMs (bandwidth / MLP / scaling figures).
	"stream-6dimm": {
		Config:   ConfigSpec{DIMMs: 6, Interleaved: true, MediaBytes: "8M"},
		Workload: WorkloadSpec{Kind: "seq", Bytes: "128K", Op: "store-nt"},
		Window:   8, Seed: 7, CkptEvery: 600,
	},
	// Streaming loads through the RMW/AIT path (amplification / ablation
	// figures).
	"stream-rmw": {
		Config:   ConfigSpec{MediaBytes: "16M"},
		Workload: WorkloadSpec{Kind: "seq", Bytes: "128K", Op: "store"},
		Window:   8, Seed: 7, CkptEvery: 600,
	},
	// Overwrite pressure on a hot line set (wear-leveling / tail figures).
	"overwrite": {
		Config:   ConfigSpec{MediaBytes: "16M"},
		Workload: WorkloadSpec{Kind: "trace", Trace: overwriteTrace(37, 2600)},
		Window:   4, Seed: 7, CkptEvery: 800,
	},
	// Memory mode with the DRAM near cache in the loop (optimization and
	// DRAM-main-memory figures).
	"memory-mode": {
		Config:   ConfigSpec{Mode: "memory", MediaBytes: "16M", DRAMCache: "1M"},
		Workload: WorkloadSpec{Kind: "chase", Region: "256K", MaxSteps: 2400},
		Seed:     7, CkptEvery: 700,
	},
	// A cloud workload captured through the CPU substrate (profiling and
	// Section V figures).
	"cloud": {
		Config:   ConfigSpec{MediaBytes: "16M"},
		Workload: WorkloadSpec{Kind: "cloud", Name: "Redis", Instructions: 9000, Footprint: "1M"},
		Window:   8, Seed: 7, CkptEvery: 300,
	},
	// A SPEC bench through the same capture path (Table IV / Figure 11).
	"cloud-spec": {
		Config:   ConfigSpec{MediaBytes: "16M"},
		Workload: WorkloadSpec{Kind: "cloud", Name: "mcf", Instructions: 9000, Footprint: "1M"},
		Window:   8, Seed: 7, CkptEvery: 300,
	},
}

var figureSpecs = map[string]figureSpec{
	"tab1": {static: true}, "tab2": {static: true}, "tab3": {static: true},
	"tab5": {static: true},

	"fig1a": {key: "stream-6dimm"},
	"fig1b": {key: "chase-1dimm"},
	"fig3a": {key: "chase-1dimm"},
	"fig3b": {key: "chase-1dimm"},
	"fig4":  {key: "chase-1dimm"},
	"fig5a": {key: "chase-1dimm"},
	"fig5b": {key: "chase-1dimm"},
	"fig5c": {key: "chase-1dimm"},
	"fig5d": {key: "chase-1dimm"},
	"fig6a": {key: "stream-rmw"},
	"fig6b": {key: "stream-rmw"},
	"fig7a": {key: "stream-6dimm"},
	"fig7b": {key: "overwrite"},
	"fig7c": {key: "overwrite"},
	"fig7d": {key: "overwrite"},
	"fig9a": {key: "chase-1dimm"},
	"fig9b": {key: "chase-6dimm"},
	"fig9c": {key: "stream-rmw"},
	"fig9d": {key: "overwrite"},
	"fig9e": {key: "chase-1dimm"},

	"fig10a": {key: "chase-smallmedia"},
	"fig10b": {key: "chase-6dimm"},
	"tab4":   {key: "cloud-spec"},
	"fig11a": {key: "cloud-spec"},
	"fig11b": {key: "cloud-spec"},
	"fig11c": {key: "cloud-spec"},
	"fig11d": {key: "cloud-spec"},
	"fig12a": {key: "cloud"},
	"fig12b": {key: "cloud"},
	"fig13d": {key: "memory-mode"},
	"fig13e": {key: "memory-mode"},

	"abl-wpolicy":  {key: "stream-rmw"},
	"abl-linefill": {key: "stream-rmw"},
	"abl-sched":    {key: "stream-rmw"},
	"abl-ileave":   {key: "chase-6dimm"},
	"abl-mlp":      {key: "stream-6dimm"},
	"abl-lsq":      {key: "stream-rmw"},
	"scaling":      {key: "stream-6dimm"},

	"other-nvram": {key: "overwrite"},
}

// TestRestoreIdentityFigures: for a representative job of every figure
// experiment, checkpoint mid-run, restore in a fresh runner, and require the
// canonical result (timings, counters, obs dump) byte-identical to the
// uninterrupted run. The straight run executes on the parallel engine and the
// resumed run on the serial one, so the identity also pins that snapshots
// cross engine modes freely. The completeness check pins the map to the
// experiment registry so new figures cannot dodge the restore-identity
// property.
func TestRestoreIdentityFigures(t *testing.T) {
	forcePar(t, 8)
	for _, id := range exp.IDs() {
		fs, ok := figureSpecs[id]
		if !ok {
			t.Errorf("experiment %q has no restore-identity mapping; add it to figureSpecs", id)
			continue
		}
		if fs.static {
			continue
		}
		if _, ok := figureShapes[fs.key]; !ok {
			t.Errorf("experiment %q maps to unknown shape %q", id, fs.key)
		}
	}
	for id := range figureSpecs {
		if _, ok := exp.Lookup(id); !ok {
			t.Errorf("figureSpecs names unregistered experiment %q", id)
		}
	}
	if t.Failed() {
		t.FailNow()
	}

	for key, spec := range figureShapes {
		spec := spec
		t.Run(key, func(t *testing.T) {
			t.Parallel()
			p, err := spec.Compile()
			if err != nil {
				t.Fatalf("Compile: %v", err)
			}
			// Straight run, capturing the first barrier snapshot.
			var snap []byte
			io1 := &CkptIO{Sink: func(idx int, s []byte) error {
				if snap == nil {
					snap = s
				}
				return nil
			}}
			rn1 := NewRunner()
			rn1.SimParallel = 4
			straight, err := rn1.RunAttemptCkpt(context.Background(), p, 0, io1)
			if err != nil {
				t.Fatalf("straight run: %v", err)
			}
			if snap == nil || io1.Saves == 0 {
				t.Fatalf("no barrier fired (saves=%d); shrink CkptEvery for shape %q", io1.Saves, key)
			}
			// Fresh serial runner, restore the parallel run's snapshot, run to
			// completion.
			io2 := &CkptIO{Resume: snap}
			resumed, err := NewRunner().RunAttemptCkpt(context.Background(), p, 0, io2)
			if err != nil {
				t.Fatalf("resumed run: %v", err)
			}
			if io2.ResumedFrom == 0 {
				t.Fatal("resumed run did not report a restore")
			}
			if !bytes.Equal(straight.Canonical(), resumed.Canonical()) {
				t.Fatalf("resumed result differs from straight run\nstraight: %s\nresumed:  %s",
					straight.Canonical(), resumed.Canonical())
			}
		})
	}
}

// TestWarmStartFork: two sweep points sharing a warmup prefix — the second
// forks from the first's cached warm snapshot and still produces results
// byte-identical to running its full plan from scratch.
func TestWarmStartFork(t *testing.T) {
	warm := WorkloadSpec{Kind: "seq", Bytes: "64K", Op: "store"}
	mk := func(region string) JobSpec {
		return JobSpec{
			Config:   ConfigSpec{MediaBytes: "16M"},
			Workload: WorkloadSpec{Kind: "chase", Region: region, MaxSteps: 1200},
			Warmup:   &warm, Seed: 7,
		}
	}
	s := New(Options{Workers: 1, QueueDepth: 8})
	defer s.Shutdown(time.Second)

	stA, err := s.Submit(mk("64K"))
	if err != nil {
		t.Fatalf("submit A: %v", err)
	}
	if stA, err = s.Wait(context.Background(), stA.ID); err != nil || stA.State != JobDone {
		t.Fatalf("A: %+v err=%v", stA, err)
	}
	if stA.WarmStarted {
		t.Fatal("first point cannot warm-start (nothing cached yet)")
	}
	if s.warm.Len() == 0 {
		t.Fatal("warm snapshot was not cached")
	}

	stB, err := s.Submit(mk("128K"))
	if err != nil {
		t.Fatalf("submit B: %v", err)
	}
	if stB, err = s.Wait(context.Background(), stB.ID); err != nil || stB.State != JobDone {
		t.Fatalf("B: %+v err=%v", stB, err)
	}
	if !stB.WarmStarted {
		t.Fatal("second point did not fork from the warm snapshot")
	}
	resB, _, _ := s.Result(stB.ID)

	// Reference: the same plan simulated start to finish.
	pB, err := mk("128K").Compile()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewRunner().Run(context.Background(), pB)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	if !bytes.Equal(ref.Canonical(), resB.Canonical()) {
		t.Fatalf("warm-started result differs from full run\nfull: %s\nwarm: %s",
			ref.Canonical(), resB.Canonical())
	}
}

// TestDrainResume: a snapshot left behind by a preempted run (here handed to
// the daemon through PutCheckpoint, as the cluster handoff does) makes the
// next submission of the same spec resume mid-stream with a byte-identical
// final result.
func TestDrainResume(t *testing.T) {
	dir := t.TempDir()
	spec := JobSpec{
		Config:   ConfigSpec{MediaBytes: "16M"},
		Workload: WorkloadSpec{Kind: "chase", Region: "256K", MaxSteps: 2400},
		Seed:     7, CkptEvery: 700,
	}
	p, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}

	// The "previous life" of the job: run it straight, keeping the snapshot
	// from a mid-run barrier — exactly what a preempted daemon leaves in its
	// state dir.
	var snap []byte
	io1 := &CkptIO{Sink: func(idx int, s []byte) error {
		if snap == nil {
			snap = s
		}
		return nil
	}}
	ref, err := NewRunner().RunAttemptCkpt(context.Background(), p, 0, io1)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	if snap == nil {
		t.Fatal("no snapshot captured")
	}

	s := New(Options{Workers: 1, QueueDepth: 8, StateDir: dir})
	defer s.Shutdown(time.Second)
	if err := s.PutCheckpoint(p.Hash(), snap); err != nil {
		t.Fatalf("PutCheckpoint: %v", err)
	}
	st, err := s.Submit(spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if st, err = s.Wait(context.Background(), st.ID); err != nil || st.State != JobDone {
		t.Fatalf("resumed job: %+v err=%v", st, err)
	}
	if st.ResumedFrom == 0 {
		t.Fatal("resubmitted job did not resume from the snapshot")
	}
	res, _, _ := s.Result(st.ID)
	if !bytes.Equal(ref.Canonical(), res.Canonical()) {
		t.Fatal("resumed result differs from uninterrupted run")
	}
	// The finished job's snapshot must be gone (it must not resume again).
	if _, ok := s.CheckpointBytes(st.Hash); ok {
		t.Fatal("snapshot still present after the job finished")
	}
}

// TestDrainSummaryCheckpointed: preempting a daemon mid-job reports the job
// as checkpointed, and its snapshot survives in the state dir.
func TestDrainSummaryCheckpointed(t *testing.T) {
	dir := t.TempDir()
	spec := JobSpec{
		Config:   ConfigSpec{DIMMs: 6, Interleaved: true, MediaBytes: "8M"},
		Workload: WorkloadSpec{Kind: "chase", Region: "2M", MaxSteps: 200000},
		Seed:     7, CkptEvery: 2000,
	}
	s := New(Options{Workers: 1, QueueDepth: 8, StateDir: dir})
	st, err := s.Submit(spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	// Wait for the first durable snapshot, then preempt immediately.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, ok := s.CheckpointBytes(st.Hash); ok {
			break
		}
		if fin, _ := s.Status(st.ID); fin.State == JobDone {
			t.Skip("job finished before a snapshot could be observed")
		}
		if time.Now().After(deadline) {
			t.Fatal("no snapshot appeared within 30s")
		}
		time.Sleep(time.Millisecond)
	}
	sum, _ := s.ShutdownDrain(0)
	if fin, _ := s.Status(st.ID); fin.State == JobDone {
		t.Skip("job finished during the drain; nothing was preempted")
	}
	if sum.Checkpointed != 1 {
		t.Fatalf("drain summary %+v: want 1 checkpointed job", sum)
	}
	if _, ok := s.CheckpointBytes(st.Hash); !ok {
		t.Fatal("preempted job's snapshot missing from the state dir")
	}
}

// TestResultsSurviveRestart: the result cache persists through
// ShutdownDrain and reloads on New, so finished work is not re-simulated.
func TestResultsSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	spec := JobSpec{
		Config:   ConfigSpec{MediaBytes: "16M"},
		Workload: WorkloadSpec{Kind: "seq", Bytes: "64K"},
		Seed:     7,
	}
	s1 := New(Options{Workers: 1, QueueDepth: 8, StateDir: dir})
	st, err := s1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st, err = s1.Wait(context.Background(), st.ID); err != nil || st.State != JobDone {
		t.Fatalf("job: %+v err=%v", st, err)
	}
	s1.ShutdownDrain(time.Second)

	s2 := New(Options{Workers: 1, QueueDepth: 8, StateDir: dir})
	defer s2.Shutdown(time.Second)
	st2, err := s2.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Cached {
		t.Fatalf("restarted daemon re-simulated a persisted result: %+v", st2)
	}
}

// TestCkptValidation pins the plan-level rejections and the hash-v4
// properties.
func TestCkptValidation(t *testing.T) {
	base := JobSpec{
		Config:   ConfigSpec{MediaBytes: "16M"},
		Workload: WorkloadSpec{Kind: "seq", Bytes: "64K"},
	}

	neg := base
	neg.CkptEvery = -1
	if _, err := neg.Compile(); err == nil {
		t.Error("negative ckpt_every accepted")
	}

	traced := base
	traced.CkptEvery = 100
	traced.Trace = true
	if _, err := traced.Compile(); err == nil {
		t.Error("ckpt_every + trace accepted")
	}

	faulty := base
	faulty.CkptEvery = 100
	faulty.Fault = &fault.Spec{PoisonRate: 0.5}
	if _, err := faulty.Compile(); err == nil {
		t.Error("ckpt_every + fault injection accepted")
	}

	warmFault := base
	warmFault.Warmup = &WorkloadSpec{Kind: "seq", Bytes: "64K"}
	warmFault.Fault = &fault.Spec{PoisonRate: 0.5}
	if _, err := warmFault.Compile(); err == nil {
		t.Error("warmup + fault injection accepted")
	}

	badWarm := base
	badWarm.Warmup = &WorkloadSpec{Kind: "nope"}
	if _, err := badWarm.Compile(); err == nil {
		t.Error("invalid warmup workload accepted")
	} else if err := func() error { _, e := badWarm.Compile(); return e }(); !strings.Contains(err.Error(), "warmup") {
		t.Errorf("warmup error not attributed: %v", err)
	}

	// Hash v4: the snapshot format version is stamped into every job hash,
	// and the barrier spacing is part of the plan identity.
	if want := fmt.Sprintf("nvmserved/5:ckpt%d:", ckpt.FormatVersion); hashVersion != want {
		t.Errorf("hashVersion %q, want %q", hashVersion, want)
	}
	p0, err := base.Compile()
	if err != nil {
		t.Fatal(err)
	}
	withCkpt := base
	withCkpt.CkptEvery = 100
	p1, err := withCkpt.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if p0.Hash() == p1.Hash() {
		t.Error("ckpt_every does not change the job hash (cache collision between barrier layouts)")
	}
}

// TestSnapshotPlanMismatch: a snapshot restores only into the exact plan that
// produced it.
func TestSnapshotPlanMismatch(t *testing.T) {
	mk := func(steps int) *Plan {
		p, err := JobSpec{
			Config:   ConfigSpec{MediaBytes: "16M"},
			Workload: WorkloadSpec{Kind: "chase", Region: "128K", MaxSteps: steps},
			Seed:     7, CkptEvery: 500,
		}.Compile()
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	pA, pB := mk(1600), mk(2600)

	var snap []byte
	io1 := &CkptIO{Sink: func(idx int, s []byte) error { snap = s; return nil }}
	if _, err := NewRunner().RunAttemptCkpt(context.Background(), pA, 0, io1); err != nil {
		t.Fatal(err)
	}
	if snap == nil {
		t.Fatal("no snapshot captured")
	}
	_, err := NewRunner().RunAttemptCkpt(context.Background(), pB, 0, &CkptIO{Resume: snap})
	if err == nil {
		t.Fatal("snapshot from plan A restored into plan B")
	}
	if !strings.Contains(err.Error(), "does not match plan") {
		t.Fatalf("unexpected mismatch error: %v", err)
	}
}

// TestPutCheckpointValidates: externally supplied snapshots are envelope-
// checked before they touch the state dir, and hashes are name-validated.
func TestPutCheckpointValidates(t *testing.T) {
	dir := t.TempDir()
	s := New(Options{Workers: 1, QueueDepth: 4, StateDir: dir})
	defer s.Shutdown(time.Second)

	good := ckpt.Seal([]byte("payload"))
	if err := s.PutCheckpoint("abc123", good); err != nil {
		t.Fatalf("valid snapshot rejected: %v", err)
	}
	if got, ok := s.CheckpointBytes("abc123"); !ok || !bytes.Equal(got, good) {
		t.Fatal("stored snapshot not returned")
	}
	if err := s.PutCheckpoint("abc123", good[:len(good)-2]); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
	if err := s.PutCheckpoint("../escape", good); err == nil {
		t.Fatal("path-traversal hash accepted")
	}
	if _, ok := s.CheckpointBytes("../escape"); ok {
		t.Fatal("path-traversal hash readable")
	}
	// A corrupt file that appeared behind our back (torn write, bad disk) is
	// detected and discarded on load.
	path := filepath.Join(dir, "dead00.ckpt")
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.CheckpointBytes("dead00"); ok {
		t.Fatal("corrupt snapshot served")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt snapshot not deleted")
	}
}
