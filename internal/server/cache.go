package server

import (
	"container/list"
	"sync"
)

// resultCache is a fixed-capacity LRU map from job hash to Result. Results
// are immutable once published, so entries are shared by pointer. A capacity
// of zero disables caching entirely (every Get misses, Put is a no-op),
// which the determinism tests use to force real runs.
type resultCache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recently used
	m   map[string]*list.Element
}

type cacheEntry struct {
	key string
	res *Result
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{
		cap: capacity,
		ll:  list.New(),
		m:   make(map[string]*list.Element),
	}
}

// Get returns the cached result for key, promoting it to most recently used.
func (c *resultCache) Get(key string) (*Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// Put inserts or refreshes key, evicting the least recently used entry when
// over capacity.
func (c *resultCache) Put(key string, res *Result) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.ll.MoveToFront(el)
		return
	}
	c.m[key] = c.ll.PushFront(&cacheEntry{key: key, res: res})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.m, oldest.Value.(*cacheEntry).key)
	}
}

// Len returns the resident entry count.
func (c *resultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Cap returns the configured capacity (0 when caching is disabled).
func (c *resultCache) Cap() int { return c.cap }

// Entries returns (hash, result) pairs ordered least recently used first, so
// replaying them through Put reproduces the LRU order. Used to persist the
// cache across daemon restarts.
func (c *resultCache) Entries() []cacheEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]cacheEntry, 0, c.ll.Len())
	for el := c.ll.Back(); el != nil; el = el.Prev() {
		out = append(out, *el.Value.(*cacheEntry))
	}
	return out
}
