// Package server implements nvmserved: the VANS simulator as a long-lived
// concurrent service. It provides a validated job model with deterministic
// canonical hashing, a bounded-queue worker-pool scheduler where every
// worker runs jobs on its own isolated sim.Engine + vans.System, an LRU
// result cache keyed by the job hash, an HTTP/JSON API, and a parameter
// sweep endpoint that fans one sweep across the pool.
package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/ckpt"
	"repro/internal/fault"
	"repro/internal/mem"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/vans"
	"repro/internal/workload"
)

// JobSpec is the client-facing description of one simulation: a VANS
// configuration, a workload, and a replay seed. All byte sizes are strings
// with optional K/M/G suffixes (parsed by internal/units). Zero-valued
// optional fields are defaulted by Compile.
type JobSpec struct {
	Config   ConfigSpec   `json:"config"`
	Workload WorkloadSpec `json:"workload"`
	// Window is the outstanding-request window for the replay. Chase
	// workloads ignore it (a dependent chain replays with window 1).
	// Default 10.
	Window int `json:"window,omitempty"`
	// Seed drives workload generation. Default 1.
	Seed uint64 `json:"seed,omitempty"`
	// Fault optionally injects deterministic faults (poison, stall spikes,
	// a power-fail cut, an engine crash) into the run. Part of the canonical
	// hash: faulty runs cache and reproduce like any other job.
	Fault *fault.Spec `json:"fault,omitempty"`
	// Trace enables lifecycle trace capture; the recorded trace is streamed
	// by GET /v1/jobs/{id}/trace. Part of the canonical hash so traced and
	// untraced runs cache separately (the trace stays retrievable).
	Trace bool `json:"trace,omitempty"`
	// CkptEvery inserts a checkpoint barrier every CkptEvery accesses: the
	// driver drains its window and runs the engine to quiescence so the whole
	// system can serialize from an idle cut. Barriers perturb timing, so the
	// knob is part of the canonical hash — a resumed run and a straight run
	// of the same plan execute identical barriers and produce byte-identical
	// results. Zero disables checkpointing. Incompatible with trace capture
	// and fault injection.
	CkptEvery int `json:"ckpt_every,omitempty"`
	// Warmup optionally prepends a warmup workload to the main stream with a
	// forced checkpoint barrier at the boundary. Sweeps whose points share a
	// warmup run the shared prefix once: the barrier snapshot is cached by
	// the warm hash (config + warmup + window + seed) and every later point
	// forks from it. Incompatible with fault injection.
	Warmup *WorkloadSpec `json:"warmup,omitempty"`
}

// ConfigSpec selects the simulated system.
type ConfigSpec struct {
	// DIMMs is the NVDIMM count (default 1).
	DIMMs int `json:"dimms,omitempty"`
	// Interleaved enables 4KB multi-DIMM interleaving.
	Interleaved bool `json:"interleaved,omitempty"`
	// Mode is "appdirect" (default) or "memory".
	Mode string `json:"mode,omitempty"`
	// MediaBytes overrides the per-DIMM media capacity ("256M").
	MediaBytes string `json:"media_bytes,omitempty"`
	// DRAMCache sizes the Memory-mode near cache ("1G").
	DRAMCache string `json:"dram_cache,omitempty"`
	// WearThreshold overrides the per-block write count that triggers a
	// wear-leveling migration (default 14000). Small values make migration
	// tails reachable in short runs.
	WearThreshold uint64 `json:"wear_threshold,omitempty"`
	// Seed drives stochastic model choices (wear-leveling partners).
	// Default 1.
	Seed uint64 `json:"seed,omitempty"`
}

// WorkloadSpec selects the access stream.
type WorkloadSpec struct {
	// Kind is "chase", "seq", "trace", or "cloud".
	Kind string `json:"kind"`
	// Region is the chase region size (default "1M").
	Region string `json:"region,omitempty"`
	// MaxSteps caps the chase walk (default 200000).
	MaxSteps int `json:"max_steps,omitempty"`
	// Bytes is the seq stream footprint (default "1M").
	Bytes string `json:"bytes,omitempty"`
	// Op is the seq operation: "load" (default), "store", or "store-nt".
	Op string `json:"op,omitempty"`
	// Trace is an inline text-format trace (see internal/trace) for
	// kind "trace".
	Trace string `json:"trace,omitempty"`
	// Name is a Section V cloud workload (Redis, YCSB, ...) or a Table IV
	// SPEC bench (mcf, lbm, ...) for kind "cloud"; the stream is captured
	// through the CPU substrate and then replayed.
	Name string `json:"name,omitempty"`
	// Instructions bounds the cloud capture (default 50000).
	Instructions int `json:"instructions,omitempty"`
	// Footprint is the cloud working-set size (default "16M").
	Footprint string `json:"footprint,omitempty"`
}

// Workload kinds.
const (
	KindChase = "chase"
	KindSeq   = "seq"
	KindTrace = "trace"
	KindCloud = "cloud"
)

// hashVersion re-keys the cache whenever the plan layout or runner semantics
// change incompatibly. v5: the plan gained the wear-threshold override, the
// model grew per-stage latency histograms (serialized into snapshots and
// part of every result dump), and results now carry a bottleneck verdict.
// The tag carries the snapshot format version — a snapshot from one format
// can never masquerade as resumable state for a job hashed under another.
var hashVersion = fmt.Sprintf("nvmserved/5:ckpt%d:", ckpt.FormatVersion)

// WorkloadPlan is the validated, fully defaulted form of one WorkloadSpec.
// The main workload stays flattened into Plan (stable field layout); the
// warmup prefix, when present, nests as one of these.
type WorkloadPlan struct {
	Kind         string `json:"kind"`
	Region       uint64 `json:"region"`
	MaxSteps     int    `json:"max_steps"`
	Bytes        uint64 `json:"bytes"`
	Op           string `json:"op"`
	Trace        string `json:"trace"`
	Name         string `json:"name"`
	Instructions int    `json:"instructions"`
	Footprint    uint64 `json:"footprint"`
}

// Plan is the validated, fully defaulted form of a JobSpec: every size
// parsed, every default applied. Hashing and execution both work from the
// Plan, so the cache key covers exactly what the runner sees.
type Plan struct {
	DIMMs        int           `json:"dimms"`
	Interleaved  bool          `json:"interleaved"`
	Mode         string        `json:"mode"`
	MediaBytes   uint64        `json:"media_bytes"`
	DRAMCache    uint64        `json:"dram_cache"`
	WearThresh   uint64        `json:"wear_threshold"`
	CfgSeed      uint64        `json:"cfg_seed"`
	Kind         string        `json:"kind"`
	Region       uint64        `json:"region"`
	MaxSteps     int           `json:"max_steps"`
	Bytes        uint64        `json:"bytes"`
	Op           string        `json:"op"`
	Trace        string        `json:"trace"`
	Name         string        `json:"name"`
	Instructions int           `json:"instructions"`
	Footprint    uint64        `json:"footprint"`
	Window       int           `json:"window"`
	Seed         uint64        `json:"seed"`
	Fault        fault.Spec    `json:"fault"`
	CaptureTrace bool          `json:"capture_trace"`
	CkptEvery    int           `json:"ckpt_every"`
	Warmup       *WorkloadPlan `json:"warmup,omitempty"`
}

// mainWorkload returns the flattened main workload as a WorkloadPlan.
func (p *Plan) mainWorkload() WorkloadPlan {
	return WorkloadPlan{Kind: p.Kind, Region: p.Region, MaxSteps: p.MaxSteps,
		Bytes: p.Bytes, Op: p.Op, Trace: p.Trace, Name: p.Name,
		Instructions: p.Instructions, Footprint: p.Footprint}
}

// effectiveWindow is the outstanding-request window the replay actually
// uses: a chase main workload forces a dependent chain (window 1).
func (p *Plan) effectiveWindow() int {
	if p.Kind == KindChase {
		return 1
	}
	return p.Window
}

// WarmPlan reduces the plan to what the warm-start prefix depends on: the
// same configuration, seed, effective window, and barrier spacing, with the
// warmup workload promoted to the main slot. Two jobs with equal WarmPlans
// reach byte-identical state at the warmup barrier regardless of their main
// workloads, which is what makes the warm-snapshot cache sound.
func (p *Plan) WarmPlan() *Plan {
	if p.Warmup == nil {
		return nil
	}
	wp := *p
	w := *p.Warmup
	wp.Kind, wp.Region, wp.MaxSteps = w.Kind, w.Region, w.MaxSteps
	wp.Bytes, wp.Op, wp.Trace = w.Bytes, w.Op, w.Trace
	wp.Name, wp.Instructions, wp.Footprint = w.Name, w.Instructions, w.Footprint
	wp.Window = p.effectiveWindow()
	wp.Warmup = nil
	return &wp
}

// WarmHash is the canonical hash of the warm-start prefix (see WarmPlan).
func (p *Plan) WarmHash() string {
	wp := p.WarmPlan()
	if wp == nil {
		return ""
	}
	return wp.Hash()
}

// Hash returns the canonical job hash: SHA-256 over a version tag plus the
// plan's canonical JSON. Struct fields marshal in declaration order and the
// plan holds no maps, so the encoding — and therefore the cache key — is
// deterministic.
func (p *Plan) Hash() string {
	b, err := json.Marshal(p)
	if err != nil {
		// A plan is plain data; marshal cannot fail.
		panic("server: marshaling plan: " + err.Error())
	}
	sum := sha256.Sum256(append([]byte(hashVersion), b...))
	return hex.EncodeToString(sum[:])
}

// VansConfig translates the plan into a simulator configuration.
func (p *Plan) VansConfig() vans.Config {
	cfg := vans.DefaultConfig()
	cfg.DIMMs = p.DIMMs
	cfg.Interleaved = p.Interleaved
	if p.Mode == "memory" {
		cfg.Mode = vans.MemoryMode
	}
	if p.MediaBytes != 0 {
		cfg.NV.Media.Capacity = p.MediaBytes
	}
	if p.WearThresh != 0 {
		cfg.NV.WearThreshold = p.WearThresh
	}
	cfg.DRAMCacheBytes = p.DRAMCache
	cfg.Seed = p.CfgSeed
	cfg.Fault = p.Fault
	return cfg
}

// Limits keep a single job bounded; sweeps and batches are the mechanism for
// larger studies.
const (
	maxDIMMs        = 16
	maxRegionBytes  = 1 << 30
	maxSeqBytes     = 1 << 30
	maxChaseSteps   = 1 << 20
	maxInstructions = 4 << 20
	maxWindow       = 1 << 10
	maxTraceBytes   = 16 << 20
)

// Compile validates spec, applies defaults, and returns the executable plan.
// All validation errors are client errors (bad request).
func (s JobSpec) Compile() (*Plan, error) {
	p := &Plan{}

	p.DIMMs = s.Config.DIMMs
	if p.DIMMs == 0 {
		p.DIMMs = 1
	}
	if p.DIMMs < 1 || p.DIMMs > maxDIMMs {
		return nil, fmt.Errorf("config.dimms %d out of range [1,%d]", p.DIMMs, maxDIMMs)
	}
	p.Interleaved = s.Config.Interleaved
	switch strings.ToLower(s.Config.Mode) {
	case "", "appdirect":
		p.Mode = "appdirect"
	case "memory":
		p.Mode = "memory"
	default:
		return nil, fmt.Errorf("config.mode %q: want appdirect or memory", s.Config.Mode)
	}
	var err error
	if p.MediaBytes, err = units.ParseBytesDefault(s.Config.MediaBytes, 0); err != nil {
		return nil, fmt.Errorf("config.media_bytes: %v", err)
	}
	if p.DRAMCache, err = units.ParseBytesDefault(s.Config.DRAMCache, 0); err != nil {
		return nil, fmt.Errorf("config.dram_cache: %v", err)
	}
	p.WearThresh = s.Config.WearThreshold
	p.CfgSeed = s.Config.Seed
	if p.CfgSeed == 0 {
		p.CfgSeed = 1
	}

	p.Window = s.Window
	if p.Window == 0 {
		p.Window = 10
	}
	if p.Window < 1 || p.Window > maxWindow {
		return nil, fmt.Errorf("window %d out of range [1,%d]", p.Window, maxWindow)
	}
	p.Seed = s.Seed
	if p.Seed == 0 {
		p.Seed = 1
	}
	p.CaptureTrace = s.Trace
	if s.Fault != nil {
		if err := s.Fault.Validate(); err != nil {
			return nil, err
		}
		p.Fault = *s.Fault
		if p.Fault.Enabled() && p.Fault.Seed == 0 {
			p.Fault.Seed = 1
		}
		if p.Fault.PowerFailCycle > 0 && strings.EqualFold(s.Config.Mode, "memory") {
			return nil, fmt.Errorf("fault.power_fail_cycle: crash-consistency check requires appdirect mode")
		}
	}

	wp, err := compileWorkload(s.Workload, "workload")
	if err != nil {
		return nil, err
	}
	p.Kind, p.Region, p.MaxSteps = wp.Kind, wp.Region, wp.MaxSteps
	p.Bytes, p.Op, p.Trace = wp.Bytes, wp.Op, wp.Trace
	p.Name, p.Instructions, p.Footprint = wp.Name, wp.Instructions, wp.Footprint

	p.CkptEvery = s.CkptEvery
	if p.CkptEvery < 0 {
		return nil, fmt.Errorf("ckpt_every %d: must be non-negative", p.CkptEvery)
	}
	if s.Warmup != nil {
		warm, err := compileWorkload(*s.Warmup, "warmup")
		if err != nil {
			return nil, err
		}
		p.Warmup = &warm
	}
	if p.CkptEvery > 0 && p.CaptureTrace {
		return nil, fmt.Errorf("ckpt_every: incompatible with trace capture (the lifecycle tracer has no serial form)")
	}
	if p.Fault.Enabled() {
		if p.CkptEvery > 0 {
			return nil, fmt.Errorf("ckpt_every: incompatible with fault injection (injector streams are attempt-scoped)")
		}
		if p.Warmup != nil {
			return nil, fmt.Errorf("warmup: incompatible with fault injection")
		}
	}
	return p, nil
}

// compileWorkload validates one workload spec; field is the error prefix
// ("workload" or "warmup").
func compileWorkload(w WorkloadSpec, field string) (WorkloadPlan, error) {
	var p WorkloadPlan
	var err error
	p.Kind = strings.ToLower(w.Kind)
	switch p.Kind {
	case KindChase:
		if p.Region, err = units.ParseBytesDefault(w.Region, 1<<20); err != nil {
			return p, fmt.Errorf("%s.region: %v", field, err)
		}
		if p.Region < 2*mem.CacheLine || p.Region > maxRegionBytes {
			return p, fmt.Errorf("%s.region %d out of range [%d,%d]",
				field, p.Region, 2*mem.CacheLine, maxRegionBytes)
		}
		p.MaxSteps = w.MaxSteps
		if p.MaxSteps == 0 {
			p.MaxSteps = 200000
		}
		if p.MaxSteps < 1 || p.MaxSteps > maxChaseSteps {
			return p, fmt.Errorf("%s.max_steps %d out of range [1,%d]", field, p.MaxSteps, maxChaseSteps)
		}
	case KindSeq:
		if p.Bytes, err = units.ParseBytesDefault(w.Bytes, 1<<20); err != nil {
			return p, fmt.Errorf("%s.bytes: %v", field, err)
		}
		if p.Bytes < mem.CacheLine || p.Bytes > maxSeqBytes {
			return p, fmt.Errorf("%s.bytes %d out of range [%d,%d]",
				field, p.Bytes, mem.CacheLine, maxSeqBytes)
		}
		switch w.Op {
		case "":
			p.Op = "load"
		case "load", "store", "store-nt":
			p.Op = w.Op
		default:
			return p, fmt.Errorf("%s.op %q: want load, store, or store-nt", field, w.Op)
		}
	case KindTrace:
		if strings.TrimSpace(w.Trace) == "" {
			return p, fmt.Errorf("%s.trace: empty trace", field)
		}
		if len(w.Trace) > maxTraceBytes {
			return p, fmt.Errorf("%s.trace: %d bytes exceeds limit %d", field, len(w.Trace), maxTraceBytes)
		}
		if _, err := trace.ReadAccesses(strings.NewReader(w.Trace)); err != nil {
			return p, fmt.Errorf("%s.trace: %v", field, err)
		}
		p.Trace = w.Trace
	case KindCloud:
		p.Name = w.Name
		if _, isSPEC := workload.SPECBenchByName(p.Name); !isSPEC && !isCloudName(p.Name) {
			return p, fmt.Errorf("%s.name %q: want one of %s or a SPEC bench",
				field, p.Name, strings.Join(workload.CloudNames(), ", "))
		}
		p.Instructions = w.Instructions
		if p.Instructions == 0 {
			p.Instructions = 50000
		}
		if p.Instructions < 1 || p.Instructions > maxInstructions {
			return p, fmt.Errorf("%s.instructions %d out of range [1,%d]", field, p.Instructions, maxInstructions)
		}
		if p.Footprint, err = units.ParseBytesDefault(w.Footprint, 16<<20); err != nil {
			return p, fmt.Errorf("%s.footprint: %v", field, err)
		}
		if p.Footprint < 1<<10 || p.Footprint > maxRegionBytes {
			return p, fmt.Errorf("%s.footprint %d out of range [%d,%d]",
				field, p.Footprint, 1<<10, maxRegionBytes)
		}
	case "":
		return p, fmt.Errorf("%s.kind: required (chase, seq, trace, or cloud)", field)
	default:
		return p, fmt.Errorf("%s.kind %q: want chase, seq, trace, or cloud", field, w.Kind)
	}
	return p, nil
}

func isCloudName(name string) bool {
	for _, n := range workload.CloudNames() {
		if n == name {
			return true
		}
	}
	return false
}
