// Package server implements nvmserved: the VANS simulator as a long-lived
// concurrent service. It provides a validated job model with deterministic
// canonical hashing, a bounded-queue worker-pool scheduler where every
// worker runs jobs on its own isolated sim.Engine + vans.System, an LRU
// result cache keyed by the job hash, an HTTP/JSON API, and a parameter
// sweep endpoint that fans one sweep across the pool.
package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/fault"
	"repro/internal/mem"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/vans"
	"repro/internal/workload"
)

// JobSpec is the client-facing description of one simulation: a VANS
// configuration, a workload, and a replay seed. All byte sizes are strings
// with optional K/M/G suffixes (parsed by internal/units). Zero-valued
// optional fields are defaulted by Compile.
type JobSpec struct {
	Config   ConfigSpec   `json:"config"`
	Workload WorkloadSpec `json:"workload"`
	// Window is the outstanding-request window for the replay. Chase
	// workloads ignore it (a dependent chain replays with window 1).
	// Default 10.
	Window int `json:"window,omitempty"`
	// Seed drives workload generation. Default 1.
	Seed uint64 `json:"seed,omitempty"`
	// Fault optionally injects deterministic faults (poison, stall spikes,
	// a power-fail cut, an engine crash) into the run. Part of the canonical
	// hash: faulty runs cache and reproduce like any other job.
	Fault *fault.Spec `json:"fault,omitempty"`
	// Trace enables lifecycle trace capture; the recorded trace is streamed
	// by GET /v1/jobs/{id}/trace. Part of the canonical hash so traced and
	// untraced runs cache separately (the trace stays retrievable).
	Trace bool `json:"trace,omitempty"`
}

// ConfigSpec selects the simulated system.
type ConfigSpec struct {
	// DIMMs is the NVDIMM count (default 1).
	DIMMs int `json:"dimms,omitempty"`
	// Interleaved enables 4KB multi-DIMM interleaving.
	Interleaved bool `json:"interleaved,omitempty"`
	// Mode is "appdirect" (default) or "memory".
	Mode string `json:"mode,omitempty"`
	// MediaBytes overrides the per-DIMM media capacity ("256M").
	MediaBytes string `json:"media_bytes,omitempty"`
	// DRAMCache sizes the Memory-mode near cache ("1G").
	DRAMCache string `json:"dram_cache,omitempty"`
	// Seed drives stochastic model choices (wear-leveling partners).
	// Default 1.
	Seed uint64 `json:"seed,omitempty"`
}

// WorkloadSpec selects the access stream.
type WorkloadSpec struct {
	// Kind is "chase", "seq", "trace", or "cloud".
	Kind string `json:"kind"`
	// Region is the chase region size (default "1M").
	Region string `json:"region,omitempty"`
	// MaxSteps caps the chase walk (default 200000).
	MaxSteps int `json:"max_steps,omitempty"`
	// Bytes is the seq stream footprint (default "1M").
	Bytes string `json:"bytes,omitempty"`
	// Op is the seq operation: "load" (default), "store", or "store-nt".
	Op string `json:"op,omitempty"`
	// Trace is an inline text-format trace (see internal/trace) for
	// kind "trace".
	Trace string `json:"trace,omitempty"`
	// Name is a Section V cloud workload (Redis, YCSB, ...) or a Table IV
	// SPEC bench (mcf, lbm, ...) for kind "cloud"; the stream is captured
	// through the CPU substrate and then replayed.
	Name string `json:"name,omitempty"`
	// Instructions bounds the cloud capture (default 50000).
	Instructions int `json:"instructions,omitempty"`
	// Footprint is the cloud working-set size (default "16M").
	Footprint string `json:"footprint,omitempty"`
}

// Workload kinds.
const (
	KindChase = "chase"
	KindSeq   = "seq"
	KindTrace = "trace"
	KindCloud = "cloud"
)

// hashVersion re-keys the cache whenever the plan layout or runner semantics
// change incompatibly. v3: the plan gained capture_trace and results gained
// the observability dump.
const hashVersion = "nvmserved/3:"

// Plan is the validated, fully defaulted form of a JobSpec: every size
// parsed, every default applied. Hashing and execution both work from the
// Plan, so the cache key covers exactly what the runner sees.
type Plan struct {
	DIMMs        int        `json:"dimms"`
	Interleaved  bool       `json:"interleaved"`
	Mode         string     `json:"mode"`
	MediaBytes   uint64     `json:"media_bytes"`
	DRAMCache    uint64     `json:"dram_cache"`
	CfgSeed      uint64     `json:"cfg_seed"`
	Kind         string     `json:"kind"`
	Region       uint64     `json:"region"`
	MaxSteps     int        `json:"max_steps"`
	Bytes        uint64     `json:"bytes"`
	Op           string     `json:"op"`
	Trace        string     `json:"trace"`
	Name         string     `json:"name"`
	Instructions int        `json:"instructions"`
	Footprint    uint64     `json:"footprint"`
	Window       int        `json:"window"`
	Seed         uint64     `json:"seed"`
	Fault        fault.Spec `json:"fault"`
	CaptureTrace bool       `json:"capture_trace"`
}

// Hash returns the canonical job hash: SHA-256 over a version tag plus the
// plan's canonical JSON. Struct fields marshal in declaration order and the
// plan holds no maps, so the encoding — and therefore the cache key — is
// deterministic.
func (p *Plan) Hash() string {
	b, err := json.Marshal(p)
	if err != nil {
		// A plan is plain data; marshal cannot fail.
		panic("server: marshaling plan: " + err.Error())
	}
	sum := sha256.Sum256(append([]byte(hashVersion), b...))
	return hex.EncodeToString(sum[:])
}

// VansConfig translates the plan into a simulator configuration.
func (p *Plan) VansConfig() vans.Config {
	cfg := vans.DefaultConfig()
	cfg.DIMMs = p.DIMMs
	cfg.Interleaved = p.Interleaved
	if p.Mode == "memory" {
		cfg.Mode = vans.MemoryMode
	}
	if p.MediaBytes != 0 {
		cfg.NV.Media.Capacity = p.MediaBytes
	}
	cfg.DRAMCacheBytes = p.DRAMCache
	cfg.Seed = p.CfgSeed
	cfg.Fault = p.Fault
	return cfg
}

// Limits keep a single job bounded; sweeps and batches are the mechanism for
// larger studies.
const (
	maxDIMMs        = 16
	maxRegionBytes  = 1 << 30
	maxSeqBytes     = 1 << 30
	maxChaseSteps   = 1 << 20
	maxInstructions = 4 << 20
	maxWindow       = 1 << 10
	maxTraceBytes   = 16 << 20
)

// Compile validates spec, applies defaults, and returns the executable plan.
// All validation errors are client errors (bad request).
func (s JobSpec) Compile() (*Plan, error) {
	p := &Plan{}

	p.DIMMs = s.Config.DIMMs
	if p.DIMMs == 0 {
		p.DIMMs = 1
	}
	if p.DIMMs < 1 || p.DIMMs > maxDIMMs {
		return nil, fmt.Errorf("config.dimms %d out of range [1,%d]", p.DIMMs, maxDIMMs)
	}
	p.Interleaved = s.Config.Interleaved
	switch strings.ToLower(s.Config.Mode) {
	case "", "appdirect":
		p.Mode = "appdirect"
	case "memory":
		p.Mode = "memory"
	default:
		return nil, fmt.Errorf("config.mode %q: want appdirect or memory", s.Config.Mode)
	}
	var err error
	if p.MediaBytes, err = units.ParseBytesDefault(s.Config.MediaBytes, 0); err != nil {
		return nil, fmt.Errorf("config.media_bytes: %v", err)
	}
	if p.DRAMCache, err = units.ParseBytesDefault(s.Config.DRAMCache, 0); err != nil {
		return nil, fmt.Errorf("config.dram_cache: %v", err)
	}
	p.CfgSeed = s.Config.Seed
	if p.CfgSeed == 0 {
		p.CfgSeed = 1
	}

	p.Window = s.Window
	if p.Window == 0 {
		p.Window = 10
	}
	if p.Window < 1 || p.Window > maxWindow {
		return nil, fmt.Errorf("window %d out of range [1,%d]", p.Window, maxWindow)
	}
	p.Seed = s.Seed
	if p.Seed == 0 {
		p.Seed = 1
	}
	p.CaptureTrace = s.Trace
	if s.Fault != nil {
		if err := s.Fault.Validate(); err != nil {
			return nil, err
		}
		p.Fault = *s.Fault
		if p.Fault.Enabled() && p.Fault.Seed == 0 {
			p.Fault.Seed = 1
		}
		if p.Fault.PowerFailCycle > 0 && strings.EqualFold(s.Config.Mode, "memory") {
			return nil, fmt.Errorf("fault.power_fail_cycle: crash-consistency check requires appdirect mode")
		}
	}

	w := s.Workload
	p.Kind = strings.ToLower(w.Kind)
	switch p.Kind {
	case KindChase:
		if p.Region, err = units.ParseBytesDefault(w.Region, 1<<20); err != nil {
			return nil, fmt.Errorf("workload.region: %v", err)
		}
		if p.Region < 2*mem.CacheLine || p.Region > maxRegionBytes {
			return nil, fmt.Errorf("workload.region %d out of range [%d,%d]",
				p.Region, 2*mem.CacheLine, maxRegionBytes)
		}
		p.MaxSteps = w.MaxSteps
		if p.MaxSteps == 0 {
			p.MaxSteps = 200000
		}
		if p.MaxSteps < 1 || p.MaxSteps > maxChaseSteps {
			return nil, fmt.Errorf("workload.max_steps %d out of range [1,%d]", p.MaxSteps, maxChaseSteps)
		}
	case KindSeq:
		if p.Bytes, err = units.ParseBytesDefault(w.Bytes, 1<<20); err != nil {
			return nil, fmt.Errorf("workload.bytes: %v", err)
		}
		if p.Bytes < mem.CacheLine || p.Bytes > maxSeqBytes {
			return nil, fmt.Errorf("workload.bytes %d out of range [%d,%d]",
				p.Bytes, mem.CacheLine, maxSeqBytes)
		}
		switch w.Op {
		case "":
			p.Op = "load"
		case "load", "store", "store-nt":
			p.Op = w.Op
		default:
			return nil, fmt.Errorf("workload.op %q: want load, store, or store-nt", w.Op)
		}
	case KindTrace:
		if strings.TrimSpace(w.Trace) == "" {
			return nil, fmt.Errorf("workload.trace: empty trace")
		}
		if len(w.Trace) > maxTraceBytes {
			return nil, fmt.Errorf("workload.trace: %d bytes exceeds limit %d", len(w.Trace), maxTraceBytes)
		}
		if _, err := trace.ReadAccesses(strings.NewReader(w.Trace)); err != nil {
			return nil, fmt.Errorf("workload.trace: %v", err)
		}
		p.Trace = w.Trace
	case KindCloud:
		p.Name = w.Name
		if _, isSPEC := workload.SPECBenchByName(p.Name); !isSPEC && !isCloudName(p.Name) {
			return nil, fmt.Errorf("workload.name %q: want one of %s or a SPEC bench",
				p.Name, strings.Join(workload.CloudNames(), ", "))
		}
		p.Instructions = w.Instructions
		if p.Instructions == 0 {
			p.Instructions = 50000
		}
		if p.Instructions < 1 || p.Instructions > maxInstructions {
			return nil, fmt.Errorf("workload.instructions %d out of range [1,%d]", p.Instructions, maxInstructions)
		}
		if p.Footprint, err = units.ParseBytesDefault(w.Footprint, 16<<20); err != nil {
			return nil, fmt.Errorf("workload.footprint: %v", err)
		}
		if p.Footprint < 1<<10 || p.Footprint > maxRegionBytes {
			return nil, fmt.Errorf("workload.footprint %d out of range [%d,%d]",
				p.Footprint, 1<<10, maxRegionBytes)
		}
	case "":
		return nil, fmt.Errorf("workload.kind: required (chase, seq, trace, or cloud)")
	default:
		return nil, fmt.Errorf("workload.kind %q: want chase, seq, trace, or cloud", w.Kind)
	}
	return p, nil
}

func isCloudName(name string) bool {
	for _, n := range workload.CloudNames() {
		if n == name {
			return true
		}
	}
	return false
}
