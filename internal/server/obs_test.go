package server

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// traceSpec returns a small traced job.
func traceSpec(seed uint64) JobSpec {
	s := seqSpec("16K", "store-nt", seed)
	s.Trace = true
	return s
}

func TestResultCarriesObsDump(t *testing.T) {
	res, err := RunSpec(context.Background(), seqSpec("16K", "store-nt", 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Obs == nil || len(res.Obs.Counters) == 0 {
		t.Fatal("result missing observability dump")
	}
	vals := map[string]uint64{}
	for _, c := range res.Obs.Counters {
		vals[c.Name] = c.Value
	}
	if vals["dimm0/media/writes"] != res.Vans.DIMMs[0].MediaWrites {
		t.Errorf("dump media writes %d != snapshot %d",
			vals["dimm0/media/writes"], res.Vans.DIMMs[0].MediaWrites)
	}
	if vals["driver/writes"] == 0 {
		t.Error("driver writes not counted")
	}
	var hists int
	for _, h := range res.Obs.Histograms {
		if h.Count > 0 {
			hists++
		}
	}
	if hists == 0 {
		t.Error("no stage-latency histogram collected any samples")
	}
	// An untraced run records no lifecycle.
	if res.Trace() != nil {
		t.Error("untraced run carries a trace")
	}
}

func TestTraceHashedSeparately(t *testing.T) {
	plain, err := seqSpec("16K", "store-nt", 1).Compile()
	if err != nil {
		t.Fatal(err)
	}
	traced, err := traceSpec(1).Compile()
	if err != nil {
		t.Fatal(err)
	}
	if plain.Hash() == traced.Hash() {
		t.Fatal("traced and untraced jobs share a hash; a cached untraced result would shadow the trace")
	}
}

func TestTraceCaptureDeterministicAndBounded(t *testing.T) {
	res, err := RunSpec(context.Background(), traceSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	lt := res.Trace()
	if lt == nil || len(lt.Events()) == 0 {
		t.Fatal("traced run recorded no events")
	}
	if lt.Limit != serverTraceLimit {
		t.Errorf("trace limit %d, want %d", lt.Limit, serverTraceLimit)
	}
	res2, err := RunSpec(context.Background(), traceSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Trace().Events()) != len(lt.Events()) {
		t.Fatalf("trace lengths differ across identical runs: %d vs %d",
			len(res2.Trace().Events()), len(lt.Events()))
	}
	// The canonical result must not serialize the trace (byte-identity
	// across traced/untraced cache entries is keyed by hash, not payload
	// shape).
	if strings.Contains(string(res.Canonical()), "\"events\"") {
		t.Error("canonical result leaks trace events")
	}
}

func TestHTTPTraceEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2, QueueDepth: 16})

	// Traced job: NDJSON stream with one parseable event per line.
	resp := postJSON(t, ts.URL+"/v1/jobs?wait=1", traceSpec(1))
	sub := decodeBody[submitResponse](t, resp)
	if sub.Job.State != JobDone {
		t.Fatalf("job state %s", sub.Job.State)
	}
	tr, err := http.Get(ts.URL + "/v1/jobs/" + sub.Job.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Body.Close()
	if tr.StatusCode != http.StatusOK {
		t.Fatalf("trace status %d", tr.StatusCode)
	}
	if ct := tr.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q", ct)
	}
	sc := bufio.NewScanner(tr.Body)
	lines := 0
	for sc.Scan() {
		var ev struct {
			Stage string `json:"stage"`
			Pos   string `json:"pos"`
			Comp  string `json:"comp"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %d: %v", lines, err)
		}
		if ev.Stage == "" || ev.Pos == "" || ev.Comp == "" {
			t.Fatalf("line %d incomplete: %s", lines, sc.Text())
		}
		lines++
	}
	if lines == 0 {
		t.Fatal("empty trace stream")
	}

	// Untraced job: 404 with a hint.
	resp = postJSON(t, ts.URL+"/v1/jobs?wait=1", seqSpec("16K", "store-nt", 2))
	sub = decodeBody[submitResponse](t, resp)
	tr, err = http.Get(ts.URL + "/v1/jobs/" + sub.Job.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	tr.Body.Close()
	if tr.StatusCode != http.StatusNotFound {
		t.Errorf("untraced job trace status %d, want 404", tr.StatusCode)
	}

	// Unknown job: 404.
	tr, err = http.Get(ts.URL + "/v1/jobs/zzz/trace")
	if err != nil {
		t.Fatal(err)
	}
	tr.Body.Close()
	if tr.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job trace status %d, want 404", tr.StatusCode)
	}
}

func TestHTTPPrometheusEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2, QueueDepth: 16})
	for seed := uint64(1); seed <= 3; seed++ {
		resp := postJSON(t, ts.URL+"/v1/jobs?wait=1", seqSpec("16K", "store-nt", seed))
		if sub := decodeBody[submitResponse](t, resp); sub.Job.State != JobDone {
			t.Fatalf("seed %d state %s", seed, sub.Job.State)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/metrics/prom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)

	// Structural validity: every non-comment line is "name{labels} value";
	// every exposed metric family has HELP and TYPE.
	types := map[string]string{}
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" {
			t.Fatal("blank line in exposition")
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			types[f[2]] = f[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		if len(f) != 2 {
			t.Fatalf("malformed sample line %q", line)
		}
	}

	for name, typ := range map[string]string{
		"nvmserved_jobs_completed_total": "counter",
		"nvmserved_queue_depth":          "gauge",
		"nvmserved_breaker_state":        "gauge",
		"nvmserved_job_latency_seconds":  "histogram",
		"nvmserved_stage_latency_ns":     "histogram",
	} {
		if types[name] != typ {
			t.Errorf("%s TYPE = %q, want %q", name, types[name], typ)
		}
	}
	if !strings.Contains(text, "nvmserved_jobs_completed_total 3") {
		t.Error("completed counter not 3")
	}
	if !strings.Contains(text, `nvmserved_job_latency_seconds_bucket{le="+Inf"} 3`) {
		t.Error("job latency +Inf bucket not 3")
	}
	if !strings.Contains(text, `nvmserved_stage_latency_ns_bucket{stage="dimm0/media/write_ns",le=`) {
		t.Error("per-stage media write histogram missing")
	}
	if !strings.Contains(text, `nvmserved_stage_latency_ns_count{stage="driver/write_ns"}`) {
		t.Error("per-stage driver histogram missing")
	}
}

func TestMetricsLatencyBounded(t *testing.T) {
	m := newMetrics()
	// Below the cap: exact and histogram agree, summary is exact.
	for i := 0; i < 100; i++ {
		m.jobCompleted(time.Duration(i+1) * time.Millisecond)
	}
	s := m.snapshot(1, 0, 0, 1, 0)
	if s.JobLatencyMs.N != 100 {
		t.Fatalf("N = %d", s.JobLatencyMs.N)
	}
	if s.JobLatencyMs.Max != 100 {
		t.Errorf("exact max = %v, want 100", s.JobLatencyMs.Max)
	}

	// Push past the cap: the exact accumulator freezes, the histogram keeps
	// counting, and the summary switches to bucket-derived percentiles.
	for i := 0; i < maxExactLatencySamples; i++ {
		m.jobCompleted(10 * time.Millisecond)
	}
	if n := m.latencyExact.N(); n != maxExactLatencySamples {
		t.Fatalf("exact accumulator grew past cap: %d", n)
	}
	s = m.snapshot(1, 0, 0, 1, 0)
	if s.JobLatencyMs.N != 100+maxExactLatencySamples {
		t.Fatalf("summary N = %d, want %d", s.JobLatencyMs.N, 100+maxExactLatencySamples)
	}
	if s.JobLatencyMs.P50 <= 0 {
		t.Error("bucket-derived p50 not positive")
	}
}

func TestMergeStagesAccumulates(t *testing.T) {
	m := newMetrics()
	d := &obs.Dump{Histograms: []obs.HistogramDump{{
		Name: "dimm0/media/write_ns", Count: 2, Sum: 200, Min: 90, Max: 110,
		Bounds: []uint64{100, 200}, Counts: []uint64{1, 1, 0},
	}}}
	m.mergeStages(d)
	m.mergeStages(d)
	m.mergeStages(nil) // nil-safe
	snap := m.stageSnapshot()
	h := snap["dimm0/media/write_ns"]
	if h == nil || h.N() != 4 || h.Sum() != 400 {
		t.Fatalf("merged histogram = %+v", h)
	}
}
