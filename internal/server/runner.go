package server

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/cpu"
	"repro/internal/dram"
	"repro/internal/fault"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vans"
	"repro/internal/workload"
)

// Result is the deterministic output of one job run. It contains only
// simulation-domain quantities (cycles, counters) — never wall-clock times —
// so identical jobs produce byte-identical results on any worker. That
// property is what makes the result cache sound; the determinism regression
// test pins it.
type Result struct {
	Hash          string        `json:"hash"`
	Accesses      int           `json:"accesses"`
	BytesMoved    uint64        `json:"bytes_moved"`
	ElapsedCycles uint64        `json:"elapsed_cycles"`
	DrainCycles   uint64        `json:"drain_cycles"`
	ElapsedNs     float64       `json:"elapsed_ns"`
	DrainNs       float64       `json:"drain_ns"`
	AvgLatencyNs  float64       `json:"avg_latency_ns"`
	BandwidthGBs  float64       `json:"bandwidth_gbs"`
	Vans          vans.Snapshot `json:"vans"`
	// Obs is the aggregated observability dump: every registry counter and
	// stage-latency histogram across the whole stack. Simulation-domain and
	// deterministic (sorted names, cycle-derived values), so byte-identity
	// of canonical results is preserved.
	Obs *obs.Dump `json:"obs,omitempty"`
	// Crash is the crash-consistency report of a power-fail job (nil
	// otherwise). Like everything else here it is simulation-domain only.
	Crash *fault.CrashReport `json:"crash,omitempty"`

	// trace holds the recorded lifecycle trace of a CaptureTrace run.
	// Unexported: never part of the canonical JSON, streamed separately by
	// GET /v1/jobs/{id}/trace.
	trace *obs.Lifecycle
}

// Trace returns the recorded lifecycle trace (nil unless the plan set
// CaptureTrace).
func (r *Result) Trace() *obs.Lifecycle { return r.trace }

// serverTraceLimit caps per-job trace capture in the service: enough to
// follow hundreds of thousands of stage transitions while bounding resident
// memory per cached traced job.
const serverTraceLimit = 1 << 18

// Canonical returns the canonical JSON encoding used for byte-identity
// comparisons across workers.
func (r *Result) Canonical() []byte {
	b, err := json.Marshal(r)
	if err != nil {
		panic("server: marshaling result: " + err.Error())
	}
	return b
}

// Runner executes jobs. Each scheduler worker owns exactly one Runner, and a
// Runner builds a fresh sim.Engine + vans.System per job: the simulation
// substrate is single-threaded by design and is never shared across
// goroutines, so concurrent jobs are fully isolated and every run is
// deterministic under its plan.
type Runner struct {
	// checkEvery is how many submissions pass between context polls
	// (exported knob for tests; 0 uses a default that keeps cancellation
	// latency well under a millisecond of host time).
	checkEvery int
}

// NewRunner returns a Runner with default settings.
func NewRunner() *Runner { return &Runner{} }

// Run executes the plan to completion or until ctx is done. The returned
// result is independent of which Runner executed it. Run is attempt 0; the
// scheduler retries transient faults through RunAttempt.
func (rn *Runner) Run(ctx context.Context, p *Plan) (*Result, error) {
	return rn.RunAttempt(ctx, p, 0)
}

// RunAttempt executes one retry attempt of the plan. The attempt number
// feeds the fault injector: transient faults fire only on attempt 0, so a
// retried job deterministically succeeds while permanent faults recur.
func (rn *Runner) RunAttempt(ctx context.Context, p *Plan, attempt int) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	accs, window, err := buildAccesses(p)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(accs) == 0 {
		return nil, fmt.Errorf("server: workload produced no accesses")
	}

	if p.Fault.PowerFailCycle > 0 {
		return rn.runPowerFail(p, accs, window)
	}

	cfg := p.VansConfig()
	cfg.FaultAttempt = attempt
	// Observability context for this attempt. The tracer must attach before
	// vans.New: children copy the hook set at construction.
	o := obs.New()
	var lt *obs.Lifecycle
	if p.CaptureTrace {
		lt = obs.NewLifecycle(dram.CyclesPerNano)
		lt.Limit = serverTraceLimit
		o.Attach(lt)
	}
	cfg.Obs = o
	sys := vans.New(cfg)
	d := mem.NewDriver(sys)
	d.SetObs(o)
	every := rn.checkEvery
	if every == 0 {
		every = 1024
	}
	crash := p.Fault.CrashAccess
	n := uint64(0)
	keepGoing := func() bool {
		n++
		if crash != 0 && n == crash {
			// Chaos knob: blow up the engine goroutine mid-run to drill the
			// scheduler's worker panic recovery.
			panic(fault.CrashPanicMsg(crash))
		}
		if n%uint64(every) != 0 {
			return true
		}
		return ctx.Err() == nil
	}
	elapsed, ok := d.RunWindowChecked(accs, window, keepGoing)
	if !ok {
		return nil, ctx.Err()
	}
	fenceStart := sys.Engine().Now()
	d.Fence()
	drain := sys.Engine().Now() - fenceStart
	if ferr := d.Err(); ferr != nil {
		// Injected faults surface as typed errors, never panics. The wrap
		// preserves the fault class so the scheduler's retry policy can
		// distinguish transient from permanent.
		return nil, fmt.Errorf("server: %d of %d accesses faulted: %w",
			d.Faults(), len(accs), ferr)
	}

	var bytesMoved uint64
	for _, a := range accs {
		sz := uint64(a.Size)
		if sz == 0 {
			sz = mem.CacheLine
		}
		bytesMoved += sz
	}
	res := &Result{
		Hash:          p.Hash(),
		Accesses:      len(accs),
		BytesMoved:    bytesMoved,
		ElapsedCycles: uint64(elapsed),
		DrainCycles:   uint64(drain),
		ElapsedNs:     mem.ToNs(sys, elapsed),
		DrainNs:       mem.ToNs(sys, drain),
		AvgLatencyNs:  mem.ToNs(sys, elapsed) / float64(len(accs)),
		BandwidthGBs:  mem.BandwidthGBs(sys, bytesMoved, elapsed+drain),
		Vans:          sys.Snapshot(),
		Obs:           o.Dump(),
		trace:         lt,
	}
	return res, nil
}

// runPowerFail executes a power-fail job: replay to the cut cycle, recover,
// verify the ADR contract, and report. The report replaces the usual timing
// result (a cut run has no steady-state bandwidth to report).
func (rn *Runner) runPowerFail(p *Plan, accs []mem.Access, window int) (*Result, error) {
	rep, err := vans.CheckPowerFail(p.VansConfig(), accs, window,
		sim.Cycle(p.Fault.PowerFailCycle), p.Seed)
	if err != nil {
		return nil, err
	}
	return &Result{
		Hash:          p.Hash(),
		Accesses:      len(accs),
		ElapsedCycles: rep.EndCycle,
		Crash:         &rep,
	}, nil
}

// RunSpec compiles and executes spec synchronously on the calling
// goroutine. It is the single-shot entry point shared by cmd/vans and the
// tests that compare daemon output against single-threaded replay.
func RunSpec(ctx context.Context, spec JobSpec) (*Result, error) {
	p, err := spec.Compile()
	if err != nil {
		return nil, err
	}
	return NewRunner().Run(ctx, p)
}

// buildAccesses materializes the plan's access stream and the replay window.
func buildAccesses(p *Plan) ([]mem.Access, int, error) {
	switch p.Kind {
	case KindChase:
		// A chase is a dependent chain: window forced to 1.
		return workload.ChaseAccesses(p.Region, p.MaxSteps, p.Seed), 1, nil
	case KindSeq:
		return workload.SeqAccesses(p.Bytes, seqOp(p.Op)), p.Window, nil
	case KindTrace:
		accs, err := trace.ReadAccesses(strings.NewReader(p.Trace))
		if err != nil {
			return nil, 0, err
		}
		return accs, p.Window, nil
	case KindCloud:
		return captureCloud(p), p.Window, nil
	default:
		return nil, 0, fmt.Errorf("server: unknown workload kind %q", p.Kind)
	}
}

func seqOp(name string) mem.Op {
	switch name {
	case "store":
		return mem.OpWrite
	case "store-nt":
		return mem.OpWriteNT
	default:
		return mem.OpRead
	}
}

// captureCloud replays a named workload through the CPU substrate over a
// capture system, recording the post-cache memory trace (the tracegen flow),
// and returns it as a driver stream for the job's own system.
func captureCloud(p *Plan) []mem.Access {
	capCfg := vans.DefaultConfig()
	capCfg.NV.Media.Capacity = 256 << 20
	col := trace.NewCollector(vans.New(capCfg))
	core := cpu.New(cpu.DefaultConfig(), col)

	var w cpu.Workload
	if b, ok := workload.SPECBenchByName(p.Name); ok {
		b.FootprintMB = float64(p.Footprint) / (1 << 20)
		w = workload.SPEC(b, p.Instructions, p.Seed)
	} else {
		w = workload.Cloud(p.Name, workload.CloudOptions{
			Instructions: p.Instructions,
			Seed:         p.Seed,
			Footprint:    p.Footprint,
		})
	}
	core.Run(w)
	accs := make([]mem.Access, len(col.Records))
	for i, rec := range col.Records {
		accs[i] = rec.Access()
	}
	return accs
}
