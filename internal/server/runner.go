package server

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/bottleneck"
	"repro/internal/ckpt"
	"repro/internal/cpu"
	"repro/internal/dram"
	"repro/internal/fault"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vans"
	"repro/internal/workload"
)

// Result is the deterministic output of one job run. It contains only
// simulation-domain quantities (cycles, counters) — never wall-clock times —
// so identical jobs produce byte-identical results on any worker. That
// property is what makes the result cache sound; the determinism regression
// test pins it.
type Result struct {
	Hash          string        `json:"hash"`
	Accesses      int           `json:"accesses"`
	BytesMoved    uint64        `json:"bytes_moved"`
	ElapsedCycles uint64        `json:"elapsed_cycles"`
	DrainCycles   uint64        `json:"drain_cycles"`
	ElapsedNs     float64       `json:"elapsed_ns"`
	DrainNs       float64       `json:"drain_ns"`
	AvgLatencyNs  float64       `json:"avg_latency_ns"`
	BandwidthGBs  float64       `json:"bandwidth_gbs"`
	Vans          vans.Snapshot `json:"vans"`
	// Obs is the aggregated observability dump: every registry counter and
	// stage-latency histogram across the whole stack. Simulation-domain and
	// deterministic (sorted names, cycle-derived values), so byte-identity
	// of canonical results is preserved.
	Obs *obs.Dump `json:"obs,omitempty"`
	// Verdict is the bottleneck analysis computed from Obs: dominant stage,
	// time attribution, and named regime. Derived purely from the dump, so it
	// inherits the dump's determinism (same job hash => byte-identical
	// verdict). Nil for runs with nothing to attribute (power-fail jobs).
	Verdict *bottleneck.Verdict `json:"verdict,omitempty"`
	// Crash is the crash-consistency report of a power-fail job (nil
	// otherwise). Like everything else here it is simulation-domain only.
	Crash *fault.CrashReport `json:"crash,omitempty"`

	// trace holds the recorded lifecycle trace of a CaptureTrace run.
	// Unexported: never part of the canonical JSON, streamed separately by
	// GET /v1/jobs/{id}/trace.
	trace *obs.Lifecycle
}

// Trace returns the recorded lifecycle trace (nil unless the plan set
// CaptureTrace).
func (r *Result) Trace() *obs.Lifecycle { return r.trace }

// serverTraceLimit caps per-job trace capture in the service: enough to
// follow hundreds of thousands of stage transitions while bounding resident
// memory per cached traced job.
const serverTraceLimit = 1 << 18

// Canonical returns the canonical JSON encoding used for byte-identity
// comparisons across workers.
func (r *Result) Canonical() []byte {
	b, err := json.Marshal(r)
	if err != nil {
		panic("server: marshaling result: " + err.Error())
	}
	return b
}

// Runner executes jobs. Each scheduler worker owns exactly one Runner, and a
// Runner builds a fresh sim.Engine + vans.System per job: the simulation
// substrate is single-threaded by design and is never shared across
// goroutines, so concurrent jobs are fully isolated and every run is
// deterministic under its plan.
type Runner struct {
	// SimParallel is the intra-simulation parallelism handed to the engine
	// (vans.Config.Parallel): how many goroutines may execute one cycle
	// round. <= 1 runs fully serial. Execution-strategy only — results are
	// byte-identical at every setting, so it is never part of a job hash.
	SimParallel int

	// checkEvery is how many submissions pass between context polls
	// (exported knob for tests; 0 uses a default that keeps cancellation
	// latency well under a millisecond of host time).
	checkEvery int
}

// NewRunner returns a Runner with default settings.
func NewRunner() *Runner { return &Runner{} }

// Run executes the plan to completion or until ctx is done. The returned
// result is independent of which Runner executed it. Run is attempt 0; the
// scheduler retries transient faults through RunAttempt.
func (rn *Runner) Run(ctx context.Context, p *Plan) (*Result, error) {
	return rn.RunAttempt(ctx, p, 0)
}

// RunAttempt executes one retry attempt of the plan. The attempt number
// feeds the fault injector: transient faults fire only on attempt 0, so a
// retried job deterministically succeeds while permanent faults recur.
func (rn *Runner) RunAttempt(ctx context.Context, p *Plan, attempt int) (*Result, error) {
	return rn.RunAttemptCkpt(ctx, p, attempt, nil)
}

// CkptIO wires one run attempt to checkpoint storage. All fields are
// optional; a nil *CkptIO (or the zero value) runs without snapshot I/O —
// though barriers implied by the plan (ckpt_every, warmup) still execute, so
// the result is byte-identical either way.
type CkptIO struct {
	// Resume, when non-nil, is a sealed job snapshot (stamped with the
	// plan's hash) the run restores before issuing anything.
	Resume []byte
	// WarmStart, when non-nil, is a sealed warm snapshot (stamped with the
	// plan's WarmHash) that replaces executing the warmup prefix.
	WarmStart []byte
	// Sink receives the sealed job snapshot captured at each barrier.
	// Returning an error aborts the run.
	Sink func(idx int, snap []byte) error
	// WarmSink receives the sealed warm snapshot captured at the warmup
	// boundary (plans with a warmup only).
	WarmSink func(snap []byte)

	// ResumedFrom reports the access index the run restarted at (0 when it
	// ran from the beginning). WarmStarted reports that the warmup prefix
	// was skipped via WarmStart. Saves counts snapshots handed to Sink.
	ResumedFrom int
	WarmStarted bool
	Saves       int
}

// encodeSnapshot seals the full run state at an idle barrier: a stamp tying
// the snapshot to its plan, the cut's access index, the total access count,
// then driver and system state. The stamp is the job hash for job snapshots
// and the WarmHash for warm snapshots.
func encodeSnapshot(stamp string, idx, total int, d *mem.Driver, sys *vans.System) ([]byte, error) {
	var enc ckpt.Enc
	enc.String(stamp)
	enc.U64(uint64(idx))
	enc.U64(uint64(total))
	if err := d.SaveState(&enc); err != nil {
		return nil, err
	}
	if err := sys.SaveState(&enc); err != nil {
		return nil, err
	}
	return ckpt.Seal(enc.Bytes()), nil
}

// decodeSnapshot restores driver and system state from a sealed snapshot,
// returning the cut index and total access count recorded at capture.
func decodeSnapshot(stamp string, snap []byte, d *mem.Driver, sys *vans.System) (idx, total int, err error) {
	payload, err := ckpt.Open(snap)
	if err != nil {
		return 0, 0, err
	}
	dec := ckpt.NewDec(payload)
	got := dec.String()
	if err := dec.Err(); err != nil {
		return 0, 0, err
	}
	if got != stamp {
		return 0, 0, fmt.Errorf("ckpt: snapshot stamped %q does not match plan %q", got, stamp)
	}
	idx = int(dec.U64())
	total = int(dec.U64())
	if err := d.LoadState(dec); err != nil {
		return 0, 0, err
	}
	if err := sys.LoadState(dec); err != nil {
		return 0, 0, err
	}
	if err := dec.Close(); err != nil {
		return 0, 0, err
	}
	return idx, total, nil
}

// RunAttemptCkpt is RunAttempt with checkpoint I/O. The access stream is the
// warmup prefix (when the plan has one) followed by the main workload; a
// forced barrier sits at the boundary, periodic barriers every CkptEvery
// accesses. Snapshots restore only into the exact plan (and snapshot format
// version) that produced them — the stamp check enforces it.
func (rn *Runner) RunAttemptCkpt(ctx context.Context, p *Plan, attempt int, io *CkptIO) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	accs, window, err := buildAccesses(p)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(accs) == 0 {
		return nil, fmt.Errorf("server: workload produced no accesses")
	}
	var warmLen int
	if p.Warmup != nil {
		warmAccs, _, err := buildWorkloadAccesses(*p.Warmup, p.Seed)
		if err != nil {
			return nil, fmt.Errorf("warmup: %v", err)
		}
		if len(warmAccs) == 0 {
			return nil, fmt.Errorf("server: warmup produced no accesses")
		}
		warmLen = len(warmAccs)
		accs = append(warmAccs[:warmLen:warmLen], accs...)
	}
	W := warmLen

	if p.Fault.PowerFailCycle > 0 {
		return rn.runPowerFail(p, accs, window)
	}

	cfg := p.VansConfig()
	cfg.FaultAttempt = attempt
	cfg.Parallel = rn.SimParallel
	// Observability context for this attempt. The tracer must attach before
	// vans.New: children copy the hook set at construction.
	o := obs.New()
	var lt *obs.Lifecycle
	if p.CaptureTrace {
		lt = obs.NewLifecycle(dram.CyclesPerNano)
		lt.Limit = serverTraceLimit
		o.Attach(lt)
	}
	cfg.Obs = o
	sys := vans.New(cfg)
	d := mem.NewDriver(sys)
	d.SetObs(o)
	if p.CkptEvery > 0 || W > 0 {
		pol := &mem.CkptPolicy{Every: p.CkptEvery, ForcedAt: W}
		switch {
		case io != nil && io.Resume != nil:
			idx, total, err := decodeSnapshot(p.Hash(), io.Resume, d, sys)
			if err != nil {
				return nil, fmt.Errorf("ckpt: restoring job snapshot: %w", err)
			}
			if total != len(accs) || idx < 1 || idx >= len(accs) {
				return nil, fmt.Errorf("%w: snapshot cut %d/%d does not fit plan with %d accesses",
					ckpt.ErrCorrupt, idx, total, len(accs))
			}
			pol.StartIndex = idx
			io.ResumedFrom = idx
		case io != nil && io.WarmStart != nil && W > 0:
			idx, total, err := decodeSnapshot(p.WarmHash(), io.WarmStart, d, sys)
			if err != nil {
				return nil, fmt.Errorf("ckpt: restoring warm snapshot: %w", err)
			}
			if idx != W || total != W {
				return nil, fmt.Errorf("%w: warm snapshot cut %d/%d, want %d/%d",
					ckpt.ErrCorrupt, idx, total, W, W)
			}
			pol.StartIndex = W
			io.WarmStarted = true
		}
		if io != nil && (io.Sink != nil || io.WarmSink != nil) {
			total := len(accs)
			pol.Sink = func(i int) error {
				if i == W && W > 0 && io.WarmSink != nil {
					snap, err := encodeSnapshot(p.WarmHash(), W, W, d, sys)
					if err != nil {
						return err
					}
					io.WarmSink(snap)
				}
				if io.Sink == nil {
					return nil
				}
				snap, err := encodeSnapshot(p.Hash(), i, total, d, sys)
				if err != nil {
					return err
				}
				io.Saves++
				return io.Sink(i, snap)
			}
		}
		d.SetCkpt(pol)
	}
	every := rn.checkEvery
	if every == 0 {
		every = 1024
	}
	crash := p.Fault.CrashAccess
	n := uint64(0)
	keepGoing := func() bool {
		n++
		if crash != 0 && n == crash {
			// Chaos knob: blow up the engine goroutine mid-run to drill the
			// scheduler's worker panic recovery.
			panic(fault.CrashPanicMsg(crash))
		}
		if n%uint64(every) != 0 {
			return true
		}
		return ctx.Err() == nil
	}
	elapsed, ok := d.RunWindowChecked(accs, window, keepGoing)
	if !ok {
		if cerr := d.CkptErr(); cerr != nil {
			return nil, fmt.Errorf("ckpt: snapshot sink failed: %w", cerr)
		}
		return nil, ctx.Err()
	}
	fenceStart := sys.Engine().Now()
	d.Fence()
	drain := sys.Engine().Now() - fenceStart
	if ferr := d.Err(); ferr != nil {
		// Injected faults surface as typed errors, never panics. The wrap
		// preserves the fault class so the scheduler's retry policy can
		// distinguish transient from permanent.
		return nil, fmt.Errorf("server: %d of %d accesses faulted: %w",
			d.Faults(), len(accs), ferr)
	}

	var bytesMoved uint64
	for _, a := range accs {
		sz := uint64(a.Size)
		if sz == 0 {
			sz = mem.CacheLine
		}
		bytesMoved += sz
	}
	res := &Result{
		Hash:          p.Hash(),
		Accesses:      len(accs),
		BytesMoved:    bytesMoved,
		ElapsedCycles: uint64(elapsed),
		DrainCycles:   uint64(drain),
		ElapsedNs:     mem.ToNs(sys, elapsed),
		DrainNs:       mem.ToNs(sys, drain),
		AvgLatencyNs:  mem.ToNs(sys, elapsed) / float64(len(accs)),
		BandwidthGBs:  mem.BandwidthGBs(sys, bytesMoved, elapsed+drain),
		Vans:          sys.Snapshot(),
		Obs:           o.Dump(),
		trace:         lt,
	}
	res.Verdict = bottleneck.Analyze(res.Obs)
	return res, nil
}

// runPowerFail executes a power-fail job: replay to the cut cycle, recover,
// verify the ADR contract, and report. The report replaces the usual timing
// result (a cut run has no steady-state bandwidth to report).
func (rn *Runner) runPowerFail(p *Plan, accs []mem.Access, window int) (*Result, error) {
	cfg := p.VansConfig()
	cfg.Parallel = rn.SimParallel
	rep, err := vans.CheckPowerFail(cfg, accs, window,
		sim.Cycle(p.Fault.PowerFailCycle), p.Seed)
	if err != nil {
		return nil, err
	}
	return &Result{
		Hash:          p.Hash(),
		Accesses:      len(accs),
		ElapsedCycles: rep.EndCycle,
		Crash:         &rep,
	}, nil
}

// RunSpec compiles and executes spec synchronously on the calling
// goroutine. It is the single-shot entry point shared by cmd/vans and the
// tests that compare daemon output against single-threaded replay.
func RunSpec(ctx context.Context, spec JobSpec) (*Result, error) {
	p, err := spec.Compile()
	if err != nil {
		return nil, err
	}
	return NewRunner().Run(ctx, p)
}

// buildAccesses materializes the plan's main access stream and the replay
// window.
func buildAccesses(p *Plan) ([]mem.Access, int, error) {
	accs, window, err := buildWorkloadAccesses(p.mainWorkload(), p.Seed)
	if err != nil {
		return nil, 0, err
	}
	if window == 0 {
		window = p.Window
	}
	return accs, window, nil
}

// buildWorkloadAccesses materializes one workload's access stream. The
// returned window is 1 when the workload forces a dependent chain (chase)
// and 0 when the plan's window applies.
func buildWorkloadAccesses(w WorkloadPlan, seed uint64) ([]mem.Access, int, error) {
	switch w.Kind {
	case KindChase:
		// A chase is a dependent chain: window forced to 1.
		return workload.ChaseAccesses(w.Region, w.MaxSteps, seed), 1, nil
	case KindSeq:
		return workload.SeqAccesses(w.Bytes, seqOp(w.Op)), 0, nil
	case KindTrace:
		accs, err := trace.ReadAccesses(strings.NewReader(w.Trace))
		if err != nil {
			return nil, 0, err
		}
		return accs, 0, nil
	case KindCloud:
		return captureCloud(w, seed), 0, nil
	default:
		return nil, 0, fmt.Errorf("server: unknown workload kind %q", w.Kind)
	}
}

func seqOp(name string) mem.Op {
	switch name {
	case "store":
		return mem.OpWrite
	case "store-nt":
		return mem.OpWriteNT
	default:
		return mem.OpRead
	}
}

// captureCloud replays a named workload through the CPU substrate over a
// capture system, recording the post-cache memory trace (the tracegen flow),
// and returns it as a driver stream for the job's own system.
func captureCloud(wp WorkloadPlan, seed uint64) []mem.Access {
	capCfg := vans.DefaultConfig()
	capCfg.NV.Media.Capacity = 256 << 20
	col := trace.NewCollector(vans.New(capCfg))
	core := cpu.New(cpu.DefaultConfig(), col)

	var w cpu.Workload
	if b, ok := workload.SPECBenchByName(wp.Name); ok {
		b.FootprintMB = float64(wp.Footprint) / (1 << 20)
		w = workload.SPEC(b, wp.Instructions, seed)
	} else {
		w = workload.Cloud(wp.Name, workload.CloudOptions{
			Instructions: wp.Instructions,
			Seed:         seed,
			Footprint:    wp.Footprint,
		})
	}
	core.Run(w)
	accs := make([]mem.Access, len(col.Records))
	for i, rec := range col.Records {
		accs[i] = rec.Access()
	}
	return accs
}
