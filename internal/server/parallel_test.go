package server

import (
	"bytes"
	"context"
	"runtime"
	"testing"

	"repro/internal/fault"
)

// forcePar raises GOMAXPROCS for the duration of the test so the engine's
// pool budget (GOMAXPROCS-1 extra workers) hands out tokens even on a
// single-CPU host; without it every parallel round would silently degrade to
// inline execution and these tests would not exercise the concurrent path.
func forcePar(t *testing.T, n int) {
	t.Helper()
	prev := runtime.GOMAXPROCS(n)
	t.Cleanup(func() { runtime.GOMAXPROCS(prev) })
}

// runAtPar executes the compiled plan with the given intra-simulation
// parallelism and returns the canonical result bytes.
func runAtPar(t *testing.T, p *Plan, par int) (*Result, []byte) {
	t.Helper()
	rn := NewRunner()
	rn.SimParallel = par
	res, err := rn.Run(context.Background(), p)
	if err != nil {
		t.Fatalf("par %d: %v", par, err)
	}
	return res, res.Canonical()
}

// TestParallelByteIdentical is the engine-parallelism oracle at the service
// layer: every representative figure/table job shape must produce
// byte-identical canonical results (timings, counters, obs dump) on the
// serial engine and on the parallel engine at several -par levels. `make
// par-smoke` runs exactly this harness under -race.
func TestParallelByteIdentical(t *testing.T) {
	forcePar(t, 8)
	for key, spec := range figureShapes {
		spec := spec
		t.Run(key, func(t *testing.T) {
			p, err := spec.Compile()
			if err != nil {
				t.Fatalf("Compile: %v", err)
			}
			ref, refBytes := runAtPar(t, p, 1)
			for _, par := range []int{2, 4} {
				res, got := runAtPar(t, p, par)
				if !bytes.Equal(refBytes, got) {
					t.Fatalf("par %d result differs from serial\nserial:   %s\nparallel: %s",
						par, refBytes, got)
				}
				if res.Hash != ref.Hash {
					t.Fatalf("par %d hash %s != serial hash %s", par, res.Hash, ref.Hash)
				}
			}
		})
	}
}

// TestSimParallelExcludedFromHash pins the contract that parallelism is an
// execution strategy, not a job parameter: the canonical plan hash and the
// result bytes are identical at every SimParallel setting, for plain runs,
// fault-injected runs, and the 6-DIMM interleaved shape, so the result cache
// may freely mix results computed at different parallelism levels.
func TestSimParallelExcludedFromHash(t *testing.T) {
	forcePar(t, 8)
	specs := map[string]JobSpec{
		"interleaved": {
			Config:   ConfigSpec{DIMMs: 6, Interleaved: true, MediaBytes: "8M"},
			Workload: WorkloadSpec{Kind: "seq", Bytes: "96K", Op: "store-nt"},
			Window:   8, Seed: 7,
		},
		// A power-fail job: the crash-consistency checker replays to a cut
		// cycle on the same sharded engine, so its report must be par-stable
		// too (this also covers the runPowerFail parallelism plumbing).
		"power-fail": {
			Config:   ConfigSpec{MediaBytes: "16M"},
			Workload: WorkloadSpec{Kind: "seq", Bytes: "64K", Op: "store"},
			Window:   4, Seed: 7,
			Fault: &fault.Spec{PowerFailCycle: 40000},
		},
		// A transient-fault retry: attempt 1 must succeed identically at any
		// parallelism.
		"transient-poison": {
			Config:   ConfigSpec{MediaBytes: "16M"},
			Workload: WorkloadSpec{Kind: "chase", Region: "64K", MaxSteps: 900},
			Seed:     7,
			Fault:    &fault.Spec{PoisonRate: 1, PoisonTransient: true},
		},
	}
	for name, spec := range specs {
		spec := spec
		t.Run(name, func(t *testing.T) {
			p, err := spec.Compile()
			if err != nil {
				t.Fatalf("Compile: %v", err)
			}
			hash := p.Hash()
			var ref []byte
			for _, par := range []int{1, 4} {
				rn := NewRunner()
				rn.SimParallel = par
				res, err := rn.RunAttempt(context.Background(), p, 1)
				if err != nil {
					t.Fatalf("par %d: %v", par, err)
				}
				if res.Hash != hash {
					t.Fatalf("par %d: result hash %s != plan hash %s", par, res.Hash, hash)
				}
				if ref == nil {
					ref = res.Canonical()
				} else if !bytes.Equal(ref, res.Canonical()) {
					t.Fatalf("par %d result differs:\nserial:   %s\nparallel: %s",
						par, ref, res.Canonical())
				}
			}
		})
	}
}
