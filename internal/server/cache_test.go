package server

import (
	"fmt"
	"sync"
	"testing"
)

func TestCacheLRUEviction(t *testing.T) {
	c := newResultCache(2)
	ra, rb, rc := &Result{Hash: "a"}, &Result{Hash: "b"}, &Result{Hash: "c"}
	c.Put("a", ra)
	c.Put("b", rb)
	if _, ok := c.Get("a"); !ok { // promotes a over b
		t.Fatal("a missing")
	}
	c.Put("c", rc) // evicts b, the least recently used
	if _, ok := c.Get("b"); ok {
		t.Error("b survived eviction; LRU order wrong")
	}
	if got, ok := c.Get("a"); !ok || got != ra {
		t.Error("a evicted or wrong value")
	}
	if got, ok := c.Get("c"); !ok || got != rc {
		t.Error("c missing")
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
}

func TestCacheOverwrite(t *testing.T) {
	c := newResultCache(2)
	c.Put("a", &Result{Accesses: 1})
	c.Put("a", &Result{Accesses: 2})
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	got, _ := c.Get("a")
	if got.Accesses != 2 {
		t.Errorf("Get after overwrite = %d, want 2", got.Accesses)
	}
}

func TestCacheDisabled(t *testing.T) {
	c := newResultCache(0)
	c.Put("a", &Result{})
	if _, ok := c.Get("a"); ok {
		t.Error("zero-capacity cache returned a hit")
	}
	if c.Len() != 0 {
		t.Errorf("Len = %d, want 0", c.Len())
	}
}

// TestCacheEvictionOrder walks a longer access pattern and checks the exact
// eviction sequence: Get and Put both promote, so the victim is always the
// entry untouched the longest.
func TestCacheEvictionOrder(t *testing.T) {
	c := newResultCache(3)
	for _, k := range []string{"a", "b", "c"} {
		c.Put(k, &Result{Hash: k})
	}
	// Recency (old -> new): a b c. Touch a, then overwrite b: a and b are
	// now newer than c.
	c.Get("a")
	c.Put("b", &Result{Hash: "b2"})
	c.Put("d", &Result{Hash: "d"}) // evicts c
	if _, ok := c.Get("c"); ok {
		t.Fatal("c survived; victim should be the least recently touched")
	}
	// Recency: a b d. Insert two more; a then b must fall, d must stay.
	c.Put("e", &Result{Hash: "e"}) // evicts a
	if _, ok := c.Get("a"); ok {
		t.Fatal("a survived past its eviction turn")
	}
	c.Put("f", &Result{Hash: "f"}) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived past its eviction turn")
	}
	for _, k := range []string{"d", "e", "f"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("%s missing from final set", k)
		}
	}
}

// TestCacheConcurrent hammers one small cache from many goroutines with
// overlapping keys. Run under -race (make ci does); the assertions check the
// cache never hands back a value for the wrong key and never exceeds its
// capacity.
func TestCacheConcurrent(t *testing.T) {
	const (
		workers = 8
		keys    = 32
		rounds  = 400
	)
	c := newResultCache(8)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				k := fmt.Sprint((i*7 + w*13) % keys)
				if i%3 == 0 {
					c.Put(k, &Result{Hash: k})
					continue
				}
				if res, ok := c.Get(k); ok && res.Hash != k {
					t.Errorf("Get(%s) returned result for %s", k, res.Hash)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if n := c.Len(); n > 8 {
		t.Errorf("Len = %d, exceeds capacity 8", n)
	}
	if cp := c.Cap(); cp != 8 {
		t.Errorf("Cap = %d, want 8", cp)
	}
}

func TestCacheChurn(t *testing.T) {
	c := newResultCache(8)
	for i := 0; i < 100; i++ {
		c.Put(fmt.Sprint(i), &Result{Accesses: i})
	}
	if c.Len() != 8 {
		t.Fatalf("Len = %d, want 8", c.Len())
	}
	for i := 92; i < 100; i++ {
		if got, ok := c.Get(fmt.Sprint(i)); !ok || got.Accesses != i {
			t.Errorf("recent key %d missing", i)
		}
	}
}
