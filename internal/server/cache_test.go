package server

import (
	"fmt"
	"testing"
)

func TestCacheLRUEviction(t *testing.T) {
	c := newResultCache(2)
	ra, rb, rc := &Result{Hash: "a"}, &Result{Hash: "b"}, &Result{Hash: "c"}
	c.Put("a", ra)
	c.Put("b", rb)
	if _, ok := c.Get("a"); !ok { // promotes a over b
		t.Fatal("a missing")
	}
	c.Put("c", rc) // evicts b, the least recently used
	if _, ok := c.Get("b"); ok {
		t.Error("b survived eviction; LRU order wrong")
	}
	if got, ok := c.Get("a"); !ok || got != ra {
		t.Error("a evicted or wrong value")
	}
	if got, ok := c.Get("c"); !ok || got != rc {
		t.Error("c missing")
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
}

func TestCacheOverwrite(t *testing.T) {
	c := newResultCache(2)
	c.Put("a", &Result{Accesses: 1})
	c.Put("a", &Result{Accesses: 2})
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	got, _ := c.Get("a")
	if got.Accesses != 2 {
		t.Errorf("Get after overwrite = %d, want 2", got.Accesses)
	}
}

func TestCacheDisabled(t *testing.T) {
	c := newResultCache(0)
	c.Put("a", &Result{})
	if _, ok := c.Get("a"); ok {
		t.Error("zero-capacity cache returned a hit")
	}
	if c.Len() != 0 {
		t.Errorf("Len = %d, want 0", c.Len())
	}
}

func TestCacheChurn(t *testing.T) {
	c := newResultCache(8)
	for i := 0; i < 100; i++ {
		c.Put(fmt.Sprint(i), &Result{Accesses: i})
	}
	if c.Len() != 8 {
		t.Fatalf("Len = %d, want 8", c.Len())
	}
	for i := 92; i < 100; i++ {
		if got, ok := c.Get(fmt.Sprint(i)); !ok || got.Accesses != i {
			t.Errorf("recent key %d missing", i)
		}
	}
}
