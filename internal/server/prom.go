package server

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/obs"
)

// RegisterProm appends an extra collector rendered at the end of every
// /v1/metrics/prom exposition. The cluster layer uses this to merge its
// dispatch/hedge/peer counters into the node's single scrape target.
// Register before serving traffic.
func (s *Server) RegisterProm(fn func(io.Writer) error) {
	s.mu.Lock()
	s.extraProm = append(s.extraProm, fn)
	s.mu.Unlock()
}

// WritePrometheus renders the service metrics in Prometheus text exposition
// format (version 0.0.4): service counters and gauges, the job wall-latency
// histogram, one histogram family per merged simulator stage-latency
// distribution (labelled by stage name, e.g. stage="dimm0/media/read_ns"),
// and any collectors added with RegisterProm.
func (s *Server) WritePrometheus(w io.Writer) error {
	snap := s.MetricsSnapshot()
	var b strings.Builder

	counter := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gaugeF := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	gaugeI := func(name, help string, v int) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}

	fmt.Fprintf(&b, "# HELP nvmserved_build_info Build identity (VCS revision) of this binary.\n"+
		"# TYPE nvmserved_build_info gauge\nnvmserved_build_info{revision=%q} 1\n", BuildRevision())
	gaugeF("nvmserved_uptime_seconds", "Seconds since the server started.", snap.UptimeSeconds)
	gaugeI("nvmserved_workers", "Worker pool size.", snap.Workers)
	gaugeI("nvmserved_workers_busy", "Workers currently executing a job.", snap.WorkersBusy)
	gaugeF("nvmserved_worker_utilization", "Fraction of worker-time spent executing jobs.", snap.WorkerUtilization)
	gaugeI("nvmserved_queue_depth", "Jobs waiting in the queue.", snap.QueueDepth)
	gaugeI("nvmserved_queue_capacity", "Queue capacity.", snap.QueueCapacity)
	counter("nvmserved_jobs_accepted_total", "Jobs accepted for execution or served from cache.", snap.JobsAccepted)
	counter("nvmserved_jobs_completed_total", "Jobs that finished successfully.", snap.JobsCompleted)
	counter("nvmserved_jobs_failed_total", "Jobs that finished with an error.", snap.JobsFailed)
	counter("nvmserved_jobs_canceled_total", "Jobs canceled or timed out.", snap.JobsCanceled)
	counter("nvmserved_jobs_cached_total", "Submissions served entirely from the result cache.", snap.JobsCached)
	counter("nvmserved_rejected_queue_full_total", "Submissions rejected because the queue was full.", snap.RejectedQueueFull)
	counter("nvmserved_rejected_draining_total", "Submissions rejected during drain.", snap.RejectedDraining)
	counter("nvmserved_rejected_breaker_total", "Submissions rejected by the open circuit breaker.", snap.RejectedBreaker)
	counter("nvmserved_job_retries_total", "Retry attempts after transient faults.", snap.JobRetries)
	counter("nvmserved_jobs_peer_filled_total", "Jobs satisfied by a peer cache fill instead of a local run.", snap.JobsPeerFilled)
	counter("nvmserved_jobs_resumed_total", "Jobs resumed from a durable checkpoint instead of restarting.", snap.JobsResumed)
	counter("nvmserved_jobs_warm_started_total", "Jobs forked from a cached warm-start snapshot.", snap.JobsWarmStarted)
	counter("nvmserved_ckpt_saves_total", "Checkpoint snapshots written at barrier cuts.", snap.CkptSaves)
	counter("nvmserved_job_panics_total", "Jobs that panicked.", snap.JobPanics)
	counter("nvmserved_workers_replaced_total", "Worker goroutines replaced after a panic.", snap.WorkersReplaced)
	counter("nvmserved_breaker_opens_total", "Times the circuit breaker opened.", snap.BreakerOpens)
	counter("nvmserved_cache_hits_total", "Result cache hits.", snap.CacheHits)
	counter("nvmserved_cache_misses_total", "Result cache misses.", snap.CacheMisses)
	gaugeI("nvmserved_cache_entries", "Results resident in the cache.", snap.CacheEntries)
	fmt.Fprintf(&b, "# HELP nvmserved_breaker_state Circuit breaker state (one-hot by state label).\n# TYPE nvmserved_breaker_state gauge\n")
	for _, state := range []string{BreakerClosed, BreakerOpen, BreakerHalfOpen} {
		v := 0
		if snap.BreakerState == state {
			v = 1
		}
		fmt.Fprintf(&b, "nvmserved_breaker_state{state=%q} %d\n", state, v)
	}

	// Job wall-latency histogram (seconds, per Prometheus convention).
	s.metrics.mu.Lock()
	wall := obs.NewHistogram(s.metrics.latencyHist.Bounds())
	wall.Merge(s.metrics.latencyHist)
	s.metrics.mu.Unlock()
	writePromHistogram(&b, "nvmserved_job_latency_seconds",
		"Wall-clock latency of completed jobs.", "", "", wall, 1e-9)

	// Per-stage simulated latency histograms (nanoseconds of simulated time).
	stages := s.metrics.stageSnapshot()
	names := make([]string, 0, len(stages))
	for name := range stages {
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) > 0 {
		fmt.Fprintf(&b, "# HELP nvmserved_stage_latency_ns Simulated per-stage latency distribution across completed jobs.\n")
		fmt.Fprintf(&b, "# TYPE nvmserved_stage_latency_ns histogram\n")
		for _, name := range names {
			writePromHistogram(&b, "nvmserved_stage_latency_ns", "", "stage", name, stages[name], 1)
		}
	}

	if _, err := io.WriteString(w, b.String()); err != nil {
		return err
	}
	s.mu.Lock()
	extras := append([]func(io.Writer) error(nil), s.extraProm...)
	s.mu.Unlock()
	for _, fn := range extras {
		if err := fn(w); err != nil {
			return err
		}
	}
	return nil
}

// writePromHistogram renders one histogram series. scale converts recorded
// values to the exposed unit (1e-9 for ns -> seconds). An empty help string
// suppresses the HELP/TYPE header (already written for labelled families).
func writePromHistogram(b *strings.Builder, name, help, labelKey, labelVal string, h *obs.Histogram, scale float64) {
	if help != "" {
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	}
	label := func(le string) string {
		if labelKey == "" {
			return fmt.Sprintf("{le=%q}", le)
		}
		return fmt.Sprintf("{%s=%q,le=%q}", labelKey, labelVal, le)
	}
	suffix := ""
	if labelKey != "" {
		suffix = fmt.Sprintf("{%s=%q}", labelKey, labelVal)
	}
	var cum uint64
	bounds := h.Bounds()
	counts := h.Counts()
	for i, bound := range bounds {
		cum += counts[i]
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, label(fmt.Sprintf("%g", float64(bound)*scale)), cum)
	}
	cum += counts[len(bounds)]
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, label("+Inf"), cum)
	fmt.Fprintf(b, "%s_sum%s %g\n", name, suffix, float64(h.Sum())*scale)
	fmt.Fprintf(b, "%s_count%s %d\n", name, suffix, h.N())
}
