package server

import (
	"encoding/json"
	"strings"
	"testing"
)

// FuzzJobSpec feeds arbitrary JSON through the public submission path:
// decode into a JobSpec and Compile it. Invariants: never panic, reject
// garbage with an error rather than a zero plan, hash accepted plans
// deterministically, and translate them into a simulator config without
// blowing up. This is exactly what a hostile HTTP client can reach.
func FuzzJobSpec(f *testing.F) {
	seeds := []string{
		`{}`,
		`{"workload":{"kind":"chase"}}`,
		`{"workload":{"kind":"chase","region":"16K","max_steps":100},"seed":7}`,
		`{"workload":{"kind":"seq","bytes":"1M","op":"store-nt"},"window":4}`,
		`{"workload":{"kind":"trace","trace":"0 R 0x0 64\n"}}`,
		`{"workload":{"kind":"cloud","name":"redis","instructions":1000}}`,
		`{"config":{"dimms":6,"interleaved":true,"media_bytes":"256M"},"workload":{"kind":"chase"}}`,
		`{"config":{"mode":"memory","dram_cache":"1G"},"workload":{"kind":"seq"}}`,
		`{"workload":{"kind":"chase","region":"20E"}}`,
		`{"workload":{"kind":"chase","region":"-1K"}}`,
		`{"workload":{"kind":"chase"},"fault":{"poison_rate":0.5,"seed":3}}`,
		`{"workload":{"kind":"chase"},"fault":{"poison_rate":2}}`,
		`{"workload":{"kind":"seq","op":"store-nt"},"fault":{"power_fail_cycle":4000}}`,
		`{"config":{"mode":"memory"},"workload":{"kind":"seq"},"fault":{"power_fail_cycle":1}}`,
		`{"workload":{"kind":"chase"},"fault":{"stall_rate":0.1,"stall_ns":1e9}}`,
		`{"workload":{"kind":"chase"},"fault":{"crash_access":5}}`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data string) {
		var spec JobSpec
		if err := json.Unmarshal([]byte(data), &spec); err != nil {
			return // not a JobSpec; the HTTP layer rejects it before Compile
		}
		p, err := spec.Compile()
		if err != nil {
			if p != nil {
				t.Fatalf("Compile returned a plan alongside error %v", err)
			}
			return
		}
		h1, h2 := p.Hash(), p.Hash()
		if h1 != h2 || len(h1) != 64 || strings.ToLower(h1) != h1 {
			t.Fatalf("unstable or malformed plan hash: %q vs %q", h1, h2)
		}
		// A compiled plan must translate to a simulator config without
		// panicking; building the full system is too slow for fuzzing, but
		// the translation covers the size/mode plumbing.
		cfg := p.VansConfig()
		if cfg.DIMMs != p.DIMMs {
			t.Fatalf("VansConfig dropped dimms: %d != %d", cfg.DIMMs, p.DIMMs)
		}
		if p.Fault.Enabled() && !cfg.Fault.Enabled() {
			t.Fatal("VansConfig dropped the fault spec")
		}
	})
}
