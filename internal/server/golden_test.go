package server

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/bottleneck"
)

// hotspotTrace builds an overwrite loop hammering one 64B line with fences,
// so a tiny wear threshold forces block migrations.
func hotspotTrace(n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "%d store 0x0 64\n%d mfence 0x0 0\n", 2*i, 2*i+1)
	}
	return b.String()
}

// goldenVerdicts pins the three canonical workload->regime mappings from the
// paper's attribution story. Each scenario also doubles as the determinism
// check: the verdict must be byte-identical at SimParallel 1 and 4.
func TestGoldenVerdicts(t *testing.T) {
	cases := []struct {
		name   string
		spec   JobSpec
		regime string
	}{
		{
			// Non-temporal write burst: latency accumulates waiting in the
			// WPQ/LSQ drain path.
			name: "write-burst",
			spec: JobSpec{
				Workload: WorkloadSpec{Kind: KindSeq, Bytes: "256K", Op: "store-nt"},
				Window:   10, Seed: 1,
			},
			regime: bottleneck.RegimeWPQ,
		},
		{
			// Pointer chase over a footprint far past AIT coverage: nearly
			// every access misses the on-DIMM address-translation buffer.
			name: "ait-miss-chase",
			spec: JobSpec{
				Config:   ConfigSpec{MediaBytes: "256M"},
				Workload: WorkloadSpec{Kind: KindChase, Region: "64M", MaxSteps: 20000},
				Window:   10, Seed: 1,
			},
			regime: bottleneck.RegimeAIT,
		},
		{
			// Hotspot overwrite loop with a tiny wear threshold: migration
			// stalls dominate the attributed time.
			name: "wear-hotspot",
			spec: JobSpec{
				Config:   ConfigSpec{WearThreshold: 50},
				Workload: WorkloadSpec{Kind: KindTrace, Trace: hotspotTrace(200)},
				Window:   10, Seed: 1,
			},
			regime: bottleneck.RegimeWear,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			run := func(par int) *Result {
				p, err := tc.spec.Compile()
				if err != nil {
					t.Fatalf("compile: %v", err)
				}
				rn := NewRunner()
				rn.SimParallel = par
				res, err := rn.RunAttemptCkpt(context.Background(), p, 0, nil)
				if err != nil {
					t.Fatalf("run (par=%d): %v", par, err)
				}
				if res.Verdict == nil {
					t.Fatalf("run (par=%d) produced no verdict", par)
				}
				return res
			}
			serial := run(1)
			if serial.Verdict.Regime != tc.regime {
				t.Fatalf("regime = %q, want %q\n%s",
					serial.Verdict.Regime, tc.regime, serial.Verdict)
			}
			parallel := run(4)
			if !bytes.Equal(serial.Verdict.Canonical(), parallel.Verdict.Canonical()) {
				t.Fatalf("verdict differs between serial and par=4:\n%s\n%s",
					serial.Verdict.Canonical(), parallel.Verdict.Canonical())
			}
		})
	}
}
