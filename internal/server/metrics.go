package server

import (
	"sync"
	"time"

	"repro/internal/sim"
)

// Metrics aggregates service counters and the job latency distribution.
// All mutators are safe for concurrent use; the snapshot is served as flat
// expvar-style JSON by GET /v1/metrics.
type Metrics struct {
	mu               sync.Mutex
	accepted         uint64
	completed        uint64
	failed           uint64
	canceled         uint64
	cached           uint64
	rejectedFull     uint64
	rejectedDraining uint64
	rejectedBreaker  uint64
	retries          uint64
	panics           uint64
	workersReplaced  uint64
	cacheHits        uint64
	cacheMisses      uint64
	busy             time.Duration
	latency          *sim.Accumulator // job wall latency, milliseconds
	start            time.Time
}

func newMetrics() *Metrics {
	return &Metrics{latency: sim.NewAccumulator(), start: time.Now()}
}

func (m *Metrics) add(field *uint64) {
	m.mu.Lock()
	*field++
	m.mu.Unlock()
}

func (m *Metrics) jobAccepted()    { m.add(&m.accepted) }
func (m *Metrics) jobFailed()      { m.add(&m.failed) }
func (m *Metrics) jobCanceled()    { m.add(&m.canceled) }
func (m *Metrics) jobRetried()     { m.add(&m.retries) }
func (m *Metrics) jobPanicked()    { m.add(&m.panics) }
func (m *Metrics) workerReplaced() { m.add(&m.workersReplaced) }
func (m *Metrics) rejectFull()     { m.add(&m.rejectedFull) }
func (m *Metrics) rejectDraining() { m.add(&m.rejectedDraining) }
func (m *Metrics) rejectBreaker()  { m.add(&m.rejectedBreaker) }
func (m *Metrics) cacheMiss()      { m.add(&m.cacheMisses) }

// cacheHit records a submission served entirely from the cache.
func (m *Metrics) cacheHit() {
	m.mu.Lock()
	m.cacheHits++
	m.cached++
	m.mu.Unlock()
}

// jobCompleted records a successful run and its wall latency.
func (m *Metrics) jobCompleted(wall time.Duration) {
	m.mu.Lock()
	m.completed++
	m.latency.Observe(float64(wall) / float64(time.Millisecond))
	m.mu.Unlock()
}

// workerBusy accrues wall time a worker spent executing a job, for the
// utilization gauge.
func (m *Metrics) workerBusy(d time.Duration) {
	m.mu.Lock()
	m.busy += d
	m.mu.Unlock()
}

// MetricsSnapshot is the JSON shape of GET /v1/metrics.
type MetricsSnapshot struct {
	UptimeSeconds     float64     `json:"uptime_seconds"`
	Workers           int         `json:"workers"`
	WorkersBusy       int         `json:"workers_busy"`
	WorkerUtilization float64     `json:"worker_utilization"`
	QueueDepth        int         `json:"queue_depth"`
	QueueCapacity     int         `json:"queue_capacity"`
	JobsAccepted      uint64      `json:"jobs_accepted"`
	JobsCompleted     uint64      `json:"jobs_completed"`
	JobsFailed        uint64      `json:"jobs_failed"`
	JobsCanceled      uint64      `json:"jobs_canceled"`
	JobsCached        uint64      `json:"jobs_cached"`
	RejectedQueueFull uint64      `json:"rejected_queue_full"`
	RejectedDraining  uint64      `json:"rejected_draining"`
	RejectedBreaker   uint64      `json:"rejected_breaker"`
	JobRetries        uint64      `json:"job_retries"`
	JobPanics         uint64      `json:"job_panics"`
	WorkersReplaced   uint64      `json:"workers_replaced"`
	BreakerState      string      `json:"breaker_state"`
	BreakerOpens      uint64      `json:"breaker_opens"`
	CacheHits         uint64      `json:"cache_hits"`
	CacheMisses       uint64      `json:"cache_misses"`
	CacheEntries      int         `json:"cache_entries"`
	CacheHitRate      float64     `json:"cache_hit_rate"`
	JobLatencyMs      sim.Summary `json:"job_latency_ms"`
}

// snapshot folds in the gauges owned by the scheduler (queue depth, busy
// workers, cache residency).
func (m *Metrics) snapshot(workers, workersBusy, queueDepth, queueCap, cacheLen int) MetricsSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	uptime := time.Since(m.start)
	s := MetricsSnapshot{
		UptimeSeconds:     uptime.Seconds(),
		Workers:           workers,
		WorkersBusy:       workersBusy,
		QueueDepth:        queueDepth,
		QueueCapacity:     queueCap,
		JobsAccepted:      m.accepted,
		JobsCompleted:     m.completed,
		JobsFailed:        m.failed,
		JobsCanceled:      m.canceled,
		JobsCached:        m.cached,
		RejectedQueueFull: m.rejectedFull,
		RejectedDraining:  m.rejectedDraining,
		RejectedBreaker:   m.rejectedBreaker,
		JobRetries:        m.retries,
		JobPanics:         m.panics,
		WorkersReplaced:   m.workersReplaced,
		CacheHits:         m.cacheHits,
		CacheMisses:       m.cacheMisses,
		CacheEntries:      cacheLen,
		JobLatencyMs:      m.latency.Summarize(),
	}
	if lookups := m.cacheHits + m.cacheMisses; lookups > 0 {
		s.CacheHitRate = float64(m.cacheHits) / float64(lookups)
	}
	if workers > 0 && uptime > 0 {
		s.WorkerUtilization = float64(m.busy) / (float64(uptime) * float64(workers))
	}
	return s
}
