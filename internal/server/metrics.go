package server

import (
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Metrics aggregates service counters and the job latency distribution.
// All mutators are safe for concurrent use; the snapshot is served as flat
// expvar-style JSON by GET /v1/metrics.
type Metrics struct {
	mu               sync.Mutex
	accepted         uint64
	completed        uint64
	failed           uint64
	canceled         uint64
	cached           uint64
	rejectedFull     uint64
	rejectedDraining uint64
	rejectedBreaker  uint64
	retries          uint64
	panics           uint64
	peerFilled       uint64
	resumed          uint64
	warmStarted      uint64
	ckptSaves        uint64
	workersReplaced  uint64
	cacheHits        uint64
	cacheMisses      uint64
	busy             time.Duration
	// Job wall latency. The exact accumulator keeps every sample only while
	// short (maxExactLatencySamples), giving exact percentiles for short
	// runs; the bounded histogram carries the distribution forever, so a
	// long-lived daemon's memory stays O(buckets) instead of O(jobs).
	latencyExact *sim.Accumulator
	latencyHist  *obs.Histogram // nanoseconds of wall time
	// stages merges the per-stage simulated-latency histograms out of every
	// completed job's observability dump, keyed by dump name
	// ("dimm0/media/read_ns"). Served as Prometheus histograms.
	stages map[string]*obs.Histogram
	// verdicts counts completed jobs by named bottleneck regime.
	verdicts map[string]uint64
	start    time.Time
}

// maxExactLatencySamples bounds the exact job-latency accumulator; beyond it
// percentiles come from the bounded histogram.
const maxExactLatencySamples = 4096

// latencyNsBounds covers job wall latencies from 1us to ~19min in doubling
// buckets.
func latencyNsBounds() []uint64 { return obs.ExpBounds(1<<10, 30) }

func newMetrics() *Metrics {
	return &Metrics{
		latencyExact: sim.NewAccumulator(),
		latencyHist:  obs.NewHistogram(latencyNsBounds()),
		stages:       make(map[string]*obs.Histogram),
		verdicts:     make(map[string]uint64),
		start:        time.Now(),
	}
}

func (m *Metrics) add(field *uint64) {
	m.mu.Lock()
	*field++
	m.mu.Unlock()
}

func (m *Metrics) jobAccepted()    { m.add(&m.accepted) }
func (m *Metrics) jobFailed()      { m.add(&m.failed) }
func (m *Metrics) jobCanceled()    { m.add(&m.canceled) }
func (m *Metrics) jobRetried()     { m.add(&m.retries) }
func (m *Metrics) jobPanicked()    { m.add(&m.panics) }
func (m *Metrics) workerReplaced() { m.add(&m.workersReplaced) }
func (m *Metrics) rejectFull()     { m.add(&m.rejectedFull) }
func (m *Metrics) rejectDraining() { m.add(&m.rejectedDraining) }
func (m *Metrics) rejectBreaker()  { m.add(&m.rejectedBreaker) }
func (m *Metrics) cacheMiss()      { m.add(&m.cacheMisses) }
func (m *Metrics) jobPeerFilled()  { m.add(&m.peerFilled) }
func (m *Metrics) jobResumed()     { m.add(&m.resumed) }
func (m *Metrics) jobWarmStarted() { m.add(&m.warmStarted) }

// ckptSaved records n snapshot saves from one job run.
func (m *Metrics) ckptSaved(n int) {
	if n <= 0 {
		return
	}
	m.mu.Lock()
	m.ckptSaves += uint64(n)
	m.mu.Unlock()
}

// cacheHit records a submission served entirely from the cache.
func (m *Metrics) cacheHit() {
	m.mu.Lock()
	m.cacheHits++
	m.cached++
	m.mu.Unlock()
}

// jobCompleted records a successful run and its wall latency.
func (m *Metrics) jobCompleted(wall time.Duration) {
	m.mu.Lock()
	m.completed++
	if m.latencyExact.N() < maxExactLatencySamples {
		m.latencyExact.Observe(float64(wall) / float64(time.Millisecond))
	}
	m.latencyHist.Observe(uint64(wall.Nanoseconds()))
	m.mu.Unlock()
}

// mergeStages folds a completed job's stage-latency histograms into the
// service-wide per-stage distributions.
func (m *Metrics) mergeStages(d *obs.Dump) {
	if d == nil {
		return
	}
	m.mu.Lock()
	for i := range d.Histograms {
		h := &d.Histograms[i]
		agg, ok := m.stages[h.Name]
		if !ok {
			agg = obs.NewHistogram(h.Bounds)
			m.stages[h.Name] = agg
		}
		agg.MergeDump(h)
	}
	m.mu.Unlock()
}

// countVerdict records one completed job's bottleneck regime.
func (m *Metrics) countVerdict(regime string) {
	if regime == "" {
		return
	}
	m.mu.Lock()
	m.verdicts[regime]++
	m.mu.Unlock()
}

// verdictSnapshot copies the per-regime verdict counts (nil when no job has
// produced a verdict yet, so JSON omits the field).
func (m *Metrics) verdictSnapshot() map[string]uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.verdicts) == 0 {
		return nil
	}
	out := make(map[string]uint64, len(m.verdicts))
	for k, v := range m.verdicts {
		out[k] = v
	}
	return out
}

// stageSnapshot copies the merged per-stage histograms for rendering outside
// the lock.
func (m *Metrics) stageSnapshot() map[string]*obs.Histogram {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]*obs.Histogram, len(m.stages))
	for name, h := range m.stages {
		c := obs.NewHistogram(h.Bounds())
		c.Merge(h)
		out[name] = c
	}
	return out
}

// workerBusy accrues wall time a worker spent executing a job, for the
// utilization gauge.
func (m *Metrics) workerBusy(d time.Duration) {
	m.mu.Lock()
	m.busy += d
	m.mu.Unlock()
}

// MetricsSnapshot is the JSON shape of GET /v1/metrics.
type MetricsSnapshot struct {
	UptimeSeconds     float64     `json:"uptime_seconds"`
	Workers           int         `json:"workers"`
	WorkersBusy       int         `json:"workers_busy"`
	WorkerUtilization float64     `json:"worker_utilization"`
	QueueDepth        int         `json:"queue_depth"`
	QueueCapacity     int         `json:"queue_capacity"`
	JobsAccepted      uint64      `json:"jobs_accepted"`
	JobsCompleted     uint64      `json:"jobs_completed"`
	JobsFailed        uint64      `json:"jobs_failed"`
	JobsCanceled      uint64      `json:"jobs_canceled"`
	JobsCached        uint64      `json:"jobs_cached"`
	RejectedQueueFull uint64      `json:"rejected_queue_full"`
	RejectedDraining  uint64      `json:"rejected_draining"`
	RejectedBreaker   uint64      `json:"rejected_breaker"`
	JobRetries        uint64      `json:"job_retries"`
	JobPanics         uint64      `json:"job_panics"`
	JobsPeerFilled    uint64      `json:"jobs_peer_filled"`
	JobsResumed       uint64      `json:"jobs_resumed"`
	JobsWarmStarted   uint64      `json:"jobs_warm_started"`
	CkptSaves         uint64      `json:"ckpt_saves"`
	WorkersReplaced   uint64      `json:"workers_replaced"`
	BreakerState      string      `json:"breaker_state"`
	BreakerOpens      uint64      `json:"breaker_opens"`
	CacheHits         uint64      `json:"cache_hits"`
	CacheMisses       uint64      `json:"cache_misses"`
	CacheEntries      int         `json:"cache_entries"`
	CacheHitRate      float64     `json:"cache_hit_rate"`
	JobLatencyMs      sim.Summary `json:"job_latency_ms"`
	// Verdicts counts completed jobs by named bottleneck regime.
	Verdicts map[string]uint64 `json:"verdicts,omitempty"`
}

// snapshot folds in the gauges owned by the scheduler (queue depth, busy
// workers, cache residency).
func (m *Metrics) snapshot(workers, workersBusy, queueDepth, queueCap, cacheLen int) MetricsSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	uptime := time.Since(m.start)
	s := MetricsSnapshot{
		UptimeSeconds:     uptime.Seconds(),
		Workers:           workers,
		WorkersBusy:       workersBusy,
		QueueDepth:        queueDepth,
		QueueCapacity:     queueCap,
		JobsAccepted:      m.accepted,
		JobsCompleted:     m.completed,
		JobsFailed:        m.failed,
		JobsCanceled:      m.canceled,
		JobsCached:        m.cached,
		RejectedQueueFull: m.rejectedFull,
		RejectedDraining:  m.rejectedDraining,
		RejectedBreaker:   m.rejectedBreaker,
		JobRetries:        m.retries,
		JobPanics:         m.panics,
		JobsPeerFilled:    m.peerFilled,
		JobsResumed:       m.resumed,
		JobsWarmStarted:   m.warmStarted,
		CkptSaves:         m.ckptSaves,
		WorkersReplaced:   m.workersReplaced,
		CacheHits:         m.cacheHits,
		CacheMisses:       m.cacheMisses,
		CacheEntries:      cacheLen,
		JobLatencyMs:      m.latencySummaryLocked(),
	}
	if len(m.verdicts) > 0 {
		s.Verdicts = make(map[string]uint64, len(m.verdicts))
		for k, v := range m.verdicts {
			s.Verdicts[k] = v
		}
	}
	if lookups := m.cacheHits + m.cacheMisses; lookups > 0 {
		s.CacheHitRate = float64(m.cacheHits) / float64(lookups)
	}
	if workers > 0 && uptime > 0 {
		s.WorkerUtilization = float64(m.busy) / (float64(uptime) * float64(workers))
	}
	return s
}

// latencySummaryLocked summarizes job latency: exact percentiles while the
// sample set is short, bucket-derived ones after the exact accumulator caps
// out. Caller holds m.mu.
func (m *Metrics) latencySummaryLocked() sim.Summary {
	if uint64(m.latencyExact.N()) == m.latencyHist.N() {
		return m.latencyExact.Summarize()
	}
	h := m.latencyHist
	toMs := func(ns uint64) float64 { return float64(ns) / 1e6 }
	return sim.Summary{
		N:    int(h.N()),
		Mean: h.Mean() / 1e6,
		P50:  toMs(h.Quantile(0.50)),
		P95:  toMs(h.Quantile(0.95)),
		P99:  toMs(h.Quantile(0.99)),
		Max:  toMs(h.Max()),
	}
}
