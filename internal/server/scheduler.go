package server

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Submission errors. The HTTP layer maps both to 503 Service Unavailable.
var (
	// ErrQueueFull reports that the bounded job queue has no space.
	ErrQueueFull = errors.New("server: job queue full")
	// ErrDraining reports that the server is shutting down.
	ErrDraining = errors.New("server: draining, not accepting jobs")
)

// JobState is a job's lifecycle phase.
type JobState string

// Job lifecycle states.
const (
	JobQueued   JobState = "queued"
	JobRunning  JobState = "running"
	JobDone     JobState = "done"
	JobFailed   JobState = "failed"
	JobCanceled JobState = "canceled"
)

// Job is one tracked submission. Mutable fields are guarded by the server's
// registry lock; read them through Status / Result / Wait.
type Job struct {
	id        string
	hash      string
	plan      *Plan
	state     JobState
	err       string
	cached    bool
	result    *Result
	submitted time.Time
	started   time.Time
	finished  time.Time
	done      chan struct{}
}

// JobStatus is the JSON view of a job's lifecycle.
type JobStatus struct {
	ID       string   `json:"id"`
	Hash     string   `json:"hash"`
	State    JobState `json:"state"`
	Cached   bool     `json:"cached,omitempty"`
	Error    string   `json:"error,omitempty"`
	QueuedMs float64  `json:"queued_ms"`
	RunMs    float64  `json:"run_ms"`
}

// Options configures a Server. Zero fields take defaults.
type Options struct {
	// Workers is the pool size (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds the FIFO job queue (default 64).
	QueueDepth int
	// CacheEntries sizes the LRU result cache (default 256; negative
	// disables caching).
	CacheEntries int
	// JobTimeout bounds each job's execution (default 60s).
	JobTimeout time.Duration
}

func (o Options) withDefaults() Options {
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Workers < 1 {
		o.Workers = 1
	}
	if o.QueueDepth == 0 {
		o.QueueDepth = 64
	}
	if o.QueueDepth < 1 {
		o.QueueDepth = 1
	}
	if o.CacheEntries == 0 {
		o.CacheEntries = 256
	}
	if o.CacheEntries < 0 {
		o.CacheEntries = 0
	}
	if o.JobTimeout <= 0 {
		o.JobTimeout = 60 * time.Second
	}
	return o
}

// Server is the nvmserved core: a bounded FIFO queue feeding a fixed worker
// pool, a job registry, an LRU result cache, and service metrics. Create one
// with New and stop it with Shutdown.
type Server struct {
	opts    Options
	metrics *Metrics
	cache   *resultCache

	queue     chan *Job
	wg        sync.WaitGroup
	runCtx    context.Context
	runCancel context.CancelFunc
	busy      atomic.Int32

	mu       sync.Mutex
	jobs     map[string]*Job
	nextID   uint64
	draining bool
}

// New starts a Server with opts.
func New(opts Options) *Server {
	opts = opts.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opts:      opts,
		metrics:   newMetrics(),
		cache:     newResultCache(opts.CacheEntries),
		queue:     make(chan *Job, opts.QueueDepth),
		runCtx:    ctx,
		runCancel: cancel,
		jobs:      make(map[string]*Job),
	}
	s.wg.Add(opts.Workers)
	for i := 0; i < opts.Workers; i++ {
		go s.worker()
	}
	return s
}

// Options returns the effective (defaulted) options.
func (s *Server) Options() Options { return s.opts }

// Submit validates and enqueues a job. A submission whose hash is resident
// in the result cache completes immediately without queueing. The returned
// status is a snapshot; poll with Status or block with Wait.
func (s *Server) Submit(spec JobSpec) (JobStatus, error) {
	p, err := spec.Compile()
	if err != nil {
		return JobStatus{}, err
	}
	j := &Job{
		hash:      p.Hash(),
		plan:      p,
		state:     JobQueued,
		submitted: time.Now(),
		done:      make(chan struct{}),
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.metrics.rejectDraining()
		return JobStatus{}, ErrDraining
	}
	s.nextID++
	j.id = fmt.Sprintf("j%06d", s.nextID)
	if res, ok := s.cache.Get(j.hash); ok {
		now := time.Now()
		j.state, j.result, j.cached = JobDone, res, true
		j.started, j.finished = now, now
		close(j.done)
		s.jobs[j.id] = j
		st := j.statusLocked()
		s.mu.Unlock()
		s.metrics.jobAccepted()
		s.metrics.cacheHit()
		return st, nil
	}
	select {
	case s.queue <- j:
		s.jobs[j.id] = j
		st := j.statusLocked()
		s.mu.Unlock()
		s.metrics.jobAccepted()
		s.metrics.cacheMiss()
		return st, nil
	default:
		s.mu.Unlock()
		s.metrics.rejectFull()
		return JobStatus{}, ErrQueueFull
	}
}

// worker drains the queue until it closes. Each worker owns one Runner, so
// every job executes on an isolated engine + system.
func (s *Server) worker() {
	defer s.wg.Done()
	rn := NewRunner()
	for j := range s.queue {
		s.runJob(rn, j)
	}
}

func (s *Server) runJob(rn *Runner, j *Job) {
	s.mu.Lock()
	j.state = JobRunning
	j.started = time.Now()
	s.mu.Unlock()

	s.busy.Add(1)
	start := time.Now()
	ctx, cancel := context.WithTimeout(s.runCtx, s.opts.JobTimeout)
	res, err := rn.Run(ctx, j.plan)
	cancel()
	wall := time.Since(start)
	s.busy.Add(-1)
	s.metrics.workerBusy(wall)

	s.mu.Lock()
	j.finished = time.Now()
	switch {
	case err == nil:
		j.state = JobDone
		j.result = res
		s.cache.Put(j.hash, res)
		s.metrics.jobCompleted(wall)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		j.state = JobCanceled
		j.err = err.Error()
		s.metrics.jobCanceled()
	default:
		j.state = JobFailed
		j.err = err.Error()
		s.metrics.jobFailed()
	}
	close(j.done)
	s.mu.Unlock()
}

// statusLocked builds the status view; the caller holds s.mu.
func (j *Job) statusLocked() JobStatus {
	st := JobStatus{ID: j.id, Hash: j.hash, State: j.state, Cached: j.cached, Error: j.err}
	switch j.state {
	case JobQueued:
		st.QueuedMs = float64(time.Since(j.submitted)) / float64(time.Millisecond)
	case JobRunning:
		st.QueuedMs = float64(j.started.Sub(j.submitted)) / float64(time.Millisecond)
		st.RunMs = float64(time.Since(j.started)) / float64(time.Millisecond)
	default:
		st.QueuedMs = float64(j.started.Sub(j.submitted)) / float64(time.Millisecond)
		st.RunMs = float64(j.finished.Sub(j.started)) / float64(time.Millisecond)
	}
	return st
}

// Status returns a job's current lifecycle snapshot.
func (s *Server) Status(id string) (JobStatus, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, false
	}
	return j.statusLocked(), true
}

// Result returns a job's result (nil unless state is done) and its status.
func (s *Server) Result(id string) (*Result, JobStatus, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, JobStatus{}, false
	}
	return j.result, j.statusLocked(), true
}

// Wait blocks until job id completes (any terminal state) or ctx ends.
func (s *Server) Wait(ctx context.Context, id string) (JobStatus, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobStatus{}, fmt.Errorf("server: unknown job %q", id)
	}
	select {
	case <-j.done:
		st, _ := s.Status(id)
		return st, nil
	case <-ctx.Done():
		return JobStatus{}, ctx.Err()
	}
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// MetricsSnapshot returns the current service metrics.
func (s *Server) MetricsSnapshot() MetricsSnapshot {
	return s.metrics.snapshot(s.opts.Workers, int(s.busy.Load()),
		len(s.queue), s.opts.QueueDepth, s.cache.Len())
}

// Shutdown drains the server: new submissions are rejected with ErrDraining,
// queued and running jobs are given drainTimeout to finish, and any still
// running after that are canceled and awaited. It reports whether the drain
// completed without forced cancellation. Shutdown is idempotent; concurrent
// calls all block until the pool exits.
func (s *Server) Shutdown(drainTimeout time.Duration) bool {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	if !already {
		// Submissions send on s.queue only while holding s.mu with
		// draining false, so this close cannot race a send.
		close(s.queue)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	clean := true
	timer := time.NewTimer(drainTimeout)
	defer timer.Stop()
	select {
	case <-done:
	case <-timer.C:
		clean = false
		s.runCancel()
		<-done
	}
	s.runCancel()
	return clean
}
