package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/breaker"
	"repro/internal/ckpt"
	"repro/internal/fault"
)

// Submission errors. The HTTP layer maps ErrQueueFull to 429 Too Many
// Requests (load shedding: back off and retry) and the other two to 503
// Service Unavailable.
var (
	// ErrQueueFull reports that the bounded job queue has no space.
	ErrQueueFull = errors.New("server: job queue full")
	// ErrDraining reports that the server is shutting down.
	ErrDraining = errors.New("server: draining, not accepting jobs")
	// ErrBreakerOpen reports that the engine circuit breaker is open after
	// consecutive engine failures.
	ErrBreakerOpen = errors.New("server: circuit breaker open, engine failing")
)

// JobState is a job's lifecycle phase.
type JobState string

// Job lifecycle states.
const (
	JobQueued   JobState = "queued"
	JobRunning  JobState = "running"
	JobDone     JobState = "done"
	JobFailed   JobState = "failed"
	JobCanceled JobState = "canceled"
)

// Job is one tracked submission. Mutable fields are guarded by the server's
// registry lock; read them through Status / Result / Wait.
type Job struct {
	id     string
	hash   string
	plan   *Plan
	state  JobState
	err    string
	cached bool
	peer   bool // satisfied by a peer cache fill, not a local run
	noFill bool // dispatch traffic: never consult the fill hook
	result *Result
	// resumedFrom is the access index the run restarted at after a restore
	// (0 = ran from the beginning); checkpoints counts snapshots persisted
	// during the run; warmStarted marks a run that skipped its warmup prefix
	// via a cached warm snapshot.
	resumedFrom int
	checkpoints int
	warmStarted bool
	submitted   time.Time
	started     time.Time
	finished    time.Time
	done        chan struct{}
	// ctx, when non-nil, cancels the job if the submitter goes away while it
	// is still queued or running (sweep clients disconnecting mid-stream,
	// hedged cluster dispatches losing the race).
	ctx context.Context
}

// JobStatus is the JSON view of a job's lifecycle.
type JobStatus struct {
	ID     string   `json:"id"`
	Hash   string   `json:"hash"`
	State  JobState `json:"state"`
	Cached bool     `json:"cached,omitempty"`
	// PeerFilled marks a job whose result was fetched from the owning
	// cluster peer's cache instead of being simulated locally.
	PeerFilled bool   `json:"peer_filled,omitempty"`
	Error      string `json:"error,omitempty"`
	// ResumedFrom is the access index a restored run restarted at (absent
	// when the job ran from the beginning).
	ResumedFrom int `json:"resumed_from,omitempty"`
	// Checkpoints counts snapshots persisted while the job ran.
	Checkpoints int `json:"checkpoints,omitempty"`
	// WarmStarted marks a run that skipped its warmup prefix by restoring a
	// cached warm snapshot.
	WarmStarted bool `json:"warm_started,omitempty"`
	// Regime is the named bottleneck regime from the result's verdict
	// (present once the job is done and the run produced a verdict).
	Regime   string  `json:"regime,omitempty"`
	QueuedMs float64 `json:"queued_ms"`
	RunMs    float64 `json:"run_ms"`
}

// Options configures a Server. Zero fields take defaults.
type Options struct {
	// Workers is the pool size (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds the FIFO job queue (default 64).
	QueueDepth int
	// CacheEntries sizes the LRU result cache (default 256; negative
	// disables caching).
	CacheEntries int
	// JobTimeout bounds each job's execution, all retry attempts included
	// (default 60s).
	JobTimeout time.Duration
	// MaxRetries bounds extra attempts after a transient fault (default 2;
	// negative disables retries).
	MaxRetries int
	// RetryBaseDelay is the first retry backoff (default 10ms). Successive
	// retries double it, capped at RetryMaxDelay, with up to 50% jitter.
	RetryBaseDelay time.Duration
	// RetryMaxDelay caps the backoff (default 500ms).
	RetryMaxDelay time.Duration
	// BreakerThreshold is the consecutive engine-failure count that opens
	// the circuit breaker (default 5; negative disables the breaker).
	BreakerThreshold int
	// BreakerCooldown is how long the breaker stays open before admitting a
	// probe (default 5s).
	BreakerCooldown time.Duration
	// Handicap adds an artificial wall-clock delay before every locally
	// simulated job (peer fills are not delayed). It exists to stand in for a
	// slow or overloaded node in cluster hedging demos and tests; results are
	// unaffected because they carry no wall-clock quantities. Default 0.
	Handicap time.Duration
	// StateDir, when non-empty, makes the daemon preemptible: checkpoint
	// snapshots of in-progress jobs and the result cache are persisted there
	// (atomic writes), and on startup finished results are reloaded and
	// interrupted jobs resume from their last snapshot when resubmitted.
	// Empty disables durability.
	StateDir string
	// SimParallel is the intra-simulation parallelism each worker's Runner
	// uses (engine cycle rounds executed by up to N goroutines, drawn from
	// the shared pool budget so worker-level and intra-sim fan-out never
	// oversubscribe GOMAXPROCS). <= 1 runs each simulation serially.
	// Results and job hashes are unaffected. Default 0 (serial).
	SimParallel int
}

func (o Options) withDefaults() Options {
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Workers < 1 {
		o.Workers = 1
	}
	if o.QueueDepth == 0 {
		o.QueueDepth = 64
	}
	if o.QueueDepth < 1 {
		o.QueueDepth = 1
	}
	if o.CacheEntries == 0 {
		o.CacheEntries = 256
	}
	if o.CacheEntries < 0 {
		o.CacheEntries = 0
	}
	if o.JobTimeout <= 0 {
		o.JobTimeout = 60 * time.Second
	}
	if o.MaxRetries == 0 {
		o.MaxRetries = 2
	}
	if o.MaxRetries < 0 {
		o.MaxRetries = 0
	}
	if o.RetryBaseDelay <= 0 {
		o.RetryBaseDelay = 10 * time.Millisecond
	}
	if o.RetryMaxDelay <= 0 {
		o.RetryMaxDelay = 500 * time.Millisecond
	}
	if o.BreakerThreshold == 0 {
		o.BreakerThreshold = 5
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 5 * time.Second
	}
	return o
}

// Server is the nvmserved core: a bounded FIFO queue feeding a fixed worker
// pool, a job registry, an LRU result cache, and service metrics. Create one
// with New and stop it with Shutdown.
type Server struct {
	opts    Options
	metrics *Metrics
	cache   *resultCache
	brk     *breaker.Breaker

	queue     chan *Job
	wg        sync.WaitGroup
	runCtx    context.Context
	runCancel context.CancelFunc
	busy      atomic.Int32

	state *stateStore
	warm  *warmCache

	mu        sync.Mutex
	jobs      map[string]*Job
	inflight  map[string]*Job // hash -> first active (queued/running) job
	nextID    uint64
	draining  bool
	fill      FillFunc
	ckptRepl  CkptReplicateFunc
	nodeID    string
	addr      string
	extraProm []func(io.Writer) error
}

// CkptReplicateFunc pushes a freshly persisted job snapshot somewhere safer
// than this node — in a cluster, to the hash's ring successor — so a job
// survives losing the node that was running it. It must not block the worker
// for long; failures are invisible (replication is best-effort on top of the
// local durable copy).
type CkptReplicateFunc func(hash string, snap []byte)

// SetCkptReplicate installs the snapshot replication hook. Install before
// serving traffic.
func (s *Server) SetCkptReplicate(f CkptReplicateFunc) {
	s.mu.Lock()
	s.ckptRepl = f
	s.mu.Unlock()
}

// FillFunc tries to satisfy a job from somewhere cheaper than simulating —
// in a cluster, from the owning peer's result cache. It must be fast (bounded
// by its own timeout well under the job timeout) and return ok=false on any
// miss or error; the job then simulates locally as usual.
type FillFunc func(ctx context.Context, hash string) (*Result, bool)

// SetFill installs the cache-fill hook. Install before serving traffic.
func (s *Server) SetFill(f FillFunc) {
	s.mu.Lock()
	s.fill = f
	s.mu.Unlock()
}

// SetIdentity records the node id and resolved listen address surfaced on
// /v1/healthz so peers and load generators can discover both from one probe.
func (s *Server) SetIdentity(nodeID, addr string) {
	s.mu.Lock()
	s.nodeID = nodeID
	s.addr = addr
	s.mu.Unlock()
}

// Identity returns the node id and resolved listen address (may be empty
// outside cluster mode).
func (s *Server) Identity() (nodeID, addr string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nodeID, s.addr
}

// New starts a Server with opts. A StateDir that cannot be created is fatal
// (panic): a daemon that silently dropped durability would lie about the
// preemption guarantees it advertises.
func New(opts Options) *Server {
	opts = opts.withDefaults()
	state, err := newStateStore(opts.StateDir)
	if err != nil {
		panic(err.Error())
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opts:      opts,
		metrics:   newMetrics(),
		cache:     newResultCache(opts.CacheEntries),
		brk:       newBreaker(opts.BreakerThreshold, opts.BreakerCooldown),
		state:     state,
		warm:      newWarmCache(),
		queue:     make(chan *Job, opts.QueueDepth),
		runCtx:    ctx,
		runCancel: cancel,
		jobs:      make(map[string]*Job),
		inflight:  make(map[string]*Job),
	}
	// Reload results finished before the previous shutdown: resubmitting the
	// same spec hits the cache instead of re-simulating.
	for _, e := range state.LoadResults() {
		var res Result
		if json.Unmarshal(e.Result, &res) == nil && res.Hash == e.Hash {
			s.cache.Put(e.Hash, &res)
		}
	}
	s.wg.Add(opts.Workers)
	for i := 0; i < opts.Workers; i++ {
		go s.worker()
	}
	return s
}

// Options returns the effective (defaulted) options.
func (s *Server) Options() Options { return s.opts }

// Submit validates and enqueues a job. A submission whose hash is resident
// in the result cache completes immediately without queueing. The returned
// status is a snapshot; poll with Status or block with Wait.
func (s *Server) Submit(spec JobSpec) (JobStatus, error) {
	return s.SubmitCtx(context.Background(), spec)
}

// SubmitCtx is Submit with a submitter context: if ctx is canceled while the
// job is still queued or running, the job is canceled too (and counts toward
// the jobs_canceled metric). Terminal jobs are unaffected. Sweeps use this so
// a client disconnecting mid-stream does not leave the pool grinding through
// orphaned points.
func (s *Server) SubmitCtx(ctx context.Context, spec JobSpec) (JobStatus, error) {
	return s.submit(ctx, spec, false)
}

// SubmitNoFill is SubmitCtx for cluster dispatch traffic (peer runs): the
// job must be executed here, never satisfied through the peer fill hook. A
// dispatcher only sends a job off-owner when the owner is slow or down, so
// asking the owner again from inside the run would boomerang a hedge or a
// reroute right back into the straggler it was escaping.
func (s *Server) SubmitNoFill(ctx context.Context, spec JobSpec) (JobStatus, error) {
	return s.submit(ctx, spec, true)
}

func (s *Server) submit(ctx context.Context, spec JobSpec, noFill bool) (JobStatus, error) {
	p, err := spec.Compile()
	if err != nil {
		return JobStatus{}, err
	}
	if ok, retryAfter := s.brk.Allow(); !ok {
		s.metrics.rejectBreaker()
		return JobStatus{}, fmt.Errorf("%w (retry after %s)", ErrBreakerOpen, retryAfter.Round(time.Second))
	}
	j := &Job{
		hash:      p.Hash(),
		plan:      p,
		state:     JobQueued,
		noFill:    noFill,
		submitted: time.Now(),
		done:      make(chan struct{}),
	}
	if ctx != context.Background() {
		j.ctx = ctx
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.metrics.rejectDraining()
		return JobStatus{}, ErrDraining
	}
	s.nextID++
	j.id = fmt.Sprintf("j%06d", s.nextID)
	if res, ok := s.cache.Get(j.hash); ok {
		now := time.Now()
		j.state, j.result, j.cached = JobDone, res, true
		j.started, j.finished = now, now
		close(j.done)
		s.jobs[j.id] = j
		st := j.statusLocked()
		s.mu.Unlock()
		s.metrics.jobAccepted()
		s.metrics.cacheHit()
		return st, nil
	}
	select {
	case s.queue <- j:
		s.jobs[j.id] = j
		// First active job for this hash: record it so peers asking for the
		// hash can wait on the in-flight computation (single-flight on the
		// owner) instead of stampeding or missing.
		if _, busy := s.inflight[j.hash]; !busy {
			s.inflight[j.hash] = j
		}
		st := j.statusLocked()
		s.mu.Unlock()
		s.metrics.jobAccepted()
		s.metrics.cacheMiss()
		return st, nil
	default:
		s.mu.Unlock()
		s.metrics.rejectFull()
		return JobStatus{}, ErrQueueFull
	}
}

// worker drains the queue until it closes. Each worker owns one Runner, so
// every job executes on an isolated engine + system.
//
// A panic escaping a job (a wedged or crashed simulation) is recovered here:
// the job was already finalized as failed by runJob's defer, and this worker
// replaces itself with a fresh goroutine — and a fresh Runner — inheriting
// its WaitGroup slot, so the pool never shrinks and the daemon keeps serving.
func (s *Server) worker() {
	defer func() {
		if r := recover(); r != nil {
			s.metrics.workerReplaced()
			go s.worker()
			return
		}
		s.wg.Done()
	}()
	rn := NewRunner()
	rn.SimParallel = s.opts.SimParallel
	for j := range s.queue {
		s.runJob(rn, j)
	}
}

func (s *Server) runJob(rn *Runner, j *Job) {
	s.mu.Lock()
	j.state = JobRunning
	j.started = time.Now()
	fill := s.fill
	repl := s.ckptRepl
	s.mu.Unlock()

	s.busy.Add(1)
	start := time.Now()
	ctx, cancel := context.WithTimeout(s.runCtx, s.opts.JobTimeout)
	if j.ctx != nil {
		// Tie the run to the submitter: if they disconnect while we are
		// queued or running, cancel instead of burning a worker on a result
		// nobody will read.
		stop := context.AfterFunc(j.ctx, cancel)
		defer stop()
		if err := j.ctx.Err(); err != nil {
			cancel()
		}
	}

	// Checkpoint I/O for preemptible plans: resume from the durable snapshot
	// if one survived a previous daemon (or a peer handoff), otherwise fork
	// from a cached warm snapshot when the plan shares a warmup prefix.
	// Snapshots captured at barriers land in the state dir and, in a
	// cluster, on the hash's ring successor.
	var cio *CkptIO
	if j.plan.CkptEvery > 0 || j.plan.Warmup != nil {
		cio = &CkptIO{}
		if snap, ok := s.state.LoadCkpt(j.hash); ok {
			cio.Resume = snap
		} else if j.plan.Warmup != nil {
			if snap, ok := s.warm.Get(j.plan.WarmHash()); ok {
				cio.WarmStart = snap
			}
		}
		if j.plan.CkptEvery > 0 && (s.state.enabled() || repl != nil) {
			hash := j.hash
			cio.Sink = func(idx int, snap []byte) error {
				if err := s.state.SaveCkpt(hash, snap); err != nil {
					return err
				}
				if repl != nil {
					repl(hash, snap)
				}
				return nil
			}
		}
		if j.plan.Warmup != nil {
			warmHash := j.plan.WarmHash()
			cio.WarmSink = func(snap []byte) { s.warm.Put(warmHash, snap) }
		}
	}

	var res *Result
	var err error
	defer func() {
		cancel()
		wall := time.Since(start)
		s.busy.Add(-1)
		s.metrics.workerBusy(wall)
		if cio != nil {
			s.mu.Lock()
			j.resumedFrom = cio.ResumedFrom
			j.checkpoints = cio.Saves
			j.warmStarted = cio.WarmStarted
			s.mu.Unlock()
			if cio.ResumedFrom > 0 {
				s.metrics.jobResumed()
			}
			if cio.WarmStarted {
				s.metrics.jobWarmStarted()
			}
			s.metrics.ckptSaved(cio.Saves)
		}
		if r := recover(); r != nil {
			// A panic unwound out of the run (the panicking frames are still
			// below us, so the stack names the culprit). Fail the job with
			// value and stack so clients see why, then re-raise: the worker's
			// recover replaces the goroutine with a fresh one.
			s.metrics.jobPanicked()
			s.finalize(j, nil, fmt.Errorf("server: job panicked: %v\n\n%s",
				r, debug.Stack()), wall)
			panic(r)
		}
		s.finalize(j, res, err, wall)
	}()
	// Cheapest path first: in a cluster, a job someone else already computed
	// is one peer GET away. Only a confirmed fetch short-circuits the run;
	// any miss, error, or timeout falls through to local simulation.
	if fill != nil && !j.noFill {
		if fres, ok := fill(ctx, j.hash); ok && fres != nil && fres.Hash == j.hash {
			s.mu.Lock()
			j.peer = true
			s.mu.Unlock()
			s.metrics.jobPeerFilled()
			res = fres
			return
		}
	}
	if s.opts.Handicap > 0 {
		// Demo/testing knob: model a slow node without touching results.
		select {
		case <-ctx.Done():
			err = ctx.Err()
			return
		case <-time.After(s.opts.Handicap):
		}
	}
	res, err = s.runWithRetry(ctx, rn, j.plan, cio)
	if err == nil {
		// The job finished; its snapshot is dead weight (and must not be
		// resumed by a future submission of the same hash).
		s.state.DropCkpt(j.hash)
	}
}

// finalize moves a job to its terminal state and updates breaker + metrics.
func (s *Server) finalize(j *Job, res *Result, err error, wall time.Duration) {
	s.mu.Lock()
	j.finished = time.Now()
	if s.inflight[j.hash] == j {
		delete(s.inflight, j.hash)
	}
	switch {
	case err == nil:
		j.state = JobDone
		j.result = res
		s.cache.Put(j.hash, res)
		s.metrics.jobCompleted(wall)
		s.metrics.mergeStages(res.Obs)
		if res.Verdict != nil {
			s.metrics.countVerdict(res.Verdict.Regime)
		}
		s.brk.RecordSuccess()
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		j.state = JobCanceled
		j.err = err.Error()
		s.metrics.jobCanceled()
		// Timeouts are not engine failures; they don't move the breaker.
	default:
		j.state = JobFailed
		j.err = err.Error()
		s.metrics.jobFailed()
		s.brk.RecordFailure()
	}
	close(j.done)
	s.mu.Unlock()
}

// runWithRetry executes the plan, retrying transient injected faults with
// capped exponential backoff plus jitter. All attempts share the job's
// timeout context. Permanent faults, client errors, and timeouts are never
// retried.
func (s *Server) runWithRetry(ctx context.Context, rn *Runner, p *Plan, cio *CkptIO) (*Result, error) {
	delay := s.opts.RetryBaseDelay
	for attempt := 0; ; attempt++ {
		res, err := rn.RunAttemptCkpt(ctx, p, attempt, cio)
		if err == nil || attempt >= s.opts.MaxRetries || !fault.IsTransient(err) {
			return res, err
		}
		s.metrics.jobRetried()
		// Up to 50% jitter decorrelates retry storms across workers.
		sleep := delay + time.Duration(rand.Int63n(int64(delay)/2+1))
		if sleep > s.opts.RetryMaxDelay {
			sleep = s.opts.RetryMaxDelay
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(sleep):
		}
		delay *= 2
		if delay > s.opts.RetryMaxDelay {
			delay = s.opts.RetryMaxDelay
		}
	}
}

// statusLocked builds the status view; the caller holds s.mu.
func (j *Job) statusLocked() JobStatus {
	st := JobStatus{ID: j.id, Hash: j.hash, State: j.state, Cached: j.cached,
		PeerFilled: j.peer, Error: j.err, ResumedFrom: j.resumedFrom,
		Checkpoints: j.checkpoints, WarmStarted: j.warmStarted}
	if j.result != nil && j.result.Verdict != nil {
		st.Regime = j.result.Verdict.Regime
	}
	switch j.state {
	case JobQueued:
		st.QueuedMs = float64(time.Since(j.submitted)) / float64(time.Millisecond)
	case JobRunning:
		st.QueuedMs = float64(j.started.Sub(j.submitted)) / float64(time.Millisecond)
		st.RunMs = float64(time.Since(j.started)) / float64(time.Millisecond)
	default:
		st.QueuedMs = float64(j.started.Sub(j.submitted)) / float64(time.Millisecond)
		st.RunMs = float64(j.finished.Sub(j.started)) / float64(time.Millisecond)
	}
	return st
}

// Status returns a job's current lifecycle snapshot.
func (s *Server) Status(id string) (JobStatus, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, false
	}
	return j.statusLocked(), true
}

// Result returns a job's result (nil unless state is done) and its status.
func (s *Server) Result(id string) (*Result, JobStatus, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, JobStatus{}, false
	}
	return j.result, j.statusLocked(), true
}

// ResultByHash returns the cached result for a canonical job hash. It is the
// lookup behind the peer protocol's GET /v1/peer/result/{hash}.
func (s *Server) ResultByHash(hash string) (*Result, bool) {
	return s.cache.Get(hash)
}

// WaitByHash returns the result for a canonical job hash, waiting (bounded by
// ctx) for an in-flight job computing that hash if one exists. ok is false
// when the hash is neither cached nor in flight, when the in-flight job ends
// in a non-done state, or when ctx expires first. This is the owner-side
// single-flight: a hot sweep's worth of peers asking for the same hash all
// park on the one computation instead of stampeding.
func (s *Server) WaitByHash(ctx context.Context, hash string) (*Result, bool) {
	if res, ok := s.cache.Get(hash); ok {
		return res, true
	}
	s.mu.Lock()
	j := s.inflight[hash]
	s.mu.Unlock()
	if j == nil {
		return nil, false
	}
	select {
	case <-j.done:
	case <-ctx.Done():
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if j.state != JobDone || j.result == nil {
		return nil, false
	}
	return j.result, true
}

// Wait blocks until job id completes (any terminal state) or ctx ends.
func (s *Server) Wait(ctx context.Context, id string) (JobStatus, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobStatus{}, fmt.Errorf("server: unknown job %q", id)
	}
	select {
	case <-j.done:
		st, _ := s.Status(id)
		return st, nil
	case <-ctx.Done():
		return JobStatus{}, ctx.Err()
	}
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// BreakerState returns the circuit breaker's state ("closed", "open",
// "half-open"), its consecutive engine-failure count, and how many times it
// has opened.
func (s *Server) BreakerState() (string, int, uint64) {
	return s.brk.Snapshot()
}

// MetricsSnapshot returns the current service metrics.
func (s *Server) MetricsSnapshot() MetricsSnapshot {
	snap := s.metrics.snapshot(s.opts.Workers, int(s.busy.Load()),
		len(s.queue), s.opts.QueueDepth, s.cache.Len())
	snap.BreakerState, _, snap.BreakerOpens = s.brk.Snapshot()
	return snap
}

// Shutdown drains the server: new submissions are rejected with ErrDraining,
// queued and running jobs are given drainTimeout to finish, and any still
// running after that are canceled and awaited. It reports whether the drain
// completed without forced cancellation. Shutdown is idempotent; concurrent
// calls all block until the pool exits.
func (s *Server) Shutdown(drainTimeout time.Duration) bool {
	_, clean := s.ShutdownDrain(drainTimeout)
	return clean
}

// DrainSummary classifies what happened to the jobs that were in flight when
// a drain began. Checkpointed jobs were canceled but left a durable snapshot
// behind: resubmitting the same spec (here after restart, or on another node
// holding the replica) resumes from the last barrier instead of starting
// over.
type DrainSummary struct {
	Finished     int `json:"finished"`
	Checkpointed int `json:"checkpointed"`
	Canceled     int `json:"canceled"`
}

// ShutdownDrain is Shutdown returning a per-job accounting of the drain. It
// also persists the result cache to the state dir, so finished work survives
// the restart alongside the snapshots of interrupted work.
func (s *Server) ShutdownDrain(drainTimeout time.Duration) (DrainSummary, bool) {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	var active []*Job
	for _, j := range s.jobs {
		if j.state == JobQueued || j.state == JobRunning {
			active = append(active, j)
		}
	}
	if !already {
		// Submissions send on s.queue only while holding s.mu with
		// draining false, so this close cannot race a send.
		close(s.queue)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	clean := true
	timer := time.NewTimer(drainTimeout)
	defer timer.Stop()
	select {
	case <-done:
	case <-timer.C:
		clean = false
		s.runCancel()
		<-done
	}
	s.runCancel()

	var sum DrainSummary
	s.mu.Lock()
	hashes := make([]string, 0, len(active))
	for _, j := range active {
		if j.state == JobDone {
			sum.Finished++
			hashes = append(hashes, "")
			continue
		}
		hashes = append(hashes, j.hash)
	}
	s.mu.Unlock()
	for _, h := range hashes {
		switch {
		case h == "":
			// counted as finished above
		case s.state.HasCkpt(h):
			sum.Checkpointed++
		default:
			sum.Canceled++
		}
	}
	s.persistResults()
	return sum, clean
}

// persistResults writes the result cache to the state dir (no-op without
// one). Best-effort: the cache is an optimization, so failures are ignored.
func (s *Server) persistResults() {
	if !s.state.enabled() {
		return
	}
	entries := s.cache.Entries()
	out := make([]persistedResult, 0, len(entries))
	for _, e := range entries {
		out = append(out, persistedResult{Hash: e.key, Result: e.res.Canonical()})
	}
	s.state.SaveResults(out)
}

// CheckpointBytes returns the durable snapshot stored for a job hash
// (envelope-validated). It backs GET /v1/jobs/{id}/checkpoint and the peer
// checkpoint protocol.
func (s *Server) CheckpointBytes(hash string) ([]byte, bool) {
	if !validSnapshotName(hash) {
		return nil, false
	}
	return s.state.LoadCkpt(hash)
}

// HasCheckpoint reports whether a durable snapshot exists for a job hash
// without reading it (peer HEAD probes, anti-entropy dedup).
func (s *Server) HasCheckpoint(hash string) bool {
	if !validSnapshotName(hash) {
		return false
	}
	return s.state.HasCkpt(hash)
}

// CheckpointHashes lists every job hash with a durable snapshot — the
// anti-entropy scan input.
func (s *Server) CheckpointHashes() []string {
	return s.state.CkptHashes()
}

// PutCheckpoint stores an externally produced snapshot (a peer replica or a
// client-side restore-on-submit) so the next submission of that hash resumes
// from it. The envelope is validated before anything touches disk; storing
// requires a state dir.
func (s *Server) PutCheckpoint(hash string, snap []byte) error {
	if !validSnapshotName(hash) {
		return fmt.Errorf("server: invalid snapshot hash %q", hash)
	}
	if !s.state.enabled() {
		return fmt.Errorf("server: no state dir; cannot store checkpoints")
	}
	if _, err := ckpt.Open(snap); err != nil {
		return fmt.Errorf("server: rejecting snapshot for %s: %w", hash, err)
	}
	return s.state.SaveCkpt(hash, snap)
}
