package server

import (
	"bufio"
	"runtime"
	"testing"
	"time"
)

// TestSweepClientDisconnectCancelsPending: a client that walks away from a
// streaming NDJSON sweep mid-stream must not leave the rest of the sweep
// running — still-pending points are canceled through the submitter context
// and every per-sweep goroutine drains.
func TestSweepClientDisconnectCancelsPending(t *testing.T) {
	// One worker and a per-job handicap keep most of the sweep queued while
	// the first line streams out.
	s, ts := newTestServer(t, Options{
		Workers:    1,
		QueueDepth: 64,
		Handicap:   25 * time.Millisecond,
	})
	baseline := runtime.NumGoroutine()

	sweep := map[string]any{
		"base": map[string]any{
			"workload": map[string]any{"kind": "chase", "region": "16K", "max_steps": 400},
		},
		"parameter": "seed",
		"values": []string{
			"1", "2", "3", "4", "5", "6", "7", "8",
			"9", "10", "11", "12", "13", "14", "15", "16",
		},
	}
	resp := postJSON(t, ts.URL+"/v1/sweep", sweep)
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadString('\n'); err != nil {
		t.Fatalf("reading first sweep line: %v", err)
	}
	// Mid-stream disconnect: at least one point delivered, ~15 still queued
	// or running.
	resp.Body.Close()

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s.MetricsSnapshot().JobsCanceled > 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if m := s.MetricsSnapshot(); m.JobsCanceled == 0 {
		t.Errorf("jobs_canceled = 0 after disconnect; pending sweep points kept running (completed=%d)", m.JobsCompleted)
	}
	// The submitter goroutine, Wait parkers, and per-job watchers must all
	// unwind; the worker pool itself is part of the baseline.
	waitForGoroutines(t, baseline)
}
