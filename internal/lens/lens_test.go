package lens

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/baseline"
	"repro/internal/mem"
	"repro/internal/vans"
)

// scaledConfig returns a VANS config with shrunken buffers so LENS sweeps
// stay fast: RMW 4KB (16 x 256B), AIT 256KB (64 x 4KB), LSQ 1KB, WPQ 512B.
func scaledConfig() vans.Config {
	cfg := vans.DefaultConfig()
	cfg.NV.RMWEntries = 16
	cfg.NV.AITEntries = 64
	cfg.NV.AITWays = 8
	cfg.NV.LSQSlots = 16
	cfg.NV.Media.Capacity = 16 << 20
	return cfg
}

func makeScaled(cfg vans.Config) MakeSystem {
	return func() mem.System { return vans.New(cfg) }
}

func testOptions() Options {
	return Options{MaxSteps: 3000, WarmPasses: 1, Window: 8, Seed: 42}
}

func TestBufferProberRecoversVANSReadBuffers(t *testing.T) {
	cfg := scaledConfig()
	bp := BufferProberConfig{
		Regions:      analysis.LogSpace(512, 2<<20, 2),
		BlockSizes:   analysis.LogSpace(64, 8<<10, 2),
		KneeRatio:    1.25,
		MaxReadKnees: 2,
		Options:      testOptions(),
	}
	rep := BufferProber(makeScaled(cfg), bp)
	if len(rep.ReadBufferBytes) != 2 {
		t.Fatalf("read buffers = %v, want 2", rep.ReadBufferBytes)
	}
	// RMW = 4KB, AIT = 256KB; allow one log2 step of slack.
	within2x := func(got, want uint64) bool { return got >= want/2 && got <= want*2 }
	if !within2x(rep.ReadBufferBytes[0], cfg.NV.RMWBytes()) {
		t.Errorf("first read buffer = %d, want ~%d", rep.ReadBufferBytes[0], cfg.NV.RMWBytes())
	}
	if !within2x(rep.ReadBufferBytes[1], cfg.NV.AITBytes()) {
		t.Errorf("second read buffer = %d, want ~%d", rep.ReadBufferBytes[1], cfg.NV.AITBytes())
	}
	// The paper's key finding: the buffers form an inclusive hierarchy.
	if !rep.InclusiveHierarchy {
		t.Error("hierarchy not detected as inclusive")
	}
}

func TestBufferProberRecoversGranularity(t *testing.T) {
	cfg := scaledConfig()
	bp := BufferProberConfig{
		Regions:      analysis.LogSpace(512, 2<<20, 2),
		BlockSizes:   analysis.LogSpace(64, 8<<10, 2),
		KneeRatio:    1.25,
		MaxReadKnees: 2,
		Options:      testOptions(),
	}
	rep := BufferProber(makeScaled(cfg), bp)
	if len(rep.ReadGranularity) < 1 {
		t.Fatalf("no granularities: %v", rep.ReadGranularity)
	}
	// RMW granularity: 256B (one log2 step of slack).
	if g := rep.ReadGranularity[0]; g < 128 || g > 512 {
		t.Errorf("RMW granularity = %d, want ~256", g)
	}
	if len(rep.ReadGranularity) > 1 {
		if g := rep.ReadGranularity[1]; g < 2048 {
			t.Errorf("AIT granularity = %d, want ~4096", g)
		}
	}
}

func TestWriteKneesDetected(t *testing.T) {
	cfg := scaledConfig()
	bp := BufferProberConfig{
		Regions:      analysis.LogSpace(256, 64<<10, 2),
		BlockSizes:   []uint64{64},
		KneeRatio:    1.2,
		MaxReadKnees: 2,
		Options:      testOptions(),
	}
	rep := BufferProber(makeScaled(cfg), bp)
	if len(rep.WriteBufferBytes) == 0 {
		t.Fatalf("no write knees: curve\n%s", rep.WriteCurve)
	}
	// WPQ 512B and LSQ 1KB are adjacent; at minimum the small-queue knee
	// must sit at or below 2KB.
	if rep.WriteBufferBytes[0] > 2048 {
		t.Errorf("first write knee = %d, want <= 2048; curve\n%s",
			rep.WriteBufferBytes[0], rep.WriteCurve)
	}
}

func TestPolicyProberMigrationParameters(t *testing.T) {
	cfg := scaledConfig()
	cfg.NV.WearThreshold = 50
	cfg.NV.MigrationNs = 30000
	mk := makeScaled(cfg)
	pc := PolicyProberConfig{
		OverwriteIters: 400,
		TailFactor:     8,
		Regions:        analysis.LogSpace(256, 4<<10, 2),
		SeqSizes:       analysis.LogSpace(1<<10, 8<<10, 2),
		Options:        testOptions(),
	}
	rep := PolicyProber(mk, pc)
	if rep.MigrationIntervalIters < 25 || rep.MigrationIntervalIters > 100 {
		t.Errorf("migration interval = %.0f iters, want ~50", rep.MigrationIntervalIters)
	}
	if rep.MigrationLatencyNs < 10000 {
		t.Errorf("migration latency = %.0f ns, want ~30000", rep.MigrationLatencyNs)
	}
	if rep.NormalIterNs <= 0 || rep.MigrationLatencyNs < 10*rep.NormalIterNs {
		t.Errorf("tail (%.0f) not >> normal (%.0f)", rep.MigrationLatencyNs, rep.NormalIterNs)
	}
}

func TestPolicyProberDetectsInterleaving(t *testing.T) {
	inter := scaledConfig()
	inter.DIMMs = 6
	inter.Interleaved = true
	pc := PolicyProberConfig{
		OverwriteIters: 60,
		TailFactor:     8,
		Regions:        []uint64{256},
		SeqSizes:       analysis.LogSpace(1<<10, 32<<10, 2),
		Options:        testOptions(),
	}
	rep := PolicyProber(makeScaled(inter), pc)
	if rep.InterleaveBytes == 0 {
		t.Fatalf("interleaving not detected; curve\n%s", rep.SeqWriteCurve)
	}
	if rep.InterleaveBytes < 2048 || rep.InterleaveBytes > 8192 {
		t.Errorf("interleave granularity = %d, want ~4096; curve\n%s",
			rep.InterleaveBytes, rep.SeqWriteCurve)
	}

	// Non-interleaved single DIMM: no interleaving detected.
	single := scaledConfig()
	rep2 := PolicyProber(makeScaled(single), pc)
	if rep2.InterleaveBytes != 0 && rep2.InterleaveBytes < 16<<10 {
		t.Errorf("spurious interleave detection: %d; curve\n%s",
			rep2.InterleaveBytes, rep2.SeqWriteCurve)
	}
}

func TestPerfProberBandwidthOrdering(t *testing.T) {
	cfg := scaledConfig()
	mk := makeScaled(cfg)
	rep := PerfProber(mk, BufferReport{ReadBufferBytes: []uint64{4 << 10, 256 << 10}},
		testOptions())
	if rep.LoadGBs <= 0 || rep.StoreNTGBs <= 0 {
		t.Fatalf("bandwidths not positive: %+v", rep)
	}
	if len(rep.TierLatenciesNs) != 3 {
		t.Fatalf("tier latencies = %v, want 3 tiers", rep.TierLatenciesNs)
	}
	// Tier latencies increase down the hierarchy.
	if !(rep.TierLatenciesNs[0] < rep.TierLatenciesNs[1] &&
		rep.TierLatenciesNs[1] < rep.TierLatenciesNs[2]) {
		t.Errorf("tier latencies not increasing: %v", rep.TierLatenciesNs)
	}
}

func TestRaWSlowerThanRPlusWOnSmallRegions(t *testing.T) {
	// Figure 5c: RaW >> R+W for small PC-Regions on Optane-like systems.
	cfg := scaledConfig()
	res := ReadAfterWrite(makeScaled(cfg), 512, testOptions())
	if res.RaWNs <= res.RPlusWNs {
		t.Errorf("RaW (%.0f) not above R+W (%.0f) at 512B", res.RaWNs, res.RPlusWNs)
	}
}

func TestPMEPShowsNoKnees(t *testing.T) {
	mk := func() mem.System { return baseline.NewPMEP(baseline.DefaultPMEP(), 1) }
	curve := PtrChaseSweep(mk, analysis.LogSpace(512, 1<<20, 4), 64, mem.OpRead, testOptions())
	if ks := analysis.Knees(curve, 1.25); len(ks) != 0 {
		t.Errorf("PMEP shows buffer knees %v; curve\n%s", ks, curve)
	}
}

func TestCharacterizeEndToEnd(t *testing.T) {
	cfg := scaledConfig()
	cfg.NV.WearThreshold = 50
	bp := BufferProberConfig{
		Regions:      analysis.LogSpace(512, 1<<20, 2),
		BlockSizes:   analysis.LogSpace(64, 1<<10, 2),
		KneeRatio:    1.25,
		MaxReadKnees: 2,
		Options:      testOptions(),
	}
	pc := PolicyProberConfig{
		OverwriteIters: 200,
		TailFactor:     8,
		Regions:        analysis.LogSpace(256, 2<<10, 2),
		SeqSizes:       analysis.LogSpace(1<<10, 8<<10, 2),
		Options:        testOptions(),
	}
	c := Characterize(makeScaled(cfg), bp, pc)
	rep := c.Report()
	for _, want := range []string{"Read buffers", "Wear-leveling", "Bandwidth"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestCapabilityTables(t *testing.T) {
	cm := CapabilityMatrix()
	if len(cm.Rows) != 4 {
		t.Fatalf("capability rows = %d", len(cm.Rows))
	}
	ov := Overview()
	if len(ov.Rows) != 8 {
		t.Fatalf("overview rows = %d", len(ov.Rows))
	}
	if !strings.Contains(cm.String(), "LENS") {
		t.Fatal("capability matrix missing LENS")
	}
}

func TestChaseAccessesShape(t *testing.T) {
	accs := chaseAccesses(1024, 256, mem.OpRead, 64, 0, 1)
	if len(accs) != 64 {
		t.Fatalf("len = %d", len(accs))
	}
	// Within a block, accesses are sequential 64B lines.
	for i := 1; i < 4; i++ {
		if accs[i].Addr != accs[0].Addr+uint64(i)*64 {
			t.Fatalf("intra-block not sequential: %v", accs[:4])
		}
	}
	// All addresses inside the region.
	for _, a := range accs {
		if a.Addr >= 1024 {
			t.Fatalf("address %d outside region", a.Addr)
		}
	}
}
