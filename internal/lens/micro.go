// Package lens is the Low-level profilEr for Non-volatile memory Systems:
// three microbenchmarks (pointer chasing, overwrite, stride) and three
// probers (buffer, policy, performance) that drive any mem.System — the
// VANS model, the baseline emulators, or the empirical Optane reference —
// and reverse-engineer its buffer sizes, granularities, hierarchy,
// wear-leveling parameters, and interleaving scheme from latency and
// bandwidth patterns alone.
package lens

import (
	"repro/internal/analysis"
	"repro/internal/mem"
	"repro/internal/pool"
	"repro/internal/sim"
)

// MakeSystem builds a fresh instance of the system under test. Probers need
// fresh instances so one experiment's buffer state does not pollute the
// next, exactly as LENS remounts its dummy filesystem between runs.
type MakeSystem func() mem.System

// Options bounds the microbenchmark run sizes so scaled-down unit-test
// systems and full-size experiment systems share the code.
type Options struct {
	// MaxSteps caps the accesses per measurement pass.
	MaxSteps int
	// WarmPasses runs extra untimed passes before measuring.
	WarmPasses int
	// Window is the outstanding-access window for bandwidth runs.
	Window int
	// Seed drives the pointer-chasing permutations.
	Seed uint64
}

// DefaultOptions returns sizes good for full experiments.
func DefaultOptions() Options {
	return Options{MaxSteps: 24000, WarmPasses: 1, Window: 10, Seed: 42}
}

func (o Options) withDefaults() Options {
	d := DefaultOptions()
	if o.MaxSteps == 0 {
		o.MaxSteps = d.MaxSteps
	}
	if o.Window == 0 {
		o.Window = d.Window
	}
	if o.Seed == 0 {
		o.Seed = d.Seed
	}
	return o
}

// chaseAccesses builds the access list of a pointer-chasing pass: PC-Blocks
// of blockSize visited in a single-cycle random permutation, each block read
// (or written) sequentially in 64B lines. steps counts 64B accesses.
func chaseAccesses(region, blockSize uint64, op mem.Op, steps int, base uint64, seed uint64) []mem.Access {
	if blockSize < 64 {
		blockSize = 64
	}
	nBlocks := int(region / blockSize)
	if nBlocks < 1 {
		nBlocks = 1
	}
	var perm []int
	if nBlocks > 1 {
		perm = sim.NewRNG(seed).PermCycle(nBlocks)
	} else {
		perm = []int{0}
	}
	linesPerBlock := int(blockSize / 64)
	accs := make([]mem.Access, 0, steps)
	at := 0
	for len(accs) < steps {
		blockBase := base + uint64(at)*blockSize
		for l := 0; l < linesPerBlock && len(accs) < steps; l++ {
			accs = append(accs, mem.Access{Op: op, Addr: blockBase + uint64(l)*64, Size: 64})
		}
		at = perm[at]
	}
	return accs
}

// PtrChase runs the pointer-chasing microbenchmark: random block order,
// sequential 64B accesses within each block, dependent chain. It returns
// the steady-state average latency per cache line in ns.
func PtrChase(mk MakeSystem, region, blockSize uint64, op mem.Op, opt Options) float64 {
	opt = opt.withDefaults()
	sys := mk()
	d := mem.NewDriver(sys)

	// Warm passes: cover the whole region so capacity effects are steady
	// state, capped to keep runs tractable.
	warmSteps := int(region / 64)
	if warmSteps > 4*opt.MaxSteps {
		warmSteps = 4 * opt.MaxSteps
	}
	for p := 0; p < opt.WarmPasses; p++ {
		warm := chaseAccesses(region, blockSize, op, warmSteps, 0, opt.Seed)
		if op.IsWrite() {
			d.RunWindow(warm, opt.Window)
		} else {
			d.RunChain(warm)
		}
	}

	steps := int(region / 64)
	if steps > opt.MaxSteps {
		steps = opt.MaxSteps
	}
	if steps < 64 {
		steps = 64
	}
	accs := chaseAccesses(region, blockSize, op, steps, 0, opt.Seed+1)
	res := d.RunChainTimed(accs)
	return mem.ToNs(sys, res.TotalCycles) / float64(len(accs))
}

// PtrChaseSweep measures latency per CL across region sizes (the buffer
// prober's overflow scan, Figures 1b/3b/5a/5b/9a).
func PtrChaseSweep(mk MakeSystem, regions []uint64, blockSize uint64, op mem.Op, opt Options) *analysis.Series {
	s := &analysis.Series{
		Name:   "ptrchase-" + op.String(),
		XLabel: "access region (bytes)",
		YLabel: "latency per CL (ns)",
	}
	// Each sweep point builds a fresh system from fixed seeds, so points run
	// concurrently and land in their slot — output matches a sequential run.
	lat := make([]float64, len(regions))
	pool.ForEach(len(regions), func(i int) {
		lat[i] = PtrChase(mk, regions[i], blockSize, op, opt)
	})
	for i, r := range regions {
		s.Add(float64(r), lat[i])
	}
	return s
}

// RaWResult holds the read-after-write experiment outputs (Figure 5c).
type RaWResult struct {
	RaWNs       float64 // combined write-then-read roundtrip per CL
	RPlusWNs    float64 // sum of independently measured read and write
	SpeedupFast bool    // whether RaW < R+W (parallel fast-forwarding)
}

// ReadAfterWrite issues writes in pointer-chasing order, a fence, then reads
// in the same order, and compares against separate read and write runs.
func ReadAfterWrite(mk MakeSystem, region uint64, opt Options) RaWResult {
	opt = opt.withDefaults()
	steps := int(region / 64)
	if steps > opt.MaxSteps/2 {
		steps = opt.MaxSteps / 2
	}
	if steps < 8 {
		steps = 8
	}

	// Combined RaW run: write pass, mfence (which flushes the LSQ), read
	// pass — repeated so the roundtrip is steady state.
	sys := mk()
	d := mem.NewDriver(sys)
	const rounds = 3
	start := sys.Engine().Now()
	for r := 0; r < rounds; r++ {
		d.RunChain(chaseAccesses(region, 64, mem.OpWriteNT, steps, 0, opt.Seed))
		d.Fence()
		d.RunChain(chaseAccesses(region, 64, mem.OpRead, steps, 0, opt.Seed))
	}
	rawTotal := mem.ToNs(sys, sys.Engine().Now()-start) / float64(2*steps*rounds)

	// R+W uses the steady-state per-CL costs of the pure store stream and
	// pure load stream, the way the paper sums the Figure 5a curves.
	wNs := PtrChase(mk, region, 64, mem.OpWriteNT, opt)
	rNs := PtrChase(mk, region, 64, mem.OpRead, opt)

	rpw := (wNs + rNs) / 2
	return RaWResult{RaWNs: rawTotal, RPlusWNs: rpw, SpeedupFast: rawTotal < rpw}
}

// Overwrite repeatedly writes a region of regionSize (64B stores + fence per
// iteration) and returns the per-iteration latencies in ns (Figure 7b).
func Overwrite(sys mem.System, base, regionSize uint64, iters int) []float64 {
	d := mem.NewDriver(sys)
	lines := int(regionSize / 64)
	if lines < 1 {
		lines = 1
	}
	lats := make([]float64, 0, iters)
	for it := 0; it < iters; it++ {
		start := sys.Engine().Now()
		accs := make([]mem.Access, lines)
		for l := 0; l < lines; l++ {
			accs[l] = mem.Access{Op: mem.OpWriteNT, Addr: base + uint64(l)*64, Size: 64}
		}
		d.RunWindow(accs, 8)
		d.Fence()
		lats = append(lats, mem.ToNs(sys, sys.Engine().Now()-start))
	}
	return lats
}

// StrideBandwidth reads (or writes) totalBytes with the given stride and
// returns GB/s (the performance prober's bandwidth measurement).
func StrideBandwidth(mk MakeSystem, stride, totalBytes uint64, op mem.Op, opt Options) float64 {
	opt = opt.withDefaults()
	sys := mk()
	d := mem.NewDriver(sys)
	n := int(totalBytes / stride)
	if n > opt.MaxSteps {
		n = opt.MaxSteps
	}
	accs := make([]mem.Access, n)
	for i := range accs {
		accs[i] = mem.Access{Op: op, Addr: uint64(i) * stride, Size: 64}
	}
	elapsed := d.RunWindow(accs, opt.Window)
	if op.IsWrite() {
		// Include the drain so posted writes do not overstate bandwidth.
		start := sys.Engine().Now()
		d.Fence()
		elapsed += sys.Engine().Now() - start
	}
	return mem.BandwidthGBs(sys, uint64(n)*64, elapsed)
}

// SeqWriteTime measures the execution time (ns) of size/64 sequential 64B
// writes plus a final fence (Figure 7a's interleaving probe).
func SeqWriteTime(mk MakeSystem, size uint64, opt Options) float64 {
	opt = opt.withDefaults()
	sys := mk()
	d := mem.NewDriver(sys)
	n := int(size / 64)
	accs := make([]mem.Access, n)
	for i := range accs {
		accs[i] = mem.Access{Op: mem.OpWriteNT, Addr: uint64(i) * 64, Size: 64}
	}
	start := sys.Engine().Now()
	d.RunWindow(accs, 8)
	d.Fence()
	return mem.ToNs(sys, sys.Engine().Now()-start)
}
