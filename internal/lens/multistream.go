package lens

import (
	"repro/internal/mem"
	"repro/internal/sim"
)

// MultiStreamBandwidth drives `streams` independent access sequences into
// one system concurrently, each with its own outstanding window — the
// multi-threaded access pattern whose poor scaling on Optane the follow-on
// literature attributes to WPQ/RMW/AIT contention. It returns the aggregate
// GB/s.
//
// Streams are interleaved at submission: every stream keeps up to
// perStreamWindow requests in flight, and the engine advances whenever all
// runnable streams are blocked.
func MultiStreamBandwidth(mk MakeSystem, streams int, perStream []([]mem.Access),
	perStreamWindow int) float64 {
	sys := mk()
	eng := sys.Engine()
	if perStreamWindow < 1 {
		perStreamWindow = 1
	}

	type streamState struct {
		accs     []mem.Access
		next     int
		inflight int
	}
	states := make([]*streamState, streams)
	var totalBytes uint64
	for i := 0; i < streams; i++ {
		states[i] = &streamState{accs: perStream[i%len(perStream)]}
		totalBytes += uint64(len(states[i].accs)) * 64
	}

	start := eng.Now()
	var id uint64
	remaining := streams
	for remaining > 0 {
		progressed := false
		for _, st := range states {
			if st.next >= len(st.accs) {
				continue
			}
			for st.inflight < perStreamWindow && st.next < len(st.accs) {
				a := st.accs[st.next]
				id++
				stRef := st
				r := &mem.Request{ID: id, Op: a.Op, Addr: a.Addr, Size: a.Size,
					OnDone: func(*mem.Request) { stRef.inflight-- }}
				if !sys.Submit(r) {
					break
				}
				st.next++
				st.inflight++
				progressed = true
				if st.next >= len(st.accs) {
					remaining--
				}
			}
		}
		if !progressed {
			if eng.Pending() == 0 {
				panic("lens: multistream stalled with no pending events")
			}
			fired := eng.Fired()
			eng.RunWhile(func() bool { return eng.Fired() == fired })
		}
	}
	// Drain all in-flight requests.
	for {
		busy := false
		for _, st := range states {
			if st.inflight > 0 {
				busy = true
			}
		}
		if !busy {
			break
		}
		if eng.Pending() == 0 {
			panic("lens: multistream drain stalled")
		}
		fired := eng.Fired()
		eng.RunWhile(func() bool { return eng.Fired() == fired })
	}
	elapsed := eng.Now() - start
	return mem.BandwidthGBs(sys, totalBytes, elapsed)
}

// StreamAccesses builds one stream's access list: sequential 64B ops inside
// a private address range (streams do not share lines, as independent
// threads would not).
func StreamAccesses(stream int, n int, op mem.Op, rangeBytes uint64) []mem.Access {
	base := uint64(stream) * rangeBytes
	accs := make([]mem.Access, n)
	for i := range accs {
		accs[i] = mem.Access{Op: op, Addr: base + uint64(i)*64%rangeBytes, Size: 64}
	}
	return accs
}

// RandomStreamAccesses builds a random-order stream (per-thread pointer
// chase flavor).
func RandomStreamAccesses(stream int, n int, op mem.Op, rangeBytes uint64, seed uint64) []mem.Access {
	base := uint64(stream) * rangeBytes
	rng := sim.NewRNG(seed + uint64(stream)*977)
	accs := make([]mem.Access, n)
	for i := range accs {
		accs[i] = mem.Access{Op: op, Addr: base + rng.Uint64n(rangeBytes)&^63, Size: 64}
	}
	return accs
}
