package lens

import (
	"testing"

	"repro/internal/baseline"
	"repro/internal/mem"
)

func pmepMaker() MakeSystem {
	return func() mem.System { return baseline.NewPMEP(baseline.DefaultPMEP(), 1) }
}

func TestMultiStreamBandwidthCompletesAllStreams(t *testing.T) {
	streams := [][]mem.Access{
		StreamAccesses(0, 200, mem.OpRead, 1<<20),
		StreamAccesses(1, 200, mem.OpRead, 1<<20),
		StreamAccesses(2, 200, mem.OpWriteNT, 1<<20),
	}
	bw := MultiStreamBandwidth(pmepMaker(), 3, streams, 4)
	if bw <= 0 {
		t.Fatalf("bandwidth = %v", bw)
	}
}

func TestMultiStreamMoreStreamsMoreAggregateOnUnboundedSystem(t *testing.T) {
	// On the occupancy-bound PMEP model, more streams raise aggregate
	// bandwidth until the pipe saturates; never decrease it drastically.
	one := MultiStreamBandwidth(pmepMaker(), 1,
		[][]mem.Access{StreamAccesses(0, 400, mem.OpRead, 1<<20)}, 4)
	four := MultiStreamBandwidth(pmepMaker(), 4, [][]mem.Access{
		StreamAccesses(0, 400, mem.OpRead, 1<<20),
		StreamAccesses(1, 400, mem.OpRead, 1<<20),
		StreamAccesses(2, 400, mem.OpRead, 1<<20),
		StreamAccesses(3, 400, mem.OpRead, 1<<20),
	}, 4)
	if four < one {
		t.Fatalf("4-stream bandwidth (%.2f) below 1-stream (%.2f)", four, one)
	}
}

func TestMultiStreamReusesStreamListModulo(t *testing.T) {
	// Fewer access lists than streams: lists cycle.
	streams := [][]mem.Access{StreamAccesses(0, 100, mem.OpRead, 1<<20)}
	bw := MultiStreamBandwidth(pmepMaker(), 3, streams, 2)
	if bw <= 0 {
		t.Fatalf("bandwidth = %v", bw)
	}
}

func TestStreamAccessesDisjointRanges(t *testing.T) {
	a := StreamAccesses(0, 50, mem.OpRead, 1<<16)
	b := StreamAccesses(1, 50, mem.OpRead, 1<<16)
	for i := range a {
		if a[i].Addr>>16 == b[i].Addr>>16 {
			t.Fatal("streams share an address range")
		}
	}
}

func TestRandomStreamAccessesInRange(t *testing.T) {
	accs := RandomStreamAccesses(2, 200, mem.OpWriteNT, 1<<16, 7)
	base := uint64(2) << 16
	for _, a := range accs {
		if a.Addr < base || a.Addr >= base+1<<16 {
			t.Fatalf("address %#x outside stream range", a.Addr)
		}
		if a.Addr%64 != 0 {
			t.Fatalf("address %#x not line aligned", a.Addr)
		}
	}
	// Deterministic per seed.
	again := RandomStreamAccesses(2, 200, mem.OpWriteNT, 1<<16, 7)
	for i := range accs {
		if accs[i].Op != again[i].Op || accs[i].Addr != again[i].Addr || accs[i].Size != again[i].Size {
			t.Fatal("not deterministic")
		}
	}
}

func TestMultiStreamWindowClamp(t *testing.T) {
	streams := [][]mem.Access{StreamAccesses(0, 20, mem.OpRead, 1<<20)}
	if bw := MultiStreamBandwidth(pmepMaker(), 1, streams, 0); bw <= 0 {
		t.Fatal("window clamp failed")
	}
}
