package lens

import "repro/internal/analysis"

// CapabilityMatrix reproduces Table I: what each profiling tool can analyze.
// LENS is the only tool covering on-DIMM buffer structure, data-migration
// policy, and internal performance.
func CapabilityMatrix() *analysis.Table {
	t := &analysis.Table{
		Title: "Table I: comparison of profiling tools",
		Columns: []string{"Tool", "Latency", "Bandwidth", "AddrMapping",
			"BufSize", "BufGranularity", "BufHierarchy", "MigFrequency",
			"MigGranularity", "LongTailLat"},
	}
	t.AddRow("MLC", "yes", "yes", "no", "no", "no", "no", "no", "no", "no")
	t.AddRow("perf", "yes", "yes", "no", "no", "no", "no", "no", "no", "no")
	t.AddRow("DRAMA", "yes", "partial", "yes", "no", "no", "no", "no", "no", "no")
	t.AddRow("LENS", "yes", "yes", "yes", "yes", "yes", "yes", "yes", "yes", "yes")
	return t
}

// Overview reproduces Table II: prober -> microbenchmark -> hardware
// behavior -> microarchitecture property.
func Overview() *analysis.Table {
	t := &analysis.Table{
		Title:   "Table II: LENS overview",
		Columns: []string{"Prober", "Microbenchmark", "HardwareBehavior", "Microarchitecture"},
	}
	t.AddRow("Buffer", "PtrChasing (64B block)", "Buffer overflow", "Buffer size")
	t.AddRow("Buffer", "PtrChasing (various block)", "R/W amplification", "Buffer entry size")
	t.AddRow("Buffer", "Read-after-write", "Data fast-forwarding", "Buffer hierarchy")
	t.AddRow("Policy", "Sequential/Strided write", "Interleaving speedup", "Interleaving scheme")
	t.AddRow("Policy", "Overwrite (256B region)", "Data migration", "Migration latency")
	t.AddRow("Policy", "Overwrite (various region)", "Data migration", "Migration block size")
	t.AddRow("Perf", "Strided write", "Stable amplification", "Internal bandwidth")
	t.AddRow("Perf", "(derived)", "(derived)", "Internal latency")
	return t
}
