package lens

import (
	"fmt"
	"strings"

	"repro/internal/analysis"
	"repro/internal/mem"
	"repro/internal/pool"
)

// BufferReport is what the buffer prober reverse-engineers (Figure 4's blue
// numbers for the on-DIMM buffers).
type BufferReport struct {
	// ReadBufferBytes are detected read-side buffer capacities (ascending):
	// 16KB RMW buffer and 16MB AIT buffer on Optane.
	ReadBufferBytes []uint64
	// WriteBufferBytes are detected write-side queue capacities: 512B WPQ
	// and 4KB LSQ on Optane.
	WriteBufferBytes []uint64
	// ReadGranularity maps each read buffer to its detected entry size
	// (256B and 4KB on Optane).
	ReadGranularity []uint64
	// InclusiveHierarchy reports whether the read buffers form an inclusive
	// hierarchy (no parallel fast-forward speedup in the RaW test).
	InclusiveHierarchy bool
	// Curves keeps the raw sweeps for validation plots.
	ReadCurve  *analysis.Series
	WriteCurve *analysis.Series
}

// BufferProberConfig bounds the sweeps.
type BufferProberConfig struct {
	// Regions scanned for overflow knees.
	Regions []uint64
	// BlockSizes scanned for amplification granularity.
	BlockSizes []uint64
	// KneeRatio is the jump ratio that counts as an inflection.
	KneeRatio float64
	// MaxReadKnees bounds how many read buffers to report.
	MaxReadKnees int
	Options      Options
}

// DefaultBufferProberConfig scans 256B..64MB, the paper's range.
func DefaultBufferProberConfig() BufferProberConfig {
	return BufferProberConfig{
		Regions:      analysis.LogSpace(256, 64<<20, 2),
		BlockSizes:   analysis.LogSpace(64, 8<<10, 2),
		KneeRatio:    1.25,
		MaxReadKnees: 2,
		Options:      DefaultOptions(),
	}
}

// BufferProber runs the capacity, granularity, and hierarchy analyses.
func BufferProber(mk MakeSystem, cfg BufferProberConfig) BufferReport {
	if cfg.KneeRatio == 0 {
		cfg = DefaultBufferProberConfig()
	}
	var rep BufferReport
	rep.ReadCurve = PtrChaseSweep(mk, cfg.Regions, 64, mem.OpRead, cfg.Options)
	rep.WriteCurve = PtrChaseSweep(mk, cfg.Regions, 64, mem.OpWriteNT, cfg.Options)

	rep.ReadBufferBytes = kneesToBytes(analysis.LargestKnees(rep.ReadCurve, cfg.MaxReadKnees))
	rep.WriteBufferBytes = kneesToBytes(analysis.LargestKnees(rep.WriteCurve, 2))

	// Granularity: a single amplification-score sweep over PC-Block sizes
	// with a region just past the first buffer exposes every structure's
	// access granularity as a drop-then-flatten knee in the score curve
	// (Figure 6a carries both the 256B RMW and 4KB AIT knees).
	if len(rep.ReadBufferBytes) > 0 {
		overflow := rep.ReadBufferBytes[0] * 4
		if len(rep.ReadBufferBytes) > 1 && overflow > rep.ReadBufferBytes[1] {
			overflow = rep.ReadBufferBytes[1]
		}
		fit := rep.ReadBufferBytes[0] / 2
		scores := make([]float64, len(cfg.BlockSizes))
		pool.ForEach(len(cfg.BlockSizes), func(i int) {
			bs := cfg.BlockSizes[i]
			over := PtrChase(mk, overflow, bs, mem.OpRead, cfg.Options)
			in := PtrChase(mk, fit, bs, mem.OpRead, cfg.Options)
			scores[i] = analysis.AmplificationScore(over, in)
		})
		rep.ReadGranularity = analysis.ScoreKnees(cfg.BlockSizes, scores, 0.05)
		if len(rep.ReadGranularity) > len(rep.ReadBufferBytes) {
			rep.ReadGranularity = rep.ReadGranularity[:len(rep.ReadBufferBytes)]
		}
	}

	// Hierarchy: RaW at a region between the two read buffers. Independent
	// buffers would fast-forward in parallel (RaW < R+W); an inclusive
	// hierarchy does not.
	region := uint64(64 << 10)
	if len(rep.ReadBufferBytes) > 0 {
		region = rep.ReadBufferBytes[0] * 4
	}
	raw := ReadAfterWrite(mk, region, cfg.Options)
	rep.InclusiveHierarchy = !raw.SpeedupFast
	return rep
}

func kneesToBytes(xs []float64) []uint64 {
	out := make([]uint64, 0, len(xs))
	for _, x := range xs {
		out = append(out, uint64(x))
	}
	return out
}

// PolicyReport is the policy prober's output: wear-leveling migration
// parameters and multi-DIMM interleaving.
type PolicyReport struct {
	// MigrationIntervalIters is the mean iterations between tails in the
	// 256B overwrite test (~14,000 on Optane).
	MigrationIntervalIters float64
	// MigrationLatencyNs is the mean tail magnitude (~55us, >100x normal).
	MigrationLatencyNs float64
	// NormalIterNs is the non-tail iteration latency.
	NormalIterNs float64
	// MigrationBlockBytes is the detected wear-leveling block size: the
	// overwrite region size at which tail frequency collapses (64KB).
	MigrationBlockBytes uint64
	// TailRatioByRegion is the Figure 7c curve.
	TailRatioByRegion *analysis.Series
	// InterleaveBytes is the detected interleave granularity (4KB), or 0
	// when no interleaving is detected.
	InterleaveBytes uint64
	// SeqWriteCurve is the Figure 7a execution-time curve.
	SeqWriteCurve *analysis.Series
}

// PolicyProberConfig bounds the policy analyses.
type PolicyProberConfig struct {
	// OverwriteIters is the iteration count of the tail test.
	OverwriteIters int
	// TailFactor classifies an iteration as a tail.
	TailFactor float64
	// Regions scanned for the migration-block detection.
	Regions []uint64
	// SeqSizes scanned for interleave detection.
	SeqSizes []uint64
	Options  Options
}

// DefaultPolicyProberConfig matches the paper's ranges (scaled iteration
// counts are set by callers on scaled systems).
func DefaultPolicyProberConfig() PolicyProberConfig {
	return PolicyProberConfig{
		OverwriteIters: 60000,
		TailFactor:     8,
		Regions:        analysis.LogSpace(256, 512<<10, 2),
		SeqSizes:       analysis.LogSpace(1<<10, 16<<10, 2),
		Options:        DefaultOptions(),
	}
}

// PolicyProber runs the migration and interleaving analyses.
func PolicyProber(mk MakeSystem, cfg PolicyProberConfig) PolicyReport {
	if cfg.OverwriteIters == 0 {
		cfg = DefaultPolicyProberConfig()
	}
	var rep PolicyReport

	// Migration frequency and latency: constant 256B overwrite.
	sys := mk()
	lats := Overwrite(sys, 0, 256, cfg.OverwriteIters)
	st := analysis.Tails(lats, cfg.TailFactor)
	rep.MigrationIntervalIters = st.MeanInterval()
	if rep.MigrationIntervalIters == 0 && st.Tails == 1 {
		// A single tail: interval is at least the full run.
		rep.MigrationIntervalIters = float64(st.N)
	}
	rep.MigrationLatencyNs = st.MeanTail - st.MeanNormal
	rep.NormalIterNs = st.MeanNormal

	// Migration block size: tail frequency normalized per byte written
	// collapses once the region spans multiple wear blocks.
	rep.TailRatioByRegion = &analysis.Series{
		Name: "tail-ratio", XLabel: "overwrite region (bytes)", YLabel: "tails per KB written"}
	totalBytes := uint64(cfg.OverwriteIters) * 256
	rates := make([]float64, len(cfg.Regions))
	pool.ForEach(len(cfg.Regions), func(i int) {
		region := cfg.Regions[i]
		iters := int(totalBytes / region)
		if iters < 50 {
			iters = 50
		}
		s := mk()
		l := Overwrite(s, 0, region, iters)
		ts := analysis.Tails(l, cfg.TailFactor)
		rates[i] = float64(ts.Tails) / (float64(region) * float64(iters) / 1024)
	})
	var prevRate float64
	rep.MigrationBlockBytes = cfg.Regions[len(cfg.Regions)-1]
	found := false
	for i, region := range cfg.Regions {
		rate := rates[i]
		rep.TailRatioByRegion.Add(float64(region), rate)
		if !found && prevRate > 0 && rate < prevRate/4 {
			rep.MigrationBlockBytes = region
			found = true
		}
		prevRate = rate
	}

	// Interleaving: sequential-write execution time. The granularity shows
	// as the size beyond which marginal time per byte drops (additional
	// DIMMs engage).
	rep.SeqWriteCurve = &analysis.Series{
		Name: "seq-write", XLabel: "access size (bytes)", YLabel: "execution time (ns)"}
	seqNs := make([]float64, len(cfg.SeqSizes))
	pool.ForEach(len(cfg.SeqSizes), func(i int) {
		seqNs[i] = SeqWriteTime(mk, cfg.SeqSizes[i], cfg.Options)
	})
	for i, sz := range cfg.SeqSizes {
		rep.SeqWriteCurve.Add(float64(sz), seqNs[i])
	}
	rep.InterleaveBytes = detectInterleave(rep.SeqWriteCurve)
	return rep
}

// detectInterleave finds the size beyond which the marginal execution time
// per byte drops sharply — additional DIMMs engaging in parallel. It returns
// the last size before the drop (the interleave granularity), or 0 when the
// marginal cost stays flat (no interleaving).
func detectInterleave(s *analysis.Series) uint64 {
	var prevMarginal float64
	for i := 1; i < s.Len(); i++ {
		dx := s.X[i] - s.X[i-1]
		if dx <= 0 {
			continue
		}
		marginal := (s.Y[i] - s.Y[i-1]) / dx
		if prevMarginal > 0 && marginal < 0.78*prevMarginal {
			return uint64(s.X[i-1])
		}
		prevMarginal = marginal
	}
	return 0
}

// PerfReport is the performance prober's output.
type PerfReport struct {
	LoadGBs    float64
	StoreGBs   float64
	StoreNTGBs float64
	// TierLatenciesNs are the read latencies of each detected buffer tier.
	TierLatenciesNs []float64
}

// PerfProber measures device bandwidth and per-tier latency, given the
// buffer report (it reads each buffer's region sizes).
func PerfProber(mk MakeSystem, buffers BufferReport, opt Options) PerfReport {
	var rep PerfReport
	total := uint64(16 << 20)
	rep.LoadGBs = StrideBandwidth(mk, 64, total, mem.OpRead, opt)
	rep.StoreGBs = StrideBandwidth(mk, 64, total, mem.OpWrite, opt)
	rep.StoreNTGBs = StrideBandwidth(mk, 64, total, mem.OpWriteNT, opt)
	for _, capBytes := range buffers.ReadBufferBytes {
		rep.TierLatenciesNs = append(rep.TierLatenciesNs,
			PtrChase(mk, capBytes/2, 64, mem.OpRead, opt))
	}
	// Beyond the last buffer: media tier.
	if n := len(buffers.ReadBufferBytes); n > 0 {
		rep.TierLatenciesNs = append(rep.TierLatenciesNs,
			PtrChase(mk, buffers.ReadBufferBytes[n-1]*4, 64, mem.OpRead, opt))
	}
	return rep
}

// Characterization is the full LENS output (the Figure 4 parameter set).
type Characterization struct {
	Buffers BufferReport
	Policy  PolicyReport
	Perf    PerfReport
}

// Characterize runs all three probers.
func Characterize(mk MakeSystem, bufCfg BufferProberConfig, polCfg PolicyProberConfig) Characterization {
	buffers := BufferProber(mk, bufCfg)
	policy := PolicyProber(mk, polCfg)
	perf := PerfProber(mk, buffers, bufCfg.Options)
	return Characterization{Buffers: buffers, Policy: policy, Perf: perf}
}

// Report renders the characterization like the paper's Figure 4 annotation.
func (c Characterization) Report() string {
	var b strings.Builder
	b.WriteString("LENS characterization report\n")
	b.WriteString("============================\n")
	fmt.Fprintf(&b, "Read buffers (capacity / granularity):\n")
	for i, cap := range c.Buffers.ReadBufferBytes {
		g := uint64(0)
		if i < len(c.Buffers.ReadGranularity) {
			g = c.Buffers.ReadGranularity[i]
		}
		fmt.Fprintf(&b, "  L%d: %s, %s entries\n", i+1, mem.Bytes(cap), mem.Bytes(g))
	}
	fmt.Fprintf(&b, "Write queues: ")
	for i, cap := range c.Buffers.WriteBufferBytes {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s", mem.Bytes(cap))
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "Hierarchy: inclusive=%v\n", c.Buffers.InclusiveHierarchy)
	fmt.Fprintf(&b, "Wear-leveling: interval=%.0f iters, migration=%.1fus, block=%s\n",
		c.Policy.MigrationIntervalIters, c.Policy.MigrationLatencyNs/1000,
		mem.Bytes(c.Policy.MigrationBlockBytes))
	if c.Policy.InterleaveBytes > 0 {
		fmt.Fprintf(&b, "Interleaving: %s granularity\n", mem.Bytes(c.Policy.InterleaveBytes))
	} else {
		b.WriteString("Interleaving: none detected\n")
	}
	fmt.Fprintf(&b, "Bandwidth: load=%.2f GB/s store=%.2f GB/s store-nt=%.2f GB/s\n",
		c.Perf.LoadGBs, c.Perf.StoreGBs, c.Perf.StoreNTGBs)
	fmt.Fprintf(&b, "Tier read latencies (ns):")
	for _, l := range c.Perf.TierLatenciesNs {
		fmt.Fprintf(&b, " %.0f", l)
	}
	b.WriteString("\n")
	return b.String()
}
