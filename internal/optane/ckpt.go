package optane

import (
	"fmt"
	"sort"

	"repro/internal/ckpt"
	"repro/internal/sim"
)

// saveState serializes the LRU set as its keys in recency order (most
// recent first). The intrusive-list node indices are an implementation
// detail: behavior depends only on key order, so restore rebuilds the slab
// by touching the keys oldest-first.
func (s *lruSet) saveState(enc *ckpt.Enc) {
	enc.U32(uint32(len(s.idx)))
	for i := s.head; i >= 0; i = s.nodes[i].next {
		enc.U64(s.nodes[i].key)
	}
}

func (s *lruSet) loadState(dec *ckpt.Dec) error {
	n := dec.Count(8)
	if err := dec.Err(); err != nil {
		return err
	}
	if n > s.entries {
		return fmt.Errorf("%w: %d LRU entries, capacity %d", ckpt.ErrCorrupt, n, s.entries)
	}
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = dec.U64()
	}
	if err := dec.Err(); err != nil {
		return err
	}
	s.reset()
	for i := n - 1; i >= 0; i-- {
		if s.touch(keys[i]) {
			return fmt.Errorf("%w: duplicate LRU key %#x", ckpt.ErrCorrupt, keys[i])
		}
	}
	return nil
}

// SaveState serializes the reference machine: its private engine, the noise
// RNG, the serving-pipe horizon, bus direction memory, wear counters sorted
// by block, tail/activity counters, and every per-DIMM behavioral structure
// in (wpq, lsq, rmw, ait) order. Requires an idle cut (no in-flight
// requests — their completions are closures).
func (s *System) SaveState(enc *ckpt.Enc) error {
	if s.inflight != 0 {
		return fmt.Errorf("ckpt: optane reference system has %d in-flight requests; checkpoint only at an idle cut", s.inflight)
	}
	if err := s.eng.SaveState(enc); err != nil {
		return err
	}
	s.rng.SaveState(enc)
	enc.U64(uint64(s.pipeFree))
	enc.Bool(s.lastWrite)
	blocks := make([]uint64, 0, len(s.wear))
	for b := range s.wear {
		blocks = append(blocks, b)
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
	enc.U32(uint32(len(blocks)))
	for _, b := range blocks {
		enc.U64(b)
		enc.U64(s.wear[b])
	}
	enc.U64(s.Tails)
	enc.U64(s.reads)
	enc.U64(s.writes)
	enc.U32(uint32(s.cfg.DIMMs))
	for i := 0; i < s.cfg.DIMMs; i++ {
		s.wpq[i].saveState(enc)
		s.lsq[i].saveState(enc)
		s.rmw[i].saveState(enc)
		s.ait[i].saveState(enc)
	}
	return nil
}

// LoadState restores state captured by SaveState into a system built from
// the same configuration.
func (s *System) LoadState(dec *ckpt.Dec) error {
	if s.inflight != 0 {
		return fmt.Errorf("ckpt: cannot restore into an optane reference system with in-flight requests")
	}
	if err := s.eng.LoadState(dec); err != nil {
		return err
	}
	s.rng.LoadState(dec)
	s.pipeFree = sim.Cycle(dec.U64())
	s.lastWrite = dec.Bool()
	n := dec.Count(16)
	if err := dec.Err(); err != nil {
		return err
	}
	clear(s.wear)
	for i := 0; i < n; i++ {
		b := dec.U64()
		s.wear[b] = dec.U64()
	}
	s.Tails = dec.U64()
	s.reads = dec.U64()
	s.writes = dec.U64()
	nd := int(dec.U32())
	if err := dec.Err(); err != nil {
		return err
	}
	if nd != s.cfg.DIMMs {
		return fmt.Errorf("%w: snapshot has %d DIMMs, this system %d", ckpt.ErrCorrupt, nd, s.cfg.DIMMs)
	}
	for i := 0; i < s.cfg.DIMMs; i++ {
		if err := s.wpq[i].loadState(dec); err != nil {
			return err
		}
		if err := s.lsq[i].loadState(dec); err != nil {
			return err
		}
		if err := s.rmw[i].loadState(dec); err != nil {
			return err
		}
		if err := s.ait[i].loadState(dec); err != nil {
			return err
		}
	}
	return dec.Err()
}
