// Package optane is the empirical reference model of a real Optane
// DIMM-attached server: a behavioral twin whose *measured* response surface
// (from the paper's published characterization) stands in for the physical
// machine this repository cannot access. It plays the role the real server
// plays in the paper: the profiling target LENS reverse-engineers and the
// ground truth VANS is validated against.
//
// The model is deliberately behavioral, not mechanistic: small LRU
// structures reproduce the capacity/granularity effects LENS observes
// (512B/4KB write knees, 16KB/16MB read knees, 256B/4KB amplification,
// 4KB interleaving, ~14k-write wear tails), while the latency and bandwidth
// numbers at each tier are taken from the paper's figures rather than
// derived from a microarchitecture. VANS (internal/vans) is the mechanistic
// model; agreement between the two is the validation result of Section IV.
package optane

import (
	"repro/internal/dram"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Params holds the measured response surface. All latencies in ns; all
// bandwidth occupancies in ns per 64B transfer (64/occupancy = GB/s).
type Params struct {
	// Read latency tiers by resident structure (Figure 1b / 5a).
	ReadRMWNs   float64 // region fits the 16KB RMW buffer
	ReadAITNs   float64 // region fits the 16MB AIT buffer
	ReadMediaNs float64 // region exceeds the AIT buffer

	// Write latency tiers (Figure 5a store curve).
	WriteWPQNs   float64 // region fits the 512B WPQ
	WriteLSQNs   float64 // region fits the 4KB LSQ
	WriteRMWNs   float64 // region fits the RMW buffer
	WriteAITNs   float64 // region fits the AIT buffer
	WriteMediaNs float64 // beyond

	// Read amplification latency factors at sub-granularity blocks
	// (Figure 6): accessing with blocks below the structure granularity
	// costs extra transfers.
	RMWGrain uint64 // 256
	AITGrain uint64 // 4096

	// Single-thread bandwidth occupancies, 1-DIMM (Figure 1a right bars
	// rescaled to one DIMM) in ns/64B.
	OccLoad1 float64
	OccStNT1 float64
	OccSt1   float64

	// InterleaveBytes and DIMM scaling: with N interleaved DIMMs the
	// occupancies divide by min(N, OccScaleMax).
	InterleaveBytes uint64
	OccScaleMax     float64

	// Structure capacities (what LENS recovers).
	WPQBytes uint64
	LSQBytes uint64
	RMWBytes uint64
	AITBytes uint64

	// Wear-leveling tail behavior (Figure 7b/7c).
	WearBlock   uint64  // 64KB
	TailEvery   uint64  // ~14,000 writes per wear block
	TailStallNs float64 // ~55us added to the triggering write

	// RaW penalty: bus turnaround on direction switches (Figure 5c).
	TurnaroundNs float64
	// FenceBaseNs + per-dirty-entry drain models mfence + LSQ flush.
	FenceBaseNs  float64
	FenceEntryNs float64

	// NoisePct adds deterministic measurement noise (error envelopes).
	NoisePct float64
}

// DefaultParams encodes the paper's measured values.
func DefaultParams() Params {
	return Params{
		ReadRMWNs: 168, ReadAITNs: 305, ReadMediaNs: 415,
		WriteWPQNs: 92, WriteLSQNs: 155, WriteRMWNs: 250,
		WriteAITNs: 305, WriteMediaNs: 385,
		RMWGrain: 256, AITGrain: 4096,
		OccLoad1: 27, OccStNT1: 56, OccSt1: 118,
		InterleaveBytes: 4096, OccScaleMax: 4.2,
		WPQBytes: 512, LSQBytes: 4 << 10, RMWBytes: 16 << 10, AITBytes: 16 << 20,
		WearBlock: 64 << 10, TailEvery: 14000, TailStallNs: 55000,
		TurnaroundNs: 35, FenceBaseNs: 320, FenceEntryNs: 45,
		NoisePct: 2.5,
	}
}

// Config configures a reference system instance.
type Config struct {
	Params      Params
	DIMMs       int
	Interleaved bool
	Seed        uint64

	// Obs, when set, registers the reference model's counters with the
	// observability registry and enables hook emission. Runtime-only.
	Obs *obs.Obs `json:"-"`
}

// DefaultConfig is the 1-DIMM non-interleaved App Direct setup LENS
// profiles.
func DefaultConfig() Config {
	return Config{Params: DefaultParams(), DIMMs: 1, Seed: 1}
}

// lruSet is a behavioral capacity tracker: an LRU set of block addresses.
// Recency is an intrusive doubly-linked list over a preallocated node slab,
// so refreshes and evictions are O(1). The victim is always the list tail,
// which matches the former timestamp-scan implementation exactly (ticks were
// unique, so least-tick == least-recently-touched).
type lruSet struct {
	idx     map[uint64]int32
	nodes   []lruNode
	used    int32 // nodes handed out so far
	head    int32 // most recently used, -1 when empty
	tail    int32 // least recently used, -1 when empty
	entries int
	grain   uint64
}

type lruNode struct {
	key        uint64
	prev, next int32
}

func newLRUSet(capacity, grain uint64) *lruSet {
	n := int(capacity / grain)
	if n < 1 {
		n = 1
	}
	return &lruSet{
		idx:     make(map[uint64]int32, n),
		nodes:   make([]lruNode, n),
		head:    -1,
		tail:    -1,
		entries: n,
		grain:   grain,
	}
}

func (s *lruSet) key(addr uint64) uint64 { return addr - addr%s.grain }

func (s *lruSet) size() int { return len(s.idx) }

// reset drops all entries (fence drain) without releasing the node slab.
func (s *lruSet) reset() {
	clear(s.idx)
	s.used = 0
	s.head, s.tail = -1, -1
}

func (s *lruSet) unlink(i int32) {
	n := &s.nodes[i]
	if n.prev >= 0 {
		s.nodes[n.prev].next = n.next
	} else {
		s.head = n.next
	}
	if n.next >= 0 {
		s.nodes[n.next].prev = n.prev
	} else {
		s.tail = n.prev
	}
}

func (s *lruSet) pushFront(i int32) {
	n := &s.nodes[i]
	n.prev, n.next = -1, s.head
	if s.head >= 0 {
		s.nodes[s.head].prev = i
	}
	s.head = i
	if s.tail < 0 {
		s.tail = i
	}
}

// touch inserts/refreshes the block containing addr; reports prior presence.
func (s *lruSet) touch(addr uint64) bool {
	k := s.key(addr)
	if i, ok := s.idx[k]; ok {
		if s.head != i {
			s.unlink(i)
			s.pushFront(i)
		}
		return true
	}
	var i int32
	if len(s.idx) >= s.entries {
		i = s.tail
		delete(s.idx, s.nodes[i].key)
		s.unlink(i)
	} else {
		i = s.used
		s.used++
	}
	s.nodes[i].key = k
	s.idx[k] = i
	s.pushFront(i)
	return false
}

func (s *lruSet) contains(addr uint64) bool {
	_, ok := s.idx[s.key(addr)]
	return ok
}

// System is the reference machine; it implements mem.System.
type System struct {
	eng *sim.Engine
	cfg Config
	p   Params
	rng *sim.RNG

	// Behavioral structures per DIMM.
	wpq []*lruSet
	lsq []*lruSet
	rmw []*lruSet
	ait []*lruSet

	// pipeFree is the aggregated serving pipe: per-op occupancy divided by
	// the interleave scaling models the combined DIMM bandwidth.
	pipeFree sim.Cycle

	// wear counts writes per 64KB block (global address space).
	wear map[uint64]uint64

	// lastWrite drives bus turnaround penalties.
	lastWrite bool

	inflight int

	// Tails records injected tail events (iteration analysis).
	Tails uint64

	reads  uint64
	writes uint64

	o    *obs.Obs
	comp string
}

// New builds a reference system.
func New(cfg Config) *System {
	if cfg.DIMMs == 0 {
		cfg.DIMMs = 1
	}
	if cfg.Params.RMWGrain == 0 {
		cfg.Params = DefaultParams()
	}
	s := &System{
		eng:  sim.NewEngine(),
		cfg:  cfg,
		p:    cfg.Params,
		rng:  sim.NewRNG(cfg.Seed ^ 0x9e3779b9),
		wear: make(map[uint64]uint64),
	}
	for i := 0; i < cfg.DIMMs; i++ {
		s.wpq = append(s.wpq, newLRUSet(s.p.WPQBytes, 64))
		s.lsq = append(s.lsq, newLRUSet(s.p.LSQBytes, 64))
		s.rmw = append(s.rmw, newLRUSet(s.p.RMWBytes, s.p.RMWGrain))
		s.ait = append(s.ait, newLRUSet(s.p.AITBytes, s.p.AITGrain))
	}
	if cfg.Obs != nil {
		o := cfg.Obs.Child()
		o.AdoptEngine(s.eng)
		s.o = o
		s.comp = "optane"
		o.RegisterPtr(s.comp, "reads", &s.reads)
		o.RegisterPtr(s.comp, "writes", &s.writes)
		o.RegisterPtr(s.comp, "tails", &s.Tails)
	}
	return s
}

// Engine implements mem.System.
func (s *System) Engine() *sim.Engine { return s.eng }

// CyclesPerNano implements mem.System.
func (s *System) CyclesPerNano() float64 { return dram.CyclesPerNano }

// Drained implements mem.System.
func (s *System) Drained() bool { return s.inflight == 0 }

// Config returns the instance configuration.
func (s *System) Config() Config { return s.cfg }

// dimm routes an address to a DIMM index and local address.
func (s *System) dimm(addr uint64) (int, uint64) {
	n := uint64(s.cfg.DIMMs)
	if n <= 1 || !s.cfg.Interleaved {
		return 0, addr
	}
	g := s.p.InterleaveBytes
	span := addr / g
	return int(span % n), (span/n)*g + addr%g
}

// noise applies deterministic +-NoisePct jitter.
func (s *System) noise(ns float64) float64 {
	if s.p.NoisePct <= 0 {
		return ns
	}
	f := 1 + (s.rng.Float64()*2-1)*s.p.NoisePct/100
	return ns * f
}

// occScale returns the bandwidth scaling for the interleave configuration.
func (s *System) occScale() float64 {
	if !s.cfg.Interleaved || s.cfg.DIMMs <= 1 {
		return 1
	}
	n := float64(s.cfg.DIMMs)
	if n > s.p.OccScaleMax {
		n = s.p.OccScaleMax
	}
	return n
}

// readLatency classifies a read against the behavioral structures.
func (s *System) readLatency(di int, local uint64) float64 {
	switch {
	case s.lsq[di].contains(local) || s.wpq[di].contains(local):
		// Data fast-forward from pending writes.
		lat := s.p.ReadRMWNs * 0.9
		return lat
	case s.rmw[di].contains(local):
		return s.p.ReadRMWNs
	case s.ait[di].contains(local):
		return s.p.ReadAITNs
	default:
		return s.p.ReadMediaNs
	}
}

// writeLatency classifies a store completion (ADR-posted semantics: the
// structure pressure shows up as acceptance latency).
func (s *System) writeLatency(di int, local uint64) float64 {
	switch {
	case s.wpq[di].contains(local):
		return s.p.WriteWPQNs
	case s.lsq[di].contains(local):
		return s.p.WriteLSQNs
	case s.rmw[di].contains(local):
		return s.p.WriteRMWNs
	case s.ait[di].contains(local):
		return s.p.WriteAITNs
	default:
		return s.p.WriteMediaNs
	}
}

// Submit implements mem.System.
func (s *System) Submit(r *mem.Request) bool {
	now := s.eng.Now()
	r.Issued = now
	di, local := s.dimm(r.Addr)
	var latNs, occNs float64
	isWrite := false

	switch r.Op {
	case mem.OpRead:
		s.reads++
		latNs = s.readLatency(di, local)
		occNs = s.p.OccLoad1 / s.occScale()
		s.rmw[di].touch(local)
		s.ait[di].touch(local)
	case mem.OpWriteNT, mem.OpWrite, mem.OpClwb:
		s.writes++
		isWrite = true
		latNs = s.writeLatency(di, local)
		if r.Op == mem.OpWriteNT {
			occNs = s.p.OccStNT1 / s.occScale()
		} else {
			occNs = s.p.OccSt1 / s.occScale()
		}
		s.wpq[di].touch(local)
		s.lsq[di].touch(local)
		s.rmw[di].touch(local)
		s.ait[di].touch(local)
		latNs += s.tailNs(r.Addr)
	case mem.OpFence:
		// mfence: fixed on-core cost plus draining pending structures.
		entries := s.wpq[di].size() + s.lsq[di].size()
		latNs = s.p.FenceBaseNs + float64(entries)*s.p.FenceEntryNs
		for i := range s.wpq {
			s.wpq[i].reset()
			s.lsq[i].reset()
		}
		occNs = 0
	default:
		return false
	}

	// Bus turnaround on direction switches (drives the RaW penalty).
	if r.Op != mem.OpFence && s.lastWrite != isWrite {
		latNs += s.p.TurnaroundNs
		s.lastWrite = isWrite
	}

	latNs = s.noise(latNs)
	lat := dram.NsToCycles(latNs)
	occ := dram.NsToCycles(occNs)

	// Throughput semantics: an aggregated serving pipe with per-op
	// occupancy scaled by the interleave configuration.
	start := now
	if s.pipeFree > start {
		start = s.pipeFree
	}
	s.pipeFree = start + occ
	done := start + lat
	if done <= now {
		done = now + 1
	}
	s.inflight++
	if s.o.Active() {
		s.o.Emit(obs.Event{Now: now, Stage: obs.StageRequest, Pos: obs.PosIssue,
			Write: isWrite, Comp: s.comp, Addr: r.Addr, Arg: uint64(done - now)})
	}
	s.eng.Schedule(done, func() {
		s.inflight--
		if s.o.Active() {
			s.o.Emit(obs.Event{Now: s.eng.Now(), Stage: obs.StageRequest, Pos: obs.PosComplete,
				Write: isWrite, Comp: s.comp, Addr: r.Addr})
		}
		r.Complete(s.eng.Now())
	})
	return true
}

// tailNs injects the wear-leveling tail on every TailEvery-th write to a
// 64KB wear block.
func (s *System) tailNs(addr uint64) float64 {
	blk := addr - addr%s.p.WearBlock
	s.wear[blk]++
	if s.wear[blk] >= s.p.TailEvery {
		s.wear[blk] = 0
		s.Tails++
		if s.o.Active() {
			s.o.Emit(obs.Event{Now: s.eng.Now(), Stage: obs.StageWear, Pos: obs.PosMigrate,
				Write: true, Comp: s.comp, Addr: blk,
				Arg: uint64(dram.NsToCycles(s.p.TailStallNs))})
		}
		return s.p.TailStallNs
	}
	return 0
}

// AmplificationScore returns the measured-style read amplification score for
// a PC-Block of blockSize against a structure of grain granularity: the
// latency ratio of overflow to fit cases (drops to 1 at blockSize >= grain),
// mirroring how LENS derives the score without hardware counters.
func AmplificationScore(blockSize, grain uint64, overflowNs, fitNs float64) float64 {
	if blockSize >= grain {
		return 1
	}
	frac := float64(grain-blockSize) / float64(grain)
	return 1 + (overflowNs/fitNs-1)*frac
}
