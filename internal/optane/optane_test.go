package optane

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/sim"
)

// chase runs a steady-state pointer-chasing read pass over region bytes and
// returns the average latency per access in ns.
func chase(t *testing.T, s *System, region uint64, passes int) float64 {
	t.Helper()
	d := mem.NewDriver(s)
	blocks := int(region / 64)
	rng := sim.NewRNG(5)
	perm := rng.PermCycle(blocks)
	steps := blocks
	if steps > 20000 {
		steps = 20000
	}
	var accs []mem.Access
	at := 0
	for i := 0; i < passes*steps; i++ {
		accs = append(accs, mem.Access{Op: mem.OpRead, Addr: uint64(at) * 64, Size: 64})
		at = perm[at]
	}
	lats := d.RunChain(accs)
	half := len(lats) / 2
	var sum float64
	for _, l := range lats[half:] {
		sum += mem.ToNs(s, l)
	}
	return sum / float64(len(lats)-half)
}

func TestReadLatencyThreeSegments(t *testing.T) {
	p := DefaultParams()
	small := chase(t, New(DefaultConfig()), 4<<10, 2)  // fits RMW (16KB)
	mid := chase(t, New(DefaultConfig()), 256<<10, 2)  // fits AIT (16MB)
	large := chase(t, New(DefaultConfig()), 64<<20, 1) // exceeds AIT
	if !(small < mid && mid < large) {
		t.Fatalf("segments not increasing: %.0f %.0f %.0f", small, mid, large)
	}
	within := func(got, want float64) bool { return got > want*0.85 && got < want*1.15 }
	if !within(small, p.ReadRMWNs) {
		t.Fatalf("small-region latency %.0f, want ~%.0f", small, p.ReadRMWNs)
	}
	if !within(mid, p.ReadAITNs) {
		t.Fatalf("mid-region latency %.0f, want ~%.0f", mid, p.ReadAITNs)
	}
	if !within(large, p.ReadMediaNs) {
		t.Fatalf("large-region latency %.0f, want ~%.0f", large, p.ReadMediaNs)
	}
}

func TestWriteKnees(t *testing.T) {
	run := func(region uint64) float64 {
		s := New(DefaultConfig())
		d := mem.NewDriver(s)
		var accs []mem.Access
		for i := 0; i < 2000; i++ {
			accs = append(accs, mem.Access{Op: mem.OpWriteNT, Addr: uint64(i) * 64 % region, Size: 64})
		}
		res := d.RunChainTimed(accs)
		return mem.ToNs(s, res.TotalCycles) / float64(len(accs))
	}
	tiny := run(256)     // fits WPQ
	smal := run(2 << 10) // fits LSQ
	med := run(8 << 10)  // fits RMW
	big := run(8 << 20)  // fits AIT only
	if !(tiny < smal && smal < med && med < big) {
		t.Fatalf("write knees not increasing: %.0f %.0f %.0f %.0f", tiny, smal, med, big)
	}
}

func TestBandwidthOrderingOptane(t *testing.T) {
	// Real Optane: load > store-nt > store (Figure 1a).
	bw := func(op mem.Op) float64 {
		s := New(Config{Params: DefaultParams(), DIMMs: 6, Interleaved: true, Seed: 2})
		d := mem.NewDriver(s)
		n := 8192
		accs := make([]mem.Access, n)
		for i := range accs {
			accs[i] = mem.Access{Op: op, Addr: uint64(i) * 64, Size: 64}
		}
		elapsed := d.RunWindow(accs, 10)
		return mem.BandwidthGBs(s, uint64(n)*64, elapsed)
	}
	load := bw(mem.OpRead)
	nt := bw(mem.OpWriteNT)
	st := bw(mem.OpWrite)
	if !(load > nt && nt > st) {
		t.Fatalf("bandwidth ordering wrong: load=%.1f nt=%.1f st=%.1f", load, nt, st)
	}
}

func TestInterleavingIncreasesBandwidth(t *testing.T) {
	bw := func(cfg Config) float64 {
		s := New(cfg)
		d := mem.NewDriver(s)
		n := 4096
		accs := make([]mem.Access, n)
		for i := range accs {
			accs[i] = mem.Access{Op: mem.OpRead, Addr: uint64(i) * 64, Size: 64}
		}
		elapsed := d.RunWindow(accs, 64)
		return mem.BandwidthGBs(s, uint64(n)*64, elapsed)
	}
	one := bw(DefaultConfig())
	six := bw(Config{Params: DefaultParams(), DIMMs: 6, Interleaved: true, Seed: 1})
	if six <= one*1.5 {
		t.Fatalf("6-DIMM bandwidth (%.1f) not well above 1-DIMM (%.1f)", six, one)
	}
}

func TestWearTailInjection(t *testing.T) {
	p := DefaultParams()
	p.TailEvery = 50
	p.NoisePct = 0
	s := New(Config{Params: p, DIMMs: 1, Seed: 3})
	d := mem.NewDriver(s)
	var maxLat, sum sim.Cycle
	n := 200
	for i := 0; i < n; i++ {
		lat := d.RunChain([]mem.Access{{Op: mem.OpWriteNT, Addr: 4096, Size: 64}})[0]
		sum += lat
		if lat > maxLat {
			maxLat = lat
		}
	}
	if s.Tails == 0 {
		t.Fatal("no tails injected")
	}
	avg := float64(sum) / float64(n)
	if float64(maxLat) < 20*avg {
		t.Fatalf("tail (%d) not >> average (%.0f)", maxLat, avg)
	}
	if s.Tails != uint64(n)/50 {
		t.Fatalf("tails = %d, want %d", s.Tails, n/50)
	}
}

func TestFenceScalesWithPending(t *testing.T) {
	s := New(DefaultConfig())
	d := mem.NewDriver(s)
	empty := d.Fence()
	for i := 0; i < 16; i++ {
		d.RunChain([]mem.Access{{Op: mem.OpWriteNT, Addr: uint64(i) * 64, Size: 64}})
	}
	loaded := d.Fence()
	if loaded <= empty {
		t.Fatalf("fence with pending writes (%d) not slower than empty (%d)", loaded, empty)
	}
}

func TestAmplificationScoreShape(t *testing.T) {
	// Score decreases toward 1 as the PC-Block approaches the granularity.
	prev := 1e9
	for _, bs := range []uint64{64, 128, 256} {
		sc := AmplificationScore(bs, 256, 415, 168)
		if sc > prev {
			t.Fatalf("score not decreasing at %d", bs)
		}
		prev = sc
	}
	if got := AmplificationScore(256, 256, 415, 168); got != 1 {
		t.Fatalf("score at granularity = %v, want 1", got)
	}
	if got := AmplificationScore(4096, 256, 415, 168); got != 1 {
		t.Fatalf("score above granularity = %v, want 1", got)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() float64 {
		return chase(t, New(DefaultConfig()), 32<<10, 1)
	}
	if run() != run() {
		t.Fatal("reference model not deterministic")
	}
}
