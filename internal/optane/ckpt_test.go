package optane

import (
	"testing"

	"repro/internal/ckpt"
	"repro/internal/mem"
)

// drive issues a deterministic mixed read/write stream and returns per-access
// completion cycles.
func drive(s *System, from, to int) []uint64 {
	var lats []uint64
	for i := from; i < to; i++ {
		addr := uint64(i%977) * 64
		op := mem.OpRead
		if i%3 == 0 {
			op = mem.OpWrite
		}
		if i%251 == 250 {
			op = mem.OpFence
		}
		r := &mem.Request{Addr: addr, Size: 64, Op: op}
		r.OnDone = func(rq *mem.Request) { lats = append(lats, uint64(rq.Done)) }
		if !s.Submit(r) {
			panic("submit rejected")
		}
		s.eng.Run()
	}
	return lats
}

// TestSystemCheckpointRoundTrip: run half the stream, snapshot at idle,
// restore into a fresh system, and require the remaining completions to be
// byte-identical to an uninterrupted run.
func TestSystemCheckpointRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DIMMs = 2
	cfg.Interleaved = true

	straight := New(cfg)
	want := drive(straight, 0, 4000)

	s1 := New(cfg)
	prefix := drive(s1, 0, 2000)
	var enc ckpt.Enc
	if err := s1.SaveState(&enc); err != nil {
		t.Fatalf("SaveState: %v", err)
	}

	s2 := New(cfg)
	if err := s2.LoadState(ckpt.NewDec(enc.Bytes())); err != nil {
		t.Fatalf("LoadState: %v", err)
	}
	got := append(prefix, drive(s2, 2000, 4000)...)

	if len(got) != len(want) {
		t.Fatalf("resumed run completed %d accesses, straight %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("access %d completed at cycle %d resumed, %d straight", i, got[i], want[i])
		}
	}
	if s2.eng.Now() != straight.eng.Now() || s2.Tails != straight.Tails {
		t.Fatalf("final state diverged: now %d vs %d, tails %d vs %d",
			s2.eng.Now(), straight.eng.Now(), s2.Tails, straight.Tails)
	}
}

// TestSystemCheckpointGeometryMismatch: a snapshot from a different DIMM
// count is a typed corrupt error, not a panic.
func TestSystemCheckpointGeometryMismatch(t *testing.T) {
	cfg := DefaultConfig()
	s1 := New(cfg)
	drive(s1, 0, 100)
	var enc ckpt.Enc
	if err := s1.SaveState(&enc); err != nil {
		t.Fatalf("SaveState: %v", err)
	}
	cfg2 := cfg
	cfg2.DIMMs = 2
	s2 := New(cfg2)
	if err := s2.LoadState(ckpt.NewDec(enc.Bytes())); err == nil {
		t.Fatal("LoadState accepted a snapshot with mismatched DIMM count")
	}
}
