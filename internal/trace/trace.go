// Package trace defines the memory trace format used to drive the simulators
// in "trace mode" (the way the paper feeds LENS-captured traces into VANS),
// with both a human-readable text codec and a compact binary codec.
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/mem"
	"repro/internal/sim"
)

// Record is one trace entry: an operation at a cycle timestamp. Cycle is the
// earliest cycle the request may issue (0 = as fast as possible).
type Record struct {
	Cycle sim.Cycle
	Op    mem.Op
	Addr  uint64
	Size  uint32
}

// Access converts the record to a driver access (dropping the timestamp).
func (r Record) Access() mem.Access {
	return mem.Access{Op: r.Op, Addr: r.Addr, Size: r.Size}
}

// String renders the record in the text format: "<cycle> <op> <hexaddr> <size>".
func (r Record) String() string {
	return fmt.Sprintf("%d %s 0x%x %d", r.Cycle, r.Op, r.Addr, r.Size)
}

var opByName = map[string]mem.Op{
	"load": mem.OpRead, "store": mem.OpWrite, "store-nt": mem.OpWriteNT,
	"clwb": mem.OpClwb, "mfence": mem.OpFence,
	// Aliases accepted on input for convenience.
	"read": mem.OpRead, "write": mem.OpWrite, "r": mem.OpRead, "w": mem.OpWrite,
}

// ParseRecord parses one text-format line. Blank lines and lines starting
// with '#' yield ok=false with a nil error.
func ParseRecord(line string) (rec Record, ok bool, err error) {
	line = strings.TrimSpace(line)
	if line == "" || strings.HasPrefix(line, "#") {
		return Record{}, false, nil
	}
	fields := strings.Fields(line)
	if len(fields) != 4 {
		return Record{}, false, fmt.Errorf("trace: want 4 fields, got %d in %q", len(fields), line)
	}
	cyc, err := strconv.ParseUint(fields[0], 10, 64)
	if err != nil {
		return Record{}, false, fmt.Errorf("trace: bad cycle %q: %v", fields[0], err)
	}
	op, okOp := opByName[fields[1]]
	if !okOp {
		return Record{}, false, fmt.Errorf("trace: unknown op %q", fields[1])
	}
	addr, err := strconv.ParseUint(strings.TrimPrefix(fields[2], "0x"), 16, 64)
	if err != nil {
		return Record{}, false, fmt.Errorf("trace: bad addr %q: %v", fields[2], err)
	}
	size, err := strconv.ParseUint(fields[3], 10, 32)
	if err != nil {
		return Record{}, false, fmt.Errorf("trace: bad size %q: %v", fields[3], err)
	}
	return Record{Cycle: sim.Cycle(cyc), Op: op, Addr: addr, Size: uint32(size)}, true, nil
}

// Writer emits records in text format.
type Writer struct {
	w   *bufio.Writer
	err error
}

// NewWriter returns a text-format trace writer.
func NewWriter(w io.Writer) *Writer { return &Writer{w: bufio.NewWriter(w)} }

// Write appends one record.
func (tw *Writer) Write(rec Record) error {
	if tw.err != nil {
		return tw.err
	}
	_, tw.err = fmt.Fprintln(tw.w, rec.String())
	return tw.err
}

// Flush flushes buffered output.
func (tw *Writer) Flush() error {
	if tw.err != nil {
		return tw.err
	}
	return tw.w.Flush()
}

// Reader parses text-format records.
type Reader struct {
	s    *bufio.Scanner
	line int
}

// NewReader returns a text-format trace reader.
func NewReader(r io.Reader) *Reader {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 0, 64<<10), 1<<20)
	return &Reader{s: s}
}

// Read returns the next record, or io.EOF when the trace is exhausted.
func (tr *Reader) Read() (Record, error) {
	for tr.s.Scan() {
		tr.line++
		rec, ok, err := ParseRecord(tr.s.Text())
		if err != nil {
			return Record{}, fmt.Errorf("line %d: %w", tr.line, err)
		}
		if ok {
			return rec, nil
		}
	}
	if err := tr.s.Err(); err != nil {
		return Record{}, err
	}
	return Record{}, io.EOF
}

// ReadAccesses parses an entire text-format trace from r into driver
// accesses, dropping timestamps. This is the common replay entry point of
// cmd/vans and nvmserved inline-trace jobs.
func ReadAccesses(r io.Reader) ([]mem.Access, error) {
	recs, err := NewReader(r).ReadAll()
	if err != nil {
		return nil, err
	}
	accs := make([]mem.Access, len(recs))
	for i, rec := range recs {
		accs[i] = rec.Access()
	}
	return accs, nil
}

// ReadAll collects every remaining record.
func (tr *Reader) ReadAll() ([]Record, error) {
	var recs []Record
	for {
		rec, err := tr.Read()
		if err == io.EOF {
			return recs, nil
		}
		if err != nil {
			return recs, err
		}
		recs = append(recs, rec)
	}
}

// binaryMagic guards the binary format against accidental text input.
var binaryMagic = [4]byte{'V', 'T', 'R', '1'}

// WriteBinary encodes records in the compact varint format.
func WriteBinary(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	put := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := put(uint64(len(recs))); err != nil {
		return err
	}
	var prevCycle sim.Cycle
	for _, r := range recs {
		// Delta-encode cycles: traces are time-sorted in practice, so
		// deltas are small. Non-monotonic inputs still round-trip (delta
		// stored as zig-zag).
		delta := int64(r.Cycle) - int64(prevCycle)
		prevCycle = r.Cycle
		zz := uint64(delta<<1) ^ uint64(delta>>63)
		if err := put(zz); err != nil {
			return err
		}
		if err := put(uint64(r.Op)); err != nil {
			return err
		}
		if err := put(r.Addr); err != nil {
			return err
		}
		if err := put(uint64(r.Size)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary decodes a trace produced by WriteBinary.
func ReadBinary(r io.Reader) ([]Record, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic[:])
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading count: %w", err)
	}
	const maxRecords = 1 << 30
	if n > maxRecords {
		return nil, fmt.Errorf("trace: record count %d exceeds limit", n)
	}
	recs := make([]Record, 0, n)
	var prevCycle int64
	for i := uint64(0); i < n; i++ {
		zz, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: record %d cycle: %w", i, err)
		}
		delta := int64(zz>>1) ^ -int64(zz&1)
		prevCycle += delta
		op, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: record %d op: %w", i, err)
		}
		addr, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: record %d addr: %w", i, err)
		}
		size, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: record %d size: %w", i, err)
		}
		recs = append(recs, Record{
			Cycle: sim.Cycle(prevCycle), Op: mem.Op(op), Addr: addr, Size: uint32(size)})
	}
	return recs, nil
}

// Collector is a sink that records every request submitted through it; it
// wraps a System so workloads can be traced transparently.
type Collector struct {
	Records []Record
	inner   mem.System
}

// NewCollector wraps sys, capturing each submitted request.
func NewCollector(sys mem.System) *Collector { return &Collector{inner: sys} }

// Engine implements mem.System.
func (c *Collector) Engine() *sim.Engine { return c.inner.Engine() }

// CyclesPerNano implements mem.System.
func (c *Collector) CyclesPerNano() float64 { return c.inner.CyclesPerNano() }

// Drained implements mem.System.
func (c *Collector) Drained() bool { return c.inner.Drained() }

// Submit records the request if accepted by the wrapped system.
func (c *Collector) Submit(r *mem.Request) bool {
	if !c.inner.Submit(r) {
		return false
	}
	c.Records = append(c.Records, Record{
		Cycle: c.inner.Engine().Now(), Op: r.Op, Addr: r.Addr, Size: r.Size})
	return true
}
