package trace

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/sim"
)

func sampleRecords() []Record {
	return []Record{
		{Cycle: 0, Op: mem.OpRead, Addr: 0x1000, Size: 64},
		{Cycle: 10, Op: mem.OpWrite, Addr: 0x2040, Size: 64},
		{Cycle: 12, Op: mem.OpWriteNT, Addr: 0xdeadbeef, Size: 64},
		{Cycle: 90, Op: mem.OpClwb, Addr: 0x2040, Size: 64},
		{Cycle: 91, Op: mem.OpFence, Addr: 0, Size: 0},
	}
}

func TestTextRoundTrip(t *testing.T) {
	recs := sampleRecords()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("got %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d: got %+v, want %+v", i, got[i], recs[i])
		}
	}
}

func TestParseRecordSkipsCommentsAndBlanks(t *testing.T) {
	for _, line := range []string{"", "   ", "# comment", "#"} {
		_, ok, err := ParseRecord(line)
		if ok || err != nil {
			t.Fatalf("ParseRecord(%q) = ok=%v err=%v", line, ok, err)
		}
	}
}

func TestParseRecordAliases(t *testing.T) {
	rec, ok, err := ParseRecord("5 read 0x40 64")
	if err != nil || !ok {
		t.Fatal(err)
	}
	if rec.Op != mem.OpRead {
		t.Fatalf("alias read -> %v", rec.Op)
	}
	rec, _, err = ParseRecord("5 w 40 64") // hex without 0x prefix
	if err != nil {
		t.Fatal(err)
	}
	if rec.Addr != 0x40 || rec.Op != mem.OpWrite {
		t.Fatalf("got %+v", rec)
	}
}

func TestParseRecordErrors(t *testing.T) {
	bad := []string{
		"1 load 0x40",            // too few fields
		"x load 0x40 64",         // bad cycle
		"1 bogus 0x40 64",        // bad op
		"1 load 0xzz 64",         // bad addr
		"1 load 0x40 notanumber", // bad size
	}
	for _, line := range bad {
		if _, _, err := ParseRecord(line); err == nil {
			t.Errorf("ParseRecord(%q) succeeded, want error", line)
		}
	}
}

func TestReaderReportsLineNumber(t *testing.T) {
	r := NewReader(strings.NewReader("0 load 0x0 64\nbogus line here x\n"))
	if _, err := r.Read(); err != nil {
		t.Fatal(err)
	}
	_, err := r.Read()
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v, want line 2 context", err)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	recs := sampleRecords()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("got %d records", len(got))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], recs[i])
		}
	}
}

func TestBinaryRejectsBadMagic(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("nope"))); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := ReadBinary(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestBinaryTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, sampleRecords()); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-3]
	if _, err := ReadBinary(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated trace accepted")
	}
}

// Property: binary codec round-trips arbitrary records, including
// non-monotone cycles.
func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(cycles []uint32, addrs []uint64, seed uint64) bool {
		n := len(cycles)
		if len(addrs) < n {
			n = len(addrs)
		}
		rng := sim.NewRNG(seed)
		recs := make([]Record, n)
		for i := 0; i < n; i++ {
			recs[i] = Record{
				Cycle: sim.Cycle(cycles[i]),
				Op:    mem.Op(rng.Intn(5)),
				Addr:  addrs[i],
				Size:  uint32(rng.Intn(256)),
			}
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, recs); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil || len(got) != len(recs) {
			return false
		}
		for i := range recs {
			if got[i] != recs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// chanSystem is a trivial always-accept system for Collector tests.
type chanSystem struct{ eng *sim.Engine }

func (c *chanSystem) Engine() *sim.Engine    { return c.eng }
func (c *chanSystem) CyclesPerNano() float64 { return 1 }
func (c *chanSystem) Drained() bool          { return true }
func (c *chanSystem) Submit(r *mem.Request) bool {
	r.Issued = c.eng.Now()
	c.eng.After(1, func() { r.Complete(c.eng.Now()) })
	return true
}

func TestCollectorRecords(t *testing.T) {
	inner := &chanSystem{eng: sim.NewEngine()}
	col := NewCollector(inner)
	d := mem.NewDriver(col)
	d.RunChain([]mem.Access{
		{Op: mem.OpRead, Addr: 0x40, Size: 64},
		{Op: mem.OpWrite, Addr: 0x80, Size: 64},
	})
	if len(col.Records) != 2 {
		t.Fatalf("collected %d records, want 2", len(col.Records))
	}
	if col.Records[0].Op != mem.OpRead || col.Records[0].Addr != 0x40 {
		t.Fatalf("record 0 = %+v", col.Records[0])
	}
	if col.Records[1].Cycle <= col.Records[0].Cycle {
		t.Fatal("collector timestamps not increasing for chained accesses")
	}
}

func TestRecordAccess(t *testing.T) {
	r := Record{Cycle: 9, Op: mem.OpWrite, Addr: 0x100, Size: 64}
	a := r.Access()
	if a.Op != mem.OpWrite || a.Addr != 0x100 || a.Size != 64 {
		t.Fatalf("Access = %+v", a)
	}
}

func TestReadAllEOFOnEmpty(t *testing.T) {
	recs, err := NewReader(strings.NewReader("# only a comment\n")).ReadAll()
	if err != nil || len(recs) != 0 {
		t.Fatalf("ReadAll = %v, %v", recs, err)
	}
	_, err = NewReader(strings.NewReader("")).Read()
	if err != io.EOF {
		t.Fatalf("Read on empty = %v, want EOF", err)
	}
}
