package bottleneck

import (
	"bytes"
	"testing"

	"repro/internal/obs"
)

// mkDump assembles a synthetic observability dump from flat name->value maps,
// appending entries in the given order (callers pass literal slices so the
// order is fixed).
func mkDump(counters []obs.CounterDump, hists []obs.HistogramDump) *obs.Dump {
	return &obs.Dump{Counters: counters, Histograms: hists}
}

func TestAnalyzeNilAndEmpty(t *testing.T) {
	if v := Analyze(nil); v != nil {
		t.Fatalf("Analyze(nil) = %+v, want nil", v)
	}
	if v := Analyze(&obs.Dump{}); v != nil {
		t.Fatalf("Analyze(empty) = %+v, want nil", v)
	}
	// Counters without any stage-timing histograms still attribute nothing.
	d := mkDump([]obs.CounterDump{{Name: "dimm0/client_reads", Value: 10}}, nil)
	if v := Analyze(d); v != nil {
		t.Fatalf("Analyze(counters only) = %+v, want nil", v)
	}
}

func TestRegimeRMWCombine(t *testing.T) {
	// Write-dominated with most combine groups partial: the RMW rule must win
	// even though queue share also clears its threshold (RMW tests first).
	d := mkDump(
		[]obs.CounterDump{
			{Name: "dimm0/client_writes", Value: 100},
			{Name: "dimm0/rmw_partials", Value: 80},
		},
		[]obs.HistogramDump{
			{Name: "imc0/wpq_wait_ns", Sum: 30_000, Count: 100},
			{Name: "dimm0/ait_ns", Sum: 20_000, Count: 100},
			{Name: "dimm0/media/write_ns", Sum: 50_000, Count: 100},
		},
	)
	v := Analyze(d)
	if v == nil || v.Regime != RegimeRMW {
		t.Fatalf("regime = %+v, want %s", v, RegimeRMW)
	}
	if v.DominantStage != "media" {
		t.Fatalf("dominant stage = %q, want media", v.DominantStage)
	}
}

func TestRegimeMediaBandwidth(t *testing.T) {
	// Read stream hitting the AIT but saturating the media: no write or miss
	// rule fires, media busy share carries the verdict.
	d := mkDump(
		[]obs.CounterDump{
			{Name: "dimm0/client_reads", Value: 1000},
			{Name: "dimm0/ait_hits", Value: 900},
			{Name: "dimm0/ait_line_misses", Value: 100},
		},
		[]obs.HistogramDump{
			{Name: "dimm0/ait_ns", Sum: 20_000, Count: 1000},
			{Name: "dimm0/media/read_ns", Sum: 70_000, Count: 1000},
			{Name: "dimm0/dram/access_ns", Sum: 10_000, Count: 1000},
		},
	)
	v := Analyze(d)
	if v == nil || v.Regime != RegimeMedia {
		t.Fatalf("regime = %+v, want %s", v, RegimeMedia)
	}
}

func TestRegimeBalanced(t *testing.T) {
	// Nothing clears a threshold: mixed traffic, healthy AIT, idle wear.
	d := mkDump(
		[]obs.CounterDump{
			{Name: "dimm0/client_reads", Value: 500},
			{Name: "dimm0/client_writes", Value: 500},
			{Name: "dimm0/ait_hits", Value: 900},
			{Name: "dimm0/ait_line_misses", Value: 100},
		},
		[]obs.HistogramDump{
			{Name: "imc0/wpq_wait_ns", Sum: 10_000, Count: 500},
			{Name: "dimm0/ait_ns", Sum: 40_000, Count: 1000},
			{Name: "dimm0/media/read_ns", Sum: 20_000, Count: 500},
			{Name: "dimm0/media/write_ns", Sum: 15_000, Count: 500},
			{Name: "dimm0/dram/access_ns", Sum: 15_000, Count: 1000},
		},
	)
	v := Analyze(d)
	if v == nil || v.Regime != RegimeBalanced {
		t.Fatalf("regime = %+v, want %s", v, RegimeBalanced)
	}
	if v.DominantStage != "ait" {
		t.Fatalf("dominant stage = %q, want ait", v.DominantStage)
	}
}

func TestSuffixMatchingIsAnchored(t *testing.T) {
	// "wpq_wait_ns" must not swallow "ait_ns"-suffixed names and vice versa:
	// the matcher anchors on the component separator.
	d := mkDump(nil, []obs.HistogramDump{
		{Name: "dimm0/ait_ns", Sum: 100, Count: 1},
		{Name: "imc0/wpq_wait_ns", Sum: 900, Count: 1},
	})
	v := Analyze(d)
	if v == nil {
		t.Fatal("no verdict")
	}
	var ait, wpq uint64
	for _, a := range v.Attribution {
		switch a.Stage {
		case "ait":
			ait = a.TimeNs
		case "wpq":
			wpq = a.TimeNs
		}
	}
	if ait != 100 || wpq != 900 {
		t.Fatalf("attribution ait=%d wpq=%d, want 100/900", ait, wpq)
	}
}

func TestCanonicalByteIdentical(t *testing.T) {
	// Same data in different dump orders must produce byte-identical verdicts:
	// the attribution keeps datapath order regardless of input order.
	a := mkDump(
		[]obs.CounterDump{
			{Name: "dimm0/client_writes", Value: 100},
			{Name: "dimm0/client_reads", Value: 50},
		},
		[]obs.HistogramDump{
			{Name: "imc0/wpq_wait_ns", Sum: 40_000, Count: 10},
			{Name: "dimm0/media/write_ns", Sum: 60_000, Count: 10},
		},
	)
	b := mkDump(
		[]obs.CounterDump{
			{Name: "dimm0/client_reads", Value: 50},
			{Name: "dimm0/client_writes", Value: 100},
		},
		[]obs.HistogramDump{
			{Name: "dimm0/media/write_ns", Sum: 60_000, Count: 10},
			{Name: "imc0/wpq_wait_ns", Sum: 40_000, Count: 10},
		},
	)
	va, vb := Analyze(a), Analyze(b)
	if va == nil || vb == nil {
		t.Fatal("no verdict")
	}
	if !bytes.Equal(va.Canonical(), vb.Canonical()) {
		t.Fatalf("verdicts differ:\n%s\n%s", va.Canonical(), vb.Canonical())
	}
}
