// Package bottleneck interprets an observability dump into a per-job
// verdict: where the simulated time went (queue vs. service, per stage) and
// a named regime explaining *why* the configuration is slow — the question
// the paper answers by attributing end-to-end latency to internal mechanisms
// (WPQ drain, AIT misses, wear migration, RMW combining, media bandwidth).
//
// The analyzer consumes only the aggregated obs.Dump of a finished run:
// every input is simulation-domain (cycle-derived histogram sums and
// registry counters), every float is rounded to a fixed precision, and the
// attribution rows keep a fixed datapath order — so the same dump always
// yields byte-identical verdict JSON, and the same job hash always yields
// the same dump. Verdicts therefore cache and compare like results do.
package bottleneck

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"

	"repro/internal/obs"
)

// Version stamps the verdict layout and classification rules. Bump it when
// either changes so cached verdicts never mix rule sets.
const Version = "bottleneck/1"

// Named regimes, in the order the classifier tests them.
const (
	RegimeWear     = "wear-migration-bound"
	RegimeRMW      = "RMW-combine-bound"
	RegimeWPQ      = "WPQ-bound"
	RegimeAIT      = "AIT-miss-bound"
	RegimeMedia    = "media-bandwidth-bound"
	RegimeBalanced = "balanced"
)

// StageShare is one row of the time-attribution breakdown: the simulated
// nanoseconds a Stage×Kind pair accumulated and its share of the attributed
// total. Kind is "queue" (residency waiting in a pending queue) or "service"
// (busy time inside the stage).
type StageShare struct {
	Stage  string  `json:"stage"`
	Kind   string  `json:"kind"`
	Name   string  `json:"name"`
	TimeNs uint64  `json:"time_ns"`
	Share  float64 `json:"share"`
}

// Verdict is the structured bottleneck analysis of one job.
type Verdict struct {
	Version       string       `json:"version"`
	Regime        string       `json:"regime"`
	DominantStage string       `json:"dominant_stage"`
	Attribution   []StageShare `json:"attribution"`
	Evidence      []string     `json:"evidence"`
}

// Canonical returns the canonical JSON encoding used for byte-identity
// comparisons (struct fields marshal in declaration order; no maps).
func (v *Verdict) Canonical() []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic("bottleneck: marshaling verdict: " + err.Error())
	}
	return b
}

// String renders the verdict for terminal output (vans -explain).
func (v *Verdict) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "regime:          %s\n", v.Regime)
	fmt.Fprintf(&b, "dominant stage:  %s\n", v.DominantStage)
	b.WriteString("attribution (simulated time by stage):\n")
	for _, a := range v.Attribution {
		fmt.Fprintf(&b, "  %-7s %-7s %-16s %12d ns  %6.2f%%\n",
			a.Stage, a.Kind, a.Name, a.TimeNs, a.Share*100)
	}
	if len(v.Evidence) > 0 {
		b.WriteString("evidence:\n")
		for _, e := range v.Evidence {
			fmt.Fprintf(&b, "  - %s\n", e)
		}
	}
	return b.String()
}

// bucket maps one dump-histogram suffix onto an attribution row. The slice
// order is the datapath order, which is also the dominant-stage tie-break.
type bucket struct {
	stage, kind, name, suffix string
}

var buckets = []bucket{
	{"wpq", "queue", "wpq_wait_ns", "/wpq_wait_ns"},
	{"lsq", "queue", "lsq_wait_ns", "/lsq_wait_ns"},
	{"ait", "service", "ait_ns", "/ait_ns"},
	{"media", "service", "media_read_ns", "/media/read_ns"},
	{"media", "service", "media_write_ns", "/media/write_ns"},
	{"wear", "service", "migration_ns", "/wear/migration_ns"},
	{"dram", "service", "dram_access_ns", "/dram/access_ns"},
}

// Classification thresholds. Shares are fractions of the attributed total.
const (
	wearShareMin  = 0.10 // migration stalls are rare but enormous
	writeFracMin  = 0.60 // "write-dominated" workload
	partialMin    = 0.50 // partial combine groups forcing RMW fill reads
	queueShareMin = 0.25 // WPQ+LSQ residency share marking drain backpressure
	missRatioMin  = 0.50 // AIT lookups missing the on-DIMM DRAM buffer
	mediaShareMin = 0.40 // demand media busy time
)

// Analyze attributes the dump's simulated time across the stage taxonomy and
// names the regime. It returns nil when the dump carries nothing to
// attribute (no stage-timing histograms — e.g. a power-fail run).
func Analyze(d *obs.Dump) *Verdict {
	if d == nil {
		return nil
	}

	// Histogram sums, aggregated by suffix across components (all DIMMs, all
	// iMC channels). Dump names are sorted, so accumulation order is fixed.
	times := make([]uint64, len(buckets))
	var total uint64
	for i := range d.Histograms {
		h := &d.Histograms[i]
		for bi := range buckets {
			if strings.HasSuffix(h.Name, buckets[bi].suffix) {
				times[bi] += h.Sum
				total += h.Sum
				break
			}
		}
	}
	if total == 0 {
		return nil
	}

	att := make([]StageShare, 0, len(buckets))
	for bi, b := range buckets {
		if times[bi] == 0 {
			continue
		}
		att = append(att, StageShare{
			Stage:  b.stage,
			Kind:   b.kind,
			Name:   b.name,
			TimeNs: times[bi],
			Share:  round4(float64(times[bi]) / float64(total)),
		})
	}

	// Dominant stage: largest attributed time, first-in-datapath-order wins
	// ties. Summed per stage so media read+write compete as one stage.
	perStage := map[string]uint64{}
	for _, a := range att {
		perStage[a.Stage] += a.TimeNs
	}
	dominant := ""
	var domT uint64
	for _, b := range buckets {
		if t := perStage[b.stage]; dominant == "" || t > domT {
			if _, seen := perStage[b.stage]; seen {
				dominant, domT = b.stage, t
			}
		}
	}

	share := func(stage string) float64 { return float64(perStage[stage]) / float64(total) }
	queueShare := share("wpq") + share("lsq")
	mediaShare := share("media")
	wearShare := share("wear")

	// Counters, aggregated by suffix.
	cnt := func(suffix string) uint64 {
		var n uint64
		for _, c := range d.Counters {
			if strings.HasSuffix(c.Name, suffix) {
				n += c.Value
			}
		}
		return n
	}
	reads := cnt("/client_reads")
	writes := cnt("/client_writes")
	partials := cnt("/rmw_partials")
	aitHits := cnt("/ait_hits")
	aitMiss := cnt("/ait_line_misses") + cnt("/ait_sector_misses")
	migrations := cnt("/wear/migrations")

	var writeFrac, partialFrac, missRatio float64
	if reads+writes > 0 {
		writeFrac = float64(writes) / float64(reads+writes)
	}
	if writes > 0 {
		partialFrac = float64(partials) / float64(writes)
	}
	if aitHits+aitMiss > 0 {
		missRatio = float64(aitMiss) / float64(aitHits+aitMiss)
	}

	var regime string
	switch {
	case wearShare >= wearShareMin:
		regime = RegimeWear
	case writeFrac >= writeFracMin && partialFrac >= partialMin:
		regime = RegimeRMW
	case writeFrac >= writeFracMin && queueShare >= queueShareMin:
		regime = RegimeWPQ
	case missRatio >= missRatioMin:
		regime = RegimeAIT
	case mediaShare >= mediaShareMin:
		regime = RegimeMedia
	default:
		regime = RegimeBalanced
	}

	ev := []string{
		fmt.Sprintf("writes %d vs reads %d (write fraction %.4f)", writes, reads, round4(writeFrac)),
		fmt.Sprintf("queue residency share %.4f (WPQ+LSQ wait)", round4(queueShare)),
		fmt.Sprintf("AIT misses %d of %d lookups (miss ratio %.4f)", aitMiss, aitHits+aitMiss, round4(missRatio)),
		fmt.Sprintf("partial RMW groups %d of %d writes (partial fraction %.4f)", partials, writes, round4(partialFrac)),
		fmt.Sprintf("media busy share %.4f", round4(mediaShare)),
		fmt.Sprintf("wear migrations %d (stall share %.4f)", migrations, round4(wearShare)),
	}

	return &Verdict{
		Version:       Version,
		Regime:        regime,
		DominantStage: dominant,
		Attribution:   att,
		Evidence:      ev,
	}
}

// round4 rounds to 4 decimal places so shares encode identically everywhere.
func round4(x float64) float64 { return math.Round(x*1e4) / 1e4 }
