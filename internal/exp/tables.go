package exp

import (
	"repro/internal/analysis"
	"repro/internal/lens"
)

func init() {
	register("tab1", "Profiling-tool capability matrix (Table I)", tab1)
	register("tab2", "LENS overview (Table II)", tab2)
	register("tab3", "Server hardware configuration (Table III)", tab3)
	register("tab5", "Simulated system configuration (Table V)", tab5)
}

func tab1(Scale) *Result {
	r := &Result{ID: "tab1", Title: "Profiling tool comparison"}
	r.Tables = append(r.Tables, lens.CapabilityMatrix())
	r.AddNote("only LENS covers buffer structure, migration policy, and internal performance")
	return r
}

func tab2(Scale) *Result {
	r := &Result{ID: "tab2", Title: "LENS overview"}
	r.Tables = append(r.Tables, lens.Overview())
	return r
}

func tab3(Scale) *Result {
	r := &Result{ID: "tab3", Title: "Server hardware configuration"}
	t := &analysis.Table{Title: "Table III", Columns: []string{"component", "configuration"}}
	t.AddRow("CPU", "Intel Cascade Lake, 24 cores/socket, 2.2 GHz, 2 sockets")
	t.AddRow("L1 cache", "32KB 8-way I$, 32KB 8-way D$, private")
	t.AddRow("L2 cache", "1MB, 16-way, private")
	t.AddRow("L3 cache", "33MB, 11-way, shared")
	t.AddRow("TLB", "L1D 4-way 64 entries; STLB 12-way 1536 entries")
	t.AddRow("DRAM", "DDR4, 32GB, 2666MHz, 6 channels/socket")
	t.AddRow("NVRAM", "Intel Optane DIMM, 256GB, 2666MHz, 6 channels/socket")
	r.Tables = append(r.Tables, t)
	return r
}

func tab5(Scale) *Result {
	r := &Result{ID: "tab5", Title: "Simulated system configuration"}
	t := &analysis.Table{Title: "Table V", Columns: []string{"component", "configuration"}}
	t.AddRow("Core", "4 cores, out-of-order, 2.2GHz; ROB-SQ-LQ 224-56-72")
	t.AddRow("L1/L2/L3", "32KB 8-way / 1MB 16-way / 32MB 16-way")
	t.AddRow("TLB", "L1D 64x4; L2TLB 1536 entries")
	t.AddRow("WPQ", "512B (8 x 64B per channel)")
	t.AddRow("DRAM", "DDR4-2666, tCAS/tRCD/tRP/tRAS = 19/19/19/43")
	t.AddRow("NVRAM", "2666MHz, 4KB interleaving")
	t.AddRow("LSQ", "64 entries, 64B line (4KB)")
	t.AddRow("RMW Buffer", "64 entries, 256B line (16KB)")
	t.AddRow("AIT Buffer", "4096 entries, 4KB line (16MB)")
	t.AddRow("Internal DRAM", "DDR4-2666 (DDR-T timing base)")
	t.AddRow("Operation mode", "AppDirect")
	r.Tables = append(r.Tables, t)
	return r
}
