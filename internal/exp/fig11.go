package exp

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/baseline"
	"repro/internal/cpu"
	"repro/internal/dram"
	"repro/internal/mem"
	"repro/internal/optane"
	"repro/internal/vans"
	"repro/internal/workload"
)

func init() {
	register("tab4", "SPEC CPU workload set (Table IV)", tab4)
	register("fig11a", "IPC: simulated vs server, DRAM main memory", fig11a)
	register("fig11b", "LLC miss rate: simulated vs server", fig11b)
	register("fig11c", "NVRAM speedup: VANS vs Ramulator vs Optane", fig11c)
	register("fig11d", "Simulator accuracy (geomean): VANS vs Ramulator", fig11d)
}

func tab4(sc Scale) *Result {
	r := &Result{ID: "tab4", Title: "Evaluated SPEC CPU benchmarks"}
	t := &analysis.Table{Title: "Table IV",
		Columns: []string{"suite", "workload", "LLC MPKI", "footprint"}}
	for _, b := range workload.SPECTable() {
		t.AddRow(fmt.Sprintf("%d", b.Suite), b.Name,
			fmt.Sprintf("%.1f", b.MPKI), fmt.Sprintf("%.2f GB", b.FootprintMB/1024))
	}
	r.Tables = append(r.Tables, t)
	r.AddNote("all selected workloads have LLC MPKI >= 2, the paper's selection threshold")
	return r
}

// specBenches returns the benchmark subset sized to the scale.
func specBenches(sc Scale) []workload.SPECBench {
	tab := workload.SPECTable()
	if sc.Divisor > 1 {
		// Quick scale: a representative spread (high/low MPKI, 2006/2017).
		names := []string{"mcf", "lbm", "omnetpp", "gcc17", "xz17"}
		var out []workload.SPECBench
		for _, n := range names {
			if b, ok := workload.SPECBenchByName(n); ok {
				// Shrink footprints so quick runs warm up.
				b.FootprintMB /= 32
				out = append(out, b)
			}
		}
		return out
	}
	return tab
}

// dramMain builds the Table V DRAM main memory: DDR4-2666, 4 channels,
// FR-FCFS.
func dramMain() mem.System {
	cfg := dram.DefaultMultiChannelConfig()
	cfg.Channel.Policy = dram.FRFCFS
	return dram.NewMultiChannel(cfg)
}

// serverCPU is the reference ("real server") CPU configuration; simCPU is
// the deliberately degraded configuration standing in for gem5's limited
// Cascade Lake fidelity (the source of the paper's own 61.2% IPC accuracy).
func serverCPU() cpu.Config { return cpu.DefaultConfig() }

func simCPU() cpu.Config {
	c := cpu.DefaultConfig()
	c.ROB = 192
	c.MSHRs = 8
	c.WalkNs = 95
	return c
}

// runSpec executes one bench on one (cpu config, memory) pair.
func runSpec(b workload.SPECBench, ccfg cpu.Config, sys mem.System, instructions int) cpu.Stats {
	core := cpu.New(ccfg, sys)
	return core.Run(workload.SPEC(b, instructions, 99))
}

func fig11a(sc Scale) *Result {
	r := &Result{ID: "fig11a", Title: "IPC validation on DRAM"}
	t := &analysis.Table{Title: "IPC (DRAM main memory)",
		Columns: []string{"workload", "server", "simulated", "accuracy"}}
	var sims, servers []float64
	for _, b := range specBenches(sc) {
		server := runSpec(b, serverCPU(), dramMain(), sc.Instructions).IPC(2.2)
		simmed := runSpec(b, simCPU(), dramMain(), sc.Instructions).IPC(2.2)
		sims = append(sims, simmed)
		servers = append(servers, server)
		t.AddRow(b.Name, fmt.Sprintf("%.2f", server), fmt.Sprintf("%.2f", simmed),
			fmt.Sprintf("%.2f", analysis.Accuracy(simmed, server)))
	}
	r.Tables = append(r.Tables, t)
	r.AddNote("geomean IPC accuracy %.1f%% (paper: 61.2%%; the CPU model, not the memory model, is the error source)",
		analysis.GeomeanAccuracy(sims, servers)*100)
	return r
}

func fig11b(sc Scale) *Result {
	r := &Result{ID: "fig11b", Title: "LLC miss rate validation"}
	t := &analysis.Table{Title: "LLC miss rate",
		Columns: []string{"workload", "server", "simulated", "accuracy"}}
	var sims, servers []float64
	for _, b := range specBenches(sc) {
		server := runSpec(b, serverCPU(), dramMain(), sc.Instructions).LLCMissRate()
		simmed := runSpec(b, simCPU(), dramMain(), sc.Instructions).LLCMissRate()
		sims = append(sims, simmed)
		servers = append(servers, server)
		t.AddRow(b.Name, fmt.Sprintf("%.3f", server), fmt.Sprintf("%.3f", simmed),
			fmt.Sprintf("%.2f", analysis.Accuracy(simmed, server)))
	}
	r.Tables = append(r.Tables, t)
	r.AddNote("mean LLC miss-rate accuracy %.1f%% (paper: 85.5%%)",
		analysis.MeanAccuracy(sims, servers)*100)
	return r
}

// speedups computes ExecTimeDRAM/ExecTimeNVRAM per bench for one NVRAM
// system constructor with one CPU config.
func speedups(sc Scale, ccfg cpu.Config, mkNVRAM func() mem.System) map[string]float64 {
	out := map[string]float64{}
	for _, b := range specBenches(sc) {
		dramTime := runSpec(b, ccfg, dramMain(), sc.Instructions).Cycles
		nvTime := runSpec(b, ccfg, mkNVRAM(), sc.Instructions).Cycles
		if nvTime == 0 {
			continue
		}
		out[b.Name] = float64(dramTime) / float64(nvTime)
	}
	return out
}

func fig11c(sc Scale) *Result {
	r := &Result{ID: "fig11c", Title: "NVRAM/DRAM speedup comparison"}
	// "Optane server": CPU over the empirical reference. "VANS" and
	// "Ramulator": the simulators under test (both run with the degraded
	// CPU config, as the paper attaches both to the same gem5).
	p := refParams(sc)
	optRef := speedups(sc, serverCPU(), func() mem.System {
		return optane.New(optane.Config{Params: p, DIMMs: 1, Seed: 7, Obs: sc.Obs})
	})
	vansS := speedups(sc, simCPU(), func() mem.System {
		return vans.New(vansConfig(sc, 1, false))
	})
	ram := speedups(sc, simCPU(), func() mem.System {
		return baseline.NewSlowDRAM(baseline.RamulatorPCM)
	})
	t := &analysis.Table{Title: "Speedup (ExecTimeDRAM / ExecTimeNVRAM)",
		Columns: []string{"workload", "Optane", "VANS", "Ramulator"}}
	for _, b := range specBenches(sc) {
		t.AddRow(b.Name,
			fmt.Sprintf("%.3f", optRef[b.Name]),
			fmt.Sprintf("%.3f", vansS[b.Name]),
			fmt.Sprintf("%.3f", ram[b.Name]))
	}
	r.Tables = append(r.Tables, t)
	r.AddNote("speedups below 1: NVRAM main memory slows every workload; VANS tracks the Optane reference more closely than Ramulator-PCM")
	return r
}

func fig11d(sc Scale) *Result {
	r := &Result{ID: "fig11d", Title: "Speedup accuracy (geomean)"}
	p := refParams(sc)
	optRef := speedups(sc, serverCPU(), func() mem.System {
		return optane.New(optane.Config{Params: p, DIMMs: 1, Seed: 7, Obs: sc.Obs})
	})
	vansS := speedups(sc, simCPU(), func() mem.System {
		return vans.New(vansConfig(sc, 1, false))
	})
	ram := speedups(sc, simCPU(), func() mem.System {
		return baseline.NewSlowDRAM(baseline.RamulatorPCM)
	})
	var vSim, vRef, rSim, rRef []float64
	for _, b := range specBenches(sc) {
		if ref, ok := optRef[b.Name]; ok {
			vSim = append(vSim, vansS[b.Name])
			vRef = append(vRef, ref)
			rSim = append(rSim, ram[b.Name])
			rRef = append(rRef, ref)
		}
	}
	accV := analysis.GeomeanAccuracy(vSim, vRef)
	accR := analysis.GeomeanAccuracy(rSim, rRef)
	t := &analysis.Table{Title: "Accuracy", Columns: []string{"simulator", "geomean accuracy"}}
	t.AddRow("VANS", fmt.Sprintf("%.3f", accV))
	t.AddRow("Ramulator", fmt.Sprintf("%.3f", accR))
	r.Tables = append(r.Tables, t)
	r.AddNote("VANS %.1f%% vs Ramulator %.1f%% (paper: 87.1%% vs 65.6%%)", accV*100, accR*100)
	return r
}
