package exp

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/baseline"
	"repro/internal/lens"
	"repro/internal/mem"
)

func init() {
	register("fig1a", "Single-thread bandwidth: PMEP vs Optane (6 DIMM)", fig1a)
	register("fig1b", "PtrChasing read latency: PMEP vs Optane (1 DIMM)", fig1b)
	register("fig3a", "Conventional simulator accuracy vs Optane", fig3a)
	register("fig3b", "Ramulator-PCM vs Optane pointer-chasing latency", fig3b)
}

func fig1a(sc Scale) *Result {
	r := &Result{ID: "fig1a", Title: "Single-thread bandwidth (GB/s)"}
	pmep := bandwidthFlavors(mkPMEP(), sc.Opt)
	opt := bandwidthFlavors(mkOptane(sc, 6, true), sc.Opt)
	t := &analysis.Table{
		Title:   "Bandwidth (GB/s)",
		Columns: []string{"system", "load", "store", "store-clwb", "store-nt"},
	}
	row := func(name string, m map[string]float64) {
		t.AddRow(name,
			fmt.Sprintf("%.2f", m["load"]), fmt.Sprintf("%.2f", m["store"]),
			fmt.Sprintf("%.2f", m["store-clwb"]), fmt.Sprintf("%.2f", m["store-nt"]))
	}
	row("PMEP(6DIMM)", pmep)
	row("Optane(6DIMM)", opt)
	r.Tables = append(r.Tables, t)
	r.AddNote("PMEP: store (%.1f) above store-nt (%.1f) — the inversion", pmep["store"], pmep["store-nt"])
	r.AddNote("Optane: store-nt (%.1f) above store (%.1f); load highest (%.1f)",
		opt["store-nt"], opt["store"], opt["load"])
	return r
}

func fig1b(sc Scale) *Result {
	r := &Result{ID: "fig1b", Title: "Pointer-chasing read latency per CL"}
	pm := lens.PtrChaseSweep(mkPMEP(), sc.Regions, 64, mem.OpRead, sc.Opt)
	pm.Name = "PMEP(1DIMM)"
	op := lens.PtrChaseSweep(mkOptane(sc, 1, false), sc.Regions, 64, mem.OpRead, sc.Opt)
	op.Name = "Optane(1DIMM)"
	r.Series = append(r.Series, pm, op)
	pmKnees := analysis.Knees(pm, 1.15)
	opKnees := analysis.Knees(op, 1.15)
	r.AddNote("PMEP knees: %d (flat curve)", len(pmKnees))
	r.AddNote("Optane knees: %d (three latency segments)", len(opKnees))
	return r
}

func fig3a(sc Scale) *Result {
	r := &Result{ID: "fig3a", Title: "Simulator average accuracy wrt Optane"}
	ref := mkOptane(sc, 1, false)
	refLd := lens.PtrChaseSweep(ref, sc.Regions, 64, mem.OpRead, sc.Opt)
	refSt := lens.PtrChaseSweep(ref, sc.Regions, 64, mem.OpWriteNT, sc.Opt)
	sizes := []uint64{256 << 10, 1 << 20, 4 << 20}
	refBWld := make([]float64, len(sizes))
	refBWst := make([]float64, len(sizes))
	for i, s := range sizes {
		refBWld[i] = lens.StrideBandwidth(ref, 64, s, mem.OpRead, sc.Opt)
		refBWst[i] = lens.StrideBandwidth(ref, 64, s, mem.OpWriteNT, sc.Opt)
	}

	t := &analysis.Table{
		Title:   "Average accuracy",
		Columns: []string{"simulator", "bw-ld", "bw-st", "lat-ld", "lat-st", "mean"},
	}
	kinds := []baseline.SimKind{baseline.DRAMSim2DDR3, baseline.RamulatorDDR4, baseline.RamulatorPCM}
	var worstMean float64 = 1
	for _, k := range kinds {
		mk := mkSlow(k)
		ld := lens.PtrChaseSweep(mk, sc.Regions, 64, mem.OpRead, sc.Opt)
		st := lens.PtrChaseSweep(mk, sc.Regions, 64, mem.OpWriteNT, sc.Opt)
		bwLd := make([]float64, len(sizes))
		bwSt := make([]float64, len(sizes))
		for i, s := range sizes {
			bwLd[i] = lens.StrideBandwidth(mk, 64, s, mem.OpRead, sc.Opt)
			bwSt[i] = lens.StrideBandwidth(mk, 64, s, mem.OpWriteNT, sc.Opt)
		}
		aBWld := analysis.MeanAccuracy(bwLd, refBWld)
		aBWst := analysis.MeanAccuracy(bwSt, refBWst)
		aLd := analysis.MeanAccuracy(ld.Y, refLd.Y)
		aSt := analysis.MeanAccuracy(st.Y, refSt.Y)
		mean := (aBWld + aBWst + aLd + aSt) / 4
		if mean < worstMean {
			worstMean = mean
		}
		t.AddRow(k.String(),
			fmt.Sprintf("%.2f", aBWld), fmt.Sprintf("%.2f", aBWst),
			fmt.Sprintf("%.2f", aLd), fmt.Sprintf("%.2f", aSt),
			fmt.Sprintf("%.2f", mean))
	}
	r.Tables = append(r.Tables, t)
	r.AddNote("conventional DRAM-architecture simulators mismatch Optane (worst mean accuracy %.2f)", worstMean)
	return r
}

func fig3b(sc Scale) *Result {
	r := &Result{ID: "fig3b", Title: "Ramulator-PCM vs Optane read latency"}
	regions := sc.Regions
	// The paper plots 256B..64KB for this comparison.
	var rs []uint64
	for _, reg := range regions {
		if reg <= 64<<10 {
			rs = append(rs, reg)
		}
	}
	pcm := lens.PtrChaseSweep(mkSlow(baseline.RamulatorPCM), rs, 64, mem.OpRead, sc.Opt)
	pcm.Name = "Ramulator-PCM"
	op := lens.PtrChaseSweep(mkOptane(sc, 1, false), rs, 64, mem.OpRead, sc.Opt)
	op.Name = "Optane"
	r.Series = append(r.Series, pcm, op)
	r.AddNote("Ramulator-PCM stays flat (%d knees); Optane rises with region size (%d knees)",
		len(analysis.Knees(pcm, 1.25)), len(analysis.Knees(op, 1.25)))
	return r
}
