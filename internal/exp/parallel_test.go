package exp

import (
	"runtime"
	"testing"

	"repro/internal/pool"
)

// TestParallelByteIdentical is the determinism contract of the parallel
// harness: for every registered experiment, rendered output under a parallel
// worker pool must be byte-identical to a sequential (-j 1) run. Every sweep
// point builds a fresh system from fixed seeds and writes to its own slot,
// so worker count and completion order must not leak into results.
func TestParallelByteIdentical(t *testing.T) {
	// Trim the work per experiment further than testScale: this test pays
	// for every experiment twice (sequential then parallel), and parity is
	// about scheduling, not statistics.
	sc := testScale()
	sc.Opt.MaxSteps = 1200
	sc.OverwriteIters = 150
	sc.Instructions = 15000
	ids := IDs()

	prev := pool.SetWorkers(1)
	seq := RunMany(ids, sc)
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 2
	}
	pool.SetWorkers(workers)
	par := RunMany(ids, sc)
	pool.SetWorkers(prev)

	for i, id := range ids {
		if seq[i].Err != nil || par[i].Err != nil {
			t.Errorf("%s: seq err=%v par err=%v", id, seq[i].Err, par[i].Err)
			continue
		}
		if s, p := seq[i].Res.String(), par[i].Res.String(); s != p {
			t.Errorf("%s: parallel output differs from sequential\n--- sequential ---\n%s\n--- parallel (%d workers) ---\n%s",
				id, s, workers, p)
		}
	}
}

// TestEngineParByteIdentical is the intra-simulation analogue: a figure
// subset spanning the main system shapes — 6-DIMM interleaved streams and
// chases, the RMW/AIT store path, overwrite/wear pressure, CPU-driven
// optimization sweeps, and the reconfigured-device probers — must render
// byte-identically with the engine executing cycle rounds on one goroutine
// (Par=1) and on four. GOMAXPROCS is raised so the engine's pool budget
// actually hands out workers on a single-CPU host.
func TestEngineParByteIdentical(t *testing.T) {
	prev := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(prev)

	sc := testScale()
	sc.Opt.MaxSteps = 1200
	sc.OverwriteIters = 150
	sc.Instructions = 15000
	ids := []string{"fig1a", "fig9b", "fig6a", "fig7b", "fig13d", "other-nvram"}

	for _, id := range ids {
		scSeq := sc
		scSeq.Par = 1
		seq, err := Run(id, scSeq)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		scPar := sc
		scPar.Par = 4
		par, err := Run(id, scPar)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if s, p := seq.String(), par.String(); s != p {
			t.Errorf("%s: Par=4 output differs from Par=1\n--- serial ---\n%s\n--- parallel ---\n%s", id, s, p)
		}
	}
}

// TestRunManyCollectsErrors checks that one failing id does not abort the
// batch and that outcomes keep input order.
func TestRunManyCollectsErrors(t *testing.T) {
	outs := RunMany([]string{"fig7b", "nonsense", "fig7c"}, testScale())
	if len(outs) != 3 {
		t.Fatalf("got %d outcomes", len(outs))
	}
	if outs[0].Err != nil || outs[0].ID != "fig7b" || outs[0].Res == nil {
		t.Fatalf("outcome 0 = %+v", outs[0])
	}
	if outs[1].Err == nil {
		t.Fatal("unknown id did not error")
	}
	if outs[2].Err != nil || outs[2].Res == nil {
		t.Fatalf("outcome 2 = %+v", outs[2])
	}
}
