package exp

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/lens"
	"repro/internal/mem"
	"repro/internal/optane"
	"repro/internal/vans"
)

func init() {
	register("fig9a", "VANS vs Optane: pointer chasing, 1 DIMM", fig9a)
	register("fig9b", "VANS vs Optane: pointer chasing, 6 interleaved DIMMs", fig9b)
	register("fig9c", "RMW buffer read amplification: VANS vs Optane", fig9c)
	register("fig9d", "Overwrite tail latency: VANS vs Optane", fig9d)
	register("fig9e", "VANS accuracy across metrics", fig9e)
	register("fig10a", "Sensitivity: media capacity", fig10a)
	register("fig10b", "Sensitivity: number of DIMMs", fig10b)
}

// validationCurves runs the ld/st sweeps on VANS and the reference.
func validationCurves(sc Scale, dimms int, interleaved bool) (vLd, vSt, oLd, oSt *analysis.Series) {
	mkV := mkVANS(sc, dimms, interleaved)
	mkO := mkOptane(sc, dimms, interleaved)
	vLd = lens.PtrChaseSweep(mkV, sc.Regions, 64, mem.OpRead, sc.Opt)
	vLd.Name = "VANS-ld"
	vSt = lens.PtrChaseSweep(mkV, sc.Regions, 64, mem.OpWriteNT, sc.Opt)
	vSt.Name = "VANS-st"
	oLd = lens.PtrChaseSweep(mkO, sc.Regions, 64, mem.OpRead, sc.Opt)
	oLd.Name = "Optane-ld"
	oSt = lens.PtrChaseSweep(mkO, sc.Regions, 64, mem.OpWriteNT, sc.Opt)
	oSt.Name = "Optane-st"
	return
}

func fig9a(sc Scale) *Result {
	r := &Result{ID: "fig9a", Title: "Pointer chasing validation (1 DIMM)"}
	vLd, vSt, oLd, oSt := validationCurves(sc, 1, false)
	r.Series = append(r.Series, oLd, oSt, vLd, vSt)
	r.AddNote("load accuracy %.2f, store accuracy %.2f",
		analysis.MeanAccuracy(vLd.Y, oLd.Y), analysis.MeanAccuracy(vSt.Y, oSt.Y))
	r.AddNote("small-region store latency deviates (CPU on-core mfence cost unmodeled, as in the paper's Fig. 9a)")
	return r
}

func fig9b(sc Scale) *Result {
	r := &Result{ID: "fig9b", Title: "Pointer chasing validation (6 DIMMs interleaved)"}
	vLd, vSt, oLd, oSt := validationCurves(sc, 6, true)
	r.Series = append(r.Series, oLd, oSt, vLd, vSt)
	r.AddNote("interleaved load accuracy %.2f, store accuracy %.2f",
		analysis.MeanAccuracy(vLd.Y, oLd.Y), analysis.MeanAccuracy(vSt.Y, oSt.Y))
	return r
}

func fig9c(sc Scale) *Result {
	r := &Result{ID: "fig9c", Title: "RMW read amplification validation"}
	cfg := vansConfig(sc, 1, false)
	mkV := mkVANS(sc, 1, false)
	v := ampScores(mkV, cfg.NV.RMWBytes()*4, cfg.NV.RMWBytes()/2, sc.BlockSizes, mem.OpRead, sc.Opt)
	v.Name = "VANS"
	// The reference amplification is the analytic counter-tool curve.
	p := refParams(sc)
	o := &analysis.Series{Name: "Optane (counter tool)",
		XLabel: "PC-Block size (bytes)", YLabel: "score"}
	for _, bs := range sc.BlockSizes {
		o.Add(float64(bs), optane.AmplificationScore(bs, p.RMWGrain, v.Y[0]*p.ReadRMWNs, p.ReadRMWNs))
	}
	r.Series = append(r.Series, o, v)
	r.AddNote("both curves fall toward 1 at the 256B RMW entry; VANS knees: %v",
		analysis.ScoreKnees(sc.BlockSizes, v.Y, 0.05))
	return r
}

func fig9d(sc Scale) *Result {
	r := &Result{ID: "fig9d", Title: "Overwrite tail validation"}
	sysV := vans.New(vansWearConfig(sc, 1, false))
	vl := lens.Overwrite(sysV, 0, 256, sc.OverwriteIters)
	sysO := optane.New(optane.Config{Params: refWearParams(sc), DIMMs: 1, Seed: 7, Obs: sc.Obs})
	ol := lens.Overwrite(sysO, 0, 256, sc.OverwriteIters)
	sv := &analysis.Series{Name: "VANS-overwrite", XLabel: "iteration", YLabel: "ns"}
	so := &analysis.Series{Name: "Optane-overwrite", XLabel: "iteration", YLabel: "ns"}
	for i := range vl {
		sv.Add(float64(i), vl[i])
	}
	for i := range ol {
		so.Add(float64(i), ol[i])
	}
	r.Series = append(r.Series, so, sv)
	tv := analysis.Tails(vl, 8)
	to := analysis.Tails(ol, 8)
	r.AddNote("tail interval: VANS %.0f vs Optane %.0f iterations; tail magnitude %.0fus vs %.0fus",
		tv.MeanInterval(), to.MeanInterval(), tv.MeanTail/1000, to.MeanTail/1000)
	return r
}

func fig9e(sc Scale) *Result {
	r := &Result{ID: "fig9e", Title: "VANS accuracy over metrics"}
	vLd, vSt, oLd, oSt := validationCurves(sc, 1, false)
	mkV := mkVANS(sc, 1, false)
	mkO := mkOptane(sc, 1, false)
	sizes := []uint64{256 << 10, 1 << 20, 4 << 20}
	var vBWld, vBWst, oBWld, oBWst []float64
	for _, s := range sizes {
		vBWld = append(vBWld, lens.StrideBandwidth(mkV, 64, s, mem.OpRead, sc.Opt))
		vBWst = append(vBWst, lens.StrideBandwidth(mkV, 64, s, mem.OpWriteNT, sc.Opt))
		oBWld = append(oBWld, lens.StrideBandwidth(mkO, 64, s, mem.OpRead, sc.Opt))
		oBWst = append(oBWst, lens.StrideBandwidth(mkO, 64, s, mem.OpWriteNT, sc.Opt))
	}
	accs := map[string]float64{
		"Lat-ld": analysis.MeanAccuracy(vLd.Y, oLd.Y),
		"Lat-st": analysis.MeanAccuracy(vSt.Y, oSt.Y),
		"BW-ld":  analysis.MeanAccuracy(vBWld, oBWld),
		"BW-st":  analysis.MeanAccuracy(vBWst, oBWst),
	}
	t := &analysis.Table{Title: "VANS accuracy", Columns: []string{"metric", "accuracy"}}
	mean := 0.0
	for _, k := range []string{"Lat-ld", "Lat-st", "BW-ld", "BW-st"} {
		t.AddRow(k, fmt.Sprintf("%.3f", accs[k]))
		mean += accs[k]
	}
	mean /= 4
	t.AddRow("mean", fmt.Sprintf("%.3f", mean))
	r.Tables = append(r.Tables, t)
	r.AddNote("average accuracy %.1f%% (paper reports 86.5%%)", mean*100)
	return r
}

func fig10a(sc Scale) *Result {
	r := &Result{ID: "fig10a", Title: "Media capacity sensitivity"}
	caps := []uint64{2 << 30, 4 << 30, 8 << 30, 16 << 30}
	if sc.Divisor > 1 {
		caps = []uint64{32 << 20, 64 << 20, 128 << 20, 256 << 20}
	}
	var first *analysis.Series
	worst := 1.0
	for _, capBytes := range caps {
		cfg := vansConfig(sc, 1, false)
		cfg.NV.Media.Capacity = capBytes
		mk := func() mem.System { return vans.New(cfg) }
		s := lens.PtrChaseSweep(mk, sc.Regions, 64, mem.OpRead, sc.Opt)
		s.Name = mem.Bytes(capBytes)
		r.Series = append(r.Series, s)
		if first == nil {
			first = s
		} else if a := analysis.MeanAccuracy(s.Y, first.Y); a < worst {
			worst = a
		}
	}
	r.AddNote("latency curves agree within %.1f%% across capacities: buffers hide the media size", worst*100)
	return r
}

func fig10b(sc Scale) *Result {
	r := &Result{ID: "fig10b", Title: "DIMM count sensitivity"}
	for _, n := range []int{1, 2, 4, 6} {
		mk := mkVANS(sc, n, n > 1)
		ld := lens.PtrChaseSweep(mk, sc.Regions, 64, mem.OpRead, sc.Opt)
		ld.Name = fmt.Sprintf("ld-%dDIMM", n)
		st := lens.PtrChaseSweep(mk, sc.Regions, 64, mem.OpWriteNT, sc.Opt)
		st.Name = fmt.Sprintf("st-%dDIMM", n)
		r.Series = append(r.Series, ld, st)
	}
	// With more DIMMs the buffering effect is postponed for regions wider
	// than the 4KB interleave span: each DIMM sees 1/N of the region, so
	// knees above 4KB (the AIT tier) shift right.
	oneLd := r.Series[0]
	sixLd := r.Series[6]
	k1 := analysis.LargestKnees(oneLd, 2)
	k6 := analysis.LargestKnees(sixLd, 2)
	if len(k1) > 1 && len(k6) > 1 {
		r.AddNote("second read knee moves from %s (1 DIMM) to %s (6 DIMMs)",
			mem.Bytes(uint64(k1[1])), mem.Bytes(uint64(k6[1])))
	}
	return r
}
