// Package exp regenerates every table and figure of the paper's evaluation:
// each experiment builds the systems it needs, drives the LENS
// microbenchmarks or the CPU substrate over them, and returns the same
// rows/series the paper reports. Experiments run at two scales: Quick
// (structure capacities divided so unit tests and benchmarks finish in
// seconds) and Paper (the true 16KB/16MB/512B/4KB sizes).
package exp

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/bottleneck"
	"repro/internal/lens"
	"repro/internal/obs"
	"repro/internal/optane"
	"repro/internal/pool"
)

// Result is one regenerated artifact.
type Result struct {
	ID     string
	Title  string
	Series []*analysis.Series
	Tables []*analysis.Table
	// Notes carries the headline observations ("who wins, by what factor").
	Notes []string
}

// AddNote appends a formatted headline observation.
func (r *Result) AddNote(format string, args ...interface{}) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// String renders the full result.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", r.ID, r.Title)
	for _, t := range r.Tables {
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	for _, s := range r.Series {
		b.WriteString(s.String())
		b.WriteByte('\n')
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Scale sizes an experiment run.
type Scale struct {
	Name string
	// Divisor shrinks the RMW/AIT structures (1 = paper size).
	Divisor int
	// Regions for pointer-chasing sweeps.
	Regions []uint64
	// BlockSizes for amplification sweeps.
	BlockSizes []uint64
	// Opt bounds the microbenchmark runs.
	Opt lens.Options
	// OverwriteIters for the tail-latency tests.
	OverwriteIters int
	// WearThreshold and MigrationNs for wear-leveling runs.
	WearThreshold uint64
	MigrationNs   float64
	// Instructions per CPU-driven run.
	Instructions int
	// Footprint for cloud workloads.
	CloudFootprint uint64
	// Obs, when non-nil, is the observability context every system the
	// experiment builds registers into (each vans/optane instance creates its
	// own child, so one context serves parallel experiments). Results stay
	// byte-identical: registration and counting never alter simulated timing.
	Obs *obs.Obs
	// Par is the intra-simulation parallelism (vans.Config.Parallel) handed
	// to every VANS instance the experiment builds: how many goroutines may
	// execute one engine cycle round, drawn from the same pool budget as
	// experiment-level fan-out. Results are byte-identical at any setting.
	Par int
}

// QuickScale shrinks structures 64x: the RMW knee lands at 256B..4KB and the
// AIT knee at 256KB, so sweeps finish in seconds while preserving every
// shape. Tests and benchmarks default to it.
func QuickScale() Scale {
	return Scale{
		Name:           "quick",
		Divisor:        64,
		Regions:        analysis.LogSpace(256, 2<<20, 2),
		BlockSizes:     analysis.LogSpace(64, 8<<10, 2),
		Opt:            lens.Options{MaxSteps: 3000, WarmPasses: 1, Window: 8, Seed: 42},
		OverwriteIters: 400,
		WearThreshold:  50,
		MigrationNs:    30000,
		Instructions:   60000,
		CloudFootprint: 8 << 20,
	}
}

// PaperScale uses the true structure sizes and the paper's sweep ranges.
// Full runs take minutes per figure.
func PaperScale() Scale {
	return Scale{
		Name:           "paper",
		Divisor:        1,
		Regions:        analysis.LogSpace(256, 128<<20, 2),
		BlockSizes:     analysis.LogSpace(64, 8<<10, 2),
		Opt:            lens.Options{MaxSteps: 60000, WarmPasses: 1, Window: 10, Seed: 42},
		OverwriteIters: 60000,
		WearThreshold:  14000,
		MigrationNs:    55000,
		Instructions:   2000000,
		CloudFootprint: 256 << 20,
	}
}

// ScaleNames lists the named scales in CLI order.
func ScaleNames() []string { return []string{"quick", "paper"} }

// ScaleByName resolves the "-scale" vocabulary shared by cmd/lens,
// cmd/experiments, and nvmserved sweep requests.
func ScaleByName(name string) (Scale, bool) {
	switch name {
	case "quick":
		return QuickScale(), true
	case "paper":
		return PaperScale(), true
	}
	return Scale{}, false
}

// Experiment is a registered artifact generator.
type Experiment struct {
	ID    string
	Title string
	Run   func(sc Scale) *Result
}

var registry []Experiment

func register(id, title string, run func(sc Scale) *Result) {
	registry = append(registry, Experiment{ID: id, Title: title, Run: run})
}

// IDs lists every registered experiment in order.
func IDs() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.ID
	}
	return out
}

// Lookup finds an experiment by id.
func Lookup(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// Run executes one experiment by id at the given scale.
func Run(id string, sc Scale) (*Result, error) {
	e, ok := Lookup(id)
	if !ok {
		return nil, fmt.Errorf("exp: unknown experiment %q (known: %s)",
			id, strings.Join(IDs(), ", "))
	}
	return e.Run(sc), nil
}

// Outcome pairs one experiment id with its result or error.
type Outcome struct {
	ID      string
	Res     *Result
	Err     error
	Elapsed time.Duration
	// Digest summarizes the run's observability counters (events fired,
	// media traffic, migrations, peak queue depth).
	Digest obs.Digest
	// Verdict is the bottleneck analysis over the experiment's aggregated
	// observability dump (nil when the experiment recorded no stage time).
	Verdict *bottleneck.Verdict
}

// RunMany executes the given experiments across the pool's worker budget and
// returns outcomes in input order. Every experiment builds its own systems
// from fixed seeds, so concurrent runs are byte-identical to sequential ones.
// Each experiment gets a private observability context, summarized into its
// outcome's Digest.
func RunMany(ids []string, sc Scale) []Outcome {
	out := make([]Outcome, len(ids))
	pool.ForEach(len(ids), func(i int) {
		scRun := sc
		scRun.Obs = obs.New()
		start := time.Now()
		r, err := Run(ids[i], scRun)
		out[i] = Outcome{ID: ids[i], Res: r, Err: err,
			Elapsed: time.Since(start), Digest: scRun.Obs.Digest(),
			Verdict: bottleneck.Analyze(scRun.Obs.Dump())}
	})
	return out
}

// refParams returns Optane reference parameters scaled to match the scaled
// VANS structures so quick-scale comparisons stay apples to apples. Wear
// tail parameters stay at their defaults; wear-focused experiments override
// them explicitly (refWearParams).
func refParams(sc Scale) optane.Params {
	p := optane.DefaultParams()
	if sc.Divisor > 1 {
		// Match the scaled VANS structures exactly (see vansConfig) so
		// validation compares knees at the same positions.
		rmwEntries := uint64(max(4, 64/sc.Divisor*4))
		aitEntries := uint64(max(8, 4096/sc.Divisor))
		p.RMWBytes = rmwEntries * 256
		p.AITBytes = aitEntries * 4096
	}
	return p
}

// refWearParams additionally scales the wear-tail behavior to the scale's
// threshold (for the overwrite/migration experiments). The reference counts
// 64B stores while VANS counts combined 256B media writes, hence the 4x.
func refWearParams(sc Scale) optane.Params {
	p := refParams(sc)
	p.TailEvery = sc.WearThreshold * 4
	p.TailStallNs = sc.MigrationNs
	return p
}

// topK returns the k highest values' indices of a map (ties broken by key).
func topK(counts map[uint64]uint64, k int) []uint64 {
	type kv struct {
		key uint64
		n   uint64
	}
	all := make([]kv, 0, len(counts))
	for a, n := range counts {
		all = append(all, kv{a, n})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].n != all[j].n {
			return all[i].n > all[j].n
		}
		return all[i].key < all[j].key
	})
	if len(all) > k {
		all = all[:k]
	}
	out := make([]uint64, len(all))
	for i, e := range all {
		out[i] = e.key
	}
	return out
}
