package exp

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// testScale trims QuickScale further so the whole suite stays fast.
func testScale() Scale {
	sc := QuickScale()
	sc.Regions = analysis.LogSpace(256, 1<<20, 2)
	sc.BlockSizes = analysis.LogSpace(64, 4<<10, 2)
	sc.Opt.MaxSteps = 2000
	sc.OverwriteIters = 250
	sc.Instructions = 25000
	sc.CloudFootprint = 4 << 20
	return sc
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig1a", "fig1b", "tab1", "tab2", "tab3", "fig3a", "fig3b",
		"fig4", "fig5a", "fig5b", "fig5c", "fig5d", "fig6a", "fig6b",
		"fig7a", "fig7b", "fig7c", "fig7d",
		"fig9a", "fig9b", "fig9c", "fig9d", "fig9e", "fig10a", "fig10b",
		"tab4", "tab5", "fig11a", "fig11b", "fig11c", "fig11d",
		"fig12a", "fig12b", "fig13d", "fig13e",
	}
	have := map[string]bool{}
	for _, id := range IDs() {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if _, err := Run("nonsense", testScale()); err == nil {
		t.Error("unknown id did not error")
	}
}

func mustRun(t *testing.T, id string) *Result {
	t.Helper()
	r, err := Run(id, testScale())
	if err != nil {
		t.Fatal(err)
	}
	if r.String() == "" {
		t.Fatal("empty result")
	}
	return r
}

// cell parses a numeric table cell.
func cell(t *testing.T, tab *analysis.Table, row, col int) float64 {
	t.Helper()
	s := strings.TrimSuffix(tab.Rows[row][col], "x")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %d,%d = %q: %v", row, col, tab.Rows[row][col], err)
	}
	return v
}

func TestFig1aBandwidthOrdering(t *testing.T) {
	r := mustRun(t, "fig1a")
	tab := r.Tables[0]
	// Columns: system, load, store, store-clwb, store-nt.
	pmepStore, pmepNT := cell(t, tab, 0, 2), cell(t, tab, 0, 4)
	optStore, optNT := cell(t, tab, 1, 2), cell(t, tab, 1, 4)
	optLoad := cell(t, tab, 1, 1)
	if pmepStore <= pmepNT {
		t.Errorf("PMEP store (%.1f) should beat store-nt (%.1f)", pmepStore, pmepNT)
	}
	if optNT <= optStore {
		t.Errorf("Optane store-nt (%.1f) should beat store (%.1f)", optNT, optStore)
	}
	if optLoad <= optNT {
		t.Errorf("Optane load (%.1f) should beat store-nt (%.1f)", optLoad, optNT)
	}
}

func TestFig1bShapes(t *testing.T) {
	r := mustRun(t, "fig1b")
	pm, op := r.Series[0], r.Series[1]
	if ks := analysis.Knees(pm, 1.15); len(ks) != 0 {
		t.Errorf("PMEP curve has knees %v, want flat", ks)
	}
	if ks := analysis.Knees(op, 1.15); len(ks) < 2 {
		t.Errorf("Optane curve has %d knees, want >=2; curve\n%s", len(ks), op)
	}
}

func TestFig3aConventionalSimulatorsInaccurate(t *testing.T) {
	r := mustRun(t, "fig3a")
	tab := r.Tables[0]
	for i := range tab.Rows {
		mean := cell(t, tab, i, 5)
		if mean > 0.92 {
			t.Errorf("%s mean accuracy %.2f suspiciously high", tab.Rows[i][0], mean)
		}
	}
}

func TestFig3bPCMFlatOptaneRises(t *testing.T) {
	r := mustRun(t, "fig3b")
	pcm, op := r.Series[0], r.Series[1]
	pcmRatio := pcm.Y[pcm.Len()-1] / pcm.Y[0]
	opRatio := op.Y[op.Len()-1] / op.Y[0]
	if pcmRatio > 1.35 {
		t.Errorf("PCM curve rises %.2fx, want flat", pcmRatio)
	}
	if opRatio < 1.3 {
		t.Errorf("Optane curve rises only %.2fx, want clearly rising", opRatio)
	}
}

func TestFig5aKnees(t *testing.T) {
	r := mustRun(t, "fig5a")
	ld, st := r.Series[0], r.Series[1]
	if ks := analysis.LargestKnees(ld, 2); len(ks) != 2 {
		t.Errorf("load knees = %v, want 2 (RMW and AIT)", ks)
	}
	if ks := analysis.Knees(st, 1.2); len(ks) < 1 {
		t.Errorf("store curve has no knee; LSQ overflow missing")
	}
}

func TestFig5cRaWConverges(t *testing.T) {
	r := mustRun(t, "fig5c")
	raw, rpw := r.Series[0], r.Series[1]
	smallRatio := raw.Y[0] / rpw.Y[0]
	largeRatio := raw.Y[raw.Len()-1] / rpw.Y[rpw.Len()-1]
	if smallRatio < 1.1 {
		t.Errorf("RaW/R+W at small region = %.2f, want > 1.1", smallRatio)
	}
	if largeRatio > smallRatio {
		t.Errorf("RaW/R+W does not converge: %.2f -> %.2f", smallRatio, largeRatio)
	}
}

func TestFig6aScoresFall(t *testing.T) {
	r := mustRun(t, "fig6a")
	rmw := r.Series[0]
	if rmw.Y[0] < 1.3 {
		t.Errorf("RMW score at 64B = %.2f, want amplified", rmw.Y[0])
	}
	last := rmw.Y[rmw.Len()-1]
	if last > rmw.Y[0]*0.8 {
		t.Errorf("RMW score does not fall: %.2f -> %.2f", rmw.Y[0], last)
	}
}

func TestFig7aInterleavingDiverges(t *testing.T) {
	r := mustRun(t, "fig7a")
	one, six := r.Series[0], r.Series[1]
	ratioSmall := one.YAt(1024) / six.YAt(1024)
	ratioLarge := one.YAt(16<<10) / six.YAt(16<<10)
	if ratioSmall > 1.6 {
		t.Errorf("curves differ %.2fx already at 1KB, want similar below the span", ratioSmall)
	}
	if ratioLarge < 1.25 {
		t.Errorf("6-DIMM only %.2fx faster at 16KB, want divergence", ratioLarge)
	}
	if ratioLarge <= ratioSmall {
		t.Errorf("interleaving advantage not growing: %.2f -> %.2f", ratioSmall, ratioLarge)
	}
}

func TestFig7bTails(t *testing.T) {
	r := mustRun(t, "fig7b")
	s := r.Series[0]
	ts := analysis.Tails(s.Y, 8)
	if ts.Tails == 0 {
		t.Fatal("no tails in the overwrite test")
	}
	if ts.MeanTail < 10*ts.MeanNormal {
		t.Errorf("tail %.0f not >> normal %.0f", ts.MeanTail, ts.MeanNormal)
	}
	interval := ts.MeanInterval()
	if interval < float64(testScale().WearThreshold)/2 ||
		interval > float64(testScale().WearThreshold)*2 {
		t.Errorf("tail interval %.0f not near threshold %d", interval, testScale().WearThreshold)
	}
}

func TestFig7cTailRateDrops(t *testing.T) {
	r := mustRun(t, "fig7c")
	s := r.Series[0]
	if s.Y[0] <= 0 {
		t.Fatal("no tails at the smallest region")
	}
	last := s.Y[s.Len()-1]
	if last > s.Y[0]/3 {
		t.Errorf("tail rate does not collapse: %.4f -> %.4f", s.Y[0], last)
	}
}

func TestFig9aAccuracy(t *testing.T) {
	r := mustRun(t, "fig9a")
	// Series: Optane-ld, Optane-st, VANS-ld, VANS-st.
	oLd, vLd := r.Series[0], r.Series[2]
	acc := analysis.MeanAccuracy(vLd.Y, oLd.Y)
	if acc < 0.7 {
		t.Errorf("load validation accuracy %.2f, want >= 0.7", acc)
	}
	// Both curves must show the same knee structure.
	if k1, k2 := len(analysis.LargestKnees(oLd, 2)), len(analysis.LargestKnees(vLd, 2)); k1 != k2 {
		t.Errorf("knee counts differ: Optane %d vs VANS %d", k1, k2)
	}
}

func TestFig9eMeanAccuracy(t *testing.T) {
	r := mustRun(t, "fig9e")
	tab := r.Tables[0]
	mean := cell(t, tab, len(tab.Rows)-1, 1)
	if mean < 0.70 {
		t.Errorf("overall accuracy %.2f, want >= 0.70 (paper: 0.865)", mean)
	}
}

func TestFig10aCapacityInsensitive(t *testing.T) {
	r := mustRun(t, "fig10a")
	base := r.Series[0]
	for _, s := range r.Series[1:] {
		if acc := analysis.MeanAccuracy(s.Y, base.Y); acc < 0.9 {
			t.Errorf("capacity %s deviates: accuracy %.2f", s.Name, acc)
		}
	}
}

func TestFig10bStoreImprovesWithDIMMs(t *testing.T) {
	r := mustRun(t, "fig10b")
	// Series pairs: ld-1, st-1, ld-2, st-2, ld-4, st-4, ld-6, st-6.
	st1 := r.Series[1]
	st6 := r.Series[7]
	big := st1.X[st1.Len()-1]
	if st6.YAt(big) >= st1.YAt(big) {
		t.Errorf("6-DIMM store latency (%.0f) not below 1-DIMM (%.0f) at %.0fB",
			st6.YAt(big), st1.YAt(big), big)
	}
}

func TestFig11aAccuracyBand(t *testing.T) {
	r := mustRun(t, "fig11a")
	tab := r.Tables[0]
	for i := range tab.Rows {
		acc := cell(t, tab, i, 3)
		if acc < 0.3 {
			t.Errorf("%s IPC accuracy %.2f absurdly low", tab.Rows[i][0], acc)
		}
	}
}

func TestFig11cSpeedupsBelowOne(t *testing.T) {
	r := mustRun(t, "fig11c")
	tab := r.Tables[0]
	for i := range tab.Rows {
		for col := 1; col <= 3; col++ {
			sp := cell(t, tab, i, col)
			if sp <= 0 || sp > 1.05 {
				t.Errorf("%s col %d speedup %.2f out of (0,1.05]", tab.Rows[i][0], col, sp)
			}
		}
	}
}

func TestFig11dVANSBeatsRamulator(t *testing.T) {
	r := mustRun(t, "fig11d")
	tab := r.Tables[0]
	vansAcc := cell(t, tab, 0, 1)
	ramAcc := cell(t, tab, 1, 1)
	if vansAcc <= ramAcc {
		t.Errorf("VANS accuracy %.2f not above Ramulator %.2f", vansAcc, ramAcc)
	}
}

func TestFig12aReadDominates(t *testing.T) {
	r := mustRun(t, "fig12a")
	tab := r.Tables[0]
	readCPI := cell(t, tab, 0, 1)
	restCPI := cell(t, tab, 0, 2)
	if readCPI < 2*restCPI {
		t.Errorf("read CPI %.2f not >> rest %.2f", readCPI, restCPI)
	}
}

func TestFig12bTopLinesConcentrateWear(t *testing.T) {
	r := mustRun(t, "fig12b")
	tab := r.Tables[0]
	topW := cell(t, tab, 0, 1)
	restW := cell(t, tab, 0, 2)
	if topW <= 0 {
		t.Fatal("no writes attributed to top lines")
	}
	// Ten lines out of thousands absorbing a sizeable share is the point.
	if topW < restW/20 {
		t.Errorf("top-10 writes %.0f negligible vs rest %.0f", topW, restW)
	}
}

func TestFig13dOptimizationsHelp(t *testing.T) {
	r := mustRun(t, "fig13d")
	tab := r.Tables[0]
	// LinkedList (last row) must benefit from Pre-translation.
	last := len(tab.Rows) - 1
	pt := cell(t, tab, last, 2)
	if pt < 1.0 {
		t.Errorf("LinkedList pre-translation speedup %.3f < 1", pt)
	}
	// YCSB (row 1) must benefit from the Lazy cache.
	lz := cell(t, tab, 1, 1)
	if lz < 1.0 {
		t.Errorf("YCSB lazy-cache speedup %.3f < 1", lz)
	}
}

func TestFig13eTLBReduced(t *testing.T) {
	r := mustRun(t, "fig13e")
	tab := r.Tables[0]
	// LinkedList again: heavy chasing, normalized MPKI < 1.
	last := len(tab.Rows) - 1
	norm := cell(t, tab, last, 3)
	if norm >= 1.0 {
		t.Errorf("LinkedList normalized TLB MPKI %.2f, want < 1", norm)
	}
}

func TestTables(t *testing.T) {
	for _, id := range []string{"tab1", "tab2", "tab3", "tab4", "tab5"} {
		r := mustRun(t, id)
		if len(r.Tables) == 0 || len(r.Tables[0].Rows) == 0 {
			t.Errorf("%s empty", id)
		}
	}
}

func TestFig4RecoversParameters(t *testing.T) {
	r := mustRun(t, "fig4")
	tab := r.Tables[0]
	if len(tab.Rows) < 8 {
		t.Fatalf("characterization table rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[2] == "-" && row[0] != "AIT line size" {
			t.Errorf("parameter %q not recovered", row[0])
		}
	}
}

func TestRemainingExperimentsRun(t *testing.T) {
	for _, id := range []string{"fig5b", "fig5d", "fig6b", "fig7d", "fig9b", "fig9c", "fig9d", "fig11b"} {
		r := mustRun(t, id)
		if len(r.Series) == 0 && len(r.Tables) == 0 {
			t.Errorf("%s produced nothing", id)
		}
	}
}
