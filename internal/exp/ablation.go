package exp

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/dram"
	"repro/internal/lens"
	"repro/internal/mem"
	"repro/internal/vans"
)

// Ablation studies for the design choices DESIGN.md calls out. These go
// beyond the paper's figures: each isolates one mechanism of the VANS model
// and shows the behavior it is responsible for.
func init() {
	register("abl-wpolicy", "Ablation: write-through vs write-back RMW/AIT", ablWritePolicy)
	register("abl-linefill", "Ablation: AIT line fill on vs off", ablLineFill)
	register("abl-sched", "Ablation: FCFS vs FR-FCFS on-DIMM DRAM", ablSched)
	register("abl-ileave", "Ablation: interleave granularity sweep", ablInterleave)
	register("abl-mlp", "Ablation: bandwidth vs outstanding requests (MLP)", ablMLP)
	register("abl-lsq", "Ablation: LSQ depth sweep", ablLSQ)
}

func ablWritePolicy(sc Scale) *Result {
	r := &Result{ID: "abl-wpolicy", Title: "Write-through vs write-back"}
	run := func(writeThrough bool) (mediaWrites uint64, iterNs float64, migrations uint64) {
		cfg := vansWearConfig(sc, 1, false)
		cfg.NV.WriteThrough = writeThrough
		sys := vans.New(cfg)
		lats := lens.Overwrite(sys, 0, 256, sc.OverwriteIters/2)
		var sum float64
		for _, l := range lats {
			sum += l
		}
		_, w := sys.MediaStats()
		return w, sum / float64(len(lats)), sys.Migrations()
	}
	wtW, wtNs, wtM := run(true)
	wbW, wbNs, wbM := run(false)
	t := &analysis.Table{Title: "256B overwrite behavior by write policy",
		Columns: []string{"policy", "media writes", "iter latency (ns)", "migrations"}}
	t.AddRow("write-through", fmt.Sprintf("%d", wtW), fmt.Sprintf("%.0f", wtNs), fmt.Sprintf("%d", wtM))
	t.AddRow("write-back", fmt.Sprintf("%d", wbW), fmt.Sprintf("%.0f", wbNs), fmt.Sprintf("%d", wbM))
	r.Tables = append(r.Tables, t)
	r.AddNote("write-through is what reproduces the measured tails: %dx the media writes and %d vs %d migrations",
		wtW/maxU(wbW, 1), wtM, wbM)
	r.AddNote("a write-back Optane would never wear under this test — contradicting Figure 7b, which is why VANS models write-through")
	return r
}

func maxU(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func ablLineFill(sc Scale) *Result {
	r := &Result{ID: "abl-linefill", Title: "AIT line fill on vs off"}
	seqBW := func(fill bool) float64 {
		cfg := vansConfig(sc, 1, false)
		cfg.NV.ReadFillLine = fill
		mk := func() mem.System { return vans.New(cfg) }
		return lens.StrideBandwidth(mk, 64, 4<<20, mem.OpRead, sc.Opt)
	}
	randLat := func(fill bool) float64 {
		cfg := vansConfig(sc, 1, false)
		cfg.NV.ReadFillLine = fill
		mk := func() mem.System { return vans.New(cfg) }
		return lens.PtrChase(mk, 2<<20, 64, mem.OpRead, sc.Opt)
	}
	t := &analysis.Table{Title: "Sequential bandwidth and random latency",
		Columns: []string{"line fill", "seq read GB/s", "random ns/CL"}}
	onBW, onLat := seqBW(true), randLat(true)
	offBW, offLat := seqBW(false), randLat(false)
	t.AddRow("on", fmt.Sprintf("%.2f", onBW), fmt.Sprintf("%.0f", onLat))
	t.AddRow("off", fmt.Sprintf("%.2f", offBW), fmt.Sprintf("%.0f", offLat))
	r.Tables = append(r.Tables, t)
	r.AddNote("line fill buys %.2fx sequential bandwidth at %.0f%% random-latency cost — the AIT's 4KB line is a sequential-access bet",
		onBW/offBW, (onLat/offLat-1)*100)
	return r
}

func ablSched(sc Scale) *Result {
	r := &Result{ID: "abl-sched", Title: "On-DIMM DRAM scheduling policy"}
	lat := func(policy dram.Policy) float64 {
		cfg := vansConfig(sc, 1, false)
		cfg.NV.DRAM.Policy = policy
		mk := func() mem.System { return vans.New(cfg) }
		// A region in the AIT tier: every access exercises the on-DIMM DRAM.
		region := cfg.NV.RMWBytes() * 8
		return lens.PtrChase(mk, region, 64, mem.OpRead, sc.Opt)
	}
	fcfs := lat(dram.FCFS)
	fr := lat(dram.FRFCFS)
	t := &analysis.Table{Title: "AIT-tier read latency by policy",
		Columns: []string{"policy", "ns/CL"}}
	t.AddRow("FCFS", fmt.Sprintf("%.0f", fcfs))
	t.AddRow("FR-FCFS", fmt.Sprintf("%.0f", fr))
	r.Tables = append(r.Tables, t)
	r.AddNote("FR-FCFS changes AIT-tier latency by %.1f%% — small, because table reads are row-local; VANS defaults to FCFS per the paper",
		(fr/fcfs-1)*100)
	return r
}

func ablInterleave(sc Scale) *Result {
	r := &Result{ID: "abl-ileave", Title: "Interleave granularity sweep"}
	t := &analysis.Table{Title: "16KB sequential write time by interleave granularity",
		Columns: []string{"granularity", "exec time (ns)"}}
	var base float64
	for _, g := range []uint64{1 << 10, 4 << 10, 16 << 10} {
		cfg := vansConfig(sc, 6, true)
		cfg.IMC.InterleaveBytes = g
		mk := func() mem.System { return vans.New(cfg) }
		ns := lens.SeqWriteTime(mk, 16<<10, sc.Opt)
		if g == 4<<10 {
			base = ns
		}
		t.AddRow(mem.Bytes(g), fmt.Sprintf("%.0f", ns))
	}
	r.Tables = append(r.Tables, t)
	r.AddNote("4KB matches the LSQ and AIT line size (exec %.1fus); the paper identifies exactly this co-design", base/1000)
	return r
}

func ablMLP(sc Scale) *Result {
	r := &Result{ID: "abl-mlp", Title: "Bandwidth vs outstanding requests"}
	s := &analysis.Series{Name: "seq read", XLabel: "window (outstanding)", YLabel: "GB/s"}
	for _, w := range []int{1, 2, 4, 8, 16, 32} {
		opt := sc.Opt
		opt.Window = w
		mk := mkVANS(sc, 1, false)
		s.Add(float64(w), lens.StrideBandwidth(mk, 64, 4<<20, mem.OpRead, opt))
	}
	r.Series = append(r.Series, s)
	gain := s.Y[s.Len()-1] / s.Y[0]
	r.AddNote("bandwidth saturates at %.2fx the window-1 rate: on-DIMM queue contention bounds scaling, the effect behind Optane's poor multi-thread scaling",
		gain)
	return r
}

func ablLSQ(sc Scale) *Result {
	r := &Result{ID: "abl-lsq", Title: "LSQ depth sweep"}
	t := &analysis.Table{Title: "Store knee position by LSQ depth",
		Columns: []string{"LSQ slots", "capacity", "store knee (bytes)"}}
	for _, slots := range []int{16, 64, 256} {
		cfg := vansConfig(sc, 1, false)
		cfg.NV.LSQSlots = slots
		cfg.NV.LSQHighWater = slots * 3 / 4
		mk := func() mem.System { return vans.New(cfg) }
		curve := lens.PtrChaseSweep(mk, analysis.LogSpace(256, 256<<10, 2), 64,
			mem.OpWriteNT, sc.Opt)
		knees := analysis.LargestKnees(curve, 1)
		knee := "-"
		if len(knees) > 0 {
			knee = mem.Bytes(uint64(knees[0]))
		}
		t.AddRow(fmt.Sprintf("%d", slots), mem.Bytes(uint64(slots)*64), knee)
	}
	r.Tables = append(r.Tables, t)
	r.AddNote("the store knee tracks the configured LSQ capacity — the signature LENS uses to size the structure")
	return r
}
