package exp

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/nvdimm"
	"repro/internal/pool"
	"repro/internal/trace"
	"repro/internal/vans"
	"repro/internal/workload"
)

func init() {
	register("fig12a", "Redis profiling: read ops dominate", fig12a)
	register("fig12b", "YCSB profiling: hot-line wear-leveling", fig12b)
	register("fig13d", "Optimization speedups: Lazy cache / Pre-translation / Both", fig13d)
	register("fig13e", "Pre-translation TLB MPKI reduction", fig13e)
}

// cloudOpts builds the generator options for the scale.
func cloudOpts(sc Scale, mkpt bool, seed uint64) workload.CloudOptions {
	return workload.CloudOptions{
		Instructions: sc.Instructions,
		Seed:         seed,
		Mkpt:         mkpt,
		Footprint:    sc.CloudFootprint,
	}
}

func fig12a(sc Scale) *Result {
	r := &Result{ID: "fig12a", Title: "Redis: read vs rest profile"}
	sys := vans.New(vansConfig(sc, 1, false))
	core := cpu.New(cpu.DefaultConfig(), sys)
	st := core.Run(workload.Redis(cloudOpts(sc, false, 11)))

	perK := func(n uint64, c cpu.InstrClass) float64 {
		if st.ClassInstrs[c] == 0 {
			return 0
		}
		return float64(n) / float64(st.ClassInstrs[c]) * 1000
	}
	// "Rest" aggregates every non-read activity (compute, writes, fences),
	// matching the paper's read-vs-rest split.
	readCPI := float64(st.ClassCycles[cpu.ClassRead]) / float64(st.ClassInstrs[cpu.ClassRead])
	restInstrs := st.ClassInstrs[cpu.ClassOther] + st.ClassInstrs[cpu.ClassWrite]
	restCPI := float64(st.ClassCycles[cpu.ClassOther]+st.ClassCycles[cpu.ClassWrite]) /
		float64(restInstrs)
	readLLC := perK(st.ClassLLCMisses[cpu.ClassRead], cpu.ClassRead)
	restLLC := float64(st.ClassLLCMisses[cpu.ClassOther]+st.ClassLLCMisses[cpu.ClassWrite]) /
		float64(restInstrs) * 1000
	readTLB := perK(st.ClassTLBMisses[cpu.ClassRead], cpu.ClassRead)
	restTLB := float64(st.ClassTLBMisses[cpu.ClassOther]+st.ClassTLBMisses[cpu.ClassWrite]) /
		float64(restInstrs) * 1000

	t := &analysis.Table{Title: "Redis: Read normalized to Rest",
		Columns: []string{"metric", "Read", "Rest", "Read/Rest"}}
	addRow := func(name string, read, rest float64) {
		ratio := read
		if rest > 0 {
			ratio = read / rest
		}
		t.AddRow(name, fmt.Sprintf("%.2f", read), fmt.Sprintf("%.2f", rest),
			fmt.Sprintf("%.1fx", ratio))
	}
	addRow("CPI", readCPI, restCPI)
	addRow("LLC MPKI", readLLC, restLLC)
	addRow("TLB MPKI", readTLB, restTLB)
	r.Tables = append(r.Tables, t)
	if restCPI > 0 {
		r.AddNote("read CPI is %.1fx the rest (paper: 8.8x): pointer chasing dominates", readCPI/restCPI)
	}
	return r
}

func fig12b(sc Scale) *Result {
	r := &Result{ID: "fig12b", Title: "YCSB: Top10 hot lines vs rest"}
	cfg := vansWearConfig(sc, 1, false)
	sys := vans.New(cfg)
	col := trace.NewCollector(sys)
	core := cpu.New(cpu.DefaultConfig(), col)
	core.Run(workload.YCSB(cloudOpts(sc, false, 13)))

	// Count writes per cache line as they reached memory.
	writes := map[uint64]uint64{}
	var totalWrites uint64
	for _, rec := range col.Records {
		if rec.Op.IsWrite() || rec.Op == mem.OpClwb {
			writes[rec.Addr&^63]++
			totalWrites++
		}
	}
	top := topK(writes, 10)
	var topWrites uint64
	for _, a := range top {
		topWrites += writes[a]
	}
	restWrites := totalWrites - topWrites

	// Attribute wear-leveling migrations by the CPU address whose write
	// crossed the threshold (hot lines share their 64KB wear block).
	wearBlock := cfg.NV.Media.WearBlock
	topBlocks := map[uint64]bool{}
	for _, a := range top {
		topBlocks[a-a%wearBlock] = true
	}
	var topMigs, restMigs uint64
	for _, d := range sys.DIMMs() {
		for _, ev := range d.Wear().Events() {
			if topBlocks[ev.TriggerCPU-ev.TriggerCPU%wearBlock] {
				topMigs++
			} else {
				restMigs++
			}
		}
	}

	t := &analysis.Table{Title: "YCSB Top10 vs Rest",
		Columns: []string{"metric", "Top10", "Rest"}}
	t.AddRow("cache-line writes", fmt.Sprintf("%d", topWrites), fmt.Sprintf("%d", restWrites))
	t.AddRow("wear-leveling migrations", fmt.Sprintf("%d", topMigs), fmt.Sprintf("%d", restMigs))
	r.Tables = append(r.Tables, t)
	share := float64(topWrites) / float64(totalWrites+1)
	r.AddNote("Top10 lines absorb %.0f%% of writes and trigger %d of %d migrations",
		share*100, topMigs, topMigs+restMigs)
	return r
}

// optVariant runs one cloud workload under one optimization setting and
// returns the stats.
func optVariant(sc Scale, name string, lazy, pretrans bool, seed uint64) cpu.Stats {
	cfg := vansWearConfig(sc, 1, false)
	sys := vans.New(cfg)
	ccfg := cpu.DefaultConfig()
	// A modest TLB makes the chase patterns TLB-bound, as NVRAM-resident
	// working sets are on the real machine.
	ccfg.STLBEntries = 192
	if pretrans {
		ccfg.RLBEntries = 128
	}
	core := cpu.New(ccfg, sys)
	if lazy {
		sys.EnableLazyCache(nvdimm.LazyCacheConfig{HotThreshold: 16})
	}
	if pretrans {
		core.AttachPreTrans(sys.EnablePreTranslation(nvdimm.PreTransConfig{}))
	}
	w := workload.Cloud(name, cloudOpts(sc, pretrans, seed))
	return core.Run(w)
}

func fig13d(sc Scale) *Result {
	r := &Result{ID: "fig13d", Title: "Speedup of the optimizations"}
	t := &analysis.Table{Title: "Speedup over baseline",
		Columns: []string{"workload", "LazyCache", "Pre-Translation", "Both"}}
	sLazy := &analysis.Series{Name: "LazyCache", XLabel: "workload#", YLabel: "speedup"}
	sPre := &analysis.Series{Name: "Pre-Translation", XLabel: "workload#", YLabel: "speedup"}
	sBoth := &analysis.Series{Name: "Both", XLabel: "workload#", YLabel: "speedup"}
	// The per-workload variant quartets are independent full simulations, so
	// they fan out across the pool budget; speedups land in their own slot
	// and are assembled in workload order, byte-identical to a sequential
	// sweep.
	names := workload.CloudNames()
	speedups := make([][3]float64, len(names))
	pool.ForEach(len(names), func(i int) {
		name := names[i]
		base := optVariant(sc, name, false, false, 21)
		lz := optVariant(sc, name, true, false, 21)
		pt := optVariant(sc, name, false, true, 21)
		both := optVariant(sc, name, true, true, 21)
		speedups[i] = [3]float64{
			float64(base.Cycles) / float64(lz.Cycles),
			float64(base.Cycles) / float64(pt.Cycles),
			float64(base.Cycles) / float64(both.Cycles),
		}
	})
	for i, name := range names {
		spLZ, spPT, spBoth := speedups[i][0], speedups[i][1], speedups[i][2]
		t.AddRow(name, fmt.Sprintf("%.3f", spLZ), fmt.Sprintf("%.3f", spPT),
			fmt.Sprintf("%.3f", spBoth))
		sLazy.Add(float64(i), spLZ)
		sPre.Add(float64(i), spPT)
		sBoth.Add(float64(i), spBoth)
	}
	r.Tables = append(r.Tables, t)
	r.Series = append(r.Series, sLazy, sPre, sBoth)
	var lzSum, ptSum float64
	for i := range sLazy.Y {
		lzSum += sLazy.Y[i]
		ptSum += sPre.Y[i]
	}
	n := float64(len(sLazy.Y))
	r.AddNote("mean speedup: LazyCache %.2fx, Pre-translation %.2fx (paper: ~1.10x and up to 1.48x)",
		lzSum/n, ptSum/n)
	return r
}

func fig13e(sc Scale) *Result {
	r := &Result{ID: "fig13e", Title: "Pre-translation TLB MPKI"}
	t := &analysis.Table{Title: "Normalized STLB MPKI",
		Columns: []string{"workload", "baseline MPKI", "pre-trans MPKI", "normalized"}}
	var normSum float64
	n := 0
	for _, name := range workload.CloudNames() {
		base := optVariant(sc, name, false, false, 33)
		pt := optVariant(sc, name, false, true, 33)
		bm, pm := base.STLBMPKI(), pt.STLBMPKI()
		norm := 1.0
		if bm > 0 {
			norm = pm / bm
		}
		t.AddRow(name, fmt.Sprintf("%.2f", bm), fmt.Sprintf("%.2f", pm),
			fmt.Sprintf("%.2f", norm))
		normSum += norm
		n++
	}
	r.Tables = append(r.Tables, t)
	r.AddNote("mean normalized TLB MPKI %.2f (paper: 0.83, a 17%% reduction)", normSum/float64(n))
	return r
}
