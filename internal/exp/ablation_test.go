package exp

import (
	"strconv"
	"testing"
)

func TestAblWritePolicy(t *testing.T) {
	r := mustRun(t, "abl-wpolicy")
	tab := r.Tables[0]
	wtWrites := cell(t, tab, 0, 1)
	wbWrites := cell(t, tab, 1, 1)
	if wtWrites < 10*wbWrites+1 {
		t.Errorf("write-through media writes (%.0f) not >> write-back (%.0f)",
			wtWrites, wbWrites)
	}
	wtMig := cell(t, tab, 0, 3)
	wbMig := cell(t, tab, 1, 3)
	if wtMig == 0 {
		t.Error("write-through produced no migrations")
	}
	if wbMig > wtMig {
		t.Error("write-back migrated more than write-through")
	}
}

func TestAblLineFill(t *testing.T) {
	r := mustRun(t, "abl-linefill")
	tab := r.Tables[0]
	onBW := cell(t, tab, 0, 1)
	offBW := cell(t, tab, 1, 1)
	if onBW <= offBW {
		t.Errorf("line fill did not improve sequential bandwidth: %.2f vs %.2f", onBW, offBW)
	}
}

func TestAblSchedRuns(t *testing.T) {
	r := mustRun(t, "abl-sched")
	tab := r.Tables[0]
	if cell(t, tab, 0, 1) <= 0 || cell(t, tab, 1, 1) <= 0 {
		t.Error("zero latency in scheduling ablation")
	}
}

func TestAblInterleaveRuns(t *testing.T) {
	r := mustRun(t, "abl-ileave")
	if len(r.Tables[0].Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Tables[0].Rows))
	}
}

func TestAblMLPSaturates(t *testing.T) {
	r := mustRun(t, "abl-mlp")
	s := r.Series[0]
	if s.Y[s.Len()-1] <= s.Y[0] {
		t.Errorf("bandwidth did not grow with window: %.2f -> %.2f", s.Y[0], s.Y[s.Len()-1])
	}
	// Saturation: the last doubling gains much less than the first.
	firstGain := s.Y[1] / s.Y[0]
	lastGain := s.Y[s.Len()-1] / s.Y[s.Len()-2]
	if lastGain >= firstGain {
		t.Errorf("no saturation: first doubling %.2fx, last %.2fx", firstGain, lastGain)
	}
}

func TestAblLSQKneeTracksCapacity(t *testing.T) {
	r := mustRun(t, "abl-lsq")
	tab := r.Tables[0]
	// Knee positions must be strictly increasing with LSQ depth.
	parse := func(s string) float64 {
		switch s[len(s)-1] {
		case 'K':
			v := cellValue(t, s[:len(s)-1])
			return v * 1024
		case 'M':
			v := cellValue(t, s[:len(s)-1])
			return v * 1024 * 1024
		default:
			return cellValue(t, s)
		}
	}
	prev := 0.0
	for i := range tab.Rows {
		knee := parse(tab.Rows[i][2])
		if knee <= prev {
			t.Errorf("knee %v not increasing with LSQ depth", tab.Rows[i])
		}
		prev = knee
	}
}

func cellValue(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func TestOtherNVRAMDistinctDevices(t *testing.T) {
	r := mustRun(t, "other-nvram")
	tab := r.Tables[0]
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// The dense-archive device must show a larger L1 grain than Optane.
	if tab.Rows[0][3] == tab.Rows[2][3] {
		t.Errorf("archive grain (%s) not distinct from Optane (%s)",
			tab.Rows[2][3], tab.Rows[0][3])
	}
	// Media tiers must order: fast-SCM < Optane < dense-archive.
	opt := cell(t, tab, 0, 4)
	fast := cell(t, tab, 1, 4)
	dense := cell(t, tab, 2, 4)
	if !(fast < opt && opt < dense) {
		t.Errorf("media tiers not ordered: fast %.0f, optane %.0f, dense %.0f",
			fast, opt, dense)
	}
}

func TestScalingSaturates(t *testing.T) {
	r := mustRun(t, "scaling")
	vRead := r.Series[0]
	scale := vRead.Y[vRead.Len()-1] / vRead.Y[0]
	if scale > 4.0 {
		t.Errorf("read bandwidth scaled %.2fx over 8 streams; contention should bound it well below 8x", scale)
	}
	if scale < 0.5 {
		t.Errorf("read bandwidth collapsed (%.2fx) with streams", scale)
	}
}
