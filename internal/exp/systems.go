package exp

import (
	"repro/internal/baseline"
	"repro/internal/lens"
	"repro/internal/mem"
	"repro/internal/optane"
	"repro/internal/vans"
)

// vansConfig builds a VANS configuration at the scale.
func vansConfig(sc Scale, dimms int, interleaved bool) vans.Config {
	cfg := vans.DefaultConfig()
	cfg.DIMMs = dimms
	cfg.Interleaved = interleaved
	if sc.Divisor > 1 {
		cfg.NV.RMWEntries = max(4, cfg.NV.RMWEntries/sc.Divisor*4) // keep >= a few lines
		cfg.NV.AITEntries = max(8, cfg.NV.AITEntries/sc.Divisor)
		cfg.NV.AITWays = min(cfg.NV.AITWays, cfg.NV.AITEntries)
		cfg.NV.Media.Capacity = 64 << 20
	}
	cfg.Obs = sc.Obs
	cfg.Parallel = sc.Par
	return cfg
}

// vansWearConfig additionally applies the scale's wear-leveling parameters
// (for the overwrite/migration experiments).
func vansWearConfig(sc Scale, dimms int, interleaved bool) vans.Config {
	cfg := vansConfig(sc, dimms, interleaved)
	cfg.NV.WearThreshold = sc.WearThreshold
	cfg.NV.MigrationNs = sc.MigrationNs
	return cfg
}

// mkVANS returns a constructor for fresh VANS instances.
func mkVANS(sc Scale, dimms int, interleaved bool) lens.MakeSystem {
	cfg := vansConfig(sc, dimms, interleaved)
	return func() mem.System { return vans.New(cfg) }
}

// mkOptane returns a constructor for the empirical reference machine.
func mkOptane(sc Scale, dimms int, interleaved bool) lens.MakeSystem {
	p := refParams(sc)
	return func() mem.System {
		return optane.New(optane.Config{Params: p, DIMMs: dimms, Interleaved: interleaved, Seed: 7, Obs: sc.Obs})
	}
}

// mkPMEP returns a constructor for the PMEP emulator.
func mkPMEP() lens.MakeSystem {
	return func() mem.System { return baseline.NewPMEP(baseline.DefaultPMEP(), 3) }
}

// mkSlow returns a constructor for a slower-DRAM baseline flavor.
func mkSlow(kind baseline.SimKind) lens.MakeSystem {
	return func() mem.System { return baseline.NewSlowDRAM(kind) }
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// bandwidthFlavors measures the Figure 1a bandwidth set on a system: load,
// store, store-clwb (each store followed by a clwb), store-nt.
func bandwidthFlavors(mk lens.MakeSystem, opt lens.Options) map[string]float64 {
	out := map[string]float64{}
	total := uint64(8 << 20)
	out["load"] = lens.StrideBandwidth(mk, 64, total, mem.OpRead, opt)
	out["store"] = lens.StrideBandwidth(mk, 64, total, mem.OpWrite, opt)
	out["store-nt"] = lens.StrideBandwidth(mk, 64, total, mem.OpWriteNT, opt)
	out["store-clwb"] = clwbBandwidth(mk, total, opt)
	return out
}

// clwbBandwidth measures a store+clwb stream.
func clwbBandwidth(mk lens.MakeSystem, total uint64, opt lens.Options) float64 {
	sys := mk()
	d := mem.NewDriver(sys)
	n := int(total / 64)
	if n > opt.MaxSteps {
		n = opt.MaxSteps
	}
	accs := make([]mem.Access, 0, 2*n)
	for i := 0; i < n; i++ {
		addr := uint64(i) * 64
		accs = append(accs,
			mem.Access{Op: mem.OpWrite, Addr: addr, Size: 64},
			mem.Access{Op: mem.OpClwb, Addr: addr, Size: 64})
	}
	elapsed := d.RunWindow(accs, opt.Window)
	start := sys.Engine().Now()
	d.Fence()
	elapsed += sys.Engine().Now() - start
	return mem.BandwidthGBs(sys, uint64(n)*64, elapsed)
}
