package exp

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/lens"
	"repro/internal/mem"
)

// Thread-scaling study (related-work discussion): multi-threaded accesses
// do not scale on Optane DIMMs because the WPQ, LSQ, RMW, and AIT structures
// are shared contention points. DRAM scales much further.
func init() {
	register("scaling", "Thread scaling: aggregate bandwidth vs streams", scaling)
}

func scaling(sc Scale) *Result {
	r := &Result{ID: "scaling", Title: "Aggregate bandwidth vs concurrent streams"}
	counts := []int{1, 2, 4, 8}
	perStreamOps := sc.Opt.MaxSteps / 2
	rangeBytes := uint64(2 << 20)

	measure := func(mk lens.MakeSystem, op mem.Op) *analysis.Series {
		s := &analysis.Series{XLabel: "streams", YLabel: "GB/s"}
		for _, n := range counts {
			streams := make([][]mem.Access, n)
			for i := 0; i < n; i++ {
				streams[i] = lens.RandomStreamAccesses(i, perStreamOps, op, rangeBytes, sc.Opt.Seed)
			}
			s.Add(float64(n), lens.MultiStreamBandwidth(mk, n, streams, 8))
		}
		return s
	}

	vRead := measure(mkVANS(sc, 1, false), mem.OpRead)
	vRead.Name = "VANS read"
	vWrite := measure(mkVANS(sc, 1, false), mem.OpWriteNT)
	vWrite.Name = "VANS write"
	r.Series = append(r.Series, vRead, vWrite)

	readScale := vRead.Y[len(vRead.Y)-1] / vRead.Y[0]
	writeScale := vWrite.Y[len(vWrite.Y)-1] / vWrite.Y[0]
	r.AddNote("8 streams deliver %.2fx (read) and %.2fx (write) the single-stream bandwidth — far below 8x: the shared LSQ/RMW/AIT and media write ports are the contention points",
		readScale, writeScale)
	t := &analysis.Table{Title: "Scaling efficiency",
		Columns: []string{"op", "1 stream GB/s", "8 streams GB/s", "scaling"}}
	t.AddRow("read", fmt.Sprintf("%.2f", vRead.Y[0]),
		fmt.Sprintf("%.2f", vRead.Y[len(vRead.Y)-1]), fmt.Sprintf("%.2fx", readScale))
	t.AddRow("write", fmt.Sprintf("%.2f", vWrite.Y[0]),
		fmt.Sprintf("%.2f", vWrite.Y[len(vWrite.Y)-1]), fmt.Sprintf("%.2fx", writeScale))
	r.Tables = append(r.Tables, t)
	return r
}
