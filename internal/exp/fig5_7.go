package exp

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/cpu"
	"repro/internal/lens"
	"repro/internal/mem"
	"repro/internal/pool"
	"repro/internal/vans"
	"repro/internal/workload"
)

func init() {
	register("fig5a", "Buffer prober: ld/st latency, 64B PC-Block", fig5a)
	register("fig5b", "Buffer prober: ld/st latency, 256B PC-Block", fig5b)
	register("fig5c", "RaW vs R+W roundtrip latency", fig5c)
	register("fig5d", "L2 TLB MPKI during the load test", fig5d)
	register("fig6a", "Read amplification score vs PC-Block size", fig6a)
	register("fig6b", "Write amplification score vs PC-Block size", fig6b)
	register("fig7a", "Sequential write time: 1 vs 6 DIMMs", fig7a)
	register("fig7b", "Overwrite tail latency (wear-leveling)", fig7b)
	register("fig7c", "Tail ratio vs overwrite region (wear block)", fig7c)
	register("fig7d", "TLB misses during the overwrite test", fig7d)
	register("fig4", "LENS characterization of VANS (reverse engineering)", fig4)
}

func fig5a(sc Scale) *Result {
	r := &Result{ID: "fig5a", Title: "Load/store latency per CL, 64B PC-Block"}
	mk := mkOptane(sc, 1, false)
	ld := lens.PtrChaseSweep(mk, sc.Regions, 64, mem.OpRead, sc.Opt)
	ld.Name = "ld"
	st := lens.PtrChaseSweep(mk, sc.Regions, 64, mem.OpWriteNT, sc.Opt)
	st.Name = "st"
	r.Series = append(r.Series, ld, st)
	rd := analysis.LargestKnees(ld, 2)
	wr := analysis.LargestKnees(st, 2)
	r.AddNote("read overflow points: %v (RMW and AIT buffers)", rd)
	r.AddNote("write overflow points: %v (WPQ and LSQ)", wr)
	return r
}

func fig5b(sc Scale) *Result {
	r := &Result{ID: "fig5b", Title: "Load/store latency per CL, 256B PC-Block"}
	mk := mkOptane(sc, 1, false)
	ld := lens.PtrChaseSweep(mk, sc.Regions, 256, mem.OpRead, sc.Opt)
	ld.Name = "ld-256"
	st := lens.PtrChaseSweep(mk, sc.Regions, 256, mem.OpWriteNT, sc.Opt)
	st.Name = "st-256"
	r.Series = append(r.Series, ld, st)
	r.AddNote("256B blocks amortize the RMW fill: small-region read latency %.0f -> large %.0f ns",
		ld.Y[0], ld.Y[len(ld.Y)-1])
	return r
}

func fig5c(sc Scale) *Result {
	r := &Result{ID: "fig5c", Title: "RaW vs R+W roundtrip latency per CL"}
	mk := mkVANS(sc, 1, false)
	raw := &analysis.Series{Name: "RaW", XLabel: "region (bytes)", YLabel: "ns/CL"}
	rpw := &analysis.Series{Name: "R+W", XLabel: "region (bytes)", YLabel: "ns/CL"}
	var regions []uint64
	for _, reg := range sc.Regions {
		if reg >= 512 && reg <= 1<<20 {
			regions = append(regions, reg)
		}
	}
	results := make([]lens.RaWResult, len(regions))
	pool.ForEach(len(regions), func(i int) {
		results[i] = lens.ReadAfterWrite(mk, regions[i], sc.Opt)
	})
	for i, reg := range regions {
		raw.Add(float64(reg), results[i].RaWNs)
		rpw.Add(float64(reg), results[i].RPlusWNs)
	}
	r.Series = append(r.Series, raw, rpw)
	small := raw.Y[0] / rpw.Y[0]
	large := raw.Y[len(raw.Y)-1] / rpw.Y[len(rpw.Y)-1]
	r.AddNote("RaW/R+W: %.2fx at %s, %.2fx at %s (converges as the LSQ amortizes)",
		small, mem.Bytes(regions[0]), large, mem.Bytes(regions[len(regions)-1]))
	r.AddNote("no RaW speedup anywhere: the buffers form an inclusive hierarchy")
	return r
}

// chaseTLB runs a pointer-chasing load workload through the CPU over VANS
// and reports STLB MPKI.
func chaseTLB(sc Scale, region uint64) float64 {
	cfg := vansConfig(sc, 1, false)
	sys := vans.New(cfg)
	core := cpu.New(cpu.DefaultConfig(), sys)
	nodes := int(region / 64)
	if nodes < 2 {
		nodes = 2
	}
	hops := sc.Instructions / 8
	if hops > 20000 {
		hops = 20000
	}
	w := chaseLoads(nodes, hops, 64)
	st := core.Run(w)
	return st.STLBMPKI()
}

// chaseLoads builds a dependent-load chase over nodes of the given stride.
func chaseLoads(nodes, hops int, stride uint64) cpu.Workload {
	perm := permCycle(nodes)
	ins := make([]cpu.Instr, 0, hops)
	at := 0
	for i := 0; i < hops; i++ {
		ins = append(ins, cpu.Instr{
			IsMem: true, IsLoad: true, DependsOnLoad: true,
			Addr: uint64(at) * stride, Class: cpu.ClassRead})
		at = perm[at]
	}
	return &cpu.SliceWorkload{Instrs: ins}
}

func fig5d(sc Scale) *Result {
	r := &Result{ID: "fig5d", Title: "L2 TLB MPKI in the load test"}
	s := &analysis.Series{Name: "L2 TLB MPKI", XLabel: "region (bytes)", YLabel: "MPKI"}
	var regions []uint64
	for _, reg := range sc.Regions {
		if reg >= 4096 && reg <= 4<<20 {
			regions = append(regions, reg)
		}
	}
	mpki := make([]float64, len(regions))
	pool.ForEach(len(regions), func(i int) {
		mpki[i] = chaseTLB(sc, regions[i])
	})
	for i, reg := range regions {
		s.Add(float64(reg), mpki[i])
	}
	r.Series = append(r.Series, s)
	knees := analysis.Knees(s, 3.0)
	r.AddNote("TLB misses change smoothly (%d sharp jumps): the 16KB/16MB latency knees are not TLB artifacts", len(knees))
	return r
}

// ampScores computes overflow/fit latency ratios across block sizes.
func ampScores(mk lens.MakeSystem, overflow, fit uint64, blockSizes []uint64,
	op mem.Op, opt lens.Options) *analysis.Series {
	s := &analysis.Series{Name: "amplification score",
		XLabel: "PC-Block size (bytes)", YLabel: "score"}
	scores := make([]float64, len(blockSizes))
	pool.ForEach(len(blockSizes), func(i int) {
		over := lens.PtrChase(mk, overflow, blockSizes[i], op, opt)
		in := lens.PtrChase(mk, fit, blockSizes[i], op, opt)
		scores[i] = analysis.AmplificationScore(over, in)
	})
	for i, bs := range blockSizes {
		s.Add(float64(bs), scores[i])
	}
	return s
}

func fig6a(sc Scale) *Result {
	r := &Result{ID: "fig6a", Title: "Read amplification score"}
	cfg := vansConfig(sc, 1, false)
	mk := mkVANS(sc, 1, false)
	rmw := ampScores(mk, cfg.NV.RMWBytes()*4, cfg.NV.RMWBytes()/2, sc.BlockSizes, mem.OpRead, sc.Opt)
	rmw.Name = "RMW Buf"
	ait := ampScores(mk, cfg.NV.AITBytes()*4, cfg.NV.AITBytes()/2, sc.BlockSizes, mem.OpRead, sc.Opt)
	ait.Name = "AIT Buf"
	r.Series = append(r.Series, rmw, ait)
	knees := analysis.ScoreKnees(sc.BlockSizes, rmw.Y, 0.05)
	r.AddNote("RMW-region score knees: %v (256B entry, then the 4KB AIT line)", knees)
	return r
}

func fig6b(sc Scale) *Result {
	r := &Result{ID: "fig6b", Title: "Write amplification score"}
	cfg := vansConfig(sc, 1, false)
	mk := mkVANS(sc, 1, false)
	wpqBytes := uint64(cfg.IMC.WPQSlots) * 64
	if wpqBytes == 0 {
		wpqBytes = 512
	}
	wpq := ampScores(mk, cfg.NV.LSQBytes(), wpqBytes/2, sc.BlockSizes, mem.OpWriteNT, sc.Opt)
	wpq.Name = "WPQ"
	lsq := ampScores(mk, cfg.NV.LSQBytes()*4, cfg.NV.LSQBytes()/2, sc.BlockSizes, mem.OpWriteNT, sc.Opt)
	lsq.Name = "LSQ"
	r.Series = append(r.Series, wpq, lsq)
	r.AddNote("LSQ write combining: score falls from %.2f at 64B toward 1 at the combine block", lsq.Y[0])
	return r
}

func fig7a(sc Scale) *Result {
	r := &Result{ID: "fig7a", Title: "Sequential write execution time"}
	sizes := analysis.LogSpace(1<<10, 16<<10, 2)
	one := &analysis.Series{Name: "1 DIMM", XLabel: "access size (bytes)", YLabel: "exec time (ns)"}
	six := &analysis.Series{Name: "6 DIMMs", XLabel: "access size (bytes)", YLabel: "exec time (ns)"}
	oneNs := make([]float64, len(sizes))
	sixNs := make([]float64, len(sizes))
	pool.ForEach(len(sizes), func(i int) {
		oneNs[i] = lens.SeqWriteTime(mkVANS(sc, 1, false), sizes[i], sc.Opt)
		sixNs[i] = lens.SeqWriteTime(mkVANS(sc, 6, true), sizes[i], sc.Opt)
	})
	for i, sz := range sizes {
		one.Add(float64(sz), oneNs[i])
		six.Add(float64(sz), sixNs[i])
	}
	r.Series = append(r.Series, one, six)
	at4k := one.YAt(4096) / six.YAt(4096)
	at16k := one.YAt(16<<10) / six.YAt(16<<10)
	r.AddNote("1-DIMM/6-DIMM time ratio: %.2fx at 4KB, %.2fx at 16KB (divergence beyond the 4KB interleave span)", at4k, at16k)
	return r
}

func fig7b(sc Scale) *Result {
	r := &Result{ID: "fig7b", Title: "Overwrite tail latency"}
	sys := vans.New(vansWearConfig(sc, 1, false))
	lats := lens.Overwrite(sys, 0, 256, sc.OverwriteIters)
	s := &analysis.Series{Name: "overwrite", XLabel: "iteration", YLabel: "latency (ns)"}
	for i, l := range lats {
		s.Add(float64(i), l)
	}
	r.Series = append(r.Series, s)
	ts := analysis.Tails(lats, 8)
	r.AddNote("tails every %.0f iterations (threshold %d); tail %.1fus vs normal %.2fus (%.0fx)",
		ts.MeanInterval(), sc.WearThreshold,
		ts.MeanTail/1000, ts.MeanNormal/1000, ts.MeanTail/ts.MeanNormal)
	return r
}

func fig7c(sc Scale) *Result {
	r := &Result{ID: "fig7c", Title: "Tail ratio vs overwrite region"}
	cfg := vansWearConfig(sc, 1, false)
	// The rate sensitivity needs the leaky-bucket wear counters: spread
	// writes accrue too slowly to trigger migration.
	iterNs := 700.0
	cfg.NV.Media.WearDecayCycles = uint64(float64(sc.WearThreshold) * iterNs * 1.6 * 1.333)
	s := &analysis.Series{Name: "tail ratio", XLabel: "overwrite region (bytes)",
		YLabel: "tails per KB written"}
	wearBlock := cfg.NV.Media.WearBlock
	regions := analysis.LogSpace(256, wearBlock*4, 4)
	totalBytes := uint64(sc.OverwriteIters) * 256 * 4
	rates := make([]float64, len(regions))
	pool.ForEach(len(regions), func(i int) {
		reg := regions[i]
		iters := int(totalBytes / reg)
		if iters < 40 {
			iters = 40
		}
		if iters > 4*sc.OverwriteIters {
			iters = 4 * sc.OverwriteIters
		}
		sys := vans.New(cfg)
		lats := lens.Overwrite(sys, 0, reg, iters)
		ts := analysis.Tails(lats, 8)
		rates[i] = float64(ts.Tails) / (float64(reg) * float64(iters) / 1024)
	})
	for i, reg := range regions {
		s.Add(float64(reg), rates[i])
	}
	r.Series = append(r.Series, s)
	small := s.Y[0]
	large := s.Y[len(s.Y)-1]
	r.AddNote("tail rate falls from %.4f to %.4f per KB once the region spans multiple %s wear blocks",
		small, large, mem.Bytes(wearBlock))
	return r
}

func fig7d(sc Scale) *Result {
	r := &Result{ID: "fig7d", Title: "TLB misses during overwrite"}
	cfg := vansConfig(sc, 1, false)
	sys := vans.New(cfg)
	core := cpu.New(cpu.DefaultConfig(), sys)
	// Overwrite via the CPU: NT stores + fence to one 256B region.
	var ins []cpu.Instr
	iters := sc.OverwriteIters
	if iters > 300 {
		iters = 300
	}
	for i := 0; i < iters; i++ {
		for l := uint64(0); l < 4; l++ {
			ins = append(ins, cpu.Instr{IsMem: true, NT: true, Addr: 4096 + l*64,
				Class: cpu.ClassWrite})
		}
		ins = append(ins, cpu.Instr{Fence: true, Class: cpu.ClassWrite})
	}
	st := core.Run(&cpu.SliceWorkload{Instrs: ins})
	r.AddNote("STLB misses over %d overwrite iterations: %d (stable, near zero — tails are not TLB artifacts)",
		iters, st.STLB.Misses)
	s := &analysis.Series{Name: "STLB MPKI", XLabel: "run", YLabel: "MPKI"}
	s.Add(1, st.STLBMPKI())
	r.Series = append(r.Series, s)
	return r
}

func fig4(sc Scale) *Result {
	r := &Result{ID: "fig4", Title: "LENS reverse-engineering of VANS"}
	cfg := vansWearConfig(sc, 1, false)
	mk := func() mem.System { return vans.New(cfg) }
	bp := lens.BufferProberConfig{
		Regions:      sc.Regions,
		BlockSizes:   sc.BlockSizes,
		KneeRatio:    1.25,
		MaxReadKnees: 2,
		Options:      sc.Opt,
	}
	pc := lens.PolicyProberConfig{
		OverwriteIters: sc.OverwriteIters,
		TailFactor:     8,
		Regions:        analysis.LogSpace(256, 2<<10, 2),
		SeqSizes:       analysis.LogSpace(1<<10, 8<<10, 2),
		Options:        sc.Opt,
	}
	c := lens.Characterize(mk, bp, pc)
	t := &analysis.Table{
		Title:   "Configured vs recovered parameters",
		Columns: []string{"parameter", "configured", "recovered"},
	}
	get := func(xs []uint64, i int) string {
		if i < len(xs) {
			return mem.Bytes(xs[i])
		}
		return "-"
	}
	t.AddRow("RMW buffer capacity", mem.Bytes(cfg.NV.RMWBytes()), get(c.Buffers.ReadBufferBytes, 0))
	t.AddRow("AIT buffer capacity", mem.Bytes(cfg.NV.AITBytes()), get(c.Buffers.ReadBufferBytes, 1))
	t.AddRow("RMW entry size", mem.Bytes(cfg.NV.RMWBlock), get(c.Buffers.ReadGranularity, 0))
	t.AddRow("AIT line size", mem.Bytes(cfg.NV.AITLine), get(c.Buffers.ReadGranularity, 1))
	t.AddRow("LSQ capacity", mem.Bytes(cfg.NV.LSQBytes()), get(c.Buffers.WriteBufferBytes, 0))
	t.AddRow("hierarchy", "inclusive", fmt.Sprintf("inclusive=%v", c.Buffers.InclusiveHierarchy))
	t.AddRow("migration interval", fmt.Sprintf("%d writes", cfg.NV.WearThreshold),
		fmt.Sprintf("%.0f iters", c.Policy.MigrationIntervalIters))
	t.AddRow("migration latency", fmt.Sprintf("%.0fus", cfg.NV.MigrationNs/1000),
		fmt.Sprintf("%.0fus", c.Policy.MigrationLatencyNs/1000))
	r.Tables = append(r.Tables, t)
	r.AddNote(c.Report())
	return r
}

// permCycle builds a deterministic single-cycle permutation.
func permCycle(nodes int) []int { return workload.Perm(nodes, 12345) }
