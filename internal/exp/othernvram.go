package exp

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/lens"
	"repro/internal/mem"
	"repro/internal/nvdimm"
	"repro/internal/pool"
	"repro/internal/vans"
)

// Section IV-E: "Modeling Other NVRAM DIMMs". VANS's modular design lets a
// user reconfigure it for hypothetical devices; LENS then recovers the new
// parameters blind — the loop the paper describes for adapting the
// framework. Two alternative device presets exercise that claim.
func init() {
	register("other-nvram", "Other NVRAM DIMMs: reconfigure VANS, re-run LENS", otherNVRAM)
}

// FastSCMConfig models a hypothetical next-generation storage-class-memory
// DIMM: faster media (e.g., denser selector, lower program energy), a
// single large combined buffer (no two-level hierarchy), and 512B media
// granularity.
func FastSCMConfig() nvdimm.Config {
	cfg := nvdimm.DefaultConfig()
	cfg.Media.ReadNs = 90
	cfg.Media.WriteNs = 200
	cfg.Media.BlockSize = 512
	cfg.RMWBlock = 512
	cfg.RMWEntries = 32 // 32 x 512B = 16KB single buffer level
	cfg.AITEntries = 32 // tiny AIT buffer: effectively one level
	cfg.AITWays = 8
	cfg.WearThreshold = 100000 // better endurance
	return cfg
}

// DenseArchiveConfig models a capacity-optimized archival DIMM: slow media,
// huge 1KB granularity, large buffers to hide it.
func DenseArchiveConfig() nvdimm.Config {
	cfg := nvdimm.DefaultConfig()
	cfg.Media.ReadNs = 450
	cfg.Media.WriteNs = 1500
	cfg.Media.BlockSize = 1024
	cfg.RMWBlock = 1024
	cfg.RMWEntries = 32 // 32KB buffer
	cfg.AITLine = 8192
	cfg.AITEntries = 64 // 512KB second level (scaled)
	cfg.AITWays = 8
	return cfg
}

func otherNVRAM(sc Scale) *Result {
	r := &Result{ID: "other-nvram", Title: "Reconfiguring VANS for other devices"}
	t := &analysis.Table{Title: "LENS-recovered parameters per device",
		Columns: []string{"device", "L1 buffer", "L2 buffer", "L1 grain", "media tier ns"}}

	devices := []struct {
		name string
		cfg  nvdimm.Config
	}{
		{"Optane (paper)", scaledNV(sc, nvdimm.DefaultConfig())},
		{"fast-SCM", scaledNV(sc, FastSCMConfig())},
		{"dense-archive", scaledNV(sc, DenseArchiveConfig())},
	}
	// Each device's probe run is independent (own systems, fixed seeds), so
	// they fan out across the pool budget; rows land in their own slot and
	// are assembled in device order, keeping the table byte-identical to a
	// sequential run.
	rows := make([][]string, len(devices))
	pool.ForEach(len(devices), func(i int) {
		dev := devices[i]
		vcfg := vans.DefaultConfig()
		vcfg.NV = dev.cfg
		vcfg.Obs = sc.Obs
		vcfg.Parallel = sc.Par
		mk := func() mem.System { return vans.New(vcfg) }
		rep := lens.BufferProber(mk, lens.BufferProberConfig{
			Regions:      sc.Regions,
			BlockSizes:   sc.BlockSizes,
			KneeRatio:    1.2,
			MaxReadKnees: 2,
			Options:      sc.Opt,
		})
		get := func(xs []uint64, i int) string {
			if i < len(xs) {
				return mem.Bytes(xs[i])
			}
			return "-"
		}
		mediaNs := lens.PtrChase(mk, dev.cfg.AITBytes()*4, 64, mem.OpRead, sc.Opt)
		rows[i] = []string{dev.name,
			get(rep.ReadBufferBytes, 0), get(rep.ReadBufferBytes, 1),
			get(rep.ReadGranularity, 0), fmt.Sprintf("%.0f", mediaNs)}
	})
	for _, row := range rows {
		t.AddRow(row...)
	}
	r.Tables = append(r.Tables, t)
	r.AddNote("the same probers, run blind, recover each device's distinct buffer sizes and granularities — the Section IV-E adaptation loop")
	return r
}

// scaledNV shrinks a device preset to the experiment scale.
func scaledNV(sc Scale, cfg nvdimm.Config) nvdimm.Config {
	if sc.Divisor > 1 {
		cfg.RMWEntries = max(4, cfg.RMWEntries/sc.Divisor*4)
		cfg.AITEntries = max(8, cfg.AITEntries/sc.Divisor)
		cfg.AITWays = min(cfg.AITWays, cfg.AITEntries)
		cfg.Media.Capacity = 64 << 20
	}
	return cfg
}
