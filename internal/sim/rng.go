package sim

// RNG is a small, fast, deterministic pseudo-random generator (SplitMix64
// seeded xorshift128+). Every stochastic choice in the simulators draws from
// an explicitly seeded RNG so that experiments are bit-reproducible.
type RNG struct {
	s0, s1 uint64
}

// NewRNG returns a generator seeded from seed via SplitMix64 so that nearby
// seeds yield uncorrelated streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	r.s0 = next()
	r.s1 = next()
	if r.s0 == 0 && r.s1 == 0 {
		r.s0 = 1
	}
	return r
}

// State returns the raw generator state for checkpointing.
func (r *RNG) State() (s0, s1 uint64) { return r.s0, r.s1 }

// SetState restores raw generator state captured by State.
func (r *RNG) SetState(s0, s1 uint64) { r.s0, r.s1 = s0, s1 }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	x, y := r.s0, r.s1
	r.s0 = y
	x ^= x << 23
	x ^= x >> 17
	x ^= y ^ (y >> 26)
	r.s1 = x
	return x + y
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a uniform integer in [0, n). It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("sim: Uint64n with zero n")
	}
	return r.Uint64() % n
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a random permutation of [0, n) using Fisher-Yates.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// PermCycle returns a random single-cycle permutation of [0, n): following
// next[i] repeatedly from any start visits every element exactly once before
// returning to the start. This is exactly the pointer-chasing order used by
// the LENS microbenchmarks (Sattolo's algorithm).
func (r *RNG) PermCycle(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i) // note: i, not i+1 — Sattolo's variant
		p[i], p[j] = p[j], p[i]
	}
	return p
}
