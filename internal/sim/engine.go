// Package sim provides the discrete-event simulation substrate shared by all
// timing models in this repository: a cycle-resolution event engine, bounded
// queues, deterministic random number generation, and statistics collectors.
//
// Every architectural component (memory controller, on-DIMM buffers, DRAM
// banks, CPU core) advances by scheduling callbacks on a single Engine, so a
// whole-system simulation is one totally ordered sequence of cycle-stamped
// events. Determinism is guaranteed: events at the same cycle fire in
// scheduling order.
package sim

import "container/heap"

// Cycle is a simulation timestamp in clock cycles of the simulated memory
// subsystem. The zero value is the beginning of time.
type Cycle uint64

// Never is a sentinel cycle value meaning "not scheduled / not happening".
const Never = Cycle(1<<63 - 1)

// event is a scheduled callback. seq breaks ties so same-cycle events fire in
// the order they were scheduled, making runs reproducible.
type event struct {
	at  Cycle
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event scheduler with cycle resolution.
//
// The zero value is ready to use. Engine is not safe for concurrent use; the
// simulation model here is single-threaded by design (determinism first).
type Engine struct {
	now    Cycle
	seq    uint64
	events eventHeap
	fired  uint64
}

// NewEngine returns an engine starting at cycle 0.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulation time.
func (e *Engine) Now() Cycle { return e.now }

// Fired returns the total number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of scheduled, not yet executed events.
func (e *Engine) Pending() int { return len(e.events) }

// NextAt peeks at the timestamp of the earliest pending event. ok is false
// when no events are scheduled. Used by drivers that must stop the
// simulation at an exact cycle (power-fail cuts) without firing anything
// beyond it.
func (e *Engine) NextAt() (Cycle, bool) {
	if len(e.events) == 0 {
		return 0, false
	}
	return e.events[0].at, true
}

// Schedule runs fn at absolute cycle at. Scheduling in the past (at < Now) is
// treated as "now": the event fires before time advances further.
func (e *Engine) Schedule(at Cycle, fn func()) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	heap.Push(&e.events, event{at: at, seq: e.seq, fn: fn})
}

// After runs fn delay cycles from now.
func (e *Engine) After(delay Cycle, fn func()) { e.Schedule(e.now+delay, fn) }

// step executes the earliest pending event, advancing time to it.
// It reports false when no events remain.
func (e *Engine) step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(event)
	e.now = ev.at
	e.fired++
	ev.fn()
	return true
}

// Run executes events until the queue is empty.
func (e *Engine) Run() {
	for e.step() {
	}
}

// RunUntil executes events with timestamp <= deadline, then sets Now to
// deadline if the simulation has not already passed it.
func (e *Engine) RunUntil(deadline Cycle) {
	for len(e.events) > 0 && e.events[0].at <= deadline {
		e.step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// RunWhile executes events until cond reports false or no events remain.
// cond is checked before each event.
func (e *Engine) RunWhile(cond func() bool) {
	for cond() && e.step() {
	}
}
