// Package sim provides the discrete-event simulation substrate shared by all
// timing models in this repository: a cycle-resolution event engine, bounded
// queues, deterministic random number generation, and statistics collectors.
//
// Every architectural component (memory controller, on-DIMM buffers, DRAM
// banks, CPU core) advances by scheduling callbacks on a single Engine, so a
// whole-system simulation is one totally ordered sequence of cycle-stamped
// events. Determinism is guaranteed: events at the same cycle fire in
// scheduling order.
package sim

// Cycle is a simulation timestamp in clock cycles of the simulated memory
// subsystem. The zero value is the beginning of time.
type Cycle uint64

// Never is a sentinel cycle value meaning "not scheduled / not happening".
const Never = Cycle(1<<63 - 1)

// event is a scheduled callback. seq breaks ties so same-cycle events fire in
// the order they were scheduled, making runs reproducible. Exactly one of
// fn/afn is set; afn is invoked with arg, letting recurring callers schedule
// without allocating a fresh closure per event (see ScheduleFn). rid is the
// recurring-callback registration the event was scheduled through (0 for
// plain closures); only rid-carrying events can cross a checkpoint, because
// they are re-created from the registry instead of serializing code.
type event struct {
	at  Cycle
	seq uint64
	rid uint64
	fn  func()
	afn func(any)
	arg any
}

// before orders events by (at, seq): earliest cycle first, scheduling order
// within a cycle.
func (a *event) before(b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Engine is a discrete-event scheduler with cycle resolution.
//
// Internally it keeps two structures: a 4-ary min-heap of event values for
// future events (no interface boxing — scheduling does not allocate beyond
// amortized slice growth) and a FIFO fast path for events scheduled at the
// current cycle, which skip the heap entirely. The (at, seq) total order is
// preserved across both: every event carries a globally increasing sequence
// number, and the dispatcher always fires the least (at, seq) event next.
//
// The zero value is ready to use. Engine is not safe for concurrent use; the
// simulation model here is single-threaded by design (determinism first).
type Engine struct {
	now   Cycle
	seq   uint64
	fired uint64
	peak  int // high-water mark of Pending(), updated on every schedule

	// heap holds events with at > now (at insertion time), ordered as a
	// 4-ary min-heap by (at, seq).
	heap []event

	// nowq is the same-cycle FIFO: events scheduled at or before the
	// current cycle. Invariant: every live nowq entry has at == now, and
	// the queue drains completely before now can advance (no pending event
	// can be earlier). Entries are in increasing seq order by construction.
	nowq    []event
	nowHead int

	// recurring maps registered callback IDs to their bound callbacks; see
	// RegisterRecurring.
	recurring map[uint64]func()
}

// NewEngine returns an engine starting at cycle 0.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulation time.
func (e *Engine) Now() Cycle { return e.now }

// Fired returns the total number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of scheduled, not yet executed events.
func (e *Engine) Pending() int { return len(e.heap) + len(e.nowq) - e.nowHead }

// PeakPending returns the highest Pending() observed across the run — the
// peak queue depth reported in observability digests.
func (e *Engine) PeakPending() int { return e.peak }

// notePeak updates the pending high-water mark; called on every schedule.
func (e *Engine) notePeak() {
	if p := len(e.heap) + len(e.nowq) - e.nowHead; p > e.peak {
		e.peak = p
	}
}

// NextAt peeks at the timestamp of the earliest pending event. ok is false
// when no events are scheduled. Used by drivers that must stop the
// simulation at an exact cycle (power-fail cuts) without firing anything
// beyond it.
func (e *Engine) NextAt() (Cycle, bool) {
	if e.nowHead < len(e.nowq) {
		// FIFO entries are at the current cycle; nothing can be earlier.
		return e.nowq[e.nowHead].at, true
	}
	if len(e.heap) == 0 {
		return 0, false
	}
	return e.heap[0].at, true
}

// Schedule runs fn at absolute cycle at. Scheduling in the past (at < Now) is
// treated as "now": the event fires before time advances further.
func (e *Engine) Schedule(at Cycle, fn func()) {
	e.seq++
	if at <= e.now {
		e.nowq = append(e.nowq, event{at: e.now, seq: e.seq, fn: fn})
		e.notePeak()
		return
	}
	e.heapPush(event{at: at, seq: e.seq, fn: fn})
	e.notePeak()
}

// After runs fn delay cycles from now.
func (e *Engine) After(delay Cycle, fn func()) { e.Schedule(e.now+delay, fn) }

// ScheduleFn runs fn(arg) at absolute cycle at, with the same past-clamping
// semantics as Schedule. fn is typically a package-level function and arg the
// component it operates on, so recurring events (drain engines, pollers,
// retry loops) schedule themselves without allocating a fresh closure per
// event.
func (e *Engine) ScheduleFn(at Cycle, fn func(any), arg any) {
	e.seq++
	if at <= e.now {
		e.nowq = append(e.nowq, event{at: e.now, seq: e.seq, afn: fn, arg: arg})
		e.notePeak()
		return
	}
	e.heapPush(event{at: at, seq: e.seq, afn: fn, arg: arg})
	e.notePeak()
}

// AfterFn runs fn(arg) delay cycles from now (the allocation-free variant of
// After; see ScheduleFn).
func (e *Engine) AfterFn(delay Cycle, fn func(any), arg any) {
	e.ScheduleFn(e.now+delay, fn, arg)
}

// RegisterRecurring binds a callback to a stable numeric ID. Events scheduled
// through ScheduleRecurring carry the ID instead of a closure, which is what
// lets a checkpoint serialize them: SaveState records (at, seq, id) and
// LoadState re-creates the event from the registry, provided the restoring
// engine registered the same ID first. Re-registering an ID rebinds it.
func (e *Engine) RegisterRecurring(id uint64, fn func()) {
	if id == 0 {
		panic("sim: recurring callback id 0 is reserved")
	}
	if fn == nil {
		panic("sim: nil recurring callback")
	}
	if e.recurring == nil {
		e.recurring = make(map[uint64]func())
	}
	e.recurring[id] = fn
}

// ScheduleRecurring schedules the callback registered under id at absolute
// cycle at (past-clamped like Schedule). It panics on an unregistered ID —
// that is a wiring bug, not a runtime condition.
func (e *Engine) ScheduleRecurring(at Cycle, id uint64) {
	fn, ok := e.recurring[id]
	if !ok {
		panic("sim: ScheduleRecurring on unregistered id")
	}
	e.seq++
	if at <= e.now {
		e.nowq = append(e.nowq, event{at: e.now, seq: e.seq, rid: id, fn: fn})
		e.notePeak()
		return
	}
	e.heapPush(event{at: at, seq: e.seq, rid: id, fn: fn})
	e.notePeak()
}

// AfterRecurring schedules the callback registered under id delay cycles
// from now.
func (e *Engine) AfterRecurring(delay Cycle, id uint64) {
	e.ScheduleRecurring(e.now+delay, id)
}

// step executes the earliest pending event, advancing time to it.
// It reports false when no events remain.
func (e *Engine) step() bool {
	var ev event
	if e.nowHead < len(e.nowq) {
		// The FIFO head is at the current cycle; the heap top can only tie
		// it on cycle, in which case seq decides.
		if len(e.heap) > 0 && e.heap[0].before(&e.nowq[e.nowHead]) {
			ev = e.heapPop()
		} else {
			ev = e.nowq[e.nowHead]
			e.nowq[e.nowHead] = event{} // release callback references
			e.nowHead++
			if e.nowHead == len(e.nowq) {
				e.nowq = e.nowq[:0]
				e.nowHead = 0
			}
		}
	} else if len(e.heap) > 0 {
		ev = e.heapPop()
	} else {
		return false
	}
	e.now = ev.at
	e.fired++
	if ev.fn != nil {
		ev.fn()
	} else {
		ev.afn(ev.arg)
	}
	return true
}

// Run executes events until the queue is empty.
func (e *Engine) Run() {
	for e.step() {
	}
}

// RunUntil executes events with timestamp <= deadline, then sets Now to
// deadline if the simulation has not already passed it.
func (e *Engine) RunUntil(deadline Cycle) {
	for {
		at, ok := e.NextAt()
		if !ok || at > deadline {
			break
		}
		e.step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// RunWhile executes events until cond reports false or no events remain.
// cond is checked before each event.
func (e *Engine) RunWhile(cond func() bool) {
	for cond() && e.step() {
	}
}

// ------------------------------------------------------------------- heap

// The heap is 4-ary: children of node i are 4i+1..4i+4. Compared to a binary
// heap this halves the tree depth, trading slightly more comparisons per
// level for far fewer event moves — a win because event values are several
// words wide. Sift operations move the displaced element through a hole
// instead of swapping, so each level costs one copy.

func (e *Engine) heapPush(ev event) {
	h := append(e.heap, ev)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !ev.before(&h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = ev
	e.heap = h
}

func (e *Engine) heapPop() event {
	h := e.heap
	top := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = event{} // release callback references
	h = h[:n]
	e.heap = h
	if n == 0 {
		return top
	}
	i := 0
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if h[j].before(&h[m]) {
				m = j
			}
		}
		if !h[m].before(&last) {
			break
		}
		h[i] = h[m]
		i = m
	}
	h[i] = last
	return top
}
