// Package sim provides the discrete-event simulation substrate shared by all
// timing models in this repository: a cycle-resolution event engine, bounded
// queues, deterministic random number generation, and statistics collectors.
//
// Every architectural component (memory controller, on-DIMM buffers, DRAM
// banks, CPU core) advances by scheduling callbacks on a single Engine, so a
// whole-system simulation is one totally ordered sequence of cycle-stamped
// events. Determinism is guaranteed: events at the same cycle fire in
// scheduling order.
package sim

// Cycle is a simulation timestamp in clock cycles of the simulated memory
// subsystem. The zero value is the beginning of time.
type Cycle uint64

// Never is a sentinel cycle value meaning "not scheduled / not happening".
const Never = Cycle(1<<63 - 1)

// event is a scheduled callback. seq breaks ties so same-cycle events fire in
// the order they were scheduled, making runs reproducible. Exactly one of
// fn/afn is set; afn is invoked with arg, letting recurring callers schedule
// without allocating a fresh closure per event (see ScheduleFn). rid is the
// recurring-callback registration the event was scheduled through (0 for
// plain closures); only rid-carrying events can cross a checkpoint, because
// they are re-created from the registry instead of serializing code.
//
// tag additionally carries the shard of the event in its top 16 bits (see
// Shard): shard 0 is the home shard, whose events may touch anything and
// therefore always run exclusively; a nonzero shard promises the callback
// only touches that shard's state, which is what lets a round of same-cycle
// events from distinct shards execute concurrently. Packing shard with rid
// keeps the event at 56 bytes — heap traffic is the engine's hottest path,
// and every extra word is copied on each push, pop, and sift.
type event struct {
	at  Cycle
	seq uint64
	tag uint64 // rid in the low 48 bits, shard in the high 16
	fn  func()
	afn func(any)
	arg any
}

// ridMask extracts the recurring-callback ID from an event tag; RegisterRecurring
// rejects IDs that would not fit.
const ridMask = uint64(1)<<48 - 1

func mkTag(rid uint64, shard int32) uint64 { return rid | uint64(shard)<<48 }

func (ev *event) ridOf() uint64  { return ev.tag & ridMask }
func (ev *event) shardOf() int32 { return int32(ev.tag >> 48) }

// before orders events by (at, seq): earliest cycle first, scheduling order
// within a cycle.
func (a *event) before(b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Engine is a discrete-event scheduler with cycle resolution.
//
// Internally it keeps two structures: a 4-ary min-heap of event values for
// future events (no interface boxing — scheduling does not allocate beyond
// amortized slice growth) and a FIFO fast path for events scheduled at the
// current cycle, which skip the heap entirely. The (at, seq) total order is
// preserved across both: every event carries a globally increasing sequence
// number, and the dispatcher always fires the least (at, seq) event next.
//
// The zero value is ready to use. Engine is not safe for concurrent use from
// outside; the simulation model here is single-threaded by design
// (determinism first). The one sanctioned form of concurrency lives inside
// the engine itself: shard-tagged same-cycle events may execute on worker
// goroutines between two deterministic barriers (see Shard, SetParallel, and
// parallel.go), with every observable ordering — (cycle, seq) assignment,
// fired/peak counters, queue contents — identical to serial execution.
type Engine struct {
	now   Cycle
	seq   uint64
	fired uint64
	peak  int // high-water mark of Pending(), updated on every schedule

	// sharded is true on shard handles and on root engines with shards —
	// the single hot-path test that diverts the Schedule family off the
	// plain fast path. Kept adjacent to the clock fields so the fast path
	// touches one cache line for its checks.
	sharded bool

	// groupRemain counts round events already popped from the queues but
	// not yet executed, so Pending() and the peak accounting during an
	// inline round match pure per-event stepping exactly.
	groupRemain int

	// heap holds events with at > now (at insertion time), ordered as a
	// 4-ary min-heap by (at, seq).
	heap []event

	// nowq is the same-cycle FIFO: events scheduled at or before the
	// current cycle. Invariant: every live nowq entry has at == now, and
	// the queue drains completely before now can advance (no pending event
	// can be earlier). Entries are in increasing seq order by construction.
	nowq    []event
	nowHead int

	// recurring maps registered callback IDs to their bound callbacks; see
	// RegisterRecurring.
	recurring map[uint64]func()

	// root is non-nil on shard handles returned by Shard: a handle shares
	// all queue state with its root engine and only contributes its shard
	// tag to events scheduled through it. shard is the handle's tag (0 on
	// a root engine). par is non-nil on a root engine once Shard has been
	// called; it holds the round-execution state (parallel.go). Once par
	// is set the engine steps in rounds rather than single events — the
	// round structure is intrinsic and identical at every parallelism
	// level, so results never depend on SetParallel.
	root  *Engine
	shard int32
	par   *parEngine
}

// NewEngine returns an engine starting at cycle 0.
func NewEngine() *Engine { return &Engine{} }

// rootEngine resolves a shard handle to the engine owning the state.
func (e *Engine) rootEngine() *Engine {
	if e.root != nil {
		return e.root
	}
	return e
}

// Now returns the current simulation time.
func (e *Engine) Now() Cycle { return e.rootEngine().now }

// Fired returns the total number of events executed so far.
func (e *Engine) Fired() uint64 { return e.rootEngine().fired }

// Pending returns the number of scheduled, not yet executed events.
func (e *Engine) Pending() int {
	r := e.rootEngine()
	return len(r.heap) + len(r.nowq) - r.nowHead + r.groupRemain
}

// PeakPending returns the highest Pending() observed across the run — the
// peak queue depth reported in observability digests.
func (e *Engine) PeakPending() int { return e.rootEngine().peak }

// notePeak updates the pending high-water mark; called on every schedule.
func (e *Engine) notePeak() {
	if p := len(e.heap) + len(e.nowq) - e.nowHead + e.groupRemain; p > e.peak {
		e.peak = p
	}
}

// NextAt peeks at the timestamp of the earliest pending event. ok is false
// when no events are scheduled. Used by drivers that must stop the
// simulation at an exact cycle (power-fail cuts) without firing anything
// beyond it.
func (e *Engine) NextAt() (Cycle, bool) {
	r := e.rootEngine()
	if r.nowHead < len(r.nowq) {
		// FIFO entries are at the current cycle; nothing can be earlier.
		return r.nowq[r.nowHead].at, true
	}
	if len(r.heap) == 0 {
		return 0, false
	}
	return r.heap[0].at, true
}

// Schedule runs fn at absolute cycle at. Scheduling in the past (at < Now) is
// treated as "now": the event fires before time advances further.
func (e *Engine) Schedule(at Cycle, fn func()) {
	if e.sharded {
		e.rootEngine().schedule(e.shard, e.shard, at, 0, fn, nil, nil)
		return
	}
	e.seq++
	if at <= e.now {
		e.nowq = append(e.nowq, event{at: e.now, seq: e.seq, fn: fn})
		e.notePeak()
		return
	}
	e.heapPush(event{at: at, seq: e.seq, fn: fn})
	e.notePeak()
}

// After runs fn delay cycles from now.
func (e *Engine) After(delay Cycle, fn func()) { e.Schedule(e.Now()+delay, fn) }

// ScheduleFn runs fn(arg) at absolute cycle at, with the same past-clamping
// semantics as Schedule. fn is typically a package-level function and arg the
// component it operates on, so recurring events (drain engines, pollers,
// retry loops) schedule themselves without allocating a fresh closure per
// event.
func (e *Engine) ScheduleFn(at Cycle, fn func(any), arg any) {
	if e.sharded {
		e.rootEngine().schedule(e.shard, e.shard, at, 0, nil, fn, arg)
		return
	}
	e.seq++
	if at <= e.now {
		e.nowq = append(e.nowq, event{at: e.now, seq: e.seq, afn: fn, arg: arg})
		e.notePeak()
		return
	}
	e.heapPush(event{at: at, seq: e.seq, afn: fn, arg: arg})
	e.notePeak()
}

// AfterFn runs fn(arg) delay cycles from now (the allocation-free variant of
// After; see ScheduleFn).
func (e *Engine) AfterFn(delay Cycle, fn func(any), arg any) {
	e.ScheduleFn(e.Now()+delay, fn, arg)
}

// ScheduleHome runs fn at absolute cycle at on the home shard (shard 0),
// regardless of which shard handle the call goes through. Home events run
// exclusively, so this is how shard-local code hands a result to cross-shard
// state: a completion that must invoke a driver callback, decrement a
// counter shared across channels, or touch the iMC schedules the touching
// part home instead of doing it in place.
func (e *Engine) ScheduleHome(at Cycle, fn func()) {
	e.rootEngine().schedule(e.shard, 0, at, 0, fn, nil, nil)
}

// AfterHome runs fn delay cycles from now on the home shard (see
// ScheduleHome).
func (e *Engine) AfterHome(delay Cycle, fn func()) {
	r := e.rootEngine()
	r.schedule(e.shard, 0, r.now+delay, 0, fn, nil, nil)
}

// DeferHome runs fn on the home shard at the current cycle: after the
// in-flight round completes, before time advances. It is the funnel for
// cross-shard effects that must stay at the same timestamp (fence
// completions, read returns).
func (e *Engine) DeferHome(fn func()) {
	r := e.rootEngine()
	r.schedule(e.shard, 0, r.now, 0, fn, nil, nil)
}

// schedule is the single insertion point behind every Schedule variant on a
// sharded engine. caller is the shard whose event context issued the call (0
// for the root handle), target the shard tag for the new event. During an
// executing round, calls from shard events are buffered per shard and merged
// deterministically at the barrier (parallel rounds) or inserted directly
// (inline rounds) — either way the resulting (cycle, seq) assignment is the
// one pure serial execution would produce.
func (e *Engine) schedule(caller, target int32, at Cycle, rid uint64, fn func(), afn func(any), arg any) {
	if p := e.par; p != nil && p.inRound {
		if caller == 0 {
			panic("sim: scheduling through the root engine from inside a shard round (funnel via DeferHome/AfterHome)")
		}
		if p.collecting {
			p.buffer(caller, target, at, rid, fn, afn, arg)
			return
		}
	}
	e.seq++
	tag := mkTag(rid, target)
	if at <= e.now {
		e.nowq = append(e.nowq, event{at: e.now, seq: e.seq, tag: tag, fn: fn, afn: afn, arg: arg})
	} else {
		e.heapPush(event{at: at, seq: e.seq, tag: tag, fn: fn, afn: afn, arg: arg})
	}
	e.notePeak()
}

// RegisterRecurring binds a callback to a stable numeric ID. Events scheduled
// through ScheduleRecurring carry the ID instead of a closure, which is what
// lets a checkpoint serialize them: SaveState records (at, seq, id) and
// LoadState re-creates the event from the registry, provided the restoring
// engine registered the same ID first. Re-registering an ID rebinds it.
func (e *Engine) RegisterRecurring(id uint64, fn func()) {
	r := e.rootEngine()
	if id == 0 {
		panic("sim: recurring callback id 0 is reserved")
	}
	if fn == nil {
		panic("sim: nil recurring callback")
	}
	if id&^ridMask != 0 {
		panic("sim: recurring callback id exceeds 48 bits")
	}
	if r.recurring == nil {
		r.recurring = make(map[uint64]func())
	}
	r.recurring[id] = fn
}

// ScheduleRecurring schedules the callback registered under id at absolute
// cycle at (past-clamped like Schedule). It panics on an unregistered ID —
// that is a wiring bug, not a runtime condition. Through a shard handle the
// event carries the handle's shard tag, and SaveState preserves the tag, so
// a restored run keeps the exact round structure of an uninterrupted one.
func (e *Engine) ScheduleRecurring(at Cycle, id uint64) {
	r := e.rootEngine()
	fn, ok := r.recurring[id]
	if !ok {
		panic("sim: ScheduleRecurring on unregistered id")
	}
	if e.sharded {
		r.schedule(e.shard, e.shard, at, id, fn, nil, nil)
		return
	}
	e.seq++
	if at <= e.now {
		e.nowq = append(e.nowq, event{at: e.now, seq: e.seq, tag: id, fn: fn})
		e.notePeak()
		return
	}
	e.heapPush(event{at: at, seq: e.seq, tag: id, fn: fn})
	e.notePeak()
}

// AfterRecurring schedules the callback registered under id delay cycles
// from now.
func (e *Engine) AfterRecurring(delay Cycle, id uint64) {
	e.ScheduleRecurring(e.Now()+delay, id)
}

// step executes the earliest pending event, advancing time to it.
// It reports false when no events remain.
func (e *Engine) step() bool {
	var ev event
	if e.nowHead < len(e.nowq) {
		// The FIFO head is at the current cycle; the heap top can only tie
		// it on cycle, in which case seq decides.
		if len(e.heap) > 0 && e.heap[0].before(&e.nowq[e.nowHead]) {
			ev = e.heapPop()
		} else {
			ev = e.nowq[e.nowHead]
			e.nowq[e.nowHead] = event{} // release callback references
			e.nowHead++
			if e.nowHead == len(e.nowq) {
				e.nowq = e.nowq[:0]
				e.nowHead = 0
			}
		}
	} else if len(e.heap) > 0 {
		ev = e.heapPop()
	} else {
		return false
	}
	e.now = ev.at
	e.fired++
	if ev.fn != nil {
		ev.fn()
	} else {
		ev.afn(ev.arg)
	}
	return true
}

// popUpTo pops the earliest pending event if its timestamp is <= deadline.
// It fuses the NextAt peek with the pop, so the run loops pay one ordering
// decision per event instead of two (the RunUntil fast path).
func (e *Engine) popUpTo(deadline Cycle) (event, bool) {
	if e.nowHead < len(e.nowq) {
		f := &e.nowq[e.nowHead]
		// The FIFO head is at the current cycle; the heap top can only tie
		// it on cycle, in which case seq decides.
		if len(e.heap) > 0 && e.heap[0].before(f) {
			if e.heap[0].at > deadline {
				return event{}, false
			}
			return e.heapPop(), true
		}
		if f.at > deadline {
			return event{}, false
		}
		ev := *f
		*f = event{} // release callback references
		e.nowHead++
		if e.nowHead == len(e.nowq) {
			e.nowq = e.nowq[:0]
			e.nowHead = 0
		}
		return ev, true
	}
	if len(e.heap) > 0 && e.heap[0].at <= deadline {
		return e.heapPop(), true
	}
	return event{}, false
}

// Run executes events until the queue is empty. On a sharded engine it steps
// in rounds (see stepRound); on a plain engine, single events.
func (e *Engine) Run() {
	if e.root != nil {
		e.root.Run()
		return
	}
	if e.par != nil {
		for e.stepRound() {
		}
		return
	}
	for e.step() {
	}
}

// RunUntil executes events with timestamp <= deadline, then sets Now to
// deadline if the simulation has not already passed it. Rounds never span
// cycles, so on a sharded engine the cut still lands exactly at deadline.
func (e *Engine) RunUntil(deadline Cycle) {
	if e.root != nil {
		e.root.RunUntil(deadline)
		return
	}
	if e.par != nil {
		for {
			at, ok := e.NextAt()
			if !ok || at > deadline {
				break
			}
			e.stepRound()
		}
	} else {
		for {
			ev, ok := e.popUpTo(deadline)
			if !ok {
				break
			}
			e.now = ev.at
			e.fired++
			if ev.fn != nil {
				ev.fn()
			} else {
				ev.afn(ev.arg)
			}
		}
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// RunWhile executes events until cond reports false or no events remain.
// cond is checked before each step: a single event on a plain engine, a
// round on a sharded one. Round granularity is intrinsic to sharded engines
// — it does not vary with SetParallel — so pump loops built on RunWhile
// observe identical progress at every parallelism level.
func (e *Engine) RunWhile(cond func() bool) {
	if e.root != nil {
		e.root.RunWhile(cond)
		return
	}
	if e.par != nil {
		for cond() && e.stepRound() {
		}
		return
	}
	for cond() && e.step() {
	}
}

// ------------------------------------------------------------------- heap

// The heap is 4-ary: children of node i are 4i+1..4i+4. Compared to a binary
// heap this halves the tree depth, trading slightly more comparisons per
// level for far fewer event moves — a win because event values are several
// words wide. Sift operations move the displaced element through a hole
// instead of swapping, so each level costs one copy.

func (e *Engine) heapPush(ev event) {
	h := append(e.heap, ev)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !ev.before(&h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = ev
	e.heap = h
}

func (e *Engine) heapPop() event {
	h := e.heap
	top := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = event{} // release callback references
	h = h[:n]
	e.heap = h
	if n == 0 {
		return top
	}
	i := 0
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if h[j].before(&h[m]) {
				m = j
			}
		}
		if !h[m].before(&last) {
			break
		}
		h[i] = h[m]
		i = m
	}
	h[i] = last
	return top
}
