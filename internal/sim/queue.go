package sim

// Queue is a bounded FIFO used to model hardware queues (WPQ, RPQ, LSQ, bank
// command queues). A capacity of 0 means unbounded.
type Queue[T any] struct {
	items []T
	cap   int
}

// NewQueue returns a queue holding at most capacity items (0 = unbounded).
func NewQueue[T any](capacity int) *Queue[T] {
	return &Queue[T]{cap: capacity}
}

// Cap returns the configured capacity (0 = unbounded).
func (q *Queue[T]) Cap() int { return q.cap }

// Len returns the current occupancy.
func (q *Queue[T]) Len() int { return len(q.items) }

// Empty reports whether the queue holds no items.
func (q *Queue[T]) Empty() bool { return len(q.items) == 0 }

// Full reports whether the queue is at capacity.
func (q *Queue[T]) Full() bool { return q.cap > 0 && len(q.items) >= q.cap }

// Push appends item; it reports false (and drops nothing) when full.
func (q *Queue[T]) Push(item T) bool {
	if q.Full() {
		return false
	}
	q.items = append(q.items, item)
	return true
}

// Pop removes and returns the oldest item; ok is false when empty.
func (q *Queue[T]) Pop() (item T, ok bool) {
	if len(q.items) == 0 {
		return item, false
	}
	item = q.items[0]
	// Shift rather than re-slice so the backing array does not grow without
	// bound across long simulations.
	copy(q.items, q.items[1:])
	q.items = q.items[:len(q.items)-1]
	return item, true
}

// Peek returns the oldest item without removing it.
func (q *Queue[T]) Peek() (item T, ok bool) {
	if len(q.items) == 0 {
		return item, false
	}
	return q.items[0], true
}

// At returns the i-th oldest item (0 = head). It panics on out-of-range, like
// a slice index.
func (q *Queue[T]) At(i int) T { return q.items[i] }

// RemoveAt deletes and returns the i-th oldest item, preserving order.
func (q *Queue[T]) RemoveAt(i int) T {
	item := q.items[i]
	copy(q.items[i:], q.items[i+1:])
	q.items = q.items[:len(q.items)-1]
	return item
}

// Scan calls fn for each queued item from oldest to newest until fn returns
// false.
func (q *Queue[T]) Scan(fn func(i int, item T) bool) {
	for i, it := range q.items {
		if !fn(i, it) {
			return
		}
	}
}

// Clear drops all items.
func (q *Queue[T]) Clear() { q.items = q.items[:0] }
