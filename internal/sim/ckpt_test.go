package sim

import (
	"errors"
	"testing"

	"repro/internal/ckpt"
)

// recorder is a deterministic workload of interleaved recurring callbacks:
// each callback appends its (id, cycle) firing to the log and reschedules
// itself until its budget runs out.
type recorder struct {
	eng    *Engine
	log    []uint64
	budget map[uint64]int
	period map[uint64]Cycle
}

func (r *recorder) register(id uint64, period Cycle, budget int) {
	r.budget[id] = budget
	r.period[id] = period
	r.eng.RegisterRecurring(id, func() {
		r.log = append(r.log, id<<32|uint64(r.eng.Now()))
		if r.budget[id] > 0 {
			r.budget[id]--
			r.eng.AfterRecurring(r.period[id], id)
		}
	})
}

func newRecorder(eng *Engine) *recorder {
	r := &recorder{eng: eng, budget: map[uint64]int{}, period: map[uint64]Cycle{}}
	r.register(1, 3, 20)
	r.register(2, 5, 12)
	r.register(3, 7, 9)
	eng.ScheduleRecurring(1, 1)
	eng.ScheduleRecurring(2, 2)
	eng.ScheduleRecurring(2, 3)
	return r
}

// TestEngineCheckpointRoundTrip runs half the workload, checkpoints with the
// queue non-empty, restores into a fresh engine, and requires the combined
// firing log and final clock to match an uninterrupted run exactly.
func TestEngineCheckpointRoundTrip(t *testing.T) {
	straight := NewEngine()
	sr := newRecorder(straight)
	straight.Run()

	eng := NewEngine()
	r := newRecorder(eng)
	for i := 0; i < 15 && eng.step(); i++ {
	}
	if eng.Pending() == 0 {
		t.Fatal("workload exhausted before the cut; deepen it")
	}

	var enc ckpt.Enc
	if err := eng.SaveState(&enc); err != nil {
		t.Fatalf("SaveState: %v", err)
	}
	// Mutable recorder state is part of the model; carry it across like a
	// component's SaveState would.
	budget := map[uint64]int{}
	for k, v := range r.budget {
		budget[k] = v
	}
	prefix := append([]uint64(nil), r.log...)

	eng2 := NewEngine()
	r2 := &recorder{eng: eng2, budget: budget, period: r.period, log: prefix}
	for id := range r.period {
		id := id
		eng2.RegisterRecurring(id, func() {
			r2.log = append(r2.log, id<<32|uint64(eng2.Now()))
			if r2.budget[id] > 0 {
				r2.budget[id]--
				eng2.AfterRecurring(r2.period[id], id)
			}
		})
	}
	if err := eng2.LoadState(ckpt.NewDec(enc.Bytes())); err != nil {
		t.Fatalf("LoadState: %v", err)
	}
	if eng2.Now() != eng.Now() || eng2.Pending() != eng.Pending() {
		t.Fatalf("restored engine at (%d, %d pending), want (%d, %d)",
			eng2.Now(), eng2.Pending(), eng.Now(), eng.Pending())
	}
	eng2.Run()

	if len(r2.log) != len(sr.log) {
		t.Fatalf("restored run fired %d callbacks, straight run %d", len(r2.log), len(sr.log))
	}
	for i := range sr.log {
		if r2.log[i] != sr.log[i] {
			t.Fatalf("firing %d differs: restored (id=%d, cyc=%d), straight (id=%d, cyc=%d)",
				i, r2.log[i]>>32, r2.log[i]&0xffffffff, sr.log[i]>>32, sr.log[i]&0xffffffff)
		}
	}
	if eng2.Now() != straight.Now() || eng2.Fired() != straight.Fired() {
		t.Fatalf("restored run ended at (now=%d, fired=%d), straight at (now=%d, fired=%d)",
			eng2.Now(), eng2.Fired(), straight.Now(), straight.Fired())
	}
}

// TestEngineCheckpointRejectsClosures: a pending plain closure has no
// serializable identity and must fail the save.
func TestEngineCheckpointRejectsClosures(t *testing.T) {
	eng := NewEngine()
	eng.After(10, func() {})
	var enc ckpt.Enc
	if err := eng.SaveState(&enc); err == nil {
		t.Fatal("SaveState accepted a pending closure event")
	}
}

// TestEngineLoadUnregisteredID: restoring without re-registering the
// callbacks is a corrupt/mismatched snapshot, not a panic.
func TestEngineLoadUnregisteredID(t *testing.T) {
	eng := NewEngine()
	eng.RegisterRecurring(9, func() {})
	eng.ScheduleRecurring(5, 9)
	var enc ckpt.Enc
	if err := eng.SaveState(&enc); err != nil {
		t.Fatalf("SaveState: %v", err)
	}
	fresh := NewEngine()
	err := fresh.LoadState(ckpt.NewDec(enc.Bytes()))
	if !errors.Is(err, ckpt.ErrCorrupt) {
		t.Fatalf("LoadState = %v, want ErrCorrupt", err)
	}
}

// TestRNGCheckpointRoundTrip: a restored stream continues identically.
func TestRNGCheckpointRoundTrip(t *testing.T) {
	r := NewRNG(42)
	for i := 0; i < 100; i++ {
		r.Uint64()
	}
	var enc ckpt.Enc
	r.SaveState(&enc)

	want := make([]uint64, 50)
	for i := range want {
		want[i] = r.Uint64()
	}

	r2 := NewRNG(7)
	r2.LoadState(ckpt.NewDec(enc.Bytes()))
	for i := range want {
		if got := r2.Uint64(); got != want[i] {
			t.Fatalf("draw %d: restored %d, straight %d", i, got, want[i])
		}
	}
}
