package sim

import (
	"sync"

	"repro/internal/pool"
)

// Intra-simulation parallelism.
//
// A sharded engine partitions its event population by the state each event
// touches: shard 0 ("home") events may touch anything — the driver, the iMC,
// cross-channel bookkeeping — and always execute exclusively; events tagged
// with a nonzero shard (one per channel/DIMM pair in vans) touch only that
// shard's state. Same-cycle events from nonzero shards are therefore
// independent and may execute concurrently between two barriers.
//
// The unit of execution is the round: either one home event, or the maximal
// (at, seq)-ordered prefix of same-cycle nonzero-shard events at the front
// of the queue. Round membership is fixed by popping before anything runs,
// so the round structure is a pure function of the event stream — identical
// whether a round then executes inline on one goroutine or fanned out over
// workers. Within a parallel round every Schedule-family call is buffered in
// a per-shard side buffer (single writer: the worker driving that shard) and
// replayed at the barrier in global (at, seq) order of the issuing events,
// reproducing exactly the seq assignment, queue contents, and fired/peak
// counters of serial execution. That is the whole determinism argument:
// parallelism is an execution strategy, never an ordering.

// schedReq is one Schedule-family call buffered during a parallel round.
type schedReq struct {
	parent uint64 // seq of the round event that issued the call
	target int32
	at     Cycle
	rid    uint64
	fn     func()
	afn    func(any)
	arg    any
}

// shardBuf holds one shard's round-local state: the bucket of round events
// assigned to it, the seq of the event its worker is currently executing,
// and the schedules those events issued. Only that worker writes it while a
// round is in flight; the barrier merge drains it afterwards.
type shardBuf struct {
	cur  uint64
	reqs []schedReq
	next int
	idxs []int32 // indexes into parEngine.round
}

// parEngine is the round-execution state hung off a root engine once Shard
// has been called.
type parEngine struct {
	workers int         // configured parallelism; <= 1 executes rounds inline
	gate    func() bool // when non-nil and true, force inline (e.g. tracing)
	handles []*Engine   // memoized shard handles, index = shard id
	bufs    []shardBuf
	round   []event
	order   []int32 // distinct shards of the current round, first-seen order

	// inRound is true while round events execute; root-handle scheduling is
	// a funneling bug then and panics in both execution modes. collecting
	// is additionally true while workers may run concurrently, diverting
	// shard-handle schedules into the side buffers.
	inRound    bool
	collecting bool
}

// Shard returns the scheduling handle for shard i. Handles share all state
// with the root engine; the only difference is that events scheduled through
// handle i carry shard tag i, promising their callbacks touch only shard i's
// state. Shard(0) — and any i <= 0 — returns the engine itself: the home
// shard, whose events run exclusively. Calling Shard at all switches the
// engine to round-granular stepping (see RunWhile); it does not by itself
// enable concurrency — that takes SetParallel.
func (e *Engine) Shard(i int) *Engine {
	r := e.rootEngine()
	if i <= 0 {
		return r
	}
	p := r.ensurePar()
	for len(p.handles) <= i {
		p.handles = append(p.handles, nil)
	}
	if p.handles[i] == nil {
		p.handles[i] = &Engine{root: r, shard: int32(i), sharded: true}
	}
	return p.handles[i]
}

// SetParallel sets how many goroutines may execute one round, n <= 1 meaning
// fully inline. The actual fan-out per round is additionally capped by the
// number of distinct shards in the round and by the process-wide
// pool budget (pool.TryLease), so sweep-level and intra-simulation
// parallelism never oversubscribe GOMAXPROCS. Results are identical at
// every setting — this knob trades goroutine overhead for wall-clock only.
func (e *Engine) SetParallel(n int) {
	if n < 1 {
		n = 1
	}
	e.rootEngine().ensurePar().workers = n
}

// SetParallelGate installs a predicate checked before each round; while it
// returns true, rounds execute inline. vans points this at obs.Active so
// lifecycle tracing (a shared append-only buffer) is never written
// concurrently — the round structure is unchanged, so neither are results.
func (e *Engine) SetParallelGate(f func() bool) {
	e.rootEngine().ensurePar().gate = f
}

func (e *Engine) ensurePar() *parEngine {
	if e.par == nil {
		e.par = &parEngine{workers: 1}
		e.sharded = true
	}
	return e.par
}

// peekEvent returns the earliest pending event without popping it.
func (e *Engine) peekEvent() *event {
	if e.nowHead < len(e.nowq) {
		f := &e.nowq[e.nowHead]
		if len(e.heap) > 0 && e.heap[0].before(f) {
			return &e.heap[0]
		}
		return f
	}
	if len(e.heap) > 0 {
		return &e.heap[0]
	}
	return nil
}

// stepRound executes the next round and reports whether anything ran. A home
// event is its own round; otherwise the round is the maximal same-cycle run
// of nonzero-shard events at the queue front, with membership fixed before
// anything executes (events scheduled during the round — necessarily with
// equal or later timestamps — land in later rounds).
func (e *Engine) stepRound() bool {
	lead := e.peekEvent()
	if lead == nil {
		return false
	}
	if lead.shardOf() == 0 {
		return e.step()
	}
	p := e.par
	at := lead.at
	p.round = p.round[:0]
	for {
		ev := e.peekEvent()
		if ev == nil || ev.at != at || ev.shardOf() == 0 {
			break
		}
		pe, _ := e.popUpTo(at)
		p.round = append(p.round, pe)
	}
	e.now = at
	e.runRound()
	return true
}

// runRound executes the popped round, inline or fanned out.
func (e *Engine) runRound() {
	p := e.par
	n := len(p.round)

	// Partition into per-shard buckets in first-appearance order.
	p.order = p.order[:0]
	maxShard := int32(0)
	for i := range p.round {
		if s := p.round[i].shardOf(); s > maxShard {
			maxShard = s
		}
	}
	for int32(len(p.bufs)) <= maxShard {
		p.bufs = append(p.bufs, shardBuf{})
	}
	for i := range p.round {
		s := p.round[i].shardOf()
		b := &p.bufs[s]
		if len(b.idxs) == 0 {
			p.order = append(p.order, s)
		}
		b.idxs = append(b.idxs, int32(i))
	}

	want := p.workers
	if want > len(p.order) {
		want = len(p.order)
	}
	if want > 1 && p.gate != nil && p.gate() {
		want = 1
	}
	extra := 0
	if want > 1 {
		extra = pool.TryLease(want - 1)
	}

	if extra == 0 {
		// Inline: run the round in (at, seq) order on this goroutine with
		// direct scheduling. groupRemain keeps Pending()/peak accounting
		// identical to pure per-event stepping.
		for _, s := range p.order {
			p.bufs[s].idxs = p.bufs[s].idxs[:0]
		}
		p.inRound = true
		e.groupRemain = n
		for i := range p.round {
			e.groupRemain--
			e.fired++
			ev := &p.round[i]
			if ev.fn != nil {
				ev.fn()
			} else {
				ev.afn(ev.arg)
			}
			*ev = event{}
		}
		p.inRound = false
		return
	}

	// Parallel: whole buckets are assigned round-robin to extra+1 workers
	// (this goroutine participates). Each worker executes its buckets'
	// events in seq order; schedules divert into the shard's side buffer.
	workers := extra + 1
	var (
		wg    sync.WaitGroup
		panMu sync.Mutex
		pan   any
	)
	p.inRound = true
	p.collecting = true
	runBuckets := func(w int) {
		defer func() {
			if r := recover(); r != nil {
				panMu.Lock()
				if pan == nil {
					pan = r
				}
				panMu.Unlock()
			}
		}()
		for k := w; k < len(p.order); k += workers {
			b := &p.bufs[p.order[k]]
			for _, idx := range b.idxs {
				ev := &p.round[idx]
				b.cur = ev.seq
				if ev.fn != nil {
					ev.fn()
				} else {
					ev.afn(ev.arg)
				}
			}
		}
	}
	wg.Add(extra)
	for w := 1; w <= extra; w++ {
		go func(w int) {
			defer wg.Done()
			runBuckets(w)
		}(w)
	}
	runBuckets(0)
	wg.Wait()
	p.collecting = false
	p.inRound = false
	pool.Release(extra)
	if pan != nil {
		// A panicking worker leaves its buffers mid-write; surface the panic
		// instead of merging garbage (the simulation is dead either way).
		panic(pan)
	}

	// Barrier merge: walk the round in global (at, seq) order; each event's
	// buffered schedules sit next in its shard's buffer (workers execute a
	// shard's events in seq order, one event's calls buffer in issue order),
	// so consuming the consecutive run with matching parent seq replays the
	// exact serial insertion order. pending/peak retrace serial notePeak:
	// one decrement per pop, one increment + high-water check per schedule.
	pending := len(e.heap) + len(e.nowq) - e.nowHead + n
	peak := e.peak
	for i := range p.round {
		ev := &p.round[i]
		pending--
		b := &p.bufs[ev.shardOf()]
		for b.next < len(b.reqs) && b.reqs[b.next].parent == ev.seq {
			rq := &b.reqs[b.next]
			b.next++
			e.seq++
			ne := event{at: rq.at, seq: e.seq, tag: mkTag(rq.rid, rq.target),
				fn: rq.fn, afn: rq.afn, arg: rq.arg}
			if rq.at <= e.now {
				ne.at = e.now
				e.nowq = append(e.nowq, ne)
			} else {
				e.heapPush(ne)
			}
			pending++
			if pending > peak {
				peak = pending
			}
			*rq = schedReq{} // release callback references
		}
		*ev = event{}
	}
	e.peak = peak
	e.fired += uint64(n)
	for _, s := range p.order {
		b := &p.bufs[s]
		b.reqs = b.reqs[:0]
		b.next = 0
		b.idxs = b.idxs[:0]
	}
}

// buffer records a Schedule-family call issued from inside a parallel round.
// Only the worker driving shard `caller` appends to that shard's buffer, so
// no locking is needed.
func (p *parEngine) buffer(caller, target int32, at Cycle, rid uint64, fn func(), afn func(any), arg any) {
	if caller == 0 {
		panic("sim: scheduling through the root engine from inside a shard round (funnel via DeferHome/AfterHome)")
	}
	b := &p.bufs[caller]
	b.reqs = append(b.reqs, schedReq{parent: b.cur, target: target, at: at,
		rid: rid, fn: fn, afn: afn, arg: arg})
}
