package sim

import (
	"container/heap"
	"math/rand"
	"testing"
)

// ---------------------------------------------------------------- oracle
//
// The reference scheduler is the pre-rewrite implementation: a boxed
// container/heap ordered by (at, seq). The property test drives the real
// Engine through random schedules — including re-entrant scheduling from
// inside callbacks and partial RunUntil drains — and checks the firing
// sequence against the oracle's total order.

type oracleEvent struct {
	at  Cycle
	seq uint64
	id  int
}

type oracleHeap []oracleEvent

func (h oracleHeap) Len() int { return len(h) }
func (h oracleHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h oracleHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *oracleHeap) Push(x interface{}) { *h = append(*h, x.(oracleEvent)) }
func (h *oracleHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

type firing struct {
	at Cycle
	id int
}

// TestEnginePropertyVsOracle checks the engine's firing sequence against a
// container/heap oracle over randomized schedules.
//
// Every schedule request is logged with its *effective* cycle (the engine
// clamps requests in the past to Now) in engine seq order: requests made
// inside a firing callback are logged during that firing, so log order is
// exactly seq order. Because a re-entrant child always requests a cycle at
// or after its parent's firing cycle, the engine's firing sequence is the
// global (at, seq) sort of the logged set — which is what the oracle
// computes.
func TestEnginePropertyVsOracle(t *testing.T) {
	for trial := 0; trial < 100; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) + 1))
		e := NewEngine()

		type sched struct {
			at Cycle
			id int
		}
		var log []sched
		var got []firing
		nextID := 0

		var schedule func(at Cycle, depth int)
		schedule = func(at Cycle, depth int) {
			id := nextID
			nextID++
			eff := at
			if eff < e.Now() {
				eff = e.Now()
			}
			log = append(log, sched{eff, id})
			reentrant := depth < 2 && rng.Intn(4) == 0
			offset := Cycle(rng.Intn(20))
			e.Schedule(at, func() {
				got = append(got, firing{e.Now(), id})
				if reentrant {
					schedule(e.Now()+offset, depth+1)
				}
			})
		}

		// A batch of initial events, some at cycle 0, some beyond.
		n := 5 + rng.Intn(40)
		for i := 0; i < n; i++ {
			schedule(Cycle(rng.Intn(200)), 0)
		}
		// Drain partway, then schedule more — some now in the past, which
		// the engine must clamp to its advanced clock.
		e.RunUntil(Cycle(60 + rng.Intn(80)))
		m := rng.Intn(20)
		for i := 0; i < m; i++ {
			schedule(Cycle(rng.Intn(300)), 0)
		}
		e.Run()

		// Replay the log on the oracle: log order is engine seq order, and
		// effective cycles are pre-clamped, so pushing everything up front
		// yields the same (at, seq) pairs the engine used.
		var o oracleHeap
		for seq, s := range log {
			heap.Push(&o, oracleEvent{at: s.at, seq: uint64(seq), id: s.id})
		}
		var want []firing
		for o.Len() > 0 {
			ev := heap.Pop(&o).(oracleEvent)
			want = append(want, firing{ev.at, ev.id})
		}

		if len(got) != len(want) {
			t.Fatalf("trial %d: fired %d events, oracle fired %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: firing %d: engine %+v, oracle %+v", trial, i, got[i], want[i])
			}
		}
	}
}

// TestSameCycleFIFOInterleavesWithHeap pins the ordering rule between the
// same-cycle FIFO fast path and heap events landing on the same cycle:
// scheduling order (seq) decides, regardless of which structure holds the
// event.
func TestSameCycleFIFOInterleavesWithHeap(t *testing.T) {
	e := NewEngine()
	var got []int
	// Three heap events at cycle 10 (seq 1, 2, 3). The second one, while
	// firing, schedules two same-cycle events (FIFO, seq 4 and 5) — the
	// remaining heap event (seq 3) must still fire before them.
	e.Schedule(10, func() { got = append(got, 1) })
	e.Schedule(10, func() {
		// Now() == 10: these go to the FIFO with seq 4 and 5.
		e.Schedule(10, func() { got = append(got, 4) })
		e.Schedule(3, func() { got = append(got, 5) }) // past: clamped to 10
	})
	e.Schedule(10, func() { got = append(got, 3) }) // heap, seq 3
	e.Run()
	want := []int{1, 3, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
}

// TestScheduleInPastFiresBeforeAdvancing verifies that an event scheduled
// behind the clock fires at Now, before any later event.
func TestScheduleInPastFiresBeforeAdvancing(t *testing.T) {
	e := NewEngine()
	var order []Cycle
	e.Schedule(100, func() {
		e.Schedule(40, func() { order = append(order, e.Now()) }) // past
		e.Schedule(120, func() { order = append(order, e.Now()) })
	})
	e.Run()
	if len(order) != 2 || order[0] != 100 || order[1] != 120 {
		t.Fatalf("got firings at %v, want [100 120]", order)
	}
}

// TestRunUntilStopsAtExactCut models the power-fail cut: RunUntil must fire
// everything at or before the cut cycle (including same-cycle FIFO events
// created during the drain) and nothing after, leaving Now at the cut.
func TestRunUntilStopsAtExactCut(t *testing.T) {
	e := NewEngine()
	var fired []Cycle
	e.Schedule(50, func() {
		fired = append(fired, e.Now())
		// Same-cycle follow-up right at the cut: still inside the window.
		e.Schedule(50, func() { fired = append(fired, e.Now()) })
		e.Schedule(51, func() { t.Error("event after the cut fired") })
	})
	e.Schedule(49, func() { fired = append(fired, e.Now()) })
	e.RunUntil(50)
	if e.Now() != 50 {
		t.Fatalf("Now = %d after RunUntil(50)", e.Now())
	}
	if len(fired) != 3 || fired[0] != 49 || fired[1] != 50 || fired[2] != 50 {
		t.Fatalf("fired at %v, want [49 50 50]", fired)
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want the post-cut event still queued", e.Pending())
	}
	// The survivor fires once the deadline moves.
	if at, ok := e.NextAt(); !ok || at != 51 {
		t.Fatalf("NextAt = %d,%v, want 51,true", at, ok)
	}
}

// TestNextAtEmptyQueue pins NextAt's empty-queue contract, including after a
// drain (the FIFO ring must report empty once consumed).
func TestNextAtEmptyQueue(t *testing.T) {
	e := NewEngine()
	if at, ok := e.NextAt(); ok || at != 0 {
		t.Fatalf("NextAt on fresh engine = %d,%v, want 0,false", at, ok)
	}
	e.Schedule(0, func() {}) // same-cycle FIFO entry
	e.Schedule(7, func() {})
	if at, ok := e.NextAt(); !ok || at != 0 {
		t.Fatalf("NextAt = %d,%v, want 0,true (FIFO head)", at, ok)
	}
	e.Run()
	if at, ok := e.NextAt(); ok || at != 0 {
		t.Fatalf("NextAt after drain = %d,%v, want 0,false", at, ok)
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d after drain", e.Pending())
	}
}

// TestScheduleFnOrdersWithSchedule verifies the two scheduling forms share
// one (at, seq) order and that AfterFn delivers its argument.
func TestScheduleFnOrdersWithSchedule(t *testing.T) {
	e := NewEngine()
	var got []int
	push := func(a any) { got = append(got, a.(int)) }
	e.ScheduleFn(10, push, 1)
	e.Schedule(10, func() { got = append(got, 2) })
	e.AfterFn(10, push, 3)
	e.Schedule(5, func() { got = append(got, 0) })
	e.Run()
	for i, v := range got {
		if i != v {
			t.Fatalf("got %v, want [0 1 2 3]", got)
		}
	}
	if len(got) != 4 {
		t.Fatalf("got %v, want [0 1 2 3]", got)
	}
}
