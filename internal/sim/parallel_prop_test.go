package sim

import (
	"runtime"
	"testing"

	"repro/internal/ckpt"
	"repro/internal/pool"
)

// forceParallelism raises GOMAXPROCS for the duration of the test so the
// pool budget (GOMAXPROCS-1 extra workers) hands out tokens even on a
// single-CPU host — otherwise every parallel round would silently degrade
// to the inline path and the concurrent buffer/merge machinery would never
// execute. The scheduler time-slices the goroutines on however many cores
// exist; correctness and -race coverage do not need real cores.
func forceParallelism(t *testing.T, n int) {
	t.Helper()
	prev := runtime.GOMAXPROCS(n)
	t.Cleanup(func() { runtime.GOMAXPROCS(prev) })
}

// The sharded-engine property tests drive one deterministic event program —
// behavior is a pure function of each event's identity, never of execution
// order — through the engine at different parallelism levels and demand
// every observable be identical: per-shard firing sequences (cycle and id),
// the home firing sequence, and the final (now, seq, fired, peak) state.
// Run under -race they also prove the parallel rounds are data-race free.

// propMix is a splitmix64-style hash: the per-event behavior source.
func propMix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4b979
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// parTrace is everything observable about one program execution.
type parTrace struct {
	logs  [][]firing // index 0 = home shard
	now   Cycle
	seq   uint64
	fired uint64
	peak  int
}

// runShardProgram executes the deterministic program derived from seed on a
// fresh engine with `shards` shards at parallelism par. The drain mode
// alternates RunUntil cuts, counted RunWhile pumps, and a final Run — the
// same schedule of calls at every parallelism level, so it also pins the
// round-granularity contract of the pump loops.
func runShardProgram(t *testing.T, seed uint64, shards, par int) parTrace {
	t.Helper()
	e := NewEngine()
	h := make([]*Engine, shards+1)
	h[0] = e
	for s := 1; s <= shards; s++ {
		h[s] = e.Shard(s)
	}
	e.SetParallel(par)

	logs := make([][]firing, shards+1)

	// fire executes event (shard s, id): logs it, then schedules children
	// chosen purely from propMix(id) — same-shard future and same-cycle
	// events, home funnels, and (from home events) cross-shard dispatch.
	var fire func(s int, id uint64, depth int)
	fire = func(s int, id uint64, depth int) {
		logs[s] = append(logs[s], firing{h[s].Now(), int(id)})
		if depth >= 3 {
			return
		}
		r := propMix(seed ^ id)
		kids := int(r & 3) // 0..3 children
		for k := 0; k < kids; k++ {
			kid := id*8 + uint64(k) + 1
			kr := propMix(seed ^ kid)
			delay := Cycle(kr >> 32 & 7)
			child := func(cs int) func() {
				return func() { fire(cs, kid, depth+1) }
			}
			switch kr & 7 {
			case 0: // same-shard, same cycle
				h[s].Schedule(h[s].Now(), child(s))
			case 1, 2: // same-shard, future
				h[s].After(delay+1, child(s))
			case 3: // defer to home at this cycle
				h[s].DeferHome(child(0))
			case 4: // home, future
				h[s].AfterHome(delay+1, child(0))
			case 5: // home, absolute
				h[s].ScheduleHome(h[s].Now()+delay, child(0))
			default:
				if s == 0 {
					// Home context may dispatch to any shard directly.
					ts := 1 + int(kr>>8)%shards
					h[ts].After(delay, child(ts))
				} else {
					h[s].AfterFn(delay+2, func(a any) { fire(s, a.(uint64), depth+1) }, kid)
				}
			}
		}
	}

	// Seed population: a spread of home and shard events over early cycles.
	n := 40 + int(propMix(seed)%40)
	for i := 0; i < n; i++ {
		id := uint64(1_000_000 + i)
		r := propMix(seed ^ id)
		s := int(r % uint64(shards+1))
		at := Cycle(r >> 16 & 63)
		s2, id2 := s, id
		h[s].Schedule(at, func() { fire(s2, id2, 0) })
	}

	// Mixed drain schedule: exact cuts, counted pumps, full drain.
	e.RunUntil(10)
	for i := 0; i < 5; i++ {
		target := e.Fired() + 7
		e.RunWhile(func() bool { return e.Fired() < target })
	}
	e.RunUntil(40)
	e.Run()

	return parTrace{logs: logs, now: e.now, seq: e.seq, fired: e.fired, peak: e.peak}
}

func (a *parTrace) equal(b *parTrace) (string, bool) {
	if a.now != b.now || a.seq != b.seq || a.fired != b.fired || a.peak != b.peak {
		return "final engine state differs", false
	}
	if len(a.logs) != len(b.logs) {
		return "shard count differs", false
	}
	for s := range a.logs {
		if len(a.logs[s]) != len(b.logs[s]) {
			return "per-shard firing count differs", false
		}
		for i := range a.logs[s] {
			if a.logs[s][i] != b.logs[s][i] {
				return "per-shard firing order differs", false
			}
		}
	}
	return "", true
}

// TestShardedEngineParallelMatchesSerial is the parallel-engine oracle: the
// same program at par 1 (inline rounds), par 4, and par GOMAXPROCS must
// produce identical traces. par 1 itself is pinned against the legacy
// serial contract by TestEnginePropertyVsOracle running on unsharded
// engines plus the round-structure argument (rounds pop in (at, seq) order
// and execute in (at, seq) order inline).
func TestShardedEngineParallelMatchesSerial(t *testing.T) {
	forceParallelism(t, 8)
	for trial := 0; trial < 30; trial++ {
		seed := uint64(trial)*0x9e37 + 11
		shards := 2 + trial%4
		ref := runShardProgram(t, seed, shards, 1)
		for _, par := range []int{2, 4, 8} {
			got := runShardProgram(t, seed, shards, par)
			if why, ok := got.equal(&ref); !ok {
				t.Fatalf("trial %d par %d: %s", trial, par, why)
			}
		}
	}
}

// TestShardedEngineBudgetExhaustion runs the same program while the pool
// budget is fully leased away: every round must degrade to inline execution
// and still match.
func TestShardedEngineBudgetExhaustion(t *testing.T) {
	forceParallelism(t, 4)
	ref := runShardProgram(t, 77, 3, 1)
	got := pool.TryLease(1 << 20) // drain the whole budget
	defer pool.Release(got)
	par := runShardProgram(t, 77, 3, 4)
	if why, ok := par.equal(&ref); !ok {
		t.Fatalf("budget-exhausted run diverged: %s", why)
	}
}

// TestRootSchedulingInsideRoundPanics pins the funneling guard: a shard
// event that schedules through the root engine is a determinism bug and
// must panic — in inline rounds too, so serial tests catch it before any
// parallel run does.
func TestRootSchedulingInsideRoundPanics(t *testing.T) {
	e := NewEngine()
	s1 := e.Shard(1)
	s1.Schedule(5, func() {
		defer func() {
			if recover() == nil {
				t.Error("root-engine Schedule inside a shard round did not panic")
			}
		}()
		e.Schedule(10, func() {})
	})
	e.Run()
}

// TestShardedCheckpointCutRestoresIdentically cuts a recurring-event program
// mid-flight, round-trips it through SaveState/LoadState, and requires the
// continuation — on a fresh engine, at a different parallelism — to replay
// exactly what the uninterrupted run produced. This is the engine-level core
// of the "snapshots from a parallel run restore byte-identically on either
// engine" guarantee.
func TestShardedCheckpointCutRestoresIdentically(t *testing.T) {
	forceParallelism(t, 4)
	const shards = 3
	build := func(logs *[][]firing) (*Engine, []*Engine) {
		e := NewEngine()
		h := make([]*Engine, shards+1)
		h[0] = e
		for s := 1; s <= shards; s++ {
			h[s] = e.Shard(s)
		}
		for s := 0; s <= shards; s++ {
			s := s
			id := uint64(s + 1)
			h[s].RegisterRecurring(id, func() {
				(*logs)[s] = append((*logs)[s], firing{h[s].Now(), s})
				if h[s].Now() < 400 {
					h[s].AfterRecurring(Cycle(3+2*s), id)
				}
			})
		}
		return e, h
	}
	seedEvents := func(h []*Engine) {
		for s := 0; s <= shards; s++ {
			h[s].ScheduleRecurring(Cycle(1+s), uint64(s+1))
		}
	}

	// Reference: uninterrupted, parallel.
	refLogs := make([][]firing, shards+1)
	eRef, hRef := build(&refLogs)
	eRef.SetParallel(4)
	seedEvents(hRef)
	eRef.Run()

	for _, resumePar := range []int{1, 4} {
		gotLogs := make([][]firing, shards+1)
		e1, h1 := build(&gotLogs)
		e1.SetParallel(4)
		seedEvents(h1)
		e1.RunUntil(137)

		var enc ckpt.Enc
		if err := e1.SaveState(&enc); err != nil {
			t.Fatalf("SaveState: %v", err)
		}

		// Restore into a fresh engine (sharing the same logs) and finish.
		e2, _ := build(&gotLogs)
		e2.SetParallel(resumePar)
		if err := e2.LoadState(ckpt.NewDec(enc.Bytes())); err != nil {
			t.Fatalf("LoadState: %v", err)
		}
		e2.Run()

		if e2.Now() != eRef.Now() || e2.Fired() != eRef.Fired() {
			t.Fatalf("resumePar %d: restored run ended at (now %d, fired %d), reference (now %d, fired %d)",
				resumePar, e2.Now(), e2.Fired(), eRef.Now(), eRef.Fired())
		}
		for s := range refLogs {
			if len(gotLogs[s]) != len(refLogs[s]) {
				t.Fatalf("resumePar %d: shard %d fired %d events, reference %d",
					resumePar, s, len(gotLogs[s]), len(refLogs[s]))
			}
			for i := range refLogs[s] {
				if gotLogs[s][i] != refLogs[s][i] {
					t.Fatalf("resumePar %d: shard %d firing %d: got %+v, want %+v",
						resumePar, s, i, gotLogs[s][i], refLogs[s][i])
				}
			}
		}
	}
}
