package sim

import (
	"fmt"
	"sort"

	"repro/internal/ckpt"
)

// SaveState serializes the engine: the clock (now, seq), the execution
// counters (fired, peak pending), and every pending event as
// (at, seq, rid, shard). Field order: now, seq, fired, peak, event count,
// then events sorted by (at, seq). The shard tag is part of the record so a
// restored run keeps the exact round structure — and therefore the exact
// byte output — of an uninterrupted one, on either the serial or the
// parallel execution path.
//
// Only events scheduled through ScheduleRecurring can be saved — a pending
// plain closure has no identity outside this process, so its presence is an
// error. The vans driver cuts checkpoints at engine-idle barriers where the
// queue is empty, which trivially satisfies this; the recurring-ID path
// exists so mid-burst cuts (pollers in flight) also serialize.
func (e *Engine) SaveState(enc *ckpt.Enc) error {
	enc.U64(uint64(e.now))
	enc.U64(e.seq)
	enc.U64(e.fired)
	enc.U64(uint64(e.peak))

	evs := make([]event, 0, e.Pending())
	evs = append(evs, e.heap...)
	evs = append(evs, e.nowq[e.nowHead:]...)
	sort.Slice(evs, func(i, j int) bool { return evs[i].before(&evs[j]) })
	enc.U32(uint32(len(evs)))
	for i := range evs {
		if evs[i].ridOf() == 0 {
			return fmt.Errorf("sim: pending closure event at cycle %d cannot be checkpointed (schedule it via ScheduleRecurring)", evs[i].at)
		}
		enc.U64(uint64(evs[i].at))
		enc.U64(evs[i].seq)
		enc.U64(evs[i].ridOf())
		enc.U32(uint32(evs[i].shardOf()))
	}
	return nil
}

// LoadState restores state captured by SaveState into an engine whose
// recurring callbacks have already been re-registered under the same IDs.
// Pending events are rebuilt from the registry; an event whose ID is not
// registered is a corrupt or mismatched snapshot.
func (e *Engine) LoadState(dec *ckpt.Dec) error {
	now := Cycle(dec.U64())
	seq := dec.U64()
	fired := dec.U64()
	peak := int(dec.U64())
	n := dec.Count(28)
	if err := dec.Err(); err != nil {
		return err
	}

	e.now = now
	e.seq = seq
	e.fired = fired
	e.peak = peak
	e.heap = e.heap[:0]
	e.nowq = e.nowq[:0]
	e.nowHead = 0
	for i := 0; i < n; i++ {
		at := Cycle(dec.U64())
		evSeq := dec.U64()
		rid := dec.U64()
		shard := int32(dec.U32())
		if err := dec.Err(); err != nil {
			return err
		}
		fn, ok := e.recurring[rid]
		if !ok {
			return fmt.Errorf("%w: pending event references unregistered recurring callback %d",
				ckpt.ErrCorrupt, rid)
		}
		if evSeq > seq {
			return fmt.Errorf("%w: event seq %d beyond engine seq %d", ckpt.ErrCorrupt, evSeq, seq)
		}
		// All restored events go through the heap: step() orders strictly by
		// (at, seq) across heap and FIFO, so the original firing order is
		// reproduced even for events that lived in the same-cycle FIFO when
		// captured.
		e.heapPush(event{at: at, seq: evSeq, tag: mkTag(rid, shard), fn: fn})
	}
	e.notePeak()
	return nil
}

// SaveState serializes the RNG stream state (s0, s1).
func (r *RNG) SaveState(enc *ckpt.Enc) {
	enc.U64(r.s0)
	enc.U64(r.s1)
}

// LoadState restores the RNG stream state.
func (r *RNG) LoadState(dec *ckpt.Dec) {
	r.s0 = dec.U64()
	r.s1 = dec.U64()
}
