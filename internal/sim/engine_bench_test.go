package sim

import "testing"

// BenchmarkEngineScheduleRun is the engine microbenchmark the perf
// trajectory tracks: schedule-and-fire cost per event with a mix of
// same-cycle (FIFO fast path) and future (heap) events. The boxed
// container/heap implementation paid two allocations per event here; the
// value heap pays zero.
func BenchmarkEngineScheduleRun(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(e.Now()+Cycle(i%17), fn)
		if i%64 == 63 {
			e.Run()
		}
	}
	e.Run()
}

// BenchmarkEngineDeepHeap exercises pure heap traffic (no same-cycle fast
// path): a standing population of future events with one pop per push.
func BenchmarkEngineDeepHeap(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	for i := 0; i < 4096; i++ {
		e.Schedule(Cycle(i+1), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(e.Now()+Cycle(1+i%511), fn)
		e.step()
	}
}

// BenchmarkEngineRunUntil tracks the deadline-bounded drain path: RunUntil
// used to re-derive the next event time through the exported NextAt peek on
// every iteration; the fused popUpTo makes one ordering decision per event,
// keeping this within noise of BenchmarkEngineScheduleRun.
func BenchmarkEngineRunUntil(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(e.Now()+Cycle(i%17), fn)
		if i%64 == 63 {
			e.RunUntil(e.Now() + 17)
		}
	}
	e.Run()
}

// TestRunUntilAllocFree pins the RunUntil fast path to zero allocations once
// capacities are warm, matching the Run guard below.
func TestRunUntilAllocFree(t *testing.T) {
	e := NewEngine()
	fn := func() {}
	for i := 0; i < 2048; i++ {
		e.Schedule(e.Now()+Cycle(i%31), fn)
	}
	e.Run()
	avg := testing.AllocsPerRun(200, func() {
		for i := 0; i < 256; i++ {
			e.After(Cycle(i%13), fn)
		}
		e.RunUntil(e.Now() + 13)
		e.Run()
	})
	if avg != 0 {
		t.Fatalf("Schedule/RunUntil allocated %.2f times per run, want 0", avg)
	}
}

// TestScheduleAllocFree is the allocation regression guard for the engine
// hot path: once slice capacity is warm, Schedule/After/Run must not
// allocate at all (the boxed heap allocated on every push and pop).
func TestScheduleAllocFree(t *testing.T) {
	e := NewEngine()
	fn := func() {}
	// Warm the heap and FIFO capacity.
	for i := 0; i < 2048; i++ {
		e.Schedule(e.Now()+Cycle(i%31), fn)
	}
	e.Run()
	avg := testing.AllocsPerRun(200, func() {
		for i := 0; i < 256; i++ {
			e.After(Cycle(i%13), fn) // mixes FIFO (0) and heap (>0) paths
		}
		e.Run()
	})
	if avg != 0 {
		t.Fatalf("Schedule/After/Run allocated %.2f times per run, want 0", avg)
	}
}

// TestScheduleFnAllocFree guards the recurring-event variant: AfterFn with a
// package-level function and a pointer argument must not allocate.
func TestScheduleFnAllocFree(t *testing.T) {
	e := NewEngine()
	type comp struct{ fired int }
	c := &comp{}
	tick := func(a any) { a.(*comp).fired++ }
	for i := 0; i < 1024; i++ {
		e.AfterFn(Cycle(i%29), tick, c)
	}
	e.Run()
	avg := testing.AllocsPerRun(200, func() {
		for i := 0; i < 256; i++ {
			e.AfterFn(Cycle(i%13), tick, c)
		}
		e.Run()
	})
	if avg != 0 {
		t.Fatalf("AfterFn/Run allocated %.2f times per run, want 0", avg)
	}
}
