package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEngineOrdersEventsByCycle(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(30, func() { got = append(got, 3) })
	e.Schedule(10, func() { got = append(got, 1) })
	e.Schedule(20, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("Now = %d, want 30", e.Now())
	}
}

func TestEngineSameCycleFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-cycle events not FIFO: %v", got)
		}
	}
}

func TestEngineScheduleInPastClampsToNow(t *testing.T) {
	e := NewEngine()
	var fired Cycle = Never
	e.Schedule(100, func() {
		e.Schedule(50, func() { fired = e.Now() }) // in the past
	})
	e.Run()
	if fired != 100 {
		t.Fatalf("past-scheduled event fired at %d, want 100", fired)
	}
}

func TestEngineAfterAndNesting(t *testing.T) {
	e := NewEngine()
	var trail []Cycle
	e.After(10, func() {
		trail = append(trail, e.Now())
		e.After(5, func() { trail = append(trail, e.Now()) })
	})
	e.Run()
	if len(trail) != 2 || trail[0] != 10 || trail[1] != 15 {
		t.Fatalf("trail = %v, want [10 15]", trail)
	}
}

func TestEngineRunUntilAdvancesTime(t *testing.T) {
	e := NewEngine()
	ran := false
	e.Schedule(10, func() { ran = true })
	e.Schedule(100, func() { t.Fatal("should not run") })
	e.RunUntil(50)
	if !ran {
		t.Fatal("event at 10 did not run")
	}
	if e.Now() != 50 {
		t.Fatalf("Now = %d, want 50", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", e.Pending())
	}
}

func TestEngineRunWhile(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.Schedule(Cycle(i), func() { count++ })
	}
	e.RunWhile(func() bool { return count < 3 })
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
}

func TestQueueFIFOAndBounds(t *testing.T) {
	q := NewQueue[int](3)
	for i := 1; i <= 3; i++ {
		if !q.Push(i) {
			t.Fatalf("push %d failed", i)
		}
	}
	if q.Push(4) {
		t.Fatal("push into full queue succeeded")
	}
	if !q.Full() || q.Len() != 3 {
		t.Fatalf("Full=%v Len=%d", q.Full(), q.Len())
	}
	for want := 1; want <= 3; want++ {
		got, ok := q.Pop()
		if !ok || got != want {
			t.Fatalf("pop = %d,%v want %d,true", got, ok, want)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("pop from empty succeeded")
	}
}

func TestQueueUnbounded(t *testing.T) {
	q := NewQueue[int](0)
	for i := 0; i < 1000; i++ {
		if !q.Push(i) {
			t.Fatalf("unbounded push %d failed", i)
		}
	}
	if q.Full() {
		t.Fatal("unbounded queue reports full")
	}
}

func TestQueueRemoveAtPreservesOrder(t *testing.T) {
	q := NewQueue[int](0)
	for i := 0; i < 5; i++ {
		q.Push(i)
	}
	if got := q.RemoveAt(2); got != 2 {
		t.Fatalf("RemoveAt(2) = %d, want 2", got)
	}
	want := []int{0, 1, 3, 4}
	for _, w := range want {
		got, _ := q.Pop()
		if got != w {
			t.Fatalf("after RemoveAt, pop = %d want %d", got, w)
		}
	}
}

func TestQueuePeekAndScan(t *testing.T) {
	q := NewQueue[string](0)
	q.Push("a")
	q.Push("b")
	if v, ok := q.Peek(); !ok || v != "a" {
		t.Fatalf("peek = %q,%v", v, ok)
	}
	var seen []string
	q.Scan(func(i int, s string) bool { seen = append(seen, s); return true })
	if len(seen) != 2 || seen[0] != "a" || seen[1] != "b" {
		t.Fatalf("scan = %v", seen)
	}
	if q.Len() != 2 {
		t.Fatal("scan mutated the queue")
	}
}

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical values", same)
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 1000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

// Property: PermCycle always produces a single-cycle permutation — following
// the chain visits every element exactly once before returning to start.
func TestPermCycleIsSingleCycle(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%200) + 2
		p := NewRNG(seed).PermCycle(n)
		seen := make([]bool, n)
		at := 0
		for i := 0; i < n; i++ {
			if seen[at] {
				return false
			}
			seen[at] = true
			at = p[at]
		}
		return at == 0 // back to start after exactly n hops
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Perm is a permutation (bijection over [0,n)).
func TestPermIsBijection(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%200) + 1
		p := NewRNG(seed).Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAccumulatorMoments(t *testing.T) {
	a := NewAccumulator()
	for _, v := range []float64{1, 2, 3, 4, 5} {
		a.Observe(v)
	}
	if a.N() != 5 {
		t.Fatalf("N = %d", a.N())
	}
	if got := a.Mean(); math.Abs(got-3) > 1e-12 {
		t.Fatalf("Mean = %v", got)
	}
	if got := a.Std(); math.Abs(got-math.Sqrt(2)) > 1e-12 {
		t.Fatalf("Std = %v", got)
	}
	if a.Min() != 1 || a.Max() != 5 {
		t.Fatalf("Min/Max = %v/%v", a.Min(), a.Max())
	}
	if got := a.Percentile(50); got != 3 {
		t.Fatalf("p50 = %v", got)
	}
	if got := a.Percentile(0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
	if got := a.Percentile(100); got != 5 {
		t.Fatalf("p100 = %v", got)
	}
}

func TestAccumulatorEmpty(t *testing.T) {
	a := NewAccumulator()
	if a.Mean() != 0 || a.Std() != 0 || a.Min() != 0 || a.Max() != 0 || a.Percentile(50) != 0 {
		t.Fatal("empty accumulator should return zeros")
	}
}

func TestAccumulatorReset(t *testing.T) {
	a := NewAccumulator()
	a.Observe(10)
	a.Reset()
	if a.N() != 0 || a.Sum() != 0 {
		t.Fatal("reset did not clear")
	}
	a.Observe(2)
	if a.Mean() != 2 {
		t.Fatal("accumulator unusable after reset")
	}
}

func TestGeomean(t *testing.T) {
	got := Geomean([]float64{1, 100})
	if math.Abs(got-10) > 1e-9 {
		t.Fatalf("Geomean = %v, want 10", got)
	}
	if Geomean(nil) != 0 {
		t.Fatal("Geomean(nil) != 0")
	}
	if g := Geomean([]float64{-1, 0, 4}); g != 4 {
		t.Fatalf("Geomean skipping non-positive = %v, want 4", g)
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestPercentileMonotone(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		a := NewAccumulator()
		for i := 0; i < 50; i++ {
			a.Observe(r.Float64() * 1000)
		}
		prev := a.Percentile(0)
		for p := 5.0; p <= 100; p += 5 {
			cur := a.Percentile(p)
			if cur < prev-1e-9 {
				return false
			}
			prev = cur
		}
		return a.Percentile(0) >= a.Min()-1e-9 && a.Percentile(100) <= a.Max()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
