package sim

import (
	"fmt"
	"math"
	"sort"
)

// Counter is a named monotonically increasing event counter.
type Counter struct {
	Name  string
	Value uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.Value += n }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Value++ }

// Accumulator collects samples and exposes streaming moments plus the raw
// samples for percentile queries. It is used for latency distributions.
type Accumulator struct {
	samples []float64
	sum     float64
	sumSq   float64
	min     float64
	max     float64
	sorted  bool
}

// NewAccumulator returns an empty accumulator.
func NewAccumulator() *Accumulator {
	return &Accumulator{min: math.Inf(1), max: math.Inf(-1)}
}

// Observe records one sample.
func (a *Accumulator) Observe(v float64) {
	a.samples = append(a.samples, v)
	a.sum += v
	a.sumSq += v * v
	if v < a.min {
		a.min = v
	}
	if v > a.max {
		a.max = v
	}
	a.sorted = false
}

// N returns the sample count.
func (a *Accumulator) N() int { return len(a.samples) }

// Sum returns the sample total.
func (a *Accumulator) Sum() float64 { return a.sum }

// Mean returns the arithmetic mean, or 0 with no samples.
func (a *Accumulator) Mean() float64 {
	if len(a.samples) == 0 {
		return 0
	}
	return a.sum / float64(len(a.samples))
}

// Std returns the population standard deviation, or 0 with <2 samples.
func (a *Accumulator) Std() float64 {
	n := float64(len(a.samples))
	if n < 2 {
		return 0
	}
	v := a.sumSq/n - (a.sum/n)*(a.sum/n)
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// Min returns the smallest sample, or 0 with no samples.
func (a *Accumulator) Min() float64 {
	if len(a.samples) == 0 {
		return 0
	}
	return a.min
}

// Max returns the largest sample, or 0 with no samples.
func (a *Accumulator) Max() float64 {
	if len(a.samples) == 0 {
		return 0
	}
	return a.max
}

// Percentile returns the p-th percentile (0 <= p <= 100) using
// nearest-rank interpolation, or 0 with no samples.
func (a *Accumulator) Percentile(p float64) float64 {
	if len(a.samples) == 0 {
		return 0
	}
	if !a.sorted {
		sort.Float64s(a.samples)
		a.sorted = true
	}
	if p <= 0 {
		return a.samples[0]
	}
	if p >= 100 {
		return a.samples[len(a.samples)-1]
	}
	rank := p / 100 * float64(len(a.samples)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return a.samples[lo]
	}
	frac := rank - float64(lo)
	return a.samples[lo]*(1-frac) + a.samples[hi]*frac
}

// Samples returns the raw samples (sorted if a percentile was queried).
// The caller must not mutate the returned slice.
func (a *Accumulator) Samples() []float64 { return a.samples }

// Reset discards all samples.
func (a *Accumulator) Reset() {
	a.samples = a.samples[:0]
	a.sum, a.sumSq = 0, 0
	a.min, a.max = math.Inf(1), math.Inf(-1)
	a.sorted = false
}

// String summarizes the distribution for logs and reports.
func (a *Accumulator) String() string {
	return fmt.Sprintf("n=%d mean=%.2f std=%.2f min=%.2f p50=%.2f p99=%.2f max=%.2f",
		a.N(), a.Mean(), a.Std(), a.Min(), a.Percentile(50), a.Percentile(99), a.Max())
}

// Summary is a compact snapshot of a distribution: the shape served by the
// nvmserved metrics endpoint and reused anywhere a full Accumulator would be
// too heavy to ship (it marshals to flat JSON).
type Summary struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max"`
}

// Summarize returns the accumulator's distribution summary.
func (a *Accumulator) Summarize() Summary {
	return Summary{
		N:    a.N(),
		Mean: a.Mean(),
		P50:  a.Percentile(50),
		P95:  a.Percentile(95),
		P99:  a.Percentile(99),
		Max:  a.Max(),
	}
}

// Geomean returns the geometric mean of xs, ignoring non-positive values.
// It returns 0 when no positive values exist.
func Geomean(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}
