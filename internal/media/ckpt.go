package media

import (
	"fmt"

	"repro/internal/ckpt"
	"repro/internal/sim"
)

// saveState serializes the paged counter array as its allocated leaves.
// Field order: leaf count, then per leaf (index, 512 raw counters) in
// ascending index order.
func (p *pagedU64) saveState(enc *ckpt.Enc) {
	n := uint32(0)
	for _, l := range p.leaves {
		if l != nil {
			n++
		}
	}
	enc.U32(n)
	for li, l := range p.leaves {
		if l == nil {
			continue
		}
		enc.U64(uint64(li))
		for _, v := range l {
			enc.U64(v)
		}
	}
}

func (p *pagedU64) loadState(dec *ckpt.Dec) error {
	n := dec.Count(8 + counterLeafSize*8)
	if err := dec.Err(); err != nil {
		return err
	}
	for i := range p.leaves {
		p.leaves[i] = nil
	}
	for i := 0; i < n; i++ {
		li := dec.U64()
		if err := dec.Err(); err != nil {
			return err
		}
		if li >= uint64(len(p.leaves)) {
			return fmt.Errorf("%w: paged counter leaf %d beyond directory of %d",
				ckpt.ErrCorrupt, li, len(p.leaves))
		}
		l := make([]uint64, counterLeafSize)
		for j := range l {
			l[j] = dec.U64()
		}
		if err := dec.Err(); err != nil {
			return err
		}
		p.leaves[li] = l
	}
	return nil
}

// saveState serializes the functional data image as its allocated slabs.
// Field order: slab count, then per slab (index, length-prefixed bytes).
func (p *pagedData) saveState(enc *ckpt.Enc) {
	n := uint32(0)
	for _, l := range p.leaves {
		if l != nil {
			n++
		}
	}
	enc.U32(n)
	for li, l := range p.leaves {
		if l == nil {
			continue
		}
		enc.U64(uint64(li))
		enc.BytesField(l)
	}
}

func (p *pagedData) loadState(dec *ckpt.Dec) error {
	slabBytes := int(dataLeafBlocks * p.blockSize)
	n := dec.Count(8 + 4)
	if err := dec.Err(); err != nil {
		return err
	}
	for i := range p.leaves {
		p.leaves[i] = nil
	}
	for i := 0; i < n; i++ {
		li := dec.U64()
		slab := dec.BytesField()
		if err := dec.Err(); err != nil {
			return err
		}
		if li >= uint64(len(p.leaves)) {
			return fmt.Errorf("%w: data slab %d beyond directory of %d",
				ckpt.ErrCorrupt, li, len(p.leaves))
		}
		if len(slab) != slabBytes {
			return fmt.Errorf("%w: data slab %d is %d bytes, want %d",
				ckpt.ErrCorrupt, li, len(slab), slabBytes)
		}
		p.leaves[li] = slab
	}
	return nil
}

// cyclesToU64 converts a cycle slice for serialization without aliasing.
func cyclesToU64(cs []sim.Cycle) []uint64 {
	out := make([]uint64, len(cs))
	for i, c := range cs {
		out[i] = uint64(c)
	}
	return out
}

// SaveState serializes the media model's mutable state. Field order:
// partFree, readFree, writeFree, wear leaves, wearAt leaves, functional
// image presence + slabs, stats (reads, writes, bytes read, bytes written),
// read-latency histogram, write-latency histogram. Configuration (latencies,
// geometry) is not carried — the restoring side rebuilds from the same plan.
func (x *XPoint) SaveState(enc *ckpt.Enc) {
	enc.U64s(cyclesToU64(x.partFree))
	enc.U64s(cyclesToU64(x.readFree))
	enc.U64s(cyclesToU64(x.writeFree))
	x.wear.saveState(enc)
	x.wearAt.saveState(enc)
	enc.Bool(x.data != nil)
	if x.data != nil {
		x.data.saveState(enc)
	}
	enc.U64(x.stats.Reads)
	enc.U64(x.stats.Writes)
	enc.U64(x.stats.BytesRead)
	enc.U64(x.stats.BytesWrite)
	x.histRead.SaveState(enc)
	x.histWrite.SaveState(enc)
}

// LoadState restores state captured by SaveState into a model built from the
// same configuration.
func (x *XPoint) LoadState(dec *ckpt.Dec) error {
	loadCycles := func(dst []sim.Cycle) error {
		vs := dec.U64s()
		if err := dec.Err(); err != nil {
			return err
		}
		if len(vs) != len(dst) {
			return fmt.Errorf("%w: media port/partition vector of %d entries, want %d",
				ckpt.ErrCorrupt, len(vs), len(dst))
		}
		for i, v := range vs {
			dst[i] = sim.Cycle(v)
		}
		return nil
	}
	if err := loadCycles(x.partFree); err != nil {
		return err
	}
	if err := loadCycles(x.readFree); err != nil {
		return err
	}
	if err := loadCycles(x.writeFree); err != nil {
		return err
	}
	if err := x.wear.loadState(dec); err != nil {
		return err
	}
	if err := x.wearAt.loadState(dec); err != nil {
		return err
	}
	hasData := dec.Bool()
	if err := dec.Err(); err != nil {
		return err
	}
	if hasData != (x.data != nil) {
		return fmt.Errorf("%w: snapshot functional-store presence %v, this media %v",
			ckpt.ErrCorrupt, hasData, x.data != nil)
	}
	if hasData {
		if err := x.data.loadState(dec); err != nil {
			return err
		}
	}
	x.stats.Reads = dec.U64()
	x.stats.Writes = dec.U64()
	x.stats.BytesRead = dec.U64()
	x.stats.BytesWrite = dec.U64()
	if err := x.histRead.LoadState(dec); err != nil {
		return err
	}
	if err := x.histWrite.LoadState(dec); err != nil {
		return err
	}
	return dec.Err()
}
