package media

// Two-level paged stores backing the media model's wear ledger and
// functional data image. They replace the former map[uint64]-keyed stores on
// the access hot path: a dense directory indexed by line number points at
// lazily allocated leaves, so lookups are two array indexes instead of a
// hash probe, while never-touched regions cost only a nil directory slot —
// the same sparse-address behavior the maps provided (absent == zero).

const (
	counterLeafShift = 9
	counterLeafSize  = 1 << counterLeafShift // 512 uint64s = one 4KB page
)

// pagedU64 is a paged array of uint64 counters over the index space [0, n).
// Absent entries read as 0, mirroring the map semantics it replaces.
type pagedU64 struct {
	leaves [][]uint64
}

func newPagedU64(n uint64) *pagedU64 {
	return &pagedU64{leaves: make([][]uint64, (n+counterLeafSize-1)>>counterLeafShift)}
}

func (p *pagedU64) get(i uint64) uint64 {
	if l := p.leaves[i>>counterLeafShift]; l != nil {
		return l[i&(counterLeafSize-1)]
	}
	return 0
}

func (p *pagedU64) set(i, v uint64) {
	li := i >> counterLeafShift
	l := p.leaves[li]
	if l == nil {
		if v == 0 {
			return // zero is the default; keep the region sparse
		}
		l = make([]uint64, counterLeafSize)
		p.leaves[li] = l
	}
	l[i&(counterLeafSize-1)] = v
}

// forEach visits every nonzero entry in index order.
func (p *pagedU64) forEach(fn func(i, v uint64)) {
	for li, l := range p.leaves {
		if l == nil {
			continue
		}
		base := uint64(li) << counterLeafShift
		for j, v := range l {
			if v != 0 {
				fn(base+uint64(j), v)
			}
		}
	}
}

// dataLeafBlocks is the functional-store slab granularity: each leaf holds
// this many contiguous media blocks (16KB of data at the 256B block size).
const dataLeafBlocks = 64

// pagedData is the functional data image: a directory of lazily allocated
// byte slabs indexed by media block number. Never-written blocks read as
// zeroes, matching the sparse map it replaces.
type pagedData struct {
	blockSize uint64
	leaves    [][]byte
}

func newPagedData(blockSize, capacity uint64) *pagedData {
	blocks := (capacity + blockSize - 1) / blockSize
	n := (blocks + dataLeafBlocks - 1) / dataLeafBlocks
	return &pagedData{blockSize: blockSize, leaves: make([][]byte, n)}
}

// block returns the backing bytes of media block i, allocating the covering
// slab when alloc is set. Without alloc it returns nil for never-written
// slabs (callers treat that as all-zero).
func (p *pagedData) block(i uint64, alloc bool) []byte {
	li := i / dataLeafBlocks
	l := p.leaves[li]
	if l == nil {
		if !alloc {
			return nil
		}
		l = make([]byte, dataLeafBlocks*p.blockSize)
		p.leaves[li] = l
	}
	off := (i % dataLeafBlocks) * p.blockSize
	return l[off : off+p.blockSize : off+p.blockSize]
}

// adoptFrom deep-copies another image's allocated slabs into this one
// (power-fail recovery: the media image is persistent).
func (p *pagedData) adoptFrom(old *pagedData) {
	for li, l := range old.leaves {
		if l == nil {
			continue
		}
		cp := make([]byte, len(l))
		copy(cp, l)
		p.leaves[li] = cp
	}
}
