package media

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func newTest(cfg Config) (*sim.Engine, *XPoint) {
	eng := sim.NewEngine()
	return eng, New(eng, cfg)
}

func TestDefaultsApplied(t *testing.T) {
	_, x := newTest(Config{})
	c := x.Config()
	if c.BlockSize != 256 || c.Partitions != 16 || c.WearBlock != 64<<10 {
		t.Fatalf("defaults not applied: %+v", c)
	}
}

func TestAccessLatencyAsymmetry(t *testing.T) {
	eng, x := newTest(Config{})
	rEnd := x.Access(0, false, nil)
	_ = eng
	// Same partition: write must start after the read finishes.
	wEnd := x.Access(0, true, nil)
	if wEnd <= rEnd {
		t.Fatal("same-partition accesses not serialized")
	}
	if wEnd-rEnd <= rEnd {
		t.Fatalf("write service (%d) not longer than read service (%d)", wEnd-rEnd, rEnd)
	}
}

func TestPartitionParallelism(t *testing.T) {
	_, x := newTest(Config{})
	blk := x.Config().BlockSize
	// Accesses to different partitions all start at cycle 0.
	end0 := x.Access(0, false, nil)
	end1 := x.Access(blk, false, nil)
	if end0 != end1 {
		t.Fatalf("different partitions serialized: %d vs %d", end0, end1)
	}
	// 17th access wraps to partition 0 and queues behind the first.
	end16 := x.Access(blk*16, false, nil)
	if end16 <= end0 {
		t.Fatal("wrapped partition access did not queue")
	}
}

func TestDoneCallbackFiresAtCompletion(t *testing.T) {
	eng, x := newTest(Config{})
	var at sim.Cycle
	end := x.Access(0, true, nil)
	_ = end
	want := x.Access(256, false, func() { at = eng.Now() })
	eng.Run()
	if at != want {
		t.Fatalf("done fired at %d, want %d", at, want)
	}
}

func TestWearCounting(t *testing.T) {
	_, x := newTest(Config{})
	for i := 0; i < 10; i++ {
		x.Access(0, true, nil)
	}
	x.Access(0, false, nil) // reads do not wear
	if got := x.WearCount(0); got != 10 {
		t.Fatalf("WearCount = %d, want 10", got)
	}
	// Same 64KB wear block, different media block.
	x.Access(1024, true, nil)
	if got := x.WearCount(0); got != 11 {
		t.Fatalf("WearCount same wear block = %d, want 11", got)
	}
	// Different wear block.
	if got := x.WearCount(64 << 10); got != 0 {
		t.Fatalf("WearCount other block = %d, want 0", got)
	}
	x.ResetWear(512)
	if got := x.WearCount(0); got != 0 {
		t.Fatalf("WearCount after reset = %d, want 0", got)
	}
}

func TestTotalWear(t *testing.T) {
	_, x := newTest(Config{})
	x.Access(0, true, nil)
	x.Access(64<<10, true, nil)
	x.Access(128<<10, true, nil)
	if got := x.TotalWear(); got != 3 {
		t.Fatalf("TotalWear = %d, want 3", got)
	}
}

func TestStatsCounts(t *testing.T) {
	_, x := newTest(Config{})
	x.Access(0, false, nil)
	x.Access(256, true, nil)
	st := x.Stats()
	if st.Reads != 1 || st.Writes != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.BytesRead != 256 || st.BytesWrite != 256 {
		t.Fatalf("byte stats = %+v", st)
	}
}

func TestFunctionalDataRoundTrip(t *testing.T) {
	_, x := newTest(Config{Functional: true})
	payload := []byte("hello, xpoint")
	x.WriteData(1000, payload) // straddles no block boundary
	got := x.ReadData(1000, len(payload))
	if !bytes.Equal(got, payload) {
		t.Fatalf("ReadData = %q, want %q", got, payload)
	}
}

func TestFunctionalDataCrossesBlocks(t *testing.T) {
	_, x := newTest(Config{Functional: true})
	payload := make([]byte, 600) // spans three 256B blocks
	for i := range payload {
		payload[i] = byte(i)
	}
	x.WriteData(200, payload)
	got := x.ReadData(200, len(payload))
	if !bytes.Equal(got, payload) {
		t.Fatal("cross-block round trip failed")
	}
	// Unwritten area reads as zero.
	if z := x.ReadData(1<<20, 4); !bytes.Equal(z, []byte{0, 0, 0, 0}) {
		t.Fatalf("unwritten read = %v", z)
	}
}

func TestFunctionalDisabledNoops(t *testing.T) {
	_, x := newTest(Config{})
	x.WriteData(0, []byte{1, 2, 3})
	if got := x.ReadData(0, 3); got != nil {
		t.Fatalf("non-functional ReadData = %v, want nil", got)
	}
}

func TestCopyBlock(t *testing.T) {
	_, x := newTest(Config{Functional: true})
	x.WriteData(0, []byte{9, 8, 7})
	x.CopyBlock(0, 4096)
	if got := x.ReadData(4096, 3); !bytes.Equal(got, []byte{9, 8, 7}) {
		t.Fatalf("CopyBlock data = %v", got)
	}
	// Copying an unwritten block clears the destination.
	x.CopyBlock(8192, 4096)
	if got := x.ReadData(4096, 3); !bytes.Equal(got, []byte{0, 0, 0}) {
		t.Fatalf("CopyBlock from empty = %v", got)
	}
}

// Property: functional store round-trips arbitrary writes at arbitrary
// offsets (last-write-wins within a single sequential pass).
func TestFunctionalRoundTripProperty(t *testing.T) {
	f := func(addrRaw uint32, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		if len(data) > 2048 {
			data = data[:2048]
		}
		_, x := newTest(Config{Functional: true})
		addr := uint64(addrRaw)
		x.WriteData(addr, data)
		return bytes.Equal(x.ReadData(addr, len(data)), data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: per-partition completion times never decrease (serialization
// invariant).
func TestPartitionSerializationProperty(t *testing.T) {
	f := func(seed uint64) bool {
		eng, x := newTest(Config{})
		rng := sim.NewRNG(seed)
		lastEnd := make(map[int]sim.Cycle)
		for i := 0; i < 200; i++ {
			addr := rng.Uint64n(1 << 22)
			p := x.partition(addr % x.cfg.Capacity)
			end := x.Access(addr, rng.Intn(2) == 0, nil)
			if prev, ok := lastEnd[p]; ok && end <= prev {
				return false
			}
			lastEnd[p] = end
			if rng.Intn(4) == 0 {
				eng.RunUntil(eng.Now() + 100)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
