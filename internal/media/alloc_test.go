package media

import (
	"testing"

	"repro/internal/sim"
)

// TestMediaRoundTripAllocFree is the allocation regression guard for the
// media hot path: once the paged wear/data leaves covering an address are
// warm, a write+read round trip (timing access, wear accounting, functional
// store update) must not allocate. The former map-backed stores allocated on
// insert and the boxed event heap on every completion schedule.
func TestMediaRoundTripAllocFree(t *testing.T) {
	eng := sim.NewEngine()
	x := New(eng, Config{Capacity: 1 << 20, Functional: true})
	done := func() {}
	payload := []byte{0xa5, 0x5a, 0x42, 0x24}
	addr := uint64(64 << 10)

	warm := func() {
		x.WriteData(addr, payload)
		x.Access(addr, true, done)
		x.Access(addr, false, done)
		_ = x.ReadData(addr, len(payload))
		eng.Run()
	}
	warm()

	avg := testing.AllocsPerRun(200, func() {
		x.WriteData(addr, payload)
		x.Access(addr, true, done)
		x.Access(addr, false, done)
		eng.Run()
	})
	if avg != 0 {
		t.Fatalf("media write+read round trip allocated %.2f times per run, want 0", avg)
	}

	// ReadData allocates only its result buffer.
	avg = testing.AllocsPerRun(200, func() { _ = x.ReadData(addr, len(payload)) })
	if avg > 1 {
		t.Fatalf("ReadData allocated %.2f times per run, want <= 1 (result buffer)", avg)
	}
}

// TestPagedStoresSparseSemantics pins the map-equivalent behavior of the
// paged stores: untouched regions read as zero/absent, resets restore the
// sparse state, and iteration only visits live entries.
func TestPagedStoresSparseSemantics(t *testing.T) {
	eng := sim.NewEngine()
	x := New(eng, Config{Capacity: 4 << 20, Functional: true})

	if w := x.WearCount(3 << 20); w != 0 {
		t.Fatalf("untouched wear block count = %d, want 0", w)
	}
	x.Access(3<<20, true, nil)
	eng.Run()
	if w := x.WearCount(3 << 20); w != 1 {
		t.Fatalf("wear after one write = %d, want 1", w)
	}
	if tw := x.TotalWear(); tw != 1 {
		t.Fatalf("TotalWear = %d, want 1", tw)
	}
	x.ResetWear(3 << 20)
	if w, tw := x.WearCount(3<<20), x.TotalWear(); w != 0 || tw != 0 {
		t.Fatalf("after reset: WearCount=%d TotalWear=%d, want 0,0", w, tw)
	}

	// Functional store: unwritten reads are zero, cross-block writes land.
	blob := make([]byte, 600) // spans three 256B blocks
	for i := range blob {
		blob[i] = byte(i)
	}
	base := uint64(1<<20) - 100 // straddles a slab boundary region
	x.WriteData(base, blob)
	got := x.ReadData(base, len(blob))
	for i := range blob {
		if got[i] != blob[i] {
			t.Fatalf("byte %d: got %d, want %d", i, got[i], blob[i])
		}
	}
	if z := x.ReadData(2<<20, 64); len(z) != 64 {
		t.Fatalf("zero read length %d", len(z))
	} else {
		for _, b := range z {
			if b != 0 {
				t.Fatal("unwritten region not zero")
			}
		}
	}
}
