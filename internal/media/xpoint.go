// Package media models the 3D-XPoint storage media inside an Optane DIMM:
// 256-byte access granularity, asymmetric read/write latency, banked
// partitions with per-partition serialization, per-64KB-block wear counters
// (consumed by the wear-leveler), and an optional sparse functional data
// store for end-to-end correctness tests.
package media

import (
	"repro/internal/dram"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Config parameterizes the media model. Zero fields take defaults from
// DefaultConfig.
type Config struct {
	// BlockSize is the media access granularity in bytes (Optane: 256).
	BlockSize uint64
	// Partitions is the number of independently serialized media banks.
	Partitions int
	// ReadNs / WriteNs are the per-block service latencies.
	ReadNs  float64
	WriteNs float64
	// ReadPorts / WritePorts bound concurrent accesses of each kind across
	// the whole device (the controller-to-media channel width). Together
	// with the latencies these set the sustainable internal bandwidth:
	// 1 write port x 256B / 480ns ~ 0.53 GB/s, matching the sequential
	// write rate of Figure 7a's single-DIMM curve; 6 read ports x 256B /
	// 160ns ~ 9.6 GB/s of internal read bandwidth for 4KB AIT line fills.
	// Background (fill) reads are confined to the upper half of the read
	// ports so speculation never starves demand reads.
	ReadPorts  int
	WritePorts int
	// WearBlock is the wear-leveling tracking granularity (Optane: 64KB).
	WearBlock uint64
	// WearDecayCycles, when > 0, halves each wear counter every
	// WearDecayCycles of simulated time (lazily applied). This leaky-bucket
	// behavior is what makes wear-leveling rate-sensitive: writes spread
	// over two or more wear blocks accrue too slowly to trigger migration,
	// reproducing the tail-frequency drop at 64KB regions (Figure 7c).
	WearDecayCycles uint64
	// Capacity is the media size in bytes.
	Capacity uint64
	// Functional enables the sparse data store (timing unchanged).
	Functional bool

	// Obs, when non-nil, receives lifecycle hooks and registry-backed
	// counters/histograms under component ObsName. Runtime-only: never
	// serialized, never part of a config hash.
	Obs *obs.Obs `json:"-"`
	// ObsName is the component instance name ("dimm0/media").
	ObsName string `json:"-"`
}

// DefaultConfig returns Optane-like media parameters for a 4GB device (the
// capacity the paper validates VANS at; Figure 10a shows capacity does not
// affect the latency curves).
func DefaultConfig() Config {
	return Config{
		BlockSize:  256,
		Partitions: 16,
		ReadNs:     160,
		WriteNs:    480,
		ReadPorts:  6,
		WritePorts: 2,
		WearBlock:  64 << 10,
		Capacity:   4 << 30,
	}
}

// Stats counts media activity.
type Stats struct {
	Reads      uint64 // block reads
	Writes     uint64 // block writes
	BytesRead  uint64
	BytesWrite uint64
}

// XPoint is the media timing and wear model.
type XPoint struct {
	eng *sim.Engine
	cfg Config

	readCycles  sim.Cycle
	writeCycles sim.Cycle

	// partFree[i] is the earliest cycle partition i can begin a new access.
	partFree []sim.Cycle
	// readFree / writeFree are the per-port next-free cycles of the
	// controller-to-media channels.
	readFree  []sim.Cycle
	writeFree []sim.Cycle

	// wear counts writes per wear block since the last ResetWear; wearAt
	// records the cycle of the last decay application per block. Both are
	// paged arrays indexed by wear-block number.
	wear   *pagedU64
	wearAt *pagedU64

	// data holds functional contents in paged slabs indexed by media block
	// number (nil unless Functional is enabled).
	data *pagedData

	stats Stats

	// o receives lifecycle hooks (nil-safe); histRead/histWrite record
	// per-access service latency in ns when an Obs is attached (nil
	// otherwise, so the unobserved hot path never touches them).
	o         *obs.Obs
	comp      string
	histRead  *obs.Histogram
	histWrite *obs.Histogram
}

// New returns a media model on eng.
func New(eng *sim.Engine, cfg Config) *XPoint {
	def := DefaultConfig()
	if cfg.BlockSize == 0 {
		cfg.BlockSize = def.BlockSize
	}
	if cfg.Partitions == 0 {
		cfg.Partitions = def.Partitions
	}
	if cfg.ReadNs == 0 {
		cfg.ReadNs = def.ReadNs
	}
	if cfg.WriteNs == 0 {
		cfg.WriteNs = def.WriteNs
	}
	if cfg.ReadPorts == 0 {
		cfg.ReadPorts = def.ReadPorts
	}
	if cfg.WritePorts == 0 {
		cfg.WritePorts = def.WritePorts
	}
	if cfg.WearBlock == 0 {
		cfg.WearBlock = def.WearBlock
	}
	if cfg.Capacity == 0 {
		cfg.Capacity = def.Capacity
	}
	wearBlocks := (cfg.Capacity + cfg.WearBlock - 1) / cfg.WearBlock
	x := &XPoint{
		eng:         eng,
		cfg:         cfg,
		readCycles:  dram.NsToCycles(cfg.ReadNs),
		writeCycles: dram.NsToCycles(cfg.WriteNs),
		partFree:    make([]sim.Cycle, cfg.Partitions),
		readFree:    make([]sim.Cycle, cfg.ReadPorts),
		writeFree:   make([]sim.Cycle, cfg.WritePorts),
		wear:        newPagedU64(wearBlocks),
		wearAt:      newPagedU64(wearBlocks),
	}
	if cfg.Functional {
		x.data = newPagedData(cfg.BlockSize, cfg.Capacity)
	}
	if cfg.Obs != nil {
		x.o = cfg.Obs
		x.comp = cfg.ObsName
		if x.comp == "" {
			x.comp = "media"
		}
		cfg.Obs.RegisterPtr(x.comp, "reads", &x.stats.Reads)
		cfg.Obs.RegisterPtr(x.comp, "writes", &x.stats.Writes)
		cfg.Obs.RegisterPtr(x.comp, "bytes_read", &x.stats.BytesRead)
		cfg.Obs.RegisterPtr(x.comp, "bytes_written", &x.stats.BytesWrite)
		x.histRead = cfg.Obs.Histogram(x.comp, "read_ns", nil)
		x.histWrite = cfg.Obs.Histogram(x.comp, "write_ns", nil)
	}
	return x
}

// Config returns the effective configuration.
func (x *XPoint) Config() Config { return x.cfg }

// Stats returns a copy of the counters.
func (x *XPoint) Stats() Stats { return x.stats }

// partition maps a media address to its bank.
func (x *XPoint) partition(addr uint64) int {
	return int((addr / x.cfg.BlockSize) % uint64(x.cfg.Partitions))
}

// Access times one demand block access at addr (media address). done, if
// non-nil, fires when the access completes; the return value is the
// completion cycle. Writes bump the wear counter of the containing block.
func (x *XPoint) Access(addr uint64, write bool, done func()) sim.Cycle {
	return x.access(addr, write, false, done)
}

// AccessBG times one background (speculative fill) access. Background reads
// are restricted to the last read port so they can never starve demand
// reads.
func (x *XPoint) AccessBG(addr uint64, write bool, done func()) sim.Cycle {
	return x.access(addr, write, true, done)
}

func (x *XPoint) access(addr uint64, write, background bool, done func()) sim.Cycle {
	addr = addr % x.cfg.Capacity
	p := x.partition(addr)
	start := x.eng.Now()
	if x.partFree[p] > start {
		start = x.partFree[p]
	}
	// Claim the earliest-free port of the access class; background reads
	// may only use the last port.
	ports := x.readFree
	if write {
		ports = x.writeFree
	}
	lo := 0
	if background && !write && len(ports) > 1 {
		lo = len(ports) / 2
	}
	pi := lo
	for i := lo; i < len(ports); i++ {
		if ports[i] < ports[pi] {
			pi = i
		}
	}
	if ports[pi] > start {
		start = ports[pi]
	}
	svc := x.readCycles
	if write {
		svc = x.writeCycles
		blk := x.wearIdx(addr)
		x.wear.set(blk, x.decayedWear(blk)+1)
		x.wearAt.set(blk, uint64(x.eng.Now()))
		x.stats.Writes++
		x.stats.BytesWrite += x.cfg.BlockSize
	} else {
		x.stats.Reads++
		x.stats.BytesRead += x.cfg.BlockSize
	}
	end := start + svc
	// Background fills consume port bandwidth but do not reserve the
	// partition: a later demand access to the same partition is served by
	// another plane rather than queuing behind speculation.
	if !background {
		x.partFree[p] = end
	}
	ports[pi] = end
	// Observability: latency histograms whenever an Obs is attached;
	// issue/complete lifecycle events (and their closure) only while a
	// tracer is active, so the unobserved path stays allocation-free.
	if write {
		if x.histWrite != nil {
			x.histWrite.Observe(uint64(float64(end-start) / dram.CyclesPerNano))
		}
	} else if x.histRead != nil {
		x.histRead.Observe(uint64(float64(end-start) / dram.CyclesPerNano))
	}
	if x.o.Active() {
		x.o.Emit(obs.Event{Now: start, Stage: obs.StageMedia, Pos: obs.PosIssue,
			Write: write, Comp: x.comp, Addr: addr, Arg: uint64(end - start)})
		x.eng.Schedule(end, func() {
			x.o.Emit(obs.Event{Now: end, Stage: obs.StageMedia, Pos: obs.PosComplete,
				Write: write, Comp: x.comp, Addr: addr})
		})
	}
	if done != nil {
		x.eng.Schedule(end, done)
	}
	return end
}

// wearIdx returns the wear-block number containing addr.
func (x *XPoint) wearIdx(addr uint64) uint64 { return addr / x.cfg.WearBlock }

// decayedWear returns wear block blk's counter after applying any pending
// exponential decay (one halving per elapsed WearDecayCycles window).
func (x *XPoint) decayedWear(blk uint64) uint64 {
	c := x.wear.get(blk)
	if c == 0 || x.cfg.WearDecayCycles == 0 {
		return c
	}
	elapsed := uint64(x.eng.Now()) - x.wearAt.get(blk)
	halvings := elapsed / x.cfg.WearDecayCycles
	if halvings >= 64 {
		return 0
	}
	return c >> halvings
}

// WearCount returns the write count of the wear block containing addr since
// its last reset, after decay.
func (x *XPoint) WearCount(addr uint64) uint64 {
	return x.decayedWear(x.wearIdx(addr % x.cfg.Capacity))
}

// ResetWear clears the wear counter of the block containing addr (called by
// the wear-leveler after migrating the block).
func (x *XPoint) ResetWear(addr uint64) {
	blk := x.wearIdx(addr % x.cfg.Capacity)
	x.wear.set(blk, 0)
	x.wearAt.set(blk, 0)
}

// TotalWear sums all wear counters (test/diagnostic aid).
func (x *XPoint) TotalWear() uint64 {
	var sum uint64
	x.wear.forEach(func(_, w uint64) { sum += w })
	return sum
}

// WriteData stores bytes at addr in the functional store. It is a no-op
// unless Functional is enabled.
func (x *XPoint) WriteData(addr uint64, data []byte) {
	if !x.cfg.Functional {
		return
	}
	for len(data) > 0 {
		a := addr % x.cfg.Capacity
		off := a % x.cfg.BlockSize
		n := x.cfg.BlockSize - off
		if n > uint64(len(data)) {
			n = uint64(len(data))
		}
		buf := x.data.block(a/x.cfg.BlockSize, true)
		copy(buf[off:off+n], data[:n])
		addr += n
		data = data[n:]
	}
}

// ReadData returns n bytes at addr from the functional store (zeroes for
// never-written locations). It returns nil unless Functional is enabled.
func (x *XPoint) ReadData(addr uint64, n int) []byte {
	if !x.cfg.Functional {
		return nil
	}
	out := make([]byte, n)
	rest := out
	for len(rest) > 0 {
		a := addr % x.cfg.Capacity
		off := a % x.cfg.BlockSize
		c := x.cfg.BlockSize - off
		if c > uint64(len(rest)) {
			c = uint64(len(rest))
		}
		if buf := x.data.block(a/x.cfg.BlockSize, false); buf != nil {
			copy(rest[:c], buf[off:off+c])
		}
		addr += c
		rest = rest[c:]
	}
	return out
}

// AdoptPersistent transplants the persistent remnants of a powered-off
// device into this one: the functional data image and the wear counters
// (which real devices keep in persistent metadata). Decay timestamps are
// reset to cycle 0 — the adopting device runs on a fresh engine. Volatile
// timing state (port and partition reservations) is deliberately not
// carried over; it did not survive the power loss.
func (x *XPoint) AdoptPersistent(old *XPoint) {
	if x.data != nil && old.data != nil {
		x.data.adoptFrom(old.data)
	}
	// Wear counters carry over; decay timestamps restart at cycle 0.
	old.wear.forEach(func(blk, w uint64) { x.wear.set(blk, w) })
}

// CopyBlock moves one media block's functional contents from src to dst
// (block-aligned); used by wear-leveling migration.
func (x *XPoint) CopyBlock(src, dst uint64) {
	if !x.cfg.Functional {
		return
	}
	srcIdx := (src % x.cfg.Capacity) / x.cfg.BlockSize
	dstIdx := (dst % x.cfg.Capacity) / x.cfg.BlockSize
	srcBuf := x.data.block(srcIdx, false)
	if srcBuf == nil {
		// Source never written: the destination must read as zeroes.
		if dstBuf := x.data.block(dstIdx, false); dstBuf != nil {
			clear(dstBuf)
		}
		return
	}
	copy(x.data.block(dstIdx, true), srcBuf)
}
