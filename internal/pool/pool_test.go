package pool

import (
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, w := range []int{0, 1, 2, 7} {
		prev := SetWorkers(w)
		hits := make([]atomic.Int32, 100)
		ForEach(len(hits), func(i int) { hits[i].Add(1) })
		SetWorkers(prev)
		for i := range hits {
			if n := hits[i].Load(); n != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", w, i, n)
			}
		}
	}
}

func TestForEachEmptyAndSingle(t *testing.T) {
	ForEach(0, func(int) { t.Fatal("called for n=0") })
	ran := false
	ForEach(1, func(i int) { ran = i == 0 })
	if !ran {
		t.Fatal("n=1 not run")
	}
}

func TestForEachPropagatesPanic(t *testing.T) {
	prev := SetWorkers(4)
	defer SetWorkers(prev)
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	ForEach(16, func(i int) {
		if i == 5 {
			panic("boom")
		}
	})
	t.Fatal("ForEach returned despite panic")
}
