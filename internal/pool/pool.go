// Package pool provides the bounded worker pool behind the parallel
// experiment harness. Every sweep point in internal/exp and internal/lens
// builds a fresh simulated system from fixed seeds, so iterations are
// independent and results are written to their own slot — parallel runs
// produce byte-identical output to sequential ones, just sooner.
package pool

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// workers is the configured default worker count; <= 0 means GOMAXPROCS.
var workers atomic.Int64

// Workers returns the worker count ForEach will use.
func Workers() int {
	if n := workers.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// SetWorkers sets the worker count used by ForEach. n <= 0 restores the
// default (GOMAXPROCS). It returns the previous setting so tests and the
// CLI can scope the change.
func SetWorkers(n int) int {
	prev := int(workers.Load())
	if n < 0 {
		n = 0
	}
	workers.Store(int64(n))
	return prev
}

// ForEach runs fn(i) for every i in [0, n) across at most Workers()
// goroutines and waits for all to finish. Iterations must not share mutable
// state; callers keep determinism by writing results only to slot i. With a
// single worker it degenerates to a plain loop on the calling goroutine.
func ForEach(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := Workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}

	var (
		next  atomic.Int64
		wg    sync.WaitGroup
		panMu sync.Mutex
		pan   any
	)
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panMu.Lock()
					if pan == nil {
						pan = r
					}
					panMu.Unlock()
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if pan != nil {
		// Surface the first worker panic on the calling goroutine so test
		// harnesses and defers see it (the original stack is lost).
		panic(pan)
	}
}
