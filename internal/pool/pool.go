// Package pool provides the bounded worker pool behind the parallel
// experiment harness. Every sweep point in internal/exp and internal/lens
// builds a fresh simulated system from fixed seeds, so iterations are
// independent and results are written to their own slot — parallel runs
// produce byte-identical output to sequential ones, just sooner.
package pool

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// workers is the configured default worker count; <= 0 means GOMAXPROCS.
var workers atomic.Int64

// Workers returns the worker count ForEach will use.
func Workers() int {
	if n := workers.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// SetWorkers sets the worker count used by ForEach. n <= 0 restores the
// default (GOMAXPROCS). It returns the previous setting so tests and the
// CLI can scope the change.
func SetWorkers(n int) int {
	prev := int(workers.Load())
	if n < 0 {
		n = 0
	}
	workers.Store(int64(n))
	return prev
}

// leased counts extra-worker tokens currently held by parallel stages: sweep
// fan-out (ForEach) and the engine's intra-simulation rounds (sim.Shard +
// SetParallel). The budget caps process-wide fan-out at GOMAXPROCS: every
// stage's calling goroutine participates for free and leases only its extra
// workers, so nesting — a parallel sweep of simulations that are themselves
// internally parallel — degrades gracefully to inline execution instead of
// oversubscribing the machine.
var leased atomic.Int64

// TryLease grabs up to n extra-worker tokens from the global budget and
// returns how many it got, possibly 0. It never blocks — callers must run
// inline with whatever they get (results may not depend on the answer).
// Pair every successful lease with Release.
func TryLease(n int) int {
	if n <= 0 {
		return 0
	}
	budget := int64(runtime.GOMAXPROCS(0) - 1)
	for {
		cur := leased.Load()
		avail := budget - cur
		if avail <= 0 {
			return 0
		}
		take := int64(n)
		if take > avail {
			take = avail
		}
		if leased.CompareAndSwap(cur, cur+take) {
			return int(take)
		}
	}
}

// Release returns tokens obtained from TryLease.
func Release(n int) {
	if n > 0 {
		leased.Add(int64(-n))
	}
}

// ForEach runs fn(i) for every i in [0, n) and waits for all to finish. The
// calling goroutine always participates; up to Workers()-1 extra goroutines
// are leased from the shared budget (TryLease), so nested ForEach calls and
// intra-simulation rounds share one GOMAXPROCS-wide cap. Iterations must not
// share mutable state; callers keep determinism by writing results only to
// slot i. With a single worker — configured or budget-exhausted — it
// degenerates to a plain loop on the calling goroutine.
func ForEach(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := Workers()
	if w > n {
		w = n
	}
	extra := 0
	if w > 1 {
		extra = TryLease(w - 1)
	}
	if extra == 0 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	defer Release(extra)

	var (
		next  atomic.Int64
		wg    sync.WaitGroup
		panMu sync.Mutex
		pan   any
	)
	work := func() {
		defer func() {
			if r := recover(); r != nil {
				panMu.Lock()
				if pan == nil {
					pan = r
				}
				panMu.Unlock()
			}
		}()
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			fn(i)
		}
	}
	wg.Add(extra)
	for g := 0; g < extra; g++ {
		go func() {
			defer wg.Done()
			work()
		}()
	}
	work()
	wg.Wait()
	if pan != nil {
		// Surface the first panic on the calling goroutine so test
		// harnesses and defers see it (the original stack is lost).
		panic(pan)
	}
}
