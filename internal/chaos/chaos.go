// Package chaos is a deterministic network-fault fabric for the nvmserved
// cluster: the Jepsen discipline applied to our own peer protocol. A seeded
// Network wraps the HTTP path between named nodes — an http.RoundTripper on
// the client side and a middleware on the server side — and injects faults
// described by a composable Spec: per-route drop probability, added latency
// (fixed plus uniform jitter), byte corruption of response bodies, request
// duplication, slow-drip response bodies, and full or one-way partitions
// between node pairs.
//
// Everything the fabric does is a pure function of (seed, side, from, to,
// route, sequence number): the same seed replays the same fault schedule for
// the same call sequence, which is what lets a chaos soak that found a bug be
// re-run as a regression test. The Network keeps a bounded event log of every
// injected fault; VerifyReplay recomputes each logged decision from a fresh
// fabric with the same seed and spec, proving the schedule is reproducible.
//
// The paper's method — characterize a system by injecting controlled stimuli
// and checking invariants — is the same method this package turns on the
// cluster itself: inject a hostile network, then assert byte-identical
// results, bounded retries, quarantined corrupters, and converged replicas.
package chaos

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"
)

// Rule is one composable fault clause. Empty From/To/Route match anything;
// a request is subject to every rule that matches it, applied in spec order
// (drops short-circuit; latencies add; any triggered corruption corrupts).
type Rule struct {
	// Route is a request-path prefix ("" or "/" matches every route).
	Route string `json:"route,omitempty"`
	// From / To name the calling and target node ("" matches any).
	From string `json:"from,omitempty"`
	To   string `json:"to,omitempty"`

	// Drop is the probability the request is dropped before reaching the
	// target (the caller sees a transport error, as with a lost SYN).
	Drop float64 `json:"drop,omitempty"`
	// Corrupt is the probability one byte of the response body is flipped.
	Corrupt float64 `json:"corrupt,omitempty"`
	// Duplicate is the probability the request is delivered twice (the
	// duplicate's response is discarded; the target sees both).
	Duplicate float64 `json:"duplicate,omitempty"`

	// LatencyMs is fixed added latency per request; JitterMs adds a uniform
	// extra in [0, JitterMs).
	LatencyMs int `json:"latency_ms,omitempty"`
	JitterMs  int `json:"jitter_ms,omitempty"`

	// DripBytes > 0 slow-drips the response body in chunks of DripBytes with
	// DripDelayMs between chunks (applied by the server-side middleware).
	DripBytes   int `json:"drip_bytes,omitempty"`
	DripDelayMs int `json:"drip_delay_ms,omitempty"`
}

// matches reports whether the rule applies to one attempt.
func (r Rule) matches(from, to, route string) bool {
	if r.From != "" && r.From != from {
		return false
	}
	if r.To != "" && r.To != to {
		return false
	}
	if r.Route != "" && r.Route != "/" && !strings.HasPrefix(route, r.Route) {
		return false
	}
	return true
}

// Partition names a blocked node pair. A full partition blocks both
// directions; OneWay blocks only A→B (asymmetric partitions are how split
// brains actually present).
type Partition struct {
	A      string `json:"a"`
	B      string `json:"b"`
	OneWay bool   `json:"one_way,omitempty"`
}

// Spec is a composable fault specification: an ordered rule list plus the
// initially installed partitions. Partitions can also be installed and healed
// at runtime through the Network, which is how a soak stages a
// partition-then-heal scenario.
type Spec struct {
	Rules      []Rule      `json:"rules,omitempty"`
	Partitions []Partition `json:"partitions,omitempty"`
}

// ParseSpec decodes and validates a JSON fault spec.
func ParseSpec(data []byte) (Spec, error) {
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return Spec{}, fmt.Errorf("chaos: parsing spec: %v", err)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// Validate rejects probabilities outside [0,1], negative durations and sizes,
// and partitions missing an endpoint.
func (s Spec) Validate() error {
	for i, r := range s.Rules {
		for _, p := range []struct {
			name string
			v    float64
		}{{"drop", r.Drop}, {"corrupt", r.Corrupt}, {"duplicate", r.Duplicate}} {
			if p.v < 0 || p.v > 1 {
				return fmt.Errorf("chaos: rule %d: %s %v outside [0,1]", i, p.name, p.v)
			}
		}
		if r.LatencyMs < 0 || r.JitterMs < 0 || r.DripBytes < 0 || r.DripDelayMs < 0 {
			return fmt.Errorf("chaos: rule %d: negative duration or size", i)
		}
	}
	for i, p := range s.Partitions {
		if p.A == "" || p.B == "" {
			return fmt.Errorf("chaos: partition %d: empty endpoint", i)
		}
		if p.A == p.B {
			return fmt.Errorf("chaos: partition %d: %q partitioned from itself", i, p.A)
		}
	}
	return nil
}

// Decision is the fabric's resolved verdict for one attempt: the composition
// of every matching rule, derived deterministically from the seed.
type Decision struct {
	Drop      bool
	Corrupt   bool
	Duplicate bool
	Latency   time.Duration
	// CorruptAt is the response-body byte offset to flip when Corrupt is set
	// (small, so even the shortest protocol bodies are hit).
	CorruptAt int
	// DripBytes/DripDelay are the strictest (smallest chunk, longest delay)
	// drip parameters among matching rules; zero DripBytes means no drip.
	DripBytes int
	DripDelay time.Duration
}

// Faulty reports whether the decision injects anything at all.
func (d Decision) Faulty() bool {
	return d.Drop || d.Corrupt || d.Duplicate || d.Latency > 0 || d.DripBytes > 0
}

// decide composes every matching rule into one Decision. It is a pure
// function: (seed, side|from|to|route, seq) fully determine the outcome, so
// identical call sequences under the same seed yield identical schedules.
func (s Spec) decide(seed uint64, key string, seq uint64) Decision {
	var d Decision
	for i, r := range s.Rules {
		// Draw indices decorrelate the uniforms within one attempt: rule
		// index times a stride, plus a slot per fault kind.
		base := uint64(i) * 8
		if r.Drop > 0 && unitFloat(seed, key, seq, base+0) < r.Drop {
			d.Drop = true
		}
		if r.Corrupt > 0 && unitFloat(seed, key, seq, base+1) < r.Corrupt {
			d.Corrupt = true
			d.CorruptAt = int(mix(seed, key, seq, base+2) % corruptWindow)
		}
		if r.Duplicate > 0 && unitFloat(seed, key, seq, base+3) < r.Duplicate {
			d.Duplicate = true
		}
		if r.LatencyMs > 0 || r.JitterMs > 0 {
			ms := int64(r.LatencyMs)
			if r.JitterMs > 0 {
				ms += int64(mix(seed, key, seq, base+4) % uint64(r.JitterMs))
			}
			d.Latency += time.Duration(ms) * time.Millisecond
		}
		if r.DripBytes > 0 {
			if d.DripBytes == 0 || r.DripBytes < d.DripBytes {
				d.DripBytes = r.DripBytes
			}
			if delay := time.Duration(r.DripDelayMs) * time.Millisecond; delay > d.DripDelay {
				d.DripDelay = delay
			}
		}
	}
	return d
}

// corruptWindow bounds the flipped byte's offset; protocol bodies (canonical
// results, ckpt envelopes, health JSON) are always longer than this.
const corruptWindow = 48

// matchesAny reports whether any rule in the spec matches the attempt — the
// cheap pre-check before paying for decide.
func (s Spec) matchesAny(from, to, route string) bool {
	for _, r := range s.Rules {
		if r.matches(from, to, route) {
			return true
		}
	}
	return false
}

// decideFor is decide restricted to the rules matching (from, to, route),
// with the key derived the same way the Network derives it. Exposed inside
// the package for replay verification.
func (s Spec) decideFor(seed uint64, side, from, to, route string, seq uint64) Decision {
	matched := Spec{Rules: make([]Rule, 0, len(s.Rules))}
	for _, r := range s.Rules {
		if !r.matches(from, to, route) {
			// Keep rule positions stable: a non-matching rule still occupies
			// its draw indices, so matching-set changes elsewhere in the spec
			// never shift this attempt's randomness.
			matched.Rules = append(matched.Rules, Rule{})
			continue
		}
		matched.Rules = append(matched.Rules, r)
	}
	return matched.decide(seed, decisionKey(side, from, to, route), seq)
}

// decisionKey names one attempt stream. Side separates the client transport's
// and the server middleware's sequence spaces.
func decisionKey(side, from, to, route string) string {
	return side + "|" + from + "|" + to + "|" + route
}

// mix is the deterministic 64-bit stream behind every decision: a splitmix64
// finalizer over seed, key hash, sequence number, and draw index.
func mix(seed uint64, key string, seq, draw uint64) uint64 {
	z := seed ^ fnv64(key) ^ seq*0x9e3779b97f4a7c15 ^ draw*0xbf58476d1ce4e5b9
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// unitFloat maps one draw to [0,1).
func unitFloat(seed uint64, key string, seq, draw uint64) float64 {
	return float64(mix(seed, key, seq, draw)>>11) / float64(1<<53)
}

// fnv64 is FNV-1a over the key string (allocation-free; hashing the key per
// decision keeps decide a pure function with no per-key state).
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
