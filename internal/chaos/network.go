package chaos

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// fromHeader tags peer requests with the calling node's id so the server-side
// middleware can attribute inbound traffic to a node pair. Requests without
// the header (external clients, load drivers) are never chaosed by the
// middleware — the fabric faults the fleet's own wiring, not the test driver.
const fromHeader = "X-Chaos-From"

// Event is one injected fault, recorded for replay verification and debugging.
type Event struct {
	Side  string        `json:"side"` // "client" or "server"
	From  string        `json:"from"`
	To    string        `json:"to"`
	Route string        `json:"route"`
	Seq   uint64        `json:"seq"`
	Kind  string        `json:"kind"` // drop|partition|corrupt|duplicate|delay|drip
	Delay time.Duration `json:"delay,omitempty"`
}

// Counters aggregates injected faults by kind.
type Counters struct {
	Attempts   uint64 `json:"attempts"`
	Drops      uint64 `json:"drops"`
	Partitions uint64 `json:"partitions"`
	Corrupts   uint64 `json:"corrupts"`
	Duplicates uint64 `json:"duplicates"`
	Delays     uint64 `json:"delays"`
	Drips      uint64 `json:"drips"`
}

// maxEvents bounds the event log; a soak injecting more simply keeps the most
// recent window (counters stay exact).
const maxEvents = 8192

// Network is a seeded fault fabric shared by every member of one fleet. Wrap
// each node's peer HTTP client with Transport and (optionally) its handler
// with Middleware; register each node's listen address so targets resolve to
// node ids; install or heal partitions at runtime to stage split-brain
// scenarios.
//
// All fault decisions are pure functions of the seed and the per-stream
// sequence number, so a fleet driven through the same call sequence replays
// the same fault schedule.
type Network struct {
	seed uint64
	spec Spec

	mu     sync.Mutex
	hosts  map[string]string // "host:port" -> node id
	parts  map[string]bool   // "a>b" directed block
	seqs   map[string]uint64 // decision stream cursors
	events []Event

	attempts   atomic.Uint64
	drops      atomic.Uint64
	partitions atomic.Uint64
	corrupts   atomic.Uint64
	duplicates atomic.Uint64
	delays     atomic.Uint64
	drips      atomic.Uint64
}

// NewNetwork builds a fabric over a validated spec. Initial partitions from
// the spec are installed immediately.
func NewNetwork(seed uint64, spec Spec) (*Network, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	n := &Network{
		seed:  seed,
		spec:  spec,
		hosts: make(map[string]string),
		parts: make(map[string]bool),
		seqs:  make(map[string]uint64),
	}
	for _, p := range spec.Partitions {
		n.Partition(p.A, p.B, p.OneWay)
	}
	return n, nil
}

// RegisterNode maps a node's listen address ("host:port") to its id so the
// client transport can attribute outbound requests to a target node.
func (n *Network) RegisterNode(id, hostport string) {
	n.mu.Lock()
	n.hosts[hostport] = id
	n.mu.Unlock()
}

// Partition blocks traffic between a and b (only a→b when oneWay).
func (n *Network) Partition(a, b string, oneWay bool) {
	n.mu.Lock()
	n.parts[a+">"+b] = true
	if !oneWay {
		n.parts[b+">"+a] = true
	}
	n.mu.Unlock()
}

// Heal removes any partition between a and b, in both directions.
func (n *Network) Heal(a, b string) {
	n.mu.Lock()
	delete(n.parts, a+">"+b)
	delete(n.parts, b+">"+a)
	n.mu.Unlock()
}

// HealAll removes every partition.
func (n *Network) HealAll() {
	n.mu.Lock()
	n.parts = make(map[string]bool)
	n.mu.Unlock()
}

// Partitioned reports whether from→to traffic is currently blocked.
func (n *Network) Partitioned(from, to string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.parts[from+">"+to]
}

// nodeFor resolves a request target address to its node id ("" if unknown).
func (n *Network) nodeFor(hostport string) string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.hosts[hostport]
}

// next advances one decision stream and returns the attempt's sequence
// number. Streams are per (side, from, to, route), so concurrency across
// pairs or routes never perturbs another stream's schedule.
func (n *Network) next(key string) uint64 {
	n.mu.Lock()
	seq := n.seqs[key]
	n.seqs[key] = seq + 1
	n.mu.Unlock()
	return seq
}

// record appends to the bounded event log and bumps the per-kind counter.
func (n *Network) record(ev Event) {
	switch ev.Kind {
	case "drop":
		n.drops.Add(1)
	case "partition":
		n.partitions.Add(1)
	case "corrupt":
		n.corrupts.Add(1)
	case "duplicate":
		n.duplicates.Add(1)
	case "delay":
		n.delays.Add(1)
	case "drip":
		n.drips.Add(1)
	}
	n.mu.Lock()
	if len(n.events) >= maxEvents {
		copy(n.events, n.events[1:])
		n.events = n.events[:maxEvents-1]
	}
	n.events = append(n.events, ev)
	n.mu.Unlock()
}

// Events returns a copy of the bounded fault log.
func (n *Network) Events() []Event {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]Event(nil), n.events...)
}

// Snapshot returns the exact per-kind fault counters.
func (n *Network) Snapshot() Counters {
	return Counters{
		Attempts:   n.attempts.Load(),
		Drops:      n.drops.Load(),
		Partitions: n.partitions.Load(),
		Corrupts:   n.corrupts.Load(),
		Duplicates: n.duplicates.Load(),
		Delays:     n.delays.Load(),
		Drips:      n.drips.Load(),
	}
}

// VerifyReplay rebuilds a fresh fabric from (seed, spec) and recomputes every
// logged fault decision from scratch, confirming the schedule is a pure
// function of the seed. It returns the number of decisions checked.
func (n *Network) VerifyReplay() (int, error) {
	n.mu.Lock()
	events := append([]Event(nil), n.events...)
	spec := n.spec
	seed := n.seed
	n.mu.Unlock()
	for i, ev := range events {
		if ev.Kind == "partition" {
			continue // partition state is runtime-installed, not seed-derived
		}
		d := spec.decideFor(seed, ev.Side, ev.From, ev.To, ev.Route, ev.Seq)
		ok := true
		switch ev.Kind {
		case "drop":
			ok = d.Drop
		case "corrupt":
			ok = d.Corrupt
		case "duplicate":
			ok = d.Duplicate
		case "delay":
			ok = d.Latency == ev.Delay
		case "drip":
			ok = d.DripBytes > 0
		}
		if !ok {
			return i, fmt.Errorf("chaos: replay diverged at event %d (%s %s→%s %s seq %d): got %+v",
				i, ev.Kind, ev.From, ev.To, ev.Route, ev.Seq, d)
		}
	}
	return len(events), nil
}

// dropError is the transport error surfaced for dropped or partitioned
// requests; it mimics a connection failure, which is what the cluster's
// breaker machinery must classify it as.
type dropError struct{ msg string }

func (e *dropError) Error() string { return e.msg }

// transport is the client-side fault injector.
type transport struct {
	net  *Network
	from string
	base http.RoundTripper
}

// Transport wraps base (nil = http.DefaultTransport) with the fabric's
// client-side faults for requests issued by node `from`: partitions, drops,
// added latency, request duplication, and response-body corruption. Requests
// to unregistered targets pass through untouched.
func (n *Network) Transport(from string, base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return &transport{net: n, from: from, base: base}
}

func (t *transport) RoundTrip(req *http.Request) (*http.Response, error) {
	to := t.net.nodeFor(req.URL.Host)
	if to == "" {
		return t.base.RoundTrip(req)
	}
	route := req.URL.Path
	req = req.Clone(req.Context())
	req.Header.Set(fromHeader, t.from)
	t.net.attempts.Add(1)

	// Partitions first: a blocked pair never consumes schedule randomness, so
	// installing or healing one does not shift the rest of the fault schedule.
	if t.net.Partitioned(t.from, to) {
		t.net.record(Event{Side: "client", From: t.from, To: to, Route: route, Kind: "partition"})
		return nil, &dropError{fmt.Sprintf("chaos: partition %s→%s", t.from, to)}
	}
	if !t.net.spec.matchesAny(t.from, to, route) {
		return t.base.RoundTrip(req)
	}
	key := decisionKey("client", t.from, to, route)
	seq := t.net.next(key)
	d := t.net.spec.decideFor(t.net.seed, "client", t.from, to, route, seq)

	if d.Latency > 0 {
		t.net.record(Event{Side: "client", From: t.from, To: to, Route: route, Seq: seq, Kind: "delay", Delay: d.Latency})
		if err := sleepCtx(req.Context(), d.Latency); err != nil {
			return nil, err
		}
	}
	if d.Drop {
		t.net.record(Event{Side: "client", From: t.from, To: to, Route: route, Seq: seq, Kind: "drop"})
		return nil, &dropError{fmt.Sprintf("chaos: dropped %s→%s %s", t.from, to, route)}
	}
	if d.Duplicate {
		// Deliver the request twice; the duplicate's response is drained and
		// discarded. The target observes a replay, which is exactly what a
		// retransmitting network does to non-idempotent handlers.
		if dup := cloneRequest(req); dup != nil {
			t.net.record(Event{Side: "client", From: t.from, To: to, Route: route, Seq: seq, Kind: "duplicate"})
			if resp, err := t.base.RoundTrip(dup); err == nil {
				io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
				resp.Body.Close()
			}
		}
	}
	resp, err := t.base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if d.Corrupt {
		t.net.record(Event{Side: "client", From: t.from, To: to, Route: route, Seq: seq, Kind: "corrupt"})
		resp.Body = &corruptBody{rc: resp.Body, at: d.CorruptAt}
	}
	return resp, nil
}

// cloneRequest builds the duplicate delivery (nil when the body cannot be
// replayed).
func cloneRequest(req *http.Request) *http.Request {
	dup := req.Clone(req.Context())
	if req.Body == nil {
		return dup
	}
	if req.GetBody == nil {
		return nil
	}
	body, err := req.GetBody()
	if err != nil {
		return nil
	}
	dup.Body = body
	return dup
}

// corruptBody flips one byte of the wrapped stream at offset `at`.
type corruptBody struct {
	rc  io.ReadCloser
	at  int
	pos int
}

func (c *corruptBody) Read(p []byte) (int, error) {
	n, err := c.rc.Read(p)
	if n > 0 && c.at >= c.pos && c.at < c.pos+n {
		p[c.at-c.pos] ^= 0xff
	}
	c.pos += n
	return n, err
}

func (c *corruptBody) Close() error { return c.rc.Close() }

// Middleware wraps a node's handler with the fabric's server-side faults for
// inbound peer traffic: partition enforcement (the connection is aborted, as
// a real partition would present) and slow-drip response bodies. Requests
// without the peer tag header pass through untouched.
func (n *Network) Middleware(self string, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		from := r.Header.Get(fromHeader)
		if from == "" {
			h.ServeHTTP(w, r)
			return
		}
		route := r.URL.Path
		if n.Partitioned(from, self) {
			// The request "arrived" at a node the sender cannot reach — the
			// backstop for fleets whose client side is not wrapped. Abort the
			// connection so the caller sees a transport fault, not an HTTP
			// status a partition could never deliver.
			n.record(Event{Side: "server", From: from, To: self, Route: route, Kind: "partition"})
			panic(http.ErrAbortHandler)
		}
		if !n.spec.matchesAny(from, self, route) {
			h.ServeHTTP(w, r)
			return
		}
		key := decisionKey("server", from, self, route)
		seq := n.next(key)
		d := n.spec.decideFor(n.seed, "server", from, self, route, seq)
		if d.DripBytes > 0 {
			n.record(Event{Side: "server", From: from, To: self, Route: route, Seq: seq, Kind: "drip"})
			w = &dripWriter{ResponseWriter: w, ctx: r.Context(), chunk: d.DripBytes, delay: d.DripDelay}
		}
		h.ServeHTTP(w, r)
	})
}

// dripWriter trickles response bytes out chunk by chunk with a delay between
// chunks — the slow-loris shape that flushes out missing read deadlines and
// unbounded buffering in peers.
type dripWriter struct {
	http.ResponseWriter
	ctx   context.Context
	chunk int
	delay time.Duration
}

func (d *dripWriter) Write(p []byte) (int, error) {
	wrote := 0
	for len(p) > 0 {
		nn := d.chunk
		if nn > len(p) {
			nn = len(p)
		}
		n, err := d.ResponseWriter.Write(p[:nn])
		wrote += n
		if err != nil {
			return wrote, err
		}
		if f, ok := d.ResponseWriter.(http.Flusher); ok {
			f.Flush()
		}
		p = p[nn:]
		if len(p) > 0 && d.delay > 0 {
			if err := sleepCtx(d.ctx, d.delay); err != nil {
				return wrote, err
			}
		}
	}
	return wrote, nil
}

// sleepCtx sleeps d or returns early with the context's error.
func sleepCtx(ctx context.Context, d time.Duration) error {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
		return nil
	}
}

// String renders counters compactly for soak logs.
func (c Counters) String() string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "attempts=%d drops=%d partitions=%d corrupts=%d duplicates=%d delays=%d drips=%d",
		c.Attempts, c.Drops, c.Partitions, c.Corrupts, c.Duplicates, c.Delays, c.Drips)
	return b.String()
}
