package chaos

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestSpecValidate covers the grammar's reject set.
func TestSpecValidate(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		ok   bool
	}{
		{"empty", Spec{}, true},
		{"full rule", Spec{Rules: []Rule{{Route: "/v1/peer/", From: "n1", To: "n2",
			Drop: 0.5, Corrupt: 0.1, Duplicate: 0.2, LatencyMs: 5, JitterMs: 10,
			DripBytes: 64, DripDelayMs: 1}}}, true},
		{"drop above one", Spec{Rules: []Rule{{Drop: 1.5}}}, false},
		{"negative corrupt", Spec{Rules: []Rule{{Corrupt: -0.1}}}, false},
		{"negative latency", Spec{Rules: []Rule{{LatencyMs: -1}}}, false},
		{"negative drip", Spec{Rules: []Rule{{DripBytes: -2}}}, false},
		{"partition ok", Spec{Partitions: []Partition{{A: "n1", B: "n2"}}}, true},
		{"partition empty end", Spec{Partitions: []Partition{{A: "n1"}}}, false},
		{"partition self", Spec{Partitions: []Partition{{A: "n1", B: "n1"}}}, false},
	}
	for _, c := range cases {
		if err := c.spec.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

// TestParseSpecRoundTrip: a parsed spec re-marshals and re-parses identically.
func TestParseSpecRoundTrip(t *testing.T) {
	src := `{"rules":[{"route":"/v1/peer/run","to":"n3","corrupt":0.75},
		{"drop":0.05,"latency_ms":5,"jitter_ms":10}],
		"partitions":[{"a":"n1","b":"n2","one_way":true}]}`
	s, err := ParseSpec([]byte(src))
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := ParseSpec(b)
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	b2, _ := json.Marshal(s2)
	if !bytes.Equal(b, b2) {
		t.Errorf("round trip changed the spec:\n  %s\n  %s", b, b2)
	}
}

// TestRuleMatch pins the wildcard and prefix semantics.
func TestRuleMatch(t *testing.T) {
	r := Rule{Route: "/v1/peer/", From: "n1", To: "n2"}
	if !r.matches("n1", "n2", "/v1/peer/run") {
		t.Error("exact match rejected")
	}
	if r.matches("n2", "n2", "/v1/peer/run") {
		t.Error("wrong from matched")
	}
	if r.matches("n1", "n3", "/v1/peer/run") {
		t.Error("wrong to matched")
	}
	if r.matches("n1", "n2", "/v1/cluster/jobs") {
		t.Error("wrong route matched")
	}
	wild := Rule{Drop: 1}
	if !wild.matches("x", "y", "/anything") {
		t.Error("wildcard rule rejected a match")
	}
}

// TestDecideDeterministic: the same (seed, key, seq) always yields the same
// decision, and different seeds yield different schedules.
func TestDecideDeterministic(t *testing.T) {
	spec := Spec{Rules: []Rule{{Drop: 0.3, Corrupt: 0.3, Duplicate: 0.3, LatencyMs: 1, JitterMs: 50}}}
	var a, b []Decision
	for seq := uint64(0); seq < 200; seq++ {
		a = append(a, spec.decideFor(42, "client", "n1", "n2", "/v1/peer/run", seq))
		b = append(b, spec.decideFor(42, "client", "n1", "n2", "/v1/peer/run", seq))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs across identical calls: %+v vs %+v", i, a[i], b[i])
		}
	}
	diff := 0
	for seq := uint64(0); seq < 200; seq++ {
		if spec.decideFor(43, "client", "n1", "n2", "/v1/peer/run", seq) != a[seq] {
			diff++
		}
	}
	if diff == 0 {
		t.Error("changing the seed changed nothing; decisions are not seed-driven")
	}
}

// TestDecideStreamIsolation: distinct (from,to,route) streams draw from
// distinct schedules — the key is not ignored.
func TestDecideStreamIsolation(t *testing.T) {
	spec := Spec{Rules: []Rule{{Drop: 0.5}}}
	same := 0
	for seq := uint64(0); seq < 200; seq++ {
		if spec.decideFor(7, "client", "n1", "n2", "/x", seq).Drop ==
			spec.decideFor(7, "client", "n1", "n3", "/x", seq).Drop {
			same++
		}
	}
	if same == 200 {
		t.Error("two distinct streams produced identical schedules; key is ignored")
	}
}

// TestCorruptOffsetsWithinWindow: corruption always hits the first
// corruptWindow bytes, so every protocol body is corruptible.
func TestCorruptOffsetsWithinWindow(t *testing.T) {
	spec := Spec{Rules: []Rule{{Corrupt: 1}}}
	for seq := uint64(0); seq < 100; seq++ {
		d := spec.decideFor(1, "client", "a", "b", "/r", seq)
		if !d.Corrupt {
			t.Fatalf("corrupt=1 did not corrupt at seq %d", seq)
		}
		if d.CorruptAt < 0 || d.CorruptAt >= corruptWindow {
			t.Fatalf("corrupt offset %d outside window", d.CorruptAt)
		}
	}
}

// newPair builds an origin server and a chaos network with the origin
// registered as node "b", returning the origin URL's host for transport use.
func newPair(t *testing.T, spec Spec, seed uint64, handler http.Handler) (*Network, *httptest.Server) {
	t.Helper()
	ts := httptest.NewServer(handler)
	t.Cleanup(ts.Close)
	net, err := NewNetwork(seed, spec)
	if err != nil {
		t.Fatal(err)
	}
	net.RegisterNode("b", strings.TrimPrefix(ts.URL, "http://"))
	return net, ts
}

// TestTransportDropAndPartition: dropped and partitioned requests surface as
// transport errors and never reach the origin.
func TestTransportDropAndPartition(t *testing.T) {
	var hits atomic.Int32
	net, ts := newPair(t, Spec{Rules: []Rule{{Route: "/fail", Drop: 1}}}, 1,
		http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			hits.Add(1)
			w.Write([]byte("ok"))
		}))
	client := &http.Client{Transport: net.Transport("a", nil)}

	if _, err := client.Get(ts.URL + "/fail"); err == nil {
		t.Fatal("drop=1 request succeeded")
	}
	if hits.Load() != 0 {
		t.Fatalf("dropped request reached the origin (%d hits)", hits.Load())
	}

	resp, err := client.Get(ts.URL + "/ok")
	if err != nil {
		t.Fatalf("unmatched route failed: %v", err)
	}
	resp.Body.Close()

	net.Partition("a", "b", false)
	if _, err := client.Get(ts.URL + "/ok"); err == nil {
		t.Fatal("partitioned request succeeded")
	}
	net.Heal("a", "b")
	resp, err = client.Get(ts.URL + "/ok")
	if err != nil {
		t.Fatalf("healed partition still blocking: %v", err)
	}
	resp.Body.Close()

	c := net.Snapshot()
	if c.Drops == 0 || c.Partitions == 0 {
		t.Errorf("counters = %+v, want drops and partitions > 0", c)
	}
}

// TestOneWayPartition: A→B blocked, B→A open.
func TestOneWayPartition(t *testing.T) {
	net, err := NewNetwork(1, Spec{Partitions: []Partition{{A: "a", B: "b", OneWay: true}}})
	if err != nil {
		t.Fatal(err)
	}
	if !net.Partitioned("a", "b") {
		t.Error("a→b should be blocked")
	}
	if net.Partitioned("b", "a") {
		t.Error("b→a should be open (one-way)")
	}
}

// TestTransportCorruption: corrupt=1 flips exactly one byte of the body.
func TestTransportCorruption(t *testing.T) {
	payload := bytes.Repeat([]byte("x"), 256)
	net, ts := newPair(t, Spec{Rules: []Rule{{Corrupt: 1}}}, 3,
		http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { w.Write(payload) }))
	client := &http.Client{Transport: net.Transport("a", nil)}
	resp, err := client.Get(ts.URL + "/body")
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, payload) {
		t.Fatal("corrupt=1 returned pristine bytes")
	}
	flipped := 0
	for i := range got {
		if got[i] != payload[i] {
			flipped++
		}
	}
	if flipped != 1 {
		t.Errorf("flipped %d bytes, want exactly 1", flipped)
	}
}

// TestTransportDuplicate: duplicate=1 delivers the request twice; the caller
// sees one response.
func TestTransportDuplicate(t *testing.T) {
	var hits atomic.Int32
	net, ts := newPair(t, Spec{Rules: []Rule{{Duplicate: 1}}}, 4,
		http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			hits.Add(1)
			io.Copy(io.Discard, r.Body)
			w.Write([]byte("ok"))
		}))
	client := &http.Client{Transport: net.Transport("a", nil)}
	resp, err := client.Post(ts.URL+"/run", "text/plain", strings.NewReader("payload"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "ok" {
		t.Errorf("caller response = %q", body)
	}
	if hits.Load() != 2 {
		t.Errorf("origin saw %d deliveries, want 2", hits.Load())
	}
}

// TestTransportLatency: latency_ms delays the request measurably.
func TestTransportLatency(t *testing.T) {
	net, ts := newPair(t, Spec{Rules: []Rule{{LatencyMs: 40}}}, 5,
		http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { w.Write([]byte("ok")) }))
	client := &http.Client{Transport: net.Transport("a", nil)}
	start := time.Now()
	resp, err := client.Get(ts.URL + "/slow")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if took := time.Since(start); took < 35*time.Millisecond {
		t.Errorf("latency rule added only %s", took)
	}
	// A canceled context escapes the injected sleep promptly.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/slow", nil)
	start = time.Now()
	if _, err := client.Do(req); err == nil {
		t.Error("canceled request succeeded through injected latency")
	}
	if took := time.Since(start); took > 30*time.Millisecond {
		t.Errorf("cancellation took %s; injected sleep ignored the context", took)
	}
}

// TestMiddlewareDripAndPartition: tagged peer requests are dripped and
// partition-aborted; untagged driver requests pass clean.
func TestMiddlewareDripAndPartition(t *testing.T) {
	payload := bytes.Repeat([]byte("y"), 4096)
	net, err := NewNetwork(6, Spec{Rules: []Rule{{DripBytes: 512, DripDelayMs: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { w.Write(payload) })
	ts := httptest.NewServer(net.Middleware("b", inner))
	t.Cleanup(ts.Close)

	// Untagged request: clean pass-through.
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	clean, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Equal(clean, payload) {
		t.Error("untagged request body altered")
	}

	// Tagged request: dripped but intact.
	req, _ := http.NewRequest(http.MethodGet, ts.URL, nil)
	req.Header.Set(fromHeader, "a")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dripped, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Equal(dripped, payload) {
		t.Error("dripped body corrupted")
	}
	if net.Snapshot().Drips == 0 {
		t.Error("no drip recorded")
	}

	// Partitioned tagged request: connection aborted.
	net.Partition("a", "b", false)
	if _, err := http.DefaultClient.Do(req.Clone(context.Background())); err == nil {
		t.Error("partitioned inbound request served")
	}
}

// TestVerifyReplay: every injected fault is reproducible from the seed alone.
func TestVerifyReplay(t *testing.T) {
	spec := Spec{Rules: []Rule{
		{Route: "/a", Drop: 0.4, LatencyMs: 1, JitterMs: 3},
		{Route: "/b", Corrupt: 0.6},
		{Duplicate: 0.2},
	}}
	net, ts := newPair(t, spec, 99,
		http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Write(bytes.Repeat([]byte("z"), 128))
		}))
	client := &http.Client{Transport: net.Transport("a", nil)}
	for i := 0; i < 120; i++ {
		route := "/a"
		switch i % 3 {
		case 1:
			route = "/b"
		case 2:
			route = "/c"
		}
		resp, err := client.Get(ts.URL + route)
		if err != nil {
			continue // drops are expected
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	checked, err := net.VerifyReplay()
	if err != nil {
		t.Fatalf("VerifyReplay: %v", err)
	}
	if checked == 0 {
		t.Fatal("no faults injected; the soak would prove nothing")
	}

	// A second fabric with the same seed and spec makes the same calls and
	// logs the same schedule.
	net2, err := NewNetwork(99, spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range net.Events() {
		if ev.Kind == "partition" {
			continue
		}
		d := net2.spec.decideFor(net2.seed, ev.Side, ev.From, ev.To, ev.Route, ev.Seq)
		if !d.Faulty() {
			t.Fatalf("second fabric disagrees at %+v", ev)
		}
	}
}
