package chaos

import (
	"encoding/json"
	"testing"
)

// FuzzChaosSpec hammers the fault-spec grammar: ParseSpec must never panic,
// every accepted spec must satisfy its own Validate, survive a
// marshal/re-parse round trip, and drive decide without panicking.
func FuzzChaosSpec(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"rules":[{"drop":0.5}]}`))
	f.Add([]byte(`{"rules":[{"route":"/v1/peer/run","from":"n1","to":"n3",` +
		`"drop":0.1,"corrupt":0.75,"duplicate":0.05,"latency_ms":5,"jitter_ms":10,` +
		`"drip_bytes":512,"drip_delay_ms":2}]}`))
	f.Add([]byte(`{"partitions":[{"a":"n1","b":"n2","one_way":true}]}`))
	f.Add([]byte(`{"rules":[{"drop":1.5}]}`))
	f.Add([]byte(`{"rules":[{"latency_ms":-3}]}`))
	f.Add([]byte(`{"rules":[{"corrupt":1e-300}],"partitions":[{"a":"x","b":"y"}]}`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`{"rules":`))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ParseSpec(data)
		if err != nil {
			return
		}
		if verr := s.Validate(); verr != nil {
			t.Fatalf("ParseSpec accepted a spec its own Validate rejects: %v", verr)
		}
		b, merr := json.Marshal(s)
		if merr != nil {
			t.Fatalf("accepted spec does not marshal: %v", merr)
		}
		if _, rerr := ParseSpec(b); rerr != nil {
			t.Fatalf("re-parse of accepted spec failed: %v\n%s", rerr, b)
		}
		// Accepted specs must drive the decision engine safely across the
		// first few sequence numbers of an arbitrary stream.
		for seq := uint64(0); seq < 4; seq++ {
			d := s.decideFor(1, "client", "n1", "n2", "/v1/peer/run", seq)
			if d.Corrupt && (d.CorruptAt < 0 || d.CorruptAt >= corruptWindow) {
				t.Fatalf("corrupt offset %d outside window", d.CorruptAt)
			}
			if d.Latency < 0 || d.DripBytes < 0 {
				t.Fatalf("negative decision from a validated spec: %+v", d)
			}
		}
	})
}
