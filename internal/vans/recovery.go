package vans

// Recovery is the common interface over the two ways a system comes back
// after its process dies. RemnantsRecovery models a power cycle: only what
// the hardware guarantees persistent (media image, wear counters, AIT
// translation table) survives, volatile structures come back cold. It is the
// semantics the crash-consistency checker verifies. ExactRecovery models a
// preempted or migrated simulation: an exact-state snapshot taken at an
// idle cut brings back every structure, so the resumed run is byte-identical
// to an uninterrupted one. Both produce a fresh *System and leave the old
// one untouched.
type Recovery interface {
	// Name identifies the recovery semantics ("remnants" or "exact").
	Name() string
	// Recover builds the post-restart system from the pre-crash one.
	Recover(old *System) (*System, error)
}

// RemnantsRecovery restarts with only hardware-persistent state, exactly
// like System.Recover.
type RemnantsRecovery struct{}

// Name implements Recovery.
func (RemnantsRecovery) Name() string { return "remnants" }

// Recover implements Recovery.
func (RemnantsRecovery) Recover(old *System) (*System, error) {
	return old.Recover(), nil
}

// ExactRecovery restarts from a Capture snapshot.
type ExactRecovery struct {
	// Snapshot is a sealed snapshot from System.Capture, taken on a system
	// with the same configuration as the one being recovered.
	Snapshot []byte
}

// Name implements Recovery.
func (ExactRecovery) Name() string { return "exact" }

// Recover implements Recovery.
func (r ExactRecovery) Recover(old *System) (*System, error) {
	return Restore(old.Config(), r.Snapshot)
}
