package vans

// DIMMSnapshot is one DIMM's counter snapshot in exported, JSON-stable form.
// It is the per-DIMM block of a System Snapshot, consumed by cmd/vans output
// and the nvmserved result payload.
type DIMMSnapshot struct {
	ClientReads   uint64 `json:"client_reads"`
	ClientWrites  uint64 `json:"client_writes"`
	LSQForwards   uint64 `json:"lsq_forwards"`
	LSQMerges     uint64 `json:"lsq_merges"`
	RMWHits       uint64 `json:"rmw_hits"`
	RMWMisses     uint64 `json:"rmw_misses"`
	AITHits       uint64 `json:"ait_hits"`
	AITLineMiss   uint64 `json:"ait_line_miss"`
	AITSectorMiss uint64 `json:"ait_sector_miss"`
	MediaReads    uint64 `json:"media_reads"`
	MediaWrites   uint64 `json:"media_writes"`
	Migrations    uint64 `json:"migrations"`
	MediaPoison   uint64 `json:"media_poison,omitempty"`
	FaultStalls   uint64 `json:"fault_stalls,omitempty"`
}

// Snapshot aggregates the whole system's counters at a point in time.
type Snapshot struct {
	DIMMs       []DIMMSnapshot `json:"dimms"`
	MediaReads  uint64         `json:"media_reads"`
	MediaWrites uint64         `json:"media_writes"`
	Migrations  uint64         `json:"migrations"`
	MediaPoison uint64         `json:"media_poison,omitempty"`
	FaultStalls uint64         `json:"fault_stalls,omitempty"`
}

// Snapshot captures the current per-DIMM and aggregate counters. The result
// is deterministic for a deterministic run: it contains only simulation-
// domain quantities, never wall-clock state.
func (s *System) Snapshot() Snapshot {
	var snap Snapshot
	for _, d := range s.dimms {
		st := d.Stats()
		ms := d.Media().Stats()
		snap.DIMMs = append(snap.DIMMs, DIMMSnapshot{
			ClientReads:   st.ClientReads,
			ClientWrites:  st.ClientWrites,
			LSQForwards:   st.LSQForwards,
			LSQMerges:     st.LSQMerges,
			RMWHits:       st.RMWHits,
			RMWMisses:     st.RMWMisses,
			AITHits:       st.AITHits,
			AITLineMiss:   st.AITLineMiss,
			AITSectorMiss: st.AITSectorMis,
			MediaReads:    ms.Reads,
			MediaWrites:   ms.Writes,
			Migrations:    st.Migrations,
			MediaPoison:   st.MediaPoison,
			FaultStalls:   st.FaultStalls,
		})
		snap.MediaReads += ms.Reads
		snap.MediaWrites += ms.Writes
		snap.Migrations += st.Migrations
		snap.MediaPoison += st.MediaPoison
		snap.FaultStalls += st.FaultStalls
	}
	return snap
}
