package vans

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/mem"
	"repro/internal/obs"
)

// traceRun drives accs through a fresh observed system and returns the
// recorded lifecycle.
func traceRun(cfg Config, accs []mem.Access) *obs.Lifecycle {
	o := obs.New()
	lt := obs.NewLifecycle(1)
	o.Attach(lt)
	cfg.Obs = o
	s := New(cfg)
	d := mem.NewDriver(s)
	d.SetObs(o)
	d.RunChain(accs)
	d.Fence()
	return lt
}

// sequence flattens a trace to "comp stage pos[ w]" lines.
func sequence(lt *obs.Lifecycle) []string {
	out := make([]string, 0, len(lt.Events()))
	for _, ev := range lt.Events() {
		line := fmt.Sprintf("%s %s %s", ev.Comp, ev.Stage, ev.Pos)
		if ev.Write {
			line += " w"
		}
		out = append(out, line)
	}
	return out
}

func diffSeq(t *testing.T, got, want []string) {
	t.Helper()
	for i := 0; i < len(got) || i < len(want); i++ {
		g, w := "<end>", "<end>"
		if i < len(got) {
			g = got[i]
		}
		if i < len(want) {
			w = want[i]
		}
		if g != w {
			t.Fatalf("event %d: got %q, want %q\nfull sequence:\n%s",
				i, g, w, strings.Join(got, "\n"))
		}
	}
}

// TestGoldenReadMissLifecycle pins the exact stage sequence of one cold 64B
// load: request issue, RPQ entry, RMW miss, AIT translate (table read through
// on-DIMM DRAM, sector miss), the demand media read plus the background
// sector fill (issued but completing past the fence), AIT writeback into
// DRAM, RPQ completion, request completion. The trailing pair is the fence.
func TestGoldenReadMissLifecycle(t *testing.T) {
	cfg := smallNV(DefaultConfig())
	lt := traceRun(cfg, []mem.Access{{Op: mem.OpRead, Addr: 1 << 20, Size: 64}})
	want := []string{
		"driver request issue",
		"imc0 rpq enqueue",
		"dimm0 rmw miss",
		"dimm0 ait issue",
		"dimm0/dram dram issue",
		"dimm0 ait miss",
	}
	// 16 media reads: 4 demand lines + 12 speculative sector-fill lines.
	for i := 0; i < 16; i++ {
		want = append(want, "dimm0/media media issue")
	}
	// Only the 4 demand-line completions fire before the engine drains.
	for i := 0; i < 4; i++ {
		want = append(want, "dimm0/media media complete")
	}
	want = append(want,
		"dimm0/dram dram issue w", // AIT sector install (4 DRAM line writes)
		"dimm0/dram dram issue w",
		"dimm0/dram dram issue w",
		"dimm0/dram dram issue w",
		"imc0 rpq complete",
		"driver request complete",
		"driver request issue", // fence
		"driver request complete w",
	)
	diffSeq(t, sequence(lt), want)
}

// TestGoldenWriteCombineLifecycle pins the store path: four 64B NT stores to
// one 256B block ride WPQ -> LSQ, combine into a full-block RMW hit, issue
// one AIT translate and one 256B media write.
func TestGoldenWriteCombineLifecycle(t *testing.T) {
	cfg := smallNV(DefaultConfig())
	lt := traceRun(cfg, []mem.Access{
		{Op: mem.OpWriteNT, Addr: 4096, Size: 64},
		{Op: mem.OpWriteNT, Addr: 4160, Size: 64},
		{Op: mem.OpWriteNT, Addr: 4224, Size: 64},
		{Op: mem.OpWriteNT, Addr: 4288, Size: 64},
	})
	var want []string
	perStore := []string{
		"driver request issue w",
		"imc0 wpq enqueue w",
		"imc0 wpq dequeue w",
		"dimm0 lsq enqueue w",
	}
	for i := 0; i < 3; i++ {
		want = append(want, perStore...)
		want = append(want, "driver request complete w")
	}
	want = append(want, perStore...)
	want = append(want,
		"dimm0 lsq dequeue w", // 4th store fills the group: drain + combine
		"dimm0 rmw hit w",
		"dimm0 ait issue w",
		"driver request complete w",
		"driver request issue", // fence pushes the combined write to media
		"dimm0/dram dram issue",
		"dimm0/media media issue w",
		"dimm0/dram dram issue w",
		"dimm0/media media complete w",
		"driver request complete w",
	)
	diffSeq(t, sequence(lt), want)
}

// TestGoldenWearMigrationLifecycle pins the wear path: with WearThreshold=1
// the first full-block media write trips the wear-leveler, appending exactly
// one migration event after the media write completes.
func TestGoldenWearMigrationLifecycle(t *testing.T) {
	cfg := smallNV(DefaultConfig())
	cfg.NV.WearThreshold = 1
	cfg.NV.MigrationNs = 100
	lt := traceRun(cfg, []mem.Access{
		{Op: mem.OpWriteNT, Addr: 0, Size: 64},
		{Op: mem.OpWriteNT, Addr: 64, Size: 64},
		{Op: mem.OpWriteNT, Addr: 128, Size: 64},
		{Op: mem.OpWriteNT, Addr: 192, Size: 64},
	})
	seq := sequence(lt)
	var migrations int
	for _, line := range seq {
		if line == "dimm0/wear wear migrate w" {
			migrations++
		}
	}
	if migrations != 1 {
		t.Fatalf("saw %d migration events, want 1\n%s", migrations, strings.Join(seq, "\n"))
	}
	// The migration trails the media write that crossed the threshold.
	if got := seq[len(seq)-2]; got != "dimm0/wear wear migrate w" {
		t.Fatalf("migration not in tail position: %q\n%s", got, strings.Join(seq, "\n"))
	}
}

// TestChromeTraceParallelDeterminism pins the `-trace` contract under -j:
// identical runs on concurrently-driven systems export byte-identical Chrome
// traces.
func TestChromeTraceParallelDeterminism(t *testing.T) {
	accs := []mem.Access{
		{Op: mem.OpRead, Addr: 1 << 20, Size: 64},
		{Op: mem.OpWriteNT, Addr: 4096, Size: 64},
		{Op: mem.OpWriteNT, Addr: 4160, Size: 64},
		{Op: mem.OpRead, Addr: 1 << 21, Size: 64},
	}
	const runs = 4
	outs := make([][]byte, runs)
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lt := traceRun(smallNV(DefaultConfig()), accs)
			var buf bytes.Buffer
			if err := lt.WriteChromeTrace(&buf); err != nil {
				t.Errorf("run %d: %v", i, err)
				return
			}
			outs[i] = buf.Bytes()
		}(i)
	}
	wg.Wait()
	if len(outs[0]) == 0 {
		t.Fatal("empty trace")
	}
	for i := 1; i < runs; i++ {
		if !bytes.Equal(outs[0], outs[i]) {
			t.Fatalf("run %d trace differs from run 0 (%d vs %d bytes)",
				i, len(outs[i]), len(outs[0]))
		}
	}
}

// TestObsCountersMatchSnapshot cross-checks the registry against the existing
// snapshot plumbing: both views must report identical media traffic.
func TestObsCountersMatchSnapshot(t *testing.T) {
	o := obs.New()
	cfg := smallNV(DefaultConfig())
	cfg.Obs = o
	s := New(cfg)
	d := mem.NewDriver(s)
	d.SetObs(o)
	d.RunChain([]mem.Access{
		{Op: mem.OpRead, Addr: 1 << 20, Size: 64},
		{Op: mem.OpWriteNT, Addr: 0, Size: 64},
	})
	d.Fence()

	dump := o.Dump()
	vals := map[string]uint64{}
	for _, c := range dump.Counters {
		vals[c.Name] = c.Value
	}
	snap := s.Snapshot()
	if vals["dimm0/media/reads"] != snap.DIMMs[0].MediaReads {
		t.Errorf("registry media reads %d != snapshot %d",
			vals["dimm0/media/reads"], snap.DIMMs[0].MediaReads)
	}
	if vals["dimm0/media/writes"] != snap.DIMMs[0].MediaWrites {
		t.Errorf("registry media writes %d != snapshot %d",
			vals["dimm0/media/writes"], snap.DIMMs[0].MediaWrites)
	}
	if vals["driver/reads"] != 1 || vals["driver/writes"] != 1 {
		t.Errorf("driver counters reads=%d writes=%d, want 1/1",
			vals["driver/reads"], vals["driver/writes"])
	}
}
