package vans

import (
	"encoding/json"
	"testing"

	"repro/internal/mem"
	"repro/internal/sim"
)

// crashConfig returns a small functional App Direct config for crash tests.
func crashConfig(dimms int) Config {
	cfg := DefaultConfig()
	cfg.DIMMs = dimms
	cfg.Interleaved = dimms > 1
	cfg.Functional = true
	cfg.NV.Media.Capacity = 32 << 20
	return cfg
}

// randomWorkload builds a line-aligned mixed read/write stream.
func randomWorkload(seed uint64, n int, span uint64) []mem.Access {
	rng := sim.NewRNG(seed)
	accs := make([]mem.Access, n)
	for i := range accs {
		op := mem.OpWrite
		switch rng.Uint64n(4) {
		case 0:
			op = mem.OpRead
		case 1:
			op = mem.OpWriteNT
		}
		accs[i] = mem.Access{
			Op:   op,
			Addr: rng.Uint64n(span/64) * 64,
			Size: 64,
		}
	}
	return accs
}

func TestCheckPowerFailConsistentAcrossCutSweep(t *testing.T) {
	cfg := crashConfig(1)
	accs := randomWorkload(3, 400, 1<<20)
	// Measure the fault-free run length so the sweep covers the whole
	// lifetime: start, deep inside, and past the end.
	full, err := CheckPowerFail(cfg, accs, 8, sim.Cycle(1)<<62, 11)
	if err != nil {
		t.Fatal(err)
	}
	if full.LostWrites != 0 {
		t.Fatalf("un-cut run lost %d writes", full.LostWrites)
	}
	end := sim.Cycle(full.EndCycle)
	if end == 0 {
		t.Fatal("empty run")
	}
	cuts := []sim.Cycle{0, 1, end / 17, end / 5, end / 3, end / 2, 2 * end / 3, end - 1, end, end + 1000}
	reports, err := SweepPowerFail(cfg, accs, 8, cuts, 11)
	if err != nil {
		t.Fatal(err)
	}
	for i, rep := range reports {
		if !rep.Consistent {
			t.Errorf("cut %d (cycle %d): inconsistent recovery: %+v", i, cuts[i], rep.Mismatches)
		}
		if rep.AcceptedWrites+rep.LostWrites == 0 {
			t.Errorf("cut %d: no writes tracked", i)
		}
	}
	// Later cuts never shrink the durable set.
	for i := 1; i < len(reports); i++ {
		if reports[i].AcceptedWrites < reports[i-1].AcceptedWrites {
			t.Errorf("accepted writes not monotone over cuts: %d then %d",
				reports[i-1].AcceptedWrites, reports[i].AcceptedWrites)
		}
	}
}

func TestPowerFailSweepByteIdenticalAcrossRuns(t *testing.T) {
	cfg := crashConfig(1)
	accs := randomWorkload(9, 200, 1<<19)
	cuts := []sim.Cycle{500, 5000, 50000, 500000}
	a, err := SweepPowerFail(cfg, accs, 4, cuts, 23)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SweepPowerFail(cfg, accs, 4, cuts, 23)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatalf("sweep not byte-identical:\n%s\n%s", ja, jb)
	}
}

// TestADRInvariantRandomized is the property test: across random workloads
// and random power-fail cycles, recovery exposes exactly the WPQ-accepted
// writes. Run under -race by the CI target.
func TestADRInvariantRandomized(t *testing.T) {
	trials := 12
	if testing.Short() {
		trials = 4
	}
	rng := sim.NewRNG(0xade)
	for trial := 0; trial < trials; trial++ {
		dimms := 1
		if trial%3 == 2 {
			dimms = 2
		}
		cfg := crashConfig(dimms)
		n := 50 + int(rng.Uint64n(300))
		accs := randomWorkload(rng.Uint64(), n, 1<<18<<rng.Uint64n(3))
		window := 1 + int(rng.Uint64n(16))
		// Cuts are drawn over a wide range; many land mid-flight.
		cut := sim.Cycle(rng.Uint64n(2_000_000))
		seed := rng.Uint64()
		rep, err := CheckPowerFail(cfg, accs, window, cut, seed)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Consistent {
			t.Fatalf("trial %d (dimms=%d n=%d window=%d cut=%d): %+v",
				trial, dimms, n, window, cut, rep.Mismatches)
		}
	}
}

func TestCheckPowerFailRejectsMemoryMode(t *testing.T) {
	cfg := crashConfig(1)
	cfg.Mode = MemoryMode
	if _, err := CheckPowerFail(cfg, randomWorkload(1, 10, 1<<16), 4, 1000, 1); err == nil {
		t.Fatal("memory mode accepted")
	}
}

func TestRecoverPreservesCleanImage(t *testing.T) {
	cfg := crashConfig(1)
	sys := New(cfg)
	d := mem.NewDriver(sys)
	payload := make([]byte, 64)
	for i := range payload {
		payload[i] = byte(i + 1)
	}
	d.RunChain([]mem.Access{{Op: mem.OpWrite, Addr: 4096, Size: 64, Data: payload}})
	d.Fence()
	rec := sys.Recover()
	got := rec.ReadData(4096, 64)
	for i := range payload {
		if got[i] != payload[i] {
			t.Fatalf("byte %d: got %#x want %#x", i, got[i], payload[i])
		}
	}
}
