package vans

import (
	"repro/internal/dram"
	"repro/internal/imc"
	"repro/internal/sim"
)

// nearCache is the Memory-mode DRAM cache: direct-mapped, 64B lines,
// write-back write-allocate, with DDR4 timing for hits (a dedicated DRAM
// DIMM per the platform's Memory-mode channel pairing) and NVDIMM round
// trips for misses.
type nearCache struct {
	eng   *sim.Engine
	imc   *imc.IMC
	dramC *dram.Controller

	lines uint64
	// tags maps set index -> line address currently cached (direct-mapped).
	tags  map[uint64]uint64
	dirty map[uint64]bool

	inflight int

	// CacheStats
	hits      uint64
	misses    uint64
	wbacks    uint64
	fillDrops uint64
}

// NearCacheStats reports Memory-mode cache behavior.
type NearCacheStats struct {
	Hits       uint64
	Misses     uint64
	WriteBacks uint64
}

func newNearCache(eng *sim.Engine, m *imc.IMC, sizeBytes uint64) *nearCache {
	cfg := dram.DefaultConfig()
	cfg.QueueDepth = 32
	return &nearCache{
		eng:   eng,
		imc:   m,
		dramC: dram.NewController(eng, cfg),
		lines: sizeBytes / 64,
		tags:  make(map[uint64]uint64),
		dirty: make(map[uint64]bool),
	}
}

// Stats returns a snapshot of cache counters.
func (c *nearCache) Stats() NearCacheStats {
	return NearCacheStats{Hits: c.hits, Misses: c.misses, WriteBacks: c.wbacks}
}

func (c *nearCache) busy() bool { return c.inflight > 0 }

func (c *nearCache) index(line uint64) uint64 { return (line / 64) % c.lines }

// lookup probes the cache; returns hit.
func (c *nearCache) lookup(line uint64) bool {
	got, ok := c.tags[c.index(line)]
	return ok && got == line
}

// dramAccess schedules a near-DRAM access with retry-on-backpressure.
func (c *nearCache) dramAccess(addr uint64, write bool, done func()) {
	if !c.dramC.Schedule(addr, write, done) {
		c.eng.After(8, func() { c.dramAccess(addr, write, done) })
	}
}

// read serves a 64B load. Hit: DRAM timing. Miss: NVDIMM read, install,
// write back the displaced dirty line. A poisoned far read surfaces through
// done and is never installed in the cache.
func (c *nearCache) read(addr uint64, done func(error)) bool {
	line := addr - addr%64
	c.inflight++
	finish := func(err error) {
		c.inflight--
		done(err)
	}
	if c.lookup(line) {
		c.hits++
		c.dramAccess(line, false, func() { finish(nil) })
		return true
	}
	c.misses++
	if !c.imc.Read(line, func(err error) {
		if err != nil {
			finish(err)
			return
		}
		c.install(line, false)
		// The fill write to near DRAM is off the critical path.
		c.dramAccess(line, true, nil)
		finish(nil)
	}) {
		c.inflight--
		return false
	}
	return true
}

// write serves a 64B store with write-allocate semantics. A poisoned
// allocate-fill does not fail the store: the new data overwrites the
// unreadable line.
func (c *nearCache) write(addr uint64, done func()) bool {
	line := addr - addr%64
	c.inflight++
	finish := func() {
		c.inflight--
		done()
	}
	if c.lookup(line) {
		c.hits++
		c.dirty[c.index(line)] = true
		c.dramAccess(line, true, finish)
		return true
	}
	c.misses++
	if !c.imc.Read(line, func(error) {
		c.install(line, true)
		c.dramAccess(line, true, finish)
	}) {
		c.inflight--
		return false
	}
	return true
}

// install places line in its set, writing back a displaced dirty victim to
// the NVDIMM in the background.
func (c *nearCache) install(line uint64, dirty bool) {
	idx := c.index(line)
	if victim, ok := c.tags[idx]; ok && victim != line && c.dirty[idx] {
		c.wbacks++
		c.inflight++
		var push func()
		push = func() {
			if !c.imc.Write(victim, nil, func() { c.inflight-- }) {
				c.eng.After(32, push)
			}
		}
		push()
	}
	c.tags[idx] = line
	c.dirty[idx] = dirty
}
