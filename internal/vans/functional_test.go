package vans

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/sim"
)

// TestRandomizedFunctionalConsistency drives a random mix of writes, fences,
// and reads through the full stack (WPQ combining -> LSQ -> RMW -> AIT ->
// media, with wear-leveling migrations permuting the translation) and
// checks that the functional contents always reflect the last write to each
// location. This is the end-to-end data-integrity property of the whole
// pipeline.
func TestRandomizedFunctionalConsistency(t *testing.T) {
	f := func(seed uint64) bool {
		cfg := DefaultConfig()
		cfg.Functional = true
		cfg.NV.Media.Capacity = 16 << 20
		cfg.NV.WearThreshold = 30 // migrations happen mid-run
		cfg.NV.MigrationNs = 5000
		cfg.Seed = seed
		s := New(cfg)
		d := mem.NewDriver(s)
		rng := sim.NewRNG(seed)

		// Shadow model: last write per address.
		shadow := map[uint64]byte{}
		addrs := make([]uint64, 24)
		for i := range addrs {
			addrs[i] = rng.Uint64n(4<<20) &^ 63
		}

		for step := 0; step < 300; step++ {
			a := addrs[rng.Intn(len(addrs))]
			switch rng.Intn(4) {
			case 0, 1: // write
				v := byte(rng.Intn(256))
				req := &mem.Request{Op: mem.OpWriteNT, Addr: a, Size: 64,
					Data: []byte{v}}
				done := false
				req.OnDone = func(*mem.Request) { done = true }
				for !s.Submit(req) {
					fired := s.Engine().Fired()
					s.Engine().RunWhile(func() bool { return s.Engine().Fired() == fired })
				}
				s.Engine().RunWhile(func() bool { return !done })
				shadow[a] = v
			case 2: // fence
				d.Fence()
			case 3: // check a previously written address
				if len(shadow) == 0 {
					continue
				}
				for addr, want := range shadow {
					got := s.ReadData(addr, 1)
					if !bytes.Equal(got, []byte{want}) {
						t.Logf("seed %d: addr %#x = %v, want %v", seed, addr, got, want)
						return false
					}
					break
				}
			}
		}
		// Final drain, then verify everything.
		d.Fence()
		for addr, want := range shadow {
			if got := s.ReadData(addr, 1); !bytes.Equal(got, []byte{want}) {
				t.Logf("seed %d: final addr %#x = %v, want %v", seed, addr, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestInterleavedFunctionalConsistency repeats the integrity property with
// 6 interleaved DIMMs, exercising the router and per-DIMM translations.
func TestInterleavedFunctionalConsistency(t *testing.T) {
	cfg := Interleaved6()
	cfg.Functional = true
	cfg.NV.Media.Capacity = 16 << 20
	cfg.NV.WearThreshold = 25
	cfg.NV.MigrationNs = 5000
	s := New(cfg)
	d := mem.NewDriver(s)
	rng := sim.NewRNG(99)

	shadow := map[uint64]byte{}
	for step := 0; step < 400; step++ {
		// Cover several interleave spans, including span boundaries.
		a := rng.Uint64n(128<<10) &^ 63
		v := byte(step)
		req := &mem.Request{Op: mem.OpWriteNT, Addr: a, Size: 64, Data: []byte{v}}
		done := false
		req.OnDone = func(*mem.Request) { done = true }
		for !s.Submit(req) {
			fired := s.Engine().Fired()
			s.Engine().RunWhile(func() bool { return s.Engine().Fired() == fired })
		}
		s.Engine().RunWhile(func() bool { return !done })
		shadow[a] = v
		if step%50 == 49 {
			d.Fence()
		}
	}
	d.Fence()
	if s.Migrations() == 0 {
		t.Log("warning: no migrations occurred; wear path untested this run")
	}
	for addr, want := range shadow {
		if got := s.ReadData(addr, 1); !bytes.Equal(got, []byte{want}) {
			t.Fatalf("addr %#x = %v, want %v", addr, got, want)
		}
	}
}

// TestDrainedQuiescence: after every request completes and a fence returns,
// the engine must quiesce — no self-sustaining event loops.
func TestDrainedQuiescence(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NV.Media.Capacity = 16 << 20
	s := New(cfg)
	d := mem.NewDriver(s)
	var accs []mem.Access
	rng := sim.NewRNG(3)
	for i := 0; i < 200; i++ {
		op := mem.OpRead
		if rng.Intn(2) == 0 {
			op = mem.OpWriteNT
		}
		accs = append(accs, mem.Access{Op: op, Addr: rng.Uint64n(8<<20) &^ 63, Size: 64})
	}
	d.RunWindow(accs, 8)
	d.Fence()
	// Run everything left (background fills); the engine must terminate.
	s.Engine().Run()
	if !s.Drained() {
		t.Fatal("system not drained after full engine run")
	}
	if s.Engine().Pending() != 0 {
		t.Fatalf("%d events still pending after Run", s.Engine().Pending())
	}
}
