// Package vans assembles the Validated cycle-Accurate NVRAM Simulator: an
// integrated memory controller (WPQ/RPQ, DDR-T bus, 4KB interleaver) over
// one or more Optane DIMM models (LSQ, RMW buffer, AIT, wear-leveling,
// 3D-XPoint media), in either App Direct mode (persistent, CPU loads/stores
// reach the NVDIMM) or Memory mode (a DRAM near-cache fronts the NVDIMM and
// persistence is not guaranteed).
package vans

import (
	"fmt"

	"repro/internal/dram"
	"repro/internal/fault"
	"repro/internal/imc"
	"repro/internal/mem"
	"repro/internal/nvdimm"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Mode selects the Optane DIMM operating mode.
type Mode uint8

const (
	// AppDirect exposes the NVDIMM as persistent memory.
	AppDirect Mode = iota
	// MemoryMode uses DRAM as a direct-mapped cache over the NVDIMM.
	MemoryMode
)

// String names the mode.
func (m Mode) String() string {
	if m == MemoryMode {
		return "Memory"
	}
	return "AppDirect"
}

// Config configures a whole VANS instance.
type Config struct {
	// DIMMs is the NVDIMM count (1 or 6 in the paper's experiments).
	DIMMs int
	// Interleaved enables 4KB multi-DIMM interleaving.
	Interleaved bool
	// Mode selects App Direct or Memory mode.
	Mode Mode
	// NV configures each NVDIMM identically.
	NV nvdimm.Config
	// IMC configures the memory controller.
	IMC imc.Config
	// DRAMCacheBytes sizes the Memory-mode near cache (per system).
	DRAMCacheBytes uint64
	// Seed drives stochastic choices (wear-leveling partners).
	Seed uint64
	// Functional enables data-content tracking end to end.
	Functional bool
	// Fault configures deterministic fault injection (zero value: disabled).
	Fault fault.Spec
	// FaultAttempt is the retry attempt number; transient faults fire only
	// on attempt 0, so a retried run deterministically succeeds.
	FaultAttempt int
	// Obs, when set, wires the whole stack (iMC, DIMMs, media, on-DIMM DRAM,
	// wear-leveler) into the observability registry. The system builds its
	// own child context, so one parent Obs can safely serve parallel systems.
	// Runtime-only: never serialized, never part of a config hash.
	Obs *obs.Obs `json:"-"`

	// Parallel sets how many goroutines may execute one engine cycle round
	// (<= 1 fully serial). Per-channel events are sharded either way, so
	// simulation output is byte-identical at every setting — this is an
	// execution-strategy knob, never semantic. Runtime-only: never
	// serialized, never part of a config or job hash.
	Parallel int `json:"-"`
}

// DefaultConfig returns a single non-interleaved App Direct DIMM, the
// configuration LENS profiles in Section III.
func DefaultConfig() Config {
	return Config{
		DIMMs: 1,
		Mode:  AppDirect,
		NV:    nvdimm.DefaultConfig(),
		IMC:   imc.DefaultConfig(),
		Seed:  1,
	}
}

// Interleaved6 returns the 6-DIMM interleaved configuration of Figure 9b.
func Interleaved6() Config {
	cfg := DefaultConfig()
	cfg.DIMMs = 6
	cfg.Interleaved = true
	return cfg
}

// System is the assembled simulator; it implements mem.System.
type System struct {
	eng   *sim.Engine
	cfg   Config
	imc   *imc.IMC
	dimms []*nvdimm.DIMM
	cache *nearCache // Memory mode only
	o     *obs.Obs   // this system's child observability context (may be nil)
}

// New builds a System from cfg (zero fields defaulted).
func New(cfg Config) *System {
	if cfg.DIMMs == 0 {
		cfg.DIMMs = 1
	}
	if cfg.NV.LSQSlots == 0 && cfg.NV.RMWEntries == 0 {
		cfg.NV = nvdimm.DefaultConfig()
	}
	cfg.NV.Functional = cfg.NV.Functional || cfg.Functional
	cfg.IMC.Interleaved = cfg.Interleaved
	eng := sim.NewEngine()
	s := &System{eng: eng, cfg: cfg}
	if cfg.Obs != nil {
		s.o = cfg.Obs.Child()
		s.o.AdoptEngine(eng)
		cfg.IMC.Obs = s.o
	}
	for i := 0; i < cfg.DIMMs; i++ {
		nvCfg := cfg.NV
		if s.o != nil {
			nvCfg.Obs = s.o
			nvCfg.ObsName = fmt.Sprintf("dimm%d", i)
		}
		if cfg.Fault.Enabled() {
			// Each DIMM gets its own injector with a derived seed so fault
			// placement is deterministic regardless of DIMM count.
			sp := cfg.Fault
			if sp.Seed == 0 {
				sp.Seed = 1
			}
			sp.Seed += uint64(i) * 0x9e3779b9
			nvCfg.Injector = fault.NewInjector(sp, cfg.FaultAttempt)
		}
		// DIMM i lives on engine shard i+1, shared with iMC channel i: the
		// pair's events may run concurrently with other channels' within a
		// cycle round, with driver-facing completions funneled through home
		// events (see imc.New).
		s.dimms = append(s.dimms, nvdimm.New(eng.Shard(i+1), nvCfg, cfg.Seed+uint64(i)*7919))
	}
	s.imc = imc.New(eng, cfg.IMC, s.dimms)
	eng.SetParallel(cfg.Parallel)
	if s.o != nil {
		// Lifecycle tracing appends to a shared buffer; while it is active,
		// rounds execute inline (same round structure, same output).
		eng.SetParallelGate(s.o.Active)
	}
	if cfg.Mode == MemoryMode {
		size := cfg.DRAMCacheBytes
		if size == 0 {
			size = 4 << 30
		}
		s.cache = newNearCache(eng, s.imc, size)
	}
	return s
}

// Engine implements mem.System.
func (s *System) Engine() *sim.Engine { return s.eng }

// CyclesPerNano implements mem.System.
func (s *System) CyclesPerNano() float64 { return dram.CyclesPerNano }

// Config returns the effective configuration.
func (s *System) Config() Config { return s.cfg }

// IMC exposes the memory controller.
func (s *System) IMC() *imc.IMC { return s.imc }

// Obs returns this system's observability context (nil when Config.Obs was
// not set).
func (s *System) Obs() *obs.Obs { return s.o }

// DIMMs exposes the NVDIMM models.
func (s *System) DIMMs() []*nvdimm.DIMM { return s.dimms }

// Cache exposes the Memory-mode near cache (nil in App Direct).
func (s *System) Cache() *nearCache { return s.cache }

// Drained implements mem.System.
func (s *System) Drained() bool {
	if s.imc.Busy() {
		return false
	}
	return s.cache == nil || !s.cache.busy()
}

// Submit implements mem.System.
func (s *System) Submit(r *mem.Request) bool {
	if s.cfg.Mode == MemoryMode {
		return s.submitMemoryMode(r)
	}
	switch r.Op {
	case mem.OpRead:
		ok := s.imc.Read(r.Addr, func(err error) { r.CompleteErr(s.eng.Now(), err) })
		if ok {
			r.Issued = s.eng.Now()
		}
		return ok
	case mem.OpWrite, mem.OpWriteNT, mem.OpClwb:
		ok := s.imc.Write(r.Addr, r.Data, func() { r.Complete(s.eng.Now()) })
		if ok {
			r.Issued = s.eng.Now()
		}
		return ok
	case mem.OpFence:
		r.Issued = s.eng.Now()
		s.imc.Fence(func() { r.Complete(s.eng.Now()) })
		return true
	default:
		return false
	}
}

func (s *System) submitMemoryMode(r *mem.Request) bool {
	switch r.Op {
	case mem.OpRead:
		ok := s.cache.read(r.Addr, func(err error) { r.CompleteErr(s.eng.Now(), err) })
		if ok {
			r.Issued = s.eng.Now()
		}
		return ok
	case mem.OpWrite, mem.OpWriteNT, mem.OpClwb:
		ok := s.cache.write(r.Addr, func() { r.Complete(s.eng.Now()) })
		if ok {
			r.Issued = s.eng.Now()
		}
		return ok
	case mem.OpFence:
		// Memory mode offers no persistence; a fence is ordering-only and
		// completes once the cache's miss traffic drains.
		r.Issued = s.eng.Now()
		var poll func()
		poll = func() {
			if !s.cache.busy() && !s.imc.Busy() {
				r.Complete(s.eng.Now())
				return
			}
			s.eng.After(16, poll)
		}
		s.eng.After(1, poll)
		return true
	default:
		return false
	}
}

// ReadData returns functional contents through DIMM routing (test support;
// App Direct only).
func (s *System) ReadData(addr uint64, n int) []byte {
	ch, local := s.imcRoute(addr)
	return s.dimms[ch].ReadData(local, n)
}

func (s *System) imcRoute(addr uint64) (int, uint64) {
	return s.imc.Route(addr)
}

// MediaStats sums media counters across DIMMs.
func (s *System) MediaStats() (reads, writes uint64) {
	for _, d := range s.dimms {
		st := d.Media().Stats()
		reads += st.Reads
		writes += st.Writes
	}
	return reads, writes
}

// FaultStats sums injected-fault counters across DIMMs.
func (s *System) FaultStats() (poison, stalls uint64) {
	for _, d := range s.dimms {
		st := d.Stats()
		poison += st.MediaPoison
		stalls += st.FaultStalls
	}
	return poison, stalls
}

// Migrations sums wear-leveling migrations across DIMMs.
func (s *System) Migrations() uint64 {
	var n uint64
	for _, d := range s.dimms {
		n += d.Stats().Migrations
	}
	return n
}
