package vans

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/mem"
	"repro/internal/sim"
)

// Recover models a power cycle: it boots a fresh System with the same
// configuration (new engine, cold volatile structures — LSQ, RMW buffer, AIT
// data buffer, WPQ, near cache) and transplants only the persistent remnants
// of each DIMM: the media functional image, the wear counters, and the AIT
// translation table. This is exactly the state ADR plus persistent metadata
// guarantee across power loss; everything else is truncated by construction.
//
// Fault injection does not survive the reboot — the recovered system reads
// back cleanly so the checker observes the true persistent image.
func (s *System) Recover() *System {
	cfg := s.cfg
	cfg.Fault = fault.Spec{}
	fresh := New(cfg)
	for i, d := range fresh.dimms {
		d.AdoptPersistent(s.dimms[i])
	}
	return fresh
}

// CheckPowerFail runs accs against a fresh system built from cfg, cuts power
// at engine cycle cut, recovers, and verifies the ADR contract: the
// persistent image after recovery holds exactly the writes the iMC accepted
// before the cut — the final payload of every accepted line (nothing lost or
// torn) and zeroes on every line only unaccepted writes touched (nothing
// ghost). Write payloads are filled deterministically from seed, so any torn
// or stale byte is a detected mismatch.
//
// The check is functional by necessity and App Direct by definition (Memory
// mode offers no persistence to check).
func CheckPowerFail(cfg Config, accs []mem.Access, window int, cut sim.Cycle, seed uint64) (fault.CrashReport, error) {
	if cfg.Mode == MemoryMode {
		return fault.CrashReport{}, fmt.Errorf("vans: crash-consistency check requires App Direct mode")
	}
	cfg.Functional = true
	// Work on a copy: FillPayloads mutates, and the caller may reuse accs.
	run := make([]mem.Access, len(accs))
	copy(run, accs)
	fault.FillPayloads(run, seed)

	sys := New(cfg)
	led := fault.RunToCut(sys, run, window, cut)
	rec := sys.Recover()
	mism := led.Verify(rec.ReadData)

	return fault.CrashReport{
		CutCycle:       uint64(cut),
		EndCycle:       uint64(led.EndCycle()),
		AcceptedWrites: led.Accepted(),
		LostWrites:     led.Lost(),
		DurableLines:   led.DurableLines(),
		Consistent:     len(mism) == 0,
		Mismatches:     mism,
	}, nil
}

// SweepPowerFail runs CheckPowerFail at every cut cycle in cuts and returns
// the per-cut reports. It is the "every injection point" sweep: a workload is
// replayed from scratch for each cut so reports are independent and
// deterministic.
func SweepPowerFail(cfg Config, accs []mem.Access, window int, cuts []sim.Cycle, seed uint64) ([]fault.CrashReport, error) {
	out := make([]fault.CrashReport, 0, len(cuts))
	for _, cut := range cuts {
		rep, err := CheckPowerFail(cfg, accs, window, cut, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, rep)
	}
	return out, nil
}
