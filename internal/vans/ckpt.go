package vans

import (
	"fmt"
	"sort"

	"repro/internal/ckpt"
)

// saveState serializes the Memory-mode near cache: tag/dirty arrays sorted
// by set index, activity counters, and the near-DRAM controller.
func (c *nearCache) saveState(enc *ckpt.Enc) error {
	if c.inflight != 0 {
		return fmt.Errorf("ckpt: near cache has %d in-flight accesses; checkpoint only at an idle cut", c.inflight)
	}
	idxs := make([]uint64, 0, len(c.tags))
	for i := range c.tags {
		idxs = append(idxs, i)
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	enc.U32(uint32(len(idxs)))
	for _, i := range idxs {
		enc.U64(i)
		enc.U64(c.tags[i])
		enc.Bool(c.dirty[i])
	}
	enc.U64(c.hits)
	enc.U64(c.misses)
	enc.U64(c.wbacks)
	enc.U64(c.fillDrops)
	return c.dramC.SaveState(enc)
}

func (c *nearCache) loadState(dec *ckpt.Dec) error {
	if c.inflight != 0 {
		return fmt.Errorf("ckpt: cannot restore into a near cache with in-flight accesses")
	}
	n := dec.Count(17)
	if err := dec.Err(); err != nil {
		return err
	}
	clear(c.tags)
	clear(c.dirty)
	for i := 0; i < n; i++ {
		idx := dec.U64()
		line := dec.U64()
		dirty := dec.Bool()
		if err := dec.Err(); err != nil {
			return err
		}
		if idx >= c.lines {
			return fmt.Errorf("%w: near-cache set %d beyond %d sets", ckpt.ErrCorrupt, idx, c.lines)
		}
		c.tags[idx] = line
		if dirty {
			c.dirty[idx] = true
		}
	}
	c.hits = dec.U64()
	c.misses = dec.U64()
	c.wbacks = dec.U64()
	c.fillDrops = dec.U64()
	return c.dramC.LoadState(dec)
}

// SaveState serializes the whole system at an engine-idle cut: the engine
// clock, the iMC with every channel and DIMM, and the Memory-mode near cache
// when present. The system must be fully quiescent — in-flight requests and
// pending events carry completion closures that have no identity outside
// this process, which is why the driver drains its window and runs the
// engine dry before cutting (DESIGN.md §12).
func (s *System) SaveState(enc *ckpt.Enc) error {
	if s.cfg.Fault.Enabled() {
		return fmt.Errorf("ckpt: fault-injected runs cannot be checkpointed (injector streams are attempt-scoped)")
	}
	if !s.Drained() {
		return fmt.Errorf("ckpt: system busy; checkpoint only at an idle cut")
	}
	if n := s.eng.Pending(); n != 0 {
		return fmt.Errorf("ckpt: %d events still pending; checkpoint only at an idle cut", n)
	}
	if err := s.eng.SaveState(enc); err != nil {
		return err
	}
	if err := s.imc.SaveState(enc); err != nil {
		return err
	}
	enc.Bool(s.cache != nil)
	if s.cache != nil {
		return s.cache.saveState(enc)
	}
	return nil
}

// LoadState restores state captured by SaveState into a freshly built
// system with the same configuration.
func (s *System) LoadState(dec *ckpt.Dec) error {
	if s.cfg.Fault.Enabled() {
		return fmt.Errorf("ckpt: cannot restore into a fault-injected system")
	}
	if err := s.eng.LoadState(dec); err != nil {
		return err
	}
	if err := s.imc.LoadState(dec); err != nil {
		return err
	}
	hasCache := dec.Bool()
	if err := dec.Err(); err != nil {
		return err
	}
	if hasCache != (s.cache != nil) {
		return fmt.Errorf("%w: snapshot near-cache presence %v, this system %v",
			ckpt.ErrCorrupt, hasCache, s.cache != nil)
	}
	if s.cache != nil {
		return s.cache.loadState(dec)
	}
	return nil
}

// Capture seals the system state into a standalone snapshot.
func (s *System) Capture() ([]byte, error) {
	var enc ckpt.Enc
	if err := s.SaveState(&enc); err != nil {
		return nil, err
	}
	return ckpt.Seal(enc.Bytes()), nil
}

// Restore builds a fresh system from cfg and loads a snapshot produced by
// Capture on a system with the same configuration.
func Restore(cfg Config, snapshot []byte) (*System, error) {
	payload, err := ckpt.Open(snapshot)
	if err != nil {
		return nil, err
	}
	s := New(cfg)
	dec := ckpt.NewDec(payload)
	if err := s.LoadState(dec); err != nil {
		return nil, err
	}
	if err := dec.Close(); err != nil {
		return nil, err
	}
	return s, nil
}
