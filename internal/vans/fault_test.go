package vans

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/mem"
)

// coldReads builds reads over distinct cold lines (no LSQ/RMW forwarding).
func coldReads(n int) []mem.Access {
	accs := make([]mem.Access, n)
	for i := range accs {
		accs[i] = mem.Access{Op: mem.OpRead, Addr: uint64(i) * 4096, Size: 64}
	}
	return accs
}

func TestInjectedPoisonSurfacesAsTypedError(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NV.Media.Capacity = 32 << 20
	cfg.Fault = fault.Spec{Seed: 5, PoisonRate: 1}
	sys := New(cfg)
	d := mem.NewDriver(sys)
	d.RunChain(coldReads(4))
	if d.Faults() != 4 {
		t.Fatalf("faults = %d, want 4 (rate 1 over 4 cold reads)", d.Faults())
	}
	if !fault.IsMediaError(d.Err()) {
		t.Fatalf("driver error %v is not a MediaError", d.Err())
	}
	if fault.IsTransient(d.Err()) {
		t.Fatal("permanent poison reported transient")
	}
	// The stat counts speculative line-fill poison too, so it is at least
	// the demand-read fault count.
	if p, _ := sys.FaultStats(); p < 4 {
		t.Fatalf("MediaPoison stat = %d, want >= 4", p)
	}
}

func TestTransientPoisonClearsOnRetryAttempt(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NV.Media.Capacity = 32 << 20
	cfg.Fault = fault.Spec{Seed: 5, PoisonRate: 1, PoisonTransient: true}

	first := mem.NewDriver(New(cfg))
	first.RunChain(coldReads(2))
	if !fault.IsTransient(first.Err()) {
		t.Fatalf("attempt 0 error %v not transient", first.Err())
	}

	cfg.FaultAttempt = 1
	retry := mem.NewDriver(New(cfg))
	retry.RunChain(coldReads(2))
	if retry.Err() != nil {
		t.Fatalf("retry attempt still faulted: %v", retry.Err())
	}
}

func TestInjectedStallStretchesLatency(t *testing.T) {
	base := DefaultConfig()
	base.NV.Media.Capacity = 32 << 20
	clean := mem.NewDriver(New(base))
	cleanLats := clean.RunChain(coldReads(8))

	stalled := base
	stalled.Fault = fault.Spec{Seed: 5, StallRate: 1, StallNs: 50000}
	d := mem.NewDriver(New(stalled))
	lats := d.RunChain(coldReads(8))
	if d.Err() != nil {
		t.Fatalf("stalls must not fault: %v", d.Err())
	}
	var cleanSum, stallSum uint64
	for i := range lats {
		cleanSum += uint64(cleanLats[i])
		stallSum += uint64(lats[i])
	}
	if stallSum <= cleanSum*2 {
		t.Fatalf("stall spikes invisible: clean %d cycles, stalled %d", cleanSum, stallSum)
	}
}

func TestFaultRunsAreDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NV.Media.Capacity = 32 << 20
	cfg.Fault = fault.Spec{Seed: 77, PoisonRate: 0.3, StallRate: 0.2, StallNs: 20000}
	run := func() ([]uint64, int) {
		d := mem.NewDriver(New(cfg))
		lats := d.RunChain(coldReads(64))
		out := make([]uint64, len(lats))
		for i, l := range lats {
			out[i] = uint64(l)
		}
		return out, d.Faults()
	}
	la, fa := run()
	lb, fb := run()
	if fa != fb {
		t.Fatalf("fault counts diverged: %d vs %d", fa, fb)
	}
	if fa == 0 {
		t.Fatal("no faults at 30% over 64 reads")
	}
	for i := range la {
		if la[i] != lb[i] {
			t.Fatalf("latency %d diverged: %d vs %d", i, la[i], lb[i])
		}
	}
}
