package vans

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/sim"
)

func smallNV(cfg Config) Config {
	cfg.NV.Media.Capacity = 64 << 20
	return cfg
}

func TestRouteUnrouteBijection(t *testing.T) {
	cfg := smallNV(Interleaved6())
	s := New(cfg)
	f := func(addrRaw uint64) bool {
		addr := addrRaw % (1 << 32)
		ch, local := s.IMC().Route(addr)
		if ch < 0 || ch >= 6 {
			return false
		}
		return s.IMC().Unroute(ch, local) == addr
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestRouteInterleaveGranularity(t *testing.T) {
	s := New(smallNV(Interleaved6()))
	// Addresses within one 4KB span map to the same channel; the next span
	// maps to the next channel.
	ch0, _ := s.IMC().Route(0)
	ch0b, _ := s.IMC().Route(4095)
	ch1, _ := s.IMC().Route(4096)
	if ch0 != ch0b {
		t.Fatal("same 4KB span split across channels")
	}
	if ch1 == ch0 {
		t.Fatal("next 4KB span on same channel")
	}
	// Non-interleaved: everything on channel 0.
	s2 := New(smallNV(DefaultConfig()))
	if ch, local := s2.IMC().Route(123456); ch != 0 || local != 123456 {
		t.Fatalf("non-interleaved route = %d,%d", ch, local)
	}
}

func TestAppDirectReadWriteFence(t *testing.T) {
	s := New(smallNV(DefaultConfig()))
	d := mem.NewDriver(s)
	lats := d.RunChain([]mem.Access{
		{Op: mem.OpRead, Addr: 1 << 20, Size: 64},
		{Op: mem.OpWriteNT, Addr: 1 << 20, Size: 64},
	})
	if lats[0] == 0 || lats[1] == 0 {
		t.Fatalf("zero latencies: %v", lats)
	}
	d.Fence()
	if !s.Drained() {
		t.Fatal("system not drained after fence")
	}
	_, w := s.MediaStats()
	if w == 0 {
		t.Fatal("fence did not reach media")
	}
}

func TestStoreFasterThanLoad(t *testing.T) {
	// Stores complete at WPQ (ADR) acceptance; loads pay the full NVDIMM
	// round trip, so a cold store is faster than a cold load.
	s := New(smallNV(DefaultConfig()))
	d := mem.NewDriver(s)
	st := d.RunChain([]mem.Access{{Op: mem.OpWriteNT, Addr: 1 << 21, Size: 64}})[0]
	ld := d.RunChain([]mem.Access{{Op: mem.OpRead, Addr: 1 << 22, Size: 64}})[0]
	if st >= ld {
		t.Fatalf("posted store (%d) not faster than cold load (%d)", st, ld)
	}
}

func TestInterleavingSpeedsUpSequentialWrites(t *testing.T) {
	run := func(cfg Config) sim.Cycle {
		s := New(smallNV(cfg))
		d := mem.NewDriver(s)
		accs := make([]mem.Access, 1024) // 64KB sequential
		for i := range accs {
			accs[i] = mem.Access{Op: mem.OpWriteNT, Addr: uint64(i) * 64, Size: 64}
		}
		elapsed := d.RunWindow(accs, 8)
		return elapsed
	}
	one := run(DefaultConfig())
	six := run(Interleaved6())
	if six >= one {
		t.Fatalf("6-DIMM interleaved (%d) not faster than 1 DIMM (%d)", six, one)
	}
}

func TestWPQForwarding(t *testing.T) {
	s := New(smallNV(DefaultConfig()))
	d := mem.NewDriver(s)
	d.RunChain([]mem.Access{{Op: mem.OpWriteNT, Addr: 4096, Size: 64}})
	fwd := d.RunChain([]mem.Access{{Op: mem.OpRead, Addr: 4096, Size: 64}})[0]
	cold := d.RunChain([]mem.Access{{Op: mem.OpRead, Addr: 1 << 22, Size: 64}})[0]
	if fwd >= cold {
		t.Fatalf("forwarded read (%d) not faster than cold (%d)", fwd, cold)
	}
}

func TestFunctionalDataThroughInterleaver(t *testing.T) {
	cfg := smallNV(Interleaved6())
	cfg.Functional = true
	s := New(cfg)
	d := mem.NewDriver(s)
	// Write distinct payloads across several interleave spans.
	payloads := map[uint64][]byte{}
	for i := 0; i < 12; i++ {
		addr := uint64(i) * 4096
		p := []byte{byte(i), byte(i + 1), byte(i + 2)}
		payloads[addr] = p
		req := &mem.Request{Op: mem.OpWriteNT, Addr: addr, Size: 64, Data: p}
		done := false
		req.OnDone = func(*mem.Request) { done = true }
		for !s.Submit(req) {
			fired := s.Engine().Fired()
			s.Engine().RunWhile(func() bool { return s.Engine().Fired() == fired })
		}
		s.Engine().RunWhile(func() bool { return !done })
	}
	d.Fence()
	for addr, p := range payloads {
		if got := s.ReadData(addr, len(p)); !bytes.Equal(got, p) {
			t.Fatalf("addr %d: got %v want %v", addr, got, p)
		}
	}
}

func TestMemoryModeCacheHitsFasterThanMisses(t *testing.T) {
	cfg := smallNV(DefaultConfig())
	cfg.Mode = MemoryMode
	cfg.DRAMCacheBytes = 1 << 20
	s := New(cfg)
	d := mem.NewDriver(s)
	miss := d.RunChain([]mem.Access{{Op: mem.OpRead, Addr: 1 << 21, Size: 64}})[0]
	hit := d.RunChain([]mem.Access{{Op: mem.OpRead, Addr: 1 << 21, Size: 64}})[0]
	if hit >= miss {
		t.Fatalf("cache hit (%d) not faster than miss (%d)", hit, miss)
	}
	st := s.Cache().Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("cache stats = %+v", st)
	}
}

func TestMemoryModeWriteBack(t *testing.T) {
	cfg := smallNV(DefaultConfig())
	cfg.Mode = MemoryMode
	cfg.DRAMCacheBytes = 64 * 4 // 4 lines: tiny, to force conflicts
	s := New(cfg)
	d := mem.NewDriver(s)
	// Write line A, then read conflicting line B (same set) to evict A.
	d.RunChain([]mem.Access{{Op: mem.OpWrite, Addr: 0, Size: 64}})
	d.RunChain([]mem.Access{{Op: mem.OpRead, Addr: 64 * 4, Size: 64}})
	d.Fence()
	if s.Cache().Stats().WriteBacks == 0 {
		t.Fatal("dirty eviction produced no write-back")
	}
}

func TestMemoryModeFence(t *testing.T) {
	cfg := smallNV(DefaultConfig())
	cfg.Mode = MemoryMode
	s := New(cfg)
	d := mem.NewDriver(s)
	d.RunChain([]mem.Access{{Op: mem.OpWrite, Addr: 128, Size: 64}})
	d.Fence()
	if !s.Drained() {
		t.Fatal("memory-mode fence left system busy")
	}
}

func TestModeString(t *testing.T) {
	if AppDirect.String() != "AppDirect" || MemoryMode.String() != "Memory" {
		t.Fatal("mode names wrong")
	}
}

func TestMigrationsAcrossDIMMs(t *testing.T) {
	cfg := smallNV(DefaultConfig())
	cfg.NV.WearThreshold = 25
	s := New(cfg)
	d := mem.NewDriver(s)
	for i := 0; i < 60; i++ {
		d.RunChain([]mem.Access{{Op: mem.OpWriteNT, Addr: 4096, Size: 64}})
		d.Fence()
	}
	if s.Migrations() == 0 {
		t.Fatal("no migrations aggregated")
	}
}
