package vans

import (
	"testing"

	"repro/internal/ckpt"
	"repro/internal/mem"
)

// ckptAccs builds a deterministic mixed stream with reuse (exercises LSQ,
// RMW, AIT, wear, and in Memory mode the near cache).
func ckptAccs(n int) []mem.Access {
	accs := make([]mem.Access, 0, n)
	for i := 0; i < n; i++ {
		addr := uint64(i%709) * 64
		op := mem.OpRead
		if i%2 == 0 {
			op = mem.OpWrite
		}
		accs = append(accs, mem.Access{Op: op, Addr: addr, Size: 64})
	}
	return accs
}

// runWithBarriers executes accs under a barrier policy, capturing the
// (driver+system) snapshot at captureIdx, and returns (elapsed, snapshot,
// final engine cycle).
func runWithBarriers(t *testing.T, cfg Config, accs []mem.Access, every, captureIdx int) (uint64, []byte, uint64) {
	t.Helper()
	sys := New(cfg)
	d := mem.NewDriver(sys)
	var snap []byte
	d.SetCkpt(&mem.CkptPolicy{Every: every, Sink: func(idx int) error {
		if idx != captureIdx {
			return nil
		}
		var enc ckpt.Enc
		if err := d.SaveState(&enc); err != nil {
			return err
		}
		if err := sys.SaveState(&enc); err != nil {
			return err
		}
		snap = ckpt.Seal(enc.Bytes())
		return nil
	}})
	elapsed, ok := d.RunWindowChecked(accs, 8, nil)
	if !ok {
		t.Fatalf("run aborted: %v", d.CkptErr())
	}
	d.Fence()
	return uint64(elapsed), snap, uint64(sys.Engine().Now())
}

func testRestoreIdentity(t *testing.T, cfg Config) {
	accs := ckptAccs(3000)
	const every, cut = 500, 1500

	wantElapsed, snap, wantNow := runWithBarriers(t, cfg, accs, every, cut)
	if snap == nil {
		t.Fatal("no snapshot captured at the cut barrier")
	}

	payload, err := ckpt.Open(snap)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	sys := New(cfg)
	d := mem.NewDriver(sys)
	dec := ckpt.NewDec(payload)
	if err := d.LoadState(dec); err != nil {
		t.Fatalf("driver LoadState: %v", err)
	}
	if err := sys.LoadState(dec); err != nil {
		t.Fatalf("system LoadState: %v", err)
	}
	if err := dec.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	d.SetCkpt(&mem.CkptPolicy{Every: every, StartIndex: cut})
	elapsed, ok := d.RunWindowChecked(accs, 8, nil)
	if !ok {
		t.Fatalf("resumed run aborted: %v", d.CkptErr())
	}
	d.Fence()

	if uint64(elapsed) != wantElapsed {
		t.Fatalf("resumed elapsed %d cycles, straight %d", elapsed, wantElapsed)
	}
	if got := uint64(sys.Engine().Now()); got != wantNow {
		t.Fatalf("resumed run ended at cycle %d, straight at %d", got, wantNow)
	}
}

// TestRestoreIdentityAppDirect: run(restore(checkpoint(S))) matches an
// uninterrupted run of the same plan exactly, App Direct mode.
func TestRestoreIdentityAppDirect(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NV.Media.Capacity = 16 << 20
	testRestoreIdentity(t, cfg)
}

// TestRestoreIdentityInterleaved: same, across a 2-DIMM interleaved system.
func TestRestoreIdentityInterleaved(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DIMMs = 2
	cfg.Interleaved = true
	cfg.NV.Media.Capacity = 16 << 20
	testRestoreIdentity(t, cfg)
}

// TestRestoreIdentityMemoryMode: same, with the DRAM near cache in the loop.
func TestRestoreIdentityMemoryMode(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mode = MemoryMode
	cfg.NV.Media.Capacity = 16 << 20
	cfg.DRAMCacheBytes = 1 << 20
	testRestoreIdentity(t, cfg)
}

// TestCaptureRejectsBusy: capturing a non-quiescent system is an error, not
// a corrupt snapshot.
func TestCaptureRejectsBusy(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NV.Media.Capacity = 16 << 20
	sys := New(cfg)
	r := &mem.Request{Op: mem.OpWrite, Addr: 0, Size: 64, OnDone: func(*mem.Request) {}}
	if !sys.Submit(r) {
		t.Fatal("submit rejected")
	}
	if _, err := sys.Capture(); err == nil {
		t.Fatal("Capture succeeded with in-flight work")
	}
}

// TestRecoveryInterface: both recovery semantics produce working systems —
// remnants truncates volatile state, exact reproduces it.
func TestRecoveryInterface(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NV.Media.Capacity = 16 << 20
	sys := New(cfg)
	d := mem.NewDriver(sys)
	d.RunWindow(ckptAccs(800), 8)
	d.Fence()
	sys.Engine().Run()

	snap, err := sys.Capture()
	if err != nil {
		t.Fatalf("Capture: %v", err)
	}

	for _, rec := range []Recovery{RemnantsRecovery{}, ExactRecovery{Snapshot: snap}} {
		fresh, err := rec.Recover(sys)
		if err != nil {
			t.Fatalf("%s: Recover: %v", rec.Name(), err)
		}
		exact := rec.Name() == "exact"
		gotClock := fresh.Engine().Now() == sys.Engine().Now()
		if gotClock != exact {
			t.Fatalf("%s recovery: clock carried over = %v, want %v", rec.Name(), gotClock, exact)
		}
		gotStats := fresh.IMC().Stats() == sys.IMC().Stats()
		if gotStats != exact {
			t.Fatalf("%s recovery: iMC stats carried over = %v, want %v", rec.Name(), gotStats, exact)
		}
	}
}
