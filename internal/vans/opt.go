package vans

import (
	"repro/internal/nvdimm"
	"repro/internal/sim"
)

// EnableLazyCache attaches the Lazy cache optimization to every DIMM and
// returns the instances (for statistics).
func (s *System) EnableLazyCache(cfg nvdimm.LazyCacheConfig) []*nvdimm.LazyCache {
	out := make([]*nvdimm.LazyCache, 0, len(s.dimms))
	for _, d := range s.dimms {
		out = append(out, d.EnableLazyCache(cfg))
	}
	return out
}

// EnablePreTranslation attaches a pre-translation table to every DIMM and
// returns a port the CPU model can drive (routing by physical address).
func (s *System) EnablePreTranslation(cfg nvdimm.PreTransConfig) *PreTransRouter {
	for _, d := range s.dimms {
		d.EnablePreTranslation(cfg)
	}
	return &PreTransRouter{sys: s}
}

// PreTransRouter routes pre-translation lookups/updates to the DIMM owning
// the address; it implements the CPU side's PreTransPort.
type PreTransRouter struct {
	sys *System
}

// Lookup implements the port.
func (p *PreTransRouter) Lookup(paddr uint64) (uint64, bool) {
	ch, local := p.sys.imc.Route(paddr)
	pt := p.sys.dimms[ch].PreTrans()
	if pt == nil {
		return 0, false
	}
	return pt.Lookup(local)
}

// Update implements the port.
func (p *PreTransRouter) Update(paddr, pfn uint64) {
	ch, local := p.sys.imc.Route(paddr)
	if pt := p.sys.dimms[ch].PreTrans(); pt != nil {
		pt.Update(local, pfn)
	}
}

// ExtraLatency implements the port.
func (p *PreTransRouter) ExtraLatency() sim.Cycle {
	for _, d := range p.sys.dimms {
		if pt := d.PreTrans(); pt != nil {
			return pt.ExtraLatency()
		}
	}
	return 0
}

// LazyCacheStats aggregates Lazy cache counters across DIMMs.
func (s *System) LazyCacheStats() nvdimm.LazyCacheStats {
	var agg nvdimm.LazyCacheStats
	for _, d := range s.dimms {
		// The DIMM exposes its cache through the stats of the attached
		// instance; DIMMs without one contribute nothing.
		if lc := d.Lazy(); lc != nil {
			st := lc.Stats()
			agg.WriteHits += st.WriteHits
			agg.ReadHits += st.ReadHits
			agg.Promotions += st.Promotions
			agg.WLBEntries += st.WLBEntries
			agg.L1Occupancy += st.L1Occupancy
			agg.L2Occupancy += st.L2Occupancy
		}
	}
	return agg
}
