package nvdimm

import (
	"testing"

	"repro/internal/mem"
)

func TestLazyCacheAbsorbsHotWrites(t *testing.T) {
	cfg := smallConfig()
	cfg.WearThreshold = 1 << 60 // no migrations in this test
	base := NewSystem(cfg, 1)
	opt := NewSystem(cfg, 1)
	lc := opt.D.EnableLazyCache(LazyCacheConfig{HotThreshold: 8})

	hammer := func(sys *System) uint64 {
		d := mem.NewDriver(sys)
		for i := 0; i < 400; i++ {
			d.RunChain([]mem.Access{{Op: mem.OpWriteNT, Addr: uint64(i%4) * 64, Size: 64}})
			d.Fence()
		}
		return sys.D.Media().Stats().Writes
	}
	baseWrites := hammer(base)
	optWrites := hammer(opt)
	if optWrites >= baseWrites/2 {
		t.Fatalf("lazy cache media writes %d not well below baseline %d", optWrites, baseWrites)
	}
	st := lc.Stats()
	if st.WriteHits == 0 || st.Promotions == 0 {
		t.Fatalf("lazy cache stats = %+v", st)
	}
}

func TestLazyCacheServesReads(t *testing.T) {
	cfg := smallConfig()
	cfg.WearThreshold = 1 << 60
	sys := NewSystem(cfg, 1)
	lc := sys.D.EnableLazyCache(LazyCacheConfig{HotThreshold: 4})
	d := mem.NewDriver(sys)
	// Make block 0 hot.
	for i := 0; i < 50; i++ {
		d.RunChain([]mem.Access{{Op: mem.OpWriteNT, Addr: 0, Size: 64}})
		d.Fence()
	}
	if lc.Stats().WriteHits == 0 {
		t.Fatal("block never admitted")
	}
	// Evict it from the RMW buffer by reading far more than its capacity.
	var accs []mem.Access
	for i := 0; i < 2*cfg.RMWEntries; i++ {
		accs = append(accs, mem.Access{Op: mem.OpRead, Addr: 1<<20 + uint64(i)*256, Size: 64})
	}
	d.RunChain(accs)
	fast := d.RunChain([]mem.Access{{Op: mem.OpRead, Addr: 0, Size: 64}})[0]
	slow := d.RunChain([]mem.Access{{Op: mem.OpRead, Addr: 2 << 20, Size: 64}})[0]
	if fast >= slow {
		t.Fatalf("lazy-cached read (%d) not faster than cold read (%d)", fast, slow)
	}
	if lc.Stats().ReadHits == 0 {
		t.Fatal("no lazy cache read hits")
	}
}

func TestLazyCacheReducesMigrations(t *testing.T) {
	run := func(enable bool) uint64 {
		cfg := smallConfig()
		cfg.WearThreshold = 30
		sys := NewSystem(cfg, 1)
		if enable {
			sys.D.EnableLazyCache(LazyCacheConfig{HotThreshold: 8})
		}
		d := mem.NewDriver(sys)
		for i := 0; i < 200; i++ {
			d.RunChain([]mem.Access{{Op: mem.OpWriteNT, Addr: 4096, Size: 64}})
			d.Fence()
		}
		return sys.D.Stats().Migrations
	}
	base := run(false)
	opt := run(true)
	if base == 0 {
		t.Fatal("baseline has no migrations")
	}
	if opt >= base {
		t.Fatalf("lazy cache migrations %d not below baseline %d", opt, base)
	}
}

func TestPreTransTable(t *testing.T) {
	p := NewPreTransTable(PreTransConfig{TableBytes: 32, EntryBytes: 8})
	if _, ok := p.Lookup(0); ok {
		t.Fatal("cold hit")
	}
	p.Update(0, 5)
	if pfn, ok := p.Lookup(0); !ok || pfn != 5 {
		t.Fatalf("lookup = %d,%v", pfn, ok)
	}
	// Stale update.
	p.Update(0, 6)
	if p.Stats().Stale != 1 {
		t.Fatalf("stale = %d", p.Stats().Stale)
	}
	// FIFO eviction at capacity 4.
	for i := uint64(1); i <= 4; i++ {
		p.Update(i*64, i)
	}
	if _, ok := p.Lookup(0); ok {
		t.Fatal("capacity eviction failed")
	}
	if p.ExtraLatency() == 0 {
		t.Fatal("zero extra latency")
	}
}

func TestDefaultLazyCacheConfigMatchesPaper(t *testing.T) {
	c := DefaultLazyCacheConfig()
	if c.LZ1Bytes != 1<<10 || c.LZ2Bytes != 2<<10 {
		t.Fatalf("lazy cache sizes = %d/%d, want 1KB/2KB", c.LZ1Bytes, c.LZ2Bytes)
	}
	if c.LZ1Block != 64 || c.LZ2Block != 128 {
		t.Fatalf("lazy cache blocks = %d/%d, want 64/128", c.LZ1Block, c.LZ2Block)
	}
}
