package nvdimm

import (
	"repro/internal/dram"
	"repro/internal/sim"
)

// LazyCacheConfig parameterizes the Lazy cache optimization (§V-C): a small
// two-level inclusive write cache (LZ1/LZ2) in front of the AIT that absorbs
// writes to frequently worn blocks, plus a Write Lookaside Buffer holding
// the cached addresses. Persistence is covered by the existing ADR domain
// because the total capacity (3KB by default) is far below the WPQ-protected
// energy budget.
type LazyCacheConfig struct {
	// LZ1Bytes / LZ1Block: first level (1KB of 64B lines by default).
	LZ1Bytes uint64
	LZ1Block uint64
	// LZ2Bytes / LZ2Block: second level (2KB of 128B lines by default).
	LZ2Bytes uint64
	LZ2Block uint64
	// HotThreshold is the wear-record count at which the AIT marks a block
	// hot and directs the Lazy cache to absorb its writes.
	HotThreshold uint64
	// HitNs is the cache access latency.
	HitNs float64
}

// DefaultLazyCacheConfig returns the paper's evaluated configuration: 1KB L1
// + 2KB L2 (3KB total).
func DefaultLazyCacheConfig() LazyCacheConfig {
	return LazyCacheConfig{
		LZ1Bytes: 1 << 10, LZ1Block: 64,
		LZ2Bytes: 2 << 10, LZ2Block: 128,
		HotThreshold: 64,
		HitNs:        10,
	}
}

// lzLevel is one level of the Lazy cache: fully associative, LRU.
type lzLevel struct {
	lines   map[uint64]uint64 // block -> lastUse
	entries int
	block   uint64
	tick    uint64
}

func newLZLevel(bytes, block uint64) *lzLevel {
	n := int(bytes / block)
	if n < 1 {
		n = 1
	}
	return &lzLevel{lines: make(map[uint64]uint64, n), entries: n, block: block}
}

func (l *lzLevel) align(addr uint64) uint64 { return addr - addr%l.block }

func (l *lzLevel) lookup(addr uint64) bool {
	b := l.align(addr)
	if _, ok := l.lines[b]; ok {
		l.tick++
		l.lines[b] = l.tick
		return true
	}
	return false
}

func (l *lzLevel) insert(addr uint64) (victim uint64, evicted bool) {
	b := l.align(addr)
	l.tick++
	if _, ok := l.lines[b]; ok {
		l.lines[b] = l.tick
		return 0, false
	}
	if len(l.lines) >= l.entries {
		var va uint64
		var vt uint64 = ^uint64(0)
		for a, t := range l.lines {
			if t < vt {
				va, vt = a, t
			}
		}
		delete(l.lines, va)
		victim, evicted = va, true
	}
	l.lines[b] = l.tick
	return victim, evicted
}

// LazyCacheStats counts Lazy cache activity.
type LazyCacheStats struct {
	WriteHits   uint64 // writes absorbed (wear avoided)
	ReadHits    uint64
	Promotions  uint64 // blocks marked hot by the AIT wear records
	WLBEntries  int
	L1Occupancy int
	L2Occupancy int
}

// LazyCache implements the optimization. The WLB tracks which block
// addresses are currently cached; the AIT wear records (writes since last
// migration reset, tracked per combine block here) drive promotion.
type LazyCache struct {
	cfg LazyCacheConfig
	l1  *lzLevel
	l2  *lzLevel
	// wlb is the Write Lookaside Buffer: the set of cached combine blocks.
	wlb map[uint64]bool
	// hotness counts recent writes per combine block (reusing the AIT wear
	// record, per the paper's design).
	hotness map[uint64]uint64

	writeLat sim.Cycle
	stats    LazyCacheStats
}

// NewLazyCache builds the optimization with cfg (zero fields defaulted).
func NewLazyCache(cfg LazyCacheConfig) *LazyCache {
	def := DefaultLazyCacheConfig()
	if cfg.LZ1Bytes == 0 {
		cfg.LZ1Bytes, cfg.LZ1Block = def.LZ1Bytes, def.LZ1Block
	}
	if cfg.LZ2Bytes == 0 {
		cfg.LZ2Bytes, cfg.LZ2Block = def.LZ2Bytes, def.LZ2Block
	}
	if cfg.HotThreshold == 0 {
		cfg.HotThreshold = def.HotThreshold
	}
	if cfg.HitNs == 0 {
		cfg.HitNs = def.HitNs
	}
	return &LazyCache{
		cfg:      cfg,
		l1:       newLZLevel(cfg.LZ1Bytes, cfg.LZ1Block),
		l2:       newLZLevel(cfg.LZ2Bytes, cfg.LZ2Block),
		wlb:      make(map[uint64]bool),
		hotness:  make(map[uint64]uint64),
		writeLat: dram.NsToCycles(cfg.HitNs),
	}
}

// EnableLazyCache attaches the Lazy cache to a DIMM.
func (d *DIMM) EnableLazyCache(cfg LazyCacheConfig) *LazyCache {
	d.lazy = NewLazyCache(cfg)
	return d.lazy
}

// Lazy returns the attached Lazy cache (nil when disabled).
func (d *DIMM) Lazy() *LazyCache { return d.lazy }

// Stats returns a snapshot of activity counters.
func (lc *LazyCache) Stats() LazyCacheStats {
	s := lc.stats
	s.WLBEntries = len(lc.wlb)
	s.L1Occupancy = len(lc.l1.lines)
	s.L2Occupancy = len(lc.l2.lines)
	return s
}

// WriteProbe is called with each combined write block. It returns true when
// the Lazy cache absorbs the write (no AIT/media traffic). The hotness
// record promotes blocks that are written repeatedly, mirroring the paper's
// reuse of AIT wear records during migration.
func (lc *LazyCache) WriteProbe(block uint64) bool {
	if lc.wlb[block] {
		// Inclusive two-level update: L1 insert, L1 victims go to L2.
		if v, ev := lc.l1.insert(block); ev {
			lc.l2.insert(v)
		}
		lc.l2.insert(block)
		lc.stats.WriteHits++
		return true
	}
	lc.hotness[block]++
	if lc.hotness[block] >= lc.cfg.HotThreshold {
		lc.admit(block)
	}
	return false
}

// admit starts caching block.
func (lc *LazyCache) admit(block uint64) {
	lc.wlb[block] = true
	lc.stats.Promotions++
	delete(lc.hotness, block)
	if v, ev := lc.l1.insert(block); ev {
		lc.l2.insert(v)
	}
	lc.l2.insert(block)
	// Bound the WLB to the cache capacity: drop tracking for blocks that
	// fell out of both levels.
	if len(lc.wlb) > lc.l1.entries+lc.l2.entries {
		for a := range lc.wlb {
			if !lc.l1.lookup(a) && !lc.l2.lookup(a) {
				delete(lc.wlb, a)
				break
			}
		}
	}
}

// ReadProbe serves reads of cached blocks. It returns the access latency and
// whether the block was present.
func (lc *LazyCache) ReadProbe(block uint64) (sim.Cycle, bool) {
	if !lc.wlb[block] {
		return 0, false
	}
	if lc.l1.lookup(block) || lc.l2.lookup(block) {
		lc.stats.ReadHits++
		return lc.writeLat, true
	}
	return 0, false
}
