package nvdimm

import (
	"repro/internal/sim"
)

// lsqSlot is one 64B entry of the on-DIMM load-store queue.
type lsqSlot struct {
	line uint64 // 64B-aligned address
	enq  sim.Cycle
}

// LSQ is the on-DIMM load-store queue. It holds 64B store entries, merges
// repeated stores to the same line in place, and drains entries grouped by
// combine block (256B) so that downstream sees combined read-modify-write
// operations — the write-combining behavior the paper attributes to the LSQ.
type LSQ struct {
	slots    map[uint64]int // line -> index into order
	order    []lsqSlot      // FIFO by enqueue; holes marked line==tombstone
	live     int
	maxSlots int
	combine  uint64

	merges  uint64
	accepts uint64
}

const lsqTombstone = ^uint64(0)

// NewLSQ returns an LSQ with maxSlots 64B entries combining at combine-byte
// blocks.
func NewLSQ(maxSlots int, combine uint64) *LSQ {
	return &LSQ{
		slots:    make(map[uint64]int, maxSlots),
		maxSlots: maxSlots,
		combine:  combine,
	}
}

// Len returns the live entry count.
func (q *LSQ) Len() int { return q.live }

// Full reports whether no new distinct line can be accepted.
func (q *LSQ) Full() bool { return q.live >= q.maxSlots }

// Empty reports whether the queue holds no entries.
func (q *LSQ) Empty() bool { return q.live == 0 }

// Merges returns how many accepts merged into an existing slot.
func (q *LSQ) Merges() uint64 { return q.merges }

// Contains reports whether a store to the 64B line at addr is pending
// (used for read forwarding — the data fast-forward effect LENS measures).
func (q *LSQ) Contains(line uint64) bool {
	_, ok := q.slots[line]
	return ok
}

// ContainsBlock reports whether any pending store falls in the combine block
// containing addr.
func (q *LSQ) ContainsBlock(block uint64) bool {
	// The slot map is keyed by 64B line; scan the lines of the block.
	for l := block; l < block+q.combine; l += 64 {
		if _, ok := q.slots[l]; ok {
			return true
		}
	}
	return false
}

// Accept enqueues a 64B store to line at time now. It reports
// (merged, accepted): merged means an existing slot was overwritten in
// place; accepted==false means the queue is full and the caller must retry.
func (q *LSQ) Accept(line uint64, now sim.Cycle) (merged, accepted bool) {
	if i, ok := q.slots[line]; ok {
		q.order[i].enq = now
		q.merges++
		return true, true
	}
	if q.Full() {
		return false, false
	}
	q.slots[line] = len(q.order)
	q.order = append(q.order, lsqSlot{line: line, enq: now})
	q.live++
	q.accepts++
	q.compact()
	return false, true
}

// compact trims leading tombstones and rebuilds when the hole ratio grows,
// keeping drain scans O(live).
func (q *LSQ) compact() {
	if len(q.order) < 2*q.live+8 {
		return
	}
	fresh := make([]lsqSlot, 0, q.live)
	for _, s := range q.order {
		if s.line != lsqTombstone {
			q.slots[s.line] = len(fresh)
			fresh = append(fresh, s)
		}
	}
	q.order = fresh
}

// OldestAge returns now minus the enqueue time of the oldest live entry
// (0 when empty).
func (q *LSQ) OldestAge(now sim.Cycle) sim.Cycle {
	for _, s := range q.order {
		if s.line != lsqTombstone {
			if now < s.enq {
				return 0
			}
			return now - s.enq
		}
	}
	return 0
}

// Group is one drained write-combining group: a combine-block-aligned
// address plus the mask of 64B sub-lines present (bit i = line at
// Block + 64*i).
type Group struct {
	Block uint64
	Mask  uint16
	// Enq is the enqueue cycle of the oldest entry in the group — the queue
	// residency anchor the wait histograms measure against.
	Enq sim.Cycle
}

// Lines returns the count of 64B lines in the group.
func (g Group) Lines() int {
	n := 0
	for m := g.Mask; m != 0; m &= m - 1 {
		n++
	}
	return n
}

// Complete reports whether the group covers the whole combine block of size
// blockBytes.
func (g Group) Complete(blockBytes uint64) bool {
	full := uint16(1)<<(blockBytes/64) - 1
	return g.Mask == full
}

// PopGroup removes and returns the oldest entry together with every other
// entry in its combine block. ok is false when empty.
func (q *LSQ) PopGroup() (Group, bool) {
	var oldest *lsqSlot
	for i := range q.order {
		if q.order[i].line != lsqTombstone {
			oldest = &q.order[i]
			break
		}
	}
	if oldest == nil {
		return Group{}, false
	}
	block := oldest.line - oldest.line%q.combine
	g := Group{Block: block, Enq: oldest.enq}
	for l := block; l < block+q.combine; l += 64 {
		if i, ok := q.slots[l]; ok {
			g.Mask |= 1 << ((l - block) / 64)
			q.order[i].line = lsqTombstone
			delete(q.slots, l)
			q.live--
		}
	}
	return g, true
}
